// Statistics accumulators for simulation metrics.
//
// The paper reports, per experiment: the mean *obtaining time*, its standard
// deviation σ (Fig. 5a), and the relative deviation σ/mean (Fig. 5b). These
// are computed with Welford's online algorithm, numerically stable over the
// ~18 000 samples a full run produces. A fixed-resolution histogram backs
// percentile queries used by the extended analyses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gridmutex/sim/time.hpp"

namespace gmx {

/// Online mean/variance/min/max (Welford). Population variance, matching
/// the paper's σ over the full set of measured critical sections.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;         // population
  [[nodiscard]] double sample_variance() const;  // Bessel-corrected
  [[nodiscard]] double stddev() const;
  /// σ/mean — the paper's "relative deviation σᵣ" (§4.5). 0 when mean==0.
  [[nodiscard]] double relative_stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * double(n_); }

  /// Bitwise state equality — used by the parallel-vs-serial sweep
  /// equivalence tests, where results must match field for field.
  [[nodiscard]] bool operator==(const OnlineStats&) const = default;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience wrapper recording durations in milliseconds.
class DurationStats {
 public:
  void add(SimDuration d) { s_.add(d.as_ms()); }
  void merge(const DurationStats& o) { s_.merge(o.s_); }
  void reset() { s_.reset(); }

  [[nodiscard]] std::uint64_t count() const { return s_.count(); }
  [[nodiscard]] double mean_ms() const { return s_.mean(); }
  [[nodiscard]] double stddev_ms() const { return s_.stddev(); }
  [[nodiscard]] double relative_stddev() const { return s_.relative_stddev(); }
  [[nodiscard]] double min_ms() const { return s_.min(); }
  [[nodiscard]] double max_ms() const { return s_.max(); }
  [[nodiscard]] const OnlineStats& raw() const { return s_; }

  [[nodiscard]] bool operator==(const DurationStats&) const = default;

 private:
  OnlineStats s_;
};

/// Fixed-width-bucket histogram over [0, limit); overflow values land in a
/// dedicated tail bucket. Percentiles are linearly interpolated within a
/// bucket.
class Histogram {
 public:
  /// `buckets` uniform buckets spanning [0, limit).
  Histogram(double limit, std::size_t buckets);

  void add(double x);
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return total_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  /// q in [0, 1]. Returns an interpolated value; values in the overflow
  /// bucket report the limit; an empty histogram reports 0 (there is no
  /// meaningful quantile of nothing, and report paths query p99 on runs
  /// that may have completed zero CS).
  [[nodiscard]] double percentile(double q) const;

  /// Multi-line ASCII rendering (used by examples and debug dumps).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

  [[nodiscard]] bool operator==(const Histogram&) const = default;

 private:
  double limit_;
  double bucket_width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace gmx
