// EventFn: the kernel's small-callback representation.
//
// A move-only type-erased `void()` callable sized for the event loop's hot
// closures. The dominant closure in any run is Network's delivery lambda —
// `this` + a Message (48 bytes, payload vector inline) + a SimTime — which
// std::function heap-allocates on every send (libstdc++ inlines only 16
// bytes). EventFn reserves enough inline storage for it, so scheduling a
// datagram costs zero allocations; larger or throwing-move closures fall
// back to the heap transparently.
//
// Dispatch is two function pointers (invoke + manage) instead of a vtable,
// and relocation is a plain move-construct, so EventQueue can keep EventFns
// in a growable slab.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace gmx {

class EventFn {
 public:
  /// Inline capacity. 104 bytes + the two dispatch pointers lands the whole
  /// object at 120 bytes; the delivery closure (~64 bytes) fits with slack
  /// for a fatter Message or an extra capture.
  static constexpr std::size_t kInlineBytes = 104;

  EventFn() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, EventFn> &&
             std::is_invocable_v<std::decay_t<F>&>)
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors
                     // std::function's converting constructor
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when F is stored inline (no allocation). Exposed for tests and
  /// the micro-benchmarks that assert the delivery closure stays inline.
  template <typename F>
  [[nodiscard]] static constexpr bool stores_inline() {
    return fits_inline<std::decay_t<F>>();
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) noexcept {
        auto* s = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace gmx
