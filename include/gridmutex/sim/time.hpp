// Simulated time.
//
// `SimTime` is an absolute point on the simulation clock; `SimDuration` is a
// signed difference between two points. Both are strong types over a signed
// 64-bit nanosecond count, which gives ~292 years of headroom — far beyond
// any experiment in this repository (runs are minutes of simulated time).
//
// The paper reports latencies in milliseconds with sub-millisecond intra-
// cluster values (Fig. 3), so nanosecond resolution loses nothing.
#pragma once

#include <compare>
#include <concepts>
#include <cstdint>
#include <string>

namespace gmx {

/// A signed span of simulated time. Value-semantic, totally ordered.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  [[nodiscard]] static constexpr SimDuration ns(std::int64_t v) {
    return SimDuration(v);
  }
  [[nodiscard]] static constexpr SimDuration us(std::int64_t v) {
    return SimDuration(v * 1'000);
  }
  [[nodiscard]] static constexpr SimDuration ms(std::int64_t v) {
    return SimDuration(v * 1'000'000);
  }
  [[nodiscard]] static constexpr SimDuration sec(std::int64_t v) {
    return SimDuration(v * 1'000'000'000);
  }
  /// Fractional milliseconds, rounded to the nearest nanosecond. Used when
  /// loading latency matrices expressed in ms (e.g. Grid5000's 15.039 ms).
  [[nodiscard]] static SimDuration ms_f(double v);
  [[nodiscard]] static SimDuration sec_f(double v);

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double as_us() const { return double(ns_) / 1e3; }
  [[nodiscard]] constexpr double as_ms() const { return double(ns_) / 1e6; }
  [[nodiscard]] constexpr double as_sec() const { return double(ns_) / 1e9; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimDuration& operator*=(std::int64_t k) {
    ns_ *= k;
    return *this;
  }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration(a.ns_ + b.ns_);
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration(a.ns_ - b.ns_);
  }
  friend constexpr SimDuration operator-(SimDuration a) {
    return SimDuration(-a.ns_);
  }
  template <std::integral I>
  friend constexpr SimDuration operator*(SimDuration a, I k) {
    return SimDuration(a.ns_ * std::int64_t(k));
  }
  template <std::integral I>
  friend constexpr SimDuration operator*(I k, SimDuration a) {
    return SimDuration(a.ns_ * std::int64_t(k));
  }
  template <std::floating_point F>
  friend SimDuration operator*(SimDuration a, F k) {
    return SimDuration::sec_f(a.as_sec() * double(k));
  }
  /// Ratio of two durations (e.g. obtaining time in units of T).
  friend constexpr double operator/(SimDuration a, SimDuration b) {
    return double(a.ns_) / double(b.ns_);
  }

  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

  /// Human-readable rendering with an adaptive unit ("12.4ms", "850ns").
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr SimDuration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant of simulated time. The simulation starts at zero.
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime(); }
  [[nodiscard]] static constexpr SimTime from_ns(std::int64_t v) {
    return SimTime(v);
  }
  /// Largest representable time; used as an "infinitely far" deadline.
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime(INT64_MAX);
  }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double as_ms() const { return double(ns_) / 1e6; }
  [[nodiscard]] constexpr double as_sec() const { return double(ns_) / 1e9; }

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime(t.ns_ + d.count_ns());
  }
  friend constexpr SimTime operator+(SimDuration d, SimTime t) {
    return t + d;
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) {
    return SimTime(t.ns_ - d.count_ns());
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration::ns(a.ns_ - b.ns_);
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

}  // namespace gmx
