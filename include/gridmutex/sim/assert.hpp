// Lightweight contract checking for gridmutex.
//
// GMX_ASSERT is active in all build types: simulation correctness (token
// uniqueness, automaton legality) must not silently degrade in Release, and
// the checks are cheap relative to event dispatch.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gmx::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "gridmutex assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace gmx::detail

#define GMX_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                      \
          : ::gmx::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define GMX_ASSERT_MSG(expr, msg)                                     \
  ((expr) ? static_cast<void>(0)                                      \
          : ::gmx::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))
