// Pending-event set of the discrete-event kernel.
//
// A binary min-heap ordered by (time, sequence). The sequence number makes
// the ordering a strict total order: two events scheduled for the same
// instant fire in scheduling order, which keeps every simulation run
// bit-for-bit deterministic for a given (configuration, seed) pair.
//
// Cancellation is lazy: `cancel()` marks the id and the heap drops the entry
// when it surfaces. Timers are rare next to message deliveries, so the
// tombstone set stays small.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "gridmutex/sim/time.hpp"

namespace gmx {

/// Identifies a scheduled event; valid until the event fires or is cancelled.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `t`. Returns a handle usable with
  /// `cancel()`.
  EventId push(SimTime t, Callback fn);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id was never issued.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) event remains.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  /// Extracts the earliest live event. Precondition: !empty().
  struct Entry {
    SimTime time;
    EventId id;
    Callback fn;
  };
  Entry pop();

  /// Number of live events tied at the earliest time (the *tie-set*).
  /// Precondition: !empty(). O(heap size) — meant for the model-check
  /// harness, not the hot pop path.
  [[nodiscard]] std::size_t tie_count();

  /// Extracts the k-th member of the tie-set, ordered by id (so
  /// pop_nth(0) == pop()). Precondition: k < tie_count(). This is the
  /// reorder point the model checker permutes: every member of the tie-set
  /// is a legal "next event" under the DES semantics.
  Entry pop_nth(std::size_t k);

  /// Drops every pending event (cancelled ids are forgotten too).
  void clear();

  /// Total events ever pushed; monotone, survives clear(). Used by tests
  /// and by the micro-benchmarks.
  [[nodiscard]] std::uint64_t total_pushed() const { return next_id_ - 1; }

 private:
  struct HeapItem {
    SimTime time;
    EventId id;  // doubles as the tie-break sequence: ids grow monotonically
    Callback fn;
  };
  static bool later(const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }

  void drop_cancelled_top();

  std::vector<HeapItem> heap_;
  std::unordered_set<EventId> cancelled_;
  std::size_t live_ = 0;
  EventId next_id_ = 1;  // 0 is kInvalidEventId
};

}  // namespace gmx
