// Pending-event set of the discrete-event kernel.
//
// A 4-ary min-heap ordered by (time, sequence). The sequence number makes
// the ordering a strict total order: two events scheduled for the same
// instant fire in scheduling order, which keeps every simulation run
// bit-for-bit deterministic for a given (configuration, seed) pair. The
// 4-ary layout halves the tree depth of a binary heap and keeps sift-down
// children on one cache line — the push/pop pair is the single hottest
// operation in the repository.
//
// Callbacks live in a slab of stable slots (EventFn inline storage, see
// callback.hpp); the heap array itself carries only 24-byte
// (time, seq, slot) items. The slab and heap grow geometrically and are
// never shrunk, so a steady-state run performs zero allocations per event.
//
// Cancellation is index-based: an EventId encodes (slot, generation), the
// slab records each pending event's current heap index, and `cancel()`
// removes the entry from the heap in O(log n) — no tombstone set, no hash
// lookups on the pop path, no dead entries lingering in the heap, and
// nothing that can leak when cancelled ids pop out of order (the historic
// tombstone-set bug). The generation is bumped every time a slot is freed,
// so a stale id can never cancel a later event that reuses the slot.
#pragma once

#include <cstdint>
#include <vector>

#include "gridmutex/sim/callback.hpp"
#include "gridmutex/sim/time.hpp"

namespace gmx {

/// Identifies a scheduled event; valid until the event fires or is
/// cancelled. Encodes (slab slot, slot generation); ids never repeat.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = EventFn;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `t`. Returns a handle usable with
  /// `cancel()`.
  template <typename F>
  EventId push(SimTime t, F&& fn) {
    const std::uint32_t slot = alloc_slot();
    Node& n = slab_[slot];
    n.fn = EventFn(std::forward<F>(fn));
    n.pending = true;
    heap_.push_back(HeapItem{t, next_seq_++, slot});
    n.heap_index = std::uint32_t(heap_.size() - 1);
    sift_up(heap_.size() - 1);
    ++pushed_;
    return make_id(slot, n.gen);
  }

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id was never issued. One slab probe to
  /// resolve the id, then an O(log n) targeted heap removal at the slot's
  /// recorded heap index — the entry vanishes immediately.
  bool cancel(EventId id);

  /// True when no live event remains (cancelled entries are removed
  /// eagerly, so the heap holds exactly the live events).
  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  /// Extracts the earliest live event. Precondition: !empty().
  struct Entry {
    SimTime time;
    EventId id;
    EventFn fn;
  };
  Entry pop();

  /// Number of live events tied at the earliest time (the *tie-set*).
  /// Precondition: !empty(). O(heap size) — meant for the model-check
  /// harness, not the hot pop path.
  [[nodiscard]] std::size_t tie_count();

  /// Extracts the k-th member of the tie-set, in scheduling order (so
  /// pop_nth(0) == pop()). Precondition: k < tie_count(). This is the
  /// reorder point the model checker permutes: every member of the tie-set
  /// is a legal "next event" under the DES semantics.
  Entry pop_nth(std::size_t k);

  /// Drops every pending event (their ids become stale).
  void clear();

  /// Total events ever pushed; monotone, survives clear(). Used by tests
  /// and by the micro-benchmarks.
  [[nodiscard]] std::uint64_t total_pushed() const { return pushed_; }

  /// Slab footprint in slots — bounded by the high-water mark of
  /// *concurrently pending* events, independent of how many were ever
  /// pushed or cancelled. The property test pins this invariant (the old
  /// tombstone set grew without bound under out-of-order cancel/pop).
  [[nodiscard]] std::size_t slab_slots() const { return slab_.size(); }

 private:
  struct Node {
    EventFn fn;
    std::uint32_t gen = 1;  // bumped on every free; 1-based so id != 0
    std::uint32_t heap_index = 0;  // current position in heap_ while pending
    bool pending = false;          // false = slot free
  };
  struct HeapItem {
    SimTime time;
    std::uint64_t seq;  // global scheduling order, the same-time tie-break
    std::uint32_t slot;
  };
  static bool earlier(const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (EventId(gen) << 32) | EventId(slot);
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Writes `item` to heap_[i] and records i in the item's slab node.
  void place(std::size_t i, const HeapItem& item);
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes the entry at heap index i (slab bookkeeping is the caller's).
  void heap_remove(std::size_t i);
  Entry take(const HeapItem& item);

  std::vector<HeapItem> heap_;
  std::vector<Node> slab_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t pushed_ = 0;
};

}  // namespace gmx
