// Deterministic pseudo-randomness for simulations.
//
// xoshiro256** seeded through splitmix64. We deliberately avoid
// <random>'s engines-with-distributions: libstdc++ does not guarantee
// identical distribution output across versions, and reproducibility of a
// run from (config, seed) is a design requirement. All distribution
// transforms are implemented here, in-repo, and pinned by unit tests.
#pragma once

#include <cstdint>

#include "gridmutex/sim/time.hpp"

namespace gmx {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit draw (xoshiro256**).
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface, so <algorithm> shuffles work.
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  /// Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed value with the given mean (rate 1/mean).
  /// Used for application think times (paper §4.1: β is a *mean* interval).
  double exponential(double mean);

  /// Exponentially distributed duration with the given mean.
  SimDuration exponential(SimDuration mean);

  /// Bernoulli draw.
  bool chance(double p);

  /// Derives an independent child generator; stable under reordering of
  /// sibling derivations (each child is keyed by `stream`).
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;  // retained for fork()
};

}  // namespace gmx
