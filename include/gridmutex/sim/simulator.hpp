// Discrete-event simulation driver.
//
// The simulator owns the virtual clock and the pending-event set. Everything
// in gridmutex — message deliveries, protocol timers, application think
// times — is an event: a closure scheduled at an absolute simulated time.
// `run()` repeatedly pops the earliest event, advances the clock to it, and
// invokes it, until the event set drains or a stop condition triggers.
//
// Single-threaded by design: determinism is a core requirement (DESIGN.md
// §5.4). Parallelism in this codebase happens *across* simulations (see
// workload/runner.hpp), never inside one.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "gridmutex/sim/assert.hpp"
#include "gridmutex/sim/event_queue.hpp"
#include "gridmutex/sim/time.hpp"

namespace gmx {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t`, which must not be in the past.
  /// Accepts any void() callable; small closures are stored inline in the
  /// kernel slab (sim/callback.hpp) — no allocation on the hot path.
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    GMX_ASSERT_MSG(t >= now_, "cannot schedule an event in the past");
    return queue_.push(t, std::forward<F>(fn));
  }

  /// Schedules `fn` after a non-negative delay from now.
  template <typename F>
  EventId schedule_after(SimDuration d, F&& fn) {
    GMX_ASSERT_MSG(!d.is_negative(), "negative delay");
    return queue_.push(now_ + d, std::forward<F>(fn));
  }

  /// Cancels a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event set drains or `stop()` is called.
  void run();

  /// Runs events with time <= `deadline`. The clock ends at
  /// min(deadline, time of last event) — it does not jump to the deadline
  /// if the queue drains early. Returns true if the queue drained.
  bool run_until(SimTime deadline);

  /// Processes at most `n` events; returns how many actually ran.
  std::size_t run_steps(std::size_t n);

  /// Requests that the current run() loop return after the in-flight event.
  void stop() { stop_requested_ = true; }

  /// True when no live events remain.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Hard cap on events per run; trips an assertion when exceeded. Guards
  /// tests against livelock bugs (e.g. two nodes ping-ponging a message).
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }

  /// Analysis hook (analysis/protocol_checker.hpp): invoked after every
  /// event callback returns, i.e. at the instants where global state is
  /// consistent and cross-participant invariants must hold. One slot; unset
  /// by default and free when unset.
  void set_post_event_hook(std::function<void()> hook) {
    post_event_ = std::move(hook);
  }

  /// Reorder hook (analysis/model_check.hpp): when several events tie at
  /// the earliest time, the chooser picks which fires next (index into the
  /// id-ordered tie-set of size `n`, i.e. 0 reproduces the default order).
  /// Every member of a tie-set is a legal next event under DES semantics,
  /// so permuting the choice explores exactly the adversarial delivery
  /// orders. Unset = deterministic scheduling order.
  using TieBreaker = std::function<std::size_t(std::size_t n)>;
  void set_tie_breaker(TieBreaker chooser) { chooser_ = std::move(chooser); }

 private:
  bool step();  // returns false when nothing ran

  EventQueue queue_;
  SimTime now_;
  std::uint64_t processed_ = 0;
  std::uint64_t event_limit_ = std::numeric_limits<std::uint64_t>::max();
  bool stop_requested_ = false;
  std::function<void()> post_event_;
  TieBreaker chooser_;
};

}  // namespace gmx
