// Open-loop traffic generation for the multi-lock service experiments.
//
// The paper's workload (§4.1) is closed-loop: each process loops
// think → request → CS, so offered load self-throttles as obtaining times
// grow. A lock *service* is exercised the opposite way: clients arrive
// independently of how congested the service already is. The driver models
// that as a Poisson arrival process (exponential inter-arrival times at a
// configured aggregate rate); each arrival picks a requesting node
// uniformly and a lock from a Zipf popularity distribution — the standard
// skew model for named-object access, with s = 0 degenerating to uniform.
//
// ZipfSampler draws by inverse-CDF over the precomputed cumulative weights
// w(i) = 1/(i+1)^s: O(log K) per sample, one uniform double consumed per
// draw (deterministic replay from a forked Rng stream).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gridmutex/net/topology.hpp"
#include "gridmutex/sim/random.hpp"
#include "gridmutex/sim/time.hpp"

namespace gmx {

class ZipfSampler {
 public:
  /// Ranks 0..n-1 with P(i) ∝ 1/(i+1)^s. s must be >= 0 (s = 0: uniform).
  ZipfSampler(std::uint32_t n, double s);

  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

  [[nodiscard]] std::uint32_t size() const {
    return std::uint32_t(cum_.size());
  }
  [[nodiscard]] double s() const { return s_; }
  /// Normalized probability of rank i (tests, expected-share assertions).
  [[nodiscard]] double probability(std::uint32_t i) const;

 private:
  double s_;
  std::vector<double> cum_;  // cumulative unnormalized weights
};

/// Open-loop driver parameters (service/experiment.hpp).
struct OpenLoopParams {
  /// Aggregate arrival rate over the whole service, requests per simulated
  /// second. Arrivals are Poisson: inter-arrival ~ Exp(1/rate).
  double arrivals_per_sec = 200.0;
  /// Arrival window: requests arrive in [0, window); the run then drains.
  SimDuration window = SimDuration::sec(5);
  /// Zipf skew across locks. 0 = uniform popularity.
  double zipf_s = 0.9;
  /// Critical-section hold time per grant (paper's α, fixed).
  SimDuration hold = SimDuration::ms(10);
};

/// One open-loop arrival, materialized up front so the whole trace is a
/// pure function of the driver Rng stream — independent of how the service
/// (simulated *or* real, see transport/campaign.hpp) behaves.
struct OpenLoopArrival {
  SimTime at;
  NodeId node = kInvalidNode;
  std::uint32_t lock = 0;
};

/// Flash-crowd modifier for materialize_open_loop(): the arrival rate is
/// multiplied by `factor` inside [from_sec, until_sec). factor == 1
/// computes the identical stream (same draws, same arithmetic), so an
/// inert spec preserves bit-identity.
struct OpenLoopFlash {
  double factor = 1.0;
  double from_sec = 0.0;
  double until_sec = 0.0;
};

/// Materializes the full Poisson/Zipf arrival trace from `traffic`:
/// exponential inter-arrival gaps at the configured rate, a uniformly
/// drawn requesting node from `apps`, and a Zipf-ranked lock per arrival.
/// The draw sequence (gap, node, lock, gap, ...) is part of the
/// reproducibility contract: the simulator's service experiments and the
/// real-socket cross-validation campaign both call this with the same
/// forked stream and therefore replay the *bit-identical* trace.
[[nodiscard]] std::vector<OpenLoopArrival> materialize_open_loop(
    const OpenLoopParams& params, std::span<const NodeId> apps,
    const ZipfSampler& zipf, Rng& traffic, const OpenLoopFlash& flash = {});

}  // namespace gmx
