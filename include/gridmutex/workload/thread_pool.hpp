// Minimal work-stealing-free thread pool.
//
// Simulations are single-threaded by design (determinism); parallelism
// lives here, *across* independent simulations: a parameter sweep fans its
// (ρ, composition, seed) points over hardware threads. Each task runs one
// full simulation and the results are joined in submission order, so a
// parallel sweep is bit-identical to a serial one.
//
// Concurrency contract (machine-checked under Clang -Wthread-safety):
// `queue_` and `stop_` are guarded by `mu_`; workers and submitters may
// only touch them through MutexLock scopes. `workers_` is written in the
// constructor and joined in the destructor only — immutable in between, so
// thread_count() is safe from any thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "gridmutex/core/thread_annotations.hpp"

namespace gmx {

class ThreadPool {
 public:
  /// `threads` == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs `fn(i)` for i in [0, n) across the pool and blocks until all
  /// complete. Exceptions propagate from the first failing index.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  friend class ThreadSafetyProbe;  // seeded-violation tests only

  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ GMX_GUARDED_BY(mu_);
  bool stop_ GMX_GUARDED_BY(mu_) = false;
};

}  // namespace gmx
