// Command-line front end for the experiment runner (tools/gridmutex_cli).
//
// Parsing is a pure function over argv so it is unit-testable; the binary
// in tools/ is a thin shell around parse_cli() + run_sweep() + reporting.
//
// Grammar (all optional unless noted):
//   --composition <intra>-<inter>   e.g. --composition naimi-martin
//   --flat <algorithm>              another series over the same sweep
//   --multilevel <a0xa1x...>        hierarchy arity bottom-up, e.g. 4x3x3;
//                                   requires --algorithms and --delays
//   --algorithms <list>             one per level, e.g. naimi,naimi,martin
//   --delays <ms list>              one per level, e.g. 0.5,5,40
//   --clusters <n>      default 9
//   --apps <n>          per cluster, default 20
//   --rho <list>        comma-separated, default "45,90,180,540,1080"
//   --cs <n>            critical sections per process, default 100
//   --alpha-ms <f>      CS duration, default 10
//   --reps <n>          repetitions, default 5
//   --seed <n>          default 1
//   --latency grid5000 | <lan_ms>:<wan_ms>   default grid5000
//   --jitter <f>        default 0.05
//   --jobs <n>          sweep parallelism over (config, seed) replication
//                       cells, 0 = hardware (--threads is an alias)
//   --csv <path>        also write a CSV of every point
//   --locks <n>         LockService mode: host n locks over one grid and
//                       drive open-loop traffic (service/experiment.hpp);
//                       requires every series to be a --composition
//   --zipf <s>          lock popularity skew, default 0.9 (needs --locks)
//   --placement roundrobin | hash   home-cluster sharding (needs --locks)
//   --list-algorithms   print the algorithm registry and exit
//   --help
// Repeating --composition/--flat adds more series to the same sweep.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "gridmutex/workload/experiment.hpp"

namespace gmx {

struct CliOptions {
  /// One entry per requested series.
  std::vector<ExperimentConfig> series;
  std::vector<double> rhos = {45, 90, 180, 540, 1080};
  int repetitions = 5;
  std::size_t threads = 0;
  std::optional<std::string> csv_path;
  bool help = false;
  /// Print the algorithm registry with one-line descriptions and exit.
  bool list_algorithms = false;

  // LockService mode (--locks). Plain values, not a ServiceConfig: the
  // workload library sits below the service library, so tools/ converts.
  std::uint32_t locks = 0;  // 0 = classic single-lock sweep
  double zipf_s = 0.9;
  std::string placement = "roundrobin";
};

struct CliError {
  std::string message;
};

/// Parses arguments (excluding argv[0]). On success every series in
/// `series` is fully validated (algorithm names resolved, latency buildable).
[[nodiscard]] std::variant<CliOptions, CliError> parse_cli(
    std::span<const std::string_view> args);

[[nodiscard]] std::string cli_usage();

}  // namespace gmx
