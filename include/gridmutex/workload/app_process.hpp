// Application process driver (paper §4.1).
//
// Each application process loops `cs_count` times:
//   think (exponential, mean β = ρ·α) → request CS → [obtaining time] →
//   hold CS for α → release.
// α defaults to the paper's 10 ms; ρ = β/α parameterizes the degree of
// parallelism (low ρ = heavy contention). The *obtaining time* — request to
// grant — is the paper's primary metric and is recorded per CS into a
// shared collector.
#pragma once

#include <cstdint>
#include <functional>

#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/sim/random.hpp"
#include "gridmutex/sim/simulator.hpp"
#include "gridmutex/sim/stats.hpp"
#include "gridmutex/workload/safety_monitor.hpp"

namespace gmx {

struct WorkloadParams {
  /// Critical section duration α (paper: 10 ms, "the same order of
  /// magnitude as a data packet hop time between two clusters").
  SimDuration alpha = SimDuration::ms(10);
  /// ρ = β/α: mean think time in units of α. The paper's regimes, with
  /// N = 180 processes: low ρ≤N, intermediate N<ρ≤3N, high ρ≥3N.
  double rho = 180.0;
  /// Critical sections per process (paper: 100).
  int cs_count = 100;
  /// Exponential think times by default; fixed for deterministic tests.
  bool exponential_think = true;

  [[nodiscard]] SimDuration beta() const { return alpha * rho; }
};

/// Grant-order and obtaining-time sink shared by all processes of a run.
struct WorkloadMetrics {
  DurationStats obtaining;
  Histogram obtaining_hist{10'000.0, 200};  // ms buckets, 0..10s
  std::uint64_t completed_cs = 0;
  /// Subset of completed_cs released while the run's under_fault gauge was
  /// raised (fault campaigns; 0 otherwise).
  std::uint64_t cs_under_faults = 0;
};

class AppProcess {
 public:
  AppProcess(Simulator& sim, MutexEndpoint& mutex, WorkloadParams params,
             Rng rng, WorkloadMetrics& metrics, SafetyMonitor& safety);

  AppProcess(const AppProcess&) = delete;
  AppProcess& operator=(const AppProcess&) = delete;

  /// Schedules the first request (after one think interval).
  void start();

  [[nodiscard]] bool done() const { return remaining_ == 0 && !active_; }
  [[nodiscard]] int completed() const {
    return params_.cs_count - remaining_ - (active_ ? 1 : 0);
  }
  /// Invoked when this process finishes its last CS. Optional.
  std::function<void()> on_done;
  /// Fault gauge: sampled at each CS release to count cs_under_faults.
  /// Optional (fault campaigns wire it to FaultInjector::active_faults).
  std::function<bool()> under_fault;

 private:
  void think_then_request();
  void on_granted();
  void release_and_continue();
  [[nodiscard]] SimDuration think_time();

  Simulator& sim_;
  MutexEndpoint& mutex_;
  WorkloadParams params_;
  Rng rng_;
  WorkloadMetrics& metrics_;
  SafetyMonitor& safety_;

  int remaining_;
  bool active_ = false;  // between request and release
  SimTime requested_at_;
};

}  // namespace gmx
