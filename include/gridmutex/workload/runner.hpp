// Sweep runner: executes a batch of experiment configurations, optionally
// in parallel across hardware threads (each simulation stays
// single-threaded; results are returned in input order, so the sweep is
// deterministic regardless of thread count).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "gridmutex/workload/experiment.hpp"

namespace gmx {

struct SweepOptions {
  /// 0 = hardware concurrency; 1 = serial.
  std::size_t threads = 0;
  int repetitions = 1;
  /// Progress callback, invoked from worker threads as points complete
  /// (guarded internally). Optional.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Runs every configuration (each replicated `repetitions` times) and
/// returns results in input order.
[[nodiscard]] std::vector<ExperimentResult> run_sweep(
    std::span<const ExperimentConfig> configs, const SweepOptions& opt = {});

/// Convenience: the paper's ρ sweep for a fixed configuration template.
/// Returns one result per ρ value, in order.
[[nodiscard]] std::vector<ExperimentResult> run_rho_sweep(
    ExperimentConfig base, std::span<const double> rhos,
    const SweepOptions& opt = {});

}  // namespace gmx
