// Result presentation: fixed-width tables (what the bench binaries print —
// one table per paper figure) and CSV export for external plotting.
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "gridmutex/workload/experiment.hpp"

namespace gmx {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `digits` fraction digits.
  static std::string num(double v, int digits = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// One row per (series, ρ) point with every paper metric — shared by the
/// figure benches and the CSV export.
struct SeriesPoint {
  std::string series;
  double rho;
  ExperimentResult result;
};

/// Figure-style tables: rows = ρ values, columns = series.
void print_metric_table(std::ostream& out, std::string_view title,
                        std::span<const SeriesPoint> points,
                        double (*metric)(const ExperimentResult&),
                        int digits = 2);

/// Full-detail CSV (one line per point, all metrics).
void write_csv(std::ostream& out, std::span<const SeriesPoint> points);

/// Service CSV (LockService runs): one row per lock of every point plus an
/// "ALL" aggregate row carrying the Jain fairness index. `rho` holds the
/// Zipf exponent of the sweep point.
void write_service_csv(std::ostream& out, std::span<const SeriesPoint> points);

/// Per-lock detail table of one service result (bench/tools output).
void print_service_table(std::ostream& out, const ExperimentResult& r);

}  // namespace gmx
