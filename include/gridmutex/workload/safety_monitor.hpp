// Global mutual exclusion monitor.
//
// Tracks the application processes currently inside the critical section.
// Every experiment and example runs with this armed: a protocol bug that
// ever lets two processes in is caught at the moment it happens, not
// post-hoc — and the first violation is recorded with the simulated time,
// the instance ids and the ranks involved, so the diagnostic names the
// culprits instead of just counting them.
#pragma once

#include <cstdint>
#include <cstdio>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "gridmutex/sim/assert.hpp"
#include "gridmutex/sim/time.hpp"

namespace gmx {

class SafetyMonitor {
 public:
  /// Who is (or was) inside the CS. `instance` is the protocol id of the
  /// mutex the process entered through, `rank` its rank there; -1 when the
  /// caller did not say (legacy enter()).
  struct Occupant {
    int instance = -1;
    int rank = -1;
    SimTime entered_at;
  };

  /// Forensics of the first violation observed.
  struct Violation {
    SimTime time;                  // when the overlapping entry happened
    Occupant entering;             // the process whose entry violated
    std::vector<Occupant> inside;  // who was already in the CS

    [[nodiscard]] std::string to_string() const {
      std::string out = "mutual exclusion violated at " + time.to_string() +
                        ": " + describe(entering) + " entered while " +
                        std::to_string(inside.size()) + " inside (";
      for (std::size_t i = 0; i < inside.size(); ++i) {
        if (i > 0) out += ", ";
        out += describe(inside[i]);
      }
      return out + ")";
    }

   private:
    static std::string describe(const Occupant& o) {
      if (o.instance < 0 && o.rank < 0) return "<unidentified>";
      return "instance " + std::to_string(o.instance) + " rank " +
             std::to_string(o.rank);
    }
  };

  /// `abort_on_violation` false lets tests observe violations instead of
  /// dying (the default aborts — experiments must not silently produce
  /// numbers from an unsafe run).
  explicit SafetyMonitor(bool abort_on_violation = true)
      : abort_(abort_on_violation) {}

  void enter(SimTime now = SimTime::zero(), int instance = -1,
             int rank = -1) {
    ++entries_;
    if (!occupants_.empty()) {
      ++violations_;
      if (!first_violation_) {
        first_violation_ = Violation{now, Occupant{instance, rank, now},
                                     occupants_};
      }
      if (abort_) {
        std::fprintf(stderr, "gridmutex safety monitor: %s\n",
                     first_violation_->to_string().c_str());
        GMX_ASSERT_MSG(false, "mutual exclusion violated (diagnostic above)");
      }
    }
    occupants_.push_back(Occupant{instance, rank, now});
  }

  void exit(int instance = -1, int rank = -1) {
    GMX_ASSERT_MSG(!occupants_.empty(), "exit() without matching enter()");
    // Remove the matching occupant (newest first); legacy callers that
    // never identify themselves pop the most recent entry.
    for (auto it = occupants_.rbegin(); it != occupants_.rend(); ++it) {
      if ((instance < 0 && rank < 0) ||
          (it->instance == instance && it->rank == rank)) {
        occupants_.erase(std::next(it).base());
        return;
      }
    }
    GMX_ASSERT_MSG(false, "exit() by a process that never entered");
  }

  [[nodiscard]] int in_cs() const { return int(occupants_.size()); }
  [[nodiscard]] std::uint64_t entries() const { return entries_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] const std::optional<Violation>& first_violation() const {
    return first_violation_;
  }

 private:
  bool abort_;
  std::vector<Occupant> occupants_;
  std::uint64_t entries_ = 0;
  std::uint64_t violations_ = 0;
  std::optional<Violation> first_violation_;
};

}  // namespace gmx
