// Global mutual exclusion monitor.
//
// Counts application processes currently inside the critical section. Every
// experiment and example runs with this armed: a protocol bug that ever lets
// two processes in is caught at the moment it happens, not post-hoc.
#pragma once

#include <cstdint>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

class SafetyMonitor {
 public:
  /// `abort_on_violation` false lets tests observe violations instead of
  /// dying (the default aborts — experiments must not silently produce
  /// numbers from an unsafe run).
  explicit SafetyMonitor(bool abort_on_violation = true)
      : abort_(abort_on_violation) {}

  void enter() {
    ++in_cs_;
    ++entries_;
    if (in_cs_ > 1) {
      ++violations_;
      GMX_ASSERT_MSG(!abort_, "mutual exclusion violated: 2 processes in CS");
    }
  }

  void exit() {
    GMX_ASSERT_MSG(in_cs_ > 0, "exit() without matching enter()");
    --in_cs_;
  }

  [[nodiscard]] int in_cs() const { return in_cs_; }
  [[nodiscard]] std::uint64_t entries() const { return entries_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }

 private:
  bool abort_;
  int in_cs_ = 0;
  std::uint64_t entries_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace gmx
