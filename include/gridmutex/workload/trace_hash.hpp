// Order-sensitive FNV-1a fingerprint of a simulation's delivery trace.
//
// The golden bit-identity tests (tests/workload_golden_trace_test.cpp) pin
// these hashes for seed-fixed experiments, so any kernel or network change
// that perturbs the observable trajectory — ordering, timing, payload
// bytes — flips the hash and fails loudly. The hash covers exactly what a
// tracer sees: (send time, delivery time, src, dst, protocol, type, ARQ
// seq, payload bytes) of every delivered message, in delivery order.
#pragma once

#include <cstdint>

#include "gridmutex/net/network.hpp"
#include "gridmutex/sim/time.hpp"

namespace gmx {

/// Accumulates the fingerprint; install via `install(net)` (occupies the
/// Network tracer slot) and read `value()` after the run drains.
class TraceHasher {
 public:
  static constexpr std::uint64_t kOffset = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void observe(const Message& m, SimTime sent, SimTime recv) {
    mix_u64(std::uint64_t(recv.count_ns()));
    mix_u64(std::uint64_t(sent.count_ns()));
    mix_u64(m.src);
    mix_u64(m.dst);
    mix_u64(m.protocol);
    mix_u64(m.type);
    mix_u64(m.seq);
    mix_u64(m.payload.size());
    for (std::uint8_t b : m.payload) mix_byte(b);
  }

  void install(Network& net) {
    net.set_tracer([this](const Message& m, SimTime sent, SimTime recv) {
      observe(m, sent, recv);
    });
  }

  [[nodiscard]] std::uint64_t value() const { return h_; }

  /// Order-sensitive fold of per-repetition hashes, used by
  /// ExperimentResult::merge so replicated runs are comparable too.
  [[nodiscard]] static std::uint64_t fold(std::uint64_t acc,
                                          std::uint64_t next) {
    return (acc ^ next) * kPrime;
  }

 private:
  void mix_byte(std::uint8_t b) {
    h_ ^= b;
    h_ *= kPrime;
  }
  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_byte(std::uint8_t(v >> (8 * i)));
  }

  std::uint64_t h_ = kOffset;
};

}  // namespace gmx
