// SweepRunner: deterministic replication-cell parallelism.
//
// The unit of parallel work is one *cell* — a single (configuration,
// repetition) pair executed by a user-supplied CellFn as one complete,
// single-threaded, seed-determined simulation. The runner fans all
// configs × repetitions cells over a thread pool, stores every result in a
// preallocated [config][repetition] grid, and only then (serially, on the
// calling thread) merges each config's repetition row in repetition order.
// Because no cell shares state with any other and the merge order is
// fixed, the output is bit-identical for every job count — jobs=1 and
// jobs=N must produce results that compare equal field for field
// (ExperimentResult::operator==), and tests/workload_sweep_test.cpp holds
// the runner to exactly that.
//
// This is finer-grained than parallelising over configurations: a sweep of
// 4 configs × 10 repetitions exposes 40 independent cells instead of 4
// serial run_replicated calls, so it saturates cores even when the config
// axis is short (the common case for the paper's figures).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "gridmutex/core/thread_annotations.hpp"
#include "gridmutex/workload/experiment.hpp"

namespace gmx {

namespace detail {

/// Serializes a user progress callback across concurrently completing
/// cells. The callback is the only cross-cell shared mutable touchpoint in
/// a sweep (result slots are disjoint), so it is the only thing that needs
/// a lock — and the lock discipline is machine-checked: `fn_` is
/// GMX_GUARDED_BY(mu_) and invoke() requires the capability.
class ProgressGate {
 public:
  using Fn = std::function<void(std::size_t done, std::size_t total)>;

  explicit ProgressGate(Fn fn) : fn_(std::move(fn)) {}

  void report(std::size_t done, std::size_t total) GMX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    invoke(done, total);
  }

 private:
  friend class ThreadSafetyProbe;  // seeded-violation tests only

  void invoke(std::size_t done, std::size_t total) GMX_REQUIRES(mu_) {
    if (fn_) fn_(done, total);
  }

  Mutex mu_;
  Fn fn_ GMX_GUARDED_BY(mu_);
};

}  // namespace detail

class SweepRunner {
 public:
  /// Executes one cell: configuration index + repetition number
  /// (0-based; the conventional seed is `cfg.seed + repetition`).
  using CellFn =
      std::function<ExperimentResult(std::size_t config, int repetition)>;
  /// Invoked (serialized) as cells complete; `total` counts cells.
  using Progress = std::function<void(std::size_t done, std::size_t total)>;

  /// `jobs` == 0 selects hardware concurrency; 1 runs serially inline
  /// (no pool, no extra threads — useful under sanitizers and as the
  /// reference side of equivalence tests).
  explicit SweepRunner(std::size_t jobs = 0);

  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Runs `configs` × `repetitions` cells and returns the full grid,
  /// `grid[c][r]` = cell (c, r). Exceptions from a cell propagate (first
  /// failing cell in index order).
  [[nodiscard]] std::vector<std::vector<ExperimentResult>> run_cells(
      std::size_t configs, int repetitions, const CellFn& cell,
      const Progress& progress = {}) const;

  /// run_cells, then merges each config's row in repetition order —
  /// the parallel equivalent of run_replicated per configuration.
  [[nodiscard]] std::vector<ExperimentResult> run_merged(
      std::size_t configs, int repetitions, const CellFn& cell,
      const Progress& progress = {}) const;

 private:
  std::size_t jobs_;
};

}  // namespace gmx
