// Experiment configuration and execution (paper §4).
//
// One experiment = one simulated run of a workload over a mutual exclusion
// configuration: either a two-level *composition* ("naimi-martin"), a *flat*
// original algorithm over all application nodes (the paper's baseline), or
// a *multi-level* hierarchy. `run_experiment` executes a single seed;
// `run_replicated` averages R seeded repetitions exactly as the paper
// averages 10 testbed runs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gridmutex/core/multilevel.hpp"
#include "gridmutex/fault/plan.hpp"
#include "gridmutex/fault/recovery.hpp"
#include "gridmutex/net/latency.hpp"
#include "gridmutex/workload/app_process.hpp"

namespace gmx {

/// How node-to-node delays are generated.
struct LatencySpec {
  enum class Kind { kGrid5000, kTwoLevel };
  Kind kind = Kind::kGrid5000;
  double jitter = 0.05;
  // kTwoLevel parameters:
  SimDuration lan = SimDuration::ms_f(0.5);
  SimDuration wan = SimDuration::ms(10);

  static LatencySpec grid5000(double jitter = 0.05) {
    return LatencySpec{Kind::kGrid5000, jitter, {}, {}};
  }
  static LatencySpec two_level(SimDuration lan, SimDuration wan,
                               double jitter = 0.0) {
    return LatencySpec{Kind::kTwoLevel, jitter, lan, wan};
  }

  /// Builds the model; kGrid5000 requires clusters == 9.
  [[nodiscard]] std::shared_ptr<const LatencyModel> build(
      std::uint32_t clusters) const;
};

struct ExperimentConfig {
  enum class Mode { kComposition, kFlat, kMultiLevel };
  Mode mode = Mode::kComposition;

  // kComposition:
  std::string intra = "naimi";
  std::string inter = "naimi";
  // kFlat:
  std::string flat_algorithm = "naimi";
  // kMultiLevel (topology/latency derive from the spec, not the fields
  // below; level_delays must match the spec's depth):
  std::optional<HierarchySpec> hierarchy;
  std::vector<SimDuration> level_delays;

  std::uint32_t clusters = 9;
  std::uint32_t apps_per_cluster = 20;  // paper: 20 nodes per cluster
  LatencySpec latency = LatencySpec::grid5000();

  WorkloadParams workload;
  std::uint64_t seed = 1;

  /// Arms the omniscient ProtocolChecker (analysis/protocol_checker.hpp) on
  /// the run: every cross-participant invariant is re-verified after every
  /// simulator event, and any violation aborts loudly with a diagnostic
  /// naming the instance and ranks. Costs roughly O(participants) per
  /// event — meant for audit runs and tests, off for measurement sweeps.
  /// (kFlat and kComposition runs get full instance coverage; kMultiLevel
  /// runs get coordinator-automaton and network-conservation coverage.)
  bool check_protocol = false;
  /// Liveness watchdog bound used when check_protocol is set.
  SimDuration grant_bound = SimDuration::sec(120);

  /// Hashes every wire delivery (time, endpoints, protocol, type, seq,
  /// payload bytes) into ExperimentResult::trace_hash — an order-sensitive
  /// FNV-1a fingerprint of the full observable trajectory. The golden
  /// bit-identity tests pin these hashes so kernel/network optimisations
  /// provably change nothing observable. Occupies the Network tracer slot;
  /// negligible cost, off by default.
  bool hash_trace = false;

  /// Fault campaign (fault/ subsystem). With `enabled == false` — the
  /// default — no fault object is constructed and no fault-stream Rng draw
  /// is made, so the trajectory is bit-for-bit the fault-free one.
  /// (kMultiLevel runs do not support campaigns.)
  struct FaultCampaign {
    bool enabled = false;
    FaultPlan plan;
    /// Arms ARQ retransmission, token-loss detection/regeneration and —
    /// for kComposition — coordinator failover. Disabled = the negative
    /// control: the same campaign runs and nobody recovers, so a killed
    /// token stalls the run (set stall_horizon to observe the stall
    /// instead of tripping the liveness assertions).
    bool recovery = true;
    RecoveryConfig recovery_cfg;
    /// When bounded, the run stops at this simulated instant if it has not
    /// drained by itself; the drain/liveness assertions are replaced by
    /// ExperimentResult::stalled. Safety is still asserted.
    SimTime stall_horizon = SimTime::max();
  };
  FaultCampaign faults;

  [[nodiscard]] std::uint32_t application_count() const;
  /// Human-readable series label, e.g. "Naimi-Martin" or "Naimi (flat)".
  [[nodiscard]] std::string label() const;
};

/// Per-lock slice of a LockService run (service/experiment.hpp). Message
/// counts include sub-messages that traveled inside BATCH frames.
struct LockMetrics {
  std::string name;
  ClusterId home_cluster = 0;
  std::uint64_t arrivals = 0;      // open-loop requests issued for this lock
  std::uint64_t completed_cs = 0;  // grants that ran their CS to completion
  DurationStats obtaining;         // arrival -> grant, incl. session queueing
  Histogram obtaining_hist{10'000.0, 200};
  std::uint64_t protocol_msgs = 0;  // all messages of this lock's instances
  std::uint64_t inter_msgs = 0;     // cluster-crossing subset
  std::uint64_t sheds = 0;          // arrivals rejected by admission control
  std::uint64_t revocations = 0;    // lease revocation epochs opened

  [[nodiscard]] double inter_msgs_per_cs() const {
    return completed_cs == 0 ? 0.0
                             : double(inter_msgs) / double(completed_cs);
  }
  /// Completed CS per simulated second of service time.
  [[nodiscard]] double throughput(double seconds) const {
    return seconds <= 0.0 ? 0.0 : double(completed_cs) / seconds;
  }

  void merge(const LockMetrics& other);

  [[nodiscard]] bool operator==(const LockMetrics&) const = default;
};

struct ExperimentResult {
  std::string label;
  double rho = 0;
  std::uint64_t total_cs = 0;

  DurationStats obtaining;  // merged over every CS of every process (and
                            // every repetition, for run_replicated)
  Histogram obtaining_hist{10'000.0, 200};

  MessageCounters messages;
  std::uint64_t inter_acquisitions = 0;  // composition modes only
  SimDuration makespan;                  // simulated completion time
  std::uint64_t events = 0;
  std::uint64_t safety_entries = 0;
  std::uint64_t safety_violations = 0;
  /// Diagnostic of the first safety violation (time, instance, ranks) —
  /// empty on a clean run. Populated for forensics even though
  /// run_experiment aborts on violations by default.
  std::string first_violation;
  /// Post-event invariant sweeps performed (0 unless check_protocol).
  std::uint64_t invariant_checks = 0;
  int repetitions = 1;

  // Fault-campaign outcome (all zero/false on fault-free runs).
  std::uint64_t faults_injected = 0;    // crashes + partitions + lossy links
                                        // + targeted drops fired
  std::uint64_t cs_under_faults = 0;    // CS completed inside a fault window
  std::uint64_t token_losses = 0;       // TokenRecoveryManager detections
  std::uint64_t token_regenerations = 0;
  std::uint64_t stranded_repairs = 0;
  std::uint64_t false_alarms = 0;
  std::uint64_t coordinator_failovers = 0;
  /// Loss detection instant → replacement token minted.
  DurationStats recovery_latency;
  /// The run hit FaultCampaign::stall_horizon without draining (negative
  /// controls). total_cs then under-counts the configured workload.
  bool stalled = false;

  // Service-resilience outcome (ISSUE 7; all zero on non-leased,
  // churn-free runs). Session counters tally every occurrence — a shed
  // arrival that is retried and shed again counts twice here but resolves
  // once in per_lock[].sheds.
  std::uint64_t lease_renewals = 0;    // renewals received by authorities
  std::uint64_t lease_revocations = 0; // revocation epochs opened
  std::uint64_t forced_releases = 0;   // involuntary releases executed
  std::uint64_t sheds = 0;             // admission-control rejections
  std::uint64_t cancels = 0;           // explicit cancellations honoured
  std::uint64_t deadline_misses = 0;   // acquire deadlines that expired
  std::uint64_t acquire_retries = 0;   // backoff re-admissions
  std::uint64_t client_crashes = 0;    // client-process deaths injected
  std::uint64_t cs_interrupted = 0;    // grants revoked / lost mid-CS
  std::uint64_t stale_releases = 0;    // fence-mismatched releases refused

  /// FNV-1a fingerprint of the full delivery trace (0 unless
  /// ExperimentConfig::hash_trace / ServiceConfig::hash_trace). merge()
  /// folds repetition hashes order-sensitively, so replicated runs are
  /// comparable too.
  std::uint64_t trace_hash = 0;

  // LockService runs only (service/experiment.hpp); empty otherwise.
  std::vector<LockMetrics> per_lock;
  /// Summed simulated service time across repetitions — the denominator of
  /// throughput figures (one repetition: equals the makespan).
  double service_seconds = 0.0;
  std::uint32_t lock_count = 0;
  double zipf_s = 0.0;
  std::uint64_t batched_messages = 0;  // sub-messages that rode BATCH frames
  std::uint64_t batch_frames = 0;
  std::uint64_t batch_bytes_saved = 0;

  /// Aggregate service throughput: completed CS per simulated second.
  [[nodiscard]] double throughput_cs_per_s() const {
    return service_seconds <= 0.0 ? 0.0
                                  : double(total_cs) / service_seconds;
  }
  /// Jain's fairness index over per-lock throughputs:
  /// J = (Σx)² / (K·Σx²) ∈ (0, 1]; 1 = perfectly even service. With Zipf
  /// skew the *offered* load is uneven, so J measures how evenly the
  /// service converts arrivals to completions across locks.
  [[nodiscard]] double jain_fairness() const;

  /// Paper metrics.
  [[nodiscard]] double obtaining_ms() const { return obtaining.mean_ms(); }
  [[nodiscard]] double stddev_ms() const { return obtaining.stddev_ms(); }
  [[nodiscard]] double relative_stddev() const {
    return obtaining.relative_stddev();
  }
  [[nodiscard]] double inter_msgs_per_cs() const {
    return total_cs == 0 ? 0.0
                         : double(messages.inter_cluster) / double(total_cs);
  }
  [[nodiscard]] double total_msgs_per_cs() const {
    return total_cs == 0 ? 0.0 : double(messages.sent) / double(total_cs);
  }
  [[nodiscard]] double inter_bytes_per_cs() const {
    return total_cs == 0 ? 0.0 : double(messages.bytes_inter) / double(total_cs);
  }

  void merge(const ExperimentResult& other);

  /// Field-for-field equality over every metric, forensic string and
  /// per-lock row — the contract the parallel sweep runner is held to:
  /// a jobs=N sweep must produce results == the jobs=1 sweep.
  [[nodiscard]] bool operator==(const ExperimentResult&) const = default;
};

/// Runs one seeded experiment to completion. Aborts (assert) on any safety
/// violation or livelock.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Runs `repetitions` seeds (cfg.seed, cfg.seed+1, ...) and merges.
[[nodiscard]] ExperimentResult run_replicated(ExperimentConfig cfg,
                                              int repetitions);

}  // namespace gmx
