// RtMutexEndpoint: binds a MutexAlgorithm participant to the real-time
// runtime — the rt/ counterpart of mutex/endpoint.hpp.
//
// Threading contract: the algorithm instance is touched exclusively on its
// node's serial queue. Public entry points (init/request_cs/release_cs)
// post there; observer upcalls re-dispatch the user callbacks through the
// same queue, so user code never re-enters an algorithm frame. State
// accessors (in_cs(), holds_token(), ...) are snapshots — safe to call
// from other threads only when the runtime is quiescent.
//
// The contract is single-thread *affinity*, not locking — there is no
// mutex to annotate, so debug builds enforce it at runtime instead:
// `algo_affinity_` (core/thread_annotations.hpp) pins the algorithm state
// to the first queue thread that touches it and aborts on any other.
#pragma once

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gridmutex/core/thread_annotations.hpp"
#include "gridmutex/mutex/algorithm.hpp"
#include "gridmutex/mutex/handle.hpp"
#include "gridmutex/rt/runtime.hpp"

namespace gmx::rt {

class RtMutexEndpoint final : public MutexHandle,
                              private MutexContext,
                              private MutexObserver {
 public:
  RtMutexEndpoint(RtRuntime& rt, ProtocolId protocol,
                  std::vector<NodeId> members, int self_rank,
                  std::unique_ptr<MutexAlgorithm> algorithm, Rng rng);

  RtMutexEndpoint(const RtMutexEndpoint&) = delete;
  RtMutexEndpoint& operator=(const RtMutexEndpoint&) = delete;

  void set_callbacks(MutexCallbacks cb) override {
    callbacks_ = std::move(cb);
  }

  /// Asynchronous: posts to the node thread. Call init on every endpoint
  /// and wait_quiescent before the first request.
  void init(int holder_rank);
  void request_cs() override;
  void release_cs() override;

  [[nodiscard]] NodeId node() const override {
    return members_[std::size_t(rank_)];
  }
  [[nodiscard]] int rank() const { return rank_; }
  /// Snapshots: exact on the owning node thread (where callbacks run) or
  /// at quiescence; racy-but-atomic reads otherwise.
  [[nodiscard]] CsState state() const override { return algo_->state(); }
  [[nodiscard]] bool in_cs() const override { return algo_->in_cs(); }
  [[nodiscard]] bool holds_token() const override {
    return algo_->holds_token();
  }
  [[nodiscard]] bool has_pending_requests() const override {
    return algo_->has_pending_requests();
  }
  [[nodiscard]] const MutexAlgorithm& algorithm() const { return *algo_; }

 private:
  // MutexContext
  [[nodiscard]] int self() const override { return rank_; }
  [[nodiscard]] int size() const override { return int(members_.size()); }
  [[nodiscard]] int cluster_of_rank(int rank) const override;
  void send(int to_rank, std::uint16_t type,
            std::span<const std::uint8_t> payload) override;
  Rng& rng() override { return rng_; }
  [[nodiscard]] SimTime now() const override;

  // MutexObserver
  void on_cs_granted() override;
  void on_pending_request() override;

  void handle_message(const Message& msg);

  RtRuntime& rt_;
  ProtocolId protocol_;
  std::vector<NodeId> members_;
  std::unordered_map<NodeId, int> rank_of_;
  int rank_;
  std::unique_ptr<MutexAlgorithm> algo_;
  Rng rng_;
  MutexCallbacks callbacks_;
  std::chrono::steady_clock::time_point epoch_;
  /// Pins algo_/rng_ mutation to the node's serial-queue thread.
  ThreadAffinityGuard algo_affinity_;
};

}  // namespace gmx::rt
