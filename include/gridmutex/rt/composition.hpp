// Two-level composition on the real-thread runtime — the rt/ counterpart
// of core/composition.hpp.
//
// Structure is identical (coordinator = first node of each cluster, intra
// instances per cluster, one inter instance over coordinators, the same
// Coordinator automaton via MutexHandle), but every participant runs on
// its own OS thread with wall-clock emulated latencies. Because the
// coordinator's two endpoints share a node, all automaton transitions run
// on that node's serial queue — the same single-threaded discipline the
// simulator provides, now enforced by the runtime.
//
// Validation-only, like the rest of rt/: the simulator remains the
// measurement substrate.
//
// Concurrency contract: construction and start() run on the caller's
// thread before any traffic flows; after start() the endpoint/coordinator
// structures are immutable and every mutation of protocol state happens on
// the owning node's serial queue (enforced per-endpoint by
// RtMutexEndpoint's ThreadAffinityGuard). privileged_coordinators() is a
// quiescent-only snapshot — call it after wait_quiescent() only.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gridmutex/core/coordinator.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/rt/endpoint.hpp"

namespace gmx::rt {

class RtComposition {
 public:
  struct Config {
    std::string intra_algorithm = "naimi";
    std::string inter_algorithm = "naimi";
    ClusterId initial_cluster = 0;
    ProtocolId protocol_base = 1;
    std::uint64_t seed = 1;
  };

  /// The runtime's topology must have >= 2 nodes per cluster (coordinator
  /// slot first, as in core/composition.hpp).
  RtComposition(RtRuntime& rt, Config cfg);

  RtComposition(const RtComposition&) = delete;
  RtComposition& operator=(const RtComposition&) = delete;

  /// Initializes every instance, waits for the runtime to settle, then
  /// starts all coordinators (each on its own node's queue). Blocks until
  /// the coordinators are in service or `timeout` expires; returns false
  /// on timeout.
  bool start(std::chrono::milliseconds timeout);

  [[nodiscard]] const std::vector<NodeId>& app_nodes() const {
    return app_nodes_;
  }
  [[nodiscard]] RtMutexEndpoint& app_mutex(NodeId node);
  [[nodiscard]] Coordinator& coordinator(ClusterId c) {
    return *coordinators_[c];
  }
  [[nodiscard]] std::uint32_t cluster_count() const {
    return std::uint32_t(coordinators_.size());
  }
  /// Quiescent-only snapshot.
  [[nodiscard]] int privileged_coordinators() const;

 private:
  RtRuntime& rt_;
  Config cfg_;
  std::vector<std::vector<std::unique_ptr<RtMutexEndpoint>>> intra_;
  std::vector<std::unique_ptr<RtMutexEndpoint>> inter_;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
  std::vector<NodeId> app_nodes_;
  std::vector<int> app_endpoint_of_node_;
};

}  // namespace gmx::rt
