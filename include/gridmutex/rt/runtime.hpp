// Real-time emulation runtime.
//
// The simulator (sim/, net/) is the measurement substrate; this module is
// the *deployment-shaped* one: every grid node is an OS thread, messages
// travel through in-memory channels, and link latency is emulated with
// wall-clock delays sampled from the same LatencyModel the simulator uses
// (scaled by `time_scale`, so a 10 ms WAN can become 100 µs in tests).
// The algorithms are bit-identical object code — they only ever see
// MutexContext — which demonstrates the library's substrate independence
// and exercises true asynchrony: preemption, real races between deliveries
// on different nodes, non-deterministic arrival interleavings.
//
// Execution model:
//   - one worker thread per node; everything that touches a node's state
//     (message delivery, user calls, callbacks) runs as a task on that
//     node's serial queue — per-node single-threadedness is the only
//     concurrency discipline algorithms need;
//   - one dispatcher thread owns the latency heap: send() stamps a
//     delivery deadline (per-pair FIFO preserved), the dispatcher sleeps
//     until due and forwards to the destination's queue.
//
// This is an emulation harness, not a socket stack: the paper's C/UDP
// deployment is substituted per DESIGN.md §2, and the simulator remains
// the source of all reported numbers (wall-clock runs are not
// reproducible). Tests use this module to validate safety and liveness
// under real concurrency.
//
// Concurrency contract (machine-checked under Clang -Wthread-safety):
// three capabilities partition the runtime's shared state — `rng_mu_`
// guards the latency RNG, `handlers_mu_` the handler table, `heap_mu_` the
// latency heap plus its FIFO clamp and sequence counter; each NodeWorker's
// own `mu` guards its task queue. Counters cross threads as atomics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gridmutex/core/thread_annotations.hpp"
#include "gridmutex/net/latency.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/net/topology.hpp"

namespace gmx::rt {

class RtRuntime {
 public:
  using Handler = std::function<void(const Message&)>;

  /// `time_scale` multiplies every sampled latency (0.01 turns a 10 ms
  /// link into 100 µs of real waiting).
  RtRuntime(Topology topo, std::shared_ptr<const LatencyModel> latency,
            std::uint64_t seed, double time_scale = 1.0);
  ~RtRuntime();

  RtRuntime(const RtRuntime&) = delete;
  RtRuntime& operator=(const RtRuntime&) = delete;

  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Registers the receive handler for (node, protocol). Call before any
  /// traffic for that pair. Thread-safe.
  void attach(NodeId node, ProtocolId protocol, Handler handler);

  /// Emulated datagram send. Thread-safe; callable from any node's tasks.
  void send(Message msg);

  /// Runs `fn` on `node`'s serial queue (the only legal way to touch that
  /// node's protocol state from outside).
  void post(NodeId node, std::function<void()> fn);

  /// Blocks until every node queue and the latency heap are empty and all
  /// workers are idle, or the timeout expires. Returns true on quiescence.
  bool wait_quiescent(std::chrono::milliseconds timeout);

  /// Stops accepting work and joins all threads (destructor calls this).
  void shutdown();

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_.load(); }
  [[nodiscard]] std::uint64_t messages_delivered() const {
    return delivered_.load();
  }

 private:
  friend class ThreadSafetyProbe;  // seeded-violation tests only

  struct NodeWorker {
    Mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks GMX_GUARDED_BY(mu);
    std::thread thread;
  };

  struct InFlight {
    std::chrono::steady_clock::time_point due;
    std::uint64_t seq;
    Message msg;
    friend bool operator>(const InFlight& a, const InFlight& b) {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void worker_loop(NodeId node);
  void dispatcher_loop();
  void deliver(Message msg);

  Topology topo_;
  std::shared_ptr<const LatencyModel> latency_;
  double scale_;

  Mutex rng_mu_;
  Rng rng_ GMX_GUARDED_BY(rng_mu_);

  std::vector<std::unique_ptr<NodeWorker>> workers_;
  Mutex handlers_mu_;
  std::unordered_map<std::uint64_t, Handler> handlers_
      GMX_GUARDED_BY(handlers_mu_);  // node<<32|proto

  Mutex heap_mu_;
  std::condition_variable heap_cv_;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> heap_
      GMX_GUARDED_BY(heap_mu_);
  std::unordered_map<std::uint64_t, std::chrono::steady_clock::time_point>
      last_delivery_ GMX_GUARDED_BY(heap_mu_);  // per (src,dst) FIFO clamp
  std::uint64_t seq_ GMX_GUARDED_BY(heap_mu_) = 0;
  std::thread dispatcher_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<int> pending_work_{0};  // queued tasks + in-flight messages
};

}  // namespace gmx::rt
