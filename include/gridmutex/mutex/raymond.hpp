// Raymond's tree token algorithm (Raymond 1989).
//
// Not one of the paper's three evaluated algorithms, but cited in its
// related work (Housni et al. use it intra-group) and a natural extra
// plug-in for the composition framework: a *static* spanning tree where
// each participant only knows its neighbours, a `holder` pointer along the
// edge toward the token, and a local FIFO of requests (its own + its
// neighbours'). O(log N) messages per CS on a balanced tree.
//
// The tree here is the binary heap shape re-rooted at the initial holder:
// parent(v) = (v-1)/2 on virtual indices v = (rank - holder) mod N.
#pragma once

#include <deque>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class RaymondMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,  // empty payload: a request from a subtree is anonymous
    kToken = 2,    // empty payload
  };

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override;
  [[nodiscard]] bool holds_token() const override {
    return holder_ == ctx().self();
  }
  [[nodiscard]] std::string_view name() const override { return "raymond"; }

  /// Tree neighbour toward the token (== self when holding it).
  [[nodiscard]] int holder_dir() const { return holder_; }
  [[nodiscard]] int tree_parent() const;  // kNoHolder when we are the root

 private:
  void assign_privilege();
  void make_request();

  int holder_ = 0;       // neighbour toward the token, or self
  int root_ = 0;         // initial holder, fixes the tree shape
  bool asked_ = false;   // a kRequest is already outstanding toward holder_
  std::deque<int> q_;    // FIFO of requesting neighbours (or self)
};

}  // namespace gmx
