// Algorithm factory.
//
// The composition framework (and the experiment configs) select algorithms
// by name — the paper's "Intra-Inter" notation ("Naimi-Martin" = Naimi
// intra, Martin inter) maps onto two factory lookups.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

using AlgorithmFactory = std::function<std::unique_ptr<MutexAlgorithm>()>;

/// Creates an algorithm by name. Known names: "naimi", "martin", "suzuki",
/// "raymond", "central", "ricart". Throws std::invalid_argument otherwise.
[[nodiscard]] std::unique_ptr<MutexAlgorithm> make_algorithm(
    std::string_view name);

/// Factory handle for the same names (useful when one experiment
/// instantiates many endpoints).
[[nodiscard]] AlgorithmFactory algorithm_factory(std::string_view name);

/// All registered algorithm names, in presentation order (the paper's three
/// first).
[[nodiscard]] const std::vector<std::string>& algorithm_names();

/// True for algorithms that pass a token (init requires a holder);
/// false for permission-based ones (init accepts kNoHolder).
[[nodiscard]] bool is_token_based(std::string_view name);

/// One-line human description of an algorithm (CLI --list-algorithms).
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] std::string_view algorithm_description(std::string_view name);

/// Human-readable name of a protocol message type, e.g.
/// message_type_name("naimi", 2) == "TOKEN". Returns "type<N>" for unknown
/// codes (trace output must never fail on a corrupt frame).
[[nodiscard]] std::string message_type_name(std::string_view algorithm,
                                            std::uint16_t type);

/// Parses the paper's "Intra-Inter" composition notation, e.g.
/// "naimi-martin" → {"naimi", "martin"}. Case-insensitive. Throws
/// std::invalid_argument on malformed input or unknown algorithms.
struct CompositionSpec {
  std::string intra;
  std::string inter;
};
[[nodiscard]] CompositionSpec parse_composition(std::string_view spec);

}  // namespace gmx
