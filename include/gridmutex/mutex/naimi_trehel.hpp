// Naimi-Tréhel token algorithm (paper §2.2; Naimi, Tréhel, Arnold 1996).
//
// Two distributed structures:
//  - the *last tree*: every participant keeps `last`, its best guess of the
//    most recent requester (the tree root). Requests climb the tree via
//    `last` pointers, and each hop performs path reversal (`last` := new
//    requester), so the requester becomes the new root.
//  - the *next queue*: `next` at participant i names who receives the token
//    when i leaves its critical section, forming a distributed FIFO of
//    unsatisfied requests.
//
// Message cost per CS averages O(log N); a request travels O(log N) hops,
// the token exactly one.
#pragma once

#include <optional>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class NaimiTrehelMutex final : public MutexAlgorithm {
 public:
  /// Message kinds (wire `type` field).
  enum MsgType : std::uint16_t {
    kRequest = 1,     // payload: varint original-requester rank
    kToken = 2,       // empty payload
    kRegenQuery = 3,  // payload: varint round
    kRegenReply = 4,  // payload: varint round, varint flags, varint next+1|0
  };
  /// kRegenReply flag bits.
  static constexpr std::uint64_t kFlagRequesting = 1;
  static constexpr std::uint64_t kFlagHasToken = 2;

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override {
    return next_.has_value();
  }
  [[nodiscard]] bool holds_token() const override { return has_token_; }
  [[nodiscard]] std::string_view name() const override { return "naimi"; }

  // Token regeneration (see algorithm.hpp). A token is only ever lost in
  // transit to a requesting participant, and at detection time (network
  // quiescent) the distributed queue survives intact in the `next` pointers:
  // the lost token's intended recipient is exactly the requester that no
  // other participant names as its `next`. The elected initiator collects
  // (requesting, next) from every peer, identifies that queue head, and
  // mints one fresh token to it; the chain then drains normally. Requests
  // racing the consultation can momentarily produce a second headless
  // requester — the initiator picks deterministically (lowest rank) and the
  // recovery manager's stranded-token repair restores liveness for the
  // other. A reply reporting the token alive aborts the round.
  [[nodiscard]] bool supports_token_regeneration() const override {
    return true;
  }
  void begin_token_regeneration() override;
  void cancel_token_regeneration() override;
  void surrender_token_to(int to_rank) override;

  /// White-box accessors for structural tests.
  [[nodiscard]] int last() const { return last_; }
  [[nodiscard]] std::optional<int> next() const { return next_; }

 private:
  void handle_request(int requester);
  void handle_token();
  void handle_regen_query(int from_rank, std::uint64_t round);
  void handle_regen_reply(int from_rank, std::uint64_t round,
                          std::uint64_t flags, std::uint64_t next_plus_one);
  void finish_regeneration();

  int last_ = 0;                // probable owner; == self() when root
  std::optional<int> next_;     // successor in the distributed queue
  bool has_token_ = false;

  // Regeneration round state (initiator side only).
  bool regen_active_ = false;
  std::uint64_t regen_round_ = 0;  // bumped per round; stale replies ignored
  std::vector<std::uint8_t> regen_seen_;        // reply recorded, per rank
  std::vector<std::uint8_t> regen_requesting_;  // replier requesting?
  std::vector<int> regen_next_;                 // replier's next, -1 = none
  int regen_outstanding_ = 0;
};

}  // namespace gmx
