// Naimi-Tréhel token algorithm (paper §2.2; Naimi, Tréhel, Arnold 1996).
//
// Two distributed structures:
//  - the *last tree*: every participant keeps `last`, its best guess of the
//    most recent requester (the tree root). Requests climb the tree via
//    `last` pointers, and each hop performs path reversal (`last` := new
//    requester), so the requester becomes the new root.
//  - the *next queue*: `next` at participant i names who receives the token
//    when i leaves its critical section, forming a distributed FIFO of
//    unsatisfied requests.
//
// Message cost per CS averages O(log N); a request travels O(log N) hops,
// the token exactly one.
#pragma once

#include <optional>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class NaimiTrehelMutex final : public MutexAlgorithm {
 public:
  /// Message kinds (wire `type` field).
  enum MsgType : std::uint16_t {
    kRequest = 1,  // payload: varint original-requester rank
    kToken = 2,    // empty payload
  };

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override {
    return next_.has_value();
  }
  [[nodiscard]] bool holds_token() const override { return has_token_; }
  [[nodiscard]] std::string_view name() const override { return "naimi"; }

  /// White-box accessors for structural tests.
  [[nodiscard]] int last() const { return last_; }
  [[nodiscard]] std::optional<int> next() const { return next_; }

 private:
  void handle_request(int requester);
  void handle_token();

  int last_ = 0;                // probable owner; == self() when root
  std::optional<int> next_;     // successor in the distributed queue
  bool has_token_ = false;
};

}  // namespace gmx
