// Centralized coordinator mutex (textbook baseline; the paper's related
// work cites two-level schemes with a centralized lower level, e.g.
// Madhuram & Kumar).
//
// One participant (the initial holder) acts as the server: it owns the
// token and a FIFO queue. Clients send REQUEST, receive GRANT, and send
// RELEASE when done. 3 messages per CS (2 when the server itself requests),
// all funneling through one participant — minimal message count, maximal
// load concentration.
//
// Extension for composition: when a request queues behind a lent-out grant,
// the server sends a single REVOKE to the current holder. A plain client
// ignores demand signals anyway, but a composition coordinator holding the
// inter grant must learn that other clusters are waiting (the
// on_pending_request contract) — without REVOKE the centralized algorithm
// has no holder-side demand channel at all. Costs at most one extra message
// per contended grant.
#pragma once

#include <deque>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class CentralServerMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,  // client -> server, empty payload
    kGrant = 2,    // server -> client, empty payload
    kRelease = 3,  // client -> server, empty payload
    kRevoke = 4,   // server -> current holder: others are waiting
  };

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override;
  [[nodiscard]] bool holds_token() const override;
  [[nodiscard]] std::string_view name() const override { return "central"; }

  [[nodiscard]] bool is_server() const { return server_ == ctx().self(); }
  [[nodiscard]] int server_rank() const { return server_; }

 private:
  void server_enqueue(int client);
  void server_grant_next();
  void server_on_release();

  void maybe_revoke();

  int server_ = 0;
  // Server-side state:
  std::deque<int> q_;
  bool busy_ = false;      // token lent out (or used by the server itself)
  int current_ = kNoHolder;
  bool revoke_sent_ = false;  // one REVOKE per grant
  // Client-side state:
  bool revoked_ = false;   // server signalled pending demand on our grant
};

}  // namespace gmx
