// Ricart-Agrawala permission-based mutex (Ricart & Agrawala 1981).
//
// The paper's taxonomy (§1) contrasts token-based algorithms with
// permission-based ones; this implementation provides the latter as a
// comparison baseline and as an extra composition plug-in (several related
// hybrid schemes — Housni, Erciyes — use Ricart-Agrawala at one level).
//
// A requester stamps its request with a Lamport clock and broadcasts it;
// it enters the CS after all N-1 peers reply. A peer replies immediately
// unless it is in the CS, or requesting with an older (smaller) timestamp —
// then it defers the reply until its own release. 2(N-1) messages per CS.
//
// Token-mapping notes for the composition layer: there is no token, so
// init() accepts kNoHolder; `holds_token()` degenerates to in_cs(); the
// deferred-reply set plays the pending-request role. Ties are broken by
// rank, so giving a composition coordinator rank 0 lets it win the initial
// all-equal-timestamp race deterministically (see core/composition.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class RicartAgrawalaMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,  // payload: varint Lamport timestamp
    kReply = 2,    // empty payload
  };

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override {
    return !deferred_.empty();
  }
  [[nodiscard]] bool holds_token() const override { return in_cs(); }
  [[nodiscard]] std::string_view name() const override { return "ricart"; }

  [[nodiscard]] std::uint64_t clock() const { return clock_; }
  [[nodiscard]] int replies_missing() const { return replies_missing_; }

 private:
  /// True when (their_ts, their_rank) precedes our outstanding request.
  [[nodiscard]] bool their_request_wins(std::uint64_t ts, int rank) const;

  std::uint64_t clock_ = 0;
  std::uint64_t request_ts_ = 0;  // valid while state()==kRequesting/kInCs
  int replies_missing_ = 0;
  std::vector<int> deferred_;     // peers awaiting our reply
};

}  // namespace gmx
