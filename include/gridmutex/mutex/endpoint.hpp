// MutexEndpoint: binds an algorithm instance participant to the network.
//
// One endpoint = one participant of one algorithm instance, living on one
// grid node. It translates between instance ranks and grid NodeIds, attaches
// to the network under the instance's ProtocolId, and exposes the user-facing
// mutex API (request/release + callbacks).
//
// Observer decoupling: algorithms invoke MutexObserver upcalls synchronously
// from deep inside protocol frames. The endpoint re-dispatches them to the
// user's callbacks through a zero-delay simulator event, so user code (the
// application driver, or the composition coordinator) never re-enters an
// algorithm while one of its frames is on the stack.
#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"
#include "gridmutex/mutex/handle.hpp"
#include "gridmutex/net/network.hpp"

namespace gmx {

class MutexEndpoint final : public MutexHandle,
                            private MutexContext,
                            private MutexObserver {
 public:
  /// `members[rank]` is the grid node of each participant; `self_rank`
  /// selects which participant this endpoint embodies — it must live on
  /// `members[self_rank]`. All endpoints of an instance share `protocol`.
  MutexEndpoint(Network& net, ProtocolId protocol,
                std::vector<NodeId> members, int self_rank,
                std::unique_ptr<MutexAlgorithm> algorithm, Rng rng);
  ~MutexEndpoint() override;

  MutexEndpoint(const MutexEndpoint&) = delete;
  MutexEndpoint& operator=(const MutexEndpoint&) = delete;

  /// Forwards to MutexAlgorithm::init. Call on every endpoint of the
  /// instance, with the same holder rank, before any request.
  void init(int holder_rank) { algo_->init(holder_rank); }

  void set_callbacks(MutexCallbacks cb) override {
    callbacks_ = std::move(cb);
  }

  /// Asks for the critical section; on_granted fires when acquired.
  void request_cs() override { algo_->request_cs(); }
  /// Leaves the critical section.
  void release_cs() override { algo_->release_cs(); }

  [[nodiscard]] CsState state() const override { return algo_->state(); }
  [[nodiscard]] bool in_cs() const override { return algo_->in_cs(); }
  [[nodiscard]] bool holds_token() const override {
    return algo_->holds_token();
  }
  [[nodiscard]] bool has_pending_requests() const override {
    return algo_->has_pending_requests();
  }

  [[nodiscard]] MutexAlgorithm& algorithm() { return *algo_; }
  [[nodiscard]] const MutexAlgorithm& algorithm() const { return *algo_; }

  [[nodiscard]] NodeId node() const override {
    return members_[std::size_t(rank_)];
  }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] ProtocolId protocol() const { return protocol_; }
  [[nodiscard]] const std::vector<NodeId>& members() const { return members_; }

  // MutexContext (exposed for white-box algorithm tests).
  [[nodiscard]] int self() const override { return rank_; }
  [[nodiscard]] int size() const override {
    return int(members_.size());
  }
  [[nodiscard]] int cluster_of_rank(int rank) const override;

 private:
  // MutexContext. The three send paths are all zero-copy against the
  // network's buffer pool: span sends copy once into a pooled block,
  // writer sends encode directly into one, shared sends bump a refcount.
  void send(int to_rank, std::uint16_t type,
            std::span<const std::uint8_t> payload) override;
  [[nodiscard]] wire::Writer writer(std::size_t reserve) override;
  void send_writer(int to_rank, std::uint16_t type,
                   wire::Writer&& w) override;
  void send_shared(int to_rank, std::uint16_t type,
                   const Payload& payload) override;
  Rng& rng() override { return rng_; }
  [[nodiscard]] SimTime now() const override;

  // MutexObserver — deferred fan-out to user callbacks.
  void on_cs_granted() override;
  void on_pending_request() override;

  void handle_message(const Message& msg);

  Network& net_;
  ProtocolId protocol_;
  std::vector<NodeId> members_;
  // node -> rank, sorted by node for binary search. Instances are small
  // (a cluster or the coordinator ring), so a flat sorted vector beats a
  // hash table on both the per-delivery lookup and — measured in the K=16
  // service setup, which builds thousands of endpoints — construction.
  std::vector<std::pair<NodeId, int>> rank_of_;
  int rank_;
  std::unique_ptr<MutexAlgorithm> algo_;
  Rng rng_;
  MutexCallbacks callbacks_;
};

}  // namespace gmx
