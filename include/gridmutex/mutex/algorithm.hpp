// Mutual exclusion algorithm interface.
//
// An algorithm instance is a per-participant state machine. Participants are
// identified by *rank* 0..size-1 within the instance; the mapping of ranks
// onto grid nodes (and the network send path) is provided by a MutexContext.
// The same algorithm object code therefore runs, unmodified:
//   - flat over all grid nodes (the paper's "original algorithm" baselines),
//   - as an *intra* instance over one cluster's nodes + coordinator,
//   - as an *inter* instance over the coordinators only.
// This rank/node separation is the mechanism behind the paper's claim (§3.1)
// that "the chosen algorithms for both layers do not need to be modified".
//
// State model (paper Fig. 1a): every participant is Idle (NO_REQ),
// Requesting (REQ) or InCs (CS). `request_cs()` moves Idle→Requesting and
// eventually the observer's on_cs_granted() fires (possibly at the same
// simulated instant, for an idle token holder); `release_cs()` moves
// InCs→Idle.
//
// The observer additionally reports *pending requests*: classical token
// algorithms queue requests that arrive while the holder is in its critical
// section; `on_pending_request()` surfaces the 0→>0 transition of that
// queue. The composition coordinator (core/coordinator.hpp) drives its
// automaton from exactly this signal — it is instrumentation of existing
// algorithm state, not a protocol change.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

#include "gridmutex/net/wire.hpp"
#include "gridmutex/sim/random.hpp"
#include "gridmutex/sim/time.hpp"

namespace gmx {

/// Paper Fig. 1(a): NO_REQ / REQ / CS.
enum class CsState : std::uint8_t { kIdle, kRequesting, kInCs };

[[nodiscard]] std::string_view to_string(CsState s);

/// Services an algorithm may use; implemented by MutexEndpoint.
class MutexContext {
 public:
  virtual ~MutexContext() = default;

  /// This participant's rank within the instance.
  [[nodiscard]] virtual int self() const = 0;
  /// Number of participants.
  [[nodiscard]] virtual int size() const = 0;

  /// Sends a protocol message to another participant. `to_rank` must differ
  /// from self(): algorithms handle loopback internally (a queue update is
  /// not a message — and the paper's message counts must not inflate).
  virtual void send(int to_rank, std::uint16_t type,
                    std::span<const std::uint8_t> payload) = 0;

  /// A Writer to encode a payload into. MutexEndpoint hands out a
  /// pool-backed Writer so the bytes are built directly inside the block
  /// the network will carry — finish with send_writer() for a zero-copy
  /// send. The default (contexts without a pool) is a plain heap Writer.
  [[nodiscard]] virtual wire::Writer writer(std::size_t reserve);

  /// Sends the Writer's finished encoding. With a pool-backed Writer the
  /// block moves into the datagram without a copy; the default falls back
  /// to span send(). The Writer is consumed.
  virtual void send_writer(int to_rank, std::uint16_t type, wire::Writer&& w);

  /// Encode-once fan-out: sends an already-encoded payload, sharing the
  /// underlying block across all sends (refcount bump per datagram, no
  /// re-encode, no copy). Legal because payloads are immutable once
  /// encoded — see net/buffer_pool.hpp ownership rules. Broadcast loops
  /// (Suzuki-Kasami/Lamport/Ricart-Agrawala REQUEST) build the payload
  /// once with writer()+take_payload() and call this per peer.
  virtual void send_shared(int to_rank, std::uint16_t type,
                           const Payload& payload);

  /// Cluster of a participant's node. Classical algorithms ignore this;
  /// cluster-aware ones (Bertier-style hierarchical Naimi-Tréhel) use it
  /// for locality-preferring grant policies.
  [[nodiscard]] virtual int cluster_of_rank(int rank) const = 0;

  /// Deterministic per-instance randomness (tie-breaking, jitter).
  virtual Rng& rng() = 0;

  /// Current simulated time (timestamps, diagnostics).
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// Upcalls from the algorithm. Implementations must tolerate being invoked
/// from within request_cs()/release_cs()/on_message() frames; MutexEndpoint
/// defers its user-facing callbacks through the simulator to decouple them.
class MutexObserver {
 public:
  virtual ~MutexObserver() = default;

  /// The local request has been granted; the participant is now InCs.
  virtual void on_cs_granted() = 0;

  /// The algorithm learned of at least one other participant's request that
  /// this participant will have to satisfy (it currently holds the token /
  /// the privilege). Edge-triggered on the empty→non-empty transition.
  virtual void on_pending_request() = 0;
};

class MutexAlgorithm {
 public:
  virtual ~MutexAlgorithm() = default;

  MutexAlgorithm() = default;
  MutexAlgorithm(const MutexAlgorithm&) = delete;
  MutexAlgorithm& operator=(const MutexAlgorithm&) = delete;

  /// Binds the instance to its context and observer. Called exactly once,
  /// before init().
  void attach(MutexContext& ctx, MutexObserver& obs);

  /// Establishes the initial protocol state on this participant.
  /// `holder_rank` names the participant that initially holds the token,
  /// idle (token-based algorithms require 0 <= holder_rank < size).
  /// Permission-based algorithms (Ricart-Agrawala) have no token and accept
  /// kNoHolder. Called once on every participant, all with the same value,
  /// before any request.
  static constexpr int kNoHolder = -1;
  virtual void init(int holder_rank) = 0;

  /// Asks for the critical section. Precondition: state()==kIdle.
  virtual void request_cs() = 0;

  /// Leaves the critical section. Precondition: state()==kInCs.
  virtual void release_cs() = 0;

  /// Delivers a protocol message from `from_rank`. Malformed payloads throw
  /// wire::WireError.
  virtual void on_message(int from_rank, std::uint16_t type,
                          wire::Reader payload) = 0;

  /// True when another participant's request is waiting on this one.
  [[nodiscard]] virtual bool has_pending_requests() const = 0;

  /// True when this participant possesses the token (token algorithms) or
  /// is in CS (permission algorithms — the closest analogue).
  [[nodiscard]] virtual bool holds_token() const = 0;

  /// Algorithm identifier, e.g. "naimi".
  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] CsState state() const { return state_; }
  [[nodiscard]] bool in_cs() const { return state_ == CsState::kInCs; }

  /// Analysis tap (analysis/protocol_checker.hpp): fires on every Fig. 1(a)
  /// state change with the exact (from, to) pair, including any transition
  /// an algorithm performs outside the protected helpers — which is exactly
  /// what an omniscient checker must see to judge automaton legality.
  using StateHook = std::function<void(CsState from, CsState to)>;
  void set_state_hook(StateHook hook) { state_hook_ = std::move(hook); }

  // --- Token regeneration (fault/recovery.hpp) -----------------------------
  //
  // A lost token is detected *outside* the algorithm (the recovery manager
  // watches network quiescence); regeneration itself is a protocol extension
  // the algorithm implements, because only it knows how to rebuild a token
  // consistent with its distributed state. Algorithms without an
  // implementation return false from supports_token_regeneration() and
  // ignore the other calls; the recovery manager then reports the loss as
  // unrecoverable rather than guessing.

  /// True if this algorithm implements begin_token_regeneration().
  [[nodiscard]] virtual bool supports_token_regeneration() const {
    return false;
  }

  /// Starts a regeneration round on this participant (chosen by the
  /// recovery manager as initiator). The algorithm consults peers as its
  /// protocol requires and eventually recreates the token exactly once,
  /// then reports completion through the recovery hook below. Must be
  /// idempotent-safe: a second call while a round is running is ignored.
  virtual void begin_token_regeneration() {}

  /// Abandons an in-progress regeneration round (the recovery manager is
  /// about to elect a different initiator). After this returns the
  /// participant must be unable to mint a token from stale replies.
  virtual void cancel_token_regeneration() {}

  /// Forensic/repair handle: forcibly re-seats an idle token at `to_rank`
  /// on *this* participant's local state (called only on the participant
  /// that holds a stranded token). Used by recovery tooling to reconcile
  /// state the normal protocol cannot reach; asserts holds_token().
  virtual void surrender_token_to(int to_rank);

  /// Fires when a regeneration round started here completes and the token
  /// has been re-minted locally. The recovery manager closes the
  /// regeneration epoch from this signal.
  using RecoveryHook = std::function<void()>;
  void set_recovery_hook(RecoveryHook hook) {
    recovery_hook_ = std::move(hook);
  }

 protected:
  [[nodiscard]] MutexContext& ctx() const;
  [[nodiscard]] MutexObserver& observer() const;
  [[nodiscard]] bool attached() const { return ctx_ != nullptr; }

  /// Uniform diagnostic for the on_message() default branch: throws
  /// wire::WireError naming the algorithm and the offending type byte.
  [[noreturn]] void throw_unknown_message(std::uint16_t type) const;

  void set_state(CsState s) {
    const CsState from = state_;
    state_ = s;
    if (state_hook_ && from != s) state_hook_(from, s);
  }

  /// Transition helpers shared by all implementations; they enforce the
  /// Fig. 1(a) automaton.
  void begin_request();             // kIdle -> kRequesting
  void enter_cs_and_notify();       // kRequesting -> kInCs + on_cs_granted
  void begin_release();             // kInCs -> kIdle

  /// Regenerating implementations call this right after re-minting the
  /// token to notify the recovery manager (no-op when no hook installed).
  void notify_token_regenerated() {
    if (recovery_hook_) recovery_hook_();
  }

 private:
  MutexContext* ctx_ = nullptr;
  MutexObserver* obs_ = nullptr;
  CsState state_ = CsState::kIdle;
  StateHook state_hook_;
  RecoveryHook recovery_hook_;
};

}  // namespace gmx
