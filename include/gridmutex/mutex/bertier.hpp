// Bertier-style hierarchical Naimi-Tréhel (related work, paper §5).
//
// Bertier, Arantes & Sens (JPDC 2006) adapt Naimi-Tréhel to a grid not by
// composing two instances (this paper's approach) but by making the single
// flat algorithm *cluster-aware*: pending requests queue at the token
// holder, which grants requests from its own cluster first, bounded by an
// aging limit so remote clusters cannot starve. gridmutex implements it as
// a comparison baseline for the composition approach.
//
// Structure, relative to classical Naimi-Tréhel:
//   - `last` pointers form a chase-the-token chain: each holder, when it
//     ships the token, points `last` at the recipient. Requests forward
//     along `last` until they reach the current holder (no path reversal —
//     the requester is not the next owner; the holder's queue decides).
//     This is a deliberate simplification of Bertier's machinery: path
//     reversal toward a *requester* would be unsound here because
//     requesters do not absorb requests (only holders queue), so reversal
//     could build forwarding cycles. The measurable cost of the chase —
//     long WAN request walks at high parallelism — is itself a finding;
//     see bench/baseline_bertier.cpp.
//   - the token message carries the pending queue plus the current
//     local-grant streak; the holder grants a same-cluster requester while
//     streak < max_local_streak, else the oldest remote one.
#pragma once

#include <cstdint>
#include <deque>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class BertierMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,  // payload: varint requester rank
    kToken = 2,    // payload: varint streak, varint_array queue
  };

  /// `max_local_streak`: consecutive same-cluster grants before a queued
  /// remote request must be served (the aging bound; Bertier's "local
  /// preference" parameter).
  explicit BertierMutex(int max_local_streak = 5)
      : max_local_streak_(max_local_streak) {}

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override {
    return has_token_ && !q_.empty();
  }
  [[nodiscard]] bool holds_token() const override { return has_token_; }
  [[nodiscard]] std::string_view name() const override { return "bertier"; }

  [[nodiscard]] int last() const { return last_; }
  [[nodiscard]] int local_streak() const { return streak_; }
  [[nodiscard]] const std::deque<std::uint32_t>& queue() const { return q_; }

 private:
  void handle_request(int requester);
  /// Pops the next grantee per the locality policy and ships the token.
  void grant_from_queue();

  int max_local_streak_;
  int last_ = 0;        // toward the probable token holder
  bool has_token_ = false;
  // Holder-only state (travels with the token):
  std::deque<std::uint32_t> q_;
  int streak_ = 0;      // consecutive grants within the holder's cluster
};

}  // namespace gmx
