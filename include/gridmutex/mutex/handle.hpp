// MutexHandle: the substrate-independent face of one mutex participant.
//
// The composition coordinator (core/coordinator.hpp) drives two mutex
// endpoints without caring whether they live on the deterministic
// simulator (mutex/endpoint.hpp) or on the real-thread runtime
// (rt/endpoint.hpp). This interface is exactly the surface it needs:
// request/release, the callback hooks, and state snapshots.
//
// Threading note: on the simulator everything is single-threaded; on the
// rt runtime a handle must only be driven from its node's serial queue
// (which is where callbacks are delivered), so implementations need no
// internal locking.
#pragma once

#include <functional>

#include "gridmutex/mutex/algorithm.hpp"
#include "gridmutex/net/topology.hpp"

namespace gmx {

struct MutexCallbacks {
  /// Invoked when this endpoint's pending request is granted.
  std::function<void()> on_granted;
  /// Invoked when the underlying algorithm reports newly pending foreign
  /// requests (see MutexObserver::on_pending_request). Optional.
  std::function<void()> on_pending;
};

class MutexHandle {
 public:
  virtual ~MutexHandle() = default;

  virtual void set_callbacks(MutexCallbacks cb) = 0;
  virtual void request_cs() = 0;
  virtual void release_cs() = 0;

  [[nodiscard]] virtual CsState state() const = 0;
  [[nodiscard]] virtual bool in_cs() const = 0;
  [[nodiscard]] virtual bool holds_token() const = 0;
  [[nodiscard]] virtual bool has_pending_requests() const = 0;
  [[nodiscard]] virtual NodeId node() const = 0;
};

}  // namespace gmx
