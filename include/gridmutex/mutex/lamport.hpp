// Lamport's mutual exclusion algorithm (Lamport 1978; paper §1's first
// permission-based citation).
//
// Every participant maintains a logical clock and a request queue ordered
// by (timestamp, rank). To enter, broadcast REQUEST(ts) and wait until
// (a) your request heads your local queue and (b) every peer has answered
// with something later than ts (here: an explicit REPLY). RELEASE is
// broadcast on exit and removes the entry everywhere. 3(N-1) messages per
// CS — the historical baseline the later permission algorithms improve on.
//
// Requires FIFO channels (a RELEASE overtaking its REQUEST breaks the
// queue discipline) — gridmutex networks are FIFO per pair by default.
#pragma once

#include <cstdint>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class LamportMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,  // payload: varint timestamp
    kReply = 2,    // payload: varint timestamp
    kRelease = 3,  // empty payload
  };

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override;
  [[nodiscard]] bool holds_token() const override { return in_cs(); }
  [[nodiscard]] std::string_view name() const override { return "lamport"; }

  [[nodiscard]] std::uint64_t clock() const { return clock_; }
  /// Queue entries as (timestamp, rank), for white-box tests.
  struct Entry {
    std::uint64_t ts;
    int rank;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return a.rank < b.rank;
    }
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  [[nodiscard]] const std::vector<Entry>& queue() const { return queue_; }

 private:
  void insert(Entry e);
  void erase(int rank);
  void maybe_enter();

  std::uint64_t clock_ = 0;
  std::uint64_t request_ts_ = 0;
  std::vector<Entry> queue_;         // kept sorted
  std::vector<std::uint64_t> acked_; // last REPLY ts per rank
};

}  // namespace gmx
