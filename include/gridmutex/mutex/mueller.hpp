// Mueller-style prioritized token mutex (related work, paper §5).
//
// Mueller (1998) extends Naimi-Tréhel with request priorities: the token is
// granted to the highest-priority pending request rather than in request
// order. gridmutex implements the idea with the same chase-the-token
// structure as the Bertier baseline (mutex/bertier.hpp): pending requests
// queue at the token holder and travel with the token; the holder grants
//   1. the highest *effective* priority (base priority + aging credit),
//   2. FIFO among equals.
// Aging: every time a grant passes over a waiting request, that request
// gains one priority point — so a low-priority request is granted after at
// most (max_priority_gap) bypasses, which keeps the algorithm starvation-
// free (Mueller's liveness argument).
//
// Applications set the priority of their *next* request with
// set_priority(); composition layers and the generic workload leave it at
// 0, in which case the algorithm degenerates to FIFO-at-holder.
#pragma once

#include <cstdint>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class MuellerMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,  // payload: varint requester, varint base priority
    kToken = 2,    // payload: varint count, then per entry
                   // (varint rank, varint base, varint age)
  };

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override {
    return has_token_ && !q_.empty();
  }
  [[nodiscard]] bool holds_token() const override { return has_token_; }
  [[nodiscard]] std::string_view name() const override { return "mueller"; }

  /// Base priority attached to this participant's next request_cs().
  /// Higher wins. Sticky until changed.
  void set_priority(int p) { my_priority_ = p; }
  [[nodiscard]] int priority() const { return my_priority_; }

  struct Pending {
    std::uint32_t rank;
    std::uint32_t base;
    std::uint32_t age;  // bypass count
    [[nodiscard]] std::uint64_t effective() const {
      return std::uint64_t(base) + age;
    }
  };
  [[nodiscard]] const std::vector<Pending>& queue() const { return q_; }
  [[nodiscard]] int last() const { return last_; }

 private:
  void handle_request(std::uint32_t requester, std::uint32_t base);
  void grant_from_queue();

  int my_priority_ = 0;
  int last_ = 0;
  bool has_token_ = false;
  std::vector<Pending> q_;  // holder-only; travels with the token
};

}  // namespace gmx
