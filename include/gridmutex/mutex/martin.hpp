// Martin's ring token algorithm (paper §2.1; Martin 1985).
//
// Participants form a logical ring. Requests travel clockwise (to the
// successor, rank+1 mod N); the token travels counter-clockwise (to the
// predecessor). A request hops along the ring until it reaches the token
// holder; the holder (when out of its CS) launches the token backwards, and
// every participant the token crosses either consumes it (if requesting) or
// relays it toward its predecessor.
//
// Optimization from §2.1: a participant that is itself requesting — or that
// has already forwarded a request — absorbs further incoming requests: one
// token traversal satisfies every request along its path. The boolean
// `pass_to_pred_` encodes "when the token reaches me and I am done with it,
// it must continue to my predecessor".
//
// Cost per CS: with x participants between requester and holder, (x+1)
// request hops + (x+1) token hops — N messages on average, and both T_req
// and T_token average (N/2)·T, which is what makes Martin attractive under
// saturation (requests absorb) and poor under high parallelism (§4.3).
#pragma once

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class MartinMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,  // empty payload: requests are anonymous on the ring
    kToken = 2,    // empty payload
  };

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override {
    return pass_to_pred_;
  }
  [[nodiscard]] bool holds_token() const override { return has_token_; }
  [[nodiscard]] std::string_view name() const override { return "martin"; }

  [[nodiscard]] int successor() const;
  [[nodiscard]] int predecessor() const;

 private:
  void handle_request();
  void handle_token();
  void forward_token_to_predecessor();

  bool has_token_ = false;
  bool pass_to_pred_ = false;  // a request passed through (or stopped) here
};

}  // namespace gmx
