// Suzuki-Kasami broadcast token algorithm (paper §2.3; Suzuki, Kasami 1985).
//
// A request is broadcast to all other participants with a per-requester
// sequence number; everyone tracks the highest sequence number seen from
// each participant in RN. The token carries a FIFO queue Q of granted-next
// participants and an array LN of the last satisfied sequence number per
// participant. On release the holder enqueues every j with RN[j] == LN[j]+1
// not already queued, then ships the token to the queue head.
//
// N-1 request messages + 1 token message per CS; both T_req and T_token are
// a single message delay T, the best obtaining-time profile of the three —
// paid for with O(N) messages and an O(N) token payload (§4.7 discusses why
// this hurts flat deployments and is tamed by composition).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class SuzukiKasamiMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,  // payload: varint sequence number
    kToken = 2,    // payload: varint_array LN, varint_array Q
  };

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override;
  [[nodiscard]] bool holds_token() const override { return has_token_; }
  [[nodiscard]] std::string_view name() const override { return "suzuki"; }

  /// White-box accessors for tests.
  [[nodiscard]] std::uint64_t rn(int rank) const {
    return rn_[std::size_t(rank)];
  }
  [[nodiscard]] const std::deque<std::uint32_t>& token_queue() const {
    return q_;
  }

 private:
  void handle_request(int from_rank, std::uint64_t seq);
  void handle_token(wire::Reader& payload);
  void send_token_to(int rank);

  std::vector<std::uint64_t> rn_;  // highest request seq seen, per rank
  // Token state; meaningful only while has_token_ is true.
  std::vector<std::uint64_t> ln_;  // last satisfied seq, per rank
  std::deque<std::uint32_t> q_;    // pending grants (FIFO)
  bool has_token_ = false;
};

}  // namespace gmx
