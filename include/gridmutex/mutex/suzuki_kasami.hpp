// Suzuki-Kasami broadcast token algorithm (paper §2.3; Suzuki, Kasami 1985).
//
// A request is broadcast to all other participants with a per-requester
// sequence number; everyone tracks the highest sequence number seen from
// each participant in RN. The token carries a FIFO queue Q of granted-next
// participants and an array LN of the last satisfied sequence number per
// participant. On release the holder enqueues every j with RN[j] == LN[j]+1
// not already queued, then ships the token to the queue head.
//
// N-1 request messages + 1 token message per CS; both T_req and T_token are
// a single message delay T, the best obtaining-time profile of the three —
// paid for with O(N) messages and an O(N) token payload (§4.7 discusses why
// this hurts flat deployments and is tamed by composition).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class SuzukiKasamiMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,     // payload: varint sequence number
    kToken = 2,       // payload: varint_array LN, varint_array Q
    kRegenQuery = 3,  // payload: varint round
    kRegenReply = 4,  // payload: varint round, varint flags, varint own seq
  };
  /// kRegenReply flag bits.
  static constexpr std::uint64_t kFlagRequesting = 1;
  static constexpr std::uint64_t kFlagHasToken = 2;

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override;
  [[nodiscard]] bool holds_token() const override { return has_token_; }
  [[nodiscard]] std::string_view name() const override { return "suzuki"; }

  // Token regeneration (see algorithm.hpp). The elected initiator queries
  // every peer; each reply carries the replier's *own* request counter and
  // whether it is requesting, which pins its LN entry exactly: an idle
  // participant has had all its requests satisfied (LN[j] = seq_j), a
  // requesting one all but the outstanding one (LN[j] = seq_j - 1). With LN
  // rebuilt, a fresh token (empty Q) is minted once and normal granting
  // resumes. If any reply reports the token alive, the round aborts —
  // the loss was a false alarm and minting would break uniqueness.
  [[nodiscard]] bool supports_token_regeneration() const override {
    return true;
  }
  void begin_token_regeneration() override;
  void cancel_token_regeneration() override;
  void surrender_token_to(int to_rank) override;

  /// White-box accessors for tests.
  [[nodiscard]] std::uint64_t rn(int rank) const {
    return rn_[std::size_t(rank)];
  }
  [[nodiscard]] const std::deque<std::uint32_t>& token_queue() const {
    return q_;
  }

 private:
  void handle_request(int from_rank, std::uint64_t seq);
  void handle_token(wire::Reader& payload);
  void send_token_to(int rank);
  void handle_regen_query(int from_rank, std::uint64_t round);
  void handle_regen_reply(int from_rank, std::uint64_t round,
                          std::uint64_t flags, std::uint64_t own_seq);
  void finish_regeneration();

  std::vector<std::uint64_t> rn_;  // highest request seq seen, per rank
  // Token state; meaningful only while has_token_ is true.
  std::vector<std::uint64_t> ln_;  // last satisfied seq, per rank
  std::deque<std::uint32_t> q_;    // pending grants (FIFO)
  bool has_token_ = false;

  // Regeneration round state (initiator side only).
  bool regen_active_ = false;
  std::uint64_t regen_round_ = 0;  // bumped per round; stale replies ignored
  std::vector<std::uint8_t> regen_seen_;    // reply recorded, per rank
  std::vector<std::uint64_t> regen_last_;   // reconstructed LN, per rank
  int regen_outstanding_ = 0;
};

}  // namespace gmx
