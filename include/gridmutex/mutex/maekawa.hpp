// Maekawa's √N quorum algorithm (Maekawa 1985; paper §1 and §5 — Chang et
// al.'s hybrid uses it between groups).
//
// Every participant i owns a *quorum* R_i of ~2√N arbiters such that any
// two quorums intersect (grid construction: i's row ∪ i's column of a
// ⌈√N⌉-wide arrangement; the intersection property holds including the
// ragged last row). To enter, i asks every arbiter in R_i for its LOCKED
// vote; an arbiter grants one candidate at a time, so intersecting quorums
// make two simultaneous full quorums impossible — mutual exclusion with
// O(√N) messages per CS.
//
// Deadlock avoidance: requests carry Lamport timestamps. When an arbiter
// holding a lock for candidate C queues a strictly *older* request, it
// sends INQUIRE to C; C answers RELINQUISH if it has not yet entered the
// CS (it keeps the lock and stays silent if it has — the arbiter is
// answered by the eventual RELEASE). The timestamp total order guarantees
// the globally oldest request collects its quorum.
//
// Composition extension (mirrors CentralServerMutex's REVOKE): an arbiter
// that queues any request behind the current lock sends one DEMAND notice
// to its candidate, so a coordinator sitting in the CS learns that the
// grid wants the resource — pure notification, no protocol change.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"

namespace gmx {

class MaekawaMutex final : public MutexAlgorithm {
 public:
  enum MsgType : std::uint16_t {
    kRequest = 1,     // payload: varint timestamp
    kLocked = 2,      // empty: arbiter's vote
    kInquire = 3,     // empty: arbiter asks its candidate to step back
    kRelinquish = 4,  // empty: candidate returns the vote
    kRelease = 5,     // empty: candidate is done
    kDemand = 6,      // empty: others are waiting (composition hook)
  };

  void init(int holder_rank) override;
  void request_cs() override;
  void release_cs() override;
  void on_message(int from_rank, std::uint16_t type,
                  wire::Reader payload) override;

  [[nodiscard]] bool has_pending_requests() const override;
  [[nodiscard]] bool holds_token() const override { return in_cs(); }
  [[nodiscard]] std::string_view name() const override { return "maekawa"; }

  /// This participant's quorum (sorted ranks, self included).
  [[nodiscard]] const std::vector<int>& quorum() const { return quorum_; }
  /// Votes currently held.
  [[nodiscard]] std::size_t votes() const { return locked_from_.size(); }

  /// Grid quorum of `rank` among `n` participants (exposed for tests).
  static std::vector<int> grid_quorum(int rank, int n);

 private:
  struct Entry {
    std::uint64_t ts;
    int rank;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.ts != b.ts) return a.ts < b.ts;
      return a.rank < b.rank;
    }
  };

  // Requester side --------------------------------------------------------
  void ask(int arbiter);
  void on_locked(int arbiter);
  void on_inquire(int arbiter);
  void on_demand();

  // Arbiter side -----------------------------------------------------------
  void arb_request(Entry e);
  void arb_relinquish(int from);
  void arb_release(int from);
  void arb_grant(Entry e);
  void arb_signal_demand();

  // Local-delivery shims (self is always in its own quorum; no self-sends).
  void send_or_local(int to, std::uint16_t type);

  std::vector<int> quorum_;
  std::uint64_t clock_ = 0;
  std::uint64_t request_ts_ = 0;
  std::set<int> locked_from_;
  bool demanded_ = false;

  std::optional<Entry> arb_current_;
  std::vector<Entry> arb_queue_;  // sorted
  bool arb_inquired_ = false;
  bool arb_demanded_ = false;
};

}  // namespace gmx
