// Small-N model checking by exhaustive delivery-order exploration.
//
// The simulator is single-threaded and deterministic: given a configuration
// and a seed, the only freedom the DES semantics leave is which member of a
// time-tied event set fires first. Every adversarial delivery order of a
// protocol therefore corresponds to some sequence of tie-set choices — and
// with identical link latencies, every cross-pair message race lands in a
// tie-set. `model_check` drives a depth-first search over those choice
// sequences: each schedule is one full, cheap re-run of the scenario from
// scratch (replaying the decision prefix reproduces the state exactly), and
// the search backtracks over the last undecided choice until the tree is
// exhausted or a cap is hit.
//
// A scenario reports "" when the run was safe (ProtocolChecker clean) and
// live (every request granted, queue drained); anything else is a
// diagnostic and the harness stops with the offending decision path.
//
// Feasible for N <= 4 participants and 1-2 critical sections each; the
// state space is factorial in the tie-set sizes, so the caps matter.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gmx {

class Simulator;

struct ModelCheckOptions {
  /// Stop after this many schedules even if the tree is not exhausted.
  std::uint64_t max_schedules = 100'000;
  /// Per-run guard: choices beyond this depth follow the default order and
  /// are not branched over (the result is then reported as not exhausted).
  std::size_t max_choice_depth = 50'000;
};

struct ModelCheckResult {
  std::uint64_t schedules = 0;      // complete runs executed
  std::uint64_t choice_points = 0;  // branch points encountered, summed
  bool exhausted = false;           // the whole tree fit under the caps
  bool violation = false;
  std::string diagnostic;              // first failing run's report
  std::vector<std::size_t> schedule;   // decision path of the failing run

  [[nodiscard]] std::string to_string() const;
};

/// One run of the scenario under a controlled delivery order. The callable
/// receives a fresh Simulator (with the exploring tie-breaker already
/// installed), builds the world, runs it to completion, and returns a
/// diagnostic string — "" means this schedule was safe and live.
using Scenario = std::function<std::string(Simulator&)>;

[[nodiscard]] ModelCheckResult model_check(const Scenario& scenario,
                                           const ModelCheckOptions& opt = {});

/// Canned scenarios -----------------------------------------------------

/// Flat instance of `algorithm`: `n` participants, each performing
/// `cs_per_rank` critical sections, all requesting at t=0. Identical link
/// latencies (so every cross-pair delivery order is explored) with per-pair
/// FIFO preserved (the classical algorithms assume channel FIFO-ness).
[[nodiscard]] Scenario flat_scenario(std::string algorithm, int n,
                                     int cs_per_rank);

/// Two-level composition over `clusters` x `apps_per_cluster` applications,
/// every application performing `cs_per_app` critical sections. The checker
/// watches all intra instances, the inter instance, every coordinator and
/// the privilege invariant.
[[nodiscard]] Scenario composition_scenario(std::string intra,
                                            std::string inter,
                                            std::uint32_t clusters,
                                            std::uint32_t apps_per_cluster,
                                            int cs_per_app);

}  // namespace gmx
