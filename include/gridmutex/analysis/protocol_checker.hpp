// Omniscient protocol checker (the correctness layer under every claim).
//
// The paper's argument is that unmodified token algorithms stay safe and
// live when composed hierarchically. A per-run CS counter (SafetyMonitor)
// only witnesses the end effect; this checker watches the protocol itself.
// It attaches to every endpoint and coordinator of a run and, after *every*
// simulator event — the instants at which global state is consistent —
// verifies the cross-participant invariants:
//
//   - token uniqueness: per token-algorithm instance, at most one
//     participant with holds_token(); zero holders only while a message of
//     that instance is in flight (the token is on the wire);
//   - CS exclusion: at most one participant of an instance in CS;
//   - Fig. 1(a) automaton legality on every participant state change
//     (NO_REQ → REQ → CS → NO_REQ, nothing else);
//   - coordinator automaton legality on every transition
//     (OUT → WAIT_FOR_IN → IN → WAIT_FOR_OUT → OUT, paper Fig. 2);
//   - coordinator privilege: at most one coordinator of a composition in
//     {IN, WAIT_FOR_OUT} — the paper's global safety argument;
//   - request conservation: every request_cs() is granted within a
//     configurable simulated-time bound (a liveness watchdog that converts
//     starvation into a diagnostic naming the stuck rank and instance);
//   - message conservation: sent + duplicated == delivered + dropped +
//     in-flight at every instant (nothing delivered twice or vanished), and
//     no delivery to a node outside the destination instance.
//
// Ownership discipline: the checker installs hooks into the simulator, the
// network, the endpoints and the coordinators, and removes them in its
// destructor. Declare it AFTER the objects it watches (so it dies first),
// or keep it alive until after they are gone is a use-after-free.
//
// Cost: O(sum of attached instance sizes) per event. Meant for tests, the
// model checker, and checker-armed experiment runs — not for the paper-
// scale measurement sweeps (arm those explicitly via
// ExperimentConfig::check_protocol when auditing).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gridmutex/core/composition.hpp"
#include "gridmutex/core/coordinator.hpp"
#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/sim/simulator.hpp"

namespace gmx {

struct CheckerOptions {
  /// Liveness watchdog: a request outstanding longer than this simulated
  /// time is reported as starvation. Choose generously — a sound bound for
  /// the fair algorithms is participants × (CS hold + a few RTTs) × CSes
  /// per participant. Zero disables the watchdog.
  SimDuration grant_bound = SimDuration::sec(120);
  /// Abort the process on the first violation (experiment runs must not
  /// silently produce numbers from an unsafe run). False lets tests and the
  /// model checker observe violations.
  bool abort_on_violation = false;
  /// Keep at most this many violations (the first is always kept).
  std::size_t max_violations = 16;
};

class ProtocolChecker {
 public:
  struct Violation {
    enum class Kind {
      kTokenDuplicated,
      kTokenLost,
      kOverlappingCs,
      kIllegalCsTransition,
      kIllegalCoordinatorTransition,
      kPrivilegeOverlap,
      kStarvation,
      kMessageNonConservation,
      kForeignDelivery,
      kRegenerationOverlap,
      kFencingRegression,
      kRevocationOverlap,
    };
    Kind kind;
    SimTime time;
    std::string instance;  // instance or coordinator name
    int rank = -1;         // primary rank involved, -1 when not applicable
    std::string detail;    // human diagnostic naming every rank involved

    [[nodiscard]] std::string to_string() const;
  };

  explicit ProtocolChecker(Simulator& sim, CheckerOptions opt = {});
  ~ProtocolChecker();

  ProtocolChecker(const ProtocolChecker&) = delete;
  ProtocolChecker& operator=(const ProtocolChecker&) = delete;

  /// Arms the message-conservation equation and the foreign-delivery tap.
  void attach_network(Network& net);

  /// Registers one algorithm instance: `endpoints[rank]` for every rank,
  /// all sharing one ProtocolId. `token_based` governs the token rules
  /// (permission-based instances get only the CS-level checks).
  void attach_instance(std::string name,
                       std::span<MutexEndpoint* const> endpoints,
                       bool token_based);

  /// Registers one coordinator for Fig. 1(b) automaton legality.
  void attach_coordinator(std::string name, Coordinator& coordinator);

  /// Registers a set of coordinators bridged by one inter instance: at most
  /// one of them may be privileged (IN / WAIT_FOR_OUT) at any instant.
  void attach_privilege_group(std::string name,
                              std::vector<const Coordinator*> group);

  /// Convenience: attaches a whole two-level composition — its inter
  /// instance, every intra instance, every coordinator, and the privilege
  /// group over all coordinators. `prefix` is prepended to every instance
  /// name; a LockService audit attaches each lock's composition with
  /// "lock[i]." so token-uniqueness and exclusion are judged — and
  /// diagnosed — per lock.
  void attach_composition(Composition& comp, const std::string& prefix = {});

  /// Transition feed — normally driven by the installed hooks; public so
  /// mutation tests can probe the judgement directly.
  void report_cs_transition(const std::string& instance, int rank,
                            CsState from, CsState to);
  void report_coordinator_transition(const std::string& name,
                                     Coordinator::State from,
                                     Coordinator::State to);

  /// Recovery-aware judging for an attached token instance (wire this to a
  /// TokenRecoveryManager; the checker stays ignorant of the fault layer).
  /// With recovery enabled, a missing token is flagged as lost only after
  /// `grace` of sustained absence *outside* a regeneration epoch — covering
  /// the detector's timeout plus probe drift. Choose grace > the manager's
  /// detect_timeout + a few probe intervals; a loss the manager misses (or
  /// gives up on) still surfaces, just `grace` later.
  void enable_recovery(ProtocolId protocol, SimDuration grace);

  /// Regeneration epoch boundary (TokenRecoveryManager::set_epoch_hook →
  /// here). Inside an open epoch token uniqueness is relaxed — zero holders
  /// is the expected detected-loss state, and a transient duplicate from a
  /// late-cancelled round is tolerated — but CS exclusion is NOT: recovery
  /// must never admit two critical sections. Opening an epoch while one is
  /// already open is itself a violation (kRegenerationOverlap: at most one
  /// regeneration in flight per instance).
  void note_regeneration(ProtocolId protocol, bool open);

  /// Registers a service-level lease domain — one per lock of a leased
  /// LockService (service/lease.hpp). The rules, fed by the three report
  /// calls below (wire them to LeaseManager::Hooks):
  ///   - fencing-token monotonicity is GLOBAL and unconditional: every
  ///     grant's fence must strictly exceed every earlier fence of the
  ///     domain, revocation or not (kFencingRegression otherwise);
  ///   - an involuntary release is legal only inside an open revocation
  ///     epoch, and a grant is legal only when no hold is active — holder
  ///     identity may change *inside* a declared epoch, never silently
  ///     (kRevocationOverlap otherwise);
  ///   - opening an epoch while one is open is itself a violation.
  /// CS exclusion is NOT relaxed by any epoch: the algorithm-level
  /// kOverlappingCs rule keeps judging every instant.
  void attach_lease_domain(const std::string& name);
  void report_lease_grant(const std::string& name, std::uint64_t fence);
  void report_lease_release(const std::string& name, std::uint64_t fence,
                            bool voluntary);
  /// Revocation epoch boundary for a lease domain.
  void note_revocation(const std::string& name, bool open);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// Number of post-event sweeps performed.
  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }
  /// Total violations observed (may exceed the stored list's cap).
  [[nodiscard]] std::uint64_t violation_count() const {
    return violation_count_;
  }
  /// Multi-line rendering of every stored violation; "" when ok().
  [[nodiscard]] std::string summary() const;

 private:
  struct Instance {
    std::string name;
    ProtocolId protocol = 0;
    bool token_based = false;
    std::vector<MutexEndpoint*> endpoints;
    std::unordered_set<NodeId> nodes;
    std::unordered_map<int, SimTime> outstanding;  // rank -> requested_at
    // Sweep-detected conditions persist across events; flag them on the
    // rising edge only, so one bug yields one diagnostic.
    bool overlap_flagged = false;
    bool token_flagged = false;
    // Recovery awareness (enable_recovery / note_regeneration).
    SimDuration recovery_grace;        // zero = flag losses immediately
    bool in_regen_epoch = false;
    SimTime token_missing_since = SimTime::max();
  };

  void after_event();
  void sweep_instance(Instance& inst);
  void check_conservation();
  void on_delivery(const Message& msg);
  void on_cs_transition(Instance& inst, int rank, CsState from, CsState to);
  void add_violation(Violation v);

  Simulator& sim_;
  CheckerOptions opt_;
  Network* net_ = nullptr;
  std::vector<std::unique_ptr<Instance>> instances_;  // stable addresses
  std::unordered_map<ProtocolId, Instance*> by_protocol_;
  struct CoordinatorSlot {
    std::string name;
    Coordinator* coordinator;
  };
  std::vector<CoordinatorSlot> coordinators_;
  struct LeaseDomain {
    std::uint64_t last_fence = 0;    // high-water mark, never decreases
    std::uint64_t active_fence = 0;  // 0 = no hold active
    bool in_revocation = false;
  };
  LeaseDomain& lease_domain(const std::string& name);
  std::unordered_map<std::string, LeaseDomain> lease_domains_;
  struct PrivilegeGroup {
    std::string name;
    std::vector<const Coordinator*> group;
    bool flagged = false;
  };
  std::vector<PrivilegeGroup> privilege_groups_;

  std::vector<Violation> violations_;
  std::uint64_t violation_count_ = 0;
  std::uint64_t checks_ = 0;
  bool conservation_flagged_ = false;
};

[[nodiscard]] std::string_view to_string(ProtocolChecker::Violation::Kind k);

}  // namespace gmx
