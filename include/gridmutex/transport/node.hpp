// LockdNode: one grid node's share of the lock service over real sockets.
//
// A lockd process hosts exactly one node of a clusters x (apps+1) grid:
//
//   - per lock, the node's endpoints of that lock's two-level composition
//     (coordinator nodes run an inter endpoint, the intra rank 0 endpoint
//     and the Coordinator bridge; app nodes run their intra endpoint) —
//     the same algorithm object code as the simulator, over UdpTransport;
//   - on coordinator nodes, the FENCE service: a per-lock monotone counter
//     for the locks whose home cluster this coordinator leads;
//   - on app nodes, a per-lock grant queue driving acquire/release for
//     clients (the CLIENT protocol of client.hpp).
//
// Protocol layout mirrors ServiceConfig exactly so a transport grid and a
// simulated service with the same shape use the same protocol ids:
//   1                BATCH (reserved, unused by the transport)
//   2 + l*(C+1)      lock l inter
//   .. + 1 + c       lock l intra, cluster c
//   2 + K*(C+1)      FENCE   (the slot the sim's lease protocol occupies)
//   fence + 1        CLIENT  (address-routed, unsequenced)
//
// Seed derivation also mirrors the simulator: GridConfig::seed plays
// ServiceConfig::seed, the service stream is fork(2) of it, and lock l's
// composition seed is fork(100 + l) of the service stream — so a
// transport grid and a sim service with equal shape and seed hand every
// algorithm instance the identical rng stream.
//
// Startup handshake (see client.hpp): the daemon binds (possibly an
// ephemeral port), answers kPing immediately, learns the grid's address
// table from kPeers, and only starts its Coordinators on kStart — by
// then every peer is reachable, so permission-based intra algorithms can
// broadcast their first REQUEST safely.
//
// Fencing: when an app node wins a lock's critical section it fetches a
// fence from the lock's home coordinator (kFenceReq/kFenceRep, reliable)
// *while still inside the CS*, then replies kGranted to the client.
// Because fetches are serialized by the CS, the fences observed by
// successive grants of one lock are strictly increasing — the property
// the campaign asserts client-side.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gridmutex/core/coordinator.hpp"
#include "gridmutex/service/experiment.hpp"
#include "gridmutex/service/lock_table.hpp"
#include "gridmutex/transport/client.hpp"
#include "gridmutex/transport/endpoint.hpp"
#include "gridmutex/transport/udp.hpp"

namespace gmx::transport {

/// FENCE protocol message kinds.
enum class FenceMsg : std::uint16_t {
  kFenceReq = 1,  // varint lock, u64 nonce
  kFenceRep = 2,  // varint lock, u64 nonce, u64 fence
};

/// Shape and seeding of a transport grid; the subset of ServiceConfig a
/// real deployment needs, with the same defaults where they overlap.
struct GridConfig {
  std::uint32_t clusters = 2;
  std::uint32_t apps_per_cluster = 4;
  std::uint32_t locks = 4;
  std::string intra_algorithm = "naimi";
  std::string inter_algorithm = "naimi";
  Placement placement = Placement::kRoundRobin;
  std::uint64_t seed = 1;

  [[nodiscard]] std::uint32_t node_count() const {
    return clusters * (apps_per_cluster + 1);
  }
  [[nodiscard]] Topology topology() const {
    return Topology::uniform(clusters, apps_per_cluster + 1);
  }
  [[nodiscard]] std::vector<std::string> lock_names() const;
  /// App nodes in cluster order, coordinator (rank 0) skipped — the same
  /// order Composition::app_nodes() reports in the simulator, which the
  /// open-loop materializer indexes.
  [[nodiscard]] std::vector<NodeId> app_nodes() const;

  [[nodiscard]] ProtocolId inter_protocol(LockId l) const {
    return ServiceConfig::lock_inter_protocol(l, clusters);
  }
  [[nodiscard]] ProtocolId intra_protocol(LockId l, ClusterId c) const {
    return ServiceConfig::lock_intra_protocol(l, clusters, c);
  }
  [[nodiscard]] ProtocolId fence_protocol() const {
    return ServiceConfig::lease_protocol(locks, clusters);
  }
  [[nodiscard]] ProtocolId client_protocol() const {
    return fence_protocol() + 1;
  }
  /// The stream ServiceConfig-seeded experiments hand their LockService.
  [[nodiscard]] std::uint64_t service_seed() const {
    return Rng(seed).fork(2).next_u64();
  }
};

class LockdNode {
 public:
  struct Options {
    /// Per-(node, lock) grant queue bound; arrivals beyond it are shed.
    std::size_t max_pending = 64;
    /// Terminal replies remembered for client retransmit dedup.
    std::size_t reply_cache = 8192;
  };

  /// Attaches every handler and posts endpoint inits; call before
  /// tp.start(). `tp.self()` selects which node of `cfg` this is.
  LockdNode(UdpTransport& tp, GridConfig cfg, Options opts);
  LockdNode(UdpTransport& tp, GridConfig cfg)
      : LockdNode(tp, std::move(cfg), Options{}) {}
  ~LockdNode();

  LockdNode(const LockdNode&) = delete;
  LockdNode& operator=(const LockdNode&) = delete;

  [[nodiscard]] NodeId node() const { return tp_.self(); }
  [[nodiscard]] bool is_coordinator() const { return is_coordinator_node_; }
  [[nodiscard]] const GridConfig& config() const { return cfg_; }

  /// Blocks until a kShutdown was served; the caller then stops the
  /// transport (the loop thread cannot join itself).
  void wait_shutdown();

 private:
  struct PerLock;
  struct LockSrv;
  struct Pending;
  struct CachedReply;
  using ReqKey = std::pair<std::uint64_t, std::uint64_t>;  // client, req

  void handle_client(const Message& m, const PeerAddr& from);
  void handle_fence(const Message& m);
  void on_acquire(const Message& m, const PeerAddr& from);
  void on_release(const Message& m, const PeerAddr& from);
  void pump(LockId lock);
  void on_granted(LockId lock);
  void finish(LockId lock, ClientMsg type, std::uint64_t fence);
  void reply(const PeerAddr& to, ClientMsg type,
             std::vector<std::uint8_t> payload = {});
  void remember(const ReqKey& key, ClientMsg type, LockId lock,
                std::uint64_t fence);
  [[nodiscard]] std::uint64_t steady_ms() const;

  UdpTransport& tp_;
  GridConfig cfg_;
  Options opts_;
  Topology topo_;
  LockTable table_;
  ClusterId my_cluster_;
  bool is_coordinator_node_;

  struct PerLock {
    // Coordinator nodes: inter + intra(rank 0) + bridge. App nodes:
    // intra only.
    std::unique_ptr<TransportMutexEndpoint> inter;
    std::unique_ptr<TransportMutexEndpoint> intra;
    std::unique_ptr<Coordinator> coordinator;
  };
  std::vector<PerLock> locks_;

  // ---- client-facing service state (loop thread only) ----
  struct Pending {
    std::uint64_t client_id = 0;
    std::uint64_t req_id = 0;
    std::uint64_t deadline_at_ms = 0;  // steady_ms deadline; 0 = none
    PeerAddr client;
  };
  enum class SrvState : std::uint8_t {
    kIdle,
    kRequesting,
    kAwaitFence,
    kHeld
  };
  struct LockSrv {
    SrvState state = SrvState::kIdle;
    Pending current;
    std::deque<Pending> queue;
  };
  std::vector<LockSrv> srv_;  // per lock; empty on coordinator nodes

  struct CachedReply {
    ClientMsg type = ClientMsg::kShed;
    LockId lock = 0;
    std::uint64_t fence = 0;
  };
  std::map<ReqKey, CachedReply> reply_cache_;
  std::deque<ReqKey> reply_fifo_;
  std::set<ReqKey> inflight_;

  // Fence client side (app nodes): outstanding nonce -> lock.
  std::uint64_t next_nonce_ = 1;
  std::map<std::uint64_t, LockId> fence_waits_;
  // Fence server side (home coordinator): per-lock monotone counters.
  std::vector<std::uint64_t> fence_counter_;

  NodeStats stats_;
  bool started_ = false;
  std::chrono::steady_clock::time_point epoch_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_ = false;
};

}  // namespace gmx::transport
