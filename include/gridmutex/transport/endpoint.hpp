// TransportMutexEndpoint: a MutexAlgorithm participant over real sockets.
//
// The socket counterpart of mutex/endpoint.hpp (simulator) and
// rt/endpoint.hpp (thread runtime): the same unmodified algorithm object
// code, bound to a UdpTransport. Everything the algorithm touches runs on
// the transport's loop thread — public entry points post there, protocol
// frames already arrive there, and observer upcalls re-post the user
// callbacks so user code never re-enters an algorithm frame.
//
// Unlike rt/ (whose payloads must be heap-origin because they cross
// thread-queue boundaries), all algorithm activity here lives on one loop
// thread, so the endpoint hands out the transport's pool-backed Writer:
// encode → frame → sendmsg without a copy, the simulator's zero-copy path
// reproduced over a real wire.
//
// A frame from a node outside the member list throws wire::WireError
// (caught and counted by the transport) rather than asserting: on a real
// socket a stray datagram is environmental, not a protocol bug.
#pragma once

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gridmutex/mutex/algorithm.hpp"
#include "gridmutex/mutex/handle.hpp"
#include "gridmutex/net/topology.hpp"
#include "gridmutex/transport/udp.hpp"

namespace gmx::transport {

class TransportMutexEndpoint final : public MutexHandle,
                                     private MutexContext,
                                     private MutexObserver {
 public:
  /// `members[rank]` maps instance ranks onto grid nodes; `topo` backs
  /// cluster_of_rank and must outlive the endpoint. members[self_rank]
  /// must equal tp.self(). Attaches the protocol handler and marks the
  /// protocol reliable (algorithm traffic always rides ARQ).
  TransportMutexEndpoint(UdpTransport& tp, ProtocolId protocol,
                         std::vector<NodeId> members, int self_rank,
                         const Topology& topo,
                         std::unique_ptr<MutexAlgorithm> algorithm, Rng rng);

  TransportMutexEndpoint(const TransportMutexEndpoint&) = delete;
  TransportMutexEndpoint& operator=(const TransportMutexEndpoint&) = delete;

  void set_callbacks(MutexCallbacks cb) override {
    callbacks_ = std::move(cb);
  }

  /// Asynchronous: posts to the loop thread (no-op wrapper when already
  /// there — post preserves FIFO order either way).
  void init(int holder_rank);
  void request_cs() override;
  void release_cs() override;

  [[nodiscard]] NodeId node() const override {
    return members_[std::size_t(rank_)];
  }
  [[nodiscard]] int rank() const { return rank_; }
  /// Snapshots: exact on the loop thread; racy-but-atomic reads otherwise.
  [[nodiscard]] CsState state() const override { return algo_->state(); }
  [[nodiscard]] bool in_cs() const override { return algo_->in_cs(); }
  [[nodiscard]] bool holds_token() const override {
    return algo_->holds_token();
  }
  [[nodiscard]] bool has_pending_requests() const override {
    return algo_->has_pending_requests();
  }
  [[nodiscard]] const MutexAlgorithm& algorithm() const { return *algo_; }

 private:
  // MutexContext
  [[nodiscard]] int self() const override { return rank_; }
  [[nodiscard]] int size() const override { return int(members_.size()); }
  [[nodiscard]] int cluster_of_rank(int rank) const override;
  void send(int to_rank, std::uint16_t type,
            std::span<const std::uint8_t> payload) override;
  [[nodiscard]] wire::Writer writer(std::size_t reserve) override;
  void send_writer(int to_rank, std::uint16_t type,
                   wire::Writer&& w) override;
  void send_shared(int to_rank, std::uint16_t type,
                   const Payload& payload) override;
  Rng& rng() override { return rng_; }
  [[nodiscard]] SimTime now() const override;

  // MutexObserver
  void on_cs_granted() override;
  void on_pending_request() override;

  void handle_message(const Message& msg);
  [[nodiscard]] Message frame_to(int to_rank, std::uint16_t type) const;

  UdpTransport& tp_;
  ProtocolId protocol_;
  std::vector<NodeId> members_;
  std::unordered_map<NodeId, int> rank_of_;
  int rank_;
  const Topology& topo_;
  std::unique_ptr<MutexAlgorithm> algo_;
  Rng rng_;
  MutexCallbacks callbacks_;
  std::chrono::steady_clock::time_point epoch_;
  /// Pins algo_/rng_ mutation to the transport loop thread.
  ThreadAffinityGuard algo_affinity_;
};

}  // namespace gmx::transport
