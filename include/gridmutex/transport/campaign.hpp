// Open-loop campaign over a real lockd grid.
//
// run_campaign() replays the *bit-identical* Poisson/Zipf arrival trace
// the simulator's service experiments use — materialize_open_loop() from
// the same fork(3) stream of the same seed — against live lockd daemons,
// measuring wall-clock obtaining times. This is the "real" half of the
// sim-vs-real cross-validation (docs/TRANSPORT.md): same algorithms, same
// topology, same arrival instants; only the latency substrate differs.
//
// The campaign is a single asynchronous client: arrivals are scheduled on
// the transport's timer heap at their trace instants (optionally
// compressed by `time_scale`), each request retransmits until its
// terminal reply, each grant holds the lock for the trace's hold time and
// then releases. Safety is asserted client-side:
//   - fencing: per lock, granted fences must be strictly increasing;
//   - exclusion: a grant for lock l while another of the campaign's
//     requests still holds l is a violation (the service serializes
//     grants through the composition CS, so overlap means broken mutual
//     exclusion, not mere reordering).
// Accounting closure — arrivals == grants + sheds + deadline_misses — is
// checked by the caller against the daemons' kStats counters.
#pragma once

#include <cstdint>
#include <vector>

#include "gridmutex/transport/node.hpp"
#include "gridmutex/workload/open_loop.hpp"

namespace gmx::transport {

struct CampaignConfig {
  GridConfig grid;
  OpenLoopParams open_loop;
  /// Forwarded in every kAcquire; 0 = no deadline.
  std::uint32_t deadline_ms = 0;
  /// Divides every trace instant and hold time: 2.0 runs the trace twice
  /// as fast as simulated time. 1.0 = real-time replay.
  double time_scale = 1.0;
  /// Client-side retransmit period for unacknowledged requests.
  std::uint32_t retry_ms = 250;
};

struct CampaignResult {
  std::uint64_t arrivals = 0;
  std::uint64_t grants = 0;
  std::uint64_t sheds = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t fence_violations = 0;
  std::uint64_t exclusion_violations = 0;
  /// Wall-clock request->grant latency per grant, milliseconds.
  std::vector<double> obtain_ms;
  double wall_sec = 0.0;

  [[nodiscard]] bool safe() const {
    return fence_violations == 0 && exclusion_violations == 0;
  }
  [[nodiscard]] double obtain_mean_ms() const;
  /// q in [0,1]; nearest-rank over the sorted sample.
  [[nodiscard]] double obtain_percentile_ms(double q) const;
  [[nodiscard]] double throughput_cs_per_s() const {
    return wall_sec > 0.0 ? double(grants) / wall_sec : 0.0;
  }
};

/// Drives one campaign to completion (every arrival terminal, every grant
/// released and acknowledged). `nodes[i]` is grid node i's address; the
/// daemons must already be peered and started (client.hpp handshake).
[[nodiscard]] CampaignResult run_campaign(std::vector<PeerAddr> nodes,
                                          const CampaignConfig& cfg);

}  // namespace gmx::transport
