// UdpTransport: the Network-shaped send/dispatch seam over real sockets.
//
// The third substrate (after the DES Network and the rt/ thread runtime):
// one non-blocking UDP socket, one poll-driven loop thread, and the same
// attach(protocol, handler) / send(Message) surface the in-process
// substrates expose — so TransportMutexEndpoint hosts the unmodified
// algorithm object code over it, which is the point of the MutexContext
// seam.
//
// Threading model (mirrors rt/'s "one serial queue per node", except the
// whole process is one node, so one loop thread owns everything):
//   - The loop thread exclusively owns the socket, the BufferPool, the ARQ
//     state, the timer heap and the handler tables. No locks on the hot
//     path; debug builds pin the pool to the loop thread via its
//     ThreadAffinityGuard.
//   - Other threads interact only through post() (a mutex-guarded task
//     queue drained via a self-pipe) and request_stop(). send(), writer(),
//     schedule_ms() and friends are loop-thread-only.
//   - attach/set_reliable/add_peer may additionally be called before
//     start(), which is how lockd builds its node: construct everything,
//     then start the loop.
//
// Wire path: send() resolves the peer address, routes reliable protocols
// through the ArqSender, and writes [version+frame-header][payload] as an
// iovec pair via sendmsg — a pool-backed wire::Writer payload goes from
// encode to the kernel without a single copy. Receives land in a
// pool-acquired block; decode_datagram() slices zero-copy Message payloads
// out of it, ACKs are resolved, sequenced frames pass the ArqReceiver
// dedup, and survivors dispatch to the protocol handler. A handler that
// throws wire::WireError poisons only that frame (counted, never fatal) —
// hostile bytes must not take the daemon down.
//
// Deterministic fault injection for tests (the transport analogue of the
// simulator's drop/duplicate knobs): set_send_fault() intercepts every
// outgoing frame and may drop it, duplicate it, or hold it back until
// after the next transmission (which reorders two frames on the real
// wire). The hook runs below ARQ, so retransmission/dedup/FIFO semantics
// are exercised against genuine loss, not simulated bookkeeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gridmutex/core/thread_annotations.hpp"
#include "gridmutex/net/buffer_pool.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/net/wire.hpp"
#include "gridmutex/transport/arq.hpp"

namespace gmx::transport {

/// An IPv4 UDP endpoint, host byte order.
struct PeerAddr {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  [[nodiscard]] bool operator==(const PeerAddr&) const = default;
  /// "a.b.c.d:port".
  [[nodiscard]] std::string to_string() const;
  /// Parses "a.b.c.d:port"; nullopt on malformed input.
  [[nodiscard]] static std::optional<PeerAddr> parse(std::string_view s);
  /// 127.0.0.1:port.
  [[nodiscard]] static PeerAddr loopback(std::uint16_t port);
};

struct TransportCounters {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t frames_sent = 0;  // excludes acks
  std::uint64_t acks_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t decode_errors = 0;   // malformed datagrams
  std::uint64_t handler_errors = 0;  // WireError out of a handler
  std::uint64_t misrouted = 0;       // dst != self
  std::uint64_t unroutable = 0;      // no handler for protocol
  std::uint64_t fault_dropped = 0;   // send-fault hook drops
  std::uint64_t fault_duplicated = 0;
  std::uint64_t fault_held = 0;
  std::uint64_t send_errors = 0;  // sendmsg failures (incl. EAGAIN)

  [[nodiscard]] bool operator==(const TransportCounters&) const = default;
};

class UdpTransport {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Address-routed delivery for unsequenced client traffic: the handler
  /// additionally learns where the datagram came from, so it can reply to
  /// peers outside the node table (lockctl, the campaign driver).
  using RawHandler = std::function<void(const Message&, const PeerAddr&)>;
  using TimerToken = ArqTimerToken;

  /// Binds `bind_ip:port` (port 0 = ephemeral; read back via port()).
  /// Throws std::runtime_error on socket/bind failure.
  UdpTransport(NodeId self, const std::string& bind_ip, std::uint16_t port,
               ArqConfig arq = {});
  ~UdpTransport();

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  [[nodiscard]] NodeId self() const { return self_; }
  /// The actually bound port (resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  // --- configuration: before start(), or on the loop thread -------------
  void add_peer(NodeId node, PeerAddr addr);
  [[nodiscard]] std::optional<PeerAddr> peer(NodeId node) const;
  void attach(ProtocolId protocol, Handler handler);
  void attach_raw(ProtocolId protocol, RawHandler handler);
  void set_reliable(ProtocolId protocol);
  [[nodiscard]] bool reliable(ProtocolId protocol) const;

  /// Fault hook, consulted per outgoing frame; OR of FaultAction bits.
  enum FaultAction : int { kPass = 0, kDrop = 1, kDuplicate = 2, kHold = 4 };
  using SendFault = std::function<int(const Message&)>;
  void set_send_fault(SendFault f) { send_fault_ = std::move(f); }

  // --- lifecycle --------------------------------------------------------
  void start();
  /// Signals the loop to exit; safe from any thread including the loop's.
  void request_stop();
  /// request_stop() + join. Must not be called from the loop thread.
  void stop();
  [[nodiscard]] bool running() const {
    return loop_.joinable() && !stop_requested_.load(std::memory_order_relaxed);
  }

  /// Enqueues `fn` for the loop thread; callable from any thread.
  void post(std::function<void()> fn);

  // --- loop-thread-only surface -----------------------------------------
  /// Sends to the node table entry for msg.dst. Reliable protocols go
  /// through ARQ (seq assigned); others leave seq 0.
  void send(Message msg);
  /// Unsequenced send to an explicit address (replies to raw peers).
  void send_raw(const PeerAddr& to, Message msg);
  /// Pool-backed Writer; finished payloads pass to send() zero-copy.
  [[nodiscard]] wire::Writer writer(std::size_t reserve);
  [[nodiscard]] BufferPool& pool() { return pool_; }
  /// One-shot wall-clock timer on the loop thread.
  TimerToken schedule_ms(std::uint32_t delay_ms, std::function<void()> fn);
  void cancel(TimerToken token);

  /// Loop-thread exact; stable after stop() returns.
  [[nodiscard]] const TransportCounters& counters() const {
    return counters_;
  }
  [[nodiscard]] const ArqCounters& arq_send_counters() const;
  [[nodiscard]] const ArqCounters& arq_recv_counters() const;

 private:
  struct Timer {
    std::int64_t deadline_ns;  // steady_clock epoch
    TimerToken token;
    std::function<void()> fn;
  };

  void run();
  void drain_socket();
  void drain_tasks();
  void fire_due_timers();
  [[nodiscard]] int poll_timeout_ms() const;
  void handle_datagram(const Payload& dgram, const PeerAddr& from);
  void dispatch(const Message& msg, const PeerAddr& from);
  void send_ack(const Message& msg, const PeerAddr& to);
  void transmit_frame(const Message& msg, const PeerAddr& to);
  void write_datagram(const Message& msg, const PeerAddr& to);
  [[nodiscard]] PeerAddr addr_of(NodeId node) const;
  void wake();

  NodeId self_;
  int sock_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  std::uint16_t port_ = 0;

  std::thread loop_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> started_{false};

  gmx::Mutex tasks_mu_;
  std::deque<std::function<void()>> tasks_ GMX_GUARDED_BY(tasks_mu_);

  // Loop-thread-owned state below (pre-start configuration excepted).
  BufferPool pool_;
  std::unordered_map<NodeId, PeerAddr> peers_;
  std::unordered_map<ProtocolId, Handler> handlers_;
  std::unordered_map<ProtocolId, RawHandler> raw_handlers_;
  std::unordered_map<ProtocolId, bool> reliable_;
  std::unique_ptr<ArqSender> arq_send_;
  ArqReceiver arq_recv_;
  SendFault send_fault_;
  std::vector<std::pair<Message, PeerAddr>> held_;  // kHold reorder buffer
  bool flushing_held_ = false;

  std::vector<Timer> timers_;  // min-heap by deadline
  TimerToken next_timer_token_ = 1;

  TransportCounters counters_;
};

}  // namespace gmx::transport
