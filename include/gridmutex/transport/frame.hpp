// Datagram framing for the real-socket transport.
//
// The simulator's Network never serializes its routing metadata — src, dst,
// protocol, type and ARQ seq travel alongside the payload as C++ struct
// fields (Message::kHeaderBytes merely *accounts* for them). On a real UDP
// socket those fields must actually cross the wire, so this header defines
// the one place the transport adds bytes the simulator does not: a
// versioned datagram envelope carrying one or more frames, each of which
// decodes back into exactly the `Message` the Network-shaped dispatch seam
// expects.
//
//   datagram := u8 version (kWireVersion) , frame+
//   frame    := u32 src , u32 dst , varint protocol , u16 type ,
//               varint seq , bytes payload        (wire::Writer::bytes)
//
// All integers use the existing wire codec (little-endian fixed width +
// LEB128 varints), so the frame header is fuzzed through the same
// Reader/Writer machinery as every protocol payload (tests/fuzz mode 4).
// Constraints enforced by decode_datagram (violations throw
// wire::WireError — a corrupt or hostile datagram must never reach a
// protocol handler):
//   - version must equal kWireVersion;
//   - protocol must be nonzero (0 is the "no protocol" sentinel) and fit
//     ProtocolId (32 bits);
//   - a datagram must contain at least one frame and no trailing garbage
//     (the frame grammar is self-delimiting, so the loop just runs to the
//     end of the buffer);
//   - payload length is bounds-checked against the datagram.
//
// Decoded payloads are Payload::slice views into the receive buffer's
// block — zero-copy, exactly like BatchMux unbatching. On the send side
// append_frame() re-encodes a Message; the transport's sendmsg path writes
// [envelope+header][payload] as an iovec pair instead, so a pool-backed
// wire::Writer payload goes out without ever being copied into the frame.
#pragma once

#include <cstdint>
#include <vector>

#include "gridmutex/net/network.hpp"
#include "gridmutex/net/wire.hpp"

namespace gmx::transport {

/// Wire format version; bumped on any frame-grammar change.
inline constexpr std::uint8_t kWireVersion = 1;

/// Ceiling on datagrams we build or accept. Localhost loopback carries
/// 64 KiB UDP; staying under it keeps sendmsg single-datagram.
inline constexpr std::size_t kMaxDatagramBytes = 60000;

/// Appends the envelope byte. Call once per datagram, before any frame.
void begin_datagram(wire::Writer& w);

/// Appends one complete frame (header + length-prefixed payload copy).
/// The sendmsg fast path in udp.cpp appends only the header via
/// append_frame_header() and splices the payload as a second iovec; this
/// full-copy form is for tests, the fuzz re-encode oracle, and callers
/// that coalesce multiple frames into one buffer.
void append_frame(wire::Writer& w, const Message& msg);

/// Header only: everything of append_frame() up to and including the
/// payload length varint, but not the payload bytes themselves.
void append_frame_header(wire::Writer& w, const Message& msg);

/// Decodes a whole datagram into Messages whose payloads are zero-copy
/// slices of `dgram`'s block. Throws wire::WireError on any malformation.
[[nodiscard]] std::vector<Message> decode_datagram(const Payload& dgram);

}  // namespace gmx::transport
