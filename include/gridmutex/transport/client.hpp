// Client-facing protocol of lockd, and the LockClient library over it.
//
// Clients (lockctl, the cross-validation campaign) are not grid nodes:
// they speak an *unsequenced* request/reply protocol on the CLIENT
// protocol id, are routed by datagram source address rather than the node
// table, and own reliability themselves — a client retransmits its request
// until a reply arrives, and lockd deduplicates by (client_id, req_id)
// with a bounded cache of terminal replies, so every operation below is
// idempotent end to end.
//
// Message grammar (CLIENT protocol; all encodings via net/wire.hpp):
//   kPing      u64 token                 -> kPong    u64 token, u32 node,
//                                                    u8 started
//   kPeers     varint n, n x (u32 ip, u16 port)      -> kPeersOk  (empty)
//              (node id = table index; installs the grid's address map)
//   kStart     (empty)                   -> kStarted (empty)
//              (idempotent; starts the hosted coordinators)
//   kAcquire   u64 client_id, u64 req_id, varint lock, varint deadline_ms
//       -> kGranted u64 req_id, varint lock, u64 fence
//        | kShed    u64 req_id, varint lock     (admission queue full)
//        | kExpired u64 req_id, varint lock     (deadline passed)
//   kRelease   u64 client_id, u64 req_id, varint lock
//       -> kReleased u64 req_id                 (idempotent)
//   kStats     (empty)                   -> kStatsReply  6 x u64
//                                           (NodeStats field order)
//   kShutdown  (empty)                   -> kBye (empty); daemon exits
//
// Fencing: every grant carries a fence token drawn from a per-lock
// monotone counter at the lock's home coordinator. Fence fetches happen
// while the granting node is inside the lock's critical section, so
// successive grants of one lock observe strictly increasing fences —
// the client-side safety assertion of the campaign.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gridmutex/service/lock_table.hpp"
#include "gridmutex/transport/udp.hpp"

namespace gmx::transport {

enum class ClientMsg : std::uint16_t {
  kPing = 1,
  kPong = 2,
  kPeers = 3,
  kPeersOk = 4,
  kStart = 5,
  kStarted = 6,
  kAcquire = 7,
  kGranted = 8,
  kShed = 9,
  kExpired = 10,
  kRelease = 11,
  kReleased = 12,
  kStats = 13,
  kStatsReply = 14,
  kShutdown = 15,
  kBye = 16,
};

/// Per-daemon service counters; the kStatsReply payload. The accounting
/// closure every run must satisfy:
///   arrivals == grants + sheds + deadline_misses   (once drained)
struct NodeStats {
  std::uint64_t arrivals = 0;
  std::uint64_t grants = 0;
  std::uint64_t sheds = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t releases = 0;
  std::uint64_t fences_issued = 0;

  NodeStats& operator+=(const NodeStats& o);
  [[nodiscard]] bool operator==(const NodeStats&) const = default;
};

void encode_stats(wire::Writer& w, const NodeStats& s);
[[nodiscard]] NodeStats decode_stats(wire::Reader& r);

/// Blocking request/reply client for lockd grids: one UDP socket, an
/// internal loop thread (via UdpTransport), client-side retransmission.
/// Used by lockctl and by xvalidate's control plane; the open-loop
/// campaign drives a transport asynchronously instead (campaign.hpp).
class LockClient {
 public:
  /// `nodes[i]` is node i's address. `client_protocol` is the grid's
  /// CLIENT protocol id (GridConfig::client_protocol()).
  LockClient(std::vector<PeerAddr> nodes, ProtocolId client_protocol,
             const std::string& bind_ip = "127.0.0.1");
  ~LockClient();

  LockClient(const LockClient&) = delete;
  LockClient& operator=(const LockClient&) = delete;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::uint64_t client_id() const { return client_id_; }
  /// Overrides the derived client id — lockd matches releases by
  /// (client_id, req_id), so releasing from a different process than the
  /// acquiring one (lockctl) must pin the id. Call before any operation.
  void set_client_id(std::uint64_t id) { client_id_ = id; }

  /// True once the node answered a ping; `started` reports whether its
  /// coordinators are running.
  struct PingReply {
    NodeId node = kInvalidNode;
    bool started = false;
  };
  [[nodiscard]] std::optional<PingReply> ping(NodeId node,
                                              std::uint32_t timeout_ms);
  /// Pushes the ctor's address table to `node` (kPeers).
  [[nodiscard]] bool send_peers(NodeId node, std::uint32_t timeout_ms);
  [[nodiscard]] bool start(NodeId node, std::uint32_t timeout_ms);

  struct Acquire {
    enum class Status : std::uint8_t {
      kGranted,
      kShed,
      kExpired,
      kTimeout
    };
    Status status = Status::kTimeout;
    std::uint64_t req_id = 0;
    std::uint64_t fence = 0;
    double obtain_ms = 0.0;
  };
  [[nodiscard]] Acquire acquire(NodeId node, LockId lock,
                                std::uint32_t deadline_ms,
                                std::uint32_t timeout_ms);
  [[nodiscard]] bool release(NodeId node, LockId lock, std::uint64_t req_id,
                             std::uint32_t timeout_ms);

  [[nodiscard]] std::optional<NodeStats> stats(NodeId node,
                                               std::uint32_t timeout_ms);
  [[nodiscard]] bool shutdown(NodeId node, std::uint32_t timeout_ms);

 private:
  struct RpcReply {
    std::uint16_t type = 0;
    std::vector<std::uint8_t> payload;
  };
  /// Sends `make()` to `node` every `retry_ms` until a frame satisfying
  /// `match` arrives or `timeout_ms` elapses. Runs on the loop thread;
  /// blocks the caller.
  [[nodiscard]] std::optional<RpcReply> rpc(
      NodeId node, std::function<Message()> make,
      std::function<bool(const Message&)> match, std::uint32_t timeout_ms,
      std::uint32_t retry_ms = 250);

  std::vector<PeerAddr> nodes_;
  ProtocolId protocol_;
  std::uint64_t client_id_;
  std::uint64_t next_req_id_ = 1;
  UdpTransport tp_;

  // Loop-thread state: the single outstanding expecter (LockClient is a
  // blocking, one-op-at-a-time client).
  struct Expecter {
    std::function<bool(const Message&)> match;
    std::function<void(RpcReply)> fulfill;
    UdpTransport::TimerToken retry_timer = 0;
    UdpTransport::TimerToken deadline_timer = 0;
  };
  std::optional<Expecter> expecter_;
};

}  // namespace gmx::transport
