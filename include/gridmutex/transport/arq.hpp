// Stop-and-wait ARQ for the real-socket transport.
//
// The simulator's Network implements per-(src,dst,protocol) stop-and-wait
// reliability (net/network.hpp): one frame in flight per channel, later
// frames queue behind the unacked head, exponential-backoff retransmission,
// and a bounded retry horizon after which the frame is given up — a pure
// omission, indistinguishable from a lost unreliable datagram. The
// FIFO-dependent mutex algorithms were validated against exactly those
// semantics, so the real transport must reproduce them bit for bit in
// behavior (not in clocking: here the timers are wall-clock).
//
// The state machines live in these two classes with *injected* effects —
// transmit, arm-timer, cancel-timer are callbacks — so the lossy-delivery
// tests drive them deterministically with fake timers and a scripted wire,
// and UdpTransport wires them to sendmsg and its timer heap. The split also
// keeps every line of protocol logic out of the socket code.
//
// Sender channel (per (dst, protocol)):
//   seq numbers start at 1 (0 = unsequenced, as in the simulator);
//   send() transmits immediately iff the channel head is free, else queues;
//   an ack matching the head cancels its timer and launches the next frame;
//   a timeout retransmits with rto *= backoff (capped) until max_attempts,
//   then gives up — the frame is dropped and the next one launches.
//
// Receiver channel (per (src, protocol)):
//   every sequenced frame is acked (including duplicates — the ack may
//   have been lost); a frame is delivered iff seq > last_delivered.
//   With a stop-and-wait FIFO sender, sequence numbers arrive
//   monotonically except for retransmissions of the current head, so
//   "greater than last delivered" is exactly the simulator's seen-set
//   dedup — including across give-up gaps, where the skipped seq simply
//   never arrives — with O(1) state per channel instead of a set.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>

#include "gridmutex/net/network.hpp"

namespace gmx::transport {

/// Wall-clock analogue of net/network.hpp's RetransmitConfig; defaults
/// match it so sim-validated retry horizons carry over.
struct ArqConfig {
  std::uint32_t rto_ms = 200;
  double backoff = 2.0;
  std::uint32_t rto_max_ms = 2000;
  int max_attempts = 8;
};

struct ArqCounters {
  std::uint64_t sent = 0;           // first transmissions
  std::uint64_t retransmitted = 0;  // timer-driven resends
  std::uint64_t acked = 0;
  std::uint64_t gave_up = 0;  // retry horizon exhausted (omission)
  std::uint64_t delivered = 0;
  std::uint64_t duplicates = 0;  // re-acked, not delivered
  std::uint64_t stale_acks = 0;  // ack for no in-flight frame

  [[nodiscard]] bool operator==(const ArqCounters&) const = default;
};

/// Opaque handle for an armed retransmission timer.
using ArqTimerToken = std::uint64_t;

class ArqSender {
 public:
  struct Hooks {
    /// Puts the frame on the wire (first transmission and resends alike).
    std::function<void(const Message&)> transmit;
    /// Arms a one-shot timer; `fire` must be invoked after ~delay_ms
    /// unless the returned token is cancelled first.
    std::function<ArqTimerToken(std::uint32_t delay_ms,
                                std::function<void()> fire)>
        arm;
    std::function<void(ArqTimerToken)> cancel;
    /// Optional: observes frames dropped at the retry horizon.
    std::function<void(const Message&)> on_give_up;
  };

  ArqSender(ArqConfig cfg, Hooks hooks);

  ArqSender(const ArqSender&) = delete;
  ArqSender& operator=(const ArqSender&) = delete;

  /// Sequences `msg` on its (dst, protocol) channel and transmits it now
  /// if the channel head is free, else queues it. msg.seq is assigned.
  void send(Message msg);

  /// Resolves an incoming acknowledgement frame (type == Message::kAckType,
  /// src = the acking peer).
  void on_ack(NodeId peer, ProtocolId protocol, std::uint64_t seq);

  /// Frames not yet acknowledged: in flight, awaiting retransmission, or
  /// queued behind a channel head.
  [[nodiscard]] std::uint64_t unacked() const { return unacked_; }
  [[nodiscard]] const ArqCounters& counters() const { return counters_; }

 private:
  struct Pending {
    Message msg;
    int attempts = 1;
    std::uint32_t rto_ms = 0;
    ArqTimerToken timer = 0;
  };
  struct Channel {
    std::uint64_t next_seq = 0;
    bool head_busy = false;
    Pending head;
    std::deque<Message> queue;
  };
  using Key = std::pair<NodeId, ProtocolId>;

  void launch(Channel& ch, Message msg);
  void on_timeout(Key key, std::uint64_t seq);
  void launch_next(Channel& ch);

  ArqConfig cfg_;
  Hooks hooks_;
  std::map<Key, Channel> channels_;
  std::uint64_t unacked_ = 0;
  ArqCounters counters_;
};

class ArqReceiver {
 public:
  enum class Verdict : std::uint8_t { kDeliver, kDuplicate };

  /// Classifies a sequenced frame (msg.seq > 0). The caller acks in both
  /// cases — a duplicate usually means our previous ack was lost.
  [[nodiscard]] Verdict on_frame(const Message& msg);

  [[nodiscard]] const ArqCounters& counters() const { return counters_; }

 private:
  std::map<std::pair<NodeId, ProtocolId>, std::uint64_t> last_delivered_;
  ArqCounters counters_;
};

}  // namespace gmx::transport
