// Lock table: shards coordinator placement across clusters.
//
// Every lock hosted by a LockService is an independent two-level
// composition whose inter-level token starts at one cluster's coordinator
// (CompositionConfig::initial_cluster). If every lock rooted its token at
// cluster 0 — the single-lock default — that cluster's coordinator would
// carry the whole inter-level load of a K-lock service. The table spreads
// the *home cluster* of each lock instead:
//
//   kRoundRobin  lock i  ->  cluster i mod C   (balanced by construction;
//                the default for benchmarks, where lock ids are arbitrary)
//   kHash        FNV-1a of the lock's NAME mod C (stable under lock
//                addition/renumbering — the placement a real service with
//                named locks would use; balanced in expectation)
//
// The home cluster only seeds the initial token position and thereby which
// coordinator serves as the lock's root under low contention; the paper's
// composition keeps working wherever the token wanders afterwards.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gridmutex/net/topology.hpp"

namespace gmx {

/// Index of a lock within one LockService, 0..K-1.
using LockId = std::uint32_t;

enum class Placement : std::uint8_t { kRoundRobin, kHash };

/// "roundrobin" or "hash" (CLI --placement). Throws std::invalid_argument.
[[nodiscard]] Placement parse_placement(std::string_view name);
[[nodiscard]] std::string_view to_string(Placement p);

class LockTable {
 public:
  /// `names[i]` is lock i's name; used by kHash and for reporting.
  LockTable(std::uint32_t clusters, Placement placement,
            std::vector<std::string> names);

  [[nodiscard]] std::uint32_t lock_count() const {
    return std::uint32_t(names_.size());
  }
  [[nodiscard]] const std::string& name(LockId lock) const;
  [[nodiscard]] ClusterId home_cluster(LockId lock) const;
  [[nodiscard]] Placement placement() const { return placement_; }

  /// The kHash placement function, exposed for tests and capacity
  /// planning: FNV-1a 64-bit over the name's bytes, folded mod `clusters`.
  [[nodiscard]] static ClusterId hash_cluster(std::string_view name,
                                              std::uint32_t clusters);

 private:
  Placement placement_;
  std::vector<std::string> names_;
  std::vector<ClusterId> home_;  // precomputed per lock
};

}  // namespace gmx
