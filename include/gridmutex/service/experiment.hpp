// LockService experiments: open-loop traffic over K sharded locks.
//
// `run_service_experiment` is the multi-lock sibling of
// workload/experiment.hpp's run_experiment: it builds one simulated grid,
// hosts a LockService of K lock compositions on it, drives Poisson/Zipf
// open-loop traffic through per-node ClientSessions, and reports both
// aggregate and per-lock metrics (ExperimentResult::per_lock) — throughput
// in CS/s, obtaining-time percentiles, Jain's fairness across locks, and
// inter-cluster messages per CS attributed to each lock's protocol block.
//
// Safety instrumentation mirrors the single-lock runner, per lock: one
// SafetyMonitor per lock (two holders of *different* locks are legal; two
// of the same lock abort), and with `check_protocol` one checker
// attachment per lock composition ("lock[l]." prefixed), so
// token-uniqueness and exclusion are verified independently for every
// hosted lock.
//
// Fault campaigns reuse ExperimentConfig::FaultCampaign unchanged. Two
// service-specific rules:
//   - batching is force-disabled under faults (BATCH frames are not
//     ARQ-covered; see service/batch.hpp);
//   - recovery watches every lock's instances, named "lock[l].inter" /
//     "lock[l].intra[c]" so diagnostics attribute losses to the lock.
#pragma once

#include <span>

#include "gridmutex/service/lock_service.hpp"
#include "gridmutex/workload/experiment.hpp"
#include "gridmutex/workload/open_loop.hpp"

namespace gmx {

struct ServiceConfig {
  std::uint32_t locks = 4;
  /// Default "lock<i>"; kHash placement hashes these names.
  std::vector<std::string> lock_names;
  std::string intra = "naimi";
  std::string inter = "naimi";
  Placement placement = Placement::kRoundRobin;
  /// Piggyback batching (service/batch.hpp). Force-disabled under faults.
  bool batching = true;

  std::uint32_t clusters = 9;
  std::uint32_t apps_per_cluster = 20;
  LatencySpec latency = LatencySpec::grid5000();

  OpenLoopParams open_loop;
  std::uint64_t seed = 1;

  /// Service-level resilience (leases/fencing, deadlines, admission
  /// control, retry backoff — service/resilience.hpp). Default-inert:
  /// a default config adds no protocol, no timers and no Rng draws, so
  /// fault-free trajectories stay bit-identical to pre-resilience runs.
  ResilienceConfig resilience;

  /// Client churn: `crashes` client-process deaths, round-robin over the
  /// app nodes, starting at `first` and spaced `every`; each node rejoins
  /// after `down` (<= 0: never — the negative-control flavour). Implies
  /// the fault machinery (injector armed, batching off) even when
  /// `faults.enabled` is false.
  struct ChurnSpec {
    std::uint32_t crashes = 0;  // 0 = no churn
    SimDuration first = SimDuration::sec(2);
    SimDuration every = SimDuration::ms(500);
    SimDuration down = SimDuration::ms(800);
  };
  ChurnSpec churn;

  /// Flash crowd: multiply the open-loop arrival rate by `factor` inside
  /// [from, until). factor == 1 draws the identical arrival stream, so an
  /// inert spec preserves bit-identity.
  struct FlashCrowdSpec {
    double factor = 1.0;
    SimDuration from;
    SimDuration until;
  };
  FlashCrowdSpec flash;

  /// Crash-while-holding: at `at`, kill whichever client session holds
  /// `lock` at that instant (no-op when nobody does); rejoin after `down`
  /// (<= 0: never). Dynamic — resolved against live state at fire time.
  struct HolderCrashSpec {
    LockId lock = 0;
    SimDuration at;
    SimDuration down = SimDuration::ms(800);
  };
  std::vector<HolderCrashSpec> holder_crashes;

  /// Arms the ProtocolChecker per lock (see header comment).
  bool check_protocol = false;
  SimDuration grant_bound = SimDuration::sec(120);

  /// FNV-1a fingerprint of the full delivery trace into
  /// ExperimentResult::trace_hash (see workload/trace_hash.hpp). Occupies
  /// the Network tracer slot; off by default.
  bool hash_trace = false;

  ExperimentConfig::FaultCampaign faults;

  /// Deterministic protocol layout of a service on a fresh network —
  /// exposed so fault plans and tests can target a lock's messages without
  /// constructing the service first (asserted against the live service).
  static constexpr ProtocolId kBatchProtocol = 1;
  [[nodiscard]] static constexpr ProtocolId lock_protocol_base(
      std::uint32_t lock, std::uint32_t clusters) {
    return 2 + lock * (clusters + 1);
  }
  [[nodiscard]] static constexpr ProtocolId lock_inter_protocol(
      std::uint32_t lock, std::uint32_t clusters) {
    return lock_protocol_base(lock, clusters);
  }
  [[nodiscard]] static constexpr ProtocolId lock_intra_protocol(
      std::uint32_t lock, std::uint32_t clusters, std::uint32_t cluster) {
    return lock_protocol_base(lock, clusters) + 1 + cluster;
  }
  /// LEASE protocol — reserved after every lock block, and only when
  /// resilience.leases is on (the layout above is untouched otherwise).
  [[nodiscard]] static constexpr ProtocolId lease_protocol(
      std::uint32_t locks, std::uint32_t clusters) {
    return 2 + locks * (clusters + 1);
  }

  /// e.g. "Naimi-Naimi K=16".
  [[nodiscard]] std::string label() const;
};

/// Runs one seeded service experiment to completion (drain) or to the
/// fault campaign's stall horizon. Aborts on any safety violation.
[[nodiscard]] ExperimentResult run_service_experiment(
    const ServiceConfig& cfg);

/// Runs `repetitions` seeds (cfg.seed, cfg.seed+1, ...) and merges;
/// throughput_cs_per_s() then averages over the summed service time.
[[nodiscard]] ExperimentResult run_service_replicated(ServiceConfig cfg,
                                                      int repetitions);

/// Parallel sweep over service configurations: fans every
/// (config, repetition) cell across `jobs` threads (0 = hardware
/// concurrency, 1 = serial) via workload/sweep.hpp's SweepRunner and
/// returns one merged result per config, in input order — bit-identical
/// to a serial run_service_replicated loop for every job count.
[[nodiscard]] std::vector<ExperimentResult> run_service_sweep(
    std::span<const ServiceConfig> configs, int repetitions,
    std::size_t jobs = 0);

}  // namespace gmx
