// Lock leases with fencing epochs — the LockService's defense against its
// own clients (ISSUE 7 tentpole).
//
// The algorithms below the service already survive message loss and
// coordinator crashes (PR 2), but a *client* that dies while holding a
// critical section stalls that lock forever: no protocol message is
// missing, the token simply sits on a corpse. The LeaseManager closes that
// hole at the service level:
//
//   - every client-visible grant is stamped with a **fencing token**, a
//     per-lock counter that only ever grows (strictly monotone — the
//     ProtocolChecker verifies this globally). The token rides the lock
//     itself, so minting needs no extra round-trip;
//   - while a session holds a lock it sends LEASE_RENEW datagrams every
//     `renew_interval` to the lock's **authority** — the coordinator node
//     of its home cluster. Renewals are real datagrams: a crashed,
//     omitted, or partitioned holder stops renewing *as observed by the
//     authority*, whatever the root cause;
//   - an authority that sees no renewal for `ttl` opens a **revocation
//     epoch** (reported to the checker), sends REVOKE to the holder, and
//     waits `drain` for a graceful release. A live holder that receives
//     the REVOKE releases inside the drain window; a dead one is
//     force-released on its behalf when the window closes. Either way the
//     epoch closes after the release, and the next grant's larger fencing
//     token fences out any late release from the old holder
//     (ClientSession::release_if_current refuses stale fences);
//   - a force-release executed on a *down* node reuses PR 2's machinery:
//     the release's outgoing datagrams are dropped by the omission window,
//     the token is lost, and ARQ / token-regeneration mint the
//     replacement. Revocation adds no new recovery protocol — it converts
//     "client died holding the lock" into the already-solved "token lost".
//
// CANCEL and SHED are load-telemetry datagrams: sessions report admission
// rejections and cancellations to the lock's authority, which aggregates
// per-lock overload counters (the service's shed metrics).
//
// All four message schemas go through the zero-copy wire::Writer path and
// are exposed for the codec-equivalence and fuzz suites like every other
// protocol schema.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "gridmutex/net/network.hpp"
#include "gridmutex/net/wire.hpp"
#include "gridmutex/service/client_session.hpp"
#include "gridmutex/service/lock_table.hpp"
#include "gridmutex/service/resilience.hpp"

namespace gmx {

class LeaseManager {
 public:
  /// Message types on the lease protocol (below Message::kAckType).
  static constexpr std::uint16_t kRenewType = 1;
  static constexpr std::uint16_t kRevokeType = 2;
  static constexpr std::uint16_t kCancelType = 3;
  static constexpr std::uint16_t kShedType = 4;

  // ---- wire schemas (all-varint; encode/decode exposed for the
  //      codec-equivalence and fuzz differential oracles) ----
  struct Renew {
    std::uint64_t lock = 0;
    std::uint64_t node = 0;
    std::uint64_t fence = 0;
    void encode(wire::Writer& w) const;
    [[nodiscard]] static Renew decode(wire::Reader& r);
    [[nodiscard]] bool operator==(const Renew&) const = default;
  };
  struct Revoke {
    std::uint64_t lock = 0;
    std::uint64_t fence = 0;
    void encode(wire::Writer& w) const;
    [[nodiscard]] static Revoke decode(wire::Reader& r);
    [[nodiscard]] bool operator==(const Revoke&) const = default;
  };
  /// Shared shape of the CANCEL and SHED telemetry reports.
  struct LoadReport {
    std::uint64_t lock = 0;
    std::uint64_t node = 0;
    std::uint64_t count = 0;
    void encode(wire::Writer& w) const;
    [[nodiscard]] static LoadReport decode(wire::Reader& r);
    [[nodiscard]] bool operator==(const LoadReport&) const = default;
  };

  /// Analysis attachment points (the recovery-manager idiom: the service
  /// stays ignorant of the checker; the experiment wires these through).
  struct Hooks {
    std::function<void(LockId, std::uint64_t fence)> on_grant;
    std::function<void(LockId, std::uint64_t fence, bool voluntary)>
        on_release;
    /// Revocation epoch open/close for `lock`.
    std::function<void(LockId, bool open)> on_revocation;
  };

  struct Stats {
    std::uint64_t grants = 0;
    std::uint64_t renews_sent = 0;
    std::uint64_t renews_received = 0;
    std::uint64_t revocations = 0;      ///< epochs opened (TTL expiries)
    std::uint64_t drain_releases = 0;   ///< holder honored REVOKE in time
    std::uint64_t forced_releases = 0;  ///< drain expired, fenced out
    std::uint64_t shed_reports = 0;     ///< SHED datagrams received
    std::uint64_t cancel_reports = 0;   ///< CANCEL datagrams received
  };

  /// `authority_of_lock[l]` is the coordinator node owning lock l's lease
  /// bookkeeping; `resolve(node)` returns the ClientSession living on an
  /// app node (nullptr for non-session nodes). Attaches a handler for
  /// `protocol` on every node of the network's topology.
  LeaseManager(Network& net, ProtocolId protocol, LeaseConfig cfg,
               std::vector<NodeId> authority_of_lock,
               std::function<ClientSession*(NodeId)> resolve);
  ~LeaseManager();

  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  // ---- ClientSession lease-hook entry points (LockService wiring) ----
  /// Mints the fencing token for a grant `session` is delivering and
  /// starts its renewal stream. Returns the fence.
  std::uint64_t grant(ClientSession& session, LockId lock);
  /// A hold ended (released voluntarily or force-released).
  void released(NodeId node, LockId lock, std::uint64_t fence,
                bool voluntary);
  /// A ticket was shed or cancelled on `node` — emit the telemetry
  /// datagram to the lock's authority.
  void report_reject(NodeId node, LockId lock, AcquireOutcome outcome);

  /// The client *process* on `node` died (fault layer; call right after
  /// ClientSession::crash). Stops the node's renewal streams — a restarted
  /// process has no memory of its holds, so it must not keep leases alive.
  /// The authority is deliberately NOT told: it finds out the honest way,
  /// when the TTL expires without renewals, and revokes.
  void client_died(NodeId node);

  [[nodiscard]] ProtocolId protocol() const { return protocol_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const LeaseConfig& config() const { return cfg_; }
  /// Last fencing token minted for `lock` (0 = never granted).
  [[nodiscard]] std::uint64_t fence_of(LockId lock) const;
  /// True while `lock`'s revocation epoch is open.
  [[nodiscard]] bool revoking(LockId lock) const;
  /// Per-lock telemetry aggregated at the authority.
  [[nodiscard]] std::uint64_t shed_reports_for(LockId lock) const;
  [[nodiscard]] std::uint64_t cancel_reports_for(LockId lock) const;

  /// TraceSink label for the lease protocol's message types ("" when the
  /// protocol id is not ours — the labeler-chain contract).
  [[nodiscard]] std::string trace_label(ProtocolId p,
                                        std::uint16_t type) const;

 private:
  /// Authority-side view of one lock's lease.
  struct Auth {
    NodeId holder = kInvalidNode;
    std::uint64_t fence = 0;
    SimTime last_renewal;
    EventId ttl_timer = kInvalidEventId;
    EventId drain_timer = kInvalidEventId;
    bool revoking = false;  // epoch open
    std::uint64_t shed_reports = 0;
    std::uint64_t cancel_reports = 0;
  };
  /// Holder-side renewal stream of one (node, lock) hold.
  struct Holder {
    std::uint64_t fence = 0;
    EventId renew_timer = kInvalidEventId;
  };

  [[nodiscard]] static std::uint64_t holder_key(NodeId node, LockId lock) {
    return (std::uint64_t(node) << 32) | std::uint64_t(lock);
  }
  void on_message(NodeId at, const Message& msg);
  void send_renew(NodeId node, LockId lock);
  void schedule_renew(NodeId node, LockId lock);
  void check_ttl(LockId lock);
  void arm_ttl(LockId lock, SimTime at);
  void start_revocation(LockId lock);
  void drain_expired(LockId lock, std::uint64_t fence);
  void close_epoch(LockId lock);
  void send(NodeId src, NodeId dst, std::uint16_t type, wire::Writer w);

  Network& net_;
  Simulator& sim_;
  ProtocolId protocol_;
  LeaseConfig cfg_;
  std::vector<NodeId> authority_of_lock_;
  std::function<ClientSession*(NodeId)> resolve_;
  Hooks hooks_;
  std::vector<std::uint64_t> fence_counter_;  // per lock, monotone
  std::vector<Auth> auth_;                    // per lock
  std::unordered_map<std::uint64_t, Holder> holders_;
  Stats stats_;
};

}  // namespace gmx
