// LockService: K named locks multiplexed over one simulated grid.
//
// The ROADMAP's production-scale lock service, built from the paper's
// pieces: every lock is an *unmodified* two-level composition (core/
// composition.hpp) — own inter instance, own per-cluster intra instances,
// own coordinators — multiplexed on the shared Network through a freshly
// reserved ProtocolId block per lock (Network::reserve_protocols), so
// instances can never collide and every existing observer (checker,
// recovery, tracing) keeps working per lock.
//
// Placement: the LockTable assigns each lock a home cluster (round-robin
// or name-hash) that seeds its inter token, sharding the root-coordinator
// role across clusters instead of piling all K inter-level hot spots onto
// cluster 0.
//
// Access: applications go through per-node ClientSessions
// (acquire/release with per-lock FIFO queues). With batching enabled, a
// BatchMux coalesces same-instant same-destination control messages of
// all locks into single BATCH datagrams — the piggybacking a real
// multiplexed service performs on its connection layer.
//
// Protocol id layout on a fresh network (documented because fault plans
// and tests target protocol ids):
//   1                      BATCH        (reserved even when batching off)
//   2 + l*(C+1)            lock l inter
//   2 + l*(C+1) + 1 + c    lock l intra of cluster c      (C clusters)
//   2 + K*(C+1)            LEASE        (only when resilience.leases is on)
//
// Resilience (service/resilience.hpp, service/lease.hpp): when configured,
// sessions get admission control, deadline tickets and backoff retry, and a
// LeaseManager mints fencing tokens and revokes unresponsive holders. The
// default ResilienceConfig is inert — no protocol reserved, no timer, no
// Rng draw — so fault-free runs stay bit-identical to the bare service.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gridmutex/core/composition.hpp"
#include "gridmutex/service/batch.hpp"
#include "gridmutex/service/client_session.hpp"
#include "gridmutex/service/lease.hpp"
#include "gridmutex/service/lock_table.hpp"
#include "gridmutex/service/resilience.hpp"

namespace gmx {

struct LockServiceConfig {
  std::uint32_t locks = 1;
  /// Optional explicit names; default "lock<i>". Size must equal `locks`
  /// when non-empty (kHash placement hashes these names).
  std::vector<std::string> lock_names;
  std::string intra_algorithm = "naimi";
  std::string inter_algorithm = "naimi";
  Placement placement = Placement::kRoundRobin;
  /// Coalesce same-instant same-destination messages (service/batch.hpp).
  /// Must be off when any fault campaign runs (frames are not ARQ-covered).
  bool batching = true;
  std::uint64_t seed = 1;
  /// Leases, admission control, retry (service/resilience.hpp).
  ResilienceConfig resilience;
};

class LockService {
 public:
  /// The network's topology must follow the composition convention: first
  /// node of each cluster is the coordinator, the rest are app nodes.
  LockService(Network& net, LockServiceConfig cfg);
  ~LockService();

  LockService(const LockService&) = delete;
  LockService& operator=(const LockService&) = delete;

  /// Starts every lock's coordinators. Call once before the first acquire.
  void start();

  [[nodiscard]] std::uint32_t lock_count() const { return cfg_.locks; }
  [[nodiscard]] const LockTable& table() const { return table_; }
  [[nodiscard]] const LockServiceConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<NodeId>& app_nodes() const {
    return comps_.front()->app_nodes();
  }

  [[nodiscard]] Composition& composition(LockId lock);
  [[nodiscard]] ClientSession& session(NodeId app_node);

  [[nodiscard]] ProtocolId batch_protocol() const { return batch_protocol_; }
  /// First protocol id of lock `lock`'s block [base, base + clusters + 1).
  [[nodiscard]] ProtocolId protocol_base(LockId lock) const;
  /// nullptr when batching is disabled.
  [[nodiscard]] BatchMux* batcher() { return mux_.get(); }
  /// nullptr unless resilience.leases is on.
  [[nodiscard]] LeaseManager* leases() { return lease_.get(); }
  /// 0 unless resilience.leases is on.
  [[nodiscard]] ProtocolId lease_protocol() const { return lease_protocol_; }

  /// Messages of lock `lock` handed to the wire, including sub-messages
  /// that rode inside BATCH frames; `inter_messages` restricts to
  /// cluster-crossing ones (the paper's Fig. 4(b) metric, per lock).
  [[nodiscard]] std::uint64_t messages(LockId lock) const;
  [[nodiscard]] std::uint64_t inter_messages(LockId lock) const;

  /// TraceSink labeler chain covering every lock ("lock[i].intra[c](...)")
  /// plus the service's own BATCH frames.
  [[nodiscard]] std::function<std::string(ProtocolId, std::uint16_t)>
  trace_labeler() const;

 private:
  Network& net_;
  LockServiceConfig cfg_;
  LockTable table_;
  ProtocolId batch_protocol_ = 0;
  ProtocolId lease_protocol_ = 0;
  std::unique_ptr<BatchMux> mux_;
  std::vector<std::unique_ptr<Composition>> comps_;  // one per lock
  std::vector<std::unique_ptr<ClientSession>> sessions_;  // per app node
  std::vector<int> session_of_node_;  // node -> index into sessions_, -1
  /// Dedicated stream for retry jitter; fault-free runs never draw from it.
  Rng resilience_rng_;
  std::unique_ptr<LeaseManager> lease_;  // after sessions_: destroyed first
};

}  // namespace gmx
