// Piggyback batching of same-destination control messages.
//
// On the hot path of a multi-lock service, one simulator instant often
// produces several datagrams for the same (src, dst) pair — e.g. a node
// releasing lock A and requesting lock B, or a coordinator answering
// several locks at once. A real service coalesces those into one UDP
// datagram; the BatchMux models exactly that:
//
//   - it intercepts every send (Network::set_send_router) and parks the
//     message in a per-(src,dst) bucket;
//   - a zero-delay flush event fires at the same simulated instant: a
//     lone message continues unchanged, two or more are encoded into one
//     BATCH frame under the mux's own ProtocolId (one latency sample, one
//     application header);
//   - on delivery the frame is unpacked and each sub-message is handed to
//     its protocol's handler via Network::dispatch_local().
//
// Invariant plumbing: a token absorbed into a frame is invisible to
// Network::in_flight_for(token protocol) — exactly the signal token-loss
// detectors and the ProtocolChecker key on — so the mux keeps a virtual
// per-protocol in-flight count (offer -> unpack) and publishes it through
// Network::set_in_flight_supplement().
//
// Two deliberate exclusions:
//   - reliable protocols are never absorbed: a batched frame would bypass
//     ARQ sequencing/retransmission, silently weakening the recovery
//     guarantees of fault campaigns;
//   - frames themselves are plain datagrams, so a faulted network could
//     drop one and strand the virtual counts. Fault campaigns therefore
//     run with batching disabled (service/experiment.cpp enforces this).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "gridmutex/net/network.hpp"

namespace gmx {

class BatchMux {
 public:
  /// The one message type of the batch protocol.
  static constexpr std::uint16_t kFrameType = 1;

  struct Stats {
    std::uint64_t absorbed = 0;        // sub-messages carried inside frames
    std::uint64_t frames = 0;          // BATCH datagrams sent
    std::uint64_t flushed_single = 0;  // lone bucket entries sent unbatched
    std::uint64_t bytes_saved = 0;     // wire bytes elided vs separate sends
  };

  /// Installs the router, the in-flight supplement and a frame handler on
  /// every node. `protocol` must be freshly reserved for this mux
  /// (Network::reserve_protocols). The mux must outlive all traffic and be
  /// destroyed before the network.
  BatchMux(Network& net, ProtocolId protocol);
  ~BatchMux();

  BatchMux(const BatchMux&) = delete;
  BatchMux& operator=(const BatchMux&) = delete;

  [[nodiscard]] ProtocolId protocol() const { return protocol_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Sub-messages currently absorbed: bucketed awaiting flush or riding an
  /// in-flight frame. A drained simulation must report 0.
  [[nodiscard]] std::uint64_t in_transit() const { return in_transit_; }

  /// Sub-messages of `p` that actually traveled inside frames — the
  /// batched complement of Network::sent_by_protocol(p) (and its
  /// inter-cluster split) for per-lock message accounting.
  [[nodiscard]] std::uint64_t absorbed_for(ProtocolId p) const;
  [[nodiscard]] std::uint64_t inter_absorbed_for(ProtocolId p) const;

  /// Frame payload codec, exposed for tests and fuzzing. Encoding: varint
  /// sub-count, then per sub-message varint protocol id, u16 type, varint
  /// length + payload bytes. decode() throws wire::WireError on any
  /// malformed input and restores src/dst from the enclosing frame.
  [[nodiscard]] static std::vector<std::uint8_t> encode(
      std::span<const Message> subs);
  [[nodiscard]] static std::vector<Message> decode(
      NodeId src, NodeId dst, std::span<const std::uint8_t> payload);

 private:
  [[nodiscard]] bool offer(Message& msg);
  void flush(NodeId src, NodeId dst);
  void on_frame(const Message& frame);
  [[nodiscard]] static std::uint64_t pair_key(NodeId src, NodeId dst) {
    return (std::uint64_t(src) << 32) | std::uint64_t(dst);
  }

  /// One sub-message located inside a frame's payload block — the
  /// validating pre-pass of on_frame() records these, then delivery
  /// slices each body out of the frame zero-copy.
  struct SubRef {
    ProtocolId protocol;
    std::uint16_t type;
    std::uint32_t off;
    std::uint32_t len;
  };

  /// Grow-on-demand counter slot; protocol ids are small sequential ints
  /// (Network::reserve_protocols), so flat vectors indexed by id replace
  /// the hash maps these counters started as — offer/unpack bump them on
  /// every absorbed message.
  [[nodiscard]] static std::uint64_t& counter(
      std::vector<std::uint64_t>& table, ProtocolId p) {
    if (table.size() <= p) table.resize(std::size_t(p) + 1, 0);
    return table[p];
  }
  [[nodiscard]] static std::uint64_t read_counter(
      const std::vector<std::uint64_t>& table, ProtocolId p) {
    return p < table.size() ? table[p] : 0;
  }

  Network& net_;
  ProtocolId protocol_;
  bool flushing_ = false;  // re-entrancy guard: flushed sends bypass offer()
  std::vector<SubRef> scratch_;  // reused across on_frame() calls
  std::vector<Message> flush_scratch_;  // reused across flush() calls
  std::unordered_map<std::uint64_t, std::vector<Message>> buckets_;
  std::vector<std::uint64_t> virtual_in_flight_;   // indexed by ProtocolId
  std::vector<std::uint64_t> absorbed_by_protocol_;
  std::vector<std::uint64_t> inter_absorbed_;
  std::uint64_t in_transit_ = 0;
  Stats stats_;
};

}  // namespace gmx
