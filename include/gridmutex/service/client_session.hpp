// Per-node client session of a LockService.
//
// One session per application node. It front-ends the node's per-lock
// mutex endpoints with the service API a client library would offer:
//
//   acquire(lock, cb)  enqueue a grant callback; the session issues at most
//                      one request_cs() per lock at a time — further
//                      acquires wait in the lock's FIFO pending queue and
//                      are granted back-to-back on each release;
//   release(lock)      leave the CS; if the pending queue is non-empty the
//                      session immediately re-requests.
//
// The session never re-enters an algorithm: endpoint grant callbacks are
// already deferred through a zero-delay simulator event (mutex/endpoint.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/service/lock_table.hpp"

namespace gmx {

class ClientSession {
 public:
  using GrantCallback = std::function<void()>;

  explicit ClientSession(NodeId node) : node_(node) {}

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Pre-sizes the slot table. A Slot holds a std::deque, whose move
  /// constructor is not noexcept, so vector growth during add_lock would
  /// copy-construct every existing slot (and its deque allocation);
  /// reserving up front makes session wiring allocation-linear.
  void reserve_locks(std::size_t count) { slots_.reserve(count); }

  /// Wires lock `lock` to this node's endpoint of that lock's intra
  /// instance. Called once per lock by the LockService, in LockId order.
  void add_lock(LockId lock, MutexEndpoint& endpoint);

  /// Enqueues a grant callback for `lock`. The callback fires exactly once,
  /// when this session holds the lock; the holder must then call release().
  void acquire(LockId lock, GrantCallback cb);

  /// Releases `lock` (the session must be holding it) and pumps the
  /// pending queue.
  void release(LockId lock);

  /// Grant delivery from the lock's endpoint (LockService wiring).
  void granted(LockId lock);

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] bool holding(LockId lock) const;
  [[nodiscard]] std::size_t pending(LockId lock) const;
  /// Grants delivered to this session for `lock` so far.
  [[nodiscard]] std::uint64_t acquisitions(LockId lock) const;
  /// True when no lock is held, requested or queued.
  [[nodiscard]] bool idle() const;

 private:
  struct Slot {
    MutexEndpoint* endpoint = nullptr;
    std::deque<GrantCallback> waiting;
    bool requesting = false;
    bool holding = false;
    std::uint64_t grants = 0;
  };
  [[nodiscard]] Slot& slot(LockId lock);
  [[nodiscard]] const Slot& slot(LockId lock) const;
  void pump(Slot& s);

  NodeId node_;
  std::vector<Slot> slots_;  // indexed by LockId
};

}  // namespace gmx
