// Per-node client session of a LockService.
//
// One session per application node. It front-ends the node's per-lock
// mutex endpoints with the service API a client library would offer:
//
//   acquire(lock, opts, cb)  enqueue a ticket; the session issues at most
//                      one request_cs() per lock at a time — further
//                      acquires wait in the lock's FIFO pending queue and
//                      are granted back-to-back on each release. A ticket
//                      can carry a deadline (kDeadlineExpired past it) and
//                      is subject to admission control when configured;
//   cancel(lock, id)   withdraw a queued ticket. Cancelling the head while
//                      its algorithm request is on the wire marks the slot
//                      abandoned: the request cannot be recalled, so the
//                      eventual grant is auto-released the instant it
//                      arrives — this is the granted-race, made explicit.
//                      Cancelling a ticket that was already granted returns
//                      false and does nothing (never a silent release);
//   release(lock)      leave the CS; if the pending queue is non-empty the
//                      session immediately re-requests.
//
// Resilience plumbing (service/resilience.hpp): admission bounds the
// pending queue with a shed policy; shed / deadline-expired tickets retry
// with jittered exponential backoff drawn from an Rng stream the
// LockService dedicates to resilience (fault-free runs draw nothing);
// crash()/restart() model client churn — a crashed session fails its queue
// with kSessionDown and leaves held locks dangling for the lease layer
// (service/lease.hpp) to revoke via force_release().
//
// The session never re-enters an algorithm: endpoint grant callbacks are
// already deferred through a zero-delay simulator event (mutex/endpoint.hpp),
// and every non-granted ticket completion is deferred the same way, so a
// caller's stack never sees its own callback.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/service/lock_table.hpp"
#include "gridmutex/service/resilience.hpp"
#include "gridmutex/sim/simulator.hpp"

namespace gmx {

class ClientSession {
 public:
  using GrantCallback = std::function<void()>;
  using ResultCallback = std::function<void(const AcquireResult&)>;

  /// Lease-layer attachment points (service/lease.hpp). All optional; the
  /// session works untouched without them.
  struct LeaseHooks {
    /// Mint the fencing token for a grant the session is about to deliver;
    /// also starts the holder's renewal timers. Unset -> fence 0.
    std::function<std::uint64_t(LockId)> on_grant;
    /// A held lock was released; `voluntary` is false for force_release().
    std::function<void(LockId, std::uint64_t fence, bool voluntary)>
        on_release;
    /// Ticket rejected (kShed / kCancelled) — load telemetry.
    std::function<void(LockId, AcquireOutcome)> on_reject;
  };

  ClientSession(Simulator& sim, NodeId node) : sim_(sim), node_(node) {}

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Pre-sizes the slot table. A Slot holds a std::deque, whose move
  /// constructor is not noexcept, so vector growth during add_lock would
  /// copy-construct every existing slot (and its deque allocation);
  /// reserving up front makes session wiring allocation-linear.
  void reserve_locks(std::size_t count) { slots_.reserve(count); }

  /// Wires lock `lock` to this node's endpoint of that lock's intra
  /// instance. Called once per lock by the LockService, in LockId order.
  void add_lock(LockId lock, MutexEndpoint& endpoint);

  // ---- resilience wiring (LockService, before traffic) ----
  void set_admission(AdmissionConfig cfg) { admission_ = cfg; }
  /// `rng` must outlive the session; draws happen only on actual retries.
  void set_retry(RetryConfig cfg, Rng* rng) {
    retry_ = cfg;
    retry_rng_ = rng;
  }
  void set_lease_hooks(LeaseHooks hooks) { lease_ = std::move(hooks); }

  /// Enqueues a grant callback for `lock` (legacy API). The callback fires
  /// exactly once, when this session holds the lock; the holder must then
  /// call release(). No deadline; admission still applies if configured.
  void acquire(LockId lock, GrantCallback cb);

  /// Ticketed acquire. The result callback fires exactly once with the
  /// ticket's terminal outcome; on kGranted the caller holds the lock and
  /// must release it (release() or release_if_current()).
  TicketId acquire(LockId lock, AcquireOptions opts, ResultCallback cb);

  /// Withdraws ticket `id` if it has not been granted. Returns false when
  /// the ticket is unknown or already granted — cancelling the current
  /// holder is a refusal, never a silent release.
  bool cancel(LockId lock, TicketId id);

  /// Releases `lock` (the session must be holding it) and pumps the
  /// pending queue.
  void release(LockId lock);

  /// Fencing-guarded release: releases only if the session still holds
  /// `lock` under exactly `fence`. Returns false (counting a stale
  /// release) when the hold was revoked or re-granted in the meantime —
  /// the application-side discipline that makes revocation safe.
  bool release_if_current(LockId lock, std::uint64_t fence);

  /// Lease-layer revocation: involuntarily releases `lock` if held.
  /// Returns false if the session was not holding it.
  bool force_release(LockId lock);

  /// Client churn. crash() fails every queued ticket with kSessionDown
  /// (abandoning in-flight heads) and leaves held locks dangling — the
  /// lease layer revokes them; the caller is responsible for the matching
  /// Network::set_node_up() flip. restart() re-opens the session (warm:
  /// endpoint state survived).
  void crash();
  void restart();
  [[nodiscard]] bool down() const { return down_; }

  /// Grant delivery from the lock's endpoint (LockService wiring).
  void granted(LockId lock);

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] bool holding(LockId lock) const;
  /// Fencing token of the current hold (0 when not holding / no leases).
  [[nodiscard]] std::uint64_t current_fence(LockId lock) const;
  [[nodiscard]] std::size_t pending(LockId lock) const;
  /// Grants delivered to this session for `lock` so far.
  [[nodiscard]] std::uint64_t acquisitions(LockId lock) const;
  /// True when no lock is held, requested or queued.
  [[nodiscard]] bool idle() const;

  /// Resilience counters (each occurrence, including retried ones).
  [[nodiscard]] std::uint64_t sheds() const { return sheds_; }
  [[nodiscard]] std::uint64_t cancels() const { return cancels_; }
  [[nodiscard]] std::uint64_t deadline_misses() const {
    return deadline_misses_;
  }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t forced_releases() const {
    return forced_releases_;
  }
  [[nodiscard]] std::uint64_t stale_releases() const {
    return stale_releases_;
  }
  /// Grants that arrived after their ticket was withdrawn (the granted
  /// race) and were auto-released.
  [[nodiscard]] std::uint64_t abandoned_grants() const {
    return abandoned_grants_;
  }

 private:
  struct Ticket {
    TicketId id = kInvalidTicket;
    ResultCallback cb;
    /// Relative deadline, re-applied from scratch on each retry attempt.
    std::optional<SimDuration> rel_deadline;
    /// Absolute expiry of the current attempt (max() = none) — the
    /// reject-by-deadline comparison key.
    SimTime deadline_at = SimTime::max();
    EventId deadline_timer = kInvalidEventId;
    std::uint32_t attempts = 0;  // retries consumed so far
  };
  struct Slot {
    MutexEndpoint* endpoint = nullptr;
    std::deque<Ticket> waiting;
    bool requesting = false;
    bool holding = false;
    /// The requesting head was withdrawn (cancel/deadline/crash): the
    /// algorithm request cannot be recalled, so the grant it wins is
    /// released the instant it arrives.
    bool abandoned = false;
    std::uint64_t fence = 0;  // of the current hold
    std::uint64_t grants = 0;
  };

  [[nodiscard]] Slot& slot(LockId lock);
  [[nodiscard]] const Slot& slot(LockId lock) const;
  void pump(Slot& s);
  /// Admission-checks and enqueues; entry point for both acquire and retry.
  void admit(LockId lock, Ticket t);
  void enqueue(LockId lock, Ticket t);
  /// Terminal (or retried) non-granted resolution of a ticket.
  void finish(LockId lock, Ticket t, AcquireOutcome outcome);
  /// Defers the result callback through a zero-delay event.
  void complete(Ticket t, AcquireOutcome outcome);
  void on_deadline(LockId lock, TicketId id);
  void cancel_timer(Ticket& t);
  [[nodiscard]] SimDuration backoff_delay(std::uint32_t attempt);
  void do_release(Slot& s, LockId lock, bool voluntary);

  Simulator& sim_;
  NodeId node_;
  std::vector<Slot> slots_;  // indexed by LockId
  AdmissionConfig admission_;
  RetryConfig retry_;
  Rng* retry_rng_ = nullptr;
  LeaseHooks lease_;
  bool down_ = false;
  TicketId next_ticket_ = 1;

  std::uint64_t sheds_ = 0;
  std::uint64_t cancels_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t forced_releases_ = 0;
  std::uint64_t stale_releases_ = 0;
  std::uint64_t abandoned_grants_ = 0;
};

}  // namespace gmx
