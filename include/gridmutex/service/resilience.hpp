// Service-level resilience vocabulary: acquire outcomes, lease/admission/
// retry configuration, and the chaos scenario axes built from them.
//
// The algorithms (PR 2) already survive message loss, token loss and
// coordinator crashes. This header names the failure modes of the *service
// layer itself* — a client that dies while holding a critical section, an
// acquire with no deadline, unbounded queueing under overload — and the
// knobs that contain them:
//
//   - leases with fencing epochs: every grant carries a fencing token,
//     strictly monotone per lock; a holder that stops renewing its lease is
//     revoked through a drain-and-force-release protocol (service/lease.hpp)
//     and the replacement holder's larger token fences out the stale one;
//   - deadline-based acquire and cancellation: a ticket that cannot be
//     granted in time fails cleanly instead of waiting forever, and a
//     queued ticket can be withdrawn (the granted-race is detected, never
//     silently dropped);
//   - admission control: the per-(session, lock) pending queue is bounded
//     and overflow is shed by policy, so overload degrades into explicit
//     rejections instead of unbounded latency;
//   - retry with jittered exponential backoff: shed or expired tickets
//     retry from a dedicated Rng stream — fault-free runs make zero draws,
//     so the pinned delivery-trace hashes are untouched.
//
// Everything here is inert configuration; behavior lives in
// service/client_session.hpp (tickets) and service/lease.hpp (leases).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "gridmutex/sim/time.hpp"

namespace gmx {

/// Ticket handle returned by ClientSession::acquire; unique per session.
using TicketId = std::uint64_t;
inline constexpr TicketId kInvalidTicket = 0;

/// Terminal state of an acquire ticket. Exactly one outcome is delivered
/// per ticket (after session-internal retries are exhausted).
enum class AcquireOutcome : std::uint8_t {
  kGranted,          ///< the session holds the lock; caller must release
  kDeadlineExpired,  ///< not granted within the ticket's deadline
  kCancelled,        ///< withdrawn via ClientSession::cancel
  kShed,             ///< rejected by admission control (queue bound)
  kSessionDown,      ///< the client session crashed before a grant
};

[[nodiscard]] std::string_view to_string(AcquireOutcome o);

/// Delivered to the ticket's callback on completion.
struct AcquireResult {
  AcquireOutcome outcome = AcquireOutcome::kGranted;
  /// Fencing token of the grant — strictly monotone per lock, 0 for every
  /// non-granted outcome. The holder passes it back to
  /// release_if_current(): a release fenced by a stale token is refused,
  /// which is how a revoked client's late release stays harmless.
  std::uint64_t fence = 0;
  /// Session-internal retry attempts consumed before this outcome.
  std::uint32_t attempts = 0;
};

/// Per-ticket acquire options.
struct AcquireOptions {
  /// Grant deadline measured from the acquire() call. nullopt = wait
  /// forever (the pre-resilience behavior). A zero or negative deadline is
  /// already expired: the ticket fails with kDeadlineExpired without ever
  /// reaching the algorithm (a grant can never be synchronous — even an
  /// uncontended request crosses at least one zero-delay event).
  std::optional<SimDuration> deadline;
};

/// What to evict when the pending queue of one (session, lock) is full.
enum class ShedPolicy : std::uint8_t {
  /// Reject the incoming ticket (classic tail drop).
  kRejectNewest,
  /// Keep the most urgent work: evict the queued ticket with the *latest*
  /// deadline (no deadline = latest possible) if the newcomer is more
  /// urgent; otherwise reject the newcomer. The head ticket is never
  /// evicted — its algorithm request is already on the wire.
  kRejectByDeadline,
};

[[nodiscard]] std::string_view to_string(ShedPolicy p);

struct AdmissionConfig {
  /// Maximum tickets queued per (session, lock), counting the requesting
  /// head. 0 = unbounded (the pre-resilience behavior).
  std::uint32_t max_pending = 0;
  ShedPolicy policy = ShedPolicy::kRejectNewest;
};

/// Session-internal retry of shed / deadline-expired tickets. Backoff for
/// attempt k (0-based) is min(cap, base * multiplier^k), scaled by a
/// uniform jitter factor in [1 - jitter, 1 + jitter] drawn from the
/// service's dedicated resilience Rng stream. attempts == 0 disables
/// retries; fault-free runs then draw nothing from the stream.
struct RetryConfig {
  std::uint32_t attempts = 0;
  SimDuration base = SimDuration::ms(50);
  double multiplier = 2.0;
  SimDuration cap = SimDuration::sec(2);
  double jitter = 0.5;  ///< in [0, 1)
};

/// Lock leases (service/lease.hpp). While a session holds a lock it renews
/// its lease every `renew_interval` with a LEASE_RENEW datagram to the
/// lock's authority (the home cluster's coordinator node). An authority
/// that sees no renewal for `ttl` starts revocation: it sends REVOKE to
/// the holder, waits `drain` for a voluntary release, then force-releases
/// the lock on the holder's behalf — reusing the PR 2 machinery underneath
/// (a release from a crashed node loses the token; ARQ/regeneration mint a
/// replacement). Choose ttl > renew_interval + one WAN round-trip, and
/// drain > one WAN round-trip.
struct LeaseConfig {
  SimDuration renew_interval = SimDuration::ms(100);
  SimDuration ttl = SimDuration::ms(500);
  SimDuration drain = SimDuration::ms(200);
};

/// The service-level resilience bundle (LockServiceConfig::resilience).
/// Default-constructed it is entirely inert: no lease protocol is
/// reserved, no timer is scheduled, no Rng draw is made — fault-free runs
/// stay bit-identical to the pre-resilience service.
struct ResilienceConfig {
  /// Lock leases with fencing-epoch revocation. Requires the run to keep
  /// recovery enabled under faults: a force-release from a dead node leans
  /// on ARQ/token-regeneration to re-home the token.
  bool leases = false;
  LeaseConfig lease;
  AdmissionConfig admission;
  RetryConfig retry;
  /// Deadline applied to tickets acquired without explicit options
  /// (the open-loop driver uses this as every arrival's deadline).
  std::optional<SimDuration> default_deadline;

  [[nodiscard]] bool any() const {
    return leases || admission.max_pending > 0 || retry.attempts > 0 ||
           default_deadline.has_value();
  }
};

}  // namespace gmx
