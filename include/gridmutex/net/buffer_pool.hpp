// Refcounted datagram payload buffers, pooled per Network.
//
// Every protocol message carries its payload as a `Payload`: a handle onto
// a refcounted byte block. The handle is what makes the wire path
// zero-copy end to end:
//
//   - wire::Writer encodes straight into a pool-acquired block and
//     take_payload() hands it to the Network without an intermediate copy;
//   - encode-once fan-out (a Suzuki-Kasami broadcast, an ARQ retransmit
//     copy, a duplicated datagram) shares one block across N messages by
//     bumping the refcount instead of re-encoding or memcpy-ing;
//   - BatchMux delivery slices sub-message views out of the frame's block,
//     so unbatching decodes in place.
//
// Ownership rules:
//   - Payload handles are immutable views; receivers get `const Message&`
//     and can never write through one. The mutating API (assign/clear,
//     used by tests and ad-hoc builders) always detaches onto a fresh
//     block first, so writing through one handle never changes the bytes
//     another handle sees.
//   - A block returns to its pool when the last handle dies. The pool may
//     die first (payloads captured in still-scheduled simulator events
//     outlive the Network): the pool core then outlives the pool object
//     and the last returning block frees it.
//   - Pooled blocks are single-threaded property of their Network's
//     simulation thread. The refcount itself is atomic so *unpooled*
//     (heap-origin) payloads may be handed across threads — rt/ transfers
//     unique handles through mutex-protected queues — but a pool and its
//     blocks must never be touched from two threads.
//
// Steady state is allocation-free: blocks keep their byte capacity across
// reuse (they are not even cleared — Payload/Writer track live length
// separately, so recycling is pointer shuffling only). The pool is bounded
// so a burst (e.g. a fault-campaign retransmission storm) cannot pin
// memory forever, and per-Network, so parallel sweep cells never share
// state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "gridmutex/core/thread_annotations.hpp"
#include "gridmutex/sim/assert.hpp"

namespace gmx {

class BufferPool;
namespace wire {
class Writer;
}

namespace detail {

struct PoolCore;

/// One refcounted byte block. `bytes` is kept at whatever size the block
/// last grew to; the live payload length lives in the Payload/Writer
/// handle, never in bytes.size().
struct PayloadBuf {
  std::vector<std::uint8_t> bytes;
  std::atomic<std::uint32_t> refs{1};
  PoolCore* origin = nullptr;  // pool to return to; nullptr = plain heap
};

/// The pool's shared state, split from BufferPool so orphaned blocks have
/// somewhere safe to return to after the pool object is destroyed.
struct PoolCore {
  std::vector<PayloadBuf*> free;
  std::uint64_t reuses = 0;
  std::uint64_t outstanding = 0;  // blocks currently held by live handles
  std::size_t max_pooled = 0;
  bool alive = true;  // false once the owning BufferPool died
  /// The free-list's single-thread-affinity capability, spelled out: every
  /// acquire *and* every pooled-block release must happen on the pool's
  /// simulation thread. Debug builds pin the first such thread and abort on
  /// any other (release builds compile this to nothing) — the static layer
  /// PDES work will have to split pools per shard before this may relax.
  ThreadAffinityGuard affinity;
};

inline void check_core_affinity(const PoolCore* core) {
  core->affinity.check(
      "net: buffer pool free-list touched from a second thread "
      "(pooled blocks are single-thread property; see buffer_pool.hpp)");
}

inline void return_to_core(PayloadBuf* b) {
  PoolCore* core = b->origin;
  if (core == nullptr) {
    delete b;
    return;
  }
  check_core_affinity(core);
  GMX_ASSERT(core->outstanding > 0);
  --core->outstanding;
  if (core->alive && core->free.size() < core->max_pooled) {
    core->free.push_back(b);
  } else {
    delete b;
    if (!core->alive && core->outstanding == 0) delete core;
  }
}

inline void buf_release(PayloadBuf* b) {
  if (b == nullptr) return;
  // acq_rel pairs release of the dying handle's writes with acquire in
  // whichever thread performs the final free (rt/ hands unique blocks
  // across threads; the block must be fully published before deletion).
  if (b->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  return_to_core(b);
}

[[nodiscard]] inline PayloadBuf* buf_retain(PayloadBuf* b) {
  if (b != nullptr) b->refs.fetch_add(1, std::memory_order_relaxed);
  return b;
}

}  // namespace detail

/// Immutable, refcounted view of an encoded payload. Copies share the
/// block (O(1)); mutation detaches onto a private block first.
class Payload {
 public:
  Payload() = default;

  /// Copies `bytes` into a fresh heap block (rt/, tests, ad-hoc decode).
  explicit Payload(std::span<const std::uint8_t> bytes) {
    if (bytes.empty()) return;
    auto* b = new detail::PayloadBuf;
    b->bytes.assign(bytes.begin(), bytes.end());
    buf_ = b;
    len_ = std::uint32_t(bytes.size());
  }

  Payload(const Payload& o)
      : buf_(detail::buf_retain(o.buf_)), off_(o.off_), len_(o.len_) {}
  Payload(Payload&& o) noexcept : buf_(o.buf_), off_(o.off_), len_(o.len_) {
    o.buf_ = nullptr;
    o.off_ = o.len_ = 0;
  }
  Payload& operator=(const Payload& o) {
    if (this != &o) {
      detail::buf_release(buf_);
      buf_ = detail::buf_retain(o.buf_);
      off_ = o.off_;
      len_ = o.len_;
    }
    return *this;
  }
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      detail::buf_release(buf_);
      buf_ = o.buf_;
      off_ = o.off_;
      len_ = o.len_;
      o.buf_ = nullptr;
      o.off_ = o.len_ = 0;
    }
    return *this;
  }
  ~Payload() { detail::buf_release(buf_); }

  /// Adopts a byte vector as a fresh heap block (vector-payload
  /// compatibility for tests and tools).
  Payload& operator=(std::vector<std::uint8_t> v) {
    detail::buf_release(buf_);
    buf_ = nullptr;
    off_ = len_ = 0;
    if (!v.empty()) {
      auto* b = new detail::PayloadBuf;
      b->bytes = std::move(v);
      buf_ = b;
      len_ = std::uint32_t(b->bytes.size());
    }
    return *this;
  }
  Payload& operator=(std::initializer_list<std::uint8_t> il) {
    return *this = std::vector<std::uint8_t>(il);
  }

  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] const std::uint8_t* data() const {
    return buf_ != nullptr ? buf_->bytes.data() + off_ : nullptr;
  }
  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {data(), len_};
  }
  // NOLINTNEXTLINE(google-explicit-constructor): a Payload *is* its bytes;
  // implicit conversion keeps wire::Reader(msg.payload) and span-taking
  // call sites working unchanged.
  operator std::span<const std::uint8_t>() const { return span(); }
  [[nodiscard]] const std::uint8_t* begin() const { return data(); }
  [[nodiscard]] const std::uint8_t* end() const { return data() + len_; }

  [[nodiscard]] bool operator==(const Payload& o) const {
    return len_ == o.len_ && std::equal(begin(), end(), o.begin());
  }
  friend bool operator==(const Payload& p,
                         const std::vector<std::uint8_t>& v) {
    return p.len_ == v.size() && std::equal(p.begin(), p.end(), v.begin());
  }

  /// True while other handles (or a slice) reference the same block.
  [[nodiscard]] bool shared() const {
    return buf_ != nullptr &&
           buf_->refs.load(std::memory_order_relaxed) > 1;
  }

  /// Sub-view sharing this block — the BatchMux in-place decode path. The
  /// slice keeps the whole block alive; an empty slice holds no block.
  [[nodiscard]] Payload slice(std::size_t off, std::size_t n) const {
    GMX_ASSERT(off + n <= len_);
    if (n == 0) return {};
    Payload p;
    p.buf_ = detail::buf_retain(buf_);
    p.off_ = off_ + std::uint32_t(off);
    p.len_ = std::uint32_t(n);
    return p;
  }

  /// Mutation is detach-first: the handle leaves any shared block and
  /// rewrites a private heap block, so no other handle observes the write.
  void assign(std::span<const std::uint8_t> bytes) {
    *this = Payload(bytes);
  }
  void assign(std::size_t n, std::uint8_t v) {
    *this = std::vector<std::uint8_t>(n, v);
  }
  template <typename It>
  void assign(It first, It last) {
    *this = std::vector<std::uint8_t>(first, last);
  }
  void clear() {
    detail::buf_release(buf_);
    buf_ = nullptr;
    off_ = len_ = 0;
  }

 private:
  friend class BufferPool;
  friend class wire::Writer;

  /// Adopts `buf` (no retain): the caller's reference becomes this handle.
  Payload(detail::PayloadBuf* buf, std::size_t off, std::size_t len)
      : buf_(buf), off_(std::uint32_t(off)), len_(std::uint32_t(len)) {}

  detail::PayloadBuf* buf_ = nullptr;
  std::uint32_t off_ = 0;
  std::uint32_t len_ = 0;
};

class BufferPool {
 public:
  /// Upper bound on retained blocks; excess releases are simply freed.
  static constexpr std::size_t kMaxPooled = 1024;

  BufferPool() : core_(new detail::PoolCore) {
    core_->max_pooled = kMaxPooled;
  }
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool() {
    for (detail::PayloadBuf* b : core_->free) delete b;
    core_->free.clear();
    core_->alive = false;
    // Orphaned blocks (payloads captured in still-scheduled simulator
    // events) keep the core alive; the last of them frees it.
    if (core_->outstanding == 0) delete core_;
  }

  /// Hands out a block for wire::Writer to encode into. The block arrives
  /// with its previous capacity intact; the Writer overwrites from byte 0.
  [[nodiscard]] detail::PayloadBuf* acquire_buf() {
    detail::check_core_affinity(core_);
    detail::PayloadBuf* b;
    if (!core_->free.empty()) {
      b = core_->free.back();
      core_->free.pop_back();
      ++core_->reuses;
    } else {
      b = new detail::PayloadBuf;
      b->origin = core_;
    }
    b->refs.store(1, std::memory_order_relaxed);
    ++core_->outstanding;
    return b;
  }

  /// A pooled payload holding a copy of `bytes` (the span-send path).
  [[nodiscard]] Payload acquire(std::span<const std::uint8_t> bytes) {
    if (bytes.empty()) return {};
    detail::PayloadBuf* b = acquire_buf();
    // assign() into the retained vector reuses its capacity; the block's
    // byte storage only ever grows.
    b->bytes.assign(bytes.begin(), bytes.end());
    return Payload(b, 0, bytes.size());
  }

  [[nodiscard]] std::size_t pooled() const { return core_->free.size(); }
  /// Acquires served from the pool rather than a fresh allocation.
  [[nodiscard]] std::uint64_t reuses() const { return core_->reuses; }

 private:
  detail::PoolCore* core_;
};

}  // namespace gmx
