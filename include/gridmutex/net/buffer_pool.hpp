// Datagram payload buffer pool.
//
// Every protocol message carries its payload in a std::vector<uint8_t>;
// without pooling each send allocates one and each delivery frees it —
// the second-largest allocation source on the hot path after the (now
// slab-stored) event closures. The Network owns one BufferPool and runs
// the cycle: senders acquire(), the delivery path recycles the payload
// once the handler has returned (handlers receive `const Message&` and
// must not retain references — they already could not, as the message
// dies with its delivery event).
//
// Steady state is allocation-free: buffers keep their capacity across
// reuse. The pool is bounded so a burst (e.g. a fault-campaign
// retransmission storm) cannot pin memory forever, and per-Network, so
// parallel sweep cells never share state.
#pragma once

#include <cstdint>
#include <vector>

namespace gmx {

class BufferPool {
 public:
  /// Upper bound on retained buffers; excess recycles are simply freed.
  static constexpr std::size_t kMaxPooled = 1024;

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns an empty buffer, reusing a pooled allocation when available.
  [[nodiscard]] std::vector<std::uint8_t> acquire() {
    if (free_.empty()) return {};
    std::vector<std::uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    ++reuses_;
    return buf;
  }

  /// Returns a buffer to the pool. Capacity-less vectors (moved-from or
  /// never filled) carry nothing worth keeping.
  void recycle(std::vector<std::uint8_t>&& buf) {
    if (buf.capacity() == 0 || free_.size() >= kMaxPooled) return;
    free_.push_back(std::move(buf));
  }

  [[nodiscard]] std::size_t pooled() const { return free_.size(); }
  /// Acquires served from the pool rather than a fresh allocation.
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

 private:
  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t reuses_ = 0;
};

}  // namespace gmx
