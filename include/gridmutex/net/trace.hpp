// Human-readable message tracing.
//
// Install on a Network to log every delivery: time, endpoints (with cluster
// names), protocol, type, payload size, transit latency. Used by examples
// and when debugging protocol interleavings; not active in benchmarks.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "gridmutex/net/network.hpp"

namespace gmx {

class TraceSink {
 public:
  /// Maps (protocol, type) to a label, e.g. "naimi.REQUEST". Optional.
  using Labeler =
      std::function<std::string(ProtocolId, std::uint16_t)>;

  explicit TraceSink(std::ostream& out, Labeler labeler = {});

  /// Installs this sink on the network. The sink must outlive the network's
  /// use of it.
  void install(Network& net);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  void write(const Network& net, const Message& msg, SimTime sent,
             SimTime recv);

  std::ostream& out_;
  Labeler labeler_;
  bool enabled_ = true;
  std::uint64_t lines_ = 0;
};

}  // namespace gmx
