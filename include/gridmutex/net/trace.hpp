// Human-readable message tracing.
//
// Install on a Network to log every delivery: time, endpoints (with cluster
// names), protocol, type, payload size, transit latency. Used by examples
// and when debugging protocol interleavings; not active in benchmarks.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "gridmutex/net/network.hpp"

namespace gmx {

class TraceSink {
 public:
  /// Maps (protocol, type) to a label, e.g. "lock[3].intra[2](naimi).TOKEN".
  /// A labeler that does not recognize a protocol returns "" to defer to
  /// the next labeler in the chain; when every labeler defers the sink
  /// falls back to the anonymous "p<protocol>/t<type>" form, so multiplexed
  /// runs always show at least the instance's protocol id.
  using Labeler =
      std::function<std::string(ProtocolId, std::uint16_t)>;

  explicit TraceSink(std::ostream& out, Labeler labeler = {});

  /// Appends another labeler to the chain (multiplexed runs install one per
  /// subsystem — e.g. one per composition plus the service's own).
  void add_labeler(Labeler labeler);

  /// Installs this sink on the network. The sink must outlive the network's
  /// use of it.
  void install(Network& net);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }
  /// Distinct (protocol, type) labels interned so far. Labelers run once
  /// per pair; steady-state tracing allocates no label strings.
  [[nodiscard]] std::size_t interned_labels() const {
    return label_cache_.size();
  }

 private:
  void write(const Network& net, const Message& msg, SimTime sent,
             SimTime recv);
  const std::string& label_for(ProtocolId protocol, std::uint16_t type);

  std::ostream& out_;
  std::vector<Labeler> labelers_;
  std::unordered_map<std::uint64_t, std::string> label_cache_;
  bool enabled_ = true;
  std::uint64_t lines_ = 0;
};

}  // namespace gmx
