// Grid topology: nodes grouped into clusters.
//
// Mirrors the paper's platform model (§1, §4.1): a federation of clusters,
// LAN inside a cluster, WAN between clusters. A `Topology` is a static
// partition of node ids [0, N) into clusters; latency semantics live in
// LatencyModel, message delivery in Network.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gmx {

using NodeId = std::uint32_t;
using ClusterId = std::uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

class Topology {
 public:
  /// `cluster_count` clusters of `nodes_per_cluster` nodes each.
  static Topology uniform(std::uint32_t cluster_count,
                          std::uint32_t nodes_per_cluster);

  /// Heterogeneous cluster sizes; names optional (empty → "c<i>").
  static Topology from_sizes(std::span<const std::uint32_t> sizes,
                             std::vector<std::string> names = {});

  /// The paper's testbed shape: 9 clusters × 20 nodes, Grid5000 site names
  /// in the order of Fig. 3's latency matrix.
  static Topology grid5000(std::uint32_t nodes_per_cluster = 20);

  [[nodiscard]] std::uint32_t node_count() const { return node_count_; }
  [[nodiscard]] std::uint32_t cluster_count() const {
    return std::uint32_t(first_node_.size());
  }

  [[nodiscard]] ClusterId cluster_of(NodeId node) const;
  [[nodiscard]] std::uint32_t cluster_size(ClusterId c) const;
  /// Nodes of a cluster are a contiguous id range [first, first+size).
  [[nodiscard]] NodeId first_node_of(ClusterId c) const;
  [[nodiscard]] std::vector<NodeId> nodes_of(ClusterId c) const;
  [[nodiscard]] const std::string& cluster_name(ClusterId c) const;

  [[nodiscard]] bool same_cluster(NodeId a, NodeId b) const {
    return cluster_of(a) == cluster_of(b);
  }

 private:
  Topology() = default;

  std::vector<NodeId> first_node_;        // per cluster
  std::vector<ClusterId> cluster_of_;     // per node
  std::vector<std::string> names_;        // per cluster
  std::uint32_t node_count_ = 0;
};

/// The nine Grid5000 site names, in the row/column order of paper Fig. 3.
std::span<const std::string_view> grid5000_site_names();

}  // namespace gmx
