// Message transport over the simulated grid.
//
// Models the paper's implementation substrate (C processes exchanging UDP
// datagrams) on top of the DES kernel: point-to-point datagrams, per-pair
// latency drawn from a LatencyModel, optional loss/duplication/reordering
// injection for robustness tests. Delivery is FIFO per (src,dst) pair by
// default — on a single WAN path UDP datagrams rarely reorder, and the
// classical algorithm descriptions assume channel FIFO-ness; tests flip it
// off to probe tolerance.
//
// Several protocol instances share the network (each cluster's intra
// algorithm, the inter algorithm, application chatter). A message carries a
// `protocol` id; the network dispatches to the handler registered for
// (dst node, protocol).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gridmutex/net/latency.hpp"
#include "gridmutex/net/topology.hpp"
#include "gridmutex/sim/random.hpp"
#include "gridmutex/sim/simulator.hpp"

namespace gmx {

/// Identifies a protocol instance (one algorithm instance = one id).
using ProtocolId = std::uint32_t;

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  ProtocolId protocol = 0;
  std::uint16_t type = 0;  // per-protocol message kind
  std::vector<std::uint8_t> payload;

  /// Emulated datagram application header: protocol id (4) + type (2) +
  /// length (2). IP/UDP framing is excluded — the paper counts messages and
  /// we additionally count protocol bytes, not kernel overhead.
  static constexpr std::size_t kHeaderBytes = 8;
  [[nodiscard]] std::size_t wire_size() const {
    return payload.size() + kHeaderBytes;
  }
};

/// Aggregate traffic counters. `inter_cluster`/`intra_cluster` partition
/// *sent* messages by whether src and dst live in different clusters —
/// the paper's Fig. 4(b) metric.
struct MessageCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t intra_cluster = 0;
  std::uint64_t inter_cluster = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_inter = 0;

  MessageCounters& operator-=(const MessageCounters& o);
  friend MessageCounters operator-(MessageCounters a,
                                   const MessageCounters& b) {
    a -= b;
    return a;
  }
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  /// (message, send time, delivery time) — invoked on every delivery when a
  /// tracer is installed.
  using Tracer = std::function<void(const Message&, SimTime, SimTime)>;

  Network(Simulator& sim, Topology topo,
          std::shared_ptr<const LatencyModel> latency, Rng rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] const LatencyModel& latency() const { return *latency_; }

  /// Registers the receive handler for (node, protocol). At most one
  /// handler per pair; re-registration replaces (supports adaptive
  /// algorithm swapping).
  void attach(NodeId node, ProtocolId protocol, Handler handler);
  void detach(NodeId node, ProtocolId protocol);

  /// Sends a datagram. Self-sends are rejected (protocol bugs); loopback
  /// optimization belongs in the caller, as it did in the paper's C code.
  void send(Message msg);

  /// Fault/ordering knobs (tests and robustness studies).
  void set_fifo_per_pair(bool on) { fifo_ = on; }
  void set_drop_probability(double p);
  void set_duplicate_probability(double p);
  /// Extra uniform [0,d) delay added per message when non-FIFO reordering
  /// experiments need wider delivery races.
  void set_reorder_spread(SimDuration d) { reorder_spread_ = d; }

  void set_tracer(Tracer t) { tracer_ = std::move(t); }

  /// Checker tap (analysis/protocol_checker.hpp): observes every delivery
  /// just like a tracer, but in its own slot so arming the checker never
  /// displaces a user-installed tracer.
  void set_delivery_tap(Tracer t) { delivery_tap_ = std::move(t); }

  [[nodiscard]] const MessageCounters& counters() const { return counters_; }
  /// Per-protocol sent-message counts (diagnostics, §4.6 analyses).
  [[nodiscard]] std::uint64_t sent_by_protocol(ProtocolId p) const;

  /// Messages currently in flight (scheduled, not yet delivered).
  [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }
  /// In-flight messages of one protocol (quiescence checks during adaptive
  /// reconfiguration).
  [[nodiscard]] std::uint64_t in_flight_for(ProtocolId p) const;

 private:
  void deliver(Message msg, SimTime sent_at);
  SimTime departure_to_delivery(const Message& msg);

  Simulator& sim_;
  Topology topo_;
  std::shared_ptr<const LatencyModel> latency_;
  Rng rng_;

  // handler lookup: node → (protocol → handler)
  std::vector<std::unordered_map<ProtocolId, Handler>> handlers_;

  // FIFO clamp: last scheduled delivery per (src,dst)
  std::unordered_map<std::uint64_t, SimTime> last_delivery_;

  MessageCounters counters_;
  std::unordered_map<ProtocolId, std::uint64_t> sent_by_protocol_;
  std::unordered_map<ProtocolId, std::uint64_t> in_flight_by_protocol_;
  std::uint64_t in_flight_ = 0;

  bool fifo_ = true;
  double drop_p_ = 0.0;
  double dup_p_ = 0.0;
  SimDuration reorder_spread_ = SimDuration::ns(0);
  Tracer tracer_;
  Tracer delivery_tap_;
};

}  // namespace gmx
