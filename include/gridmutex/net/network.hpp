// Message transport over the simulated grid.
//
// Models the paper's implementation substrate (C processes exchanging UDP
// datagrams) on top of the DES kernel: point-to-point datagrams, per-pair
// latency drawn from a LatencyModel, optional loss/duplication/reordering
// injection for robustness tests. Delivery is FIFO per (src,dst) pair by
// default — on a single WAN path UDP datagrams rarely reorder, and the
// classical algorithm descriptions assume channel FIFO-ness; tests flip it
// off to probe tolerance.
//
// Several protocol instances share the network (each cluster's intra
// algorithm, the inter algorithm, application chatter). A message carries a
// `protocol` id; the network dispatches to the handler registered for
// (dst node, protocol).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gridmutex/core/thread_annotations.hpp"
#include "gridmutex/net/buffer_pool.hpp"
#include "gridmutex/net/latency.hpp"
#include "gridmutex/net/topology.hpp"
#include "gridmutex/sim/random.hpp"
#include "gridmutex/sim/simulator.hpp"

namespace gmx {

/// Identifies a protocol instance (one algorithm instance = one id).
using ProtocolId = std::uint32_t;

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  ProtocolId protocol = 0;
  std::uint16_t type = 0;  // per-protocol message kind
  /// ARQ sequence number, assigned by the network when the protocol is
  /// registered as reliable (set_reliable); 0 = unsequenced datagram. The
  /// sequence piggybacks on the emulated header (no extra wire bytes), so
  /// byte accounting matches the unreliable baseline.
  std::uint64_t seq = 0;
  /// Refcounted handle (net/buffer_pool.hpp): copying a Message — ARQ
  /// retransmit state, fault duplication, encode-once fan-out — shares the
  /// encoded bytes instead of copying them. Handlers receive
  /// `const Message&` and can never write through the handle.
  Payload payload;

  /// Reserved `type` for ARQ acknowledgements; never dispatched to protocol
  /// handlers. Protocol MsgType enums must stay below this value.
  static constexpr std::uint16_t kAckType = 0xFFFF;

  /// Emulated datagram application header: protocol id (4) + type (2) +
  /// length (2). IP/UDP framing is excluded — the paper counts messages and
  /// we additionally count protocol bytes, not kernel overhead.
  static constexpr std::size_t kHeaderBytes = 8;
  [[nodiscard]] std::size_t wire_size() const {
    return payload.size() + kHeaderBytes;
  }
};

/// Aggregate traffic counters. `inter_cluster`/`intra_cluster` partition
/// *sent* messages by whether src and dst live in different clusters —
/// the paper's Fig. 4(b) metric.
struct MessageCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  /// ARQ resends of reliable-protocol frames. Each resend also counts in
  /// `sent` (it is a real datagram); this isolates the recovery overhead.
  std::uint64_t retransmitted = 0;
  std::uint64_t intra_cluster = 0;
  std::uint64_t inter_cluster = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_inter = 0;

  MessageCounters& operator-=(const MessageCounters& o);
  friend MessageCounters operator-(MessageCounters a,
                                   const MessageCounters& b) {
    a -= b;
    return a;
  }
  [[nodiscard]] bool operator==(const MessageCounters&) const = default;
};

/// Per-protocol ARQ parameters (set_reliable). Defaults suit the Grid5000
/// latency scale: rto clears one WAN round-trip, exponential backoff bounds
/// the storm, max_attempts bounds the retry horizon so a permanently
/// partitioned peer cannot keep the event queue alive forever.
struct RetransmitConfig {
  SimDuration rto = SimDuration::ms(200);
  double backoff = 2.0;
  SimDuration rto_max = SimDuration::sec(2);
  int max_attempts = 8;
};

/// Single-threaded by design: a Network belongs to its Simulator's driving
/// thread (SweepRunner gives each sweep cell its own simulator + network on
/// one worker). There is deliberately no locking — the concurrency contract
/// is *affinity*, enforced in debug builds by a ThreadAffinityGuard that
/// pins the instance to the first thread that attaches, reserves, sends or
/// dispatches, and aborts on any other.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  /// (message, send time, delivery time) — invoked on every delivery when a
  /// tracer is installed.
  using Tracer = std::function<void(const Message&, SimTime, SimTime)>;

  Network(Simulator& sim, Topology topo,
          std::shared_ptr<const LatencyModel> latency, Rng rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] const LatencyModel& latency() const { return *latency_; }

  /// Registers the receive handler for (node, protocol). At most one
  /// handler per pair; re-registration replaces (supports adaptive
  /// algorithm swapping).
  void attach(NodeId node, ProtocolId protocol, Handler handler);
  void detach(NodeId node, ProtocolId protocol);

  /// Claims `count` consecutive protocol ids nobody else holds and returns
  /// the first. The block is fresh with respect to every id previously
  /// attached or reserved on this network, so independently constructed
  /// subsystems (each lock of a LockService, the batch channel, ad-hoc
  /// instances) can never collide. Ids start at 1 — 0 is left unused as the
  /// traditional "no protocol" sentinel.
  [[nodiscard]] ProtocolId reserve_protocols(std::uint32_t count);

  /// Sends a datagram. Self-sends are rejected (protocol bugs); loopback
  /// optimization belongs in the caller, as it did in the paper's C code.
  void send(Message msg);

  /// Send interceptor (service/batch.hpp): consulted before ARQ and the
  /// wire. Return true to absorb the message — the network then does
  /// nothing further with it and the interceptor owns its delivery (e.g.
  /// repackaged inside a batch frame). One slot.
  using SendRouter = std::function<bool(Message&)>;
  void set_send_router(SendRouter r) { send_router_ = std::move(r); }

  /// Delivers `msg` to its destination handler at the current instant
  /// without traversing the wire — the unbatching path: the enclosing
  /// frame already paid latency, fault checks and the send/deliver
  /// counters, so the sub-message must not be double-counted. The delivery
  /// tap and the tracer still observe it (sent_at = now; the transit was
  /// the frame's). Never used for reliable protocols (a batched frame
  /// would bypass ARQ sequencing).
  void dispatch_local(const Message& msg);

  /// Fault/ordering knobs (tests and robustness studies). All fault
  /// randomness (drop, duplicate, link loss) draws from a dedicated Rng
  /// stream forked off the network's, so enabling faults never perturbs
  /// latency sampling — fault campaigns stay comparable to clean runs.
  void set_fifo_per_pair(bool on) { fifo_ = on; }
  void set_drop_probability(double p);
  void set_duplicate_probability(double p);
  /// Extra uniform [0,d) delay added per message when non-FIFO reordering
  /// experiments need wider delivery races.
  void set_reorder_spread(SimDuration d) { reorder_spread_ = d; }

  /// Per-cluster-pair loss (fault campaigns): messages between clusters a
  /// and b (either direction) are dropped with probability p; p = 0 clears
  /// the entry. Inter-cluster links fail independently of the global
  /// drop probability above.
  void set_link_drop_probability(ClusterId a, ClusterId b, double p);
  /// Full partition between two clusters: every message between them is
  /// dropped (link drop probability 1) until heal().
  void partition(ClusterId a, ClusterId b);
  void heal(ClusterId a, ClusterId b);

  /// Crash/restart omission windows: while a node is down, datagrams it
  /// sends are lost at the source and datagrams addressed to it are lost at
  /// delivery time (all counted in `dropped`). Handlers stay attached — the
  /// node's protocol state survives, modeling a process whose host rejoins
  /// with its memory intact (warm restart).
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const {
    return node_up_[node] != 0;
  }

  /// Targeted drop filter (fault/injector.hpp): consulted on every send;
  /// return true to drop the message (counted in `dropped`). One slot.
  using DropFilter = std::function<bool(const Message&)>;
  void set_drop_filter(DropFilter f) { drop_filter_ = std::move(f); }

  /// Enables ARQ for one protocol: outgoing frames get a per-(src,dst)
  /// sequence number, receivers acknowledge (Message::kAckType) and
  /// deduplicate, senders retransmit with exponential backoff until acked
  /// or max_attempts is exhausted. Channels are stop-and-wait — one frame
  /// in flight per (src,dst,protocol); later frames queue at the sender
  /// until the head is acked or given up — so reliable delivery preserves
  /// per-pair FIFO order (a retransmitted frame can never be overtaken by
  /// a younger one; the FIFO-dependent algorithms survive lossy links).
  /// Request/token loss then becomes transparent below the retry horizon;
  /// losses beyond it are a pure omission, surfaced via unacked_for()
  /// reaching zero with the frame undelivered.
  void set_reliable(ProtocolId protocol, RetransmitConfig cfg = {});
  [[nodiscard]] bool reliable(ProtocolId protocol) const {
    return reliable_.find(protocol) != reliable_.end();
  }
  /// Reliable frames of `protocol` not yet acknowledged — in flight,
  /// awaiting retransmission, or queued behind a channel head. Recovery
  /// detectors treat unacked > 0 like in-flight: the token may still
  /// reappear.
  [[nodiscard]] std::uint64_t unacked_for(ProtocolId protocol) const;

  void set_tracer(Tracer t) { tracer_ = std::move(t); }

  /// Checker tap (analysis/protocol_checker.hpp): observes every delivery
  /// just like a tracer, but in its own slot so arming the checker never
  /// displaces a user-installed tracer.
  void set_delivery_tap(Tracer t) { delivery_tap_ = std::move(t); }

  /// Recovery tap (fault/recovery.hpp): observes every datagram handed to
  /// the wire — including retransmissions and acks, before any fault drop.
  /// The token-recovery manager keys its liveness probes off this activity
  /// signal so a quiescent simulation still drains. One slot.
  using SendTap = std::function<void(const Message&)>;
  void set_send_tap(SendTap t) { send_tap_ = std::move(t); }

  [[nodiscard]] const MessageCounters& counters() const { return counters_; }
  /// Per-protocol sent-message counts (diagnostics, §4.6 analyses).
  [[nodiscard]] std::uint64_t sent_by_protocol(ProtocolId p) const;
  /// Subset of sent_by_protocol() whose src and dst are in different
  /// clusters — the per-lock Fig. 4(b) attribution of a LockService run.
  [[nodiscard]] std::uint64_t inter_sent_by_protocol(ProtocolId p) const;

  /// Payload buffer pool: senders that encode into a pooled block
  /// (MutexEndpoint's wire::Writer does) make the send→deliver cycle
  /// allocation-free; the last Payload handle returns the block
  /// automatically when the delivery event dies.
  [[nodiscard]] BufferPool& payload_pool() { return payload_pool_; }

  /// Messages currently in flight (scheduled, not yet delivered).
  [[nodiscard]] std::uint64_t in_flight() const { return in_flight_; }
  /// In-flight messages of one protocol (quiescence checks during adaptive
  /// reconfiguration, token-loss sweeps). Includes the supplement below.
  [[nodiscard]] std::uint64_t in_flight_for(ProtocolId p) const;

  /// Extra per-protocol in-flight counts contributed by a send router
  /// (service/batch.hpp): a token absorbed into a batch frame is on the
  /// wire under the *frame's* protocol id, but token-loss detectors ask
  /// about the token's own id — the supplement keeps their answer honest.
  using InFlightSupplement = std::function<std::uint64_t(ProtocolId)>;
  void set_in_flight_supplement(InFlightSupplement f) {
    in_flight_supplement_ = std::move(f);
  }

 private:
  /// The raw datagram path: counters, fault drops, latency, scheduling.
  /// send() adds ARQ registration on top and retransmissions re-enter here.
  void transmit(Message msg);
  void deliver(Message msg, SimTime sent_at);
  SimTime departure_to_delivery(const Message& msg);

  // ARQ plumbing (active only for protocols passed to set_reliable()).
  struct PendingSend {
    Message msg;
    int attempts = 1;
    SimDuration rto;
    EventId timer = kInvalidEventId;
  };
  struct Channel {
    std::uint64_t next_seq = 0;  // sender side
    // Stop-and-wait head: at most one entry (keyed by seq so a stale ack
    // or timer resolves against the exact frame it belongs to).
    std::unordered_map<std::uint64_t, PendingSend> pending;  // sender side
    std::deque<Message> queue;  // sender side: frames awaiting their turn
    std::unordered_set<std::uint64_t> seen;  // receiver side
  };
  using ChannelKey = std::tuple<NodeId, NodeId, ProtocolId>;
  Channel& channel(NodeId src, NodeId dst, ProtocolId protocol);
  /// Sequences `msg` on its channel. Returns true if the frame is the new
  /// channel head (caller transmits it now); false if it was queued behind
  /// an unacked head.
  [[nodiscard]] bool register_reliable_send(Message& msg,
                                            const RetransmitConfig& cfg);
  void make_head(Channel& ch, Message msg, const RetransmitConfig& cfg);
  void launch_next(NodeId src, NodeId dst, ProtocolId protocol);
  void retransmit(NodeId src, NodeId dst, ProtocolId protocol,
                  std::uint64_t seq);
  void resolve_ack(const Message& ack);
  [[nodiscard]] std::uint64_t link_key(ClusterId a, ClusterId b) const;

  Simulator& sim_;
  Topology topo_;
  /// Pins the handler tables and mutable transport state to the simulation
  /// thread (checked in attach/reserve_protocols/send/dispatch_local).
  ThreadAffinityGuard affinity_;
  std::shared_ptr<const LatencyModel> latency_;
  Rng rng_;
  Rng fault_rng_;  // forked off rng_; fault draws never shift latency draws

  // handler lookup: node → protocol-indexed flat table. Protocol ids are
  // small consecutive integers (reserve_protocols), so dispatch is two
  // array indexations instead of a hash probe per delivery.
  std::vector<std::vector<Handler>> handlers_;

  // FIFO clamp: last scheduled delivery per (src,dst). Grids up to
  // kFlatFifoNodes use a dense N×N nanosecond table (one indexed load per
  // send, 0 = no previous delivery); larger ones fall back to the map.
  static constexpr std::uint32_t kFlatFifoNodes = 512;
  std::vector<std::int64_t> fifo_flat_;
  std::unordered_map<std::uint64_t, SimTime> last_delivery_;

  BufferPool payload_pool_;

  MessageCounters counters_;
  std::unordered_map<ProtocolId, std::uint64_t> sent_by_protocol_;
  std::unordered_map<ProtocolId, std::uint64_t> inter_by_protocol_;
  std::unordered_map<ProtocolId, std::uint64_t> in_flight_by_protocol_;
  std::uint64_t in_flight_ = 0;
  ProtocolId next_protocol_ = 1;  // reserve_protocols() watermark

  bool fifo_ = true;
  double drop_p_ = 0.0;
  double dup_p_ = 0.0;
  SimDuration reorder_spread_ = SimDuration::ns(0);
  std::unordered_map<std::uint64_t, double> link_drop_;  // cluster pair → p
  std::vector<std::uint8_t> node_up_;
  DropFilter drop_filter_;
  std::unordered_map<ProtocolId, RetransmitConfig> reliable_;
  std::map<ChannelKey, Channel> channels_;
  std::unordered_map<ProtocolId, std::uint64_t> unacked_by_protocol_;
  Tracer tracer_;
  Tracer delivery_tap_;
  SendTap send_tap_;
  SendRouter send_router_;
  InFlightSupplement in_flight_supplement_;
};

}  // namespace gmx
