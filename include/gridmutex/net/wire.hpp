// Byte-level message codec.
//
// Every protocol message in gridmutex is serialized to bytes before it
// enters the network, exactly as the paper's C/UDP implementation put
// structs on the wire. This keeps per-message sizes honest — e.g. the
// Suzuki-Kasami token carries a queue plus an N-entry array, and §4.7 of the
// paper argues from that O(N) payload. The network layer accounts bytes from
// these encodings.
//
// Encoding: little-endian fixed-width integers plus LEB128-style varints for
// counts and ranks. Decoding is bounds-checked; malformed input throws
// WireError (protocol bugs must fail loudly in simulation).
//
// The Writer builds directly into a refcounted payload block — optionally a
// BufferPool-acquired one — and take_payload() hands the finished bytes to
// the Network with no intermediate copy. Append operations run unchecked
// behind a single capacity reservation (ensure() once, raw stores after),
// which is where the codec's throughput comes from; the encoding itself is
// byte-identical to the checked per-byte reference path (the
// GRIDMUTEX_WIRE_AUDIT build shadows a sampled fraction of Writers through
// that reference path and asserts equality at finalize).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "gridmutex/net/buffer_pool.hpp"
#include "gridmutex/sim/assert.hpp"

namespace gmx::wire {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte sink over a payload block.
class Writer {
 public:
  Writer() = default;  // heap block, allocated on first append
  explicit Writer(std::size_t reserve) { init_block(nullptr, reserve); }
  /// Pool-aware: encodes into a block acquired from `pool`; take_payload()
  /// then hands that block to the Network zero-copy.
  explicit Writer(BufferPool& pool, std::size_t reserve = 0) {
    init_block(pool.acquire_buf(), reserve);
  }

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;
  Writer(Writer&& o) noexcept
      : buf_(o.buf_), data_(o.data_), len_(o.len_), cap_(o.cap_) {
    o.buf_ = nullptr;
    o.data_ = nullptr;
    o.len_ = o.cap_ = 0;
#ifdef GRIDMUTEX_WIRE_AUDIT
    audit_ = std::move(o.audit_);
#endif
  }
  Writer& operator=(Writer&& o) noexcept {
    if (this != &o) {
      detail::buf_release(buf_);
      buf_ = o.buf_;
      data_ = o.data_;
      len_ = o.len_;
      cap_ = o.cap_;
      o.buf_ = nullptr;
      o.data_ = nullptr;
      o.len_ = o.cap_ = 0;
#ifdef GRIDMUTEX_WIRE_AUDIT
      audit_ = std::move(o.audit_);
#endif
    }
    return *this;
  }
  ~Writer() {
    audit_verify();
    detail::buf_release(buf_);
  }

  void u8(std::uint8_t v) {
    ensure(1);
    data_[len_++] = v;
    audit_u8(v);
  }
  void u16(std::uint16_t v) {
    ensure(2);
    data_[len_] = std::uint8_t(v);
    data_[len_ + 1] = std::uint8_t(v >> 8);
    len_ += 2;
    audit_fixed(v, 2);
  }
  void u32(std::uint32_t v) {
    ensure(4);
    for (int i = 0; i < 4; ++i)
      data_[len_ + std::size_t(i)] = std::uint8_t(v >> (8 * i));
    len_ += 4;
    audit_fixed(v, 4);
  }
  void u64(std::uint64_t v) {
    ensure(8);
    for (int i = 0; i < 8; ++i)
      data_[len_ + std::size_t(i)] = std::uint8_t(v >> (8 * i));
    len_ += 8;
    audit_fixed(v, 8);
  }
  void i64(std::int64_t v) { u64(std::uint64_t(v)); }
  void f64(double v);

  /// Unsigned LEB128. 1 byte for values < 128 — ranks and small counts,
  /// which dominate our messages. A varint never exceeds 10 bytes, so one
  /// ensure() covers the whole unchecked encode loop.
  void varint(std::uint64_t v) {
    ensure(kMaxVarint);
    audit_varint(v);
    len_ = std::size_t(raw_varint(data_ + len_, v) - data_);
  }

  /// varint length prefix followed by raw bytes.
  void bytes(std::span<const std::uint8_t> data);
  void str(std::string_view s);

  /// varint count followed by each element as a varint. One reservation
  /// covers the worst case of the whole array.
  void varint_array(std::span<const std::uint64_t> values);
  void varint_array(std::span<const std::uint32_t> values);

  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] std::span<const std::uint8_t> view() const {
    return {data_, len_};
  }
  /// Finishes the encode and transfers the block into a Payload handle —
  /// no copy; the Writer is empty afterwards.
  [[nodiscard]] Payload take_payload();
  /// Legacy finalize into a plain byte vector (tests/tools).
  [[nodiscard]] std::vector<std::uint8_t> take();

 private:
  static constexpr std::size_t kMaxVarint = 10;

  /// Unchecked LEB128 append; the caller has already ensure()d room.
  static std::uint8_t* raw_varint(std::uint8_t* p, std::uint64_t v) {
    while (v >= 0x80) {
      *p++ = std::uint8_t(v) | 0x80;
      v >>= 7;
    }
    *p++ = std::uint8_t(v);
    return p;
  }

  void init_block(detail::PayloadBuf* buf, std::size_t reserve);
  void ensure(std::size_t n) {
    if (cap_ - len_ < n) grow(n);
  }
  void grow(std::size_t n);

  detail::PayloadBuf* buf_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
  std::size_t cap_ = 0;

#ifdef GRIDMUTEX_WIRE_AUDIT
  // Shadow of the reference (PR 4) per-byte encoder for a sampled fraction
  // of Writers; audit_verify() asserts byte equality with the fast path.
  std::unique_ptr<std::vector<std::uint8_t>> audit_;
  void audit_u8(std::uint8_t v) {
    if (audit_) audit_->push_back(v);
  }
  void audit_fixed(std::uint64_t v, int bytes) {
    if (audit_)
      for (int i = 0; i < bytes; ++i)
        audit_->push_back(std::uint8_t(v >> (8 * i)));
  }
  void audit_varint(std::uint64_t v) {
    if (!audit_) return;
    while (v >= 0x80) {
      audit_->push_back(std::uint8_t(v) | 0x80);
      v >>= 7;
    }
    audit_->push_back(std::uint8_t(v));
  }
  void audit_bytes(std::span<const std::uint8_t> data) {
    if (!audit_) return;
    audit_varint(data.size());
    audit_->insert(audit_->end(), data.begin(), data.end());
  }
  void audit_verify() const {
    GMX_ASSERT_MSG(
        !audit_ || (audit_->size() == len_ &&
                    std::equal(audit_->begin(), audit_->end(), data_)),
        "wire audit: fast-path encoding diverged from the reference codec");
  }
  void audit_arm();
  void audit_disarm() { audit_.reset(); }
#else
  void audit_u8(std::uint8_t) {}
  void audit_fixed(std::uint64_t, int) {}
  void audit_varint(std::uint64_t) {}
  void audit_bytes(std::span<const std::uint8_t>) {}
  void audit_verify() const {}
  void audit_arm() {}
  void audit_disarm() {}
#endif
};

/// Bounds-checked byte source.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return std::int64_t(u64()); }
  double f64();

  std::uint64_t varint() {
    // Fast path: with >= 10 bytes left no bounds check can fire inside the
    // decode loop (a varint is at most 10 bytes; longer is rejected).
    if (remaining() >= 10) {
      const std::uint8_t* p = data_.data() + pos_;
      std::uint64_t v = 0;
      int shift = 0;
      for (;;) {
        const std::uint8_t byte = *p++;
        if (shift == 63 && (byte & 0x7E) != 0)
          throw WireError("wire: varint overflows 64 bits");
        v |= std::uint64_t(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) {
          pos_ = std::size_t(p - data_.data());
          return v;
        }
        shift += 7;
        if (shift > 63) throw WireError("wire: varint too long");
      }
    }
    return varint_slow();
  }

  std::vector<std::uint8_t> bytes();
  /// Zero-copy variant of bytes(): the returned span aliases the Reader's
  /// buffer and is valid only while that buffer lives. Decoders that nest
  /// messages inside messages (service/batch.hpp) use this to splice
  /// sub-payload views out of a frame without copying.
  std::span<const std::uint8_t> bytes_view();
  std::string str();

  std::vector<std::uint64_t> varint_array_u64();
  std::vector<std::uint32_t> varint_array_u32();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

  /// Throws unless the payload was fully consumed — catches messages with
  /// trailing garbage (usually an encoder/decoder version mismatch).
  void expect_end() const;

 private:
  void need(std::size_t n) const;
  std::uint64_t varint_slow();

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace gmx::wire
