// Byte-level message codec.
//
// Every protocol message in gridmutex is serialized to bytes before it
// enters the network, exactly as the paper's C/UDP implementation put
// structs on the wire. This keeps per-message sizes honest — e.g. the
// Suzuki-Kasami token carries a queue plus an N-entry array, and §4.7 of the
// paper argues from that O(N) payload. The network layer accounts bytes from
// these encodings.
//
// Encoding: little-endian fixed-width integers plus LEB128-style varints for
// counts and ranks. Decoding is bounds-checked; malformed input throws
// WireError (protocol bugs must fail loudly in simulation).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gmx::wire {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte sink.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(std::uint64_t(v)); }
  void f64(double v);

  /// Unsigned LEB128. 1 byte for values < 128 — ranks and small counts,
  /// which dominate our messages.
  void varint(std::uint64_t v);

  /// varint length prefix followed by raw bytes.
  void bytes(std::span<const std::uint8_t> data);
  void str(std::string_view s);

  /// varint count followed by each element as a varint.
  void varint_array(std::span<const std::uint64_t> values);
  void varint_array(std::span<const std::uint32_t> values);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked byte source.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return std::int64_t(u64()); }
  double f64();

  std::uint64_t varint();

  std::vector<std::uint8_t> bytes();
  /// Zero-copy variant of bytes(): the returned span aliases the Reader's
  /// buffer and is valid only while that buffer lives. Decoders that nest
  /// messages inside messages (service/batch.hpp) use this to avoid
  /// copying each sub-payload twice.
  std::span<const std::uint8_t> bytes_view();
  std::string str();

  std::vector<std::uint64_t> varint_array_u64();
  std::vector<std::uint32_t> varint_array_u32();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

  /// Throws unless the payload was fully consumed — catches messages with
  /// trailing garbage (usually an encoder/decoder version mismatch).
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace gmx::wire
