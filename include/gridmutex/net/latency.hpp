// Communication latency models.
//
// The paper's central premise is a *hierarchy of communication delays*:
// LAN latency inside a cluster, per-pair WAN latency between clusters
// (Fig. 3: Grid5000 average RTTs, asymmetric, 3–98 ms). `LatencyModel`
// turns (src, dst) into a one-way delay sample; `MatrixLatencyModel`
// carries a full cluster×cluster matrix and implements the Grid5000
// substitution described in DESIGN.md §2.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gridmutex/net/topology.hpp"
#include "gridmutex/sim/random.hpp"
#include "gridmutex/sim/time.hpp"

namespace gmx {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay for a message src→dst. `rng` supplies jitter; a model
  /// may ignore it. Must return a strictly positive duration.
  [[nodiscard]] virtual SimDuration sample(const Topology& topo, NodeId src,
                                           NodeId dst, Rng& rng) const = 0;

  /// Mean one-way delay src→dst (no jitter). Used for reporting and for
  /// analytic expectations in tests.
  [[nodiscard]] virtual SimDuration mean(const Topology& topo, NodeId src,
                                         NodeId dst) const = 0;
};

/// Constant delay for every pair; the workhorse of unit tests where message
/// counts and exact timings are asserted.
class FixedLatencyModel final : public LatencyModel {
 public:
  explicit FixedLatencyModel(SimDuration delay) : delay_(delay) {}

  [[nodiscard]] SimDuration sample(const Topology&, NodeId, NodeId,
                                   Rng&) const override {
    return delay_;
  }
  [[nodiscard]] SimDuration mean(const Topology&, NodeId,
                                 NodeId) const override {
    return delay_;
  }

 private:
  SimDuration delay_;
};

/// Per-cluster-pair mean one-way delays with multiplicative uniform jitter
/// in [1-j, 1+j]. Diagonal entries are the intra-cluster (LAN) delays.
class MatrixLatencyModel final : public LatencyModel {
 public:
  /// `one_way_ms` is a row-major cluster_count×cluster_count matrix of mean
  /// one-way delays in milliseconds.
  MatrixLatencyModel(std::vector<double> one_way_ms,
                     std::uint32_t cluster_count, double jitter_fraction);

  /// The paper's Fig. 3 matrix (average RTT, ms). One-way = RTT/2. The
  /// default 5% jitter approximates WAN variance; pass 0 for deterministic
  /// delays.
  static MatrixLatencyModel grid5000(double jitter_fraction = 0.05);

  /// Two-level synthetic grid: `intra` one-way delay inside any cluster,
  /// `inter` between any two distinct clusters. Used by scalability sweeps
  /// where cluster count varies.
  static MatrixLatencyModel two_level(std::uint32_t cluster_count,
                                      SimDuration intra, SimDuration inter,
                                      double jitter_fraction = 0.0);

  [[nodiscard]] SimDuration sample(const Topology& topo, NodeId src,
                                   NodeId dst, Rng& rng) const override;
  [[nodiscard]] SimDuration mean(const Topology& topo, NodeId src,
                                 NodeId dst) const override;

  [[nodiscard]] std::uint32_t cluster_count() const { return clusters_; }
  /// Mean one-way delay between clusters, in ms (matrix cell).
  [[nodiscard]] double one_way_ms(ClusterId from, ClusterId to) const;
  [[nodiscard]] double jitter_fraction() const { return jitter_; }

 private:
  std::vector<double> ms_;  // row-major, one-way means
  std::uint32_t clusters_;
  double jitter_;
};

/// The raw Fig. 3 data: average RTT in milliseconds, row = from-site,
/// column = to-site, in `grid5000_site_names()` order.
std::span<const double> grid5000_rtt_ms();

}  // namespace gmx
