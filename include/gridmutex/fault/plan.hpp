// Declarative fault campaigns.
//
// A FaultPlan is a pure description — a list of timed fault entries against
// the simulated grid — with no behavior of its own; FaultInjector
// (fault/injector.hpp) compiles it onto a Network. Keeping the plan inert
// makes campaigns reproducible artifacts: the same plan against the same
// seed yields the same trajectory, and a plan can be printed, stored next
// to experiment configs, or perturbed programmatically.
//
// Four fault families, mirroring what Grid5000 deployments actually see:
//   - node crash/restart: the process disappears for a window (messages to
//     and from it are lost; its protocol state survives — warm restart);
//   - client crash/restart: the *application* process on a node dies — the
//     same omission window on the wire, plus a service-level notification
//     (FaultInjector::add_client_hook) so the ClientSession fails its
//     queued tickets and abandons held locks to the lease layer. This is
//     the churn / crash-while-holding axis of ISSUE 7;
//   - inter-cluster partition / lossy link: the WAN path between two
//     clusters drops all (or a fraction of) datagrams for a window;
//   - targeted message drops: the next `count` messages matching a
//     (protocol, type) pattern vanish — the scalpel used to kill exactly
//     one token and nothing else.
#pragma once

#include <cstdint>
#include <vector>

#include "gridmutex/net/network.hpp"

namespace gmx {

struct FaultPlan {
  /// Wildcard for MessageDrops::type: match every message of the protocol.
  /// Distinct from Message::kAckType (0xFFFF), which a drop rule may name
  /// explicitly to kill acknowledgements.
  static constexpr std::uint16_t kAnyType = 0xFFFE;

  struct Crash {
    NodeId node = kInvalidNode;
    SimTime at;
    SimTime restart = SimTime::max();  // max() = never restarts
  };
  /// Application-process death on an app node (same shape as Crash, its
  /// own family so the injector can notify the service layer).
  struct ClientCrash {
    NodeId node = kInvalidNode;
    SimTime at;
    SimTime restart = SimTime::max();  // max() = never rejoins
  };
  struct Partition {
    ClusterId a = 0;
    ClusterId b = 0;
    SimTime at;
    SimTime heal = SimTime::max();
  };
  struct LossyLink {
    ClusterId a = 0;
    ClusterId b = 0;
    double p = 0.0;
    SimTime at;
    SimTime until = SimTime::max();
  };
  struct MessageDrops {
    ProtocolId protocol = 0;
    std::uint16_t type = kAnyType;
    int count = 1;  // at most this many matches are dropped
    SimTime from;
    SimTime until = SimTime::max();
  };

  std::vector<Crash> crashes;
  std::vector<ClientCrash> client_crashes;
  std::vector<Partition> partitions;
  std::vector<LossyLink> lossy_links;
  std::vector<MessageDrops> message_drops;

  // Fluent builders; all return *this so campaigns read as one expression.
  FaultPlan& crash(NodeId node, SimTime at, SimTime restart) {
    crashes.push_back({node, at, restart});
    return *this;
  }
  FaultPlan& crash_forever(NodeId node, SimTime at) {
    crashes.push_back({node, at, SimTime::max()});
    return *this;
  }
  FaultPlan& client_crash(NodeId node, SimTime at, SimTime restart) {
    client_crashes.push_back({node, at, restart});
    return *this;
  }
  FaultPlan& client_crash_forever(NodeId node, SimTime at) {
    client_crashes.push_back({node, at, SimTime::max()});
    return *this;
  }
  FaultPlan& partition_clusters(ClusterId a, ClusterId b, SimTime at,
                                SimTime heal) {
    partitions.push_back({a, b, at, heal});
    return *this;
  }
  FaultPlan& lossy_link(ClusterId a, ClusterId b, double p, SimTime at,
                        SimTime until = SimTime::max()) {
    lossy_links.push_back({a, b, p, at, until});
    return *this;
  }
  FaultPlan& drop_messages(ProtocolId protocol, std::uint16_t type, int count,
                           SimTime from, SimTime until = SimTime::max()) {
    message_drops.push_back({protocol, type, count, from, until});
    return *this;
  }

  [[nodiscard]] bool empty() const {
    return crashes.empty() && client_crashes.empty() && partitions.empty() &&
           lossy_links.empty() && message_drops.empty();
  }
};

}  // namespace gmx
