// Token-loss detection and recovery.
//
// The TokenRecoveryManager watches algorithm instances for the one failure
// no token algorithm survives on its own: the token vanishing in transit.
// Detection is deliberately *outside* the protocol — the manager is an
// omniscient observer of the simulated grid (like the checker), polling a
// cheap liveness probe while an instance is active:
//
//   loss  :=  some participant is Requesting
//          && no participant holds the token
//          && no message of the instance is in flight
//          && no reliable frame awaits (re)transmission
//          sustained for `detect_timeout`.
//
// On detection the manager elects an initiator — the highest-rank
// participant on a live node, the classical deterministic choice — and
// drives the algorithm's own regeneration protocol
// (MutexAlgorithm::begin_token_regeneration). If the round wedges (e.g. a
// consulted peer crashes mid-round) a retry timer cancels the old round and
// re-elects. A *stranded* token — alive but idle at a holder that never
// learned of an outstanding request — is repaired by forcing the holder to
// surrender it to a requester.
//
// Probes are armed only while the instance shows activity (a send tap on
// the network) and disarm when it goes idle, so a finished simulation still
// drains — the "drain = done" contract of the DES kernel survives recovery.
//
// The regeneration *epoch* — detection until the replacement token is
// minted — is published through an epoch hook; the ProtocolChecker relaxes
// token-uniqueness only inside it (analysis/protocol_checker.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/sim/stats.hpp"

namespace gmx {

struct RecoveryConfig {
  /// ARQ applied to every watched protocol (Network::set_reliable): masks
  /// losses below the retry horizon so regeneration only handles true
  /// losses. Disable to exercise detection/regeneration directly.
  bool enable_retransmit = true;
  RetransmitConfig retransmit;

  /// The loss condition must hold this long before recovery starts —
  /// absorbs grant races around the probe instants.
  SimDuration detect_timeout = SimDuration::ms(400);
  /// Probe cadence while an instance is active.
  SimDuration probe_interval = SimDuration::ms(100);
  /// Pause between detection and electing the initiator (models the
  /// election message round a real deployment would run).
  SimDuration election_delay = SimDuration::ms(50);
  /// A regeneration round not completed within this window is cancelled
  /// and re-elected (consulted peer crashed mid-round).
  SimDuration regen_retry = SimDuration::sec(2);
};

class TokenRecoveryManager {
 public:
  struct Stats {
    std::uint64_t losses_detected = 0;
    std::uint64_t regenerations = 0;
    std::uint64_t reelections = 0;
    std::uint64_t false_alarms = 0;    // round aborted, token was alive
    std::uint64_t stranded_repairs = 0;
    /// Detection instant → replacement token minted.
    DurationStats recovery_latency;
  };

  TokenRecoveryManager(Network& net, RecoveryConfig cfg);
  ~TokenRecoveryManager();

  TokenRecoveryManager(const TokenRecoveryManager&) = delete;
  TokenRecoveryManager& operator=(const TokenRecoveryManager&) = delete;

  /// Watches one algorithm instance. `endpoints` rank-ordered, as returned
  /// by Composition::intra_instance()/inter_instance(). Instances of
  /// algorithms without regeneration support are still watched — a detected
  /// loss then latches given_up() instead of recovering (and the run's
  /// drain assertion fails loudly, which is the honest outcome).
  void watch_instance(std::string name, ProtocolId protocol,
                      std::vector<MutexEndpoint*> endpoints);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// A loss was detected on an instance that cannot regenerate.
  [[nodiscard]] bool given_up() const { return given_up_; }
  /// True while `protocol` is inside a regeneration epoch.
  [[nodiscard]] bool in_regeneration(ProtocolId protocol) const;

  /// Epoch boundary notifications: (protocol, open). Fired at detection
  /// (open) and at token re-mint (close). One slot — the checker's.
  using EpochHook = std::function<void(ProtocolId, bool open)>;
  void set_epoch_hook(EpochHook hook) { epoch_hook_ = std::move(hook); }

  [[nodiscard]] const RecoveryConfig& config() const { return cfg_; }

 private:
  struct Watched {
    std::string name;
    ProtocolId protocol = 0;
    std::vector<MutexEndpoint*> endpoints;
    bool probe_armed = false;
    EventId probe = kInvalidEventId;
    /// First probe instant at which the loss (or stranded) condition held;
    /// SimTime::max() when it does not currently hold.
    SimTime loss_since = SimTime::max();
    SimTime stranded_since = SimTime::max();
    bool regenerating = false;
    SimTime detected_at;
    int initiator = -1;
    EventId pending_action = kInvalidEventId;  // election / retry timer
  };

  void on_send(const Message& msg);
  void arm_probe(Watched& w);
  void probe(ProtocolId protocol);
  [[nodiscard]] bool quiescent(const Watched& w) const;
  void detect_loss(Watched& w);
  void elect_and_begin(Watched& w);
  void retry_regeneration(Watched& w);
  void on_regenerated(ProtocolId protocol, int rank);
  void repair_stranded(Watched& w);
  [[nodiscard]] int pick_initiator(const Watched& w, int exclude) const;

  Network& net_;
  RecoveryConfig cfg_;
  Stats stats_;
  bool given_up_ = false;
  std::unordered_map<ProtocolId, Watched> watched_;
  EpochHook epoch_hook_;
};

}  // namespace gmx
