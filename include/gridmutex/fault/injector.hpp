// FaultInjector: compiles a FaultPlan onto a Network.
//
// Every plan entry becomes one or two simulator events (onset and, when
// bounded, recovery) scheduled at arm() time; targeted message drops become
// a Network drop filter evaluated at send time. All injected randomness
// lives in the Network's dedicated fault Rng stream, so arming a campaign
// never perturbs latency or workload draws — a faulted run and its clean
// twin share every non-fault random choice.
//
// Crash semantics are the Network's omission window (set_node_up): while a
// node is down its datagrams are lost in both directions, but handlers and
// protocol state survive — a warm restart. Higher layers subscribe to
// add_node_hook() to model the process-level consequences (coordinator
// failover: fault/failover.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gridmutex/fault/plan.hpp"
#include "gridmutex/net/network.hpp"

namespace gmx {

class FaultInjector {
 public:
  /// Injection event counts (distinct from the Network's message counters:
  /// one partition event drops many messages).
  struct Stats {
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t client_crashes = 0;
    std::uint64_t client_restarts = 0;
    std::uint64_t partitions = 0;
    std::uint64_t heals = 0;
    std::uint64_t lossy_links = 0;
    std::uint64_t targeted_drops = 0;
  };

  FaultInjector(Network& net, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every plan entry and installs the targeted-drop filter.
  /// Call exactly once, before running the simulation past the first
  /// fault onset.
  void arm();

  /// Notification of crash (`up == false`) / restart (`up == true`)
  /// transitions, fired right after the Network state flips. Multiple
  /// subscribers; called in subscription order.
  using NodeHook = std::function<void(NodeId node, bool up)>;
  void add_node_hook(NodeHook hook) {
    node_hooks_.push_back(std::move(hook));
  }

  /// Notification of client-process death / rejoin on an app node. Kept
  /// distinct from add_node_hook so coordinator-failover machinery does
  /// not trigger on client churn; the wire-level omission window is still
  /// applied (a dead process neither sends nor receives). Subscribe the
  /// service layer here to fail queued tickets and abandon held locks
  /// (ClientSession::crash / restart).
  using ClientHook = std::function<void(NodeId node, bool up)>;
  void add_client_hook(ClientHook hook) {
    client_hooks_.push_back(std::move(hook));
  }

  /// Fires a client crash right now — the dynamic faults a declarative
  /// plan cannot name, e.g. "crash whichever client holds lock 3 at t".
  /// When `restart` is bounded the rejoin is scheduled like a plan entry.
  void inject_client_crash(NodeId node, SimTime restart = SimTime::max());

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] Network& network() { return net_; }

  /// Number of fault windows open right now: crashed nodes not yet
  /// restarted, unhealed partitions, active lossy links, and targeted-drop
  /// rules still holding ammunition inside their window. Gauges the
  /// "under faults" instants for metrics; 0 on a clean (or fully healed)
  /// grid.
  [[nodiscard]] int active_faults() const;

 private:
  struct ActiveDrop {
    FaultPlan::MessageDrops rule;
    int remaining = 0;
  };

  void schedule(SimTime at, std::function<void()> fn);
  void set_node(NodeId node, bool up);
  void set_client(NodeId node, bool up);
  [[nodiscard]] bool should_drop(const Message& msg);

  Network& net_;
  FaultPlan plan_;
  Stats stats_;
  bool armed_ = false;
  int active_windows_ = 0;          // crash/partition/lossy windows open
  std::vector<EventId> scheduled_;  // cancelled on destruction
  std::vector<ActiveDrop> drops_;
  std::vector<NodeHook> node_hooks_;
  std::vector<ClientHook> client_hooks_;
};

}  // namespace gmx
