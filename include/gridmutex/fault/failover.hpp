// Coordinator failover for the composition layer.
//
// Bridges FaultInjector crash/restart notifications to the Fig. 2
// automaton: when a coordinator's node crashes, its Coordinator enters the
// failed window (upcalls swallowed — the process is gone); on restart the
// replacement coordinator re-enters the automaton via
// Coordinator::recover(), which replays every missed edge from the
// endpoints' level state and rejoins the inter instance mid-cycle.
//
// In the warm-restart model the "replacement" inherits the crashed
// process's protocol endpoints — the paper's node convention pins one
// coordinator slot per cluster, so a real deployment's elected replacement
// would equally adopt the slot's intra rank 0 / inter rank c identities.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "gridmutex/core/composition.hpp"
#include "gridmutex/fault/injector.hpp"
#include "gridmutex/sim/stats.hpp"

namespace gmx {

class CoordinatorFailover {
 public:
  struct Stats {
    std::uint64_t failovers = 0;   // completed crash→recover cycles
    DurationStats outage;          // crash instant → recover instant
  };

  /// Subscribes to `injector` for the lifetime of this object; the
  /// injector must outlive it. Crashes of non-coordinator nodes are
  /// ignored here (the network's omission window covers them).
  CoordinatorFailover(Composition& comp, FaultInjector& injector);

  CoordinatorFailover(const CoordinatorFailover&) = delete;
  CoordinatorFailover& operator=(const CoordinatorFailover&) = delete;

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_node(NodeId node, bool up);

  Composition& comp_;
  Stats stats_;
  std::unordered_map<NodeId, ClusterId> cluster_of_coordinator_;
  std::unordered_map<NodeId, SimTime> down_since_;
  Simulator& sim_;
};

}  // namespace gmx
