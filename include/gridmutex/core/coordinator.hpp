// The composition coordinator (paper §3).
//
// One coordinator per cluster. It is a hybrid participant: rank 0 of its
// cluster's *intra* algorithm instance and one rank of the global *inter*
// instance — and it never wants the resource for itself. Its job is a pure
// protocol bridge, captured by the four-state automaton of paper Fig. 1(b):
//
//   state         Intra   Inter   meaning
//   OUT           CS      NO_REQ  no local demand; holds the intra token
//   WAIT_FOR_IN   CS      REQ     local demand; waiting for the inter token
//   IN            NO_REQ  CS      cluster owns the resource; intra token
//                                 circulates among local applications
//   WAIT_FOR_OUT  REQ     CS      remote demand; reclaiming the intra token
//
// Transitions (paper Fig. 2):
//   OUT          --local request pending-->   InterCSRequest, WAIT_FOR_IN
//   WAIT_FOR_IN  --inter CS granted------->   IntraCSRelease, IN
//   IN           --inter request pending-->   IntraCSRequest, WAIT_FOR_OUT
//   WAIT_FOR_OUT --intra CS granted------->   InterCSRelease, OUT
//
// At most one coordinator grid-wide is in {IN, WAIT_FOR_OUT} at any time
// (it holds the inter token in CS) — that is the global safety argument:
// an application can hold its intra token only while its coordinator is in
// one of those two states.
//
// The "pending" inputs are the MutexObserver::on_pending_request upcalls of
// the two endpoints; because those are edge-triggered, every transition
// *into* a state re-checks has_pending_requests() level-wise, so no wakeup
// is ever lost.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "gridmutex/mutex/handle.hpp"

namespace gmx {

class Coordinator {
 public:
  enum class State : std::uint8_t { kOut, kWaitForIn, kIn, kWaitForOut };

  /// `intra` must be rank 0 of the cluster instance and live on this
  /// coordinator's node; `inter` is this coordinator's rank in the
  /// coordinators' instance. Both endpoints' callbacks are claimed by the
  /// coordinator.
  Coordinator(MutexHandle& intra, MutexHandle& inter);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Enters service: acquires the intra token CS (instantaneous — the
  /// coordinator is the initial intra holder) and settles in OUT. Call once,
  /// at simulation start, after both endpoints' init().
  void start();

  [[nodiscard]] State state() const { return state_; }
  /// True in IN/WAIT_FOR_OUT — this cluster currently owns the resource.
  [[nodiscard]] bool cluster_privileged() const {
    return state_ == State::kIn || state_ == State::kWaitForOut;
  }

  [[nodiscard]] MutexHandle& intra() { return intra_; }
  [[nodiscard]] MutexHandle& inter() { return inter_; }

  /// Counters for analysis: how often the cluster acquired the inter token,
  /// and how many intra grants each acquisition amortized (the message-
  /// aggregation effect of §4.4).
  [[nodiscard]] std::uint64_t inter_acquisitions() const {
    return inter_acquisitions_;
  }
  [[nodiscard]] std::uint64_t state_transitions() const {
    return transitions_;
  }

  /// Adaptive-composition support (core/adaptive.hpp). While paused, the
  /// coordinator abstains from *new* inter requests; local demand is
  /// remembered and replayed on resume().
  void pause_inter_requests();
  void resume_inter_requests();
  [[nodiscard]] bool paused() const { return paused_; }

  /// Drives an idle-privileged coordinator (IN, with no remote demand) back
  /// to OUT so the inter token becomes idle — used by the adaptive switcher
  /// to quiesce the inter level. No-op in other states.
  void force_vacate();

  /// Rebinds the inter endpoint after an adaptive swap. Only legal while
  /// paused and in OUT.
  void rebind_inter(MutexHandle& inter);

  /// Coordinator failover (fault/failover.hpp). fail() models the process
  /// crash: every endpoint upcall is swallowed until recover(), exactly as
  /// a dead process misses its callbacks. recover() re-enters the Fig. 2
  /// automaton: the pre-crash state plus the endpoints' *level* state
  /// determine which edges were missed, and each is replayed as the legal
  /// transition it would have been — the replacement coordinator inherits
  /// the warm protocol state and rejoins the inter instance mid-cycle.
  void fail();
  void recover();
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] bool recovered_once() const { return recovered_once_; }

  /// Optional hook invoked after every state transition (tests, tracing).
  using TransitionHook =
      std::function<void(const Coordinator&, State from, State to)>;
  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  /// Separate slot for the protocol checker (analysis/protocol_checker.hpp)
  /// so arming a run never displaces a test's or tracer's hook.
  void set_checker_hook(TransitionHook hook) {
    checker_hook_ = std::move(hook);
  }

 private:
  void on_intra_granted();
  void on_intra_pending();
  void on_inter_granted();
  void on_inter_pending();

  void enter_out();   // common OUT entry: release inter, re-arm if needed
  void complete_handover();  // IN entry: release intra, honour inter demand
  void go(State to);
  void request_inter();

  MutexHandle& intra_;
  std::reference_wrapper<MutexHandle> inter_;
  State state_ = State::kOut;
  bool started_ = false;
  bool paused_ = false;
  bool failed_ = false;          // crash window: upcalls swallowed
  bool recovered_once_ = false;  // tolerate stale deferred grant echoes
  bool want_inter_ = false;       // demand observed while paused
  bool vacate_requested_ = false; // force_vacate() in flight
  bool handover_pending_ = false; // inter granted before intra CS (startup
                                  // transient of permission-based intra)
  std::uint64_t inter_acquisitions_ = 0;
  std::uint64_t transitions_ = 0;
  TransitionHook hook_;
  TransitionHook checker_hook_;
};

[[nodiscard]] std::string_view to_string(Coordinator::State s);

}  // namespace gmx
