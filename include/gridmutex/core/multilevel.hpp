// Multi-level composition (paper §6: "our two-level approach ... can be
// easily extended to multiple levels of algorithm hierarchy").
//
// A hierarchy of L levels is described bottom-up by `HierarchySpec::arity`:
// arity[0] applications per leaf group, arity[l>0] level-(l-1) groups per
// level-l group. One algorithm instance runs per group:
//   - a leaf group's instance spans its applications + its coordinator
//     (rank 0);
//   - an inner group's instance spans its children's coordinators + its own
//     coordinator (rank 0);
//   - the root instance spans the top-level coordinators only.
// Every non-root group's coordinator runs the *same* Coordinator automaton
// as the two-level case, bridging its group instance (as "intra") with its
// parent's instance (as "inter") — composition is closed under itself.
//
// Example: arity {19, 3, 3} = 9 clusters of 19 apps grouped 3-per-site:
// 9 cluster instances (20 participants), 3 site instances (4 participants:
// 3 cluster coordinators + 1 site coordinator), 1 root instance (3 site
// coordinators).
//
// Placement: leaf group i maps onto cluster i of the Topology. A level-l>0
// coordinator lives on an extra node inside the first leaf cluster of its
// group. Use make_topology()/make_latency() to build a consistent pair.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gridmutex/core/coordinator.hpp"
#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/net/latency.hpp"
#include "gridmutex/net/network.hpp"

namespace gmx {

struct HierarchySpec {
  /// Bottom-up group sizes; arity.size() == number of levels L >= 2.
  std::vector<std::uint32_t> arity;
  /// One algorithm per level: algorithms[0] for leaf instances, ...,
  /// algorithms[L-1] for the root instance.
  std::vector<std::string> algorithms;

  [[nodiscard]] std::size_t levels() const { return arity.size(); }
  /// Number of groups at `level` (level L-1 has exactly one: the root).
  [[nodiscard]] std::uint32_t groups_at(std::size_t level) const;
  [[nodiscard]] std::uint32_t leaf_groups() const { return groups_at(0); }
  [[nodiscard]] std::uint32_t application_count() const;
};

class MultiLevelComposition {
 public:
  MultiLevelComposition(Network& net, HierarchySpec spec,
                        ProtocolId protocol_base = 1, std::uint64_t seed = 1);
  ~MultiLevelComposition();

  MultiLevelComposition(const MultiLevelComposition&) = delete;
  MultiLevelComposition& operator=(const MultiLevelComposition&) = delete;

  /// Topology whose cluster i is leaf group i, including the extra nodes
  /// hosting inner coordinators.
  static Topology make_topology(const HierarchySpec& spec);

  /// Latency whose delay between two clusters is level_delays[lca-level]:
  /// level_delays[0] = LAN (same cluster), level_delays[l] = links between
  /// clusters whose lowest common group sits at level l.
  static std::shared_ptr<MatrixLatencyModel> make_latency(
      const HierarchySpec& spec, std::span<const SimDuration> level_delays,
      double jitter_fraction = 0.0);

  void start();

  [[nodiscard]] const std::vector<NodeId>& app_nodes() const {
    return app_nodes_;
  }
  [[nodiscard]] MutexEndpoint& app_mutex(NodeId node);

  [[nodiscard]] std::size_t levels() const { return spec_.levels(); }
  /// Coordinator of `group` at `level` (levels 0..L-2 have coordinators).
  [[nodiscard]] Coordinator& coordinator(std::size_t level,
                                         std::uint32_t group);
  [[nodiscard]] std::uint32_t coordinator_count(std::size_t level) const;

  /// Safety diagnostics: privileged coordinators at a level must be <= 1
  /// per parent group.
  [[nodiscard]] int privileged_at(std::size_t level) const;

 private:
  Network& net_;
  HierarchySpec spec_;

  // instances_[level][group] = endpoints of that group's instance
  // (rank order: coordinator first for non-root levels).
  std::vector<std::vector<std::vector<std::unique_ptr<MutexEndpoint>>>>
      instances_;
  // coordinators_[level][group], for level in [0, L-2].
  std::vector<std::vector<std::unique_ptr<Coordinator>>> coordinators_;
  std::vector<NodeId> app_nodes_;
  std::vector<int> app_index_of_node_;  // node -> rank in its leaf instance
};

}  // namespace gmx
