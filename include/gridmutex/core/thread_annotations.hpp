// Clang thread-safety annotations + the concurrency vocabulary types the
// rest of the tree is annotated with.
//
// gridmutex has exactly two concurrency disciplines, and this header gives
// both a machine-checkable spelling:
//
//   1. *Mutex-protected* state (workload/thread_pool.hpp, rt/runtime.hpp,
//      workload/sweep.hpp): fields carry GMX_GUARDED_BY(mu) and every lock
//      site uses gmx::Mutex / gmx::MutexLock below. Under Clang,
//      -Wthread-safety then proves at compile time that no guarded field is
//      touched without its mutex — before TSan ever has to catch the race
//      on a schedule it happens to see. Under other compilers the macros
//      expand to nothing and the wrappers are zero-cost veneers over
//      <mutex>.
//
//   2. *Single-thread affinity* (net/buffer_pool.hpp free-lists,
//      net/network.hpp handler tables, rt/endpoint.hpp algorithm state):
//      state that is not locked at all because exactly one thread may ever
//      touch it — the owning simulation thread, or a node's serial queue.
//      That capability has no static spelling Clang can check (there is no
//      mutex to name), so it gets a *runtime* spelling instead:
//      ThreadAffinityGuard pins itself to the first thread that uses the
//      protected object and GMX_ASSERTs every later use is the same
//      thread. The guard is compiled in only in debug-style builds (see
//      GMX_AFFINITY_GUARD_ENABLED below): release binaries pay zero bytes
//      and zero cycles.
//
// The macro set mirrors the canonical mutex.h from the Clang
// thread-safety-analysis documentation, prefixed GMX_.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>

#include "gridmutex/sim/assert.hpp"

#if defined(__clang__)
#define GMX_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define GMX_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define GMX_CAPABILITY(x) GMX_THREAD_ANNOTATION__(capability(x))
/// Marks an RAII type whose lifetime equals holding a capability.
#define GMX_SCOPED_CAPABILITY GMX_THREAD_ANNOTATION__(scoped_lockable)
/// Field may only be touched while holding `x`.
#define GMX_GUARDED_BY(x) GMX_THREAD_ANNOTATION__(guarded_by(x))
/// Pointee may only be touched while holding `x`.
#define GMX_PT_GUARDED_BY(x) GMX_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Function acquires the capability (held after return).
#define GMX_ACQUIRE(...) \
  GMX_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
/// Function releases the capability (not held after return).
#define GMX_RELEASE(...) \
  GMX_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define GMX_TRY_ACQUIRE(b, ...) \
  GMX_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))
/// Caller must hold the capability for the duration of the call.
#define GMX_REQUIRES(...) \
  GMX_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define GMX_EXCLUDES(...) GMX_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define GMX_RETURN_CAPABILITY(x) GMX_THREAD_ANNOTATION__(lock_returned(x))
/// Escape hatch; use only with a comment explaining why the analysis is
/// wrong, never to silence a genuine finding.
#define GMX_NO_THREAD_SAFETY_ANALYSIS \
  GMX_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace gmx {

/// std::mutex with the capability annotation Clang's analysis needs.
/// Always lock through MutexLock (below) — a bare std::lock_guard over this
/// type locks correctly but is invisible to the analysis, which then
/// reports every guarded access in the critical section as unlocked.
class GMX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GMX_ACQUIRE() { mu_.lock(); }
  void unlock() GMX_RELEASE() { mu_.unlock(); }
  bool try_lock() GMX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable interop only (waits
  /// need the native lock type). Never lock through this directly.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over gmx::Mutex, relockable so condition-variable loops and
/// the dispatcher's unlock-deliver-relock pattern stay inside one scope the
/// analysis can follow.
class GMX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GMX_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() GMX_RELEASE() {}  // lock_'s destructor unlocks if held

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporary release around work that must not hold the lock.
  void unlock() GMX_RELEASE() { lock_.unlock(); }
  void lock() GMX_ACQUIRE() { lock_.lock(); }

  /// The underlying unique_lock, for std::condition_variable::wait /
  /// wait_until only. Write the wait as an explicit while-loop over the
  /// guarded predicate (not the predicate-lambda overload): the loop body
  /// runs in this scope, where the analysis knows the lock is held — a
  /// predicate lambda is analyzed as a separate function and would be
  /// flagged as an unlocked access.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

// ThreadAffinityGuard compiles to a real check wherever GMX_ASSERT-style
// invariant checking is wanted at a cost: debug builds, or any build that
// opts in with GRIDMUTEX_THREAD_AFFINITY_CHECKS (the sanitizer CI jobs do).
// Release/RelWithDebInfo builds keep it a true no-op — the perf-suite
// acceptance row (zero release-mode overhead) depends on that.
#if !defined(NDEBUG) || defined(GRIDMUTEX_THREAD_AFFINITY_CHECKS)
#define GMX_AFFINITY_GUARD_ENABLED 1
#else
#define GMX_AFFINITY_GUARD_ENABLED 0
#endif

/// Runtime spelling of the "single-thread property" capability: the first
/// thread to call check() owns the object; any other thread aborts with the
/// given diagnostic. reset() releases ownership for legal sequential
/// handoff (e.g. an object built on one thread, then given wholesale to a
/// worker before first use).
class ThreadAffinityGuard {
#if GMX_AFFINITY_GUARD_ENABLED
 public:
  void check(const char* what) const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id unpinned{};
    // First checked use pins; the CAS makes even a racing first use flag
    // exactly one loser instead of silently double-pinning.
    if (owner_.compare_exchange_strong(unpinned, self,
                                       std::memory_order_relaxed)) {
      return;
    }
    GMX_ASSERT_MSG(unpinned == self, what);
  }
  void reset() { owner_.store({}, std::memory_order_relaxed); }

 private:
  mutable std::atomic<std::thread::id> owner_{};
#else
 public:
  void check(const char*) const {}
  void reset() {}
#endif
};

}  // namespace gmx
