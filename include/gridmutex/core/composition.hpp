// Two-level composition of mutual exclusion algorithms (paper §3).
//
// Builds, for a clustered grid:
//   - one *intra* algorithm instance per cluster, whose participants are the
//     cluster's application nodes plus its coordinator (rank 0);
//   - one *inter* algorithm instance over the coordinators (rank = cluster);
//   - one Coordinator automaton per cluster bridging the two.
//
// Node convention: the FIRST node of every cluster hosts the coordinator;
// the remaining nodes host application processes. Use
// `Composition::make_topology()` (or Topology::grid5000(21)) to build a grid
// with the extra coordinator slot per cluster.
//
// An application on node v interacts only with `app_mutex(v)` — the intra
// endpoint — exactly as in the paper: composition is transparent to the
// application (§3.1), and neither algorithm is modified.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gridmutex/core/coordinator.hpp"
#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/net/network.hpp"

namespace gmx {

struct CompositionConfig {
  std::string intra_algorithm = "naimi";
  std::string inter_algorithm = "naimi";
  /// Cluster whose coordinator initially holds the inter token.
  ClusterId initial_cluster = 0;
  /// Base protocol id; the composition claims [base, base + clusters + 1).
  ProtocolId protocol_base = 1;
  std::uint64_t seed = 1;
};

class Composition {
 public:
  /// The network's topology must have >= 2 nodes per cluster (coordinator +
  /// at least one application node).
  Composition(Network& net, CompositionConfig cfg);
  ~Composition();

  Composition(const Composition&) = delete;
  Composition& operator=(const Composition&) = delete;

  /// Builds a topology with `apps_per_cluster`+1 nodes per cluster.
  static Topology make_topology(std::uint32_t clusters,
                                std::uint32_t apps_per_cluster);

  /// Starts all coordinators. Call once, before (or at) the first request.
  void start();

  /// Application nodes, i.e. every node that is not a coordinator.
  [[nodiscard]] const std::vector<NodeId>& app_nodes() const {
    return app_nodes_;
  }
  [[nodiscard]] bool is_coordinator_node(NodeId node) const;

  /// The mutex an application on `node` uses. `node` must be an app node.
  [[nodiscard]] MutexEndpoint& app_mutex(NodeId node);

  [[nodiscard]] Coordinator& coordinator(ClusterId c);
  [[nodiscard]] const Coordinator& coordinator(ClusterId c) const;

  /// Analysis accessors (analysis/protocol_checker.hpp): the rank-ordered
  /// endpoints of one intra instance (rank 0 = coordinator) and of the
  /// inter instance (rank = cluster id).
  [[nodiscard]] std::vector<MutexEndpoint*> intra_instance(ClusterId c);
  [[nodiscard]] std::vector<MutexEndpoint*> inter_instance();
  [[nodiscard]] std::uint32_t cluster_count() const {
    return std::uint32_t(coordinators_.size());
  }

  [[nodiscard]] const CompositionConfig& config() const { return cfg_; }
  [[nodiscard]] ProtocolId inter_protocol() const {
    return cfg_.protocol_base;
  }
  [[nodiscard]] ProtocolId intra_protocol(ClusterId c) const {
    return cfg_.protocol_base + 1 + c;
  }

  /// Labeler for net::TraceSink: renders this composition's protocol ids
  /// as "inter(martin).TOKEN" / "intra[2](naimi).REQUEST", with `prefix`
  /// prepended (a LockService passes "lock[3]." so trace lines identify
  /// which multiplexed instance a message belongs to). With a non-empty
  /// prefix, foreign protocols yield "" — the TraceSink chain contract —
  /// instead of the standalone "p<id>.t<type>" fallback.
  [[nodiscard]] std::function<std::string(ProtocolId, std::uint16_t)>
  trace_labeler(std::string prefix = {}) const;

  /// Number of coordinators in IN/WAIT_FOR_OUT. The composition safety
  /// invariant is that this never exceeds 1 (asserted by tests after every
  /// transition).
  [[nodiscard]] int privileged_coordinators() const;

  /// Sum of inter-token acquisitions across clusters (aggregation metric).
  [[nodiscard]] std::uint64_t total_inter_acquisitions() const;

 private:
  friend class AdaptiveComposition;

  Network& net_;
  CompositionConfig cfg_;

  // Per cluster: [0] = coordinator endpoint, [i>0] = app endpoints.
  std::vector<std::vector<std::unique_ptr<MutexEndpoint>>> intra_;
  std::vector<std::unique_ptr<MutexEndpoint>> inter_;  // one per cluster
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
  std::vector<NodeId> app_nodes_;
  std::vector<int> app_endpoint_of_node_;  // node -> index, -1 otherwise
};

}  // namespace gmx
