// Adaptive composition (paper §6 future work: "a dynamic and adaptive
// composition scheme where the inter algorithm will be replaced according to
// the application behavior").
//
// A controller samples how many coordinators are competing for the inter
// token and classifies the application regime per the paper's §4.7
// conclusions:
//
//   demand fraction      regime                   best inter algorithm
//   >= low_threshold     low parallelism          martin  (fewest messages)
//   in between           intermediate             naimi   (best balance)
//   <= high_threshold    high parallelism         suzuki  (lowest latency)
//
// When the regime changes, the controller swaps the inter instance through a
// reconfiguration epoch:
//   1. pause: every coordinator abstains from NEW inter requests (local
//      demand is remembered);
//   2. drain: coordinators already past OUT finish their cycle; any
//      coordinator idling in IN is told to vacate; the controller polls
//      until all are OUT and no inter message is in flight;
//   3. swap: the idle inter token's location is carried over as the new
//      instance's initial holder; old endpoints are torn down, new ones
//      built and rebound;
//   4. resume: paused demand replays against the new algorithm.
//
// The quiesce detector uses the simulation's global view; a production
// implementation would run a coordinator-among-coordinators round for the
// same effect (documented substitution, DESIGN.md §5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gridmutex/core/composition.hpp"

namespace gmx {

struct AdaptiveConfig {
  /// Sampling/evaluation cadence.
  SimDuration sample_every = SimDuration::ms(50);
  SimDuration epoch = SimDuration::sec(1);
  /// Quiesce poll cadence during a switch.
  SimDuration quiesce_poll = SimDuration::ms(5);
  /// Regime thresholds on the epoch-averaged fraction of coordinators with
  /// inter-token demand (states WAIT_FOR_IN/IN/WAIT_FOR_OUT).
  double low_parallelism_at = 0.60;
  double high_parallelism_at = 0.20;
  std::string low_algorithm = "martin";
  std::string mid_algorithm = "naimi";
  std::string high_algorithm = "suzuki";
};

class AdaptiveComposition {
 public:
  AdaptiveComposition(Network& net, Composition& comp, AdaptiveConfig cfg);

  AdaptiveComposition(const AdaptiveComposition&) = delete;
  AdaptiveComposition& operator=(const AdaptiveComposition&) = delete;

  /// Begins sampling. Call after Composition::start().
  void start();
  /// Cancels all controller activity so the simulation can drain. A switch
  /// in progress is completed first... callers should stop after their
  /// workload deadline, then run the simulator dry.
  void stop();

  [[nodiscard]] const std::string& current_inter() const { return current_; }
  [[nodiscard]] int switches_completed() const { return switches_; }
  [[nodiscard]] bool switching() const { return switching_; }
  /// Epoch-averaged demand fraction from the last completed epoch.
  [[nodiscard]] double last_demand_fraction() const { return last_demand_; }

  /// Regime classification used by the controller (exposed for tests).
  [[nodiscard]] const std::string& pick_algorithm(double demand) const;

 private:
  void sample();
  void evaluate_epoch();
  void begin_switch(const std::string& target);
  void poll_quiesce();
  void do_swap();
  void arm_sampler();

  Network& net_;
  Composition& comp_;
  AdaptiveConfig cfg_;

  std::string current_;
  std::string target_;
  bool running_ = false;
  bool switching_ = false;
  int switches_ = 0;

  double demand_accum_ = 0.0;
  std::uint64_t samples_ = 0;
  SimTime epoch_start_;
  double last_demand_ = 0.0;
  EventId timer_ = kInvalidEventId;
};

}  // namespace gmx
