file(REMOVE_RECURSE
  "CMakeFiles/mutex_naimi_test.dir/mutex_naimi_test.cpp.o"
  "CMakeFiles/mutex_naimi_test.dir/mutex_naimi_test.cpp.o.d"
  "mutex_naimi_test"
  "mutex_naimi_test.pdb"
  "mutex_naimi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_naimi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
