file(REMOVE_RECURSE
  "CMakeFiles/core_coordinator_test.dir/core_coordinator_test.cpp.o"
  "CMakeFiles/core_coordinator_test.dir/core_coordinator_test.cpp.o.d"
  "core_coordinator_test"
  "core_coordinator_test.pdb"
  "core_coordinator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_coordinator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
