# Empty compiler generated dependencies file for workload_report_test.
# This may be replaced when dependencies are built.
