file(REMOVE_RECURSE
  "CMakeFiles/workload_report_test.dir/workload_report_test.cpp.o"
  "CMakeFiles/workload_report_test.dir/workload_report_test.cpp.o.d"
  "workload_report_test"
  "workload_report_test.pdb"
  "workload_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
