file(REMOVE_RECURSE
  "CMakeFiles/mutex_central_test.dir/mutex_central_test.cpp.o"
  "CMakeFiles/mutex_central_test.dir/mutex_central_test.cpp.o.d"
  "mutex_central_test"
  "mutex_central_test.pdb"
  "mutex_central_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_central_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
