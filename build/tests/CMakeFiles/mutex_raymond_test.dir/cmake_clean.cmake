file(REMOVE_RECURSE
  "CMakeFiles/mutex_raymond_test.dir/mutex_raymond_test.cpp.o"
  "CMakeFiles/mutex_raymond_test.dir/mutex_raymond_test.cpp.o.d"
  "mutex_raymond_test"
  "mutex_raymond_test.pdb"
  "mutex_raymond_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_raymond_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
