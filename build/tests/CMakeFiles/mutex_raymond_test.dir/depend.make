# Empty dependencies file for mutex_raymond_test.
# This may be replaced when dependencies are built.
