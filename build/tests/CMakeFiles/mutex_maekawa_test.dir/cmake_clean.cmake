file(REMOVE_RECURSE
  "CMakeFiles/mutex_maekawa_test.dir/mutex_maekawa_test.cpp.o"
  "CMakeFiles/mutex_maekawa_test.dir/mutex_maekawa_test.cpp.o.d"
  "mutex_maekawa_test"
  "mutex_maekawa_test.pdb"
  "mutex_maekawa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_maekawa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
