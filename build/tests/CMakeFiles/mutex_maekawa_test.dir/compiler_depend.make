# Empty compiler generated dependencies file for mutex_maekawa_test.
# This may be replaced when dependencies are built.
