file(REMOVE_RECURSE
  "CMakeFiles/workload_app_process_test.dir/workload_app_process_test.cpp.o"
  "CMakeFiles/workload_app_process_test.dir/workload_app_process_test.cpp.o.d"
  "workload_app_process_test"
  "workload_app_process_test.pdb"
  "workload_app_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_app_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
