# Empty dependencies file for workload_app_process_test.
# This may be replaced when dependencies are built.
