file(REMOVE_RECURSE
  "CMakeFiles/mutex_endpoint_test.dir/mutex_endpoint_test.cpp.o"
  "CMakeFiles/mutex_endpoint_test.dir/mutex_endpoint_test.cpp.o.d"
  "mutex_endpoint_test"
  "mutex_endpoint_test.pdb"
  "mutex_endpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_endpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
