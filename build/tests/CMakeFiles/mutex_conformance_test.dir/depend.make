# Empty dependencies file for mutex_conformance_test.
# This may be replaced when dependencies are built.
