file(REMOVE_RECURSE
  "CMakeFiles/mutex_conformance_test.dir/mutex_conformance_test.cpp.o"
  "CMakeFiles/mutex_conformance_test.dir/mutex_conformance_test.cpp.o.d"
  "mutex_conformance_test"
  "mutex_conformance_test.pdb"
  "mutex_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
