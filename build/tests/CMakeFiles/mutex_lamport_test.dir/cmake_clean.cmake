file(REMOVE_RECURSE
  "CMakeFiles/mutex_lamport_test.dir/mutex_lamport_test.cpp.o"
  "CMakeFiles/mutex_lamport_test.dir/mutex_lamport_test.cpp.o.d"
  "mutex_lamport_test"
  "mutex_lamport_test.pdb"
  "mutex_lamport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_lamport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
