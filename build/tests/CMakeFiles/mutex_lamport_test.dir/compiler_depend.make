# Empty compiler generated dependencies file for mutex_lamport_test.
# This may be replaced when dependencies are built.
