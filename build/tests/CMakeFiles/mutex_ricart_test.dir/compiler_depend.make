# Empty compiler generated dependencies file for mutex_ricart_test.
# This may be replaced when dependencies are built.
