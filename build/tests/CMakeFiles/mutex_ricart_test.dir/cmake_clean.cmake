file(REMOVE_RECURSE
  "CMakeFiles/mutex_ricart_test.dir/mutex_ricart_test.cpp.o"
  "CMakeFiles/mutex_ricart_test.dir/mutex_ricart_test.cpp.o.d"
  "mutex_ricart_test"
  "mutex_ricart_test.pdb"
  "mutex_ricart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_ricart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
