# Empty compiler generated dependencies file for mutex_bertier_test.
# This may be replaced when dependencies are built.
