file(REMOVE_RECURSE
  "CMakeFiles/mutex_bertier_test.dir/mutex_bertier_test.cpp.o"
  "CMakeFiles/mutex_bertier_test.dir/mutex_bertier_test.cpp.o.d"
  "mutex_bertier_test"
  "mutex_bertier_test.pdb"
  "mutex_bertier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_bertier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
