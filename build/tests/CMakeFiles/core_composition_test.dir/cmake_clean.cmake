file(REMOVE_RECURSE
  "CMakeFiles/core_composition_test.dir/core_composition_test.cpp.o"
  "CMakeFiles/core_composition_test.dir/core_composition_test.cpp.o.d"
  "core_composition_test"
  "core_composition_test.pdb"
  "core_composition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_composition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
