file(REMOVE_RECURSE
  "CMakeFiles/rt_composition_test.dir/rt_composition_test.cpp.o"
  "CMakeFiles/rt_composition_test.dir/rt_composition_test.cpp.o.d"
  "rt_composition_test"
  "rt_composition_test.pdb"
  "rt_composition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_composition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
