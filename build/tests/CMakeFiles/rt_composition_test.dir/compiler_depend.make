# Empty compiler generated dependencies file for rt_composition_test.
# This may be replaced when dependencies are built.
