file(REMOVE_RECURSE
  "CMakeFiles/workload_cli_test.dir/workload_cli_test.cpp.o"
  "CMakeFiles/workload_cli_test.dir/workload_cli_test.cpp.o.d"
  "workload_cli_test"
  "workload_cli_test.pdb"
  "workload_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
