# Empty compiler generated dependencies file for workload_cli_test.
# This may be replaced when dependencies are built.
