# Empty dependencies file for mutex_mueller_test.
# This may be replaced when dependencies are built.
