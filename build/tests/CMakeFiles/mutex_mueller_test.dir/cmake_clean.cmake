file(REMOVE_RECURSE
  "CMakeFiles/mutex_mueller_test.dir/mutex_mueller_test.cpp.o"
  "CMakeFiles/mutex_mueller_test.dir/mutex_mueller_test.cpp.o.d"
  "mutex_mueller_test"
  "mutex_mueller_test.pdb"
  "mutex_mueller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_mueller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
