file(REMOVE_RECURSE
  "CMakeFiles/workload_experiment_test.dir/workload_experiment_test.cpp.o"
  "CMakeFiles/workload_experiment_test.dir/workload_experiment_test.cpp.o.d"
  "workload_experiment_test"
  "workload_experiment_test.pdb"
  "workload_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
