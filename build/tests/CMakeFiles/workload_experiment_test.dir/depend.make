# Empty dependencies file for workload_experiment_test.
# This may be replaced when dependencies are built.
