# Empty dependencies file for property_chaos_test.
# This may be replaced when dependencies are built.
