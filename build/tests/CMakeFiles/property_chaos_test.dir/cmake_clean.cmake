file(REMOVE_RECURSE
  "CMakeFiles/property_chaos_test.dir/property_chaos_test.cpp.o"
  "CMakeFiles/property_chaos_test.dir/property_chaos_test.cpp.o.d"
  "property_chaos_test"
  "property_chaos_test.pdb"
  "property_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
