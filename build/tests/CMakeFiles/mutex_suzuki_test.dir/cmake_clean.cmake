file(REMOVE_RECURSE
  "CMakeFiles/mutex_suzuki_test.dir/mutex_suzuki_test.cpp.o"
  "CMakeFiles/mutex_suzuki_test.dir/mutex_suzuki_test.cpp.o.d"
  "mutex_suzuki_test"
  "mutex_suzuki_test.pdb"
  "mutex_suzuki_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_suzuki_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
