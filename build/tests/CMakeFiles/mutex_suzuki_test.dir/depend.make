# Empty dependencies file for mutex_suzuki_test.
# This may be replaced when dependencies are built.
