file(REMOVE_RECURSE
  "CMakeFiles/mutex_martin_test.dir/mutex_martin_test.cpp.o"
  "CMakeFiles/mutex_martin_test.dir/mutex_martin_test.cpp.o.d"
  "mutex_martin_test"
  "mutex_martin_test.pdb"
  "mutex_martin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutex_martin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
