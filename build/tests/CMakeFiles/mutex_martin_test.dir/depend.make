# Empty dependencies file for mutex_martin_test.
# This may be replaced when dependencies are built.
