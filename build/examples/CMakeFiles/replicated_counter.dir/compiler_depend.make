# Empty compiler generated dependencies file for replicated_counter.
# This may be replaced when dependencies are built.
