file(REMOVE_RECURSE
  "CMakeFiles/multilevel_tour.dir/multilevel_tour.cpp.o"
  "CMakeFiles/multilevel_tour.dir/multilevel_tour.cpp.o.d"
  "multilevel_tour"
  "multilevel_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
