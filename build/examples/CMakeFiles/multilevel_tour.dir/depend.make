# Empty dependencies file for multilevel_tour.
# This may be replaced when dependencies are built.
