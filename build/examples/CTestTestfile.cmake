# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grid_scheduler "/root/repo/build/examples/grid_scheduler")
set_tests_properties(example_grid_scheduler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replicated_counter "/root/repo/build/examples/replicated_counter")
set_tests_properties(example_replicated_counter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_demo "/root/repo/build/examples/adaptive_demo")
set_tests_properties(example_adaptive_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multilevel_tour "/root/repo/build/examples/multilevel_tour")
set_tests_properties(example_multilevel_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_tour "/root/repo/build/examples/paper_tour")
set_tests_properties(example_paper_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_realtime_demo "/root/repo/build/examples/realtime_demo")
set_tests_properties(example_realtime_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
