# Empty dependencies file for gridmutex_cli.
# This may be replaced when dependencies are built.
