file(REMOVE_RECURSE
  "CMakeFiles/gridmutex_cli.dir/gridmutex_cli.cpp.o"
  "CMakeFiles/gridmutex_cli.dir/gridmutex_cli.cpp.o.d"
  "gridmutex_cli"
  "gridmutex_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmutex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
