# Empty dependencies file for fig4a_obtaining_time.
# This may be replaced when dependencies are built.
