file(REMOVE_RECURSE
  "CMakeFiles/analysis_cluster_shape.dir/analysis_cluster_shape.cpp.o"
  "CMakeFiles/analysis_cluster_shape.dir/analysis_cluster_shape.cpp.o.d"
  "analysis_cluster_shape"
  "analysis_cluster_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_cluster_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
