# Empty dependencies file for analysis_cluster_shape.
# This may be replaced when dependencies are built.
