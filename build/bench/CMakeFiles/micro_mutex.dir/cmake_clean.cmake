file(REMOVE_RECURSE
  "CMakeFiles/micro_mutex.dir/micro_mutex.cpp.o"
  "CMakeFiles/micro_mutex.dir/micro_mutex.cpp.o.d"
  "micro_mutex"
  "micro_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
