# Empty dependencies file for micro_mutex.
# This may be replaced when dependencies are built.
