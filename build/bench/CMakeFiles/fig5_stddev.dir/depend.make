# Empty dependencies file for fig5_stddev.
# This may be replaced when dependencies are built.
