file(REMOVE_RECURSE
  "CMakeFiles/fig5_stddev.dir/fig5_stddev.cpp.o"
  "CMakeFiles/fig5_stddev.dir/fig5_stddev.cpp.o.d"
  "fig5_stddev"
  "fig5_stddev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
