# Empty dependencies file for fig3_latency_matrix.
# This may be replaced when dependencies are built.
