# Empty compiler generated dependencies file for analysis_bimodal.
# This may be replaced when dependencies are built.
