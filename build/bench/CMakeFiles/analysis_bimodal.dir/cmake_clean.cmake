file(REMOVE_RECURSE
  "CMakeFiles/analysis_bimodal.dir/analysis_bimodal.cpp.o"
  "CMakeFiles/analysis_bimodal.dir/analysis_bimodal.cpp.o.d"
  "analysis_bimodal"
  "analysis_bimodal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_bimodal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
