# Empty dependencies file for analysis_latency_sensitivity.
# This may be replaced when dependencies are built.
