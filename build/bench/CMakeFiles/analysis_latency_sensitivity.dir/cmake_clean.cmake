file(REMOVE_RECURSE
  "CMakeFiles/analysis_latency_sensitivity.dir/analysis_latency_sensitivity.cpp.o"
  "CMakeFiles/analysis_latency_sensitivity.dir/analysis_latency_sensitivity.cpp.o.d"
  "analysis_latency_sensitivity"
  "analysis_latency_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_latency_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
