# Empty dependencies file for fig4b_intercluster_messages.
# This may be replaced when dependencies are built.
