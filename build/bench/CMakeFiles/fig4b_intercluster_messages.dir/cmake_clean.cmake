file(REMOVE_RECURSE
  "CMakeFiles/fig4b_intercluster_messages.dir/fig4b_intercluster_messages.cpp.o"
  "CMakeFiles/fig4b_intercluster_messages.dir/fig4b_intercluster_messages.cpp.o.d"
  "fig4b_intercluster_messages"
  "fig4b_intercluster_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_intercluster_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
