file(REMOVE_RECURSE
  "CMakeFiles/baseline_bertier.dir/baseline_bertier.cpp.o"
  "CMakeFiles/baseline_bertier.dir/baseline_bertier.cpp.o.d"
  "baseline_bertier"
  "baseline_bertier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_bertier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
