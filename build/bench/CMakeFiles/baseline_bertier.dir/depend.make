# Empty dependencies file for baseline_bertier.
# This may be replaced when dependencies are built.
