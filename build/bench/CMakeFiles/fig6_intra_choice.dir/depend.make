# Empty dependencies file for fig6_intra_choice.
# This may be replaced when dependencies are built.
