file(REMOVE_RECURSE
  "CMakeFiles/fig6_intra_choice.dir/fig6_intra_choice.cpp.o"
  "CMakeFiles/fig6_intra_choice.dir/fig6_intra_choice.cpp.o.d"
  "fig6_intra_choice"
  "fig6_intra_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_intra_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
