file(REMOVE_RECURSE
  "libgridmutex_sim.a"
)
