# Empty compiler generated dependencies file for gridmutex_sim.
# This may be replaced when dependencies are built.
