file(REMOVE_RECURSE
  "CMakeFiles/gridmutex_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/gridmutex_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/gridmutex_sim.dir/sim/random.cpp.o"
  "CMakeFiles/gridmutex_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/gridmutex_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/gridmutex_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/gridmutex_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/gridmutex_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/gridmutex_sim.dir/sim/time.cpp.o"
  "CMakeFiles/gridmutex_sim.dir/sim/time.cpp.o.d"
  "libgridmutex_sim.a"
  "libgridmutex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmutex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
