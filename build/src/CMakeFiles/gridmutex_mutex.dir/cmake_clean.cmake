file(REMOVE_RECURSE
  "CMakeFiles/gridmutex_mutex.dir/mutex/algorithm.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/algorithm.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/bertier.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/bertier.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/central_server.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/central_server.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/endpoint.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/endpoint.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/lamport.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/lamport.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/maekawa.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/maekawa.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/martin.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/martin.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/mueller.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/mueller.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/naimi_trehel.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/naimi_trehel.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/raymond.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/raymond.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/registry.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/registry.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/ricart_agrawala.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/ricart_agrawala.cpp.o.d"
  "CMakeFiles/gridmutex_mutex.dir/mutex/suzuki_kasami.cpp.o"
  "CMakeFiles/gridmutex_mutex.dir/mutex/suzuki_kasami.cpp.o.d"
  "libgridmutex_mutex.a"
  "libgridmutex_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmutex_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
