# Empty dependencies file for gridmutex_mutex.
# This may be replaced when dependencies are built.
