file(REMOVE_RECURSE
  "libgridmutex_mutex.a"
)
