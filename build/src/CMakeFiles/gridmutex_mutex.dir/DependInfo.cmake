
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mutex/algorithm.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/algorithm.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/algorithm.cpp.o.d"
  "/root/repo/src/mutex/bertier.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/bertier.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/bertier.cpp.o.d"
  "/root/repo/src/mutex/central_server.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/central_server.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/central_server.cpp.o.d"
  "/root/repo/src/mutex/endpoint.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/endpoint.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/endpoint.cpp.o.d"
  "/root/repo/src/mutex/lamport.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/lamport.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/lamport.cpp.o.d"
  "/root/repo/src/mutex/maekawa.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/maekawa.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/maekawa.cpp.o.d"
  "/root/repo/src/mutex/martin.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/martin.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/martin.cpp.o.d"
  "/root/repo/src/mutex/mueller.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/mueller.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/mueller.cpp.o.d"
  "/root/repo/src/mutex/naimi_trehel.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/naimi_trehel.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/naimi_trehel.cpp.o.d"
  "/root/repo/src/mutex/raymond.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/raymond.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/raymond.cpp.o.d"
  "/root/repo/src/mutex/registry.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/registry.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/registry.cpp.o.d"
  "/root/repo/src/mutex/ricart_agrawala.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/ricart_agrawala.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/ricart_agrawala.cpp.o.d"
  "/root/repo/src/mutex/suzuki_kasami.cpp" "src/CMakeFiles/gridmutex_mutex.dir/mutex/suzuki_kasami.cpp.o" "gcc" "src/CMakeFiles/gridmutex_mutex.dir/mutex/suzuki_kasami.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gridmutex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gridmutex_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
