file(REMOVE_RECURSE
  "libgridmutex_rt.a"
)
