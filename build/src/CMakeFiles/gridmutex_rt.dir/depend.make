# Empty dependencies file for gridmutex_rt.
# This may be replaced when dependencies are built.
