file(REMOVE_RECURSE
  "CMakeFiles/gridmutex_rt.dir/rt/composition.cpp.o"
  "CMakeFiles/gridmutex_rt.dir/rt/composition.cpp.o.d"
  "CMakeFiles/gridmutex_rt.dir/rt/endpoint.cpp.o"
  "CMakeFiles/gridmutex_rt.dir/rt/endpoint.cpp.o.d"
  "CMakeFiles/gridmutex_rt.dir/rt/runtime.cpp.o"
  "CMakeFiles/gridmutex_rt.dir/rt/runtime.cpp.o.d"
  "libgridmutex_rt.a"
  "libgridmutex_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmutex_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
