# Empty compiler generated dependencies file for gridmutex_core.
# This may be replaced when dependencies are built.
