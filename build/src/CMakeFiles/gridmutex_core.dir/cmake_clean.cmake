file(REMOVE_RECURSE
  "CMakeFiles/gridmutex_core.dir/core/adaptive.cpp.o"
  "CMakeFiles/gridmutex_core.dir/core/adaptive.cpp.o.d"
  "CMakeFiles/gridmutex_core.dir/core/composition.cpp.o"
  "CMakeFiles/gridmutex_core.dir/core/composition.cpp.o.d"
  "CMakeFiles/gridmutex_core.dir/core/coordinator.cpp.o"
  "CMakeFiles/gridmutex_core.dir/core/coordinator.cpp.o.d"
  "CMakeFiles/gridmutex_core.dir/core/multilevel.cpp.o"
  "CMakeFiles/gridmutex_core.dir/core/multilevel.cpp.o.d"
  "libgridmutex_core.a"
  "libgridmutex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmutex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
