file(REMOVE_RECURSE
  "libgridmutex_core.a"
)
