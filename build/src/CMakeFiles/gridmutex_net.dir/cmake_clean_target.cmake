file(REMOVE_RECURSE
  "libgridmutex_net.a"
)
