# Empty compiler generated dependencies file for gridmutex_net.
# This may be replaced when dependencies are built.
