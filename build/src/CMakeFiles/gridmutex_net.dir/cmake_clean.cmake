file(REMOVE_RECURSE
  "CMakeFiles/gridmutex_net.dir/net/latency.cpp.o"
  "CMakeFiles/gridmutex_net.dir/net/latency.cpp.o.d"
  "CMakeFiles/gridmutex_net.dir/net/network.cpp.o"
  "CMakeFiles/gridmutex_net.dir/net/network.cpp.o.d"
  "CMakeFiles/gridmutex_net.dir/net/topology.cpp.o"
  "CMakeFiles/gridmutex_net.dir/net/topology.cpp.o.d"
  "CMakeFiles/gridmutex_net.dir/net/trace.cpp.o"
  "CMakeFiles/gridmutex_net.dir/net/trace.cpp.o.d"
  "CMakeFiles/gridmutex_net.dir/net/wire.cpp.o"
  "CMakeFiles/gridmutex_net.dir/net/wire.cpp.o.d"
  "libgridmutex_net.a"
  "libgridmutex_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmutex_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
