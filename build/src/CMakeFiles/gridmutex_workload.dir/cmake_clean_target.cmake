file(REMOVE_RECURSE
  "libgridmutex_workload.a"
)
