file(REMOVE_RECURSE
  "CMakeFiles/gridmutex_workload.dir/workload/app_process.cpp.o"
  "CMakeFiles/gridmutex_workload.dir/workload/app_process.cpp.o.d"
  "CMakeFiles/gridmutex_workload.dir/workload/cli.cpp.o"
  "CMakeFiles/gridmutex_workload.dir/workload/cli.cpp.o.d"
  "CMakeFiles/gridmutex_workload.dir/workload/experiment.cpp.o"
  "CMakeFiles/gridmutex_workload.dir/workload/experiment.cpp.o.d"
  "CMakeFiles/gridmutex_workload.dir/workload/report.cpp.o"
  "CMakeFiles/gridmutex_workload.dir/workload/report.cpp.o.d"
  "CMakeFiles/gridmutex_workload.dir/workload/runner.cpp.o"
  "CMakeFiles/gridmutex_workload.dir/workload/runner.cpp.o.d"
  "CMakeFiles/gridmutex_workload.dir/workload/thread_pool.cpp.o"
  "CMakeFiles/gridmutex_workload.dir/workload/thread_pool.cpp.o.d"
  "libgridmutex_workload.a"
  "libgridmutex_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmutex_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
