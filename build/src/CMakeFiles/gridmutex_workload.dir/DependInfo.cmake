
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_process.cpp" "src/CMakeFiles/gridmutex_workload.dir/workload/app_process.cpp.o" "gcc" "src/CMakeFiles/gridmutex_workload.dir/workload/app_process.cpp.o.d"
  "/root/repo/src/workload/cli.cpp" "src/CMakeFiles/gridmutex_workload.dir/workload/cli.cpp.o" "gcc" "src/CMakeFiles/gridmutex_workload.dir/workload/cli.cpp.o.d"
  "/root/repo/src/workload/experiment.cpp" "src/CMakeFiles/gridmutex_workload.dir/workload/experiment.cpp.o" "gcc" "src/CMakeFiles/gridmutex_workload.dir/workload/experiment.cpp.o.d"
  "/root/repo/src/workload/report.cpp" "src/CMakeFiles/gridmutex_workload.dir/workload/report.cpp.o" "gcc" "src/CMakeFiles/gridmutex_workload.dir/workload/report.cpp.o.d"
  "/root/repo/src/workload/runner.cpp" "src/CMakeFiles/gridmutex_workload.dir/workload/runner.cpp.o" "gcc" "src/CMakeFiles/gridmutex_workload.dir/workload/runner.cpp.o.d"
  "/root/repo/src/workload/thread_pool.cpp" "src/CMakeFiles/gridmutex_workload.dir/workload/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gridmutex_workload.dir/workload/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gridmutex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gridmutex_mutex.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gridmutex_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gridmutex_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
