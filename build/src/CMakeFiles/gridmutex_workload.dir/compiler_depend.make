# Empty compiler generated dependencies file for gridmutex_workload.
# This may be replaced when dependencies are built.
