// ThreadAffinityGuard and its deployments (Network, BufferPool): the
// runtime spelling of the single-thread-affinity capability that Clang's
// thread-safety analysis cannot express (there is no mutex to annotate).
//
// The guard is compiled in whenever NDEBUG is off or
// GRIDMUTEX_THREAD_AFFINITY_CHECKS is defined; in plain release builds the
// checks are no-ops and the death tests here self-skip (the zero-overhead
// half of the contract is covered by the unchanged BENCH rows).
#include "gridmutex/core/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "gridmutex/net/buffer_pool.hpp"
#include "gridmutex/net/network.hpp"

namespace gmx {
namespace {

TEST(ThreadAffinityGuard, SameThreadUseIsFree) {
  ThreadAffinityGuard guard;
  guard.check("test");
  guard.check("test");  // re-checks from the pinning thread never fire
  SUCCEED();
}

TEST(ThreadAffinityGuard, PinsToFirstUserNotConstructor) {
  // Construction must not pin: SweepRunner cells build pools on the main
  // thread pattern only when the *first use* is there too.
  ThreadAffinityGuard guard;
  std::thread t([&] {
    guard.check("test");
    guard.check("test");
  });
  t.join();
#if GMX_AFFINITY_GUARD_ENABLED
  EXPECT_DEATH(guard.check("pinned elsewhere"), "pinned elsewhere");
#endif
}

TEST(ThreadAffinityGuard, ResetAllowsRepinning) {
  ThreadAffinityGuard guard;
  guard.check("test");
  guard.reset();
  std::thread t([&] { guard.check("test"); });  // legal: fresh pin
  t.join();
}

#if GMX_AFFINITY_GUARD_ENABLED

TEST(ThreadAffinityGuardDeath, SecondThreadAborts) {
  ThreadAffinityGuard guard;
  guard.check("affinity violated");
  EXPECT_DEATH(
      {
        std::thread t([&] { guard.check("affinity violated"); });
        t.join();
      },
      "affinity violated");
}

TEST(NetworkAffinityDeath, CrossThreadSendAborts) {
  Simulator sim;
  Topology topo = Topology::uniform(1, 2);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  net.attach(1, 1, [](const Message&) {});  // pins to this thread
  Message m;
  m.src = 0;
  m.dst = 1;
  m.protocol = 1;
  EXPECT_DEATH(
      {
        std::thread t([&] { net.send(m); });
        t.join();
      },
      "simulation-thread affinity");
}

TEST(BufferPoolAffinityDeath, CrossThreadAcquireAborts) {
  BufferPool pool;
  const std::vector<std::uint8_t> bytes(8, std::uint8_t(0x11));
  { Payload p = pool.acquire(bytes); }  // pins the free-list to this thread
  EXPECT_DEATH(
      {
        std::thread t([&] { Payload p = pool.acquire(bytes); });
        t.join();
      },
      "single-thread property");
}

#endif  // GMX_AFFINITY_GUARD_ENABLED

TEST(BufferPoolAffinity, HeapBlocksMayCrossThreads) {
  // Heap-origin handles (origin == nullptr) are the documented exception:
  // rt/ moves them across node threads. Releasing one on a foreign thread
  // must never trip the pool guard.
  Payload made_elsewhere;
  std::thread t([&] {
    Payload p;
    p.assign(16, std::uint8_t(0xAB));
    made_elsewhere = std::move(p);
  });
  t.join();
  EXPECT_EQ(made_elsewhere.size(), 16u);
  made_elsewhere.clear();  // releases the heap block on this thread: legal
}

}  // namespace
}  // namespace gmx
