// White-box tests of Suzuki-Kasami: RN/LN bookkeeping, N messages per CS
// (§2.3), O(N) token payload (§4.7), queue fairness quirk (§4.6), and
// tolerance to non-FIFO delivery via sequence numbers.
#include "gridmutex/mutex/suzuki_kasami.hpp"

#include <gtest/gtest.h>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

SuzukiKasamiMutex& algo(MutexHarness& h, int rank) {
  return dynamic_cast<SuzukiKasamiMutex&>(h.ep(rank).algorithm());
}

TEST(Suzuki, HolderEntersWithoutMessages) {
  MutexHarness h({.participants = 6, .algorithm = "suzuki", .holder_rank = 3});
  h.request(3);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 0u);
}

TEST(Suzuki, RemoteCsCostsExactlyNMessages) {
  // N-1 broadcast requests + 1 token message (§2.3).
  const int n = 7;
  MutexHarness h({.participants = n, .algorithm = "suzuki", .holder_rank = 0});
  h.request(4);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, std::uint64_t(n));
}

TEST(Suzuki, EverybodyLearnsTheSequenceNumber) {
  MutexHarness h({.participants = 4, .algorithm = "suzuki", .holder_rank = 0});
  h.request(2);
  h.run();
  for (int r = 0; r < 4; ++r) EXPECT_EQ(algo(h, r).rn(2), 1u) << r;
  h.release(2);
  h.run();
  // 2 kept the token; its next request is local — no broadcast, so only 2
  // itself bumps RN[2].
  h.request(2);
  h.run();
  EXPECT_EQ(algo(h, 2).rn(2), 2u);
  for (int r : {0, 1, 3}) EXPECT_EQ(algo(h, r).rn(2), 1u) << r;
  // Once the token moves away and 2 requests again, the broadcast spreads
  // the new sequence number.
  h.release(2);
  h.run();
  h.request(0);
  h.run();
  h.release(0);
  h.run();
  h.request(2);
  h.run();
  for (int r = 0; r < 4; ++r) EXPECT_EQ(algo(h, r).rn(2), 3u) << r;
}

TEST(Suzuki, TokenQueueCollectsWaiters) {
  MutexHarness h({.participants = 5, .algorithm = "suzuki", .holder_rank = 0});
  h.request(0);
  h.run();
  h.request(1);
  h.request(3);
  h.run();
  EXPECT_TRUE(h.ep(0).has_pending_requests());
  h.release(0);
  h.run();
  // 0 released: queue filled from rank scan starting at 1 → {1,3}; token to
  // 1, queue carries {3}.
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 1}));
  EXPECT_EQ(algo(h, 1).token_queue(), (std::deque<std::uint32_t>{3}));
  h.release(1);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 1, 3}));
}

TEST(Suzuki, RankScanOrderIgnoresArrivalTimes) {
  // §4.6: Suzuki appends by RN scan, not arrival time. Holder 0 in CS; rank
  // 4 asks first, rank 1 asks later — yet 1 is served before 4 because the
  // release scan starts at holder+1.
  MutexHarness h({.participants = 5, .algorithm = "suzuki", .holder_rank = 0});
  h.request(0);
  h.run();
  h.request(4);
  h.run();  // 4's request fully delivered
  h.request(1);
  h.run();
  h.release(0);
  h.run();
  h.release(1);
  h.run();
  h.release(4);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 1, 4}));
}

TEST(Suzuki, TokenPayloadGrowsLinearlyWithN) {
  // §4.7's scalability argument: the token carries LN[N] and Q.
  auto token_bytes = [](int n) {
    MutexHarness h({.participants = n, .algorithm = "suzuki",
                    .holder_rank = 0});
    std::size_t bytes = 0;
    h.net().set_tracer([&](const Message& m, SimTime, SimTime) {
      if (m.type == SuzukiKasamiMutex::kToken) bytes = m.wire_size();
    });
    h.request(n - 1);
    h.run();
    return bytes;
  };
  const std::size_t small = token_bytes(8);
  const std::size_t big = token_bytes(64);
  EXPECT_GT(big, small + 40);  // ~1 varint per extra participant
}

TEST(Suzuki, IdleHolderGrantsImmediately) {
  MutexHarness h({.participants = 3, .algorithm = "suzuki", .holder_rank = 0});
  h.request(1);
  h.run();
  EXPECT_TRUE(h.pending_events().empty());
  EXPECT_TRUE(h.ep(1).holds_token());
}

TEST(Suzuki, PendingObserverFiresForHolderInCs) {
  MutexHarness h({.participants = 3, .algorithm = "suzuki", .holder_rank = 0});
  h.request(0);
  h.run();
  h.request(2);
  h.run();
  ASSERT_GE(h.pending_events().size(), 1u);
  EXPECT_EQ(h.pending_events()[0], 0);
}

TEST(Suzuki, StaleRequestDoesNotStealToken) {
  // After 1's request is satisfied, replaying its old request (duplicate
  // delivery) at the idle holder must not re-grant.
  MutexHarness h({.participants = 3, .algorithm = "suzuki", .holder_rank = 0});
  h.request(1);
  h.run();
  h.release(1);
  h.run();
  // Token is idle at 1. A stale message is one whose seq <= LN: for rank 0
  // (which never requested) LN[0]=0, so a duplicate with seq=0 must be
  // ignored by the idle holder.
  wire::Writer stale;
  stale.varint(0);
  Message m;
  m.src = 0;
  m.dst = 1;
  m.protocol = 1;
  m.type = SuzukiKasamiMutex::kRequest;
  m.payload.assign(stale.view().begin(), stale.view().end());
  h.net().send(std::move(m));
  h.run();
  EXPECT_TRUE(h.ep(1).holds_token());  // not granted away
  EXPECT_EQ(h.grants().size(), 1u);
}

TEST(Suzuki, ToleratesNonFifoDelivery) {
  // Sequence numbers make Suzuki robust to reordering (DESIGN.md §6).
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    MutexHarness h({.participants = 6, .algorithm = "suzuki",
                    .seed = seed, .fifo = false});
    h.net().set_reorder_spread(SimDuration::ms(5));
    h.set_auto_release(SimDuration::ms(1));
    for (int r = 0; r < 6; ++r) h.drive(r, 5, SimDuration::ms(2));
    h.run();
    EXPECT_FALSE(h.safety_violated()) << seed;
    for (int r = 0; r < 6; ++r) EXPECT_EQ(h.grant_count(r), 5) << seed;
  }
}

TEST(Suzuki, MalformedTokenPayloadThrows) {
  MutexHarness h({.participants = 3, .algorithm = "suzuki", .holder_rank = 0});
  h.request(1);  // 1 is Requesting, will accept a token
  h.run_for(SimDuration::us(1));
  Message m;
  m.src = 0;
  m.dst = 1;
  m.protocol = 1;
  m.type = SuzukiKasamiMutex::kToken;
  m.payload = {0x01};  // truncated arrays
  h.net().send(std::move(m));
  EXPECT_THROW(h.run(), wire::WireError);
}

TEST(Suzuki, TokenLnSizeMismatchThrows) {
  MutexHarness h({.participants = 3, .algorithm = "suzuki", .holder_rank = 0});
  h.request(1);
  h.run_for(SimDuration::us(1));
  wire::Writer w;
  const std::vector<std::uint64_t> ln = {0, 0};  // wrong: size 2, need 3
  w.varint_array(std::span<const std::uint64_t>(ln));
  const std::vector<std::uint32_t> q;
  w.varint_array(std::span<const std::uint32_t>(q));
  Message m;
  m.src = 0;
  m.dst = 1;
  m.protocol = 1;
  m.type = SuzukiKasamiMutex::kToken;
  m.payload.assign(w.view().begin(), w.view().end());
  h.net().send(std::move(m));
  EXPECT_THROW(h.run(), wire::WireError);
}

}  // namespace
}  // namespace gmx::testing
