// Adaptive composition tests (paper §6 future work): regime classification,
// quiesce-and-swap reconfiguration, and safety across switches.
#include "gridmutex/core/adaptive.hpp"

#include <gtest/gtest.h>

#include "composition_harness.hpp"

namespace gmx::testing {
namespace {

TEST(AdaptivePolicy, RegimeThresholds) {
  CompositionHarness h({});
  AdaptiveComposition ada(h.net(), h.comp(), AdaptiveConfig{});
  EXPECT_EQ(ada.pick_algorithm(0.9), "martin");
  EXPECT_EQ(ada.pick_algorithm(0.60), "martin");
  EXPECT_EQ(ada.pick_algorithm(0.4), "naimi");
  EXPECT_EQ(ada.pick_algorithm(0.20), "suzuki");
  EXPECT_EQ(ada.pick_algorithm(0.0), "suzuki");
}

TEST(AdaptivePolicy, RejectsUnknownTargets) {
  CompositionHarness h({});
  AdaptiveConfig cfg;
  cfg.low_algorithm = "nope";
  EXPECT_THROW(AdaptiveComposition(h.net(), h.comp(), cfg),
               std::invalid_argument);
}

TEST(Adaptive, IdleGridSwitchesTowardSuzuki) {
  // No demand at all → demand fraction 0 → high-parallelism regime.
  CompositionHarness h({.inter = "naimi"});
  AdaptiveConfig cfg;
  cfg.sample_every = SimDuration::ms(20);
  cfg.epoch = SimDuration::ms(200);
  AdaptiveComposition ada(h.net(), h.comp(), cfg);
  h.start();
  ada.start();
  h.run_for(SimDuration::ms(500));
  ada.stop();
  h.run();
  EXPECT_EQ(ada.current_inter(), "suzuki");
  EXPECT_EQ(ada.switches_completed(), 1);
  EXPECT_LE(ada.last_demand_fraction(), 0.2);
}

TEST(Adaptive, SaturatedGridSwitchesTowardMartin) {
  CompositionHarness h({.inter = "naimi",
                        .clusters = 3,
                        .apps_per_cluster = 3});
  AdaptiveConfig cfg;
  cfg.sample_every = SimDuration::ms(20);
  cfg.epoch = SimDuration::ms(300);
  AdaptiveComposition ada(h.net(), h.comp(), cfg);
  h.set_auto_release(SimDuration::ms(5));
  h.start();
  ada.start();
  // Heavy demand everywhere: every app loops with negligible think time.
  for (NodeId v : h.comp().app_nodes()) h.drive(v, 2000, SimDuration::us(10));
  h.run_for(SimDuration::sec(3));
  ada.stop();
  EXPECT_EQ(ada.current_inter(), "martin");
  EXPECT_GE(ada.switches_completed(), 1);
  EXPECT_FALSE(h.safety_violated());
  EXPECT_GE(ada.last_demand_fraction(), 0.6);
}

TEST(Adaptive, WorkloadSurvivesSwitchSafely) {
  // Run a full workload across at least one switch and verify liveness:
  // every request issued is eventually granted, despite the pause/drain.
  CompositionHarness h({.inter = "naimi", .seed = 3});
  AdaptiveConfig cfg;
  cfg.sample_every = SimDuration::ms(10);
  cfg.epoch = SimDuration::ms(150);
  AdaptiveComposition ada(h.net(), h.comp(), cfg);
  h.set_auto_release(SimDuration::ms(2));
  h.start();
  ada.start();
  const int cycles = 40;
  for (NodeId v : h.comp().app_nodes())
    h.drive(v, cycles, SimDuration::us(200));
  h.run_for(SimDuration::sec(5));
  ada.stop();
  h.run();  // drain
  EXPECT_GE(ada.switches_completed(), 1);
  EXPECT_FALSE(h.safety_violated());
  for (NodeId v : h.comp().app_nodes())
    EXPECT_EQ(h.grant_count(v), cycles) << "node " << v;
}

TEST(Adaptive, NoSwitchWhenRegimeStable) {
  // Start with the algorithm the regime already calls for: no switches.
  CompositionHarness h({.inter = "suzuki"});
  AdaptiveConfig cfg;
  cfg.sample_every = SimDuration::ms(20);
  cfg.epoch = SimDuration::ms(200);
  AdaptiveComposition ada(h.net(), h.comp(), cfg);
  h.set_auto_release(SimDuration::ms(1));
  h.start();
  ada.start();
  // Very sparse demand: one cluster pokes occasionally.
  const NodeId app = h.topo().first_node_of(1) + 1;
  h.drive(app, 5, SimDuration::ms(100));
  h.run_for(SimDuration::sec(1));
  ada.stop();
  h.run();
  EXPECT_EQ(ada.switches_completed(), 0);
  EXPECT_EQ(ada.current_inter(), "suzuki");
  EXPECT_EQ(h.grant_count(app), 5);
}

TEST(Adaptive, TokenLocationSurvivesSwap) {
  // Give the inter token to cluster 2, let the controller swap algorithms,
  // and check the new instance starts with the token at cluster 2.
  CompositionHarness h({.inter = "naimi"});
  AdaptiveConfig cfg;
  cfg.sample_every = SimDuration::ms(20);
  cfg.epoch = SimDuration::ms(200);
  AdaptiveComposition ada(h.net(), h.comp(), cfg);
  h.set_auto_release(SimDuration::ms(1));
  h.start();
  const NodeId app2 = h.topo().first_node_of(2) + 1;
  h.drive(app2, 1, SimDuration::ms(1));
  h.run();  // cluster 2 acquires and keeps the inter token
  ada.start();
  h.run_for(SimDuration::ms(600));
  ada.stop();
  h.run();
  ASSERT_EQ(ada.switches_completed(), 1);
  EXPECT_EQ(ada.current_inter(), "suzuki");
  EXPECT_TRUE(h.comp().coordinator(2).inter().holds_token());
  // And the swapped instance still works end to end.
  const NodeId app0 = h.topo().first_node_of(0) + 1;
  h.request(app0);
  h.run();
  EXPECT_EQ(h.grant_count(app0), 1);
  EXPECT_FALSE(h.safety_violated());
}

TEST(Adaptive, SwitchIsQuiescentBeforeSwap) {
  // During do_swap no inter message may be in flight; the easiest check is
  // that a switch under load never trips endpoint/protocol asserts and the
  // run drains cleanly (asserts would abort the process).
  CompositionHarness h({.inter = "martin", .seed = 9});
  AdaptiveConfig cfg;
  cfg.sample_every = SimDuration::ms(10);
  cfg.epoch = SimDuration::ms(100);
  AdaptiveComposition ada(h.net(), h.comp(), cfg);
  h.set_auto_release(SimDuration::ms(1));
  h.start();
  ada.start();
  Rng rng(9);
  for (NodeId v : h.comp().app_nodes())
    h.drive(v, 30, SimDuration::ms(std::int64_t(rng.next_below(30)) + 1));
  h.run_for(SimDuration::sec(4));
  ada.stop();
  h.run();
  EXPECT_FALSE(h.safety_violated());
  EXPECT_EQ(h.net().in_flight(), 0u);
  for (NodeId v : h.comp().app_nodes()) EXPECT_EQ(h.grant_count(v), 30);
}

}  // namespace
}  // namespace gmx::testing
