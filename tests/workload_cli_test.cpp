// CLI argument parsing tests (tools/gridmutex_cli front end).
#include "gridmutex/workload/cli.hpp"

#include <gtest/gtest.h>

namespace gmx::testing {
namespace {

std::variant<CliOptions, CliError> parse(
    std::initializer_list<std::string_view> args) {
  std::vector<std::string_view> v(args);
  return parse_cli(v);
}

CliOptions ok(const std::variant<CliOptions, CliError>& r) {
  if (const auto* err = std::get_if<CliError>(&r)) {
    ADD_FAILURE() << "unexpected parse error: " << err->message;
    return {};
  }
  return std::get<CliOptions>(r);
}

std::string fail(const std::variant<CliOptions, CliError>& r) {
  if (!std::holds_alternative<CliError>(r)) {
    ADD_FAILURE() << "expected a parse error";
    return "";
  }
  return std::get<CliError>(r).message;
}

TEST(Cli, DefaultsToSingleNaimiNaimiSeries) {
  const auto o = ok(parse({}));
  ASSERT_EQ(o.series.size(), 1u);
  EXPECT_EQ(o.series[0].label(), "Naimi-Naimi");
  EXPECT_EQ(o.series[0].clusters, 9u);
  EXPECT_EQ(o.series[0].apps_per_cluster, 20u);
  EXPECT_EQ(o.series[0].workload.cs_count, 100);
  EXPECT_EQ(o.repetitions, 5);
  EXPECT_EQ(o.rhos.size(), 5u);
  EXPECT_FALSE(o.csv_path.has_value());
}

TEST(Cli, HelpShortCircuits) {
  EXPECT_TRUE(ok(parse({"--help"})).help);
  EXPECT_TRUE(ok(parse({"-h"})).help);
  EXPECT_NE(cli_usage().find("--composition"), std::string::npos);
}

TEST(Cli, CompositionSeries) {
  const auto o = ok(parse({"--composition", "suzuki-martin"}));
  ASSERT_EQ(o.series.size(), 1u);
  EXPECT_EQ(o.series[0].intra, "suzuki");
  EXPECT_EQ(o.series[0].inter, "martin");
}

TEST(Cli, MultipleSeriesAccumulate) {
  const auto o = ok(parse({"--composition", "naimi-martin", "--flat",
                            "naimi", "--composition", "naimi-suzuki"}));
  ASSERT_EQ(o.series.size(), 3u);
  EXPECT_EQ(o.series[1].mode, ExperimentConfig::Mode::kFlat);
  EXPECT_EQ(o.series[1].flat_algorithm, "naimi");
}

TEST(Cli, SharedParametersApplyToAllSeries) {
  const auto& o =
      ok(parse({"--flat", "suzuki", "--composition", "naimi-naimi",
                "--clusters", "4", "--apps", "7", "--cs", "17", "--seed",
                "99", "--latency", "1:25", "--alpha-ms", "2.5"}));
  for (const auto& s : o.series) {
    EXPECT_EQ(s.clusters, 4u);
    EXPECT_EQ(s.apps_per_cluster, 7u);
    EXPECT_EQ(s.workload.cs_count, 17);
    EXPECT_EQ(s.seed, 99u);
    EXPECT_EQ(s.latency.kind, LatencySpec::Kind::kTwoLevel);
    EXPECT_EQ(s.latency.lan, SimDuration::ms(1));
    EXPECT_EQ(s.latency.wan, SimDuration::ms(25));
    EXPECT_EQ(s.workload.alpha, SimDuration::ms_f(2.5));
  }
}

TEST(Cli, RhoListParses) {
  const auto o = ok(parse({"--rho", "45,90.5,1080"}));
  EXPECT_EQ(o.rhos, (std::vector<double>{45, 90.5, 1080}));
}

TEST(Cli, CsvAndThreads) {
  const auto o = ok(parse({"--csv", "out.csv", "--threads", "3"}));
  EXPECT_EQ(o.csv_path, "out.csv");
  EXPECT_EQ(o.threads, 3u);
}

TEST(Cli, JobsIsThreadsSpelledForSweeps) {
  EXPECT_EQ(ok(parse({"--jobs", "8"})).threads, 8u);
  EXPECT_NE(fail(parse({"--jobs", "many"})).find("--jobs"),
            std::string::npos);
}

TEST(Cli, UnknownAlgorithmRejected) {
  EXPECT_NE(fail(parse({"--flat", "dijkstra"})).find("unknown"),
            std::string::npos);
  EXPECT_NE(fail(parse({"--composition", "naimi-dijkstra"})).find("unknown"),
            std::string::npos);
}

TEST(Cli, MalformedCompositionRejected) {
  EXPECT_FALSE(fail(parse({"--composition", "naimi"})).empty());
}

TEST(Cli, MissingValuesRejected) {
  EXPECT_FALSE(fail(parse({"--flat"})).empty());
  EXPECT_FALSE(fail(parse({"--rho"})).empty());
  EXPECT_FALSE(fail(parse({"--csv"})).empty());
}

TEST(Cli, BadNumbersRejected) {
  EXPECT_FALSE(fail(parse({"--clusters", "zero"})).empty());
  EXPECT_FALSE(fail(parse({"--clusters", "0"})).empty());
  EXPECT_FALSE(fail(parse({"--rho", "45,,90"})).empty());
  EXPECT_FALSE(fail(parse({"--rho", "-2"})).empty());
  EXPECT_FALSE(fail(parse({"--jitter", "1.5"})).empty());
  EXPECT_FALSE(fail(parse({"--cs", "1.5"})).empty());
}

TEST(Cli, BadLatencyRejected) {
  EXPECT_FALSE(fail(parse({"--latency", "fast"})).empty());
  EXPECT_FALSE(fail(parse({"--latency", "1:"})).empty());
  EXPECT_FALSE(fail(parse({"--latency", "-1:10"})).empty());
}

TEST(Cli, Grid5000RequiresNineClusters) {
  EXPECT_NE(fail(parse({"--clusters", "4"})).find("grid5000"),
            std::string::npos);
  // But two-level latency lifts the restriction.
  const auto o = ok(parse({"--clusters", "4", "--latency", "0.5:10"}));
  EXPECT_EQ(o.series[0].clusters, 4u);
}

TEST(Cli, UnknownFlagRejected) {
  EXPECT_NE(fail(parse({"--frobnicate"})).find("unknown argument"),
            std::string::npos);
}

TEST(Cli, MultilevelSeriesParses) {
  const auto o = ok(parse({"--multilevel", "2x2x3", "--algorithms",
                           "naimi,naimi,martin", "--delays", "0.5,5,40"}));
  ASSERT_EQ(o.series.size(), 1u);
  const auto& cfg = o.series[0];
  EXPECT_EQ(cfg.mode, ExperimentConfig::Mode::kMultiLevel);
  ASSERT_TRUE(cfg.hierarchy.has_value());
  EXPECT_EQ(cfg.hierarchy->arity, (std::vector<std::uint32_t>{2, 2, 3}));
  EXPECT_EQ(cfg.hierarchy->algorithms,
            (std::vector<std::string>{"naimi", "naimi", "martin"}));
  ASSERT_EQ(cfg.level_delays.size(), 3u);
  EXPECT_EQ(cfg.level_delays[2], SimDuration::ms(40));
  EXPECT_EQ(cfg.label(), "ML[Naimi-Naimi-Martin]");
}

TEST(Cli, MultilevelRequiresMatchingLists) {
  EXPECT_FALSE(fail(parse({"--multilevel", "2x2"})).empty());
  EXPECT_FALSE(fail(parse({"--multilevel", "2x2", "--algorithms", "naimi",
                           "--delays", "1,2"}))
                   .empty());
  EXPECT_FALSE(fail(parse({"--multilevel", "2x2", "--algorithms",
                           "naimi,naimi", "--delays", "1"}))
                   .empty());
  EXPECT_FALSE(fail(parse({"--multilevel", "2"})).empty());
  EXPECT_FALSE(fail(parse({"--multilevel", "2xfoo", "--algorithms",
                           "naimi,naimi", "--delays", "1,2"}))
                   .empty());
}

TEST(Cli, MultilevelDoesNotNeedNineClusters) {
  // Multilevel derives its own topology; the grid5000 9-cluster rule only
  // applies to flat/composition series.
  const auto o = ok(parse({"--multilevel", "2x2", "--algorithms",
                           "naimi,naimi", "--delays", "0.5,10"}));
  EXPECT_EQ(o.series[0].mode, ExperimentConfig::Mode::kMultiLevel);
}

TEST(Cli, MultilevelCombinesWithOtherSeries) {
  const auto o = ok(parse({"--flat", "naimi", "--multilevel", "2x2",
                           "--algorithms", "naimi,naimi", "--delays",
                           "0.5,10", "--cs", "7"}));
  ASSERT_EQ(o.series.size(), 2u);
  EXPECT_EQ(o.series[0].mode, ExperimentConfig::Mode::kFlat);
  EXPECT_EQ(o.series[1].mode, ExperimentConfig::Mode::kMultiLevel);
  EXPECT_EQ(o.series[1].workload.cs_count, 7);
}

TEST(Cli, ListAlgorithmsShortCircuits) {
  EXPECT_TRUE(ok(parse({"--list-algorithms"})).list_algorithms);
  // Like --help, it wins even when other (possibly bad) flags follow.
  EXPECT_TRUE(ok(parse({"--list-algorithms", "--clusters", "zero"}))
                  .list_algorithms);
  EXPECT_FALSE(ok(parse({})).list_algorithms);
  EXPECT_NE(cli_usage().find("--list-algorithms"), std::string::npos);
}

TEST(Cli, ServiceModeFlagsParse) {
  const auto o = ok(parse({"--locks", "16", "--zipf", "1.2", "--placement",
                           "hash"}));
  EXPECT_EQ(o.locks, 16u);
  EXPECT_EQ(o.zipf_s, 1.2);
  EXPECT_EQ(o.placement, "hash");
  ASSERT_EQ(o.series.size(), 1u);  // default composition series still set
}

TEST(Cli, ServiceModeDefaultsAreOff) {
  const auto o = ok(parse({}));
  EXPECT_EQ(o.locks, 0u);  // 0 = classic sweep, no LockService
  EXPECT_EQ(o.placement, "roundrobin");
}

TEST(Cli, PlacementAliasesAndValidation) {
  EXPECT_EQ(ok(parse({"--locks", "4", "--placement", "rr"})).placement, "rr");
  EXPECT_NE(fail(parse({"--locks", "4", "--placement", "random"}))
                .find("placement"),
            std::string::npos);
}

TEST(Cli, ServiceFlagsRequireLocks) {
  EXPECT_NE(fail(parse({"--zipf", "0.9"})).find("--locks"),
            std::string::npos);
  EXPECT_NE(fail(parse({"--placement", "hash"})).find("--locks"),
            std::string::npos);
}

TEST(Cli, ServiceModeRejectsNonCompositionSeries) {
  EXPECT_FALSE(fail(parse({"--locks", "4", "--flat", "naimi"})).empty());
  EXPECT_FALSE(fail(parse({"--locks", "4", "--multilevel", "2x2",
                           "--algorithms", "naimi,naimi", "--delays", "1,2"}))
                   .empty());
  // Composition series multiplex fine.
  const auto o = ok(parse({"--locks", "4", "--composition", "suzuki-martin"}));
  EXPECT_EQ(o.series[0].intra, "suzuki");
}

TEST(Cli, ServiceBadValuesRejected) {
  EXPECT_FALSE(fail(parse({"--locks", "0"})).empty());
  EXPECT_FALSE(fail(parse({"--locks", "four"})).empty());
  EXPECT_FALSE(fail(parse({"--locks", "4", "--zipf", "-0.5"})).empty());
  EXPECT_FALSE(fail(parse({"--locks"})).empty());
}

TEST(Cli, ParsedConfigActuallyRuns) {
  // End-to-end: a parsed tiny config must execute.
  const auto o = ok(parse({"--flat", "martin", "--clusters", "2", "--apps",
                            "2", "--cs", "2", "--latency", "0.5:5", "--rho",
                            "10"}));
  ExperimentConfig cfg = o.series[0];
  cfg.workload.rho = o.rhos[0];
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.total_cs, 8u);
}

}  // namespace
}  // namespace gmx::testing
