// UdpTransport integration tests over real loopback sockets: reliable
// exactly-once FIFO delivery under deterministic drop/duplicate/hold
// fault injection, give-up-as-omission under total loss, unsequenced
// protocols, address-routed raw traffic, and the post/timer surface.
//
// Threading discipline: handlers and timers run on each transport's loop
// thread; the test thread only waits on futures and reads shared state
// after stop() has joined the loop (counters are documented stable then).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "gridmutex/transport/udp.hpp"

namespace gmx::transport {
namespace {

using namespace std::chrono_literals;

Message u64_msg(NodeId dst, ProtocolId protocol, std::uint64_t value,
                wire::Writer w) {
  Message m;
  m.dst = dst;
  m.protocol = protocol;
  m.type = 1;
  w.u64(value);
  m.payload = w.take_payload();
  return m;
}

TEST(TransportUdp, PeerAddrFormatting) {
  const PeerAddr a = PeerAddr::loopback(19000);
  EXPECT_EQ(a.to_string(), "127.0.0.1:19000");
  const auto parsed = PeerAddr::parse("127.0.0.1:19000");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, a);
  EXPECT_FALSE(PeerAddr::parse("127.0.0.1").has_value());
  EXPECT_FALSE(PeerAddr::parse("not-an-addr:1").has_value());
}

TEST(TransportUdp, ReliableFifoExactlyOnceUnderDropDupHold) {
  // Aggressive retry so the lossy run converges fast.
  const ArqConfig fast{
      .rto_ms = 10, .backoff = 1.5, .rto_max_ms = 50, .max_attempts = 64};
  UdpTransport a(0, "127.0.0.1", 0, fast);
  UdpTransport b(1, "127.0.0.1", 0, fast);
  a.add_peer(1, PeerAddr::loopback(b.port()));
  b.add_peer(0, PeerAddr::loopback(a.port()));
  constexpr ProtocolId kProto = 7;
  constexpr std::uint64_t kN = 40;
  a.set_reliable(kProto);
  b.set_reliable(kProto);

  // Deterministic per-frame fault pattern on A's data frames (acks pass):
  // every 3rd transmission dropped, some duplicated, some held back one
  // transmission (a real-wire reordering).
  auto frame_no = std::make_shared<std::uint64_t>(0);
  a.set_send_fault([frame_no](const Message& m) -> int {
    if (m.protocol != kProto || m.type == Message::kAckType)
      return UdpTransport::kPass;
    const std::uint64_t i = (*frame_no)++;
    if (i % 3 == 0) return UdpTransport::kDrop;
    if (i % 5 == 1) return UdpTransport::kDuplicate;
    if (i % 7 == 2) return UdpTransport::kHold;
    return UdpTransport::kPass;
  });

  auto got = std::make_shared<std::vector<std::uint64_t>>();
  std::promise<void> all_in;
  auto done = all_in.get_future();
  b.attach(kProto, [got, &all_in](const Message& m) {
    wire::Reader r(m.payload);
    got->push_back(r.u64());
    r.expect_end();
    if (got->size() == kN) all_in.set_value();
  });

  a.start();
  b.start();
  a.post([&a] {
    for (std::uint64_t i = 0; i < kN; ++i)
      a.send(u64_msg(1, kProto, i, a.writer(8)));
  });
  ASSERT_EQ(done.wait_for(20s), std::future_status::ready);
  // Grace period: a straggling duplicate would arrive here and break the
  // exactly-once assertion below.
  std::this_thread::sleep_for(100ms);
  b.stop();
  a.stop();

  ASSERT_EQ(got->size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) EXPECT_EQ((*got)[i], i);
  EXPECT_GT(a.counters().fault_dropped, 0u);
  EXPECT_GT(a.counters().fault_duplicated, 0u);
  EXPECT_GT(a.counters().fault_held, 0u);
  EXPECT_GT(a.arq_send_counters().retransmitted, 0u);
  EXPECT_EQ(a.arq_send_counters().gave_up, 0u);
  EXPECT_EQ(b.arq_recv_counters().delivered, kN);
  // Duplicated transmissions really did arrive twice and were deduped.
  EXPECT_GT(b.arq_recv_counters().duplicates, 0u);
}

TEST(TransportUdp, GiveUpUnderTotalLossIsAnOmission) {
  const ArqConfig tiny{
      .rto_ms = 5, .backoff = 2.0, .rto_max_ms = 10, .max_attempts = 3};
  UdpTransport a(0, "127.0.0.1", 0, tiny);
  UdpTransport b(1, "127.0.0.1", 0);
  a.add_peer(1, PeerAddr::loopback(b.port()));
  constexpr ProtocolId kProto = 9;
  a.set_reliable(kProto);
  a.set_send_fault([](const Message& m) -> int {
    return m.protocol == kProto ? UdpTransport::kDrop : UdpTransport::kPass;
  });

  std::promise<void> gave_up;
  auto done = gave_up.get_future();
  a.start();
  b.start();
  a.post([&a, &gave_up] {
    a.send(u64_msg(1, kProto, 1, a.writer(8)));
    a.send(u64_msg(1, kProto, 2, a.writer(8)));
    // Poll the give-up counter on the loop thread (counters are
    // loop-thread state until stop()).
    auto check = std::make_shared<std::function<void()>>();
    *check = [&a, &gave_up, check] {
      if (a.arq_send_counters().gave_up >= 2)
        gave_up.set_value();
      else
        a.schedule_ms(5, *check);
    };
    a.schedule_ms(5, *check);
  });
  ASSERT_EQ(done.wait_for(10s), std::future_status::ready);
  a.stop();
  b.stop();

  // Each frame: 1 first transmission + 2 retransmissions, then dropped as
  // a pure omission; the second frame launched only after the first died.
  EXPECT_EQ(a.arq_send_counters().sent, 2u);
  EXPECT_EQ(a.arq_send_counters().retransmitted, 4u);
  EXPECT_EQ(a.arq_send_counters().gave_up, 2u);
  EXPECT_EQ(a.arq_send_counters().acked, 0u);
  EXPECT_EQ(a.counters().fault_dropped, 6u);
  EXPECT_EQ(b.counters().frames_delivered, 0u);
}

TEST(TransportUdp, UnreliableProtocolIsUnsequencedAndUnacked) {
  UdpTransport a(0, "127.0.0.1", 0);
  UdpTransport b(1, "127.0.0.1", 0);
  a.add_peer(1, PeerAddr::loopback(b.port()));
  constexpr ProtocolId kProto = 11;

  auto seq_seen = std::make_shared<std::uint64_t>(99);
  std::promise<void> arrived;
  auto done = arrived.get_future();
  b.attach(kProto, [seq_seen, &arrived](const Message& m) {
    *seq_seen = m.seq;
    arrived.set_value();
  });
  a.start();
  b.start();
  a.post([&a] { a.send(u64_msg(1, kProto, 7, a.writer(8))); });
  ASSERT_EQ(done.wait_for(10s), std::future_status::ready);
  std::this_thread::sleep_for(50ms);
  b.stop();
  a.stop();

  EXPECT_EQ(*seq_seen, 0u);  // unreliable frames carry seq 0
  EXPECT_EQ(b.counters().acks_sent, 0u);
  EXPECT_EQ(b.counters().frames_delivered, 1u);
  EXPECT_EQ(a.arq_send_counters().sent, 0u);  // ARQ never involved
}

TEST(TransportUdp, RawHandlerRoutesByAddressForNodelessClients) {
  // The client pattern: a nodeless peer (self = kInvalidNode, no node
  // table) talks to a server via send_raw; the server replies to the
  // datagram's source address.
  UdpTransport client(kInvalidNode, "127.0.0.1", 0);
  UdpTransport server(1, "127.0.0.1", 0);
  const PeerAddr server_addr = PeerAddr::loopback(server.port());
  constexpr ProtocolId kProto = 13;

  server.attach_raw(kProto, [&server](const Message& m, const PeerAddr& from) {
    wire::Reader r(m.payload);
    const std::uint64_t value = r.u64();
    Message reply;
    reply.src = server.self();
    reply.dst = m.src;  // kInvalidNode: the client transport's self
    reply.protocol = m.protocol;
    reply.type = 2;
    wire::Writer w = server.writer(8);
    w.u64(value * 2);
    reply.payload = w.take_payload();
    server.send_raw(from, reply);
  });

  auto echoed = std::make_shared<std::uint64_t>(0);
  std::promise<void> replied;
  auto done = replied.get_future();
  client.attach_raw(kProto,
                    [echoed, &replied](const Message& m, const PeerAddr&) {
                      wire::Reader r(m.payload);
                      *echoed = r.u64();
                      replied.set_value();
                    });
  server.start();
  client.start();
  client.post([&client, server_addr] {
    Message m;
    m.src = client.self();
    m.dst = 1;
    m.protocol = kProto;
    m.type = 1;
    wire::Writer w = client.writer(8);
    w.u64(21);
    m.payload = w.take_payload();
    client.send_raw(server_addr, m);
  });
  ASSERT_EQ(done.wait_for(10s), std::future_status::ready);
  client.stop();
  server.stop();
  EXPECT_EQ(*echoed, 42u);
}

TEST(TransportUdp, PostTimersAndCancel) {
  UdpTransport tp(0, "127.0.0.1", 0);
  auto cancelled_fired = std::make_shared<bool>(false);
  auto posted = std::make_shared<bool>(false);
  std::promise<void> sentinel;
  auto done = sentinel.get_future();
  tp.start();
  tp.post([&tp, cancelled_fired, posted, &sentinel] {
    *posted = true;
    const UdpTransport::TimerToken doomed =
        tp.schedule_ms(10, [cancelled_fired] { *cancelled_fired = true; });
    tp.cancel(doomed);
    // The sentinel fires well after the cancelled timer would have.
    tp.schedule_ms(50, [&sentinel] { sentinel.set_value(); });
  });
  ASSERT_EQ(done.wait_for(10s), std::future_status::ready);
  tp.stop();
  EXPECT_TRUE(*posted);
  EXPECT_FALSE(*cancelled_fired);
}

}  // namespace
}  // namespace gmx::transport
