// Multi-level composition tests (paper §6 extension): 2- and 3-level
// hierarchies, topology/latency helpers, recursive safety and liveness.
#include "gridmutex/core/multilevel.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "gridmutex/net/network.hpp"
#include "gridmutex/sim/random.hpp"

namespace gmx::testing {
namespace {

HierarchySpec three_level() {
  return HierarchySpec{.arity = {2, 2, 3},
                       .algorithms = {"naimi", "naimi", "naimi"}};
}

TEST(HierarchySpec, GroupCounts) {
  const auto s = three_level();
  EXPECT_EQ(s.levels(), 3u);
  EXPECT_EQ(s.groups_at(0), 6u);  // leaf clusters
  EXPECT_EQ(s.groups_at(1), 3u);  // sites
  EXPECT_EQ(s.groups_at(2), 1u);  // root
  EXPECT_EQ(s.application_count(), 12u);
}

TEST(MultiLevel, TopologyHostsInnerCoordinators) {
  const auto s = three_level();
  const Topology t = MultiLevelComposition::make_topology(s);
  EXPECT_EQ(t.cluster_count(), 6u);
  // Leaf clusters: 1 coordinator + 2 apps = 3 nodes; the first cluster of
  // each site hosts its site coordinator too.
  EXPECT_EQ(t.cluster_size(0), 4u);
  EXPECT_EQ(t.cluster_size(1), 3u);
  EXPECT_EQ(t.cluster_size(2), 4u);
  EXPECT_EQ(t.cluster_size(3), 3u);
  EXPECT_EQ(t.node_count(), 6u * 3u + 3u);
}

TEST(MultiLevel, LatencyReflectsLcaLevel) {
  const auto s = three_level();
  const SimDuration delays[] = {SimDuration::ms_f(0.5), SimDuration::ms(5),
                                SimDuration::ms(40)};
  const auto lat = MultiLevelComposition::make_latency(s, delays);
  EXPECT_DOUBLE_EQ(lat->one_way_ms(0, 0), 0.5);   // same cluster
  EXPECT_DOUBLE_EQ(lat->one_way_ms(0, 1), 5.0);   // same site
  EXPECT_DOUBLE_EQ(lat->one_way_ms(0, 2), 40.0);  // cross site
  EXPECT_DOUBLE_EQ(lat->one_way_ms(4, 5), 5.0);
  EXPECT_DOUBLE_EQ(lat->one_way_ms(5, 0), 40.0);
}

std::vector<SimDuration> level_delays(const HierarchySpec& s) {
  // 0.5ms LAN, then 5ms, 40ms, 80ms... per additional level.
  std::vector<SimDuration> out{SimDuration::ms_f(0.5)};
  std::int64_t ms = 5;
  for (std::size_t l = 1; l < s.levels(); ++l) {
    out.push_back(SimDuration::ms(ms));
    ms *= 8;
  }
  return out;
}

struct MlFixture {
  explicit MlFixture(HierarchySpec s, std::uint64_t seed = 1)
      : spec(std::move(s)),
        topo(MultiLevelComposition::make_topology(spec)),
        net(sim, topo,
            MultiLevelComposition::make_latency(spec, level_delays(spec)),
            Rng(seed)),
        ml(net, spec, 1, seed) {
    sim.set_event_limit(20'000'000);
    for (NodeId v : ml.app_nodes()) {
      ml.app_mutex(v).set_callbacks(MutexCallbacks{
          [this, v] { on_granted(v); },
          {},
      });
    }
  }

  void on_granted(NodeId v) {
    grants.push_back(v);
    int in_cs = 0;
    for (NodeId a : ml.app_nodes())
      if (ml.app_mutex(a).in_cs()) ++in_cs;
    if (in_cs != 1) safety_violated = true;
    // Per-level exclusivity: at most one privileged coordinator per level 1+
    // overall; at level 0, at most one per site... the global bound that
    // matters: level L-2 coordinators privileged <= 1.
    if (ml.privileged_at(ml.levels() - 2) > 1) safety_violated = true;
    if (auto_release) {
      sim.schedule_after(cs_time, [this, v] {
        ml.app_mutex(v).release_cs();
        auto it = remaining.find(v);
        if (it != remaining.end() && it->second > 0) {
          --it->second;
          sim.schedule_after(think[v],
                             [this, v] { ml.app_mutex(v).request_cs(); });
        }
      });
    }
  }

  void drive(NodeId v, int count, SimDuration t) {
    remaining[v] = count - 1;
    think[v] = t;
    sim.schedule_after(t, [this, v] { ml.app_mutex(v).request_cs(); });
  }

  HierarchySpec spec;
  Simulator sim;
  Topology topo;
  Network net;
  MultiLevelComposition ml;
  std::vector<NodeId> grants;
  bool safety_violated = false;
  bool auto_release = true;
  SimDuration cs_time = SimDuration::ms(2);
  std::unordered_map<NodeId, int> remaining;
  std::unordered_map<NodeId, SimDuration> think;
};

TEST(MultiLevel, TwoLevelSpecMatchesCompositionSemantics) {
  MlFixture f(HierarchySpec{.arity = {3, 3},
                            .algorithms = {"naimi", "martin"}});
  f.ml.start();
  f.sim.run();
  EXPECT_EQ(f.ml.coordinator_count(0), 3u);
  for (NodeId v : f.ml.app_nodes()) f.drive(v, 3, SimDuration::ms(1));
  f.sim.run();
  EXPECT_FALSE(f.safety_violated);
  EXPECT_EQ(f.grants.size(), 9u * 3u);
}

TEST(MultiLevel, ThreeLevelSafetyAndLivenessUnderSaturation) {
  MlFixture f(three_level());
  f.ml.start();
  f.sim.run();
  Rng rng(3);
  for (NodeId v : f.ml.app_nodes())
    f.drive(v, 4, SimDuration::us(std::int64_t(rng.next_below(2000)) + 1));
  f.sim.run();
  EXPECT_FALSE(f.safety_violated);
  EXPECT_EQ(f.grants.size(), f.spec.application_count() * 4u);
  EXPECT_TRUE(f.sim.idle());
  EXPECT_EQ(f.net.in_flight(), 0u);
}

TEST(MultiLevel, ThreeLevelSparseWorkload) {
  MlFixture f(three_level(), 7);
  f.ml.start();
  f.sim.run();
  Rng rng(7);
  for (NodeId v : f.ml.app_nodes())
    f.drive(v, 2, SimDuration::ms(std::int64_t(rng.next_below(300)) + 100));
  f.sim.run();
  EXPECT_FALSE(f.safety_violated);
  EXPECT_EQ(f.grants.size(), f.spec.application_count() * 2u);
}

TEST(MultiLevel, MixedAlgorithmsPerLevel) {
  MlFixture f(HierarchySpec{.arity = {2, 2, 2},
                            .algorithms = {"suzuki", "naimi", "martin"}},
              5);
  f.ml.start();
  f.sim.run();
  for (NodeId v : f.ml.app_nodes()) f.drive(v, 3, SimDuration::ms(2));
  f.sim.run();
  EXPECT_FALSE(f.safety_violated);
  EXPECT_EQ(f.grants.size(), 8u * 3u);
}

TEST(MultiLevel, FourLevelsDeep) {
  MlFixture f(HierarchySpec{
      .arity = {1, 2, 2, 2},
      .algorithms = {"naimi", "naimi", "naimi", "naimi"}});
  f.ml.start();
  f.sim.run();
  for (NodeId v : f.ml.app_nodes()) f.drive(v, 2, SimDuration::ms(1));
  f.sim.run();
  EXPECT_FALSE(f.safety_violated);
  EXPECT_EQ(f.grants.size(), 8u * 2u);
}

TEST(MultiLevel, LocalWorkloadTouchesNoUpperLevel) {
  // All demand inside leaf group 0 (which initially holds every token along
  // its ancestor chain): only LAN traffic.
  MlFixture f(three_level());
  f.ml.start();
  f.sim.run();
  const NodeId app = f.topo.first_node_of(0) + 1;
  f.remaining[app] = 0;
  f.ml.app_mutex(app).request_cs();
  f.sim.run();
  EXPECT_EQ(f.grants.size(), 1u);
  EXPECT_EQ(f.net.counters().inter_cluster, 0u);
}

TEST(MultiLevelDeathTest, SingleLevelRejected) {
  HierarchySpec s{.arity = {5}, .algorithms = {"naimi"}};
  EXPECT_DEATH(MultiLevelComposition::make_topology(s), "two levels");
}

TEST(MultiLevelDeathTest, AlgorithmCountMismatchRejected) {
  HierarchySpec s{.arity = {2, 2}, .algorithms = {"naimi"}};
  EXPECT_DEATH(MultiLevelComposition::make_topology(s),
               "one algorithm per level");
}

}  // namespace
}  // namespace gmx::testing
