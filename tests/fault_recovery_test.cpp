// Token-loss recovery: detection, regeneration (Suzuki-Kasami and
// Naimi-Trehel), stranded-token repair, the given-up latch for algorithms
// without a regeneration protocol, and ARQ masking of single losses.
#include "gridmutex/fault/recovery.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "gridmutex/fault/injector.hpp"
#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

SimTime at(std::int64_t ms) { return SimTime::zero() + SimDuration::ms(ms); }

// Tight timers so the tests stay fast; real campaigns use the defaults.
RecoveryConfig fast_recovery(bool retransmit) {
  RecoveryConfig rc;
  rc.enable_retransmit = retransmit;
  rc.detect_timeout = SimDuration::ms(50);
  rc.probe_interval = SimDuration::ms(10);
  rc.election_delay = SimDuration::ms(5);
  rc.regen_retry = SimDuration::ms(500);
  return rc;
}

std::vector<MutexEndpoint*> endpoints_of(MutexHarness& h) {
  std::vector<MutexEndpoint*> eps;
  for (int r = 0; r < h.size(); ++r) eps.push_back(&h.ep(r));
  return eps;
}

// One true token loss (no ARQ): the manager must detect it and drive the
// algorithm's regeneration; the waiting requester must still be served.
void run_regeneration_case(const std::string& algorithm) {
  MutexHarness h({.participants = 3, .algorithm = algorithm});
  TokenRecoveryManager mgr(h.net(), fast_recovery(/*retransmit=*/false));
  mgr.watch_instance(algorithm, 1, endpoints_of(h));

  FaultPlan plan;
  plan.drop_messages(1, 2 /* kToken */, 1, at(0));
  FaultInjector inj(h.net(), std::move(plan));
  inj.arm();

  h.set_auto_release(SimDuration::ms(2));
  h.request(1);  // rank 0 holds the token; the grant dies on the wire
  h.run();

  EXPECT_EQ(h.grant_count(1), 1) << algorithm;
  EXPECT_FALSE(h.safety_violated());
  EXPECT_EQ(h.token_holder_count(), 1);
  EXPECT_EQ(mgr.stats().losses_detected, 1u);
  EXPECT_EQ(mgr.stats().regenerations, 1u);
  EXPECT_EQ(mgr.stats().recovery_latency.count(), 1u);
  EXPECT_FALSE(mgr.in_regeneration(1));
  EXPECT_FALSE(mgr.given_up());
}

TEST(TokenRecovery, SuzukiRegeneratesAfterTokenLoss) {
  run_regeneration_case("suzuki");
}

TEST(TokenRecovery, NaimiRegeneratesAfterTokenLoss) {
  run_regeneration_case("naimi");
}

TEST(TokenRecovery, StrandedTokenIsSurrenderedToTheRequester) {
  MutexHarness h({.participants = 3, .algorithm = "naimi"});
  TokenRecoveryManager mgr(h.net(), fast_recovery(/*retransmit=*/false));
  mgr.watch_instance("naimi", 1, endpoints_of(h));

  // Kill the REQUEST instead of the token: the holder stays idle with the
  // token, never learning that rank 1 waits.
  FaultPlan plan;
  plan.drop_messages(1, 1 /* kRequest */, 1, at(0));
  FaultInjector inj(h.net(), std::move(plan));
  inj.arm();

  h.set_auto_release(SimDuration::ms(2));
  h.request(1);
  h.run();

  EXPECT_EQ(h.grant_count(1), 1);
  EXPECT_FALSE(h.safety_violated());
  EXPECT_EQ(mgr.stats().stranded_repairs, 1u);
  EXPECT_EQ(mgr.stats().losses_detected, 0u);
}

TEST(TokenRecovery, AlgorithmWithoutRegenerationLatchesGivenUp) {
  MutexHarness h({.participants = 3, .algorithm = "raymond"});
  TokenRecoveryManager mgr(h.net(), fast_recovery(/*retransmit=*/false));
  mgr.watch_instance("raymond", 1, endpoints_of(h));

  FaultPlan plan;
  plan.drop_messages(1, 2 /* kToken */, 1, at(0));
  FaultInjector inj(h.net(), std::move(plan));
  inj.arm();

  h.set_auto_release(SimDuration::ms(2));
  h.request(1);
  h.run();  // drains because the latch stops the probes

  EXPECT_TRUE(mgr.given_up());
  EXPECT_EQ(h.grant_count(1), 0);  // honest outcome: the wedge is visible
  EXPECT_FALSE(h.safety_violated());
}

TEST(TokenRecovery, ArqMasksASingleTokenLoss) {
  MutexHarness h({.participants = 3, .algorithm = "naimi"});
  RecoveryConfig rc = fast_recovery(/*retransmit=*/true);
  rc.retransmit.rto = SimDuration::ms(10);
  rc.detect_timeout = SimDuration::ms(100);
  TokenRecoveryManager mgr(h.net(), rc);
  mgr.watch_instance("naimi", 1, endpoints_of(h));

  FaultPlan plan;
  plan.drop_messages(1, 2 /* kToken */, 1, at(0));
  FaultInjector inj(h.net(), std::move(plan));
  inj.arm();

  h.set_auto_release(SimDuration::ms(2));
  h.request(1);
  h.run();

  EXPECT_EQ(h.grant_count(1), 1);
  EXPECT_GE(h.net().counters().retransmitted, 1u);
  // Retransmission healed the loss below the detection horizon.
  EXPECT_EQ(mgr.stats().losses_detected, 0u);
  EXPECT_EQ(mgr.stats().regenerations, 0u);
}

TEST(TokenRecovery, EpochHookBracketsTheRegeneration) {
  MutexHarness h({.participants = 3, .algorithm = "suzuki"});
  TokenRecoveryManager mgr(h.net(), fast_recovery(/*retransmit=*/false));
  std::vector<std::pair<ProtocolId, bool>> epochs;
  mgr.set_epoch_hook([&](ProtocolId p, bool open) {
    epochs.emplace_back(p, open);
  });
  mgr.watch_instance("suzuki", 1, endpoints_of(h));

  FaultPlan plan;
  plan.drop_messages(1, 2 /* kToken */, 1, at(0));
  FaultInjector inj(h.net(), std::move(plan));
  inj.arm();

  h.set_auto_release(SimDuration::ms(2));
  h.request(1);
  h.run();

  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0], (std::pair<ProtocolId, bool>{1, true}));
  EXPECT_EQ(epochs[1], (std::pair<ProtocolId, bool>{1, false}));
}

}  // namespace
}  // namespace gmx::testing
