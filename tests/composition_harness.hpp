// Test harness for two-level compositions: builds a clustered grid with a
// two-tier latency model, drives application processes, and checks the
// composition-level safety invariants on every grant:
//   (a) at most one application is in CS grid-wide;
//   (b) at most one coordinator is privileged (IN/WAIT_FOR_OUT);
//   (c) the application in CS belongs to the privileged coordinator's
//       cluster.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gridmutex/core/composition.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/sim/assert.hpp"

namespace gmx::testing {

struct CompositionHarnessOptions {
  std::string intra = "naimi";
  std::string inter = "naimi";
  std::uint32_t clusters = 3;
  std::uint32_t apps_per_cluster = 3;
  SimDuration lan = SimDuration::ms_f(0.5);
  SimDuration wan = SimDuration::ms(10);
  std::uint64_t seed = 1;
};

class CompositionHarness {
 public:
  explicit CompositionHarness(CompositionHarnessOptions opt)
      : opt_(std::move(opt)),
        topo_(Composition::make_topology(opt_.clusters,
                                         opt_.apps_per_cluster)),
        net_(sim_, topo_,
             std::make_shared<MatrixLatencyModel>(MatrixLatencyModel::two_level(
                 opt_.clusters, opt_.lan, opt_.wan)),
             Rng(opt_.seed)),
        comp_(net_, CompositionConfig{.intra_algorithm = opt_.intra,
                                      .inter_algorithm = opt_.inter,
                                      .initial_cluster = 0,
                                      .protocol_base = 1,
                                      .seed = opt_.seed}) {
    sim_.set_event_limit(20'000'000);
    for (NodeId v : comp_.app_nodes()) {
      comp_.app_mutex(v).set_callbacks(MutexCallbacks{
          [this, v] { on_granted(v); },
          {},
      });
    }
  }

  void start() { comp_.start(); }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Network& net() { return net_; }
  [[nodiscard]] Composition& comp() { return comp_; }
  [[nodiscard]] const Topology& topo() const { return topo_; }
  [[nodiscard]] SimDuration wan() const { return opt_.wan; }
  [[nodiscard]] SimDuration lan() const { return opt_.lan; }

  void request(NodeId v) { comp_.app_mutex(v).request_cs(); }
  void release(NodeId v) { comp_.app_mutex(v).release_cs(); }
  void request_at(SimDuration when, NodeId v) {
    sim_.schedule_after(when, [this, v] { request(v); });
  }

  void set_auto_release(SimDuration cs_time) {
    auto_release_ = true;
    cs_time_ = cs_time;
  }

  /// App on `v` performs `count` critical sections with `think` gaps.
  void drive(NodeId v, int count, SimDuration think) {
    GMX_ASSERT(auto_release_);
    remaining_[v] = count - 1;
    think_[v] = think;
    sim_.schedule_after(think, [this, v] { request(v); });
  }

  void run() { sim_.run(); }
  void run_for(SimDuration d) { sim_.run_until(sim_.now() + d); }

  [[nodiscard]] const std::vector<NodeId>& grants() const { return grants_; }
  [[nodiscard]] int grant_count(NodeId v) const {
    int c = 0;
    for (NodeId g : grants_)
      if (g == v) ++c;
    return c;
  }
  [[nodiscard]] bool safety_violated() const { return safety_violated_; }
  [[nodiscard]] int apps_in_cs() {
    int c = 0;
    for (NodeId v : comp_.app_nodes())
      if (comp_.app_mutex(v).in_cs()) ++c;
    return c;
  }

 private:
  void on_granted(NodeId v) {
    grants_.push_back(v);
    // (a) global mutual exclusion over applications
    if (apps_in_cs() != 1) safety_violated_ = true;
    // (b) inter-level exclusivity
    if (comp_.privileged_coordinators() > 1) safety_violated_ = true;
    // (c) the privileged coordinator is ours
    const ClusterId mine = topo_.cluster_of(v);
    if (!comp_.coordinator(mine).cluster_privileged())
      safety_violated_ = true;
    if (auto_release_) {
      sim_.schedule_after(cs_time_, [this, v] {
        release(v);
        auto it = remaining_.find(v);
        if (it != remaining_.end() && it->second > 0) {
          --it->second;
          sim_.schedule_after(think_[v], [this, v] { request(v); });
        }
      });
    }
  }

  CompositionHarnessOptions opt_;
  Simulator sim_;
  Topology topo_;
  Network net_;
  Composition comp_;

  std::vector<NodeId> grants_;
  bool safety_violated_ = false;
  bool auto_release_ = false;
  SimDuration cs_time_ = SimDuration::ms(1);
  std::unordered_map<NodeId, int> remaining_;
  std::unordered_map<NodeId, SimDuration> think_;
};

}  // namespace gmx::testing
