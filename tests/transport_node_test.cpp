// LockdNode service tests against an in-process grid: the client
// handshake, grant/fence/release lifecycle, fencing monotonicity across
// clusters, admission shedding, deadline expiry, idempotent release,
// stats accounting closure, and shutdown. Everything flows over real UDP
// loopback sockets through LockClient, exactly as lockctl would drive a
// deployed grid.
#include <gtest/gtest.h>

#include <thread>

#include "gridmutex/service/lock_table.hpp"
#include "transport_test_grid.hpp"

namespace gmx::transport {
namespace {

GridConfig small_grid(std::uint64_t seed) {
  GridConfig g;
  g.clusters = 2;
  g.apps_per_cluster = 2;
  g.locks = 2;
  g.seed = seed;
  return g;
}

TEST(TransportGridConfig, ProtocolLayoutMirrorsServiceConfig) {
  const GridConfig g = small_grid(1);
  EXPECT_EQ(g.node_count(), 6u);
  // Nodes 0 and 3 are rank-0 coordinators; apps in cluster order.
  EXPECT_EQ(g.app_nodes(), (std::vector<NodeId>{1, 2, 4, 5}));
  EXPECT_EQ(g.inter_protocol(0), ServiceConfig::lock_inter_protocol(0, 2));
  EXPECT_EQ(g.intra_protocol(0, 1), ServiceConfig::lock_intra_protocol(0, 2, 1));
  EXPECT_EQ(g.inter_protocol(1), ServiceConfig::lock_inter_protocol(1, 2));
  EXPECT_EQ(g.fence_protocol(), ServiceConfig::lease_protocol(2, 2));
  EXPECT_EQ(g.client_protocol(), g.fence_protocol() + 1);
  // Seed derivation matches the simulator's experiment -> service chain.
  EXPECT_EQ(g.service_seed(), Rng(g.seed).fork(2).next_u64());
  EXPECT_EQ(g.lock_names(), (std::vector<std::string>{"lock0", "lock1"}));
}

TEST(TransportNode, HandshakeAcquireReleaseLifecycle) {
  TestGrid grid(small_grid(7));
  LockClient client(grid.addrs(), grid.config().client_protocol());

  // Ping answers before start, and reports the started transition.
  const auto before = client.ping(1, 5000);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->node, 1u);
  EXPECT_FALSE(before->started);
  ASSERT_TRUE(grid.start_all(client));
  const auto after = client.ping(1, 5000);
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->started);
  EXPECT_TRUE(client.start(1, 5000));  // idempotent

  // Coordinator placement: rank 0 of each cluster, nobody else.
  EXPECT_TRUE(grid.node(0).is_coordinator());
  EXPECT_FALSE(grid.node(1).is_coordinator());
  EXPECT_TRUE(grid.node(3).is_coordinator());

  const auto a = client.acquire(1, 0, 0, 10000);
  ASSERT_EQ(a.status, LockClient::Acquire::Status::kGranted);
  EXPECT_GE(a.fence, 1u);
  EXPECT_TRUE(client.release(1, 0, a.req_id, 10000));
  // Release is idempotent: the retransmit-deduped path answers again.
  EXPECT_TRUE(client.release(1, 0, a.req_id, 10000));

  const auto total = grid.total_stats(client);
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->arrivals, 1u);
  EXPECT_EQ(total->grants, 1u);
  EXPECT_EQ(total->releases, 1u);
  EXPECT_EQ(total->fences_issued, 1u);
}

TEST(TransportNode, FencesStrictlyIncreaseAcrossClusters) {
  TestGrid grid(small_grid(11));
  LockClient client(grid.addrs(), grid.config().client_protocol());
  ASSERT_TRUE(grid.start_all(client));

  // Same lock from app nodes in *both* clusters: the fence fetch rides
  // the inter-cluster composition CS, so tokens stay strictly increasing
  // no matter which cluster wins.
  const NodeId targets[] = {1, 4, 2, 5, 1, 4};
  std::uint64_t last_fence = 0;
  for (const NodeId n : targets) {
    const auto a = client.acquire(n, 0, 0, 10000);
    ASSERT_EQ(a.status, LockClient::Acquire::Status::kGranted)
        << "node " << n;
    EXPECT_GT(a.fence, last_fence);
    last_fence = a.fence;
    ASSERT_TRUE(client.release(n, 0, a.req_id, 10000));
  }
  // Locks fence independently: lock 1 starts at its own counter.
  const auto b = client.acquire(2, 1, 0, 10000);
  ASSERT_EQ(b.status, LockClient::Acquire::Status::kGranted);
  EXPECT_EQ(b.fence, 1u);
  ASSERT_TRUE(client.release(2, 1, b.req_id, 10000));
}

TEST(TransportNode, CoordinatorShedsClientAcquires) {
  TestGrid grid(small_grid(13));
  LockClient client(grid.addrs(), grid.config().client_protocol());
  ASSERT_TRUE(grid.start_all(client));
  // Node 0 is a coordinator: no grant queue, every acquire is shed.
  const auto a = client.acquire(0, 0, 0, 10000);
  EXPECT_EQ(a.status, LockClient::Acquire::Status::kShed);
  const auto total = grid.total_stats(client);
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->sheds, 1u);
  EXPECT_EQ(total->arrivals, total->grants + total->sheds +
                                 total->deadline_misses);
}

TEST(TransportNode, DeadlinePassedWhileQueuedExpires) {
  TestGrid grid(small_grid(17));
  LockClient holder(grid.addrs(), grid.config().client_protocol());
  ASSERT_TRUE(grid.start_all(holder));

  const auto h = holder.acquire(1, 0, 0, 10000);
  ASSERT_EQ(h.status, LockClient::Acquire::Status::kGranted);

  // A second client wants the same lock from the other cluster with a
  // deadline far shorter than the holder keeps it.
  LockClient waiter(grid.addrs(), grid.config().client_protocol());
  LockClient::Acquire w;
  std::thread t([&waiter, &w] { w = waiter.acquire(4, 0, 100, 20000); });
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  ASSERT_TRUE(holder.release(1, 0, h.req_id, 10000));
  t.join();
  EXPECT_EQ(w.status, LockClient::Acquire::Status::kExpired);

  const auto total = grid.total_stats(holder);
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->deadline_misses, 1u);
  EXPECT_EQ(total->grants, 1u);
  EXPECT_EQ(total->releases, 1u);  // the expired request never held
  EXPECT_EQ(total->arrivals, total->grants + total->sheds +
                                 total->deadline_misses);
}

TEST(TransportNode, ShutdownUnblocksWaiter) {
  TestGrid grid(small_grid(19));
  LockClient client(grid.addrs(), grid.config().client_protocol());
  std::thread waiter([&grid] { grid.node(1).wait_shutdown(); });
  EXPECT_TRUE(client.shutdown(1, 5000));
  waiter.join();  // wait_shutdown returned: the daemon would now exit
  // The rest of the grid is still serving.
  EXPECT_TRUE(client.ping(2, 5000).has_value());
}

}  // namespace
}  // namespace gmx::transport
