// Exhaustive small-N delivery-order exploration: every registered algorithm,
// flat and composed, must be safe and deadlock-free under every schedule the
// harness reaches within its caps.
#include <gtest/gtest.h>

#include <string>

#include "gridmutex/analysis/model_check.hpp"
#include "gridmutex/mutex/registry.hpp"

namespace gmx {
namespace {

// Sweep caps: the trees are factorial in the tie-set sizes, so the per-
// algorithm budget bounds runtime; a violating schedule, if one existed,
// overwhelmingly surfaces within the first few hundred reorderings (the
// search permutes the earliest races first).
constexpr std::uint64_t kFlatSchedules = 2'000;
constexpr std::uint64_t kCompositionSchedules = 500;

class FlatModelCheckTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FlatModelCheckTest, ThreeRanksOneCsEach) {
  ModelCheckOptions opt;
  opt.max_schedules = kFlatSchedules;
  const ModelCheckResult res =
      model_check(flat_scenario(GetParam(), /*n=*/3, /*cs_per_rank=*/1), opt);
  EXPECT_FALSE(res.violation) << res.to_string();
  EXPECT_GE(res.schedules, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FlatModelCheckTest,
                         ::testing::ValuesIn(algorithm_names()),
                         [](const auto& info) { return info.param; });

TEST(ModelCheck, FourRanksStillClean) {
  ModelCheckOptions opt;
  opt.max_schedules = kFlatSchedules;
  for (const char* algorithm : {"naimi", "suzuki", "ricart"}) {
    const ModelCheckResult res =
        model_check(flat_scenario(algorithm, /*n=*/4, /*cs_per_rank=*/1), opt);
    EXPECT_FALSE(res.violation) << algorithm << "\n" << res.to_string();
  }
}

TEST(ModelCheck, ExploresMoreThanOneSchedule) {
  // Three ranks requesting at the same instant race their messages: the
  // DFS must actually branch, not just replay the default order.
  ModelCheckOptions opt;
  opt.max_schedules = 50;
  const ModelCheckResult res =
      model_check(flat_scenario("suzuki", 3, 1), opt);
  EXPECT_FALSE(res.violation) << res.to_string();
  EXPECT_GT(res.schedules, 1u);
  EXPECT_GT(res.choice_points, 0u);
}

TEST(ModelCheck, TinyTreeExhausts) {
  // Two ranks, one CS each: the whole tree fits under a modest cap and the
  // harness reports exhaustion (the absence-of-bugs claim is then total).
  ModelCheckOptions opt;
  opt.max_schedules = 20'000;
  const ModelCheckResult res = model_check(flat_scenario("central", 2, 1), opt);
  EXPECT_FALSE(res.violation) << res.to_string();
  EXPECT_TRUE(res.exhausted) << res.schedules << " schedules did not finish";
}

TEST(ModelCheck, ScheduleCapIsHonoured) {
  ModelCheckOptions opt;
  opt.max_schedules = 3;
  const ModelCheckResult res = model_check(flat_scenario("suzuki", 4, 2), opt);
  EXPECT_LE(res.schedules, 3u);
  EXPECT_FALSE(res.violation) << res.to_string();
}

class ComposedModelCheckTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ComposedModelCheckTest, TwoClustersClean) {
  // 2 clusters x 1 application, one CS each — the smallest configuration
  // that races the two layers (both coordinators contend for the inter
  // token while their applications contend locally).
  ModelCheckOptions opt;
  opt.max_schedules = kCompositionSchedules;
  const ModelCheckResult res = model_check(
      composition_scenario(GetParam(), GetParam(), /*clusters=*/2,
                           /*apps_per_cluster=*/1, /*cs_per_app=*/1),
      opt);
  EXPECT_FALSE(res.violation) << res.to_string();
}

INSTANTIATE_TEST_SUITE_P(PaperPairs, ComposedModelCheckTest,
                         ::testing::Values("naimi", "martin", "suzuki"),
                         [](const auto& info) { return info.param; });

TEST(ComposedModelCheck, MixedPairClean) {
  ModelCheckOptions opt;
  opt.max_schedules = kCompositionSchedules;
  const ModelCheckResult res = model_check(
      composition_scenario("naimi", "martin", 2, 2, 1), opt);
  EXPECT_FALSE(res.violation) << res.to_string();
}

TEST(ModelCheckResultTest, ToStringNamesTheOutcome) {
  ModelCheckResult res;
  res.schedules = 7;
  res.choice_points = 21;
  res.exhausted = true;
  EXPECT_NE(res.to_string().find("7 schedules"), std::string::npos);
  EXPECT_NE(res.to_string().find("exhausted"), std::string::npos);

  res.exhausted = false;
  res.violation = true;
  res.diagnostic = "token duplicated in toy";
  res.schedule = {0, 2, 1};
  const std::string s = res.to_string();
  EXPECT_NE(s.find("capped"), std::string::npos);
  EXPECT_NE(s.find("0 2 1"), std::string::npos);
  EXPECT_NE(s.find("token duplicated"), std::string::npos);
}

}  // namespace
}  // namespace gmx
