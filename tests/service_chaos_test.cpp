// Chaos campaigns for the resilient LockService (ISSUE 7): client churn,
// flash crowds and crash-while-holding composed with the PR 2 fault axes
// (loss, partitions), checker-armed where the run must stay clean, with
// stall-horizon negative controls proving the lease layer is what restores
// liveness — plus the determinism contracts (parallel sweep equivalence,
// chaotic replay, inert-resilience bit-identity).
#include "gridmutex/service/experiment.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gmx::testing {
namespace {

ServiceConfig chaos_base(std::uint32_t locks, double arrivals_per_sec = 100) {
  ServiceConfig cfg;
  cfg.locks = locks;
  cfg.clusters = 3;
  cfg.apps_per_cluster = 3;
  cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                       SimDuration::ms(10));
  cfg.open_loop.arrivals_per_sec = arrivals_per_sec;
  cfg.open_loop.window = SimDuration::ms(800);
  cfg.open_loop.hold = SimDuration::ms(5);
  cfg.open_loop.zipf_s = 0.9;
  cfg.seed = 11;
  return cfg;
}

/// The full resilience bundle the chaos rows run with: leases with a tight
/// renewal clock, a generous per-arrival deadline, bounded admission and
/// backoff retry.
void arm_resilience(ServiceConfig& cfg) {
  cfg.resilience.leases = true;
  cfg.resilience.lease = {.renew_interval = SimDuration::ms(20),
                          .ttl = SimDuration::ms(120),
                          .drain = SimDuration::ms(100)};
  cfg.resilience.default_deadline = SimDuration::sec(4);
  cfg.resilience.admission = {.max_pending = 64,
                              .policy = ShedPolicy::kRejectNewest};
  cfg.resilience.retry = {.attempts = 3,
                          .base = SimDuration::ms(20),
                          .multiplier = 2.0,
                          .cap = SimDuration::ms(500),
                          .jitter = 0.5};
}

std::uint64_t total_arrivals(const ExperimentResult& r) {
  std::uint64_t n = 0;
  for (const LockMetrics& l : r.per_lock) n += l.arrivals;
  return n;
}

// ---- the campaign matrix ----

TEST(ServiceChaos, ChurnWithLossLeasedK1RecoversCheckerGreen) {
  ServiceConfig cfg = chaos_base(1, 150);
  arm_resilience(cfg);
  cfg.check_protocol = true;
  cfg.churn.crashes = 3;
  cfg.churn.first = SimDuration::ms(100);
  cfg.churn.every = SimDuration::ms(150);
  cfg.churn.down = SimDuration::ms(400);
  cfg.faults.enabled = true;
  cfg.faults.plan.lossy_link(0, 1, 0.2, SimTime::zero() + SimDuration::ms(50),
                             SimTime::zero() + SimDuration::ms(600));
  cfg.faults.stall_horizon = SimTime::zero() + SimDuration::sec(30);

  const ExperimentResult r = run_service_experiment(cfg);
  EXPECT_FALSE(r.stalled) << "leases + deadlines + retry restore liveness";
  EXPECT_GT(r.total_cs, 0u);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_EQ(r.client_crashes, 3u);
  EXPECT_GT(r.lease_renewals, 0u);
}

TEST(ServiceChaos, ChurnLossPartitionLeasedK16RecoversCheckerGreen) {
  ServiceConfig cfg = chaos_base(16, 120);
  arm_resilience(cfg);
  cfg.check_protocol = true;
  cfg.churn.crashes = 3;
  cfg.churn.first = SimDuration::ms(100);
  cfg.churn.every = SimDuration::ms(150);
  cfg.churn.down = SimDuration::ms(300);
  cfg.faults.enabled = true;
  cfg.faults.plan.lossy_link(0, 2, 0.2, SimTime::zero() + SimDuration::ms(80),
                             SimTime::zero() + SimDuration::ms(500));
  cfg.faults.plan.partition_clusters(0, 1,
                                     SimTime::zero() + SimDuration::ms(150),
                                     SimTime::zero() + SimDuration::ms(350));
  cfg.faults.stall_horizon = SimTime::zero() + SimDuration::sec(30);

  const ExperimentResult r = run_service_experiment(cfg);
  EXPECT_FALSE(r.stalled);
  EXPECT_GT(r.total_cs, 0u);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_EQ(r.client_crashes, 3u);
  ASSERT_EQ(r.per_lock.size(), 16u);
  EXPECT_EQ(r.faults_injected,
            3u + 1u + 1u);  // client crashes + lossy link + partition
}

TEST(ServiceChaos, CrashWhileHoldingIsRevokedAndServiceDrains) {
  // Kill whichever session holds lock 0 at t = 200 ms and never restart
  // it. The lease TTL expires, the authority revokes, the force-release
  // from the dead node loses the token, and PR 2's regeneration mints the
  // replacement — the service finishes every other arrival.
  ServiceConfig cfg = chaos_base(1, 400);  // overloaded: always a holder
  arm_resilience(cfg);
  cfg.check_protocol = true;
  cfg.holder_crashes.push_back(
      {.lock = 0, .at = SimDuration::ms(200), .down = SimDuration::ms(-1)});
  cfg.faults.stall_horizon = SimTime::zero() + SimDuration::sec(30);

  const ExperimentResult r = run_service_experiment(cfg);
  EXPECT_FALSE(r.stalled) << "revocation re-homed the orphaned lock";
  EXPECT_EQ(r.client_crashes, 1u);
  EXPECT_EQ(r.cs_interrupted, 1u) << "exactly the victim's CS was cut";
  EXPECT_EQ(r.lease_revocations, 1u);
  EXPECT_EQ(r.forced_releases, 1u);
  EXPECT_EQ(r.per_lock[0].revocations, 1u);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.total_cs, 0u);
  EXPECT_LE(r.total_cs + r.cs_interrupted, total_arrivals(r));
}

TEST(ServiceChaos, NegativeControlCrashedHolderWithoutLeasesStalls) {
  // Same crash, no lease layer: the hold dangles on the corpse, nothing
  // ever revokes it, and every later arrival for the lock starves. The
  // run provably stalls at the horizon — the watchdog the positive rows
  // are measured against. (Recovery stays armed: it cannot help, because
  // the token is not lost — it sits on a dead client.)
  ServiceConfig cfg = chaos_base(1, 400);
  cfg.holder_crashes.push_back(
      {.lock = 0, .at = SimDuration::ms(200), .down = SimDuration::ms(-1)});
  cfg.faults.stall_horizon = SimTime::zero() + SimDuration::sec(6);

  const ExperimentResult r = run_service_experiment(cfg);
  EXPECT_TRUE(r.stalled) << "without leases the orphaned hold is forever";
  EXPECT_EQ(r.client_crashes, 1u);
  EXPECT_GE(r.cs_interrupted, 1u);
  EXPECT_EQ(r.lease_revocations, 0u);
  EXPECT_EQ(r.forced_releases, 0u);
  EXPECT_LT(r.total_cs, total_arrivals(r));
  EXPECT_EQ(r.safety_violations, 0u) << "a stall is a liveness failure only";
}

// ---- overload / flash crowd ----

TEST(ServiceChaos, FlashCrowdShedsAreFullyAccounted) {
  // An 8x arrival burst against bounded queues and deadlines, retry off:
  // every arrival resolves exactly once, so completions + sheds + deadline
  // misses must tile the arrival count exactly.
  ServiceConfig cfg = chaos_base(2, 100);
  cfg.resilience.admission = {.max_pending = 3,
                              .policy = ShedPolicy::kRejectByDeadline};
  cfg.resilience.default_deadline = SimDuration::ms(100);
  cfg.flash.factor = 8.0;
  cfg.flash.from = SimDuration::ms(200);
  cfg.flash.until = SimDuration::ms(400);

  const ExperimentResult r = run_service_experiment(cfg);
  EXPECT_FALSE(r.stalled);
  EXPECT_GT(r.sheds + r.deadline_misses, 0u) << "the burst overloads";
  EXPECT_EQ(r.total_cs + r.sheds + r.deadline_misses, total_arrivals(r));
  std::uint64_t per_lock_sheds = 0;
  for (const LockMetrics& l : r.per_lock) per_lock_sheds += l.sheds;
  EXPECT_EQ(per_lock_sheds, r.sheds) << "retry off: every shed is terminal";
  EXPECT_EQ(r.acquire_retries, 0u);
  EXPECT_EQ(r.cs_interrupted, 0u);

  // The burst is real: the same config without it sees fewer arrivals.
  ServiceConfig calm = cfg;
  calm.flash.factor = 1.0;
  const ExperimentResult c = run_service_experiment(calm);
  EXPECT_GT(total_arrivals(r), total_arrivals(c));
}

// ---- determinism contracts ----

TEST(ServiceChaos, ChaoticRunsReplayBitIdentically) {
  ServiceConfig cfg = chaos_base(2, 150);
  arm_resilience(cfg);
  cfg.churn.crashes = 2;
  cfg.churn.first = SimDuration::ms(100);
  cfg.churn.every = SimDuration::ms(200);
  cfg.churn.down = SimDuration::ms(300);
  cfg.flash.factor = 4.0;
  cfg.flash.from = SimDuration::ms(300);
  cfg.flash.until = SimDuration::ms(500);
  cfg.faults.stall_horizon = SimTime::zero() + SimDuration::sec(30);

  const ExperimentResult a = run_service_experiment(cfg);
  const ExperimentResult b = run_service_experiment(cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.total_cs, b.total_cs);
  EXPECT_EQ(a.messages.sent, b.messages.sent);
  EXPECT_EQ(a.makespan.count_ns(), b.makespan.count_ns());
  EXPECT_EQ(a.sheds, b.sheds);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.acquire_retries, b.acquire_retries);
  EXPECT_EQ(a.lease_renewals, b.lease_renewals);
  EXPECT_EQ(a.lease_revocations, b.lease_revocations);
  EXPECT_EQ(a.forced_releases, b.forced_releases);
  EXPECT_EQ(a.cs_interrupted, b.cs_interrupted);
  EXPECT_EQ(a.client_crashes, b.client_crashes);
}

TEST(ServiceChaos, InertResilienceKeepsTheDeliveryTraceBitIdentical) {
  // The acceptance bullet behind the pinned golden hashes: resilience
  // machinery that never triggers — generous deadlines (every ticket is
  // granted first), a queue bound never reached, retry that never fires,
  // a flash window with factor 1 — adds no message, no draw and no
  // reordering. Leases stay off: renewals are real traffic by design.
  ServiceConfig base = chaos_base(4);
  base.hash_trace = true;
  const ExperimentResult plain = run_service_experiment(base);

  ServiceConfig inert = base;
  inert.resilience.default_deadline = SimDuration::sec(30);
  inert.resilience.admission = {.max_pending = 100'000,
                                .policy = ShedPolicy::kRejectByDeadline};
  inert.resilience.retry.attempts = 3;
  inert.flash.factor = 1.0;
  inert.flash.from = SimDuration::ms(100);
  inert.flash.until = SimDuration::ms(700);
  ASSERT_TRUE(inert.resilience.any());
  const ExperimentResult armed = run_service_experiment(inert);

  EXPECT_EQ(armed.trace_hash, plain.trace_hash);
  EXPECT_EQ(armed.messages.sent, plain.messages.sent);
  EXPECT_EQ(armed.total_cs, plain.total_cs);
  EXPECT_EQ(armed.makespan.count_ns(), plain.makespan.count_ns());
  EXPECT_EQ(armed.sheds + armed.deadline_misses + armed.acquire_retries, 0u);
}

// Parallel sweep equivalence over chaotic configs — the suite name is a
// TSan CI row: the sweep fans (config, repetition) cells across threads
// and must be bit-identical to the serial run for every job count.
TEST(ServiceChaosSweep, ParallelSweepMatchesSerialUnderChaos) {
  ServiceConfig churny = chaos_base(2, 150);
  arm_resilience(churny);
  churny.churn.crashes = 2;
  churny.churn.first = SimDuration::ms(100);
  churny.churn.every = SimDuration::ms(200);
  churny.churn.down = SimDuration::ms(300);
  churny.faults.stall_horizon = SimTime::zero() + SimDuration::sec(30);

  ServiceConfig bursty = chaos_base(2, 100);
  bursty.resilience.admission = {.max_pending = 3,
                                 .policy = ShedPolicy::kRejectNewest};
  bursty.resilience.default_deadline = SimDuration::ms(100);
  bursty.flash.factor = 6.0;
  bursty.flash.from = SimDuration::ms(200);
  bursty.flash.until = SimDuration::ms(400);

  const std::vector<ServiceConfig> configs{churny, bursty};
  const std::vector<ExperimentResult> serial =
      run_service_sweep(configs, 2, /*jobs=*/1);
  const std::vector<ExperimentResult> parallel =
      run_service_sweep(configs, 2, /*jobs=*/2);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const ExperimentResult& s = serial[i];
    const ExperimentResult& p = parallel[i];
    EXPECT_EQ(s.events, p.events);
    EXPECT_EQ(s.total_cs, p.total_cs);
    EXPECT_EQ(s.messages.sent, p.messages.sent);
    EXPECT_EQ(s.makespan.count_ns(), p.makespan.count_ns());
    EXPECT_EQ(s.sheds, p.sheds);
    EXPECT_EQ(s.deadline_misses, p.deadline_misses);
    EXPECT_EQ(s.acquire_retries, p.acquire_retries);
    EXPECT_EQ(s.lease_renewals, p.lease_renewals);
    EXPECT_EQ(s.lease_revocations, p.lease_revocations);
    EXPECT_EQ(s.cs_interrupted, p.cs_interrupted);
    EXPECT_EQ(s.client_crashes, p.client_crashes);
    ASSERT_EQ(s.per_lock.size(), p.per_lock.size());
    for (std::size_t l = 0; l < s.per_lock.size(); ++l) {
      EXPECT_EQ(s.per_lock[l].arrivals, p.per_lock[l].arrivals);
      EXPECT_EQ(s.per_lock[l].completed_cs, p.per_lock[l].completed_cs);
      EXPECT_EQ(s.per_lock[l].sheds, p.per_lock[l].sheds);
      EXPECT_EQ(s.per_lock[l].revocations, p.per_lock[l].revocations);
    }
  }
}

}  // namespace
}  // namespace gmx::testing
