// Coordinator automaton tests (paper Figs. 1b/2): state transitions, token
// handling at both levels, and the automaton legality invariant.
#include "gridmutex/core/coordinator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "composition_harness.hpp"

namespace gmx::testing {
namespace {

using State = Coordinator::State;

TEST(CoordinatorStateNames, AllFourRender) {
  EXPECT_EQ(to_string(State::kOut), "OUT");
  EXPECT_EQ(to_string(State::kWaitForIn), "WAIT_FOR_IN");
  EXPECT_EQ(to_string(State::kIn), "IN");
  EXPECT_EQ(to_string(State::kWaitForOut), "WAIT_FOR_OUT");
}

TEST(Coordinator, StartsInOutHoldingIntraCs) {
  CompositionHarness h({});
  h.start();
  h.run();
  for (ClusterId c = 0; c < 3; ++c) {
    auto& coord = h.comp().coordinator(c);
    EXPECT_EQ(coord.state(), State::kOut) << c;
    EXPECT_TRUE(coord.intra().in_cs()) << c;
    EXPECT_EQ(coord.inter().state(), CsState::kIdle) << c;
  }
  // Startup costs no messages at all for token-based compositions.
  EXPECT_EQ(h.net().counters().sent, 0u);
}

TEST(Coordinator, LocalRequestWalksOutWaitInCycle) {
  CompositionHarness h({});
  std::vector<std::pair<State, State>> trail;
  h.start();
  h.run();
  h.comp().coordinator(1).set_transition_hook(
      [&](const Coordinator&, State f, State t) { trail.emplace_back(f, t); });
  const NodeId app = h.topo().first_node_of(1) + 1;
  h.request(app);
  h.run();
  // Cluster 1's coordinator: OUT → WAIT_FOR_IN (asks cluster 0 for the
  // token) → IN (token received, intra token released to the app).
  ASSERT_GE(trail.size(), 2u);
  EXPECT_EQ(trail[0], (std::pair<State, State>{State::kOut, State::kWaitForIn}));
  EXPECT_EQ(trail[1], (std::pair<State, State>{State::kWaitForIn, State::kIn}));
  EXPECT_EQ(h.comp().coordinator(1).state(), State::kIn);
  EXPECT_TRUE(h.comp().app_mutex(app).in_cs());
  EXPECT_EQ(h.grants().size(), 1u);
}

TEST(Coordinator, RemoteDemandTriggersWaitForOutAndHandover) {
  CompositionHarness h({});
  h.start();
  h.run();
  const NodeId app1 = h.topo().first_node_of(1) + 1;
  const NodeId app2 = h.topo().first_node_of(2) + 1;
  h.request(app1);
  h.run();
  EXPECT_EQ(h.comp().coordinator(1).state(), State::kIn);
  // Cluster 2 wants in while app1 still holds the CS.
  h.request(app2);
  h.run_for(h.wan() * 3);
  EXPECT_EQ(h.comp().coordinator(1).state(), State::kWaitForOut);
  EXPECT_EQ(h.comp().coordinator(2).state(), State::kWaitForIn);
  EXPECT_EQ(h.grants().size(), 1u);  // app2 must wait
  h.release(app1);
  h.run();
  EXPECT_EQ(h.grants().size(), 2u);
  EXPECT_EQ(h.grants()[1], app2);
  EXPECT_EQ(h.comp().coordinator(1).state(), State::kOut);
  EXPECT_EQ(h.comp().coordinator(2).state(), State::kIn);
  EXPECT_FALSE(h.safety_violated());
}

TEST(Coordinator, InterTokenStaysWhileClusterKeepsRequesting) {
  // Aggregation (paper §4.4): several local CS under one inter acquisition.
  CompositionHarness h({});
  h.start();
  h.run();
  const NodeId a = h.topo().first_node_of(1) + 1;
  const NodeId b = h.topo().first_node_of(1) + 2;
  const NodeId c = h.topo().first_node_of(1) + 3;
  h.request(a);
  h.request(b);
  h.request(c);
  h.run();
  h.release(a);
  h.run();
  h.release(b);
  h.run();
  h.release(c);
  h.run();
  EXPECT_EQ(h.grants().size(), 3u);
  EXPECT_EQ(h.comp().coordinator(1).inter_acquisitions(), 1u);
  EXPECT_EQ(h.comp().coordinator(1).state(), State::kIn);  // nobody asked back
  EXPECT_FALSE(h.safety_violated());
}

TEST(Coordinator, ReclaimWaitsForLocalCsToFinish) {
  CompositionHarness h({});
  h.start();
  h.run();
  const NodeId app1 = h.topo().first_node_of(1) + 1;
  const NodeId app1b = h.topo().first_node_of(1) + 2;
  const NodeId app2 = h.topo().first_node_of(2) + 1;
  h.request(app1);
  h.run();
  h.request(app1b);  // queues locally behind app1
  h.run_for(h.wan());
  h.request(app2);   // remote demand → coordinator 1 reclaims
  h.run_for(h.wan() * 3);
  EXPECT_EQ(h.comp().coordinator(1).state(), State::kWaitForOut);
  h.release(app1);
  h.run();
  // app1b was already queued before the reclaim: it is served first, only
  // then does the inter token leave (bounded local service, no preemption).
  ASSERT_EQ(h.grants().size(), 2u);
  EXPECT_EQ(h.grants()[1], app1b);
  h.release(app1b);
  h.run();
  EXPECT_EQ(h.grants().size(), 3u);
  EXPECT_EQ(h.grants()[2], app2);
  EXPECT_FALSE(h.safety_violated());
}

TEST(Coordinator, PendingLocalDemandAfterHandoverReRequests) {
  CompositionHarness h({});
  h.start();
  h.run();
  const NodeId app1 = h.topo().first_node_of(1) + 1;
  const NodeId app1b = h.topo().first_node_of(1) + 2;
  const NodeId app2 = h.topo().first_node_of(2) + 1;
  h.request(app1);
  h.run();
  h.request(app2);  // remote demand
  h.run_for(h.wan() * 3);
  // New local demand arrives while coordinator 1 is reclaiming.
  h.request(app1b);
  h.run_for(h.wan());
  h.release(app1);
  h.run_for(h.wan() * 4);
  // Coordinator 1 passed the token away and immediately re-requested it.
  EXPECT_EQ(h.comp().coordinator(1).state(), State::kWaitForIn);
  h.release(app2);
  h.run();
  EXPECT_EQ(h.grant_count(app1b), 1);
  EXPECT_FALSE(h.safety_violated());
  EXPECT_EQ(h.comp().coordinator(1).inter_acquisitions(), 2u);
}

TEST(Coordinator, TransitionCountsAreTracked) {
  CompositionHarness h({});
  h.start();
  h.run();
  const NodeId app = h.topo().first_node_of(1) + 1;
  h.request(app);
  h.run();
  EXPECT_EQ(h.comp().coordinator(1).state_transitions(), 2u);  // OUT→WFI→IN
  EXPECT_EQ(h.comp().coordinator(0).state_transitions(), 0u);
}

TEST(Coordinator, PermissionIntraStartupRaceDoesNotDeadlock) {
  // Regression: with a permission-based intra algorithm the coordinator's
  // startup CS grant takes a LAN round-trip; requests that arrive in that
  // window raise no pending *edge*. The level re-check on the startup grant
  // must pick them up or the cluster deadlocks (found by the all-pairs
  // aggregation sweep with intra=lamport).
  for (const char* intra : {"lamport", "ricart", "maekawa"}) {
    CompositionHarness h({.intra = intra, .inter = "naimi"});
    h.set_auto_release(SimDuration::ms(1));
    h.start();
    // Request immediately — guaranteed to beat the startup round-trip.
    for (NodeId v : h.comp().app_nodes()) h.request(v);
    h.run();
    EXPECT_FALSE(h.safety_violated()) << intra;
    EXPECT_EQ(h.grants().size(), h.comp().app_nodes().size()) << intra;
  }
}

TEST(Coordinator, PauseDefersInterRequestsAndResumeReplays) {
  CompositionHarness h({});
  h.start();
  h.run();
  auto& coord = h.comp().coordinator(1);
  coord.pause_inter_requests();
  EXPECT_TRUE(coord.paused());
  const NodeId app = h.topo().first_node_of(1) + 1;
  h.request(app);
  h.run();
  // Demand noticed but no inter request issued.
  EXPECT_EQ(coord.state(), Coordinator::State::kOut);
  EXPECT_EQ(h.grants().size(), 0u);
  coord.resume_inter_requests();
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(coord.state(), Coordinator::State::kIn);
}

TEST(Coordinator, ForceVacateParksTheTokenAndReturnsToOut) {
  CompositionHarness h({});
  h.set_auto_release(SimDuration::ms(1));
  h.start();
  const NodeId app = h.topo().first_node_of(2) + 1;
  h.request(app);
  h.run();
  auto& coord = h.comp().coordinator(2);
  EXPECT_EQ(coord.state(), Coordinator::State::kIn);
  coord.force_vacate();
  h.run();
  EXPECT_EQ(coord.state(), Coordinator::State::kOut);
  // The inter token is parked, idle, at cluster 2.
  EXPECT_TRUE(coord.inter().holds_token());
  EXPECT_EQ(coord.inter().state(), CsState::kIdle);
}

TEST(Coordinator, ForceVacateIsNoOpOutsideIn) {
  CompositionHarness h({});
  h.start();
  h.run();
  auto& coord = h.comp().coordinator(1);
  ASSERT_EQ(coord.state(), Coordinator::State::kOut);
  coord.force_vacate();
  h.run();
  EXPECT_EQ(coord.state(), Coordinator::State::kOut);
  EXPECT_EQ(coord.state_transitions(), 0u);
}

TEST(CoordinatorDeathTest, RebindRequiresPausedOut) {
  CompositionHarness h({});
  h.start();
  h.run();
  EXPECT_DEATH(
      h.comp().coordinator(0).rebind_inter(h.comp().coordinator(0).inter()),
      "paused");
}

TEST(CoordinatorDeathTest, StartTwiceAborts) {
  CompositionHarness h({});
  h.start();
  h.run();
  EXPECT_DEATH(h.comp().coordinator(0).start(), "twice");
}

TEST(CoordinatorDeathTest, EndpointsOnDifferentNodesAbort) {
  Simulator sim;
  const Topology topo = Topology::uniform(2, 2);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  const std::vector<NodeId> intra_members = {0, 1};
  const std::vector<NodeId> inter_members = {1, 2};
  MutexEndpoint intra(net, 1, intra_members, 0, make_algorithm("naimi"),
                      Rng(1));
  MutexEndpoint inter(net, 2, inter_members, 1, make_algorithm("naimi"),
                      Rng(1));
  EXPECT_DEATH(Coordinator(intra, inter), "share a node");
}

}  // namespace
}  // namespace gmx::testing
