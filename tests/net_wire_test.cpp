#include "gridmutex/net/wire.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace gmx::wire {
namespace {

TEST(Wire, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);

  Reader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  r.expect_end();
}

TEST(Wire, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  const auto v = w.view();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 0x04);
  EXPECT_EQ(v[3], 0x01);
}

TEST(Wire, VarintSmallValuesAreOneByte) {
  for (std::uint64_t v : {0ull, 1ull, 127ull}) {
    Writer w;
    w.varint(v);
    EXPECT_EQ(w.size(), 1u) << v;
    Reader r(w.view());
    EXPECT_EQ(r.varint(), v);
  }
}

TEST(Wire, VarintBoundaries) {
  const std::uint64_t cases[] = {128, 16383, 16384, 0xFFFFFFFF,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    Writer w;
    w.varint(v);
    Reader r(w.view());
    EXPECT_EQ(r.varint(), v);
    r.expect_end();
  }
}

TEST(Wire, VarintMaxUsesTenBytes) {
  Writer w;
  w.varint(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(w.size(), 10u);
}

TEST(Wire, BytesRoundTrip) {
  Writer w;
  const std::vector<std::uint8_t> data = {1, 2, 3, 255, 0};
  w.bytes(data);
  Reader r(w.view());
  EXPECT_EQ(r.bytes(), data);
  r.expect_end();
}

TEST(Wire, EmptyBytes) {
  Writer w;
  w.bytes({});
  Reader r(w.view());
  EXPECT_TRUE(r.bytes().empty());
  r.expect_end();
}

TEST(Wire, StringRoundTrip) {
  Writer w;
  w.str("naimi-trehel");
  w.str("");
  Reader r(w.view());
  EXPECT_EQ(r.str(), "naimi-trehel");
  EXPECT_EQ(r.str(), "");
  r.expect_end();
}

TEST(Wire, VarintArrayRoundTrip) {
  Writer w;
  const std::vector<std::uint64_t> v = {0, 1, 128, 99999, 1ull << 50};
  w.varint_array(std::span<const std::uint64_t>(v));
  Reader r(w.view());
  EXPECT_EQ(r.varint_array_u64(), v);
  r.expect_end();
}

TEST(Wire, VarintArrayU32RoundTrip) {
  Writer w;
  const std::vector<std::uint32_t> v = {7, 0, 4000000000u};
  w.varint_array(std::span<const std::uint32_t>(v));
  Reader r(w.view());
  EXPECT_EQ(r.varint_array_u32(), v);
}

TEST(Wire, TruncatedFixedWidthThrows) {
  Writer w;
  w.u16(7);
  Reader r(w.view());
  r.u8();
  EXPECT_THROW(r.u16(), WireError);
}

TEST(Wire, TruncatedVarintThrows) {
  const std::vector<std::uint8_t> bad = {0x80, 0x80};  // never terminates
  Reader r(bad);
  EXPECT_THROW(r.varint(), WireError);
}

TEST(Wire, OverlongVarintThrows) {
  // 11 continuation bytes exceed a 64-bit value.
  const std::vector<std::uint8_t> bad(11, 0x80);
  Reader r(bad);
  EXPECT_THROW(r.varint(), WireError);
}

TEST(Wire, VarintBitOverflowThrows) {
  // 10 bytes whose top chunk would set bits above 2^64.
  std::vector<std::uint8_t> bad(9, 0x80);
  bad.push_back(0x7F);
  Reader r(bad);
  EXPECT_THROW(r.varint(), WireError);
}

TEST(Wire, ArrayLengthBombThrows) {
  Writer w;
  w.varint(1'000'000);  // claims a million elements, provides none
  Reader r(w.view());
  EXPECT_THROW(r.varint_array_u64(), WireError);
}

TEST(Wire, U32ArrayElementOverflowThrows) {
  Writer w;
  w.varint(1);
  w.varint(1ull << 40);
  Reader r(w.view());
  EXPECT_THROW(r.varint_array_u32(), WireError);
}

TEST(Wire, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.view());
  r.u8();
  EXPECT_THROW(r.expect_end(), WireError);
}

TEST(Wire, RemainingTracksConsumption) {
  Writer w;
  w.u32(5);
  Reader r(w.view());
  EXPECT_EQ(r.remaining(), 4u);
  r.u16();
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_FALSE(r.at_end());
  r.u16();
  EXPECT_TRUE(r.at_end());
}

TEST(Wire, WriterTakeMovesBuffer) {
  Writer w;
  w.u8(9);
  auto buf = w.take();
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 9);
}

}  // namespace
}  // namespace gmx::wire
