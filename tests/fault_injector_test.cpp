// FaultInjector: compiling declarative FaultPlans onto the network —
// crash/restart omission windows, partition/heal, lossy-link windows,
// targeted message drops, and the active-fault gauge.
#include "gridmutex/fault/injector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

namespace gmx {
namespace {

SimTime at(std::int64_t ms) { return SimTime::zero() + SimDuration::ms(ms); }

struct InjectorFixture : ::testing::Test {
  InjectorFixture()
      : topo(Topology::uniform(2, 3)),
        net(sim, topo,
            std::make_shared<FixedLatencyModel>(SimDuration::ms(5)),
            Rng(1)) {}

  Message make(NodeId src, NodeId dst, std::uint16_t type = 0) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.protocol = 7;
    m.type = type;
    m.payload.assign(4, std::uint8_t(0xEE));
    return m;
  }

  void send_at(std::int64_t ms, NodeId src, NodeId dst,
               std::uint16_t type = 0) {
    sim.schedule_at(at(ms), [this, src, dst, type] {
      net.send(make(src, dst, type));
    });
  }

  Simulator sim;
  Topology topo;
  Network net;
};

TEST_F(InjectorFixture, CrashWindowDropsBothWaysThenRestores) {
  std::vector<std::uint16_t> got;
  net.attach(1, 7, [&](const Message& m) { got.push_back(m.type); });
  net.attach(0, 7, [&](const Message& m) { got.push_back(m.type); });

  FaultPlan plan;
  plan.crash(1, at(10), at(30));
  FaultInjector inj(net, std::move(plan));
  std::vector<std::pair<NodeId, bool>> hooks;
  inj.add_node_hook([&](NodeId n, bool up) { hooks.emplace_back(n, up); });
  inj.arm();

  send_at(15, 0, 1, 100);  // into the window: lost at the destination
  send_at(15, 1, 0, 101);  // out of the window: lost at the source
  send_at(40, 0, 1, 102);  // after restart: delivered
  sim.schedule_at(at(15), [&] { EXPECT_EQ(inj.active_faults(), 1); });
  sim.schedule_at(at(50), [&] { EXPECT_EQ(inj.active_faults(), 0); });
  sim.run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 102);
  EXPECT_EQ(inj.stats().crashes, 1u);
  EXPECT_EQ(inj.stats().restarts, 1u);
  ASSERT_EQ(hooks.size(), 2u);
  EXPECT_EQ(hooks[0], (std::pair<NodeId, bool>{1, false}));
  EXPECT_EQ(hooks[1], (std::pair<NodeId, bool>{1, true}));
}

TEST_F(InjectorFixture, PartitionWindowCutsTheClusterPair) {
  int intra = 0, inter = 0;
  net.attach(1, 7, [&](const Message&) { ++intra; });
  net.attach(3, 7, [&](const Message&) { ++inter; });

  FaultPlan plan;
  plan.partition_clusters(0, 1, at(0), at(20));
  FaultInjector inj(net, std::move(plan));
  inj.arm();

  send_at(5, 0, 3);   // cross-cluster, inside the window: dropped
  send_at(5, 0, 1);   // intra-cluster: a partition never touches it
  send_at(25, 0, 3);  // healed: delivered
  sim.run();

  EXPECT_EQ(intra, 1);
  EXPECT_EQ(inter, 1);
  EXPECT_EQ(net.counters().dropped, 1u);
  EXPECT_EQ(inj.stats().partitions, 1u);
  EXPECT_EQ(inj.stats().heals, 1u);
}

TEST_F(InjectorFixture, LossyLinkWindowExpires) {
  int inter = 0;
  net.attach(3, 7, [&](const Message&) { ++inter; });

  FaultPlan plan;
  plan.lossy_link(0, 1, 1.0, at(0), at(20));
  FaultInjector inj(net, std::move(plan));
  inj.arm();

  send_at(5, 0, 3);
  send_at(25, 0, 3);
  sim.run();

  EXPECT_EQ(inter, 1);
  EXPECT_EQ(net.counters().dropped, 1u);
  EXPECT_EQ(inj.stats().lossy_links, 1u);
}

TEST_F(InjectorFixture, TargetedDropsRespectTypeCountAndWindow) {
  std::vector<std::uint16_t> got;
  net.attach(1, 7, [&](const Message& m) { got.push_back(m.type); });

  FaultPlan plan;
  plan.drop_messages(7, 42, 2, at(0));          // first two type-42 frames
  plan.drop_messages(7, 5, 10, at(0), at(10));  // type 5, but only early
  FaultInjector inj(net, std::move(plan));
  inj.arm();

  send_at(1, 0, 1, 42);
  send_at(2, 0, 1, 42);
  send_at(3, 0, 1, 42);  // ammunition spent: delivered
  send_at(4, 0, 1, 9);   // never matched
  send_at(15, 0, 1, 5);  // outside the rule's window: delivered
  sim.run();

  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], 42);
  EXPECT_EQ(got[1], 9);
  EXPECT_EQ(got[2], 5);
  EXPECT_EQ(inj.stats().targeted_drops, 2u);
}

TEST_F(InjectorFixture, WildcardTypeMatchesEveryFrameOfTheProtocol) {
  int got = 0;
  net.attach(1, 7, [&](const Message&) { ++got; });

  FaultPlan plan;
  plan.drop_messages(7, FaultPlan::kAnyType, 1, at(0));
  FaultInjector inj(net, std::move(plan));
  inj.arm();

  send_at(1, 0, 1, 3);
  send_at(2, 0, 1, 4);
  sim.run();

  EXPECT_EQ(got, 1);
  EXPECT_EQ(inj.stats().targeted_drops, 1u);
}

TEST_F(InjectorFixture, DestructionCancelsScheduledFaults) {
  int got = 0;
  net.attach(1, 7, [&](const Message&) { ++got; });
  {
    FaultPlan plan;
    plan.crash_forever(1, at(50));
    FaultInjector inj(net, std::move(plan));
    inj.arm();
  }  // dies before the crash fires
  send_at(60, 0, 1);
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_TRUE(net.node_up(1));
}

}  // namespace
}  // namespace gmx
