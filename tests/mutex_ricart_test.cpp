// White-box tests of Ricart-Agrawala: Lamport clocks, deferred replies,
// 2(N-1) message cost, timestamp/rank priority.
#include "gridmutex/mutex/ricart_agrawala.hpp"

#include <gtest/gtest.h>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

RicartAgrawalaMutex& algo(MutexHarness& h, int rank) {
  return dynamic_cast<RicartAgrawalaMutex&>(h.ep(rank).algorithm());
}

TEST(Ricart, UncontendedCsCostsTwoNMinusTwoMessages) {
  const int n = 6;
  MutexHarness h({.participants = n, .algorithm = "ricart"});
  h.request(2);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, std::uint64_t(2 * (n - 1)));
}

TEST(Ricart, LamportClockAdvancesWithTraffic) {
  MutexHarness h({.participants = 3, .algorithm = "ricart"});
  EXPECT_EQ(algo(h, 0).clock(), 0u);
  h.request(0);
  h.run();
  EXPECT_GE(algo(h, 0).clock(), 1u);
  EXPECT_GE(algo(h, 1).clock(), 2u);  // bumped by 0's request
  h.release(0);
  h.run();
  h.request(1);
  h.run();
  EXPECT_GT(algo(h, 1).clock(), 2u);
}

TEST(Ricart, InCsDefersAllRequests) {
  MutexHarness h({.participants = 4, .algorithm = "ricart"});
  h.request(0);
  h.run();
  h.request(1);
  h.request(2);
  h.run();
  EXPECT_TRUE(h.ep(0).has_pending_requests());
  EXPECT_EQ(h.grants().size(), 1u);  // nobody else entered
  h.release(0);
  h.run();
  // One of {1,2} wins; the other stays deferred until the winner releases.
  ASSERT_EQ(h.grants().size(), 2u);
  h.release(h.grants().back());
  h.run();
  EXPECT_EQ(h.grants().size(), 3u);
  EXPECT_FALSE(h.safety_violated());
}

TEST(Ricart, SmallerTimestampWins) {
  // 1 requests first (ts=1); after its request has been seen everywhere,
  // 2 requests with a larger clock — 1 must enter first.
  MutexHarness h({.participants = 3, .algorithm = "ricart"});
  h.request(1);
  h.run();   // 1 is in CS already (uncontended)
  h.release(1);
  h.run();
  h.request(1);                    // ts ~ 2·latency bumps... still smaller
  h.run_for(SimDuration::us(1));   // deliver nothing yet (latency 1ms)
  h.request(2);                    // later ts after receiving 1's traffic? no:
  h.run();                         // 2's ts is its local clock+1
  EXPECT_FALSE(h.safety_violated());
  // Both served eventually.
  h.release(h.grants().back());
  h.run();
  const auto& g = h.grants();
  EXPECT_EQ(std::count(g.begin(), g.end(), 1), 2);
  EXPECT_EQ(std::count(g.begin(), g.end(), 2), 1);
}

TEST(Ricart, RankBreaksTimestampTies) {
  // Both request at t=0 with identical timestamps; the lower rank must win
  // — the property the composition layer relies on for coordinator rank 0.
  MutexHarness h({.participants = 2, .algorithm = "ricart"});
  h.set_auto_release(SimDuration::ms(1));
  h.request(1);
  h.request(0);
  h.run();
  ASSERT_EQ(h.grants().size(), 2u);
  EXPECT_EQ(h.grants()[0], 0);
  EXPECT_EQ(h.grants()[1], 1);
  EXPECT_FALSE(h.safety_violated());
}

TEST(Ricart, SingletonInstanceGrantsInstantly) {
  MutexHarness h({.participants = 1, .algorithm = "ricart"});
  h.request(0);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 0u);
}

TEST(Ricart, HoldsTokenMapsToInCs) {
  MutexHarness h({.participants = 3, .algorithm = "ricart"});
  EXPECT_EQ(h.token_holder_count(), 0);  // no token exists
  h.request(0);
  h.run();
  EXPECT_TRUE(h.ep(0).holds_token());
  h.release(0);
  h.run();
  EXPECT_EQ(h.token_holder_count(), 0);
}

TEST(Ricart, ToleratesNonFifoDelivery) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    MutexHarness h({.participants = 5, .algorithm = "ricart",
                    .seed = seed, .fifo = false});
    h.net().set_reorder_spread(SimDuration::ms(5));
    h.set_auto_release(SimDuration::ms(1));
    for (int r = 0; r < 5; ++r) h.drive(r, 5, SimDuration::ms(2));
    h.run();
    EXPECT_FALSE(h.safety_violated()) << seed;
    for (int r = 0; r < 5; ++r) EXPECT_EQ(h.grant_count(r), 5) << seed;
  }
}

TEST(RicartDeathTest, UnsolicitedReplyAborts) {
  MutexHarness h({.participants = 3, .algorithm = "ricart"});
  Message m;
  m.src = 1;
  m.dst = 0;
  m.protocol = 1;
  m.type = RicartAgrawalaMutex::kReply;
  h.net().send(std::move(m));
  EXPECT_DEATH(h.run(), "unexpected reply");
}

}  // namespace
}  // namespace gmx::testing
