// ProtocolChecker on healthy runs: every invariant sweep stays clean over
// flat instances (token and permission based), full compositions, and
// checker-armed experiments — and the SafetyMonitor forensics record
// time/instance/rank detail.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gridmutex/analysis/protocol_checker.hpp"
#include "gridmutex/core/composition.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/workload/experiment.hpp"
#include "gridmutex/workload/safety_monitor.hpp"
#include "mutex_harness.hpp"

namespace gmx {
namespace {

using testing::HarnessOptions;
using testing::MutexHarness;

// ---------------------------------------------------------------- flat runs

class FlatCheckerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FlatCheckerTest, HealthyRunIsClean) {
  const std::string algorithm = GetParam();
  MutexHarness h(HarnessOptions{.participants = 4, .algorithm = algorithm});

  // Checker declared after the harness: destroyed first, hooks removed
  // before the endpoints die.
  ProtocolChecker checker(h.sim(),
                          CheckerOptions{.grant_bound = SimDuration::sec(60)});
  checker.attach_network(h.net());
  std::vector<MutexEndpoint*> eps;
  for (int r = 0; r < h.size(); ++r) eps.push_back(&h.ep(r));
  checker.attach_instance(algorithm, eps, is_token_based(algorithm));

  h.set_auto_release(SimDuration::ms(2));
  for (int r = 0; r < h.size(); ++r) h.drive(r, 3, SimDuration::ms(3));
  h.run();

  EXPECT_TRUE(checker.ok()) << checker.summary();
  EXPECT_EQ(checker.violation_count(), 0u);
  EXPECT_GT(checker.checks_run(), 0u);
  for (int r = 0; r < h.size(); ++r) EXPECT_EQ(h.grant_count(r), 3);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FlatCheckerTest,
                         ::testing::ValuesIn(algorithm_names()),
                         [](const auto& info) { return info.param; });

TEST(FlatChecker, CountsOneSweepPerEvent) {
  MutexHarness h(HarnessOptions{.participants = 3, .algorithm = "naimi"});
  ProtocolChecker checker(h.sim());
  checker.attach_network(h.net());
  std::vector<MutexEndpoint*> eps;
  for (int r = 0; r < h.size(); ++r) eps.push_back(&h.ep(r));
  checker.attach_instance("naimi", eps, true);

  h.set_auto_release(SimDuration::ms(1));
  h.drive(1, 2, SimDuration::ms(1));
  h.run();

  EXPECT_EQ(checker.checks_run(), h.sim().events_processed());
}

TEST(FlatChecker, DetachRestoresUncheckedExecution) {
  MutexHarness h(HarnessOptions{.participants = 3, .algorithm = "naimi"});
  {
    ProtocolChecker checker(h.sim());
    checker.attach_network(h.net());
    std::vector<MutexEndpoint*> eps;
    for (int r = 0; r < h.size(); ++r) eps.push_back(&h.ep(r));
    checker.attach_instance("naimi", eps, true);
  }
  // Hooks are gone: the run proceeds as if never watched.
  h.set_auto_release(SimDuration::ms(1));
  h.drive(2, 2, SimDuration::ms(1));
  h.run();
  EXPECT_EQ(h.grant_count(2), 2);
  EXPECT_FALSE(h.safety_violated());
}

// --------------------------------------------------------------- composition

TEST(CompositionChecker, TwoLevelRunIsClean) {
  Simulator sim;
  sim.set_event_limit(5'000'000);
  Topology topo = Composition::make_topology(3, 2);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)), Rng(5));
  Composition comp(net, CompositionConfig{.intra_algorithm = "naimi",
                                          .inter_algorithm = "martin",
                                          .initial_cluster = 0,
                                          .protocol_base = 1,
                                          .seed = 5});

  ProtocolChecker checker(sim,
                          CheckerOptions{.grant_bound = SimDuration::sec(60)});
  checker.attach_network(net);
  checker.attach_composition(comp);

  struct App {
    Simulator* sim;
    MutexEndpoint* ep;
    int remaining;
    int granted = 0;
  };
  std::vector<App> apps;
  apps.reserve(comp.app_nodes().size());
  for (NodeId v : comp.app_nodes())
    apps.push_back(App{&sim, &comp.app_mutex(v), 2});
  for (auto& a : apps) {
    a.ep->set_callbacks(MutexCallbacks{[&a] {
      ++a.granted;
      a.sim->schedule_after(SimDuration::ms(1), [&a] {
        a.ep->release_cs();
        if (--a.remaining > 0) {
          a.sim->schedule_after(SimDuration::ms(1),
                                [&a] { a.ep->request_cs(); });
        }
      });
    }, {}});
    a.sim->schedule_after(SimDuration::us(100), [&a] { a.ep->request_cs(); });
  }
  comp.start();
  sim.run();

  EXPECT_TRUE(checker.ok()) << checker.summary();
  for (const auto& a : apps) EXPECT_EQ(a.granted, 2);
  EXPECT_EQ(net.in_flight(), 0u);
}

// ---------------------------------------------------------------- experiment

TEST(ExperimentChecker, ArmedRunReportsSweepsAndStaysClean) {
  ExperimentConfig cfg;
  cfg.mode = ExperimentConfig::Mode::kComposition;
  cfg.intra = "naimi";
  cfg.inter = "naimi";
  cfg.clusters = 2;
  cfg.apps_per_cluster = 3;
  cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                       SimDuration::ms(10));
  cfg.workload.cs_count = 2;
  cfg.check_protocol = true;

  const ExperimentResult res = run_experiment(cfg);
  EXPECT_GT(res.invariant_checks, 0u);
  EXPECT_EQ(res.invariant_checks, res.events);
  EXPECT_EQ(res.safety_violations, 0u);
  EXPECT_TRUE(res.first_violation.empty());
}

TEST(ExperimentChecker, FlatModeArmsToo) {
  ExperimentConfig cfg;
  cfg.mode = ExperimentConfig::Mode::kFlat;
  cfg.flat_algorithm = "suzuki";
  cfg.clusters = 2;
  cfg.apps_per_cluster = 2;
  cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                       SimDuration::ms(10));
  cfg.workload.cs_count = 2;
  cfg.check_protocol = true;

  const ExperimentResult res = run_experiment(cfg);
  EXPECT_GT(res.invariant_checks, 0u);
  EXPECT_EQ(res.safety_violations, 0u);
}

// ------------------------------------------------------------ SafetyMonitor

TEST(SafetyMonitorDetail, RecordsTimeInstanceAndRanks) {
  SafetyMonitor mon(/*abort_on_violation=*/false);
  mon.enter(SimTime::zero() + SimDuration::ms(5), /*instance=*/1, /*rank=*/3);
  EXPECT_EQ(mon.violations(), 0u);
  mon.enter(SimTime::zero() + SimDuration::ms(7), /*instance=*/1, /*rank=*/4);
  ASSERT_EQ(mon.violations(), 1u);

  ASSERT_TRUE(mon.first_violation().has_value());
  const SafetyMonitor::Violation& v = *mon.first_violation();
  EXPECT_EQ(v.time, SimTime::zero() + SimDuration::ms(7));
  EXPECT_EQ(v.entering.instance, 1);
  EXPECT_EQ(v.entering.rank, 4);
  ASSERT_EQ(v.inside.size(), 1u);
  EXPECT_EQ(v.inside[0].rank, 3);

  const std::string s = v.to_string();
  EXPECT_NE(s.find("rank 4"), std::string::npos) << s;
  EXPECT_NE(s.find("rank 3"), std::string::npos) << s;

  mon.exit(1, 4);
  mon.exit(1, 3);
  EXPECT_EQ(mon.in_cs(), 0);
  // The first violation is preserved for forensics after the dust settles.
  EXPECT_TRUE(mon.first_violation().has_value());
}

TEST(SafetyMonitorDetail, LegacyCallersStillWork) {
  SafetyMonitor mon(false);
  mon.enter();
  EXPECT_EQ(mon.in_cs(), 1);
  EXPECT_EQ(mon.violations(), 0u);
  mon.exit();
  EXPECT_EQ(mon.in_cs(), 0);
  EXPECT_EQ(mon.entries(), 1u);
}

}  // namespace
}  // namespace gmx
