// Mutation tests: seed a protocol bug on purpose and require the analysis
// layer to catch it. Three mutations from the issue checklist:
//   1. a grant that duplicates the token (server keeps it while granting),
//   2. a queued request that is silently dropped (starvation/deadlock),
//   3. an illegal coordinator transition (automaton edge that does not
//      exist in paper Fig. 2).
// Each must be flagged by the ProtocolChecker, and (for the two protocol
// mutations) found by the model-check harness as well.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "gridmutex/analysis/model_check.hpp"
#include "gridmutex/analysis/protocol_checker.hpp"
#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/sim/assert.hpp"
#include "gridmutex/sim/simulator.hpp"

namespace gmx {
namespace {

// A deliberately breakable central-server mutex: rank 0 is a pure server
// (it never requests), clients send REQ and wait for GRANT, release with
// RELEASE. Correct by construction with Fault::kNone; each fault re-creates
// one classic implementation bug.
class BreakableCentral final : public MutexAlgorithm {
 public:
  enum class Fault {
    kNone,
    kDuplicateTokenOnGrant,  // server grants but never gives the token up
    kDropQueuedRequest,      // a REQ arriving while busy is discarded
  };

  static constexpr std::uint16_t kReq = 1;
  static constexpr std::uint16_t kGrant = 2;
  static constexpr std::uint16_t kRelease = 3;

  explicit BreakableCentral(Fault fault) : fault_(fault) {}

  void init(int holder_rank) override {
    GMX_ASSERT(holder_rank == 0);
    if (ctx().self() == 0) have_token_ = true;
  }

  void request_cs() override {
    GMX_ASSERT_MSG(ctx().self() != 0, "rank 0 is a pure server here");
    begin_request();
    ctx().send(0, kReq, {});
  }

  void release_cs() override {
    begin_release();
    have_token_ = false;
    ctx().send(0, kRelease, {});
  }

  void on_message(int from_rank, std::uint16_t type, wire::Reader) override {
    switch (type) {
      case kReq:
        if (have_token_) {
          grant_to(from_rank);
        } else if (fault_ != Fault::kDropQueuedRequest) {
          queue_.push_back(from_rank);
        }
        return;
      case kGrant:
        have_token_ = true;
        enter_cs_and_notify();
        return;
      case kRelease:
        have_token_ = true;
        if (!queue_.empty()) {
          const int next = queue_.front();
          queue_.pop_front();
          grant_to(next);
        }
        return;
      default:
        GMX_ASSERT_MSG(false, "unknown message type");
    }
  }

  [[nodiscard]] bool has_pending_requests() const override {
    return !queue_.empty();
  }
  [[nodiscard]] bool holds_token() const override { return have_token_; }
  [[nodiscard]] std::string_view name() const override {
    return "breakable-central";
  }

 private:
  void grant_to(int rank) {
    if (fault_ != Fault::kDuplicateTokenOnGrant) have_token_ = false;
    ctx().send(rank, kGrant, {});
  }

  Fault fault_;
  bool have_token_ = false;
  std::deque<int> queue_;
};

/// One server + `clients` clients, all clients requesting at t=0 and doing
/// one CS each; the checker watches with `grant_bound`. After the run the
/// world reports the checker summary plus any client that never finished.
struct BrokenWorld {
  explicit BrokenWorld(Simulator& sim, BreakableCentral::Fault fault,
                       int clients, SimDuration grant_bound)
      : topo(Topology::uniform(1, std::uint32_t(clients) + 1)),
        net(sim, topo,
            std::make_shared<FixedLatencyModel>(SimDuration::ms(1)), Rng(3)) {
    sim.set_event_limit(200'000);
    const int n = clients + 1;
    std::vector<NodeId> members(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) members[std::size_t(r)] = NodeId(r);
    for (int r = 0; r < n; ++r) {
      eps.push_back(std::make_unique<MutexEndpoint>(
          net, /*protocol=*/1, members, r,
          std::make_unique<BreakableCentral>(fault),
          Rng(3).fork(std::uint64_t(r))));
    }
    for (auto& ep : eps) ep->init(0);

    checker = std::make_unique<ProtocolChecker>(
        sim, CheckerOptions{.grant_bound = grant_bound,
                            .abort_on_violation = false});
    checker->attach_network(net);
    std::vector<MutexEndpoint*> raw;
    for (auto& ep : eps) raw.push_back(ep.get());
    checker->attach_instance("breakable-central", raw, /*token_based=*/true);

    granted.assign(std::size_t(n), 0);
    Simulator* simp = &sim;
    for (int r = 1; r < n; ++r) {
      MutexEndpoint* ep = eps[std::size_t(r)].get();
      ep->set_callbacks(MutexCallbacks{[this, simp, ep, r] {
        ++granted[std::size_t(r)];
        simp->schedule_after(SimDuration::ms(1), [ep] { ep->release_cs(); });
      }, {}});
      sim.schedule_after(SimDuration::ns(0), [ep] { ep->request_cs(); });
    }
  }

  Topology topo;
  Network net;
  std::vector<std::unique_ptr<MutexEndpoint>> eps;
  std::unique_ptr<ProtocolChecker> checker;  // destroyed before the eps
  std::vector<int> granted;
};

bool has_kind(const ProtocolChecker& checker,
              ProtocolChecker::Violation::Kind kind) {
  for (const auto& v : checker.violations())
    if (v.kind == kind) return true;
  return false;
}

// ------------------------------------------------- mutation 1: duplication

TEST(Mutation, DuplicatedTokenOnGrantIsFlagged) {
  Simulator sim;
  BrokenWorld w(sim, BreakableCentral::Fault::kDuplicateTokenOnGrant,
                /*clients=*/2, SimDuration::sec(60));
  sim.run();

  EXPECT_FALSE(w.checker->ok());
  EXPECT_TRUE(has_kind(*w.checker,
                       ProtocolChecker::Violation::Kind::kTokenDuplicated))
      << w.checker->summary();
  const std::string s = w.checker->summary();
  EXPECT_NE(s.find("token duplicated"), std::string::npos) << s;
  EXPECT_NE(s.find("breakable-central"), std::string::npos) << s;
}

TEST(Mutation, HealthyVariantOfTheSameWorldIsClean) {
  Simulator sim;
  BrokenWorld w(sim, BreakableCentral::Fault::kNone, /*clients=*/2,
                SimDuration::sec(60));
  sim.run();
  EXPECT_TRUE(w.checker->ok()) << w.checker->summary();
  EXPECT_EQ(w.granted[1], 1);
  EXPECT_EQ(w.granted[2], 1);
}

// -------------------------------------------- mutation 2: dropped request

TEST(Mutation, DroppedQueuedRequestStarvesAndIsFlagged) {
  Simulator sim;
  // Tight liveness bound; the no-op heartbeat below keeps events (and thus
  // checker sweeps) flowing past it after the protocol has wedged.
  BrokenWorld w(sim, BreakableCentral::Fault::kDropQueuedRequest,
                /*clients=*/2, SimDuration::ms(500));
  for (int tick = 1; tick <= 4; ++tick)
    sim.schedule_after(SimDuration::ms(400) * tick, [] {});
  sim.run();

  EXPECT_FALSE(w.checker->ok());
  EXPECT_TRUE(has_kind(*w.checker,
                       ProtocolChecker::Violation::Kind::kStarvation))
      << w.checker->summary();
  // Exactly one of the two clients got in; the other's REQ was discarded.
  EXPECT_EQ(w.granted[1] + w.granted[2], 1);
  // The diagnostic names the starved rank.
  bool named = false;
  for (const auto& v : w.checker->violations()) {
    if (v.kind == ProtocolChecker::Violation::Kind::kStarvation) {
      EXPECT_EQ(v.instance, "breakable-central");
      EXPECT_TRUE(v.rank == 1 || v.rank == 2) << v.to_string();
      named = true;
    }
  }
  EXPECT_TRUE(named);
}

// ------------------------------- the same mutations under the model checker

Scenario broken_scenario(BreakableCentral::Fault fault, int clients) {
  return [fault, clients](Simulator& sim) -> std::string {
    BrokenWorld w(sim, fault, clients, SimDuration::sec(3600));
    sim.run();
    std::string diag = w.checker->summary();
    for (int r = 1; r <= clients; ++r) {
      if (w.granted[std::size_t(r)] != 1) {
        if (!diag.empty()) diag += "\n";
        diag += "deadlock: client " + std::to_string(r) + " completed " +
                std::to_string(w.granted[std::size_t(r)]) +
                "/1 critical sections";
      }
    }
    return diag;
  };
}

TEST(MutationModelCheck, FindsTheDuplicatedToken) {
  const ModelCheckResult res = model_check(
      broken_scenario(BreakableCentral::Fault::kDuplicateTokenOnGrant, 2),
      ModelCheckOptions{.max_schedules = 200});
  ASSERT_TRUE(res.violation) << res.to_string();
  EXPECT_NE(res.diagnostic.find("token duplicated"), std::string::npos)
      << res.diagnostic;
}

TEST(MutationModelCheck, FindsTheDroppedRequestDeadlock) {
  const ModelCheckResult res = model_check(
      broken_scenario(BreakableCentral::Fault::kDropQueuedRequest, 2),
      ModelCheckOptions{.max_schedules = 200});
  ASSERT_TRUE(res.violation) << res.to_string();
  EXPECT_NE(res.diagnostic.find("deadlock"), std::string::npos)
      << res.diagnostic;
}

TEST(MutationModelCheck, HealthyVariantSurvivesTheSameSweep) {
  const ModelCheckResult res =
      model_check(broken_scenario(BreakableCentral::Fault::kNone, 2),
                  ModelCheckOptions{.max_schedules = 200});
  EXPECT_FALSE(res.violation) << res.to_string();
}

// -------------------------- mutation 3: illegal coordinator transition

TEST(Mutation, IllegalCoordinatorTransitionIsFlagged) {
  using S = Coordinator::State;
  Simulator sim;
  ProtocolChecker checker(sim, CheckerOptions{.abort_on_violation = false});

  // Every Fig. 2 edge is legal...
  checker.report_coordinator_transition("coord[0]", S::kOut, S::kWaitForIn);
  checker.report_coordinator_transition("coord[0]", S::kWaitForIn, S::kIn);
  checker.report_coordinator_transition("coord[0]", S::kIn, S::kWaitForOut);
  checker.report_coordinator_transition("coord[0]", S::kWaitForOut, S::kOut);
  EXPECT_TRUE(checker.ok()) << checker.summary();

  // ...and every skipped or reversed edge is not. OUT -> IN grabs the
  // privilege without ever requesting the inter token.
  checker.report_coordinator_transition("coord[0]", S::kOut, S::kIn);
  EXPECT_FALSE(checker.ok());
  ASSERT_EQ(checker.violations().size(), 1u);
  const auto& v = checker.violations().front();
  EXPECT_EQ(v.kind,
            ProtocolChecker::Violation::Kind::kIllegalCoordinatorTransition);
  EXPECT_EQ(v.instance, "coord[0]");
  EXPECT_NE(v.detail.find("Fig. 1(b)"), std::string::npos) << v.detail;

  checker.report_coordinator_transition("coord[0]", S::kIn, S::kOut);
  checker.report_coordinator_transition("coord[0]", S::kWaitForIn, S::kOut);
  EXPECT_EQ(checker.violation_count(), 3u);
}

TEST(Mutation, IllegalCsTransitionIsFlagged) {
  Simulator sim;
  ProtocolChecker checker(sim, CheckerOptions{.abort_on_violation = false});

  checker.report_cs_transition("probe", 2, CsState::kIdle,
                               CsState::kRequesting);
  checker.report_cs_transition("probe", 2, CsState::kRequesting,
                               CsState::kInCs);
  checker.report_cs_transition("probe", 2, CsState::kInCs, CsState::kIdle);
  EXPECT_TRUE(checker.ok()) << checker.summary();

  // Entering the CS without requesting skips a Fig. 1(a) edge.
  checker.report_cs_transition("probe", 2, CsState::kIdle, CsState::kInCs);
  EXPECT_FALSE(checker.ok());
  const auto& v = checker.violations().front();
  EXPECT_EQ(v.kind, ProtocolChecker::Violation::Kind::kIllegalCsTransition);
  EXPECT_EQ(v.rank, 2);
}

}  // namespace
}  // namespace gmx
