// End-to-end LockService experiments (service/experiment.hpp): the CI
// service smoke gate (checker-armed K=4 run), per-lock metric consistency,
// Zipf skew effects, determinism, batching equivalence and CSV export.
#include "gridmutex/service/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "gridmutex/workload/report.hpp"

namespace gmx::testing {
namespace {

ServiceConfig small_config(std::uint32_t locks, double zipf_s = 0.9) {
  ServiceConfig cfg;
  cfg.locks = locks;
  cfg.clusters = 3;
  cfg.apps_per_cluster = 3;
  cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                       SimDuration::ms(10));
  cfg.open_loop.arrivals_per_sec = 100;
  cfg.open_loop.window = SimDuration::ms(800);
  cfg.open_loop.hold = SimDuration::ms(5);
  cfg.open_loop.zipf_s = zipf_s;
  cfg.seed = 11;
  return cfg;
}

std::uint64_t total_arrivals(const ExperimentResult& r) {
  std::uint64_t n = 0;
  for (const LockMetrics& l : r.per_lock) n += l.arrivals;
  return n;
}

// The CI service gate: a checker-armed K=4 Zipf run must drain with
// nonzero throughput and zero per-lock invariant violations.
TEST(ServiceSmoke, CheckerArmedZipfRunDrainsClean) {
  ServiceConfig cfg = small_config(4);
  cfg.check_protocol = true;
  const ExperimentResult r = run_service_experiment(cfg);

  EXPECT_FALSE(r.stalled);
  EXPECT_GT(r.total_cs, 0u);
  EXPECT_GT(r.throughput_cs_per_s(), 0.0);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.invariant_checks, 0u);
  ASSERT_EQ(r.per_lock.size(), 4u);
  EXPECT_EQ(r.total_cs, total_arrivals(r)) << "every arrival completed";
  EXPECT_GT(r.jain_fairness(), 0.0);
  EXPECT_LE(r.jain_fairness(), 1.0 + 1e-12);
}

TEST(ServiceExperiment, PerLockMetricsSumToAggregate) {
  const ExperimentResult r = run_service_experiment(small_config(4));
  std::uint64_t cs = 0, obtain_count = 0, proto_msgs = 0, inter = 0;
  for (const LockMetrics& l : r.per_lock) {
    cs += l.completed_cs;
    obtain_count += l.obtaining.count();
    proto_msgs += l.protocol_msgs;
    inter += l.inter_msgs;
  }
  EXPECT_EQ(cs, r.total_cs);
  EXPECT_EQ(obtain_count, r.obtaining.count());
  EXPECT_EQ(obtain_count, r.obtaining_hist.count());
  // Per-lock protocol messages (wire + batched) must cover everything the
  // network sent except BATCH frames themselves, and inter-cluster splits
  // must stay within the network's aggregate count.
  EXPECT_EQ(proto_msgs, r.messages.sent + r.batched_messages - r.batch_frames);
  EXPECT_LE(inter, r.messages.inter_cluster + r.batched_messages);
  EXPECT_GT(proto_msgs, 0u);
}

TEST(ServiceExperiment, ZipfSkewConcentratesArrivalsOnHeadLock) {
  const ExperimentResult skewed =
      run_service_experiment(small_config(8, 1.5));
  const ExperimentResult uniform =
      run_service_experiment(small_config(8, 0.0));

  const double head_share_skewed =
      double(skewed.per_lock[0].arrivals) / double(total_arrivals(skewed));
  const double head_share_uniform =
      double(uniform.per_lock[0].arrivals) / double(total_arrivals(uniform));
  EXPECT_GT(head_share_skewed, 2.0 * head_share_uniform);
  EXPECT_GT(uniform.jain_fairness(), skewed.jain_fairness());
}

TEST(ServiceExperiment, RoundRobinAndHashPlacementsBothBalance) {
  ServiceConfig cfg = small_config(6);
  const ExperimentResult rr = run_service_experiment(cfg);
  for (LockId l = 0; l < 6; ++l)
    EXPECT_EQ(rr.per_lock[l].home_cluster, l % 3);

  cfg.placement = Placement::kHash;
  const ExperimentResult hashed = run_service_experiment(cfg);
  for (LockId l = 0; l < 6; ++l) {
    EXPECT_EQ(hashed.per_lock[l].home_cluster,
              LockTable::hash_cluster(hashed.per_lock[l].name, 3));
  }
  EXPECT_EQ(hashed.total_cs, rr.total_cs)
      << "placement moves coordinators, not workload";
}

// Acceptance bullet: a fault-free K>1 run is bit-identical across two
// invocations with the same seed.
TEST(ServiceExperiment, SameSeedRunsAreBitIdentical) {
  const ServiceConfig cfg = small_config(4);
  const ExperimentResult a = run_service_experiment(cfg);
  const ExperimentResult b = run_service_experiment(cfg);

  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.total_cs, b.total_cs);
  EXPECT_EQ(a.messages.sent, b.messages.sent);
  EXPECT_EQ(a.messages.bytes_total, b.messages.bytes_total);
  EXPECT_EQ(a.makespan.count_ns(), b.makespan.count_ns());
  EXPECT_EQ(a.batched_messages, b.batched_messages);
  EXPECT_EQ(a.batch_frames, b.batch_frames);
  ASSERT_EQ(a.per_lock.size(), b.per_lock.size());
  for (std::size_t l = 0; l < a.per_lock.size(); ++l) {
    EXPECT_EQ(a.per_lock[l].arrivals, b.per_lock[l].arrivals);
    EXPECT_EQ(a.per_lock[l].completed_cs, b.per_lock[l].completed_cs);
    EXPECT_EQ(a.per_lock[l].protocol_msgs, b.per_lock[l].protocol_msgs);
    EXPECT_EQ(a.per_lock[l].inter_msgs, b.per_lock[l].inter_msgs);
    // Bit-exact double equality is the point: same event trajectory.
    EXPECT_EQ(a.per_lock[l].obtaining.mean_ms(),
              b.per_lock[l].obtaining.mean_ms());
  }
}

TEST(ServiceExperiment, BatchingPreservesCompletionsAndCutsDatagrams) {
  ServiceConfig cfg = small_config(4);
  cfg.open_loop.arrivals_per_sec = 200;  // denser instants batch more
  const ExperimentResult batched = run_service_experiment(cfg);
  cfg.batching = false;
  const ExperimentResult plain = run_service_experiment(cfg);

  EXPECT_EQ(batched.total_cs, plain.total_cs);
  EXPECT_EQ(total_arrivals(batched), total_arrivals(plain));
  EXPECT_EQ(plain.batched_messages, 0u);
  if (batched.batched_messages > 0) {
    EXPECT_LT(batched.messages.sent, plain.messages.sent)
        << "each multi-message frame removes datagrams from the wire";
  }
}

TEST(ServiceExperiment, ReplicationMergesPerLockRows) {
  const ExperimentResult one = run_service_experiment(small_config(3));
  ServiceConfig cfg = small_config(3);
  const ExperimentResult merged = run_service_replicated(cfg, 2);

  ASSERT_EQ(merged.per_lock.size(), 3u);
  EXPECT_EQ(merged.repetitions, 2);
  EXPECT_GT(merged.total_cs, one.total_cs);
  EXPECT_GT(merged.service_seconds, one.service_seconds);
  for (std::size_t l = 0; l < 3; ++l)
    EXPECT_GE(merged.per_lock[l].arrivals, one.per_lock[l].arrivals);
}

TEST(ServiceExperiment, ServiceCsvHasPerLockAndAggregateRows) {
  const ExperimentResult r = run_service_experiment(small_config(3));
  std::ostringstream out;
  const SeriesPoint point{r.label, r.zipf_s, r};
  write_service_csv(out, {&point, 1});

  const std::string csv = out.str();
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1 + 3 + 1) << "header + one row per lock + ALL row";
  EXPECT_NE(csv.find("lock0"), std::string::npos);
  EXPECT_NE(csv.find("ALL"), std::string::npos);
  EXPECT_NE(csv.find("fairness"), std::string::npos);
}

TEST(ServiceExperiment, SingleLockServiceMatchesCompositionShape) {
  // K=1 degenerates to one composition plus session plumbing: it must
  // still drain with all arrivals served strictly one at a time.
  const ExperimentResult r = run_service_experiment(small_config(1));
  ASSERT_EQ(r.per_lock.size(), 1u);
  EXPECT_EQ(r.per_lock[0].completed_cs, r.total_cs);
  EXPECT_EQ(r.total_cs, total_arrivals(r));
  EXPECT_EQ(r.jain_fairness(), 1.0);
}

}  // namespace
}  // namespace gmx::testing
