// Zipf lock-popularity sampler: distribution shape, determinism, and the
// uniform degenerate case (workload/open_loop.hpp).
#include "gridmutex/workload/open_loop.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gmx::testing {
namespace {

TEST(Zipf, SIsZeroDegeneratesToUniform) {
  const ZipfSampler z(8, 0.0);
  for (std::uint32_t i = 0; i < 8; ++i)
    EXPECT_NEAR(z.probability(i), 1.0 / 8.0, 1e-12) << "rank " << i;
}

TEST(Zipf, ProbabilitiesAreNormalizedAndMonotone) {
  for (const double s : {0.5, 0.9, 1.2, 2.0}) {
    const ZipfSampler z(16, s);
    double sum = 0.0;
    for (std::uint32_t i = 0; i < 16; ++i) {
      sum += z.probability(i);
      if (i > 0) {
        EXPECT_LT(z.probability(i), z.probability(i - 1))
            << "s=" << s << " rank " << i;
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "s=" << s;
    // Exact head weight: p(0) = 1 / sum_i (1/(i+1)^s).
    double denom = 0.0;
    for (int i = 1; i <= 16; ++i) denom += 1.0 / std::pow(i, s);
    EXPECT_NEAR(z.probability(0), 1.0 / denom, 1e-12);
  }
}

TEST(Zipf, EmpiricalFrequenciesMatchProbabilities) {
  const ZipfSampler z(8, 0.9);
  Rng rng(42);
  std::vector<int> counts(8, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::uint32_t i = 0; i < 8; ++i) {
    const double freq = double(counts[i]) / n;
    EXPECT_NEAR(freq, z.probability(i), 0.01) << "rank " << i;
  }
  // The head rank dominates under skew.
  EXPECT_GT(counts[0], counts[7] * 3);
}

TEST(Zipf, SamplingIsDeterministicPerSeed) {
  const ZipfSampler z(32, 1.2);
  Rng a(7), b(7), c(8);
  std::vector<std::uint32_t> sa, sb, sc;
  for (int i = 0; i < 100; ++i) {
    sa.push_back(z.sample(a));
    sb.push_back(z.sample(b));
    sc.push_back(z.sample(c));
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(Zipf, SingleRankAlwaysSamplesZero) {
  const ZipfSampler z(1, 1.2);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_NEAR(z.probability(0), 1.0, 1e-12);
}

TEST(Zipf, EveryRankIsReachable) {
  const ZipfSampler z(4, 2.0);  // heavy skew: tail ranks are rare
  Rng rng(11);
  std::vector<bool> seen(4, false);
  for (int i = 0; i < 100'000; ++i) seen[z.sample(rng)] = true;
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_TRUE(seen[i]) << "rank " << i;
}

}  // namespace
}  // namespace gmx::testing
