// Composition-level conformance: every (intra, inter) algorithm pair must
// preserve grid-wide safety and liveness — the paper's central claim that
// any two token algorithms compose unmodified (§3.1). Also checks the
// structural properties: message aggregation, transparency, topology rules.
#include "gridmutex/core/composition.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "gridmutex/net/trace.hpp"

#include "composition_harness.hpp"

namespace gmx::testing {
namespace {

struct PairParam {
  std::string intra;
  std::string inter;
  std::uint64_t seed;
};

std::vector<PairParam> pair_space() {
  std::vector<PairParam> out;
  for (const auto& intra : algorithm_names())
    for (const auto& inter : algorithm_names())
      out.push_back({intra, inter, 11});
  // Deeper seed sweep for the paper's three algorithms.
  for (const std::string intra : {"naimi", "martin", "suzuki"})
    for (const std::string inter : {"naimi", "martin", "suzuki"})
      for (std::uint64_t seed : {2ull, 3ull})
        out.push_back({intra, inter, seed});
  return out;
}

class CompositionPairs : public ::testing::TestWithParam<PairParam> {};

std::string pair_name(const ::testing::TestParamInfo<PairParam>& info) {
  return info.param.intra + "_" + info.param.inter + "_s" +
         std::to_string(info.param.seed);
}

TEST_P(CompositionPairs, SaturatedWorkloadIsSafeAndLive) {
  const auto& p = GetParam();
  CompositionHarness h({.intra = p.intra, .inter = p.inter, .seed = p.seed});
  h.set_auto_release(SimDuration::ms(2));
  h.start();
  const int cycles = 4;
  Rng rng(p.seed);
  for (NodeId v : h.comp().app_nodes())
    h.drive(v, cycles,
            SimDuration::us(std::int64_t(rng.next_below(3000)) + 1));
  h.run();
  EXPECT_FALSE(h.safety_violated());
  for (NodeId v : h.comp().app_nodes())
    EXPECT_EQ(h.grant_count(v), cycles) << "node " << v;
  EXPECT_TRUE(h.sim().idle());
  EXPECT_EQ(h.net().in_flight(), 0u);
}

TEST_P(CompositionPairs, SparseWorkloadIsSafeAndLive) {
  const auto& p = GetParam();
  CompositionHarness h({.intra = p.intra, .inter = p.inter, .seed = p.seed});
  h.set_auto_release(SimDuration::ms(2));
  h.start();
  Rng rng(p.seed + 99);
  for (NodeId v : h.comp().app_nodes())
    h.drive(v, 2,
            SimDuration::ms(std::int64_t(rng.next_below(400)) + 50));
  h.run();
  EXPECT_FALSE(h.safety_violated());
  for (NodeId v : h.comp().app_nodes()) EXPECT_EQ(h.grant_count(v), 2);
}

TEST_P(CompositionPairs, AggregationReducesInterAcquisitions) {
  // Under saturation, one inter acquisition serves many local CS entries
  // (paper §4.4). The number of inter acquisitions must be strictly less
  // than the number of grants.
  const auto& p = GetParam();
  CompositionHarness h({.intra = p.intra, .inter = p.inter, .seed = p.seed});
  h.set_auto_release(SimDuration::ms(2));
  h.start();
  for (NodeId v : h.comp().app_nodes())
    h.drive(v, 5, SimDuration::us(100));
  h.run();
  EXPECT_FALSE(h.safety_violated());
  const std::uint64_t grants = h.grants().size();
  EXPECT_EQ(grants, std::uint64_t(h.comp().app_nodes().size()) * 5u);
  EXPECT_LT(h.comp().total_inter_acquisitions(), grants);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, CompositionPairs,
                         ::testing::ValuesIn(pair_space()), pair_name);

TEST(Composition, TopologyHelperAddsCoordinatorSlot) {
  const Topology t = Composition::make_topology(9, 20);
  EXPECT_EQ(t.cluster_count(), 9u);
  EXPECT_EQ(t.node_count(), 9u * 21u);
}

TEST(Composition, AppNodesExcludeCoordinators) {
  CompositionHarness h({.clusters = 3, .apps_per_cluster = 4});
  EXPECT_EQ(h.comp().app_nodes().size(), 12u);
  for (ClusterId c = 0; c < 3; ++c) {
    EXPECT_TRUE(h.comp().is_coordinator_node(h.topo().first_node_of(c)));
  }
  for (NodeId v : h.comp().app_nodes())
    EXPECT_FALSE(h.comp().is_coordinator_node(v));
}

TEST(Composition, ProtocolIdsArePartitioned) {
  CompositionHarness h({});
  EXPECT_EQ(h.comp().inter_protocol(), 1u);
  EXPECT_EQ(h.comp().intra_protocol(0), 2u);
  EXPECT_EQ(h.comp().intra_protocol(2), 4u);
}

TEST(Composition, TraceLabelerNamesProtocols) {
  CompositionHarness h({.intra = "naimi", .inter = "martin"});
  const auto label = h.comp().trace_labeler();
  EXPECT_EQ(label(h.comp().inter_protocol(), 2), "inter(martin).TOKEN");
  EXPECT_EQ(label(h.comp().intra_protocol(2), 1), "intra[2](naimi).REQUEST");
  EXPECT_EQ(label(9999, 5), "p9999.t5");
}

TEST(Composition, TraceSinkIntegration) {
  CompositionHarness h({});
  std::ostringstream out;
  TraceSink sink(out, h.comp().trace_labeler());
  sink.install(h.net());
  h.start();
  h.run();
  const NodeId app = h.topo().first_node_of(1) + 1;
  h.request(app);
  h.run();
  const std::string log = out.str();
  EXPECT_NE(log.find("intra[1](naimi).REQUEST"), std::string::npos);
  EXPECT_NE(log.find("inter(naimi).TOKEN"), std::string::npos);
  EXPECT_GT(sink.lines_written(), 3u);
}

TEST(Composition, CrossClusterTrafficOnlyWhenTokenMoves) {
  // A purely local workload in the token-holding cluster generates zero
  // inter-cluster messages.
  CompositionHarness h({});
  h.start();
  h.run();
  const NodeId local = h.topo().first_node_of(0) + 1;  // initial cluster
  h.request(local);
  h.run();
  h.release(local);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().inter_cluster, 0u);
}

TEST(Composition, InterAcquisitionCountsPerCluster) {
  CompositionHarness h({});
  h.set_auto_release(SimDuration::ms(1));
  h.start();
  const NodeId a = h.topo().first_node_of(1) + 1;
  const NodeId b = h.topo().first_node_of(2) + 1;
  h.request(a);
  h.run();
  h.request(b);
  h.run();
  EXPECT_EQ(h.comp().coordinator(1).inter_acquisitions(), 1u);
  EXPECT_EQ(h.comp().coordinator(2).inter_acquisitions(), 1u);
  EXPECT_EQ(h.comp().coordinator(0).inter_acquisitions(), 0u);
  EXPECT_EQ(h.comp().total_inter_acquisitions(), 2u);
}

TEST(Composition, PrivilegeInvariantHoldsAtEveryTransition) {
  // Strongest form of the §3.2 claim: after *every* coordinator transition,
  // at most one coordinator is in IN/WAIT_FOR_OUT.
  CompositionHarness h({.clusters = 4, .apps_per_cluster = 3, .seed = 5});
  int worst = 0;
  for (ClusterId c = 0; c < 4; ++c) {
    h.comp().coordinator(c).set_transition_hook(
        [&](const Coordinator&, Coordinator::State, Coordinator::State) {
          worst = std::max(worst, h.comp().privileged_coordinators());
        });
  }
  h.set_auto_release(SimDuration::ms(1));
  h.start();
  Rng rng(17);
  for (NodeId v : h.comp().app_nodes())
    h.drive(v, 6, SimDuration::us(std::int64_t(rng.next_below(20000)) + 1));
  h.run();
  EXPECT_FALSE(h.safety_violated());
  EXPECT_LE(worst, 1);
}

TEST(Composition, TwoClustersMinimumWorks) {
  CompositionHarness h({.clusters = 2, .apps_per_cluster = 1});
  h.set_auto_release(SimDuration::ms(1));
  h.start();
  for (NodeId v : h.comp().app_nodes()) h.drive(v, 3, SimDuration::ms(1));
  h.run();
  EXPECT_FALSE(h.safety_violated());
  EXPECT_EQ(h.grants().size(), 6u);
}

TEST(Composition, InitialClusterConfigPlacesToken) {
  Simulator sim;
  const Topology topo = Composition::make_topology(3, 2);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  Composition comp(net, CompositionConfig{.intra_algorithm = "naimi",
                                          .inter_algorithm = "naimi",
                                          .initial_cluster = 2,
                                          .seed = 1});
  comp.start();
  sim.run();
  EXPECT_TRUE(comp.coordinator(2).inter().holds_token());
  EXPECT_FALSE(comp.coordinator(0).inter().holds_token());
}

TEST(CompositionDeathTest, AppMutexOfCoordinatorNodeAborts) {
  CompositionHarness h({});
  EXPECT_DEATH((void)h.comp().app_mutex(h.topo().first_node_of(0)),
               "coordinator");
}

TEST(CompositionDeathTest, SingleNodeClusterAborts) {
  Simulator sim;
  const Topology topo = Topology::uniform(2, 1);  // no room for apps
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  EXPECT_DEATH(Composition(net, CompositionConfig{}), "coordinator and >=1");
}

}  // namespace
}  // namespace gmx::testing
