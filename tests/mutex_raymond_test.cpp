// White-box tests of Raymond's tree algorithm: static tree shape, holder
// edge maintenance, and local FIFO behaviour.
#include "gridmutex/mutex/raymond.hpp"

#include <gtest/gtest.h>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

RaymondMutex& algo(MutexHarness& h, int rank) {
  return dynamic_cast<RaymondMutex&>(h.ep(rank).algorithm());
}

TEST(Raymond, HeapTreeRootedAtHolder) {
  MutexHarness h({.participants = 7, .algorithm = "raymond",
                  .holder_rank = 0});
  EXPECT_EQ(algo(h, 0).tree_parent(), MutexAlgorithm::kNoHolder);
  EXPECT_EQ(algo(h, 1).tree_parent(), 0);
  EXPECT_EQ(algo(h, 2).tree_parent(), 0);
  EXPECT_EQ(algo(h, 3).tree_parent(), 1);
  EXPECT_EQ(algo(h, 4).tree_parent(), 1);
  EXPECT_EQ(algo(h, 5).tree_parent(), 2);
  EXPECT_EQ(algo(h, 6).tree_parent(), 2);
}

TEST(Raymond, TreeReRootsAtNonZeroHolder) {
  MutexHarness h({.participants = 5, .algorithm = "raymond",
                  .holder_rank = 3});
  EXPECT_EQ(algo(h, 3).tree_parent(), MutexAlgorithm::kNoHolder);
  // Virtual index of rank 4 is 1 → parent v0 → rank 3.
  EXPECT_EQ(algo(h, 4).tree_parent(), 3);
  // Virtual index of rank 0 is 2 → parent v0 → rank 3.
  EXPECT_EQ(algo(h, 0).tree_parent(), 3);
  EXPECT_TRUE(h.ep(3).holds_token());
}

TEST(Raymond, InitialHolderEdgesPointTowardRoot) {
  MutexHarness h({.participants = 7, .algorithm = "raymond",
                  .holder_rank = 0});
  EXPECT_EQ(algo(h, 0).holder_dir(), 0);
  EXPECT_EQ(algo(h, 5).holder_dir(), 2);
  EXPECT_EQ(algo(h, 3).holder_dir(), 1);
}

TEST(Raymond, LeafRequestClimbsToRootAndTokenDescends) {
  MutexHarness h({.participants = 7, .algorithm = "raymond",
                  .holder_rank = 0});
  h.request(5);  // path 5→2→0; token 0→2→5
  h.run();
  ASSERT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.grants()[0], 5);
  EXPECT_EQ(h.net().counters().sent, 4u);  // 2 requests + 2 token hops
  // Holder edges now point toward 5.
  EXPECT_EQ(algo(h, 0).holder_dir(), 2);
  EXPECT_EQ(algo(h, 2).holder_dir(), 5);
  EXPECT_EQ(algo(h, 5).holder_dir(), 5);
}

TEST(Raymond, TokenReturnsAlongHolderEdges) {
  MutexHarness h({.participants = 7, .algorithm = "raymond",
                  .holder_rank = 0});
  h.request(5);
  h.run();
  h.release(5);
  h.run();
  const auto before = h.net().counters().sent;
  h.request(6);  // 6→2 (2's holder edge points at 5) →5; token back 5→2→6
  h.run();
  EXPECT_EQ(h.grants().back(), 6);
  EXPECT_EQ(h.net().counters().sent - before, 4u);
}

TEST(Raymond, IntermediateNodeServesItselfBeforeForwarding) {
  // 5 requests, then 2 (on 5's path) requests: 2's own entry enqueues
  // behind the duty to forward to 5... order at 2's queue is [5-origin,
  // self], so 5 is served first, then the token comes back to 2.
  MutexHarness h({.participants = 7, .algorithm = "raymond",
                  .holder_rank = 0});
  h.request(0);
  h.run();
  h.request(5);
  h.run();
  h.request(2);
  h.run();
  h.release(0);
  h.run();
  h.release(5);
  h.run();
  h.release(2);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 5, 2}));
  EXPECT_FALSE(h.safety_violated());
}

TEST(Raymond, PendingObserverFiresAtHolderInCs) {
  MutexHarness h({.participants = 3, .algorithm = "raymond",
                  .holder_rank = 0});
  h.request(0);
  h.run();
  h.request(1);
  h.run();
  ASSERT_GE(h.pending_events().size(), 1u);
  EXPECT_EQ(h.pending_events()[0], 0);
  EXPECT_TRUE(h.ep(0).has_pending_requests());
}

TEST(Raymond, AskedFlagPreventsDuplicateRequests) {
  // Two children of the same relay request concurrently; the relay must
  // send a single kRequest upward.
  MutexHarness h({.participants = 7, .algorithm = "raymond",
                  .holder_rank = 0});
  h.request(0);
  h.run();
  std::uint64_t requests_to_root = 0;
  h.net().set_tracer([&](const Message& m, SimTime, SimTime) {
    if (m.type == RaymondMutex::kRequest && m.dst == 0) ++requests_to_root;
  });
  h.request(5);
  h.request(6);  // both under relay 2
  h.run();
  EXPECT_EQ(requests_to_root, 1u);  // relay 2 asked once
  h.release(0);
  h.run();
  h.release(5);
  h.run();
  h.release(6);
  h.run();
  EXPECT_EQ(h.grant_count(5), 1);
  EXPECT_EQ(h.grant_count(6), 1);
}

TEST(Raymond, MessagesPerCsBoundedByTreeDepth) {
  MutexHarness h({.participants = 31, .algorithm = "raymond", .seed = 9});
  h.set_auto_release(SimDuration::ms(1));
  for (int r = 0; r < 31; ++r) h.drive(r, 6, SimDuration::ms(4));
  h.run();
  const double per_cs =
      double(h.net().counters().sent) / double(h.grants().size());
  // Depth of a 31-node heap is 4; worst case 4 up + 4 down per CS.
  EXPECT_LE(per_cs, 8.0);
  EXPECT_FALSE(h.safety_violated());
}

}  // namespace
}  // namespace gmx::testing
