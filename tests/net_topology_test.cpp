#include "gridmutex/net/topology.hpp"

#include <gtest/gtest.h>

namespace gmx {
namespace {

TEST(Topology, UniformShape) {
  const Topology t = Topology::uniform(9, 20);
  EXPECT_EQ(t.node_count(), 180u);
  EXPECT_EQ(t.cluster_count(), 9u);
  for (ClusterId c = 0; c < 9; ++c) EXPECT_EQ(t.cluster_size(c), 20u);
}

TEST(Topology, ClusterOfMapsContiguousRanges) {
  const Topology t = Topology::uniform(3, 4);
  EXPECT_EQ(t.cluster_of(0), 0u);
  EXPECT_EQ(t.cluster_of(3), 0u);
  EXPECT_EQ(t.cluster_of(4), 1u);
  EXPECT_EQ(t.cluster_of(11), 2u);
}

TEST(Topology, FirstNodeAndNodesOf) {
  const Topology t = Topology::uniform(3, 4);
  EXPECT_EQ(t.first_node_of(0), 0u);
  EXPECT_EQ(t.first_node_of(2), 8u);
  const auto nodes = t.nodes_of(1);
  EXPECT_EQ(nodes, (std::vector<NodeId>{4, 5, 6, 7}));
}

TEST(Topology, HeterogeneousSizes) {
  const std::vector<std::uint32_t> sizes = {2, 5, 1};
  const Topology t = Topology::from_sizes(sizes);
  EXPECT_EQ(t.node_count(), 8u);
  EXPECT_EQ(t.cluster_size(0), 2u);
  EXPECT_EQ(t.cluster_size(1), 5u);
  EXPECT_EQ(t.cluster_size(2), 1u);
  EXPECT_EQ(t.cluster_of(7), 2u);
}

TEST(Topology, DefaultNames) {
  const std::vector<std::uint32_t> sizes = {1, 1};
  const Topology t = Topology::from_sizes(sizes);
  EXPECT_EQ(t.cluster_name(0), "c0");
  EXPECT_EQ(t.cluster_name(1), "c1");
}

TEST(Topology, CustomNames) {
  const std::vector<std::uint32_t> sizes = {1, 1};
  const Topology t = Topology::from_sizes(sizes, {"paris", "lyon"});
  EXPECT_EQ(t.cluster_name(0), "paris");
  EXPECT_EQ(t.cluster_name(1), "lyon");
}

TEST(Topology, SameCluster) {
  const Topology t = Topology::uniform(2, 3);
  EXPECT_TRUE(t.same_cluster(0, 2));
  EXPECT_FALSE(t.same_cluster(2, 3));
}

TEST(Topology, Grid5000MatchesPaperShape) {
  const Topology t = Topology::grid5000();
  EXPECT_EQ(t.cluster_count(), 9u);
  EXPECT_EQ(t.node_count(), 180u);
  EXPECT_EQ(t.cluster_name(0), "orsay");
  EXPECT_EQ(t.cluster_name(8), "bordeaux");
}

TEST(Topology, Grid5000SiteNamesOrder) {
  const auto names = grid5000_site_names();
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names[4], "lille");
  EXPECT_EQ(names[5], "nancy");
}

TEST(Topology, Grid5000CustomClusterSize) {
  const Topology t = Topology::grid5000(21);  // room for a coordinator node
  EXPECT_EQ(t.node_count(), 9u * 21u);
}

TEST(TopologyDeathTest, EmptyClusterListAborts) {
  const std::vector<std::uint32_t> none;
  EXPECT_DEATH(Topology::from_sizes(none), "at least one cluster");
}

TEST(TopologyDeathTest, OutOfRangeNodeAborts) {
  const Topology t = Topology::uniform(2, 2);
  EXPECT_DEATH((void)t.cluster_of(4), "");
}

}  // namespace
}  // namespace gmx
