// Randomized property tests ("chaos"): random request/hold/release
// interleavings over jittered Grid5000 latencies, checked for the three
// contract properties — safety, liveness, quiescence — across algorithms,
// compositions and seeds. Complements the structured conformance suites
// with schedules no hand-written scenario would produce.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gridmutex/core/composition.hpp"
#include "gridmutex/fault/recovery.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/workload/safety_monitor.hpp"

namespace gmx::testing {
namespace {

// A chaotic driver for one mutex endpoint: loops { think U(0,spread);
// request; hold U(0,hold); release } a random number of times.
class ChaosDriver {
 public:
  ChaosDriver(Simulator& sim, MutexEndpoint& ep, Rng rng,
              SafetyMonitor& safety)
      : sim_(sim), ep_(ep), rng_(rng), safety_(safety) {
    cycles_ = 1 + int(rng_.next_below(8));
    ep_.set_callbacks(MutexCallbacks{[this] { on_granted(); }, {}});
  }

  void start() { think(); }
  [[nodiscard]] int served() const { return served_; }
  [[nodiscard]] int requested() const { return requested_; }

 private:
  void think() {
    sim_.schedule_after(
        SimDuration::us(std::int64_t(rng_.next_below(60'000))), [this] {
          ++requested_;
          ep_.request_cs();
        });
  }
  void on_granted() {
    safety_.enter();
    ++served_;
    sim_.schedule_after(
        SimDuration::us(std::int64_t(rng_.next_below(8'000)) + 1), [this] {
          safety_.exit();
          ep_.release_cs();
          if (served_ < cycles_) think();
        });
  }

  Simulator& sim_;
  MutexEndpoint& ep_;
  Rng rng_;
  SafetyMonitor& safety_;
  int cycles_ = 0;
  int served_ = 0;
  int requested_ = 0;
};

struct ChaosParam {
  std::string flat_or_composition;  // "flat:<name>" or "<intra>-<inter>"
  std::uint64_t seed;
  bool fifo = true;
  // Lossy-network mode: random drop/duplicate rates with ARQ + token-loss
  // recovery armed. The contract must hold despite the noise.
  double drop = 0.0;
  double dup = 0.0;
};

std::vector<ChaosParam> chaos_space() {
  std::vector<ChaosParam> out;
  for (const auto& a : algorithm_names())
    for (std::uint64_t s : {101ull, 202ull, 303ull})
      out.push_back({"flat:" + a, s, true});
  for (const char* c : {"naimi-naimi", "naimi-martin", "suzuki-suzuki",
                        "martin-suzuki", "bertier-ricart"})
    for (std::uint64_t s : {11ull, 22ull})
      out.push_back({c, s, true});
  // Non-FIFO links for the algorithms that claim tolerance (sequence
  // numbers / self-synchronizing replies).
  for (const char* a : {"suzuki", "ricart"})
    for (std::uint64_t s : {404ull, 505ull, 606ull})
      out.push_back({std::string("flat:") + a, s, false});
  // Lossy links: every registered algorithm, plus composed stacks, must
  // keep the contract when datagrams vanish and duplicate at random —
  // the ARQ layer absorbs the losses, recovery stands by for the rest.
  for (const auto& a : algorithm_names())
    out.push_back({"flat:" + a, 777, true, 0.15, 0.10});
  for (const char* c : {"naimi-naimi", "suzuki-martin", "martin-suzuki"})
    for (std::uint64_t s : {31ull, 32ull})
      out.push_back({c, s, true, 0.15, 0.10});
  return out;
}

class Chaos : public ::testing::TestWithParam<ChaosParam> {};

std::string chaos_name(const ::testing::TestParamInfo<ChaosParam>& info) {
  std::string n = info.param.flat_or_composition;
  for (char& ch : n)
    if (ch == ':' || ch == '-') ch = '_';
  return n + "_s" + std::to_string(info.param.seed) +
         (info.param.fifo ? "" : "_nofifo") +
         (info.param.drop > 0.0 || info.param.dup > 0.0 ? "_lossy" : "");
}

TEST_P(Chaos, RandomScheduleKeepsContract) {
  const auto& p = GetParam();
  Simulator sim;
  sim.set_event_limit(30'000'000);
  const bool flat = p.flat_or_composition.starts_with("flat:");

  const Topology topo = flat ? Topology::grid5000(2)
                             : Composition::make_topology(9, 2);
  Network net(sim, topo,
              std::make_shared<MatrixLatencyModel>(
                  MatrixLatencyModel::grid5000(0.10)),
              Rng(p.seed));
  if (!p.fifo) {
    net.set_fifo_per_pair(false);
    net.set_reorder_spread(SimDuration::ms(5));
  }

  const bool lossy = p.drop > 0.0 || p.dup > 0.0;
  if (lossy) {
    net.set_drop_probability(p.drop);
    net.set_duplicate_probability(p.dup);
  }

  SafetyMonitor safety(/*abort_on_violation=*/false);
  Rng root(p.seed * 7919);
  std::vector<std::unique_ptr<MutexEndpoint>> flat_eps;
  std::unique_ptr<Composition> comp;
  // Declared after the endpoints it hooks so it detaches first.
  std::unique_ptr<TokenRecoveryManager> recovery;
  if (lossy)
    recovery = std::make_unique<TokenRecoveryManager>(
        net, RecoveryConfig{.retransmit = {.rto = SimDuration::ms(50)}});
  std::vector<std::unique_ptr<ChaosDriver>> drivers;

  if (flat) {
    const std::string algo = p.flat_or_composition.substr(5);
    const bool token = is_token_based(algo);
    std::vector<NodeId> members(topo.node_count());
    for (NodeId v = 0; v < topo.node_count(); ++v) members[v] = v;
    for (NodeId v = 0; v < topo.node_count(); ++v)
      flat_eps.push_back(std::make_unique<MutexEndpoint>(
          net, 1, members, int(v), make_algorithm(algo), root.fork(v)));
    for (auto& ep : flat_eps)
      ep->init(token ? 0 : MutexAlgorithm::kNoHolder);
    if (recovery) {
      net.set_reliable(1, recovery->config().retransmit);
      if (token) {
        std::vector<MutexEndpoint*> eps;
        for (auto& ep : flat_eps) eps.push_back(ep.get());
        recovery->watch_instance(algo, 1, std::move(eps));
      }
    }
    for (auto& ep : flat_eps)
      drivers.push_back(std::make_unique<ChaosDriver>(
          sim, *ep, root.fork(1000 + ep->rank()), safety));
  } else {
    const CompositionSpec spec = parse_composition(p.flat_or_composition);
    comp = std::make_unique<Composition>(
        net, CompositionConfig{.intra_algorithm = spec.intra,
                               .inter_algorithm = spec.inter,
                               .seed = p.seed});
    comp->start();
    if (recovery) {
      const RetransmitConfig rt = recovery->config().retransmit;
      net.set_reliable(comp->inter_protocol(), rt);
      for (ClusterId c = 0; c < comp->cluster_count(); ++c)
        net.set_reliable(comp->intra_protocol(c), rt);
      if (is_token_based(spec.inter))
        recovery->watch_instance("inter", comp->inter_protocol(),
                                 comp->inter_instance());
      if (is_token_based(spec.intra))
        for (ClusterId c = 0; c < comp->cluster_count(); ++c)
          recovery->watch_instance("intra" + std::to_string(c),
                                   comp->intra_protocol(c),
                                   comp->intra_instance(c));
    }
    for (NodeId v : comp->app_nodes())
      drivers.push_back(std::make_unique<ChaosDriver>(
          sim, comp->app_mutex(v), root.fork(1000 + v), safety));
  }

  for (auto& d : drivers) d->start();
  sim.run();

  // Safety: never two holders.
  EXPECT_EQ(safety.violations(), 0u);
  // Liveness: every issued request was served.
  for (auto& d : drivers) EXPECT_EQ(d->served(), d->requested());
  // Quiescence: nothing left in flight, nobody left in CS.
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(safety.in_cs(), 0);
}

INSTANTIATE_TEST_SUITE_P(Schedules, Chaos,
                         ::testing::ValuesIn(chaos_space()), chaos_name);

}  // namespace
}  // namespace gmx::testing
