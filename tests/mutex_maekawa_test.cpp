// White-box tests of Maekawa's quorum algorithm: grid quorum construction
// and intersection, vote accounting, inquire/relinquish revocation, DEMAND
// notification, O(sqrt N) message cost.
#include "gridmutex/mutex/maekawa.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

MaekawaMutex& algo(MutexHarness& h, int rank) {
  return dynamic_cast<MaekawaMutex&>(h.ep(rank).algorithm());
}

bool intersects(const std::vector<int>& a, const std::vector<int>& b) {
  for (int x : a)
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  return false;
}

TEST(MaekawaQuorum, SquareGrid) {
  // n=9, k=3: node 4 = (1,1) → row {3,4,5} ∪ col {1,4,7}.
  EXPECT_EQ(MaekawaMutex::grid_quorum(4, 9),
            (std::vector<int>{1, 3, 4, 5, 7}));
  EXPECT_EQ(MaekawaMutex::grid_quorum(0, 9),
            (std::vector<int>{0, 1, 2, 3, 6}));
}

TEST(MaekawaQuorum, ContainsSelf) {
  for (int n : {1, 2, 5, 9, 16, 20, 50}) {
    for (int r = 0; r < n; ++r) {
      const auto q = MaekawaMutex::grid_quorum(r, n);
      EXPECT_TRUE(std::find(q.begin(), q.end(), r) != q.end())
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(MaekawaQuorum, AnyTwoQuorumsIntersect) {
  // The safety-critical property, including ragged last rows.
  for (int n : {2, 3, 5, 7, 9, 10, 12, 16, 20, 23, 37}) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_TRUE(intersects(MaekawaMutex::grid_quorum(i, n),
                               MaekawaMutex::grid_quorum(j, n)))
            << "n=" << n << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(MaekawaQuorum, SizeIsOrderSqrtN) {
  const auto q = MaekawaMutex::grid_quorum(0, 100);
  EXPECT_EQ(q.size(), 19u);  // row(10) + col(10) - self
}

TEST(Maekawa, UncontendedCsUsesQuorumMessages) {
  MutexHarness h({.participants = 9, .algorithm = "maekawa"});
  h.request(4);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  // Quorum of 4 has 5 members incl. self: 4 requests + 4 votes.
  EXPECT_EQ(h.net().counters().sent, 8u);
  EXPECT_EQ(algo(h, 4).votes(), 5u);
  h.release(4);
  h.run();
  EXPECT_EQ(h.net().counters().sent, 12u);  // + 4 releases
  EXPECT_EQ(algo(h, 4).votes(), 0u);
}

TEST(Maekawa, ArbiterGrantsOneCandidateAtATime) {
  MutexHarness h({.participants = 9, .algorithm = "maekawa"});
  h.set_auto_release(SimDuration::ms(2));
  // 3 and 5 share arbiters (row 1). Concurrent requests must serialize.
  h.request(3);
  h.request(5);
  h.run();
  EXPECT_FALSE(h.safety_violated());
  EXPECT_EQ(h.grant_count(3), 1);
  EXPECT_EQ(h.grant_count(5), 1);
}

TEST(Maekawa, InquireRevokesFromSlowCollector) {
  // Force the revocation path: many overlapping requesters with identical
  // start times; the oldest (ts,rank) must win without deadlock.
  MutexHarness h({.participants = 16, .algorithm = "maekawa", .seed = 13});
  h.set_auto_release(SimDuration::ms(1));
  std::uint64_t inquires = 0, relinquishes = 0;
  h.net().set_tracer([&](const Message& m, SimTime, SimTime) {
    if (m.type == MaekawaMutex::kInquire) ++inquires;
    if (m.type == MaekawaMutex::kRelinquish) ++relinquishes;
  });
  // Stagger in *reverse* rank order: arbiters lock for high ranks first,
  // then the lower-ranked (hence older at equal Lamport time) requests
  // arrive and force INQUIREs.
  for (int r = 15; r >= 0; --r)
    h.request_at(SimDuration::us(50 * (15 - r)), r);
  h.run();
  EXPECT_FALSE(h.safety_violated());
  for (int r = 0; r < 16; ++r) EXPECT_EQ(h.grant_count(r), 1) << r;
  EXPECT_GT(inquires, 0u) << "contention never exercised the inquire path";
  EXPECT_LE(relinquishes, inquires);
}

TEST(Maekawa, DemandNoticeReachesTheCsHolder) {
  MutexHarness h({.participants = 9, .algorithm = "maekawa"});
  h.request(0);
  h.run();
  EXPECT_TRUE(h.pending_events().empty());
  h.request(8);  // quorum {2,5,6,7,8} ∩ quorum(0) = {2, 6}
  h.run();
  ASSERT_GE(h.pending_events().size(), 1u);
  EXPECT_EQ(h.pending_events()[0], 0);
  EXPECT_TRUE(h.ep(0).has_pending_requests());
  h.release(0);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 8}));
}

TEST(Maekawa, MessageCostScalesLikeSqrtN) {
  // 36 participants: quorum 11; one uncontended CS ≈ 3·10 messages versus
  // Lamport's 3·35.
  MutexHarness h({.participants = 36, .algorithm = "maekawa"});
  h.request(17);
  h.run();
  h.release(17);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_LE(h.net().counters().sent, 33u);
  EXPECT_GE(h.net().counters().sent, 27u);
}

TEST(Maekawa, SingletonWorks) {
  MutexHarness h({.participants = 1, .algorithm = "maekawa"});
  h.request(0);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 0u);
  h.release(0);
  h.run();
}

TEST(MaekawaDeathTest, ReleaseFromNonCandidateAborts) {
  MutexHarness h({.participants = 9, .algorithm = "maekawa"});
  Message m;
  m.src = 3;  // in 0's quorum? row0={0,1,2}, col0={0,3,6} → yes, 3 arbiters for 0
  m.dst = 0;
  m.protocol = 1;
  m.type = MaekawaMutex::kRelease;
  h.net().send(std::move(m));
  EXPECT_DEATH(h.run(), "release from a non-candidate");
}

}  // namespace
}  // namespace gmx::testing
