// White-box tests of Naimi-Tréhel: last-tree path reversal, next-queue
// behaviour, and the O(log N)/2-message cost structure from paper §2.2.
#include "gridmutex/mutex/naimi_trehel.hpp"

#include <gtest/gtest.h>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

NaimiTrehelMutex& algo(MutexHarness& h, int rank) {
  return dynamic_cast<NaimiTrehelMutex&>(h.ep(rank).algorithm());
}

TEST(NaimiTrehel, InitialStarTreePointsAtHolder) {
  MutexHarness h({.participants = 5, .algorithm = "naimi", .holder_rank = 2});
  for (int r = 0; r < 5; ++r) EXPECT_EQ(algo(h, r).last(), 2);
  EXPECT_TRUE(h.ep(2).holds_token());
  EXPECT_EQ(h.token_holder_count(), 1);
}

TEST(NaimiTrehel, HolderEntersWithoutMessages) {
  MutexHarness h({.participants = 5, .algorithm = "naimi", .holder_rank = 0});
  h.request(0);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 0u);
}

TEST(NaimiTrehel, UncontendedRemoteRequestCostsTwoMessages) {
  // Fresh star tree: request goes straight to the root (1 msg), token comes
  // back (1 msg) — the paper's T_req = O(log N)·T, T_token = T, with the
  // star giving exactly one request hop.
  MutexHarness h({.participants = 8, .algorithm = "naimi", .holder_rank = 0});
  h.request(5);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 2u);
}

TEST(NaimiTrehel, PathReversalMakesRequesterTheRoot) {
  MutexHarness h({.participants = 4, .algorithm = "naimi", .holder_rank = 0});
  h.request(3);
  h.run();
  // 3 now in CS; 0 must point at 3 (path reversal), 3 points at itself.
  EXPECT_EQ(algo(h, 0).last(), 3);
  EXPECT_EQ(algo(h, 3).last(), 3);
  // 1 and 2 still believe 0 is the owner — lazily updated on next request.
  EXPECT_EQ(algo(h, 1).last(), 0);
  EXPECT_EQ(algo(h, 2).last(), 0);
}

TEST(NaimiTrehel, RequestForwardedThroughStaleLastChain) {
  MutexHarness h({.participants = 4, .algorithm = "naimi", .holder_rank = 0});
  h.request(3);
  h.run();
  h.release(3);
  h.run();
  // 1's last still points to 0; its request must be forwarded 1→0→3.
  const auto before = h.net().counters().sent;
  h.request(1);
  h.run();
  EXPECT_EQ(h.grants().back(), 1);
  // 1→0 request, 0→3 forward, 3→1 token.
  EXPECT_EQ(h.net().counters().sent - before, 3u);
  EXPECT_EQ(algo(h, 0).last(), 1);
  EXPECT_EQ(algo(h, 3).last(), 1);
}

TEST(NaimiTrehel, NextChainsFormDistributedFifoQueue) {
  MutexHarness h({.participants = 5, .algorithm = "naimi", .holder_rank = 0});
  h.request(0);
  h.run();
  // Queue three waiters while 0 is in CS; requests arrive in rank order
  // because all are sent at t=0 over equal-latency links and FIFO tie-break
  // is scheduling order.
  h.request(1);
  h.request(2);
  h.request(3);
  h.run();
  EXPECT_EQ(algo(h, 0).next(), std::optional<int>(1));
  EXPECT_EQ(algo(h, 1).next(), std::optional<int>(2));
  EXPECT_EQ(algo(h, 2).next(), std::optional<int>(3));
  EXPECT_FALSE(algo(h, 3).next().has_value());
  // Releases pass the token down the chain in order.
  h.release(0);
  h.run();
  h.release(1);
  h.run();
  h.release(2);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(NaimiTrehel, PendingObserverFiresWhenRootInCsGetsRequest) {
  MutexHarness h({.participants = 3, .algorithm = "naimi", .holder_rank = 0});
  h.request(0);
  h.run();
  EXPECT_TRUE(h.pending_events().empty());
  h.request(1);
  h.run();
  ASSERT_EQ(h.pending_events().size(), 1u);
  EXPECT_EQ(h.pending_events()[0], 0);
  EXPECT_TRUE(h.ep(0).has_pending_requests());
}

TEST(NaimiTrehel, IdleHolderForwardsTokenWithoutPendingEvent) {
  MutexHarness h({.participants = 3, .algorithm = "naimi", .holder_rank = 0});
  h.request(2);
  h.run();
  EXPECT_TRUE(h.pending_events().empty());
  EXPECT_FALSE(h.ep(0).has_pending_requests());
  EXPECT_TRUE(h.ep(2).holds_token());
}

TEST(NaimiTrehel, TokenStaysWithLastUserWhenIdle) {
  MutexHarness h({.participants = 3, .algorithm = "naimi", .holder_rank = 0});
  h.request(2);
  h.run();
  h.release(2);
  h.run();
  EXPECT_TRUE(h.ep(2).holds_token());
  EXPECT_FALSE(h.ep(0).holds_token());
  // Re-request by 2 is free.
  const auto before = h.net().counters().sent;
  h.request(2);
  h.run();
  EXPECT_EQ(h.net().counters().sent, before);
  EXPECT_EQ(h.grants().back(), 2);
}

TEST(NaimiTrehel, AverageMessagesPerCsIsLogarithmic) {
  // Self-driving workload on 32 participants: the average number of
  // messages per CS must sit well under the linear algorithms' N.
  MutexHarness h({.participants = 32, .algorithm = "naimi", .seed = 3});
  h.set_auto_release(SimDuration::ms(1));
  for (int r = 0; r < 32; ++r) h.drive(r, 8, SimDuration::ms(5));
  h.run();
  const double per_cs =
      double(h.net().counters().sent) / double(h.grants().size());
  EXPECT_EQ(h.grants().size(), 32u * 8u);
  EXPECT_LT(per_cs, 12.0);  // log2(32)=5; generous envelope vs N=32
  EXPECT_FALSE(h.safety_violated());
}

TEST(NaimiTrehelDeathTest, DuplicateTokenAborts) {
  MutexHarness h({.participants = 2, .algorithm = "naimi", .holder_rank = 0});
  // Deliver a forged token to the holder.
  Message m;
  m.src = 1;
  m.dst = 0;
  m.protocol = 1;
  m.type = NaimiTrehelMutex::kToken;
  h.net().send(std::move(m));
  EXPECT_DEATH(h.run(), "duplicate token");
}

TEST(NaimiTrehelDeathTest, RequestWhileRequestingAborts) {
  MutexHarness h({.participants = 2, .algorithm = "naimi", .holder_rank = 0});
  h.request(1);
  EXPECT_DEATH(h.request(1), "already requesting");
}

}  // namespace
}  // namespace gmx::testing
