#include "gridmutex/net/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "gridmutex/net/trace.hpp"

namespace gmx {
namespace {

struct NetFixture : ::testing::Test {
  NetFixture()
      : topo(Topology::uniform(2, 3)),
        net(sim, topo,
            std::make_shared<FixedLatencyModel>(SimDuration::ms(5)),
            Rng(1)) {}

  Message make(NodeId src, NodeId dst, std::uint16_t type = 0,
               std::size_t payload = 4) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.protocol = 7;
    m.type = type;
    m.payload.assign(payload, std::uint8_t(0xEE));
    return m;
  }

  Simulator sim;
  Topology topo;
  Network net;
};

TEST_F(NetFixture, DeliversAfterLatency) {
  std::vector<std::pair<SimTime, std::uint16_t>> got;
  net.attach(1, 7, [&](const Message& m) { got.emplace_back(sim.now(), m.type); });
  net.send(make(0, 1, 42));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, SimTime::zero() + SimDuration::ms(5));
  EXPECT_EQ(got[0].second, 42);
}

TEST_F(NetFixture, CountsIntraVsInterCluster) {
  net.attach(1, 7, [](const Message&) {});
  net.attach(3, 7, [](const Message&) {});
  net.send(make(0, 1));  // same cluster (nodes 0-2 are cluster 0)
  net.send(make(0, 3));  // cross cluster
  sim.run();
  EXPECT_EQ(net.counters().sent, 2u);
  EXPECT_EQ(net.counters().intra_cluster, 1u);
  EXPECT_EQ(net.counters().inter_cluster, 1u);
  EXPECT_EQ(net.counters().delivered, 2u);
}

TEST_F(NetFixture, AccountsBytes) {
  net.attach(3, 7, [](const Message&) {});
  net.send(make(0, 3, 0, 10));
  sim.run();
  EXPECT_EQ(net.counters().bytes_total, 10 + Message::kHeaderBytes);
  EXPECT_EQ(net.counters().bytes_inter, 10 + Message::kHeaderBytes);
}

TEST_F(NetFixture, RoutesByProtocol) {
  int via7 = 0, via9 = 0;
  net.attach(1, 7, [&](const Message&) { ++via7; });
  net.attach(1, 9, [&](const Message&) { ++via9; });
  Message m = make(0, 1);
  net.send(m);
  m.protocol = 9;
  net.send(m);
  sim.run();
  EXPECT_EQ(via7, 1);
  EXPECT_EQ(via9, 1);
  EXPECT_EQ(net.sent_by_protocol(7), 1u);
  EXPECT_EQ(net.sent_by_protocol(9), 1u);
  EXPECT_EQ(net.sent_by_protocol(1234), 0u);
}

TEST_F(NetFixture, ReattachReplacesHandler) {
  int first = 0, second = 0;
  net.attach(1, 7, [&](const Message&) { ++first; });
  net.attach(1, 7, [&](const Message&) { ++second; });
  net.send(make(0, 1));
  sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST_F(NetFixture, DropInjection) {
  net.attach(1, 7, [](const Message&) {});
  net.set_drop_probability(0.5);
  for (int i = 0; i < 400; ++i) net.send(make(0, 1));
  sim.run();
  EXPECT_EQ(net.counters().sent, 400u);
  EXPECT_EQ(net.counters().delivered + net.counters().dropped, 400u);
  EXPECT_NEAR(double(net.counters().dropped), 200.0, 50.0);
}

TEST_F(NetFixture, DuplicateInjection) {
  int got = 0;
  net.attach(1, 7, [&](const Message&) { ++got; });
  net.set_duplicate_probability(1.0);
  net.send(make(0, 1));
  sim.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(net.counters().duplicated, 1u);
}

TEST_F(NetFixture, InFlightTracksPendingDeliveries) {
  net.attach(1, 7, [](const Message&) {});
  net.send(make(0, 1));
  net.send(make(0, 1));
  EXPECT_EQ(net.in_flight(), 2u);
  sim.run();
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST_F(NetFixture, CounterSnapshotsSubtract) {
  net.attach(1, 7, [](const Message&) {});
  net.send(make(0, 1));
  sim.run();
  const MessageCounters before = net.counters();
  net.send(make(0, 1));
  net.send(make(0, 1));
  sim.run();
  const MessageCounters delta = net.counters() - before;
  EXPECT_EQ(delta.sent, 2u);
  EXPECT_EQ(delta.delivered, 2u);
}

TEST_F(NetFixture, LinkDropKillsCrossClusterTrafficOnly) {
  int intra = 0, inter = 0;
  net.attach(1, 7, [&](const Message&) { ++intra; });
  net.attach(3, 7, [&](const Message&) { ++inter; });
  net.set_link_drop_probability(0, 1, 1.0);
  net.send(make(0, 1));  // cluster 0 → cluster 0: unaffected
  net.send(make(0, 3));  // cluster 0 → cluster 1: dropped
  sim.run();
  EXPECT_EQ(intra, 1);
  EXPECT_EQ(inter, 0);
  EXPECT_EQ(net.counters().dropped, 1u);
  // p = 0 clears the entry and restores the link.
  net.set_link_drop_probability(0, 1, 0.0);
  net.send(make(0, 3));
  sim.run();
  EXPECT_EQ(inter, 1);
}

TEST_F(NetFixture, PartitionThenHealRestoresDelivery) {
  int got = 0;
  net.attach(3, 7, [&](const Message&) { ++got; });
  net.partition(0, 1);
  net.send(make(0, 3));
  sim.run();
  EXPECT_EQ(got, 0);
  net.heal(0, 1);
  net.send(make(0, 3));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net.counters().sent, 2u);
  EXPECT_EQ(net.counters().delivered, 1u);
  EXPECT_EQ(net.counters().dropped, 1u);
}

TEST_F(NetFixture, NodeDownIsAnOmissionWindowBothDirections) {
  int at0 = 0, at1 = 0;
  net.attach(0, 7, [&](const Message&) { ++at0; });
  net.attach(1, 7, [&](const Message&) { ++at1; });
  net.set_node_up(1, false);
  EXPECT_FALSE(net.node_up(1));
  net.send(make(0, 1));  // lost at the destination
  net.send(make(1, 0));  // lost at the source
  sim.run();
  EXPECT_EQ(at0, 0);
  EXPECT_EQ(at1, 0);
  EXPECT_EQ(net.counters().dropped, 2u);
  // Warm restart: the handler is still attached, traffic flows again.
  net.set_node_up(1, true);
  net.send(make(0, 1));
  net.send(make(1, 0));
  sim.run();
  EXPECT_EQ(at0, 1);
  EXPECT_EQ(at1, 1);
  EXPECT_EQ(net.counters().sent, 4u);
  EXPECT_EQ(net.counters().delivered + net.counters().dropped, 4u);
}

TEST_F(NetFixture, DropFilterTargetsBySelector) {
  std::vector<std::uint16_t> got;
  net.attach(1, 7, [&](const Message& m) { got.push_back(m.type); });
  net.set_drop_filter([](const Message& m) { return m.type == 9; });
  net.send(make(0, 1, 9));
  net.send(make(0, 1, 2));
  net.send(make(0, 1, 9));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 2);
  EXPECT_EQ(net.counters().dropped, 2u);
  net.set_drop_filter(nullptr);
  net.send(make(0, 1, 9));
  sim.run();
  EXPECT_EQ(got.size(), 2u);
}

TEST_F(NetFixture, ReliableRetransmitsThroughASingleLoss) {
  int got = 0;
  net.attach(1, 7, [&](const Message& m) {
    EXPECT_EQ(m.type, 42);
    ++got;
  });
  net.set_reliable(7, RetransmitConfig{.rto = SimDuration::ms(20)});
  int killed = 0;
  net.set_drop_filter([&](const Message& m) {
    if (m.type == 42 && killed == 0) {
      ++killed;
      return true;  // the first copy dies; the retransmission survives
    }
    return false;
  });
  net.send(make(0, 1, 42));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_GE(net.counters().retransmitted, 1u);
  EXPECT_EQ(net.unacked_for(7), 0u);  // acked: the queue drained
}

TEST_F(NetFixture, ReliableDeduplicatesAtTheReceiver) {
  int got = 0;
  net.attach(1, 7, [&](const Message&) { ++got; });
  net.set_reliable(7);
  net.set_duplicate_probability(1.0);
  net.send(make(0, 1, 5));
  sim.run();
  EXPECT_EQ(got, 1);  // the duplicate was delivered but suppressed
  EXPECT_GE(net.counters().duplicated, 1u);
  EXPECT_EQ(net.unacked_for(7), 0u);
}

TEST_F(NetFixture, ReliableGivesUpAfterMaxAttempts) {
  net.attach(1, 7, [](const Message&) { FAIL() << "nothing must arrive"; });
  net.set_reliable(7, RetransmitConfig{.rto = SimDuration::ms(1),
                                       .backoff = 1.0,
                                       .max_attempts = 3});
  net.set_drop_filter([](const Message& m) { return m.type != Message::kAckType; });
  net.send(make(0, 1, 42));
  EXPECT_EQ(net.unacked_for(7), 1u);
  sim.run();  // the give-up bound lets the queue drain
  EXPECT_EQ(net.unacked_for(7), 0u);
  EXPECT_EQ(net.counters().delivered, 0u);
  EXPECT_EQ(net.counters().dropped, 3u);       // 1 original + 2 retries
  EXPECT_EQ(net.counters().retransmitted, 2u);
}

TEST_F(NetFixture, ConservationHoldsUnderCombinedFaults) {
  net.attach(1, 7, [](const Message&) {});
  net.attach(3, 7, [](const Message&) {});
  net.set_drop_probability(0.3);
  net.set_duplicate_probability(0.3);
  net.set_link_drop_probability(0, 1, 0.5);
  for (int i = 0; i < 200; ++i) {
    net.send(make(0, 1));
    net.send(make(0, 3));
  }
  sim.run();
  const MessageCounters& c = net.counters();
  EXPECT_EQ(c.sent, 400u);
  EXPECT_EQ(c.delivered + c.dropped, c.sent + c.duplicated);
  EXPECT_GT(c.dropped, 0u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(NetworkFifo, FifoClampPreventsOvertaking) {
  // With jittered latency, a later send could overtake an earlier one on the
  // same pair; FIFO mode must clamp.
  Simulator sim;
  const Topology topo = Topology::uniform(1, 2);
  auto lat = std::make_shared<MatrixLatencyModel>(
      MatrixLatencyModel::two_level(1, SimDuration::ms(10),
                                    SimDuration::ms(10), 0.5));
  Network net(sim, topo, lat, Rng(3));
  std::vector<std::uint16_t> order;
  net.attach(1, 7, [&](const Message& m) { order.push_back(m.type); });
  for (std::uint16_t i = 0; i < 50; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.protocol = 7;
    m.type = i;
    net.send(std::move(m));
    sim.run_until(sim.now() + SimDuration::ms_f(0.1));
  }
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  for (std::uint16_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(NetworkFifo, NonFifoWithSpreadCanReorder) {
  Simulator sim;
  const Topology topo = Topology::uniform(1, 2);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(5)),
              Rng(3));
  net.set_fifo_per_pair(false);
  net.set_reorder_spread(SimDuration::ms(20));
  std::vector<std::uint16_t> order;
  net.attach(1, 7, [&](const Message& m) { order.push_back(m.type); });
  for (std::uint16_t i = 0; i < 50; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.protocol = 7;
    m.type = i;
    net.send(std::move(m));
  }
  sim.run();
  ASSERT_EQ(order.size(), 50u);
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i)
    if (order[i] < order[i - 1]) reordered = true;
  EXPECT_TRUE(reordered);
}

TEST(NetworkTrace, TraceSinkWritesOneLinePerDelivery) {
  Simulator sim;
  const Topology topo = Topology::grid5000(1);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(2)),
              Rng(5));
  std::ostringstream out;
  TraceSink sink(out, [](ProtocolId, std::uint16_t) { return "naimi.REQ"; });
  sink.install(net);
  net.attach(1, 7, [](const Message&) {});
  Message m;
  m.src = 0;
  m.dst = 1;
  m.protocol = 7;
  net.send(std::move(m));
  sim.run();
  EXPECT_EQ(sink.lines_written(), 1u);
  const std::string line = out.str();
  EXPECT_NE(line.find("naimi.REQ"), std::string::npos);
  EXPECT_NE(line.find("orsay"), std::string::npos);
  EXPECT_NE(line.find("grenoble"), std::string::npos);
}

TEST(NetworkDeathTest, SelfSendAborts) {
  Simulator sim;
  const Topology topo = Topology::uniform(1, 2);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  Message m;
  m.src = 0;
  m.dst = 0;
  EXPECT_DEATH(net.send(std::move(m)), "self-send");
}

TEST(NetworkDeathTest, DeliveryWithoutHandlerAborts) {
  Simulator sim;
  const Topology topo = Topology::uniform(1, 2);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  Message m;
  m.src = 0;
  m.dst = 1;
  net.send(std::move(m));
  EXPECT_DEATH(sim.run(), "no handler");
}

}  // namespace
}  // namespace gmx
