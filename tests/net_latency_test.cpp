#include "gridmutex/net/latency.hpp"

#include <gtest/gtest.h>

namespace gmx {
namespace {

TEST(FixedLatency, ConstantEverywhere) {
  const Topology t = Topology::uniform(2, 2);
  FixedLatencyModel m(SimDuration::ms(5));
  Rng rng(1);
  EXPECT_EQ(m.sample(t, 0, 3, rng), SimDuration::ms(5));
  EXPECT_EQ(m.mean(t, 1, 2), SimDuration::ms(5));
}

TEST(Grid5000Matrix, DiagonalIsLan) {
  const auto m = MatrixLatencyModel::grid5000(0.0);
  for (ClusterId c = 0; c < 9; ++c) {
    EXPECT_LT(m.one_way_ms(c, c), 0.05) << "cluster " << c;
  }
}

TEST(Grid5000Matrix, OneWayIsHalfPaperRtt) {
  const auto m = MatrixLatencyModel::grid5000(0.0);
  // Paper Fig. 3: orsay→grenoble RTT 15.039 ms.
  EXPECT_DOUBLE_EQ(m.one_way_ms(0, 1), 15.039 / 2.0);
  // nancy→toulouse is the 98.398 ms outlier.
  EXPECT_DOUBLE_EQ(m.one_way_ms(5, 6), 98.398 / 2.0);
}

TEST(Grid5000Matrix, PreservesPaperAsymmetry) {
  const auto m = MatrixLatencyModel::grid5000(0.0);
  // orsay→sophia 20.239 vs sophia→orsay 20.332: distinct in Fig. 3.
  EXPECT_NE(m.one_way_ms(0, 7), m.one_way_ms(7, 0));
}

TEST(Grid5000Matrix, RawTableHasEightyOneEntries) {
  EXPECT_EQ(grid5000_rtt_ms().size(), 81u);
}

TEST(Grid5000Matrix, MeanMatchesMatrix) {
  const Topology topo = Topology::grid5000();
  const auto m = MatrixLatencyModel::grid5000(0.0);
  // Node 0 is in orsay (cluster 0), node 20 in grenoble (cluster 1).
  EXPECT_EQ(m.mean(topo, 0, 20), SimDuration::ms_f(15.039 / 2.0));
  EXPECT_EQ(m.mean(topo, 0, 1), SimDuration::ms_f(0.034 / 2.0));
}

TEST(Grid5000Matrix, ZeroJitterIsDeterministic) {
  const Topology topo = Topology::grid5000();
  const auto m = MatrixLatencyModel::grid5000(0.0);
  Rng rng(7);
  const auto a = m.sample(topo, 0, 20, rng);
  const auto b = m.sample(topo, 0, 20, rng);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, m.mean(topo, 0, 20));
}

TEST(Grid5000Matrix, JitterStaysWithinBand) {
  const Topology topo = Topology::grid5000();
  const auto m = MatrixLatencyModel::grid5000(0.10);
  Rng rng(7);
  const auto mean = m.mean(topo, 0, 20);
  for (int i = 0; i < 1000; ++i) {
    const auto s = m.sample(topo, 0, 20, rng);
    EXPECT_GE(s, mean * 0.899);
    EXPECT_LE(s, mean * 1.101);
  }
}

TEST(Grid5000Matrix, JitterAveragesToMean) {
  const Topology topo = Topology::grid5000();
  const auto m = MatrixLatencyModel::grid5000(0.10);
  Rng rng(11);
  SimDuration sum;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += m.sample(topo, 0, 20, rng);
  EXPECT_NEAR(sum.as_ms() / n, m.mean(topo, 0, 20).as_ms(), 0.05);
}

TEST(TwoLevelMatrix, IntraVsInter) {
  const auto m = MatrixLatencyModel::two_level(4, SimDuration::ms_f(0.5),
                                               SimDuration::ms(10));
  EXPECT_DOUBLE_EQ(m.one_way_ms(2, 2), 0.5);
  EXPECT_DOUBLE_EQ(m.one_way_ms(0, 3), 10.0);
  EXPECT_EQ(m.cluster_count(), 4u);
}

TEST(TwoLevelMatrix, WorksWithMatchingTopology) {
  const Topology topo = Topology::uniform(4, 5);
  const auto m = MatrixLatencyModel::two_level(4, SimDuration::ms_f(0.5),
                                               SimDuration::ms(10));
  Rng rng(1);
  EXPECT_EQ(m.sample(topo, 0, 1, rng), SimDuration::ms_f(0.5));
  EXPECT_EQ(m.sample(topo, 0, 19, rng), SimDuration::ms(10));
}

TEST(MatrixLatencyDeathTest, TopologyClusterMismatchAborts) {
  const Topology topo = Topology::uniform(3, 2);
  const auto m = MatrixLatencyModel::two_level(4, SimDuration::ms_f(0.5),
                                               SimDuration::ms(10));
  EXPECT_DEATH((void)m.mean(topo, 0, 5), "does not match topology");
}

}  // namespace
}  // namespace gmx
