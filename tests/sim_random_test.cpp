#include "gridmutex/sim/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gmx {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(11);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 180ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(9));
  EXPECT_EQ(seen.size(), 9u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(17);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(23);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.15);
}

TEST(Rng, ExponentialDurationMeanConverges) {
  Rng r(29);
  SimDuration sum;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(SimDuration::ms(100));
  EXPECT_NEAR(sum.as_ms() / n, 100.0, 2.0);
}

TEST(Rng, ExponentialIsPositive) {
  Rng r(31);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = parent.fork(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIndependentOfParentDrawState) {
  Rng parent(99);
  Rng before = parent.fork(5);
  parent.next_u64();
  Rng after = parent.fork(5);
  EXPECT_EQ(before.next_u64(), after.next_u64());
}

TEST(Rng, UniformRange) {
  Rng r(43);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, WorksWithStdShuffleConcept) {
  static_assert(std::uniform_random_bit_generator<Rng>);
}

}  // namespace
}  // namespace gmx
