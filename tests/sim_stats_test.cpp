#include "gridmutex/sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gridmutex/sim/random.hpp"

namespace gmx {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.relative_stddev(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownPopulation) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic σ²=4 example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.relative_stddev(), 0.4);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SampleVarianceUsesBessel) {
  OnlineStats s;
  for (double v : {1.0, 2.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.variance(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 1.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats whole, a, b;
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(0, 100);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  OnlineStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(42.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(OnlineStats, NumericalStabilityLargeOffset) {
  // Welford must survive values with a large common offset.
  OnlineStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(DurationStats, RecordsMilliseconds) {
  DurationStats s;
  s.add(SimDuration::ms(10));
  s.add(SimDuration::ms(20));
  EXPECT_DOUBLE_EQ(s.mean_ms(), 15.0);
  EXPECT_DOUBLE_EQ(s.min_ms(), 10.0);
  EXPECT_DOUBLE_EQ(s.max_ms(), 20.0);
  EXPECT_DOUBLE_EQ(s.stddev_ms(), 5.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(100.0, 10);
  h.add(5);
  h.add(15);
  h.add(95);
  h.add(150);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, PercentileInterpolates) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(double(i) + 0.5);
  EXPECT_NEAR(h.percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.percentile(0.0), 0.0, 1.5);
}

TEST(Histogram, PercentileOfOverflowReportsLimit) {
  Histogram h(10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
}

TEST(Histogram, MergeAddsBuckets) {
  Histogram a(100.0, 10), b(100.0, 10);
  a.add(5);
  b.add(5);
  b.add(95);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.percentile(0.4), 5.0, 6.0);
}

TEST(Histogram, NegativeValuesClampToZeroBucket) {
  Histogram h(10.0, 10);
  h.add(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_LT(h.percentile(0.5), 1.0);
}

TEST(Histogram, PercentileOfEmptyIsZero) {
  // Report paths query p99 on runs that may have completed zero CS; an
  // empty histogram must answer 0 for every q, not assert.
  Histogram h(100.0, 10);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);
}

TEST(Histogram, PercentileSingleSample) {
  Histogram h(100.0, 10);
  h.add(42.0);
  // Every quantile of one sample lands in that sample's bucket [40, 50).
  for (double q : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.percentile(q), 40.0) << "q=" << q;
    EXPECT_LE(h.percentile(q), 50.0) << "q=" << q;
  }
}

TEST(Histogram, PercentileAllEqualSamples) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(7.3);
  // A degenerate distribution: every quantile is the common value's bucket.
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_GE(h.percentile(q), 7.0) << "q=" << q;
    EXPECT_LE(h.percentile(q), 8.0) << "q=" << q;
  }
}

TEST(Histogram, PercentileClampsOutOfRangeQ) {
  Histogram h(100.0, 10);
  h.add(15.0);
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(1.5), h.percentile(1.0));
}

TEST(Histogram, RenderProducesOneLinePerNonEmptyRegion) {
  Histogram h(10.0, 2);
  h.add(1);
  h.add(6);
  h.add(100);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("[0, 5)"), std::string::npos);
  EXPECT_NE(out.find("[5, 10)"), std::string::npos);
  EXPECT_NE(out.find("[10, inf)"), std::string::npos);
}

}  // namespace
}  // namespace gmx
