// Parallel-vs-serial sweep equivalence.
//
// The SweepRunner's contract: a jobs=N sweep is bit-identical to jobs=1 —
// every per-cell ExperimentResult equal field for field (operator==, which
// covers every metric, the checker forensics strings and the per-lock
// rows), and the merged per-config results and rendered CSV equal too.
// Each cell is one self-contained single-threaded simulation, so thread
// count may only change wall-clock, never results.
#include "gridmutex/workload/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "gridmutex/service/experiment.hpp"
#include "gridmutex/workload/report.hpp"
#include "gridmutex/workload/runner.hpp"

namespace gmx {
namespace {

std::vector<ExperimentConfig> small_configs() {
  std::vector<ExperimentConfig> configs;
  for (const char* inter : {"naimi", "martin"}) {
    ExperimentConfig cfg;
    cfg.intra = "naimi";
    cfg.inter = inter;
    cfg.workload.cs_count = 3;
    cfg.workload.rho = 180;
    cfg.seed = 11;
    // Arm the checker so the forensic fields (invariant_checks,
    // first_violation) participate in the comparison with real content.
    cfg.check_protocol = true;
    cfg.hash_trace = true;
    configs.push_back(cfg);
  }
  return configs;
}

TEST(SweepRunner, ParallelCellsEqualSerialCells) {
  const std::vector<ExperimentConfig> configs = small_configs();
  const int reps = 2;
  const auto cell = [&](std::size_t c, int r) {
    ExperimentConfig cfg = configs[c];
    cfg.seed += std::uint64_t(r);
    return run_experiment(cfg);
  };
  const auto serial = SweepRunner(1).run_cells(configs.size(), reps, cell);
  const auto parallel = SweepRunner(4).run_cells(configs.size(), reps, cell);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].size(), parallel[c].size());
    for (std::size_t r = 0; r < serial[c].size(); ++r) {
      SCOPED_TRACE("config " + std::to_string(c) + " rep " +
                   std::to_string(r));
      EXPECT_GT(serial[c][r].invariant_checks, 0u);
      EXPECT_NE(serial[c][r].trace_hash, 0u);
      EXPECT_TRUE(serial[c][r] == parallel[c][r]);
    }
  }
}

TEST(SweepRunner, MergedSweepMatchesRunReplicated) {
  // run_sweep (any job count) must reproduce the historic serial
  // run_replicated loop exactly: same seeds, same merge order.
  const std::vector<ExperimentConfig> configs = small_configs();
  const int reps = 3;
  const auto via_sweep = run_sweep(
      configs, SweepOptions{.threads = 4, .repetitions = reps, .progress = {}});
  ASSERT_EQ(via_sweep.size(), configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    SCOPED_TRACE(configs[c].label());
    const ExperimentResult reference = run_replicated(configs[c], reps);
    EXPECT_TRUE(via_sweep[c] == reference);
  }
}

TEST(SweepRunner, ServiceSweepJobsInvariantIncludingPerLockCsv) {
  std::vector<ServiceConfig> configs;
  for (const double s : {0.0, 0.9}) {
    ServiceConfig cfg;
    cfg.locks = 4;
    cfg.apps_per_cluster = 5;
    cfg.open_loop.arrivals_per_sec = 100;
    cfg.open_loop.window = SimDuration::ms(400);
    cfg.open_loop.zipf_s = s;
    cfg.seed = 5;
    cfg.hash_trace = true;
    configs.push_back(cfg);
  }
  const int reps = 2;
  const auto serial = run_service_sweep(configs, reps, 1);
  const auto parallel = run_service_sweep(configs, reps, 4);

  ASSERT_EQ(serial.size(), parallel.size());
  std::vector<SeriesPoint> serial_pts, parallel_pts;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(serial[i].per_lock.size(), 4u);
    EXPECT_TRUE(serial[i] == parallel[i]);
    serial_pts.push_back(
        SeriesPoint{serial[i].label, configs[i].open_loop.zipf_s, serial[i]});
    parallel_pts.push_back(SeriesPoint{parallel[i].label,
                                       configs[i].open_loop.zipf_s,
                                       parallel[i]});
  }
  // The rendered per-lock CSV — every row of every lock — is identical.
  std::ostringstream a, b;
  write_service_csv(a, serial_pts);
  write_service_csv(b, parallel_pts);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("lock"), std::string::npos);
}

TEST(SweepRunner, ProgressCountsCells) {
  const std::vector<ExperimentConfig> configs = [&] {
    auto c = small_configs();
    for (ExperimentConfig& cfg : c) {
      cfg.check_protocol = false;  // keep the progress test fast
      cfg.workload.cs_count = 1;
    }
    return c;
  }();
  std::atomic<std::size_t> calls{0};
  std::size_t last_done = 0, last_total = 0;
  const auto results = run_sweep(
      configs,
      SweepOptions{.threads = 2,
                   .repetitions = 3,
                   .progress =
                       [&](std::size_t done, std::size_t total) {
                         ++calls;
                         // Serialized by the runner, but completion order
                         // across threads is arbitrary — track the max.
                         last_done = std::max(last_done, done);
                         last_total = total;
                       }});
  EXPECT_EQ(results.size(), configs.size());
  EXPECT_EQ(calls.load(), configs.size() * 3);
  EXPECT_EQ(last_done, configs.size() * 3);
  EXPECT_EQ(last_total, configs.size() * 3);
}

}  // namespace
}  // namespace gmx
