// Cross-algorithm conformance suite.
//
// Every registered algorithm must satisfy the mutual exclusion contract:
// safety (never two participants in CS), liveness (every request eventually
// granted), quiescence (the protocol stops talking once demand stops), and
// token uniqueness for token-based algorithms. Parameterized over
// (algorithm, participants, seed) per DESIGN.md §6.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <tuple>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

struct ConformanceParam {
  std::string algorithm;
  int participants;
  std::uint64_t seed;
  std::uint32_t clusters = 1;
};

std::vector<ConformanceParam> conformance_space() {
  std::vector<ConformanceParam> out;
  for (const std::string& a : algorithm_names()) {
    for (int n : {2, 3, 5, 9, 20}) {
      for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
        out.push_back({a, n, seed, 1});
        // Multi-cluster flat deployment: same contract, and it exercises
        // the cluster-aware paths (Bertier/Mueller grant policies).
        if (n >= 5) out.push_back({a, n, seed, 3});
      }
    }
  }
  return out;
}

class Conformance : public ::testing::TestWithParam<ConformanceParam> {};

std::string param_name(
    const ::testing::TestParamInfo<ConformanceParam>& info) {
  return info.param.algorithm + "_n" + std::to_string(info.param.participants) +
         "_s" + std::to_string(info.param.seed) + "_c" +
         std::to_string(info.param.clusters);
}

TEST_P(Conformance, SingleUncontendedRequestIsGranted) {
  const auto& p = GetParam();
  MutexHarness h({.participants = p.participants,
                  .algorithm = p.algorithm,
                  .seed = p.seed,
                  .clusters = p.clusters});
  const int requester = p.participants - 1;
  h.request(requester);
  h.run();
  ASSERT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.grants()[0], requester);
  EXPECT_FALSE(h.safety_violated());
  h.release(requester);
  h.run();
  EXPECT_EQ(h.in_cs_count(), 0);
}

TEST_P(Conformance, AllRanksContendingAreEachServedExactlyOnce) {
  const auto& p = GetParam();
  MutexHarness h({.participants = p.participants,
                  .algorithm = p.algorithm,
                  .seed = p.seed,
                  .clusters = p.clusters});
  h.set_auto_release(SimDuration::ms(2));
  for (int r = 0; r < p.participants; ++r) h.request(r);
  h.run();
  EXPECT_FALSE(h.safety_violated());
  ASSERT_EQ(h.grants().size(), std::size_t(p.participants));
  std::set<int> served(h.grants().begin(), h.grants().end());
  EXPECT_EQ(served.size(), std::size_t(p.participants));
}

TEST_P(Conformance, RepeatedCyclesStaySafeAndLive) {
  const auto& p = GetParam();
  MutexHarness h({.participants = p.participants,
                  .algorithm = p.algorithm,
                  .seed = p.seed,
                  .clusters = p.clusters});
  h.set_auto_release(SimDuration::ms(1));
  const int cycles = 10;
  Rng rng(p.seed);
  for (int r = 0; r < p.participants; ++r)
    h.drive(r, cycles, SimDuration::us(std::int64_t(rng.next_below(5000))));
  h.run();
  EXPECT_FALSE(h.safety_violated());
  for (int r = 0; r < p.participants; ++r)
    EXPECT_EQ(h.grant_count(r), cycles) << "rank " << r;
}

TEST_P(Conformance, QuiescentAfterDemandStops) {
  const auto& p = GetParam();
  MutexHarness h({.participants = p.participants,
                  .algorithm = p.algorithm,
                  .seed = p.seed,
                  .clusters = p.clusters});
  h.set_auto_release(SimDuration::ms(1));
  for (int r = 0; r < p.participants; ++r) h.drive(r, 3, SimDuration::ms(1));
  h.run();
  // The simulator drained: no protocol message loops forever.
  EXPECT_TRUE(h.sim().idle());
  EXPECT_EQ(h.net().in_flight(), 0u);
  EXPECT_EQ(h.in_cs_count(), 0);
}

TEST_P(Conformance, TokenIsUniqueAtQuiescence) {
  const auto& p = GetParam();
  if (!is_token_based(p.algorithm)) GTEST_SKIP() << "permission-based";
  MutexHarness h({.participants = p.participants,
                  .algorithm = p.algorithm,
                  .seed = p.seed,
                  .clusters = p.clusters});
  h.set_auto_release(SimDuration::ms(1));
  for (int r = 0; r < p.participants; ++r) h.drive(r, 2, SimDuration::ms(2));
  h.run();
  EXPECT_EQ(h.token_holder_count(), 1);
}

TEST_P(Conformance, StaggeredRequestsServedInIssueOrder) {
  // Requests separated by much more than any message delay must be served
  // FIFO — a weak fairness floor every reasonable mutex satisfies.
  const auto& p = GetParam();
  MutexHarness h({.participants = p.participants,
                  .algorithm = p.algorithm,
                  .seed = p.seed,
                  .clusters = p.clusters});
  h.set_auto_release(SimDuration::us(100));
  std::vector<int> issue_order(std::size_t(p.participants));
  std::iota(issue_order.begin(), issue_order.end(), 0);
  Rng rng(p.seed + 1);
  std::shuffle(issue_order.begin(), issue_order.end(), rng);
  SimDuration when = SimDuration::ms(1);
  for (int r : issue_order) {
    h.request_at(when, r);
    when += SimDuration::ms(200);  // ≫ N · latency
  }
  h.run();
  EXPECT_FALSE(h.safety_violated());
  EXPECT_EQ(h.grants(), issue_order);
}

TEST_P(Conformance, LateJoinerIsNotStarvedByAHotRequester) {
  // Rank 0 hammers the CS; rank 1 asks once. Liveness demands rank 1 gets
  // in within a bounded number of rank-0 cycles.
  const auto& p = GetParam();
  if (p.participants < 2) GTEST_SKIP();
  MutexHarness h({.participants = p.participants,
                  .algorithm = p.algorithm,
                  .seed = p.seed,
                  .clusters = p.clusters});
  h.set_auto_release(SimDuration::ms(1));
  h.drive(0, 50, SimDuration::us(10));
  h.request_at(SimDuration::ms(5), 1);
  h.run();
  EXPECT_FALSE(h.safety_violated());
  ASSERT_EQ(h.grant_count(1), 1);
  // Find rank 1's position: it must not be the very last grant.
  const auto& g = h.grants();
  const auto pos = std::size_t(
      std::find(g.begin(), g.end(), 1) - g.begin());
  EXPECT_LT(pos, g.size() - 1)
      << "rank 1 was served only after the hot requester fully finished";
}

TEST_P(Conformance, DeterministicAcrossIdenticalRuns) {
  const auto& p = GetParam();
  auto run_once = [&] {
    MutexHarness h({.participants = p.participants,
                    .algorithm = p.algorithm,
                    .seed = p.seed,
                    .clusters = p.clusters});
    h.set_auto_release(SimDuration::ms(1));
    for (int r = 0; r < p.participants; ++r)
      h.drive(r, 5, SimDuration::ms(r + 1));
    h.run();
    return std::make_tuple(h.grants(), h.net().counters().sent,
                           h.sim().now());
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, Conformance,
                         ::testing::ValuesIn(conformance_space()),
                         param_name);

}  // namespace
}  // namespace gmx::testing
