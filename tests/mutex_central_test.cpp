// White-box tests of the centralized-server baseline.
#include "gridmutex/mutex/central_server.hpp"

#include <gtest/gtest.h>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

TEST(Central, ServerIsTheInitialHolder) {
  MutexHarness h({.participants = 4, .algorithm = "central",
                  .holder_rank = 2});
  auto& a = dynamic_cast<CentralServerMutex&>(h.ep(2).algorithm());
  EXPECT_TRUE(a.is_server());
  EXPECT_EQ(a.server_rank(), 2);
  EXPECT_TRUE(h.ep(2).holds_token());
}

TEST(Central, ClientCsCostsThreeMessages) {
  MutexHarness h({.participants = 4, .algorithm = "central",
                  .holder_rank = 0});
  h.request(3);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 2u);  // request + grant
  h.release(3);
  h.run();
  EXPECT_EQ(h.net().counters().sent, 3u);  // + release
}

TEST(Central, ServerSelfCsIsFree) {
  MutexHarness h({.participants = 4, .algorithm = "central",
                  .holder_rank = 0});
  h.request(0);
  h.run();
  h.release(0);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 0u);
}

TEST(Central, QueueIsStrictlyFifoByArrival) {
  MutexHarness h({.participants = 5, .algorithm = "central",
                  .holder_rank = 0, .latency = SimDuration::ms(1)});
  h.set_auto_release(SimDuration::ms(1));
  h.request(0);
  h.run_for(SimDuration::us(10));
  // Stagger arrivals: 4 then 1 then 3.
  h.request_at(SimDuration::us(100), 4);
  h.request_at(SimDuration::us(200), 1);
  h.request_at(SimDuration::us(300), 3);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 4, 1, 3}));
}

TEST(Central, PendingObserverAtServerAndViaRevoke) {
  MutexHarness h({.participants = 3, .algorithm = "central",
                  .holder_rank = 0});
  h.request(0);
  h.run();
  h.request(1);
  h.run();
  ASSERT_EQ(h.pending_events().size(), 1u);
  EXPECT_EQ(h.pending_events()[0], 0);
  h.release(0);
  h.run();
  // 1 in CS now; 2 queues at the server → the server revokes the holder,
  // so rank 1 observes the pending demand.
  h.request(2);
  h.run();
  ASSERT_EQ(h.pending_events().size(), 2u);
  EXPECT_EQ(h.pending_events()[1], 1);
  EXPECT_TRUE(h.ep(1).has_pending_requests());
  h.release(1);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 1, 2}));
}

TEST(Central, OnlyOneRevokePerGrant) {
  MutexHarness h({.participants = 4, .algorithm = "central",
                  .holder_rank = 0});
  std::uint64_t revokes = 0;
  h.net().set_tracer([&](const Message& m, SimTime, SimTime) {
    if (m.type == CentralServerMutex::kRevoke) ++revokes;
  });
  h.request(1);
  h.run();
  h.request(2);
  h.run();
  h.request(3);  // second waiter: no second revoke
  h.run();
  EXPECT_EQ(revokes, 1u);
  h.release(1);
  h.run();
  // New grant to 2, with 3 still queued → one more revoke.
  EXPECT_EQ(revokes, 2u);
  h.release(2);
  h.run();
  h.release(3);
  h.run();
  EXPECT_EQ(revokes, 2u);
  EXPECT_EQ(h.grants(), (std::vector<int>{1, 2, 3}));
}

TEST(Central, HoldsTokenSemantics) {
  MutexHarness h({.participants = 3, .algorithm = "central",
                  .holder_rank = 0});
  EXPECT_TRUE(h.ep(0).holds_token());   // free server
  EXPECT_FALSE(h.ep(1).holds_token());
  h.request(1);
  h.run();
  EXPECT_FALSE(h.ep(0).holds_token());  // lent out
  EXPECT_TRUE(h.ep(1).holds_token());
  h.release(1);
  h.run();
  EXPECT_TRUE(h.ep(0).holds_token());
}

TEST(CentralDeathTest, GrantToServerAborts) {
  MutexHarness h({.participants = 3, .algorithm = "central",
                  .holder_rank = 0});
  Message m;
  m.src = 1;
  m.dst = 0;
  m.protocol = 1;
  m.type = CentralServerMutex::kGrant;
  h.net().send(std::move(m));
  EXPECT_DEATH(h.run(), "routed to the server");
}

TEST(CentralDeathTest, ReleaseFromNonHolderAborts) {
  MutexHarness h({.participants = 3, .algorithm = "central",
                  .holder_rank = 0});
  h.request(1);
  h.run();
  Message m;
  m.src = 2;  // 2 never held the grant
  m.dst = 0;
  m.protocol = 1;
  m.type = CentralServerMutex::kRelease;
  h.net().send(std::move(m));
  EXPECT_DEATH(h.run(), "");
}

}  // namespace
}  // namespace gmx::testing
