// Golden bit-identity regression tests.
//
// Every simulation must be a pure function of (configuration, seed): the
// kernel's (time, seq) total order, the slab allocator, the pooled network
// buffers and the flat dispatch tables are all invisible to the trajectory.
// These tests pin that guarantee two ways:
//
//   1. Pinned FNV-1a hashes of the full delivery trace (trace_hash) for one
//      flat and one composed seed-fixed experiment. Any optimisation that
//      reorders, retimes or rewrites a single observable byte flips the
//      hash. If a change fails here *intentionally* (a semantic change to
//      scheduling or the wire format), re-pin the constants and say why in
//      the commit message.
//   2. Same-seed reruns — including a K=16 LockService run under the pooled
//      allocator — must compare equal field-for-field via
//      ExperimentResult::operator==.
#include <gtest/gtest.h>

#include "gridmutex/service/experiment.hpp"
#include "gridmutex/workload/experiment.hpp"

namespace gmx {
namespace {

ExperimentConfig golden_flat() {
  ExperimentConfig cfg;
  cfg.mode = ExperimentConfig::Mode::kFlat;
  cfg.flat_algorithm = "naimi";
  cfg.workload.cs_count = 5;
  cfg.workload.rho = 180;
  cfg.seed = 42;
  cfg.hash_trace = true;
  return cfg;
}

ExperimentConfig golden_composed() {
  ExperimentConfig cfg;
  cfg.intra = "naimi";
  cfg.inter = "martin";
  cfg.workload.cs_count = 5;
  cfg.workload.rho = 180;
  cfg.seed = 42;
  cfg.hash_trace = true;
  return cfg;
}

// Pinned on the 9x20 grid5000 default topology at seed 42, 5 CS/process.
constexpr std::uint64_t kGoldenFlatHash = 13497208907778862334ull;
constexpr std::uint64_t kGoldenComposedHash = 8747629713154757312ull;

TEST(GoldenTrace, FlatNaimiHashPinned) {
  const ExperimentResult r = run_experiment(golden_flat());
  EXPECT_EQ(r.total_cs, 900u);
  EXPECT_EQ(r.trace_hash, kGoldenFlatHash)
      << "the flat-Naimi delivery trace changed — if intentional, re-pin";
}

TEST(GoldenTrace, ComposedNaimiMartinHashPinned) {
  const ExperimentResult r = run_experiment(golden_composed());
  EXPECT_EQ(r.total_cs, 900u);
  EXPECT_EQ(r.trace_hash, kGoldenComposedHash)
      << "the Naimi-Martin delivery trace changed — if intentional, re-pin";
}

TEST(GoldenTrace, SameSeedRerunsAreBitIdentical) {
  const ExperimentResult a = run_experiment(golden_composed());
  const ExperimentResult b = run_experiment(golden_composed());
  EXPECT_TRUE(a == b);
}

TEST(GoldenTrace, ServiceRunBitIdenticalUnderPooledAllocator) {
  // K=16 exercises the batch mux, per-lock instances and the payload pool
  // hard; two same-seed runs must agree on every metric, per-lock row and
  // the full delivery trace.
  ServiceConfig cfg;
  cfg.locks = 16;
  cfg.open_loop.arrivals_per_sec = 200;
  cfg.open_loop.window = SimDuration::ms(500);
  cfg.open_loop.zipf_s = 0.9;
  cfg.seed = 7;
  cfg.hash_trace = true;
  const ExperimentResult a = run_service_experiment(cfg);
  const ExperimentResult b = run_service_experiment(cfg);
  EXPECT_NE(a.trace_hash, 0u);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.per_lock.size(), 16u);
}

TEST(GoldenTrace, DifferentSeedsDiverge) {
  // Sanity: the hash is actually sensitive to the trajectory.
  ExperimentConfig a = golden_flat();
  ExperimentConfig b = golden_flat();
  b.seed = 43;
  EXPECT_NE(run_experiment(a).trace_hash, run_experiment(b).trace_hash);
}

TEST(GoldenTrace, HashOffByDefault) {
  ExperimentConfig cfg = golden_flat();
  cfg.hash_trace = false;
  EXPECT_EQ(run_experiment(cfg).trace_hash, 0u);
}

}  // namespace
}  // namespace gmx
