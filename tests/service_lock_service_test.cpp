// LockService building blocks: lock-table placement, protocol-id
// reservation, per-node client sessions, piggyback batching, and the
// per-lock trace labeling of a multiplexed service.
#include "gridmutex/service/lock_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "gridmutex/net/latency.hpp"
#include "gridmutex/net/trace.hpp"
#include "gridmutex/net/wire.hpp"
#include "gridmutex/service/experiment.hpp"

namespace gmx::testing {
namespace {

std::shared_ptr<const LatencyModel> small_latency(std::uint32_t clusters) {
  return std::make_shared<MatrixLatencyModel>(MatrixLatencyModel::two_level(
      clusters, SimDuration::ms_f(0.5), SimDuration::ms(5), 0.0));
}

struct ServiceHarness {
  explicit ServiceHarness(LockServiceConfig cfg, std::uint32_t clusters = 2,
                          std::uint32_t apps = 2)
      : topo(Composition::make_topology(clusters, apps)),
        net(sim, topo, small_latency(clusters), Rng(7)),
        svc(net, std::move(cfg)) {
    svc.start();
  }

  Simulator sim;
  Topology topo;
  Network net;
  LockService svc;
};

TEST(LockTable, RoundRobinSpreadsHomesAcrossClusters) {
  std::vector<std::string> names;
  for (int i = 0; i < 7; ++i) names.push_back("l" + std::to_string(i));
  const LockTable t(3, Placement::kRoundRobin, names);
  ASSERT_EQ(t.lock_count(), 7u);
  for (LockId l = 0; l < 7; ++l) {
    EXPECT_EQ(t.home_cluster(l), l % 3) << "lock " << l;
    EXPECT_EQ(t.name(l), names[l]);
  }
}

TEST(LockTable, HashPlacementIsStableAndNameKeyed) {
  const LockTable t(5, Placement::kHash, {"alpha", "beta", "gamma"});
  for (LockId l = 0; l < 3; ++l) {
    EXPECT_LT(t.home_cluster(l), 5u);
    EXPECT_EQ(t.home_cluster(l), LockTable::hash_cluster(t.name(l), 5));
  }
  // Renumbering does not move a named lock's home — the property that
  // distinguishes kHash from kRoundRobin.
  const LockTable reordered(5, Placement::kHash, {"gamma", "alpha", "beta"});
  EXPECT_EQ(reordered.home_cluster(1), t.home_cluster(0));  // "alpha"
  EXPECT_EQ(reordered.home_cluster(0), t.home_cluster(2));  // "gamma"
}

TEST(LockTable, PlacementParsing) {
  EXPECT_EQ(parse_placement("roundrobin"), Placement::kRoundRobin);
  EXPECT_EQ(parse_placement("rr"), Placement::kRoundRobin);
  EXPECT_EQ(parse_placement("hash"), Placement::kHash);
  EXPECT_THROW((void)parse_placement("zipf"), std::invalid_argument);
  EXPECT_EQ(to_string(Placement::kHash), "hash");
  EXPECT_EQ(to_string(Placement::kRoundRobin), "roundrobin");
}

TEST(Network, ReserveProtocolsNeverCollides) {
  Simulator sim;
  Topology topo = Topology::uniform(2, 2);
  Network net(sim, topo, small_latency(2), Rng(3));
  // Legacy-style manual attach below the watermark...
  net.attach(0, 5, [](const Message&) {});
  // ...pushes reservations past every id previously attached.
  const ProtocolId a = net.reserve_protocols(3);
  EXPECT_GT(a, 5u);
  const ProtocolId b = net.reserve_protocols(1);
  EXPECT_EQ(b, a + 3);
  EXPECT_NE(a, 0u) << "0 stays the no-protocol sentinel";
}

TEST(LockService, LayoutMatchesServiceConfigPrediction) {
  ServiceHarness h(LockServiceConfig{.locks = 3}, /*clusters=*/2);
  EXPECT_EQ(h.svc.batch_protocol(), ServiceConfig::kBatchProtocol);
  for (LockId l = 0; l < 3; ++l) {
    EXPECT_EQ(h.svc.protocol_base(l),
              ServiceConfig::lock_protocol_base(l, 2));
    EXPECT_EQ(h.svc.composition(l).inter_protocol(),
              ServiceConfig::lock_inter_protocol(l, 2));
    EXPECT_EQ(h.svc.composition(l).intra_protocol(1),
              ServiceConfig::lock_intra_protocol(l, 2, 1));
  }
}

TEST(LockService, HomeClustersSeedInterTokens) {
  ServiceHarness h(LockServiceConfig{.locks = 4}, /*clusters=*/2);
  for (LockId l = 0; l < 4; ++l) {
    EXPECT_EQ(h.svc.composition(l).config().initial_cluster, l % 2);
    EXPECT_EQ(h.svc.table().home_cluster(l), l % 2);
  }
}

TEST(ClientSession, GrantsAreFifoPerLockAndConcurrentAcrossLocks) {
  ServiceHarness h(LockServiceConfig{.locks = 2, .batching = false});
  const std::vector<NodeId>& apps = h.svc.app_nodes();
  ASSERT_GE(apps.size(), 2u);
  ClientSession& s0 = h.svc.session(apps[0]);

  std::vector<int> order;
  // Two queued acquires of lock 0 on one node: strictly FIFO, the second
  // grant only after the first release.
  s0.acquire(0, [&] {
    order.push_back(1);
    h.sim.schedule_after(SimDuration::ms(2), [&] { s0.release(0); });
  });
  s0.acquire(0, [&] {
    order.push_back(2);
    EXPECT_FALSE(s0.pending(0) > 0 && order.size() < 2);
    h.sim.schedule_after(SimDuration::ms(2), [&] { s0.release(0); });
  });
  // A different lock on the same node proceeds independently.
  s0.acquire(1, [&] {
    order.push_back(3);
    h.sim.schedule_after(SimDuration::ms(1), [&] { s0.release(1); });
  });
  // pending() counts unfired grant callbacks: the in-flight head + the
  // queued second acquire.
  EXPECT_EQ(s0.pending(0), 2u);

  h.sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);  // lock 0 FIFO...
  EXPECT_LT(std::find(order.begin(), order.end(), 1),
            std::find(order.begin(), order.end(), 2));
  EXPECT_EQ(s0.acquisitions(0), 2u);
  EXPECT_EQ(s0.acquisitions(1), 1u);
  EXPECT_TRUE(s0.idle());
  EXPECT_EQ(h.net.in_flight(), 0u);
}

TEST(ClientSession, HoldingTwoDifferentLocksAtOnceIsLegal) {
  ServiceHarness h(LockServiceConfig{.locks = 2, .batching = false});
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  bool both_held = false;
  s.acquire(0, [&] {
    s.acquire(1, [&] {
      both_held = s.holding(0) && s.holding(1);
      s.release(1);
      s.release(0);
    });
  });
  h.sim.run();
  EXPECT_TRUE(both_held);
  EXPECT_TRUE(s.idle());
}

TEST(BatchMux, CodecRoundTripsSubMessages) {
  std::vector<Message> subs(3);
  for (std::size_t i = 0; i < subs.size(); ++i) {
    subs[i].src = 4;
    subs[i].dst = 9;
    subs[i].protocol = ProtocolId(2 + i * 3);
    subs[i].type = std::uint16_t(i + 1);
    subs[i].payload.assign(i * 5, std::uint8_t(0xA0 + i));
  }
  const std::vector<std::uint8_t> frame = BatchMux::encode(subs);
  const std::vector<Message> back = BatchMux::decode(4, 9, frame);
  ASSERT_EQ(back.size(), subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(back[i].src, 4u);
    EXPECT_EQ(back[i].dst, 9u);
    EXPECT_EQ(back[i].protocol, subs[i].protocol);
    EXPECT_EQ(back[i].type, subs[i].type);
    EXPECT_EQ(back[i].payload, subs[i].payload);
  }
}

TEST(BatchMux, DecodeRejectsMalformedFrames) {
  EXPECT_THROW((void)BatchMux::decode(0, 1, std::vector<std::uint8_t>{0}),
               wire::WireError);  // zero sub-count
  // ACK smuggled inside a frame.
  Message ack;
  ack.protocol = 2;
  ack.type = Message::kAckType;
  EXPECT_THROW((void)BatchMux::decode(0, 1, BatchMux::encode({&ack, 1})),
               wire::WireError);
  // Protocol id 0 (the sentinel) inside a frame.
  wire::Writer w;
  w.varint(1);
  w.varint(0);
  w.u16(1);
  w.bytes({});
  EXPECT_THROW((void)BatchMux::decode(0, 1, w.take()), wire::WireError);
}

TEST(BatchMux, CoalescesSameInstantSameDestinationSends) {
  Simulator sim;
  Topology topo = Topology::uniform(2, 2);
  Network net(sim, topo, small_latency(2), Rng(5));
  const ProtocolId batch = net.reserve_protocols(1);
  const ProtocolId pa = net.reserve_protocols(1);
  const ProtocolId pb = net.reserve_protocols(1);
  int got_a = 0, got_b = 0;
  net.attach(2, pa, [&](const Message&) { ++got_a; });
  net.attach(2, pb, [&](const Message&) { ++got_b; });
  BatchMux mux(net, batch);

  // Three messages, same (src, dst), same instant: one frame on the wire,
  // every handler fired at the destination. Three subs also make the frame
  // cheaper than separate datagrams (per-sub overhead ~4 bytes vs the
  // 8-byte header), so bytes_saved must move.
  sim.schedule_at(SimTime::zero(), [&] {
    Message m1{.src = 0, .dst = 2, .protocol = pa, .type = 1};
    Message m2{.src = 0, .dst = 2, .protocol = pb, .type = 1};
    Message m3{.src = 0, .dst = 2, .protocol = pa, .type = 2};
    m1.payload.assign(16, 0x11);
    m2.payload.assign(16, 0x22);
    m3.payload.assign(16, 0x33);
    net.send(std::move(m1));
    net.send(std::move(m2));
    net.send(std::move(m3));
    EXPECT_EQ(mux.in_transit(), 3u);
  });
  sim.run();

  EXPECT_EQ(got_a, 2);
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(mux.stats().frames, 1u);
  EXPECT_EQ(mux.stats().absorbed, 3u);
  EXPECT_EQ(net.counters().sent, 1u) << "one BATCH datagram, not three";
  EXPECT_EQ(mux.absorbed_for(pa), 2u);
  EXPECT_EQ(mux.absorbed_for(pb), 1u);
  EXPECT_EQ(mux.in_transit(), 0u);
  EXPECT_GT(mux.stats().bytes_saved, 0u);
}

TEST(BatchMux, LoneMessagesTravelUnbatched) {
  Simulator sim;
  Topology topo = Topology::uniform(2, 2);
  Network net(sim, topo, small_latency(2), Rng(5));
  const ProtocolId batch = net.reserve_protocols(1);
  const ProtocolId pa = net.reserve_protocols(1);
  int got = 0;
  net.attach(1, pa, [&](const Message&) { ++got; });
  BatchMux mux(net, batch);
  sim.schedule_at(SimTime::zero(), [&] {
    net.send(Message{.src = 0, .dst = 1, .protocol = pa, .type = 1});
  });
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(mux.stats().frames, 0u);
  EXPECT_EQ(mux.stats().flushed_single, 1u);
  EXPECT_EQ(net.sent_by_protocol(pa), 1u);
}

TEST(BatchMux, ReliableProtocolsBypassBatching) {
  Simulator sim;
  Topology topo = Topology::uniform(2, 2);
  Network net(sim, topo, small_latency(2), Rng(5));
  const ProtocolId batch = net.reserve_protocols(1);
  const ProtocolId pa = net.reserve_protocols(1);
  const ProtocolId rel = net.reserve_protocols(1);
  net.set_reliable(rel);
  int got = 0;
  net.attach(2, pa, [&](const Message&) { ++got; });
  net.attach(2, rel, [&](const Message&) { ++got; });
  BatchMux mux(net, batch);
  sim.schedule_at(SimTime::zero(), [&] {
    net.send(Message{.src = 0, .dst = 2, .protocol = pa, .type = 1});
    net.send(Message{.src = 0, .dst = 2, .protocol = rel, .type = 1});
  });
  sim.run();
  EXPECT_EQ(got, 2);
  // The ARQ-covered message must never ride a frame.
  EXPECT_EQ(mux.absorbed_for(rel), 0u);
  EXPECT_EQ(mux.stats().frames, 0u) << "lone unreliable message + bypassed "
                                       "reliable one: nothing to pair";
  // Data frame + its ARQ ACK, both direct datagrams.
  EXPECT_GE(net.sent_by_protocol(rel), 1u);
}

TEST(LockService, TraceLabelerIdentifiesLocksAndBatchFrames) {
  ServiceHarness h(LockServiceConfig{.locks = 2}, /*clusters=*/2);
  const auto label = h.svc.trace_labeler();
  const std::string inter0 =
      label(h.svc.composition(0).inter_protocol(), 1);
  EXPECT_EQ(inter0.rfind("lock[0].inter", 0), 0u) << inter0;
  const std::string intra1 =
      label(h.svc.composition(1).intra_protocol(0), 2);
  EXPECT_EQ(intra1.rfind("lock[1].intra[0]", 0), 0u) << intra1;
  EXPECT_EQ(label(h.svc.batch_protocol(), BatchMux::kFrameType),
            "svc.BATCH");
  EXPECT_EQ(label(9999, 1), "") << "foreign protocols defer";
}

TEST(LockService, TraceSinkChainsServiceLabeler) {
  ServiceHarness h(LockServiceConfig{.locks = 2, .batching = false},
                   /*clusters=*/2);
  std::ostringstream out;
  TraceSink sink(out, h.svc.trace_labeler());
  sink.install(h.net);
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  s.acquire(1, [&] { s.release(1); });
  h.sim.run();
  const std::string text = out.str();
  EXPECT_NE(text.find("lock[1]."), std::string::npos) << text;
  EXPECT_EQ(text.find("lock[0]."), std::string::npos)
      << "idle lock 0 must not appear in the trace";
}

TEST(LockService, PerLockMessageAccountingSeparatesTraffic) {
  ServiceHarness h(LockServiceConfig{.locks = 2, .batching = false},
                   /*clusters=*/2);
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  s.acquire(1, [&] { s.release(1); });
  h.sim.run();
  EXPECT_GT(h.svc.messages(1), 0u);
  EXPECT_EQ(h.svc.messages(0), 0u)
      << "lock 0 idle: its protocol block must stay silent";
}

}  // namespace
}  // namespace gmx::testing
