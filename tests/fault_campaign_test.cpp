// Canned fault campaigns over the experiment layer (the PR's acceptance
// scenario): a targeted token drop, a node/coordinator crash with restart,
// and one inter-cluster partition — per registered algorithm, flat and
// composed — with ARQ + token-loss recovery + coordinator failover armed
// and the protocol checker watching every invariant. A negative control
// shows the same campaign stalls when recovery is disabled.
#include <gtest/gtest.h>

#include <string>

#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/service/experiment.hpp"
#include "gridmutex/workload/experiment.hpp"

namespace gmx::testing {
namespace {

SimTime at(std::int64_t ms) { return SimTime::zero() + SimDuration::ms(ms); }

constexpr std::uint64_t kExpectedCs = 6 * 8;  // 6 apps x 8 CS each

ExperimentConfig small_config(ExperimentConfig::Mode mode,
                              const std::string& algo) {
  ExperimentConfig cfg;
  cfg.mode = mode;
  cfg.intra = algo;
  cfg.inter = algo;
  cfg.flat_algorithm = algo;
  cfg.clusters = 2;
  cfg.apps_per_cluster = 3;
  cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                       SimDuration::ms(10));
  cfg.workload.rho = 30.0;
  cfg.workload.cs_count = 8;
  cfg.seed = 11;
  cfg.check_protocol = true;
  return cfg;
}

// The canned campaign: one targeted drop (the token where there is one),
// one crash/restart (the cluster-0 coordinator in composition mode), one
// inter-cluster partition.
void add_campaign(ExperimentConfig& cfg, NodeId crash_node) {
  cfg.faults.enabled = true;
  FaultPlan& plan = cfg.faults.plan;
  const std::string& algo = cfg.mode == ExperimentConfig::Mode::kFlat
                                ? cfg.flat_algorithm
                                : cfg.inter;
  if (is_token_based(algo)) {
    plan.drop_messages(1, 2 /* kToken */, 1, at(200));
  } else {
    plan.drop_messages(1, FaultPlan::kAnyType, 2, at(200));
  }
  plan.crash(crash_node, at(300), at(600));
  plan.partition_clusters(0, 1, at(800), at(1100));
}

TEST(FaultCampaign, EveryAlgorithmFlatRecoversLiveness) {
  for (const std::string& algo : algorithm_names()) {
    ExperimentConfig cfg = small_config(ExperimentConfig::Mode::kFlat, algo);
    add_campaign(cfg, /*crash_node=*/4);  // an app node of cluster 1
    const ExperimentResult res = run_experiment(cfg);

    EXPECT_FALSE(res.stalled) << algo;
    EXPECT_EQ(res.total_cs, kExpectedCs) << algo;
    EXPECT_EQ(res.safety_violations, 0u) << algo;
    EXPECT_GT(res.invariant_checks, 0u) << algo;
    EXPECT_GE(res.faults_injected, 3u) << algo;
    EXPECT_GT(res.messages.dropped, 0u) << algo;
    EXPECT_GT(res.messages.retransmitted, 0u) << algo;
  }
}

TEST(FaultCampaign, EveryAlgorithmComposedSurvivesCoordinatorCrash) {
  for (const std::string& algo : algorithm_names()) {
    ExperimentConfig cfg =
        small_config(ExperimentConfig::Mode::kComposition, algo);
    // Node 0 is the cluster-0 coordinator: the crash lands mid-cycle in
    // whatever Fig. 2 state the automaton is in, and recover() must replay
    // the missed edges.
    add_campaign(cfg, /*crash_node=*/0);
    const ExperimentResult res = run_experiment(cfg);

    EXPECT_FALSE(res.stalled) << algo;
    EXPECT_EQ(res.total_cs, kExpectedCs) << algo;
    EXPECT_EQ(res.safety_violations, 0u) << algo;
    EXPECT_GT(res.invariant_checks, 0u) << algo;
    EXPECT_EQ(res.coordinator_failovers, 1u) << algo;
    EXPECT_GT(res.messages.retransmitted, 0u) << algo;
  }
}

TEST(FaultCampaign, TrueTokenLossRegeneratesThroughTheExperimentLayer) {
  for (const std::string& algo : {std::string("suzuki"), std::string("naimi")}) {
    ExperimentConfig cfg = small_config(ExperimentConfig::Mode::kFlat, algo);
    cfg.faults.enabled = true;
    // No ARQ: the single killed token is a true loss and must be rebuilt
    // by the algorithm's own regeneration protocol.
    cfg.faults.recovery_cfg.enable_retransmit = false;
    cfg.faults.plan.drop_messages(1, 2 /* kToken */, 1, at(200));
    const ExperimentResult res = run_experiment(cfg);

    EXPECT_FALSE(res.stalled) << algo;
    EXPECT_EQ(res.total_cs, kExpectedCs) << algo;
    EXPECT_EQ(res.token_losses, 1u) << algo;
    EXPECT_EQ(res.token_regenerations, 1u) << algo;
    EXPECT_EQ(res.recovery_latency.count(), 1u) << algo;
    EXPECT_GT(res.recovery_latency.mean_ms(), 0.0) << algo;
    EXPECT_EQ(res.safety_violations, 0u) << algo;
  }
}

TEST(FaultCampaign, NegativeControlStallsWithRecoveryDisabled) {
  for (const std::string& algo : {std::string("naimi"), std::string("suzuki")}) {
    ExperimentConfig cfg = small_config(ExperimentConfig::Mode::kFlat, algo);
    cfg.check_protocol = false;  // a stalled run is the expected outcome
    cfg.faults.enabled = true;
    cfg.faults.recovery = false;
    cfg.faults.plan.drop_messages(1, 2 /* kToken */, 1, at(200));
    cfg.faults.stall_horizon = at(60'000);
    const ExperimentResult res = run_experiment(cfg);

    EXPECT_TRUE(res.stalled) << algo;
    EXPECT_LT(res.total_cs, kExpectedCs) << algo;
    EXPECT_EQ(res.safety_violations, 0u) << algo;
  }
}

TEST(FaultCampaign, ArmingAnEmptyCampaignDoesNotPerturbTheTrajectory) {
  ExperimentConfig clean =
      small_config(ExperimentConfig::Mode::kComposition, "naimi");
  clean.check_protocol = false;
  ExperimentConfig armed = clean;
  armed.faults.enabled = true;   // injector constructed, nothing scheduled
  armed.faults.recovery = false; // no ARQ, no probes

  const ExperimentResult a = run_experiment(clean);
  const ExperimentResult b = run_experiment(armed);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.total_cs, b.total_cs);
  EXPECT_EQ(a.messages.sent, b.messages.sent);
  EXPECT_EQ(a.messages.delivered, b.messages.delivered);
  EXPECT_EQ(a.obtaining.count(), b.obtaining.count());
  EXPECT_EQ(a.makespan.as_ms(), b.makespan.as_ms());
}

// Service interop: faults stay lock-scoped. Killing lock 0's cluster-0
// intra token (true loss — ARQ off) must be detected and regenerated for
// lock 0 while lock 1, multiplexed over the same network, rides through:
// both locks complete every arrival and only lock 0's obtaining tail shows
// the detect_timeout-sized recovery stall.
TEST(FaultCampaign, ServiceTokenLossIsConfinedToItsLock) {
  ServiceConfig cfg;
  cfg.locks = 2;
  cfg.clusters = 2;
  cfg.apps_per_cluster = 3;
  cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                       SimDuration::ms(10));
  cfg.open_loop.arrivals_per_sec = 60;
  cfg.open_loop.window = SimDuration::ms(1000);
  cfg.open_loop.hold = SimDuration::ms(2);
  cfg.open_loop.zipf_s = 0.0;  // uniform: both locks see steady traffic
  cfg.seed = 11;
  cfg.check_protocol = true;
  cfg.faults.enabled = true;
  cfg.faults.recovery_cfg.enable_retransmit = false;  // drop = true loss
  cfg.faults.plan.drop_messages(
      ServiceConfig::lock_intra_protocol(/*lock=*/0, cfg.clusters,
                                         /*cluster=*/0),
      2 /* kToken */, 1, at(200));

  const ExperimentResult res = run_service_experiment(cfg);

  EXPECT_FALSE(res.stalled);
  EXPECT_EQ(res.token_losses, 1u);
  EXPECT_EQ(res.token_regenerations, 1u);
  EXPECT_EQ(res.safety_violations, 0u);
  EXPECT_GT(res.invariant_checks, 0u);
  ASSERT_EQ(res.per_lock.size(), 2u);
  // Liveness per lock: every arrival on both locks completed its CS.
  for (const LockMetrics& l : res.per_lock) {
    EXPECT_GT(l.arrivals, 0u) << l.name;
    EXPECT_EQ(l.completed_cs, l.arrivals) << l.name;
  }
  // Isolation: the ~detect_timeout recovery stall (400ms) lands in lock 0's
  // obtaining tail only; lock 1 never waits anywhere near that long.
  EXPECT_GT(res.per_lock[0].obtaining.max_ms(), 400.0);
  EXPECT_LT(res.per_lock[1].obtaining.max_ms(), 200.0);
}

TEST(FaultCampaign, CampaignsAreDeterministic) {
  ExperimentConfig cfg =
      small_config(ExperimentConfig::Mode::kComposition, "suzuki");
  add_campaign(cfg, /*crash_node=*/0);
  const ExperimentResult a = run_experiment(cfg);
  const ExperimentResult b = run_experiment(cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.total_cs, b.total_cs);
  EXPECT_EQ(a.messages.sent, b.messages.sent);
  EXPECT_EQ(a.messages.retransmitted, b.messages.retransmitted);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.token_losses, b.token_losses);
  EXPECT_EQ(a.makespan.as_ms(), b.makespan.as_ms());
}

}  // namespace
}  // namespace gmx::testing
