// In-process lockd grid for transport tests: every node of a GridConfig
// hosted in this process, one UdpTransport (ephemeral loopback port) +
// LockdNode per node, peer tables wired from the actually-bound ports
// before any loop starts. Tests then talk to it exactly like a real
// deployment — through LockClient / run_campaign over UDP.
#pragma once

#include <memory>
#include <vector>

#include "gridmutex/transport/client.hpp"
#include "gridmutex/transport/node.hpp"
#include "gridmutex/transport/udp.hpp"

namespace gmx::transport {

class TestGrid {
 public:
  explicit TestGrid(GridConfig cfg,
                    LockdNode::Options opts = LockdNode::Options{})
      : cfg_(std::move(cfg)) {
    const std::uint32_t n = cfg_.node_count();
    for (NodeId i = 0; i < n; ++i)
      tps_.push_back(std::make_unique<UdpTransport>(i, "127.0.0.1", 0));
    for (const auto& tp : tps_) addrs_.push_back(PeerAddr::loopback(tp->port()));
    for (NodeId i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<LockdNode>(*tps_[i], cfg_, opts));
      for (NodeId j = 0; j < n; ++j)
        if (j != i) tps_[i]->add_peer(j, addrs_[j]);
    }
    for (const auto& tp : tps_) tp->start();
  }

  ~TestGrid() {
    for (const auto& tp : tps_) tp->stop();
  }

  TestGrid(const TestGrid&) = delete;
  TestGrid& operator=(const TestGrid&) = delete;

  [[nodiscard]] const GridConfig& config() const { return cfg_; }
  [[nodiscard]] const std::vector<PeerAddr>& addrs() const { return addrs_; }
  [[nodiscard]] LockdNode& node(NodeId i) { return *nodes_[i]; }

  /// kStart on every node (peer tables are pre-wired here, so no kPeers).
  [[nodiscard]] bool start_all(LockClient& client) {
    for (NodeId i = 0; i < cfg_.node_count(); ++i)
      if (!client.start(i, 5000)) return false;
    return true;
  }

  /// Sums kStats over the grid; returns nullopt on any timeout.
  [[nodiscard]] std::optional<NodeStats> total_stats(LockClient& client) {
    NodeStats total;
    for (NodeId i = 0; i < cfg_.node_count(); ++i) {
      const auto s = client.stats(i, 5000);
      if (!s) return std::nullopt;
      total += *s;
    }
    return total;
  }

 private:
  GridConfig cfg_;
  std::vector<std::unique_ptr<UdpTransport>> tps_;
  std::vector<std::unique_ptr<LockdNode>> nodes_;
  std::vector<PeerAddr> addrs_;
};

}  // namespace gmx::transport
