#include "gridmutex/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gmx {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> seen;
  sim.schedule_after(SimDuration::ms(5),
                     [&] { seen.push_back(sim.now().count_ns()); });
  sim.schedule_after(SimDuration::ms(2),
                     [&] { seen.push_back(sim.now().count_ns()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{2'000'000, 5'000'000}));
  EXPECT_EQ(sim.now().count_ns(), 5'000'000);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) sim.schedule_after(SimDuration::ms(1), chain);
  };
  sim.schedule_after(SimDuration::ms(1), chain);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now().count_ns(), 10 * 1'000'000);
}

TEST(Simulator, ZeroDelayEventFiresAtCurrentTime) {
  Simulator sim;
  bool inner = false;
  sim.schedule_after(SimDuration::ms(3), [&] {
    sim.schedule_after(SimDuration::ns(0), [&] {
      inner = true;
      EXPECT_EQ(sim.now().count_ns(), 3'000'000);
    });
  });
  sim.run();
  EXPECT_TRUE(inner);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    sim.schedule_after(SimDuration::ms(i), [&] { ++fired; });
  const bool drained = sim.run_until(SimTime::zero() + SimDuration::ms(4));
  EXPECT_FALSE(drained);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pending_events(), 6u);
  // Clock sits at the last event run, not the deadline.
  EXPECT_EQ(sim.now().count_ns(), 4'000'000);
}

TEST(Simulator, RunUntilReportsDrain) {
  Simulator sim;
  sim.schedule_after(SimDuration::ms(1), [] {});
  EXPECT_TRUE(sim.run_until(SimTime::zero() + SimDuration::sec(1)));
}

TEST(Simulator, RunStepsLimitsWork) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 5; ++i)
    sim.schedule_after(SimDuration::ms(i), [&] { ++fired; });
  EXPECT_EQ(sim.run_steps(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.run_steps(100), 2u);
  EXPECT_EQ(fired, 5);
}

TEST(Simulator, StopInterruptsRun) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 5; ++i)
    sim.schedule_after(SimDuration::ms(i), [&] {
      if (++fired == 2) sim.stop();
    });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending_events(), 3u);
  sim.run();  // resumes
  EXPECT_EQ(fired, 5);
}

TEST(Simulator, CancelledEventDoesNotRun) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(SimDuration::ms(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.schedule_after(SimDuration::ms(10), [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(SimTime::zero() + SimDuration::ms(5), [] {}),
               "past");
}

TEST(SimulatorDeathTest, EventLimitTripsOnLivelock) {
  Simulator sim;
  sim.set_event_limit(100);
  std::function<void()> forever = [&] {
    sim.schedule_after(SimDuration::ms(1), forever);
  };
  sim.schedule_after(SimDuration::ms(1), forever);
  EXPECT_DEATH(sim.run(), "event limit");
}

}  // namespace
}  // namespace gmx
