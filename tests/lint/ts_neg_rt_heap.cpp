// Seeded GUARDED_BY violation: RtRuntime::heap_ (and the seq_ counter that
// shares its capability) touched without heap_mu_. See
// ts_neg_thread_pool_queue.cpp for how these TUs are registered.
#include "gridmutex/rt/runtime.hpp"

namespace gmx::rt {

class ThreadSafetyProbe {
 public:
  static std::size_t unguarded(RtRuntime& rt) {
    return rt.heap_.size() + rt.seq_;  // violation: requires rt.heap_mu_
  }
};

}  // namespace gmx::rt
