// Positive control for the seeded-violation suite: the same private state
// the ts_neg_*.cpp TUs touch illegally, accessed with the locks held. Must
// compile clean under -Werror=thread-safety — if this TU ever warns, the
// negative tests' failures are meaningless (the analysis would be
// rejecting correct code, not catching violations).
#include "gridmutex/rt/runtime.hpp"
#include "gridmutex/workload/sweep.hpp"
#include "gridmutex/workload/thread_pool.hpp"

namespace gmx {

class ThreadSafetyProbe {
 public:
  static std::size_t guarded(ThreadPool& pool) {
    MutexLock lock(pool.mu_);
    return pool.queue_.size();
  }
};

namespace detail {
class ThreadSafetyProbe {
 public:
  static void guarded(ProgressGate& gate) { gate.report(1, 2); }
};
}  // namespace detail

namespace rt {
class ThreadSafetyProbe {
 public:
  static std::size_t guarded(RtRuntime& rt) {
    std::size_t n = 0;
    {
      MutexLock lock(rt.heap_mu_);
      n += rt.heap_.size() + std::size_t(rt.seq_);
    }
    {
      MutexLock lock(rt.handlers_mu_);
      n += rt.handlers_.size();
    }
    {
      MutexLock lock(rt.workers_[0]->mu);
      n += rt.workers_[0]->tasks.size();
    }
    return n;
  }
};
}  // namespace rt

}  // namespace gmx
