// Seeded GUARDED_BY violation: a NodeWorker's serial task queue touched
// without that worker's own mu (per-queue capability, not a global lock).
#include "gridmutex/rt/runtime.hpp"

namespace gmx::rt {

class ThreadSafetyProbe {
 public:
  static std::size_t unguarded(RtRuntime& rt) {
    // violation: requires rt.workers_[0]->mu
    return rt.workers_[0]->tasks.size();
  }
};

}  // namespace gmx::rt
