// Seeded REQUIRES violation: ProgressGate::invoke() demands the mu_
// capability and this caller does not hold it.
#include "gridmutex/workload/sweep.hpp"

namespace gmx::detail {

class ThreadSafetyProbe {
 public:
  static void unguarded(ProgressGate& gate) {
    gate.invoke(1, 2);  // violation: invoke() REQUIRES(gate.mu_)
  }
};

}  // namespace gmx::detail
