// Seeded GUARDED_BY violation: ThreadPool::queue_ read without mu_.
// Compiled Clang-only with -fsyntax-only -Werror=thread-safety and
// registered WILL_FAIL — if the analysis ever stops firing here, the ctest
// entry turns red (a checker that is never seen to fail proves nothing).
#include "gridmutex/workload/thread_pool.hpp"

namespace gmx {

class ThreadSafetyProbe {
 public:
  static std::size_t unguarded(ThreadPool& pool) {
    return pool.queue_.size();  // violation: requires holding pool.mu_
  }
};

}  // namespace gmx
