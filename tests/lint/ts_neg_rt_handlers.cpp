// Seeded GUARDED_BY violation: RtRuntime::handlers_ read without
// handlers_mu_ — the exact shape of the escaped-reference defect the
// annotation caught in deliver() (see src/rt/runtime.cpp).
#include "gridmutex/rt/runtime.hpp"

namespace gmx::rt {

class ThreadSafetyProbe {
 public:
  static std::size_t unguarded(RtRuntime& rt) {
    return rt.handlers_.size();  // violation: requires rt.handlers_mu_
  }
};

}  // namespace gmx::rt
