// Deterministic fuzzing of the wire codec: random byte strings fed to every
// Reader primitive must either decode or throw WireError — never crash,
// never read out of bounds, never loop. Also mutation fuzzing: valid
// encodings with flipped bytes/truncations stay within the same contract.
// The BatchMux frame codec (service/batch.hpp) rides the same harness: it
// is the one nested encoding on the wire, so a malformed frame must fail
// as a WireError, never as a corrupt sub-message dispatch.
#include <gtest/gtest.h>

#include "gridmutex/net/wire.hpp"
#include "gridmutex/service/batch.hpp"
#include "gridmutex/sim/random.hpp"

namespace gmx::wire {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.next_below(max_len + 1));
  for (auto& b : out) b = std::uint8_t(rng.next_below(256));
  return out;
}

template <typename F>
void expect_decodes_or_throws(const std::vector<std::uint8_t>& bytes, F f) {
  Reader r(bytes);
  try {
    f(r);
  } catch (const WireError&) {
    // acceptable outcome
  }
}

TEST(WireFuzz, RandomBytesNeverCrashPrimitives) {
  Rng rng(0xF022);
  for (int i = 0; i < 5000; ++i) {
    const auto bytes = random_bytes(rng, 64);
    expect_decodes_or_throws(bytes, [](Reader& r) { (void)r.u8(); });
    expect_decodes_or_throws(bytes, [](Reader& r) { (void)r.u16(); });
    expect_decodes_or_throws(bytes, [](Reader& r) { (void)r.u32(); });
    expect_decodes_or_throws(bytes, [](Reader& r) { (void)r.u64(); });
    expect_decodes_or_throws(bytes, [](Reader& r) { (void)r.f64(); });
    expect_decodes_or_throws(bytes, [](Reader& r) { (void)r.varint(); });
    expect_decodes_or_throws(bytes, [](Reader& r) { (void)r.bytes(); });
    expect_decodes_or_throws(bytes, [](Reader& r) { (void)r.str(); });
    expect_decodes_or_throws(bytes,
                             [](Reader& r) { (void)r.varint_array_u64(); });
    expect_decodes_or_throws(bytes,
                             [](Reader& r) { (void)r.varint_array_u32(); });
  }
}

TEST(WireFuzz, RandomBytesSequencedDecoding) {
  // Decode a random mix of primitives until the payload is exhausted or a
  // WireError fires; the reader must never report negative remaining.
  Rng rng(0xBEEF);
  for (int i = 0; i < 2000; ++i) {
    const auto bytes = random_bytes(rng, 128);
    Reader r(bytes);
    try {
      while (!r.at_end()) {
        const std::size_t before = r.remaining();
        switch (rng.next_below(5)) {
          case 0:
            (void)r.u8();
            break;
          case 1:
            (void)r.u32();
            break;
          case 2:
            (void)r.varint();
            break;
          case 3:
            (void)r.bytes();
            break;
          default:
            (void)r.varint_array_u32();
            break;
        }
        EXPECT_LT(r.remaining(), before);
      }
    } catch (const WireError&) {
    }
  }
}

TEST(WireFuzz, TruncationsOfValidMessagesThrowOrDecodePrefix) {
  Rng rng(0xCAFE);
  for (int i = 0; i < 500; ++i) {
    Writer w;
    std::vector<std::uint64_t> ln(rng.next_below(20));
    for (auto& v : ln) v = rng.next_u64() >> (rng.next_below(60));
    w.varint_array(std::span<const std::uint64_t>(ln));
    w.str("token");
    const auto full = w.take();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      std::vector<std::uint8_t> trunc(full.begin(),
                                      full.begin() + std::ptrdiff_t(cut));
      Reader r(trunc);
      try {
        const auto arr = r.varint_array_u64();
        const auto s = r.str();
        // If both decoded, the truncation removed only padding — impossible
        // here, so decoding implies the full prefix survived.
        EXPECT_EQ(arr, ln);
        EXPECT_EQ(s, "token");
      } catch (const WireError&) {
      }
    }
  }
}

TEST(WireFuzz, SingleByteMutationsKeepContract) {
  Rng rng(0xD00D);
  Writer w;
  const std::vector<std::uint64_t> ln = {1, 128, 1ull << 40, 7};
  w.varint_array(std::span<const std::uint64_t>(ln));
  const std::vector<std::uint32_t> q = {3, 1, 2};
  w.varint_array(std::span<const std::uint32_t>(q));
  const auto base = w.take();
  for (int i = 0; i < 3000; ++i) {
    auto mutated = base;
    mutated[rng.next_below(mutated.size())] ^=
        std::uint8_t(1u << rng.next_below(8));
    Reader r(mutated);
    try {
      (void)r.varint_array_u64();
      (void)r.varint_array_u32();
      (void)r.expect_end();
    } catch (const WireError&) {
    }
  }
}

TEST(WireFuzz, RoundTripPropertyRandomValues) {
  // Property: decode(encode(x)) == x for random structured values.
  Rng rng(0xABCD);
  for (int i = 0; i < 2000; ++i) {
    Writer w;
    const std::uint64_t a = rng.next_u64() >> rng.next_below(64);
    std::vector<std::uint64_t> arr(rng.next_below(16));
    for (auto& v : arr) v = rng.next_u64() >> rng.next_below(64);
    std::string s;
    for (std::size_t k = rng.next_below(24); k > 0; --k)
      s.push_back(char('a' + rng.next_below(26)));
    w.varint(a);
    w.varint_array(std::span<const std::uint64_t>(arr));
    w.str(s);
    Reader r(w.view());
    EXPECT_EQ(r.varint(), a);
    EXPECT_EQ(r.varint_array_u64(), arr);
    EXPECT_EQ(r.str(), s);
    r.expect_end();
  }
}

Message random_sub(Rng& rng) {
  Message m;
  m.protocol = ProtocolId(1 + rng.next_below(40));
  m.type = std::uint16_t(rng.next_below(Message::kAckType));  // never an ACK
  m.payload = random_bytes(rng, 48);
  return m;
}

TEST(BatchFuzz, RandomBytesDecodeOrThrow) {
  Rng rng(0xBA7C);
  for (int i = 0; i < 5000; ++i) {
    const auto bytes = random_bytes(rng, 96);
    try {
      const auto subs = BatchMux::decode(3, 7, bytes);
      // Anything that decodes must honor the frame contract: at least one
      // sub-message, src/dst restored from the enclosing frame, and only
      // dispatchable protocols/types.
      EXPECT_GE(subs.size(), 1u);
      for (const Message& m : subs) {
        EXPECT_EQ(m.src, 3u);
        EXPECT_EQ(m.dst, 7u);
        EXPECT_NE(m.protocol, 0u);
        EXPECT_NE(m.type, Message::kAckType);
      }
    } catch (const WireError&) {
    }
  }
}

TEST(BatchFuzz, RoundTripRandomSubMessageSets) {
  Rng rng(0xBA7C2);
  for (int i = 0; i < 1000; ++i) {
    std::vector<Message> subs(1 + rng.next_below(8));
    for (auto& m : subs) m = random_sub(rng);
    const auto frame = BatchMux::encode(subs);
    const auto back = BatchMux::decode(11, 22, frame);
    ASSERT_EQ(back.size(), subs.size());
    for (std::size_t k = 0; k < subs.size(); ++k) {
      EXPECT_EQ(back[k].src, 11u);
      EXPECT_EQ(back[k].dst, 22u);
      EXPECT_EQ(back[k].protocol, subs[k].protocol);
      EXPECT_EQ(back[k].type, subs[k].type);
      EXPECT_EQ(back[k].payload, subs[k].payload);
    }
  }
}

TEST(BatchFuzz, MutatedFramesKeepContract) {
  Rng rng(0xBA7C3);
  for (int i = 0; i < 300; ++i) {
    std::vector<Message> subs(2 + rng.next_below(5));
    for (auto& m : subs) m = random_sub(rng);
    const auto base = BatchMux::encode(subs);
    for (int j = 0; j < 20; ++j) {
      auto mutated = base;
      mutated[rng.next_below(mutated.size())] ^=
          std::uint8_t(1u << rng.next_below(8));
      try {
        const auto back = BatchMux::decode(1, 2, mutated);
        for (const Message& m : back) {
          EXPECT_NE(m.protocol, 0u);
          EXPECT_NE(m.type, Message::kAckType);
        }
      } catch (const WireError&) {
      }
    }
  }
}

TEST(BatchFuzz, TruncatedFramesThrowOrDecodeValidSubset) {
  Rng rng(0xBA7C4);
  for (int i = 0; i < 200; ++i) {
    std::vector<Message> subs(2 + rng.next_below(4));
    for (auto& m : subs) m = random_sub(rng);
    const auto full = BatchMux::encode(subs);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const std::span<const std::uint8_t> trunc(full.data(), cut);
      try {
        const auto back = BatchMux::decode(5, 6, trunc);
        // decode() demands the declared count and a fully consumed payload;
        // a strict prefix can never satisfy both.
        ADD_FAILURE() << "truncation at " << cut << "/" << full.size()
                      << " decoded " << back.size() << " sub-messages";
      } catch (const WireError&) {
      }
    }
  }
}

}  // namespace
}  // namespace gmx::wire
