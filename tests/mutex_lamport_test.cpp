// White-box tests of Lamport's algorithm: queue discipline, clock
// propagation, 3(N-1) message cost.
#include "gridmutex/mutex/lamport.hpp"

#include <gtest/gtest.h>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

LamportMutex& algo(MutexHarness& h, int rank) {
  return dynamic_cast<LamportMutex&>(h.ep(rank).algorithm());
}

TEST(Lamport, UncontendedCsCostsThreeNMinusThreeMessages) {
  const int n = 5;
  MutexHarness h({.participants = n, .algorithm = "lamport"});
  h.request(2);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  // N-1 requests + N-1 replies to enter...
  EXPECT_EQ(h.net().counters().sent, std::uint64_t(2 * (n - 1)));
  h.release(2);
  h.run();
  // ... + N-1 releases.
  EXPECT_EQ(h.net().counters().sent, std::uint64_t(3 * (n - 1)));
}

TEST(Lamport, QueueOrdersByTimestampThenRank) {
  MutexHarness h({.participants = 3, .algorithm = "lamport"});
  // Simultaneous requests: identical timestamps, rank breaks the tie.
  h.set_auto_release(SimDuration::ms(1));
  h.request(2);
  h.request(1);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{1, 2}));
  EXPECT_FALSE(h.safety_violated());
}

TEST(Lamport, QueueVisibleAtAllParticipants) {
  MutexHarness h({.participants = 3, .algorithm = "lamport"});
  h.request(0);
  h.run();
  h.request(2);
  h.run();
  // Everyone's queue holds both entries, 0 first (earlier timestamp).
  for (int r = 0; r < 3; ++r) {
    ASSERT_EQ(algo(h, r).queue().size(), 2u) << r;
    EXPECT_EQ(algo(h, r).queue()[0].rank, 0) << r;
    EXPECT_EQ(algo(h, r).queue()[1].rank, 2) << r;
  }
  h.release(0);
  h.run();
  for (int r = 0; r < 3; ++r) EXPECT_EQ(algo(h, r).queue().size(), 1u) << r;
}

TEST(Lamport, ClockAdvancesThroughTraffic) {
  MutexHarness h({.participants = 2, .algorithm = "lamport"});
  EXPECT_EQ(algo(h, 0).clock(), 0u);
  h.request(0);
  h.run();
  h.release(0);
  h.run();
  // 1 saw request + sent reply + saw release.
  EXPECT_GE(algo(h, 1).clock(), 3u);
}

TEST(Lamport, PendingObserverFiresInCs) {
  MutexHarness h({.participants = 3, .algorithm = "lamport"});
  h.request(0);
  h.run();
  h.request(1);
  h.run();
  ASSERT_GE(h.pending_events().size(), 1u);
  EXPECT_EQ(h.pending_events()[0], 0);
  EXPECT_TRUE(h.ep(0).has_pending_requests());
}

TEST(Lamport, SingletonEntersInstantly) {
  MutexHarness h({.participants = 1, .algorithm = "lamport"});
  h.request(0);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 0u);
}

TEST(Lamport, HoldsTokenMapsToInCs) {
  MutexHarness h({.participants = 2, .algorithm = "lamport"});
  EXPECT_EQ(h.token_holder_count(), 0);
  h.request(1);
  h.run();
  EXPECT_TRUE(h.ep(1).holds_token());
  h.release(1);
  h.run();
  EXPECT_EQ(h.token_holder_count(), 0);
}

TEST(LamportDeathTest, ReleaseWithoutRequestAborts) {
  MutexHarness h({.participants = 2, .algorithm = "lamport"});
  Message m;
  m.src = 1;
  m.dst = 0;
  m.protocol = 1;
  m.type = LamportMutex::kRelease;
  h.net().send(std::move(m));
  EXPECT_DEATH(h.run(), "release without request");
}

}  // namespace
}  // namespace gmx::testing
