// Stop-and-wait ARQ state-machine tests, driven deterministically through
// the injected hooks: a scripted wire and hand-fired fake timers stand in
// for sendmsg and the transport's timer heap, so every lossy-delivery
// scenario — retransmission, backoff, give-up-as-omission, dedup across
// give-up gaps — runs with zero real waiting.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "gridmutex/transport/arq.hpp"

namespace gmx::transport {
namespace {

struct FakeWire {
  struct Timer {
    std::uint32_t delay_ms = 0;
    std::function<void()> fire;
  };

  std::vector<Message> sent;     // every transmit, in order
  std::vector<Message> gave_up;  // frames dropped at the retry horizon
  std::map<ArqTimerToken, Timer> timers;
  ArqTimerToken next_token = 1;

  ArqSender::Hooks hooks() {
    ArqSender::Hooks h;
    h.transmit = [this](const Message& m) { sent.push_back(m); };
    h.arm = [this](std::uint32_t delay_ms, std::function<void()> fire) {
      const ArqTimerToken t = next_token++;
      timers[t] = Timer{delay_ms, std::move(fire)};
      return t;
    };
    h.cancel = [this](ArqTimerToken t) { timers.erase(t); };
    h.on_give_up = [this](const Message& m) { gave_up.push_back(m); };
    return h;
  }

  /// Fires the single armed timer (asserts exactly one exists).
  void fire_only_timer() {
    ASSERT_EQ(timers.size(), 1u);
    Timer t = std::move(timers.begin()->second);
    timers.erase(timers.begin());
    t.fire();
  }

  std::uint32_t only_timer_delay() const {
    EXPECT_EQ(timers.size(), 1u);
    return timers.begin()->second.delay_ms;
  }
};

Message msg_to(NodeId dst, ProtocolId protocol, std::uint8_t tag) {
  Message m;
  m.src = 0;
  m.dst = dst;
  m.protocol = protocol;
  m.type = tag;
  m.payload = std::vector<std::uint8_t>{tag};
  return m;
}

TEST(TransportArq, AssignsSeqAndQueuesBehindUnackedHead) {
  FakeWire wire;
  ArqSender s(ArqConfig{}, wire.hooks());
  s.send(msg_to(1, 5, 10));
  s.send(msg_to(1, 5, 11));
  s.send(msg_to(1, 5, 12));
  // Stop-and-wait: only the head is on the wire; seq numbers start at 1.
  ASSERT_EQ(wire.sent.size(), 1u);
  EXPECT_EQ(wire.sent[0].seq, 1u);
  EXPECT_EQ(wire.sent[0].type, 10);
  EXPECT_EQ(s.unacked(), 3u);
  EXPECT_EQ(s.counters().sent, 1u);
}

TEST(TransportArq, AckLaunchesNextAndCancelsTimer) {
  FakeWire wire;
  ArqSender s(ArqConfig{}, wire.hooks());
  s.send(msg_to(1, 5, 10));
  s.send(msg_to(1, 5, 11));
  s.on_ack(1, 5, 1);
  ASSERT_EQ(wire.sent.size(), 2u);
  EXPECT_EQ(wire.sent[1].seq, 2u);
  EXPECT_EQ(wire.sent[1].type, 11);
  EXPECT_EQ(s.unacked(), 1u);
  EXPECT_EQ(s.counters().acked, 1u);
  // The acked head's timer is gone; only the new head's remains.
  EXPECT_EQ(wire.timers.size(), 1u);
  s.on_ack(1, 5, 2);
  EXPECT_EQ(s.unacked(), 0u);
  EXPECT_TRUE(wire.timers.empty());
}

TEST(TransportArq, ChannelsArePerDstProtocol) {
  FakeWire wire;
  ArqSender s(ArqConfig{}, wire.hooks());
  s.send(msg_to(1, 5, 10));
  s.send(msg_to(2, 5, 11));  // different dst
  s.send(msg_to(1, 6, 12));  // different protocol
  // Three independent channels, three heads in flight at once.
  ASSERT_EQ(wire.sent.size(), 3u);
  EXPECT_EQ(wire.sent[0].seq, 1u);
  EXPECT_EQ(wire.sent[1].seq, 1u);
  EXPECT_EQ(wire.sent[2].seq, 1u);
}

TEST(TransportArq, RetransmitsWithExponentialBackoffCapped) {
  FakeWire wire;
  ArqSender s(ArqConfig{.rto_ms = 100, .backoff = 2.0, .rto_max_ms = 300,
                        .max_attempts = 8},
              wire.hooks());
  s.send(msg_to(1, 5, 10));
  EXPECT_EQ(wire.only_timer_delay(), 100u);
  wire.fire_only_timer();
  EXPECT_EQ(wire.sent.size(), 2u);  // same frame, resent
  EXPECT_EQ(wire.sent[1].seq, 1u);
  EXPECT_EQ(wire.only_timer_delay(), 200u);
  wire.fire_only_timer();
  EXPECT_EQ(wire.only_timer_delay(), 300u);  // capped at rto_max
  wire.fire_only_timer();
  EXPECT_EQ(wire.only_timer_delay(), 300u);
  EXPECT_EQ(s.counters().retransmitted, 3u);
  // A late ack after retransmissions still resolves the head.
  s.on_ack(1, 5, 1);
  EXPECT_EQ(s.unacked(), 0u);
}

TEST(TransportArq, GivesUpAsOmissionAndLaunchesNext) {
  FakeWire wire;
  ArqSender s(ArqConfig{.rto_ms = 10, .backoff = 2.0, .rto_max_ms = 40,
                        .max_attempts = 3},
              wire.hooks());
  s.send(msg_to(1, 5, 10));
  s.send(msg_to(1, 5, 11));
  // Attempts: initial + 2 retransmissions, then the horizon.
  wire.fire_only_timer();
  wire.fire_only_timer();
  ASSERT_EQ(wire.sent.size(), 3u);
  wire.fire_only_timer();  // attempts == max: give up, launch next
  EXPECT_EQ(s.counters().gave_up, 1u);
  ASSERT_EQ(wire.gave_up.size(), 1u);
  EXPECT_EQ(wire.gave_up[0].type, 10);
  // The successor launched with the *next* seq — the gap is permanent,
  // exactly like a simulator omission.
  ASSERT_EQ(wire.sent.size(), 4u);
  EXPECT_EQ(wire.sent[3].seq, 2u);
  EXPECT_EQ(wire.sent[3].type, 11);
  EXPECT_EQ(s.unacked(), 1u);
}

TEST(TransportArq, StaleAcksAreCountedAndIgnored) {
  FakeWire wire;
  ArqSender s(ArqConfig{}, wire.hooks());
  s.on_ack(1, 5, 1);  // no channel at all
  s.send(msg_to(1, 5, 10));
  s.on_ack(1, 5, 7);  // wrong seq
  s.on_ack(2, 5, 1);  // wrong peer
  EXPECT_EQ(s.counters().stale_acks, 3u);
  EXPECT_EQ(s.unacked(), 1u);
  s.on_ack(1, 5, 1);
  EXPECT_EQ(s.unacked(), 0u);
  // Re-acking an already-resolved head is stale too (duplicate ack).
  s.on_ack(1, 5, 1);
  EXPECT_EQ(s.counters().stale_acks, 4u);
}

TEST(TransportArq, ReceiverDeliversOnceAndDedupsRetransmissions) {
  ArqReceiver r;
  Message m = msg_to(1, 5, 10);
  m.src = 3;
  m.seq = 1;
  EXPECT_EQ(r.on_frame(m), ArqReceiver::Verdict::kDeliver);
  EXPECT_EQ(r.on_frame(m), ArqReceiver::Verdict::kDuplicate);  // retransmit
  m.seq = 2;
  EXPECT_EQ(r.on_frame(m), ArqReceiver::Verdict::kDeliver);
  m.seq = 1;  // very late duplicate
  EXPECT_EQ(r.on_frame(m), ArqReceiver::Verdict::kDuplicate);
  EXPECT_EQ(r.counters().delivered, 2u);
  EXPECT_EQ(r.counters().duplicates, 2u);
}

TEST(TransportArq, ReceiverDeliversAcrossGiveUpGaps) {
  // Seq 2 was given up by the sender and never arrives; seq 3 must still
  // deliver — "greater than last delivered" spans omission gaps.
  ArqReceiver r;
  Message m = msg_to(1, 5, 10);
  m.src = 3;
  m.seq = 1;
  EXPECT_EQ(r.on_frame(m), ArqReceiver::Verdict::kDeliver);
  m.seq = 3;
  EXPECT_EQ(r.on_frame(m), ArqReceiver::Verdict::kDeliver);
}

TEST(TransportArq, ReceiverChannelsArePerSrcProtocol) {
  ArqReceiver r;
  Message m = msg_to(1, 5, 10);
  m.seq = 1;
  m.src = 3;
  EXPECT_EQ(r.on_frame(m), ArqReceiver::Verdict::kDeliver);
  m.src = 4;  // same seq, different sender: fresh channel
  EXPECT_EQ(r.on_frame(m), ArqReceiver::Verdict::kDeliver);
  m.src = 3;
  m.protocol = 6;  // same sender, different protocol
  EXPECT_EQ(r.on_frame(m), ArqReceiver::Verdict::kDeliver);
  EXPECT_EQ(r.counters().delivered, 3u);
}

TEST(TransportArq, LossyRoundtripSenderToReceiver) {
  // End-to-end over a scripted lossy wire: drop every 3rd transmission,
  // deliver the rest to a receiver, ack deliveries and duplicates alike.
  // Everything must come out exactly once, in order.
  FakeWire wire;
  ArqReceiver recv;
  std::vector<std::uint8_t> delivered;
  ArqSender s(ArqConfig{.rto_ms = 10, .backoff = 1.0, .rto_max_ms = 10,
                        .max_attempts = 100},
              wire.hooks());
  for (std::uint8_t i = 0; i < 10; ++i) s.send(msg_to(1, 5, i));
  std::size_t cursor = 0;  // transmissions already processed
  std::uint64_t n = 0;
  while (s.unacked() > 0) {
    for (; cursor < wire.sent.size(); ++cursor) {
      if (++n % 3 == 0) continue;  // the wire eats this one
      const Message& m = wire.sent[cursor];
      if (recv.on_frame(m) == ArqReceiver::Verdict::kDeliver)
        delivered.push_back(m.type & 0xFF);
      s.on_ack(m.dst, m.protocol, m.seq);  // ack travels back losslessly
    }
    if (s.unacked() > 0) wire.fire_only_timer();
  }
  ASSERT_EQ(delivered.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(delivered[i], i);
  EXPECT_EQ(recv.counters().duplicates, 0u);  // drops, not dups, here
  EXPECT_EQ(s.counters().gave_up, 0u);
}

}  // namespace
}  // namespace gmx::transport
