// Tests of MutexEndpoint plumbing (rank mapping, deferred callbacks,
// instance isolation) and of the algorithm registry.
#include "gridmutex/mutex/endpoint.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gridmutex/mutex/naimi_trehel.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

TEST(Registry, CreatesEveryRegisteredAlgorithm) {
  for (const auto& name : algorithm_names()) {
    auto a = make_algorithm(name);
    ASSERT_NE(a, nullptr) << name;
    EXPECT_EQ(a->name(), name);
  }
}

TEST(Registry, NamesListIsStableAndPaperFirst) {
  const auto& names = algorithm_names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "naimi");
  EXPECT_EQ(names[1], "martin");
  EXPECT_EQ(names[2], "suzuki");
}

TEST(Registry, IsCaseInsensitive) {
  EXPECT_EQ(make_algorithm("NAIMI")->name(), "naimi");
  EXPECT_EQ(make_algorithm("Suzuki")->name(), "suzuki");
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_algorithm("dijkstra"), std::invalid_argument);
  EXPECT_THROW(make_algorithm(""), std::invalid_argument);
}

TEST(Registry, TokenBasedClassification) {
  EXPECT_TRUE(is_token_based("naimi"));
  EXPECT_TRUE(is_token_based("martin"));
  EXPECT_TRUE(is_token_based("suzuki"));
  EXPECT_TRUE(is_token_based("raymond"));
  EXPECT_TRUE(is_token_based("central"));
  EXPECT_FALSE(is_token_based("ricart"));
}

TEST(Registry, FactoryProducesIndependentInstances) {
  auto f = algorithm_factory("naimi");
  auto a = f();
  auto b = f();
  EXPECT_NE(a.get(), b.get());
}

TEST(Registry, MessageTypeNames) {
  EXPECT_EQ(message_type_name("naimi", 1), "REQUEST");
  EXPECT_EQ(message_type_name("naimi", 2), "TOKEN");
  EXPECT_EQ(message_type_name("central", 4), "REVOKE");
  EXPECT_EQ(message_type_name("ricart", 2), "REPLY");
  EXPECT_EQ(message_type_name("SUZUKI", 2), "TOKEN");  // case-insensitive
  EXPECT_EQ(message_type_name("naimi", 77), "type77");
  EXPECT_EQ(message_type_name("nosuch", 1), "type1");
}

TEST(Registry, ParseCompositionSpec) {
  const auto c = parse_composition("naimi-martin");
  EXPECT_EQ(c.intra, "naimi");
  EXPECT_EQ(c.inter, "martin");
  const auto d = parse_composition("Suzuki-Naimi");
  EXPECT_EQ(d.intra, "suzuki");
  EXPECT_EQ(d.inter, "naimi");
}

TEST(Registry, ParseCompositionRejectsMalformed) {
  EXPECT_THROW(parse_composition("naimi"), std::invalid_argument);
  EXPECT_THROW(parse_composition("-martin"), std::invalid_argument);
  EXPECT_THROW(parse_composition("naimi-"), std::invalid_argument);
  EXPECT_THROW(parse_composition("naimi-foo"), std::invalid_argument);
}

TEST(Endpoint, RanksMapOntoArbitraryNodes) {
  // Members need not be nodes 0..n-1: pick scattered nodes of a grid.
  Simulator sim;
  const Topology topo = Topology::uniform(3, 4);  // nodes 0..11
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  const std::vector<NodeId> members = {10, 3, 7};
  std::vector<std::unique_ptr<MutexEndpoint>> eps;
  std::vector<int> grants;
  for (int r = 0; r < 3; ++r) {
    eps.push_back(std::make_unique<MutexEndpoint>(
        net, 5, members, r, make_algorithm("naimi"), Rng(2)));
    eps.back()->set_callbacks(
        MutexCallbacks{[&grants, r] { grants.push_back(r); }, {}});
  }
  for (auto& ep : eps) ep->init(0);
  EXPECT_EQ(eps[0]->node(), 10u);
  EXPECT_EQ(eps[2]->node(), 7u);
  eps[2]->request_cs();
  sim.run();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0], 2);
  // Traffic flowed between node 10 (cluster 2) and node 7 (cluster 1).
  EXPECT_EQ(net.counters().inter_cluster, 2u);
}

TEST(Endpoint, GrantCallbackIsDeferredNotReentrant) {
  // The holder's request is granted "immediately", but the callback must
  // arrive via the event loop, not inside request_cs().
  MutexHarness h({.participants = 2, .algorithm = "naimi",
                  .holder_rank = 0});
  h.request(0);
  EXPECT_TRUE(h.ep(0).in_cs());      // algorithm state already advanced
  EXPECT_TRUE(h.grants().empty());   // callback not yet delivered
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);  // delivered at the same sim time
  EXPECT_EQ(h.sim().now(), SimTime::zero());
}

TEST(Endpoint, TwoInstancesOnOneNodeAreIsolated) {
  // A node can participate in several protocol instances (exactly how the
  // composition coordinator lives in intra + inter). Messages must not
  // cross.
  Simulator sim;
  const Topology topo = Topology::uniform(1, 3);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  const std::vector<NodeId> members = {0, 1, 2};
  std::vector<std::unique_ptr<MutexEndpoint>> inst1, inst2;
  int grants1 = 0, grants2 = 0;
  for (int r = 0; r < 3; ++r) {
    inst1.push_back(std::make_unique<MutexEndpoint>(
        net, 100, members, r, make_algorithm("naimi"), Rng(3)));
    inst1.back()->set_callbacks(MutexCallbacks{[&] { ++grants1; }, {}});
    inst2.push_back(std::make_unique<MutexEndpoint>(
        net, 200, members, r, make_algorithm("suzuki"), Rng(4)));
    inst2.back()->set_callbacks(MutexCallbacks{[&] { ++grants2; }, {}});
  }
  for (auto& e : inst1) e->init(0);
  for (auto& e : inst2) e->init(0);
  inst1[1]->request_cs();
  inst2[2]->request_cs();
  sim.run();
  EXPECT_EQ(grants1, 1);
  EXPECT_EQ(grants2, 1);
  EXPECT_TRUE(inst1[1]->in_cs());
  EXPECT_TRUE(inst2[2]->in_cs());
  EXPECT_EQ(net.sent_by_protocol(100), 2u);  // naimi: request + token
  EXPECT_EQ(net.sent_by_protocol(200), 3u);  // suzuki: 2 requests + token
}

TEST(Endpoint, PendingCallbackOptional) {
  // No on_pending callback set: events are simply not delivered (no crash).
  MutexHarness h({.participants = 2, .algorithm = "naimi",
                  .holder_rank = 0});
  h.ep(0).set_callbacks(MutexCallbacks{{}, {}});
  h.request(0);
  h.run();
  h.request(1);
  h.run();
  EXPECT_TRUE(h.ep(0).has_pending_requests());
}

TEST(EndpointDeathTest, MessageFromOutsiderAborts) {
  Simulator sim;
  const Topology topo = Topology::uniform(1, 3);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  const std::vector<NodeId> members = {0, 1};  // node 2 is not a member
  MutexEndpoint ep(net, 9, members, 0, make_algorithm("naimi"), Rng(1));
  ep.init(0);
  Message m;
  m.src = 2;
  m.dst = 0;
  m.protocol = 9;
  m.type = NaimiTrehelMutex::kRequest;
  net.send(std::move(m));
  EXPECT_DEATH(sim.run(), "outside this instance");
}

TEST(EndpointDeathTest, DuplicateMemberAborts) {
  Simulator sim;
  const Topology topo = Topology::uniform(1, 3);
  Network net(sim, topo,
              std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
              Rng(1));
  const std::vector<NodeId> members = {0, 1, 1};
  EXPECT_DEATH(MutexEndpoint(net, 9, members, 0, make_algorithm("naimi"),
                             Rng(1)),
               "duplicate node");
}

}  // namespace
}  // namespace gmx::testing
