// Application driver tests: loop structure, obtaining-time measurement,
// safety monitor wiring.
#include "gridmutex/workload/app_process.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/net/network.hpp"

namespace gmx::testing {
namespace {

struct AppFixture : ::testing::Test {
  AppFixture()
      : topo(Topology::uniform(1, 2)),
        net(sim, topo,
            std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
            Rng(1)) {
    const std::vector<NodeId> members = {0, 1};
    for (int r = 0; r < 2; ++r) {
      eps.push_back(std::make_unique<MutexEndpoint>(
          net, 1, members, r, make_algorithm("naimi"), Rng(2)));
    }
    for (auto& e : eps) e->init(0);
  }

  Simulator sim;
  Topology topo;
  Network net;
  std::vector<std::unique_ptr<MutexEndpoint>> eps;
  WorkloadMetrics metrics;
  SafetyMonitor safety;
};

TEST_F(AppFixture, CompletesConfiguredNumberOfCs) {
  WorkloadParams params;
  params.alpha = SimDuration::ms(10);
  params.rho = 5;
  params.cs_count = 7;
  AppProcess p(sim, *eps[0], params, Rng(3), metrics, safety);
  p.start();
  sim.run();
  EXPECT_TRUE(p.done());
  EXPECT_EQ(p.completed(), 7);
  EXPECT_EQ(metrics.completed_cs, 7u);
  EXPECT_EQ(metrics.obtaining.count(), 7u);
  EXPECT_EQ(safety.entries(), 7u);
  EXPECT_EQ(safety.in_cs(), 0);
}

TEST_F(AppFixture, ZeroCsCountFinishesImmediately) {
  WorkloadParams params;
  params.cs_count = 0;
  bool done = false;
  AppProcess p(sim, *eps[0], params, Rng(3), metrics, safety);
  p.on_done = [&] { done = true; };
  p.start();
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(metrics.completed_cs, 0u);
}

TEST_F(AppFixture, HolderObtainingTimeIsZero) {
  // Rank 0 holds the token: every obtaining time is exactly zero.
  WorkloadParams params;
  params.cs_count = 3;
  params.exponential_think = false;
  AppProcess p(sim, *eps[0], params, Rng(3), metrics, safety);
  p.start();
  sim.run();
  EXPECT_DOUBLE_EQ(metrics.obtaining.mean_ms(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.obtaining.max_ms(), 0.0);
}

TEST_F(AppFixture, RemoteObtainingIncludesRoundTrip) {
  // Rank 1 must fetch the token from rank 0: request (1ms) + token (1ms).
  WorkloadParams params;
  params.cs_count = 1;
  params.exponential_think = false;
  AppProcess p(sim, *eps[1], params, Rng(3), metrics, safety);
  p.start();
  sim.run();
  ASSERT_EQ(metrics.obtaining.count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.obtaining.mean_ms(), 2.0);
}

TEST_F(AppFixture, FixedThinkTimeIsBetaExactly) {
  WorkloadParams params;
  params.alpha = SimDuration::ms(10);
  params.rho = 3;  // beta = 30ms
  params.cs_count = 2;
  params.exponential_think = false;
  AppProcess p(sim, *eps[0], params, Rng(3), metrics, safety);
  p.start();
  sim.run();
  // Timeline: think 30 + CS 10 + think 30 + CS 10 = 80ms.
  EXPECT_EQ(sim.now().count_ns(), 80'000'000);
}

TEST_F(AppFixture, ExponentialThinkAveragesBeta) {
  WorkloadParams params;
  params.alpha = SimDuration::ms(1);
  params.rho = 20;  // beta = 20ms
  params.cs_count = 2000;
  AppProcess p(sim, *eps[0], params, Rng(5), metrics, safety);
  p.start();
  sim.run();
  // Total ≈ cs_count · (beta + alpha); tolerate 5% statistical wobble.
  const double expect_ms = 2000.0 * 21.0;
  EXPECT_NEAR(sim.now().as_ms(), expect_ms, expect_ms * 0.05);
}

TEST_F(AppFixture, TwoProcessesInterleaveSafely) {
  WorkloadParams params;
  params.alpha = SimDuration::ms(5);
  params.rho = 2;
  params.cs_count = 20;
  AppProcess p0(sim, *eps[0], params, Rng(7), metrics, safety);
  AppProcess p1(sim, *eps[1], params, Rng(8), metrics, safety);
  p0.start();
  p1.start();
  sim.run();
  EXPECT_EQ(metrics.completed_cs, 40u);
  EXPECT_EQ(safety.violations(), 0u);
}

TEST_F(AppFixture, OnDoneFiresOnce) {
  WorkloadParams params;
  params.cs_count = 3;
  int done_calls = 0;
  AppProcess p(sim, *eps[0], params, Rng(3), metrics, safety);
  p.on_done = [&] { ++done_calls; };
  p.start();
  sim.run();
  EXPECT_EQ(done_calls, 1);
}

TEST(WorkloadParams, BetaIsRhoTimesAlpha) {
  WorkloadParams p;
  p.alpha = SimDuration::ms(10);
  p.rho = 540;
  EXPECT_EQ(p.beta(), SimDuration::ms(5400));
}

TEST(SafetyMonitorTest, CountsEntriesAndDetectsOverlap) {
  SafetyMonitor m(/*abort_on_violation=*/false);
  m.enter();
  EXPECT_EQ(m.in_cs(), 1);
  EXPECT_EQ(m.violations(), 0u);
  m.enter();  // second process — violation recorded, not fatal
  EXPECT_EQ(m.violations(), 1u);
  m.exit();
  m.exit();
  EXPECT_EQ(m.in_cs(), 0);
  EXPECT_EQ(m.entries(), 2u);
}

TEST(SafetyMonitorDeathTest, AbortingMonitorDiesOnOverlap) {
  SafetyMonitor m;
  m.enter();
  EXPECT_DEATH(m.enter(), "mutual exclusion violated");
}

TEST(SafetyMonitorDeathTest, ExitWithoutEnterAborts) {
  SafetyMonitor m;
  EXPECT_DEATH(m.exit(), "without matching enter");
}

}  // namespace
}  // namespace gmx::testing
