#include "gridmutex/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gmx {
namespace {

SimTime at_ms(std::int64_t ms) { return SimTime::zero() + SimDuration::ms(ms); }

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(at_ms(30), [&] { order.push_back(3); });
  q.push(at_ms(10), [&] { order.push_back(1); });
  q.push(at_ms(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i)
    q.push(at_ms(5), [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  q.push(at_ms(7), [] {});
  q.push(at_ms(3), [] {});
  EXPECT_EQ(q.next_time(), at_ms(3));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(at_ms(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelOfFiredEventFails) {
  EventQueue q;
  const EventId id = q.push(at_ms(1), [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, DoubleCancelFails) {
  EventQueue q;
  const EventId id = q.push(at_ms(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelOfUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventSkippedByPop) {
  EventQueue q;
  std::vector<int> order;
  q.push(at_ms(1), [&] { order.push_back(1); });
  const EventId id = q.push(at_ms(2), [&] { order.push_back(2); });
  q.push(at_ms(3), [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.push(at_ms(1), [] {});
  q.push(at_ms(2), [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, TotalPushedIsMonotone) {
  EventQueue q;
  q.push(at_ms(1), [] {});
  q.push(at_ms(2), [] {});
  q.clear();
  q.push(at_ms(3), [] {});
  EXPECT_EQ(q.total_pushed(), 3u);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(at_ms(10), [&] { order.push_back(10); });
  q.push(at_ms(5), [&] { order.push_back(5); });
  q.pop().fn();  // fires 5
  q.push(at_ms(7), [&] { order.push_back(7); });
  q.push(at_ms(20), [&] { order.push_back(20); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{5, 7, 10, 20}));
}

}  // namespace
}  // namespace gmx
