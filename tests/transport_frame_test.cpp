// Datagram framing tests: roundtrip fidelity, multi-frame coalescing, the
// header/payload iovec split, zero-copy decode, and rejection of every
// malformation class decode_datagram guards against.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gridmutex/transport/frame.hpp"

namespace gmx::transport {
namespace {

Message make_msg(NodeId src, NodeId dst, ProtocolId protocol,
                 std::uint16_t type, std::uint64_t seq,
                 std::vector<std::uint8_t> bytes) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.protocol = protocol;
  m.type = type;
  m.seq = seq;
  m.payload = std::move(bytes);
  return m;
}

Payload to_payload(std::vector<std::uint8_t> bytes) {
  Payload p;
  p = std::move(bytes);
  return p;
}

void expect_equal(const Message& got, const Message& want) {
  EXPECT_EQ(got.src, want.src);
  EXPECT_EQ(got.dst, want.dst);
  EXPECT_EQ(got.protocol, want.protocol);
  EXPECT_EQ(got.type, want.type);
  EXPECT_EQ(got.seq, want.seq);
  const std::span<const std::uint8_t> g = got.payload;
  const std::span<const std::uint8_t> w = want.payload;
  ASSERT_EQ(g.size(), w.size());
  EXPECT_TRUE(std::equal(g.begin(), g.end(), w.begin()));
}

TEST(TransportFrame, RoundtripSingleFrame) {
  const Message want = make_msg(3, 7, 42, 5, 9, {0xDE, 0xAD, 0xBE, 0xEF});
  wire::Writer w;
  begin_datagram(w);
  append_frame(w, want);
  const auto msgs = decode_datagram(to_payload(w.take()));
  ASSERT_EQ(msgs.size(), 1u);
  expect_equal(msgs[0], want);
}

TEST(TransportFrame, RoundtripEmptyPayloadAndAckType) {
  // Acks are ordinary frames with type kAckType and an empty payload.
  const Message want = make_msg(0, 1, 2, Message::kAckType, 17, {});
  wire::Writer w;
  begin_datagram(w);
  append_frame(w, want);
  const auto msgs = decode_datagram(to_payload(w.take()));
  ASSERT_EQ(msgs.size(), 1u);
  expect_equal(msgs[0], want);
  EXPECT_EQ(std::span<const std::uint8_t>(msgs[0].payload).size(), 0u);
}

TEST(TransportFrame, MultiFrameDatagramPreservesOrder) {
  std::vector<Message> want;
  wire::Writer w;
  begin_datagram(w);
  for (std::uint64_t i = 0; i < 5; ++i) {
    want.push_back(make_msg(NodeId(i), NodeId(i + 1), ProtocolId(10 + i),
                            std::uint16_t(i), i * 1000 + 1,
                            {std::uint8_t(i), std::uint8_t(i * 2)}));
    append_frame(w, want.back());
  }
  const auto msgs = decode_datagram(to_payload(w.take()));
  ASSERT_EQ(msgs.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) expect_equal(msgs[i], want[i]);
}

TEST(TransportFrame, HeaderPlusPayloadSplitMatchesFullEncode) {
  // The sendmsg fast path writes append_frame_header() and the payload as
  // two iovecs; the concatenation must be byte-identical to append_frame.
  const Message msg = make_msg(1, 2, 3, 4, 5, {9, 8, 7, 6, 5});
  wire::Writer full;
  begin_datagram(full);
  append_frame(full, msg);

  wire::Writer head;
  begin_datagram(head);
  append_frame_header(head, msg);
  std::vector<std::uint8_t> spliced = head.take();
  const std::span<const std::uint8_t> pay = msg.payload;
  spliced.insert(spliced.end(), pay.begin(), pay.end());

  EXPECT_EQ(spliced, full.take());
}

TEST(TransportFrame, DecodedPayloadsAreZeroCopySlices) {
  const Message msg = make_msg(1, 2, 3, 4, 5, {10, 20, 30, 40});
  wire::Writer w;
  begin_datagram(w);
  append_frame(w, msg);
  const Payload dgram = to_payload(w.take());
  const std::span<const std::uint8_t> whole = dgram;

  const auto msgs = decode_datagram(dgram);
  ASSERT_EQ(msgs.size(), 1u);
  const std::span<const std::uint8_t> slice = msgs[0].payload;
  // The decoded payload points into the datagram's own block.
  EXPECT_GE(slice.data(), whole.data());
  EXPECT_LE(slice.data() + slice.size(), whole.data() + whole.size());
}

TEST(TransportFrame, LargeVarintFieldsRoundtrip) {
  const Message want =
      make_msg(0xFFFFFFFEu, 0, 0x7FFFFFFFu, 0xFFFE,
               0xFFFF'FFFF'FFFF'FFFEull, {1});
  wire::Writer w;
  begin_datagram(w);
  append_frame(w, want);
  const auto msgs = decode_datagram(to_payload(w.take()));
  ASSERT_EQ(msgs.size(), 1u);
  expect_equal(msgs[0], want);
}

TEST(TransportFrame, RejectsEmptyAndVersionOnlyDatagrams) {
  EXPECT_THROW((void)decode_datagram(to_payload({})), wire::WireError);
  // A version byte with no frames is malformed: at least one frame.
  EXPECT_THROW((void)decode_datagram(to_payload({kWireVersion})),
               wire::WireError);
}

TEST(TransportFrame, RejectsWrongVersion) {
  wire::Writer w;
  begin_datagram(w);
  append_frame(w, make_msg(1, 2, 3, 4, 5, {1}));
  std::vector<std::uint8_t> bytes = w.take();
  bytes[0] = kWireVersion + 1;
  EXPECT_THROW((void)decode_datagram(to_payload(std::move(bytes))),
               wire::WireError);
}

TEST(TransportFrame, RejectsZeroProtocol) {
  // Protocol 0 is the "no protocol" sentinel and must never cross the wire.
  wire::Writer w;
  begin_datagram(w);
  append_frame(w, make_msg(1, 2, 1, 4, 5, {1}));
  std::vector<std::uint8_t> bytes = w.take();
  // src(4) + dst(4) puts the protocol varint at offset 9; 1 encodes as a
  // single byte, so patching it to 0 keeps the grammar aligned.
  bytes[9] = 0;
  EXPECT_THROW((void)decode_datagram(to_payload(std::move(bytes))),
               wire::WireError);
}

TEST(TransportFrame, RejectsTruncatedHeaderAndPayload) {
  wire::Writer w;
  begin_datagram(w);
  append_frame(w, make_msg(1, 2, 3, 4, 5, {1, 2, 3, 4}));
  const std::vector<std::uint8_t> bytes = w.take();
  // Every strict prefix (past the version byte) is either a truncated
  // header or a truncated payload; all must throw, none may crash.
  for (std::size_t len = 2; len < bytes.size(); ++len) {
    EXPECT_THROW((void)decode_datagram(to_payload(std::vector<std::uint8_t>(
                     bytes.begin(), bytes.begin() + long(len)))),
                 wire::WireError)
        << "prefix length " << len;
  }
  // Trailing garbage after a well-formed frame is a truncated second frame.
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0xFF);
  EXPECT_THROW((void)decode_datagram(to_payload(std::move(trailing))),
               wire::WireError);
}

TEST(TransportFrame, RejectsOverlongPayloadLength) {
  const Message msg = make_msg(1, 2, 3, 4, 5, {});
  wire::Writer w;
  begin_datagram(w);
  append_frame_header(w, msg);
  std::vector<std::uint8_t> bytes = w.take();
  // The header ends with the payload length varint (0 for an empty
  // payload); claim 100 bytes that are not there.
  bytes.back() = 100;
  EXPECT_THROW((void)decode_datagram(to_payload(std::move(bytes))),
               wire::WireError);
}

}  // namespace
}  // namespace gmx::transport
