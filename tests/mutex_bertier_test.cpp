// White-box tests of the Bertier-style hierarchical Naimi-Tréhel baseline:
// token-carried queue, chase-the-token routing, locality preference and
// its aging bound.
#include "gridmutex/mutex/bertier.hpp"

#include <gtest/gtest.h>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

BertierMutex& algo(MutexHarness& h, int rank) {
  return dynamic_cast<BertierMutex&>(h.ep(rank).algorithm());
}

// Two clusters of three: ranks 0-2 in cluster 0, ranks 3-5 in cluster 1.
HarnessOptions two_clusters() {
  return {.participants = 6,
          .algorithm = "bertier",
          .holder_rank = 0,
          .clusters = 2};
}

TEST(Bertier, HolderEntersWithoutMessages) {
  MutexHarness h(two_clusters());
  h.request(0);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 0u);
}

TEST(Bertier, DirectGrantWhenIdle) {
  MutexHarness h(two_clusters());
  h.request(4);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{4}));
  // request to holder + token back
  EXPECT_EQ(h.net().counters().sent, 2u);
  EXPECT_TRUE(h.ep(4).holds_token());
  EXPECT_EQ(algo(h, 0).last(), 4);  // holder now points at the grantee
}

TEST(Bertier, RequestsChaseTheTokenThroughStaleLasts) {
  MutexHarness h(two_clusters());
  h.request(4);
  h.run();
  h.release(4);
  h.run();
  // Rank 1 still believes 0 holds the token; its request must hop 1→0→4.
  const auto before = h.net().counters().sent;
  h.request(1);
  h.run();
  EXPECT_EQ(h.grants().back(), 1);
  EXPECT_EQ(h.net().counters().sent - before, 3u);  // 1→0, 0→4, token 4→1
}

TEST(Bertier, LocalRequestsServedBeforeOlderRemote) {
  // Holder 0 in CS. A *remote* request (rank 3) arrives first, then a
  // *local* one (rank 1). Plain Naimi/FIFO would serve 3 first; Bertier's
  // locality preference serves 1 first.
  MutexHarness h(two_clusters());
  h.request(0);
  h.run();
  h.request(3);
  h.run();
  h.request(1);
  h.run();
  EXPECT_EQ(algo(h, 0).queue().size(), 2u);
  h.release(0);
  h.run();
  EXPECT_EQ(h.grants()[1], 1);  // local jumped the queue
  h.release(1);
  h.run();
  EXPECT_EQ(h.grants()[2], 3);
}

TEST(Bertier, AgingBoundPreventsRemoteStarvation) {
  // Local ranks 0-2 hammer the CS; remote rank 3 asks once. With
  // max_local_streak = 5 the remote request must be granted after at most
  // 5 consecutive local grants.
  MutexHarness h(two_clusters());
  h.set_auto_release(SimDuration::ms(1));
  h.drive(0, 20, SimDuration::us(10));
  h.drive(1, 20, SimDuration::us(10));
  h.drive(2, 20, SimDuration::us(10));
  h.request_at(SimDuration::ms(3), 3);
  h.run();
  EXPECT_FALSE(h.safety_violated());
  const auto& g = h.grants();
  const auto pos = std::size_t(std::find(g.begin(), g.end(), 3) - g.begin());
  ASSERT_LT(pos, g.size());
  // Not served last: the bound kicked in while locals still had demand.
  EXPECT_LT(pos, g.size() - 10)
      << "remote request was effectively starved to the end";
}

TEST(Bertier, StreakTravelsWithTheToken) {
  // Consecutive local grants accumulate the streak across holders.
  MutexHarness h(two_clusters());
  h.request(0);
  h.run();
  h.request(1);
  h.request(2);
  h.request(3);  // remote, arrives last in rank order... queue at holder 0
  h.run();
  h.release(0);
  h.run();  // grant 1 (local, streak 1)
  EXPECT_EQ(algo(h, 1).local_streak(), 1);
  h.release(1);
  h.run();  // grant 2 (local, streak 2)
  EXPECT_EQ(algo(h, 2).local_streak(), 2);
  h.release(2);
  h.run();  // only remote left
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(algo(h, 3).local_streak(), 0);  // reset on cluster change
}

TEST(Bertier, PendingObserverFiresAtBusyHolder) {
  MutexHarness h(two_clusters());
  h.request(0);
  h.run();
  h.request(5);
  h.run();
  ASSERT_GE(h.pending_events().size(), 1u);
  EXPECT_EQ(h.pending_events()[0], 0);
  EXPECT_TRUE(h.ep(0).has_pending_requests());
}

TEST(Bertier, SingleClusterDegeneratesToFifoQueue) {
  MutexHarness h({.participants = 4, .algorithm = "bertier",
                  .holder_rank = 0, .clusters = 1});
  h.request(0);
  h.run();
  h.request(2);
  h.run();
  h.request(1);
  h.run();
  h.request(3);
  h.run();
  h.release(0);
  h.run();
  h.release(2);
  h.run();
  h.release(1);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 2, 1, 3}));
}

TEST(BertierDeathTest, DuplicateTokenAborts) {
  MutexHarness h(two_clusters());
  wire::Writer w;
  w.varint(0);
  const std::vector<std::uint32_t> q;
  w.varint_array(std::span<const std::uint32_t>(q));
  Message m;
  m.src = 1;
  m.dst = 0;
  m.protocol = 1;
  m.type = BertierMutex::kToken;
  m.payload.assign(w.view().begin(), w.view().end());
  h.net().send(std::move(m));
  EXPECT_DEATH(h.run(), "duplicate token");
}

}  // namespace
}  // namespace gmx::testing
