// Open-loop campaign tests: CampaignResult statistics math, and a full
// run_campaign() against an in-process grid — the same replay xvalidate
// does across processes — asserting zero safety violations and exact
// accounting closure between the campaign's client-side view and the
// daemons' kStats counters.
#include <gtest/gtest.h>

#include "gridmutex/transport/campaign.hpp"
#include "transport_test_grid.hpp"

namespace gmx::transport {
namespace {

TEST(TransportCampaign, ResultStatisticsMath) {
  CampaignResult r;
  EXPECT_EQ(r.obtain_mean_ms(), 0.0);
  EXPECT_EQ(r.obtain_percentile_ms(0.5), 0.0);
  EXPECT_EQ(r.throughput_cs_per_s(), 0.0);
  EXPECT_TRUE(r.safe());

  r.obtain_ms = {4.0, 1.0, 3.0, 2.0};
  r.grants = 4;
  r.wall_sec = 2.0;
  EXPECT_DOUBLE_EQ(r.obtain_mean_ms(), 2.5);
  EXPECT_DOUBLE_EQ(r.obtain_percentile_ms(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.obtain_percentile_ms(0.5), 2.0);
  EXPECT_DOUBLE_EQ(r.obtain_percentile_ms(1.0), 4.0);
  EXPECT_DOUBLE_EQ(r.throughput_cs_per_s(), 2.0);
  r.fence_violations = 1;
  EXPECT_FALSE(r.safe());
}

TEST(TransportCampaign, OpenLoopReplayClosesAccountingSafely) {
  CampaignConfig cc;
  cc.grid.clusters = 2;
  cc.grid.apps_per_cluster = 2;
  cc.grid.locks = 2;
  cc.grid.seed = 21;
  cc.open_loop.arrivals_per_sec = 200.0;
  cc.open_loop.window = SimDuration::ms(500);
  cc.open_loop.hold = SimDuration::ms(2);
  cc.time_scale = 2.0;
  cc.retry_ms = 100;

  TestGrid grid(cc.grid);
  LockClient client(grid.addrs(), cc.grid.client_protocol());
  ASSERT_TRUE(grid.start_all(client));

  const CampaignResult r = run_campaign(grid.addrs(), cc);
  ASSERT_GT(r.arrivals, 0u);
  EXPECT_EQ(r.fence_violations, 0u);
  EXPECT_EQ(r.exclusion_violations, 0u);
  // No deadlines, campaign-sized queues: every arrival is granted.
  EXPECT_EQ(r.grants, r.arrivals);
  EXPECT_EQ(r.sheds, 0u);
  EXPECT_EQ(r.deadline_misses, 0u);
  EXPECT_EQ(r.obtain_ms.size(), r.grants);
  EXPECT_GT(r.wall_sec, 0.0);

  // The daemons' accounting agrees with the client's, entry for entry.
  const auto total = grid.total_stats(client);
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->arrivals, r.arrivals);
  EXPECT_EQ(total->grants, r.grants);
  EXPECT_EQ(total->sheds, r.sheds);
  EXPECT_EQ(total->deadline_misses, r.deadline_misses);
  EXPECT_EQ(total->releases, total->grants);
  EXPECT_GE(total->fences_issued, total->grants);
}

TEST(TransportCampaign, DeadlinesProduceMissesButCloseAccounting) {
  // A 1ms deadline against multi-ms queueing under contention: some
  // arrivals must expire, and expiry is still a terminal, accounted
  // outcome — the closure invariant is deadline-independent.
  CampaignConfig cc;
  cc.grid.clusters = 2;
  cc.grid.apps_per_cluster = 2;
  cc.grid.locks = 1;  // every arrival fights for one lock
  cc.grid.seed = 23;
  cc.open_loop.arrivals_per_sec = 300.0;
  cc.open_loop.window = SimDuration::ms(400);
  cc.open_loop.hold = SimDuration::ms(5);
  cc.open_loop.zipf_s = 0.0;
  cc.deadline_ms = 1;
  cc.time_scale = 2.0;
  cc.retry_ms = 100;

  TestGrid grid(cc.grid);
  LockClient client(grid.addrs(), cc.grid.client_protocol());
  ASSERT_TRUE(grid.start_all(client));

  const CampaignResult r = run_campaign(grid.addrs(), cc);
  ASSERT_GT(r.arrivals, 0u);
  EXPECT_TRUE(r.safe());
  EXPECT_GT(r.deadline_misses, 0u);
  EXPECT_EQ(r.arrivals, r.grants + r.sheds + r.deadline_misses);

  const auto total = grid.total_stats(client);
  ASSERT_TRUE(total.has_value());
  EXPECT_EQ(total->arrivals, r.arrivals);
  EXPECT_EQ(total->grants, r.grants);
  EXPECT_EQ(total->deadline_misses, r.deadline_misses);
  EXPECT_EQ(total->releases, total->grants);
}

}  // namespace
}  // namespace gmx::transport
