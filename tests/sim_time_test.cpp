#include "gridmutex/sim/time.hpp"

#include <gtest/gtest.h>

namespace gmx {
namespace {

TEST(SimDuration, UnitConstructorsAgree) {
  EXPECT_EQ(SimDuration::us(1).count_ns(), 1'000);
  EXPECT_EQ(SimDuration::ms(1).count_ns(), 1'000'000);
  EXPECT_EQ(SimDuration::sec(1).count_ns(), 1'000'000'000);
  EXPECT_EQ(SimDuration::ms(10), SimDuration::us(10'000));
}

TEST(SimDuration, FractionalMillisecondsRoundToNearestNs) {
  // Grid5000 matrix entries look like 15.039 ms.
  EXPECT_EQ(SimDuration::ms_f(15.039).count_ns(), 15'039'000);
  EXPECT_EQ(SimDuration::ms_f(0.001).count_ns(), 1'000);
  EXPECT_EQ(SimDuration::ms_f(0.0000005).count_ns(), 1);  // rounds up
}

TEST(SimDuration, Arithmetic) {
  const auto a = SimDuration::ms(10);
  const auto b = SimDuration::ms(4);
  EXPECT_EQ((a + b).count_ns(), 14'000'000);
  EXPECT_EQ((a - b).count_ns(), 6'000'000);
  EXPECT_EQ((b - a).count_ns(), -6'000'000);
  EXPECT_TRUE((b - a).is_negative());
  EXPECT_EQ((a * 3).count_ns(), 30'000'000);
  EXPECT_EQ((3 * a).count_ns(), 30'000'000);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(SimDuration, ScalingByDouble) {
  const auto a = SimDuration::ms(10);
  EXPECT_EQ((a * 0.5).count_ns(), 5'000'000);
  EXPECT_EQ((a * 1.5).count_ns(), 15'000'000);
}

TEST(SimDuration, CompoundAssignment) {
  auto d = SimDuration::ms(1);
  d += SimDuration::ms(2);
  EXPECT_EQ(d, SimDuration::ms(3));
  d -= SimDuration::ms(1);
  EXPECT_EQ(d, SimDuration::ms(2));
  d *= 5;
  EXPECT_EQ(d, SimDuration::ms(10));
}

TEST(SimDuration, Ordering) {
  EXPECT_LT(SimDuration::us(999), SimDuration::ms(1));
  EXPECT_GT(SimDuration::sec(1), SimDuration::ms(999));
  EXPECT_LE(SimDuration::ms(1), SimDuration::ms(1));
}

TEST(SimDuration, Conversions) {
  EXPECT_DOUBLE_EQ(SimDuration::ms(10).as_ms(), 10.0);
  EXPECT_DOUBLE_EQ(SimDuration::ms(10).as_sec(), 0.01);
  EXPECT_DOUBLE_EQ(SimDuration::us(5).as_us(), 5.0);
}

TEST(SimDuration, ToStringPicksUnit) {
  EXPECT_EQ(SimDuration::ns(12).to_string(), "12ns");
  EXPECT_EQ(SimDuration::us(3).to_string(), "3.000us");
  EXPECT_EQ(SimDuration::ms(15).to_string(), "15.000ms");
  EXPECT_EQ(SimDuration::sec(2).to_string(), "2.000s");
}

TEST(SimTime, StartsAtZero) {
  EXPECT_EQ(SimTime{}, SimTime::zero());
  EXPECT_EQ(SimTime::zero().count_ns(), 0);
}

TEST(SimTime, PointPlusDuration) {
  const SimTime t = SimTime::zero() + SimDuration::ms(5);
  EXPECT_EQ(t.count_ns(), 5'000'000);
  EXPECT_EQ((t - SimDuration::ms(2)).count_ns(), 3'000'000);
  EXPECT_EQ(t - SimTime::zero(), SimDuration::ms(5));
}

TEST(SimTime, MaxActsAsInfinity) {
  EXPECT_GT(SimTime::max(), SimTime::zero() + SimDuration::sec(1'000'000));
}

}  // namespace
}  // namespace gmx
