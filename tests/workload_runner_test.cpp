// Sweep runner and thread pool tests: ordering, serial/parallel identity.
#include "gridmutex/workload/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "gridmutex/workload/thread_pool.hpp"

namespace gmx::testing {
namespace {

ExperimentConfig tiny(double rho) {
  ExperimentConfig cfg;
  cfg.clusters = 2;
  cfg.apps_per_cluster = 2;
  cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                       SimDuration::ms(10));
  cfg.workload.cs_count = 3;
  cfg.workload.rho = rho;
  return cfg;
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(Runner, ResultsInInputOrder) {
  const std::vector<ExperimentConfig> configs = {tiny(2), tiny(50),
                                                 tiny(500)};
  const auto results = run_sweep(configs, {.threads = 1});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[0].rho, 2);
  EXPECT_DOUBLE_EQ(results[1].rho, 50);
  EXPECT_DOUBLE_EQ(results[2].rho, 500);
}

TEST(Runner, ParallelSweepMatchesSerial) {
  const std::vector<ExperimentConfig> configs = {tiny(2), tiny(20), tiny(200),
                                                 tiny(2000)};
  const auto serial = run_sweep(configs, {.threads = 1});
  const auto parallel = run_sweep(configs, {.threads = 4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].obtaining_ms(), parallel[i].obtaining_ms())
        << i;
    EXPECT_EQ(serial[i].messages.sent, parallel[i].messages.sent) << i;
    EXPECT_EQ(serial[i].events, parallel[i].events) << i;
  }
}

TEST(Runner, RepetitionsAreApplied) {
  const std::vector<ExperimentConfig> configs = {tiny(10)};
  const auto results = run_sweep(configs, {.threads = 1, .repetitions = 4});
  EXPECT_EQ(results[0].repetitions, 4);
  EXPECT_EQ(results[0].total_cs, 4u * 4u * 3u);  // nodes × cs × reps
}

TEST(Runner, ProgressCallbackSeesEveryPoint) {
  const std::vector<ExperimentConfig> configs = {tiny(1), tiny(2), tiny(3)};
  std::size_t calls = 0, last_total = 0;
  SweepOptions opt;
  opt.threads = 2;
  opt.progress = [&](std::size_t, std::size_t total) {
    ++calls;
    last_total = total;
  };
  (void)run_sweep(configs, opt);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(last_total, 3u);
}

TEST(Runner, RhoSweepBuildsOnePointPerRho) {
  const double rhos[] = {5, 50, 500};
  const auto results = run_rho_sweep(tiny(0.1), rhos, {.threads = 1});
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(results[i].rho, rhos[i]);
}

}  // namespace
}  // namespace gmx::testing
