// Test harness for mutex algorithm instances.
//
// Builds a full simulated instance (simulator + network + one endpoint per
// participant), wires grant callbacks into a safety monitor, and offers both
// scripted control (request/release specific ranks at specific times) and a
// self-driving mode (every rank performs k critical sections with think
// times). Used by the per-algorithm unit tests and the cross-algorithm
// conformance suite.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/sim/assert.hpp"

namespace gmx::testing {

struct HarnessOptions {
  int participants = 5;
  std::string algorithm = "naimi";
  int holder_rank = 0;
  SimDuration latency = SimDuration::ms(1);
  std::uint64_t seed = 1;
  bool fifo = true;
  // Topology: all participants in one cluster unless clusters > 1, in which
  // case participants are spread round-robin-contiguously across clusters.
  std::uint32_t clusters = 1;
};

class MutexHarness {
 public:
  explicit MutexHarness(HarnessOptions opt)
      : opt_(std::move(opt)),
        topo_(make_topology(opt_)),
        net_(sim_, topo_,
             std::make_shared<FixedLatencyModel>(opt_.latency),
             Rng(opt_.seed)) {
    net_.set_fifo_per_pair(opt_.fifo);
    sim_.set_event_limit(5'000'000);
    const int n = opt_.participants;
    std::vector<NodeId> members(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) members[std::size_t(r)] = NodeId(r);
    for (int r = 0; r < n; ++r) {
      auto ep = std::make_unique<MutexEndpoint>(
          net_, /*protocol=*/1, members, r, make_algorithm(opt_.algorithm),
          Rng(opt_.seed).fork(std::uint64_t(r)));
      ep->set_callbacks(MutexCallbacks{
          [this, r] { on_granted(r); },
          [this, r] { pending_events_.push_back(r); },
      });
      endpoints_.push_back(std::move(ep));
    }
    const int holder =
        is_token_based(opt_.algorithm) ? opt_.holder_rank
                                       : MutexAlgorithm::kNoHolder;
    for (auto& ep : endpoints_) ep->init(holder);
  }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Network& net() { return net_; }
  [[nodiscard]] MutexEndpoint& ep(int rank) {
    return *endpoints_[std::size_t(rank)];
  }
  [[nodiscard]] int size() const { return opt_.participants; }

  /// Scripted entry points --------------------------------------------------

  void request(int rank) { ep(rank).request_cs(); }
  void release(int rank) { ep(rank).release_cs(); }
  void request_at(SimDuration when, int rank) {
    sim_.schedule_after(when, [this, rank] { request(rank); });
  }

  /// When set, every grant is followed by an automatic release after
  /// `cs_time` (and the safety monitor still checks overlap).
  void set_auto_release(SimDuration cs_time) {
    auto_release_ = true;
    cs_time_ = cs_time;
  }

  /// Self-driving mode: `rank` performs `count` critical sections, waiting
  /// `think` between release and next request. Implies auto-release.
  void drive(int rank, int count, SimDuration think) {
    GMX_ASSERT(auto_release_);
    remaining_[std::size_t(rank)] = count;
    think_[std::size_t(rank)] = think;
    sim_.schedule_after(think, [this, rank] { request(rank); });
    remaining_[std::size_t(rank)] -= 1;
  }

  void run() { sim_.run(); }
  void run_for(SimDuration d) { sim_.run_until(sim_.now() + d); }

  /// Observed behaviour -----------------------------------------------------

  /// Ranks in grant order (every CS entry).
  [[nodiscard]] const std::vector<int>& grants() const { return grants_; }
  [[nodiscard]] int grant_count(int rank) const {
    int c = 0;
    for (int g : grants_)
      if (g == rank) ++c;
    return c;
  }
  /// Ranks whose on_pending callbacks fired, in order.
  [[nodiscard]] const std::vector<int>& pending_events() const {
    return pending_events_;
  }
  [[nodiscard]] int in_cs_count() const {
    int c = 0;
    for (const auto& ep : endpoints_)
      if (ep->in_cs()) ++c;
    return c;
  }
  [[nodiscard]] int token_holder_count() const {
    int c = 0;
    for (const auto& ep : endpoints_)
      if (ep->holds_token()) ++c;
    return c;
  }
  [[nodiscard]] bool safety_violated() const { return safety_violated_; }

 private:
  static Topology make_topology(const HarnessOptions& opt) {
    if (opt.clusters <= 1)
      return Topology::uniform(1, std::uint32_t(opt.participants));
    // Contiguous blocks, last cluster takes the remainder.
    const auto per = std::uint32_t(opt.participants) / opt.clusters;
    std::vector<std::uint32_t> sizes(opt.clusters, per);
    sizes.back() += std::uint32_t(opt.participants) % opt.clusters;
    return Topology::from_sizes(sizes);
  }

  void on_granted(int rank) {
    grants_.push_back(rank);
    // Mutual exclusion check at every entry: the granted endpoint is InCs;
    // nobody else may be.
    if (in_cs_count() != 1) safety_violated_ = true;
    if (auto_release_) {
      sim_.schedule_after(cs_time_, [this, rank] {
        release(rank);
        auto& rem = remaining_[std::size_t(rank)];
        if (rem > 0) {
          --rem;
          sim_.schedule_after(think_[std::size_t(rank)],
                              [this, rank] { request(rank); });
        }
      });
    }
  }

  HarnessOptions opt_;
  Simulator sim_;
  Topology topo_;
  Network net_;
  std::vector<std::unique_ptr<MutexEndpoint>> endpoints_;

  std::vector<int> grants_;
  std::vector<int> pending_events_;
  bool safety_violated_ = false;

  bool auto_release_ = false;
  SimDuration cs_time_ = SimDuration::ms(1);
  std::vector<int> remaining_ = std::vector<int>(1024, 0);
  std::vector<SimDuration> think_ = std::vector<SimDuration>(1024);
};

}  // namespace gmx::testing
