// Codec equivalence: the zero-copy wire path must be a pure optimization.
//
// PR 5 rebuilt the encode path around pooled, refcounted payload blocks —
// wire::Writer appends unchecked behind a single reservation, broadcasts
// share one encoded block across N sends, and BatchMux splices
// already-encoded sub-payloads into frames and slices them back out on
// delivery. None of that is allowed to change a single byte on the wire:
// byte accounting and the pinned delivery-trace hashes both hang off the
// encodings. This suite pins the equivalence:
//
//   1. a naive per-byte reference encoder (the PR 4 codec, reimplemented
//      here with push_back so the two paths share no code) must agree with
//      wire::Writer — default, pre-reserved, and pool-backed — on random
//      primitive mixes, including when the pool recycles dirty blocks;
//   2. every message schema of all ten mutex algorithms encodes
//      identically through the pooled take_payload() path;
//   3. a BatchMux frame built by splicing encoded sub-payloads equals the
//      reference re-encode, and the delivery-side slices are exactly the
//      original sub-payload bytes;
//   4. a shared fan-out payload is copy-on-write: no holder of one handle
//      can mutate the bytes another handle sees.
//
// Suite names all carry the CodecEquivalence token so the TSan CI job can
// pick the whole file up with one ctest regex.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gridmutex/net/buffer_pool.hpp"
#include "gridmutex/net/wire.hpp"
#include "gridmutex/service/batch.hpp"
#include "gridmutex/service/lease.hpp"
#include "gridmutex/sim/random.hpp"

namespace gmx::wire {
namespace {

/// The PR 4 reference codec: checked, per-byte, push_back-based. Kept
/// deliberately naive — it shares no code with wire::Writer, so agreement
/// between the two is evidence, not tautology.
class RefWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { fixed(v, 2); }
  void u32(std::uint32_t v) { fixed(v, 4); }
  void u64(std::uint64_t v) { fixed(v, 8); }
  void i64(std::int64_t v) { u64(std::uint64_t(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(std::uint8_t(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(std::uint8_t(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    varint(data.size());
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void str(std::string_view s) {
    varint(s.size());
    for (char c : s) out_.push_back(std::uint8_t(c));
  }
  void varint_array(std::span<const std::uint64_t> values) {
    varint(values.size());
    for (std::uint64_t v : values) varint(v);
  }
  void varint_array(std::span<const std::uint32_t> values) {
    varint(values.size());
    for (std::uint32_t v : values) varint(v);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes_out() const {
    return out_;
  }

 private:
  void fixed(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) out_.push_back(std::uint8_t(v >> (8 * i)));
  }

  std::vector<std::uint8_t> out_;
};

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.next_below(max_len + 1));
  for (auto& b : out) b = std::uint8_t(rng.next_below(256));
  return out;
}

/// A value whose varint length is uniform over 1..10 bytes, so short and
/// long encodings are both exercised (a plain uniform u64 is almost always
/// 10 bytes long).
std::uint64_t random_varint_value(Rng& rng) {
  const std::uint64_t bits = rng.next_below(64);
  return rng.next_u64() >> bits;
}

/// One recorded primitive append, replayable into any writer-like sink.
struct Op {
  enum Kind : std::uint8_t {
    kU8,
    kU16,
    kU32,
    kU64,
    kI64,
    kF64,
    kVarint,
    kBytes,
    kStr,
    kArr64,
    kArr32,
  };
  Kind kind;
  std::uint64_t value = 0;
  std::vector<std::uint8_t> blob;
  std::vector<std::uint64_t> arr64;
  std::vector<std::uint32_t> arr32;
};

Op random_op(Rng& rng) {
  Op op;
  op.kind = Op::Kind(rng.next_below(11));
  switch (op.kind) {
    case Op::kU8:
    case Op::kU16:
    case Op::kU32:
    case Op::kU64:
    case Op::kI64:
    case Op::kF64:
      op.value = rng.next_u64();
      break;
    case Op::kVarint:
      op.value = random_varint_value(rng);
      break;
    case Op::kBytes:
    case Op::kStr:
      op.blob = random_bytes(rng, 48);
      break;
    case Op::kArr64:
      op.arr64.resize(rng.next_below(17));
      for (auto& v : op.arr64) v = random_varint_value(rng);
      break;
    case Op::kArr32:
      op.arr32.resize(rng.next_below(17));
      for (auto& v : op.arr32) v = std::uint32_t(rng.next_u64());
      break;
  }
  return op;
}

template <typename W>
void replay(W& w, const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kU8:
        w.u8(std::uint8_t(op.value));
        break;
      case Op::kU16:
        w.u16(std::uint16_t(op.value));
        break;
      case Op::kU32:
        w.u32(std::uint32_t(op.value));
        break;
      case Op::kU64:
        w.u64(op.value);
        break;
      case Op::kI64:
        w.i64(std::int64_t(op.value));
        break;
      case Op::kF64: {
        double d;
        std::memcpy(&d, &op.value, sizeof d);
        w.f64(d);
        break;
      }
      case Op::kVarint:
        w.varint(op.value);
        break;
      case Op::kBytes:
        w.bytes(op.blob);
        break;
      case Op::kStr:
        w.str(std::string_view(reinterpret_cast<const char*>(op.blob.data()),
                               op.blob.size()));
        break;
      case Op::kArr64:
        w.varint_array(op.arr64);
        break;
      case Op::kArr32:
        w.varint_array(op.arr32);
        break;
    }
  }
}

std::vector<std::uint8_t> reference_encode(const std::vector<Op>& ops) {
  RefWriter ref;
  replay(ref, ops);
  return ref.bytes_out();
}

TEST(CodecEquivalence, FastWriterMatchesReferenceOnRandomPrimitives) {
  Rng rng(0x5EED5);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<Op> ops(rng.next_below(13));
    for (auto& op : ops) op = random_op(rng);
    const std::vector<std::uint8_t> expect = reference_encode(ops);

    Writer plain;
    replay(plain, ops);
    EXPECT_EQ(plain.take(), expect);

    Writer reserved(expect.size());  // exact reservation: no grow() at all
    replay(reserved, ops);
    EXPECT_EQ(reserved.take(), expect);

    Writer tight(1);  // undersized reservation: grow() on almost every op
    replay(tight, ops);
    EXPECT_EQ(tight.take(), expect);
  }
}

TEST(CodecEquivalence, PooledWriterTakePayloadMatchesReference) {
  BufferPool pool;
  Rng rng(0xB10C);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<Op> ops(rng.next_below(13));
    for (auto& op : ops) op = random_op(rng);
    const std::vector<std::uint8_t> expect = reference_encode(ops);

    Writer w(pool, rng.next_below(2) == 0 ? expect.size() : 0);
    replay(w, ops);
    const Payload p = w.take_payload();
    EXPECT_EQ(p, expect);
  }
  // The loop above releases every block back into the pool, so recycling
  // must have kicked in: recycled blocks arrive dirty (no-clear recycling)
  // and the encodes still matched the reference byte-for-byte.
  EXPECT_GT(pool.reuses(), 0u);
}

TEST(CodecEquivalence, RecycledDirtyBlocksNeverLeakStaleBytes) {
  // Alternate long and short encodes through a single-block pool: every
  // short encode lands in a block still holding the long encode's bytes,
  // so any stale-length bug would surface as trailing garbage.
  BufferPool pool;
  Rng rng(0xD1B7);
  for (int trial = 0; trial < 500; ++trial) {
    const std::vector<std::uint8_t> big = random_bytes(rng, 256);
    {
      Writer w(pool);
      w.bytes(big);
      RefWriter ref;
      ref.bytes(big);
      EXPECT_EQ(w.take_payload(), ref.bytes_out());
    }
    const std::uint64_t small = rng.next_below(128);
    {
      Writer w(pool);
      w.varint(small);
      RefWriter ref;
      ref.varint(small);
      const Payload p = w.take_payload();
      EXPECT_EQ(p, ref.bytes_out());
      EXPECT_EQ(p.size(), 1u);
    }
  }
}

TEST(CodecEquivalence, EmptyWriterYieldsEmptyPayload) {
  BufferPool pool;
  Writer w(pool, 64);
  const Payload p = w.take_payload();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  Writer plain;
  EXPECT_TRUE(plain.take().empty());
}

// ---------------------------------------------------------------------------
// Per-algorithm message schemas. Each case encodes the exact field sequence
// the algorithm's send site produces (see the MsgType comments in the
// headers) through the pooled fast path and the reference codec.
// ---------------------------------------------------------------------------

class CodecEquivalenceSchemas : public ::testing::Test {
 protected:
  /// Encodes `fill` through both paths and asserts byte equality.
  template <typename Fill>
  void expect_equal(Fill fill) {
    RefWriter ref;
    fill(ref);
    Writer fast(pool_, std::size_t(rng_.next_below(32)));
    fill(fast);
    EXPECT_EQ(fast.take_payload(), ref.bytes_out());
  }

  BufferPool pool_;
  Rng rng_{0xA160};
};

TEST_F(CodecEquivalenceSchemas, SuzukiKasami) {
  for (int i = 0; i < 200; ++i) {
    // kRequest: varint sequence number.
    const std::uint64_t rn = random_varint_value(rng_);
    expect_equal([&](auto& w) { w.varint(rn); });
    // kToken: varint_array LN, varint_array Q.
    std::vector<std::uint64_t> ln(rng_.next_below(33));
    for (auto& v : ln) v = random_varint_value(rng_);
    std::vector<std::uint32_t> q(rng_.next_below(33));
    for (auto& v : q) v = std::uint32_t(rng_.next_below(1u << 16));
    expect_equal([&](auto& w) {
      w.varint_array(ln);
      w.varint_array(q);
    });
    // kRegenQuery: varint round.  kRegenReply: round, flags, own seq.
    const std::uint64_t round = rng_.next_below(1000);
    const std::uint64_t flags = rng_.next_below(4);
    const std::uint64_t seq = random_varint_value(rng_);
    expect_equal([&](auto& w) { w.varint(round); });
    expect_equal([&](auto& w) {
      w.varint(round);
      w.varint(flags);
      w.varint(seq);
    });
  }
}

TEST_F(CodecEquivalenceSchemas, NaimiTrehel) {
  for (int i = 0; i < 200; ++i) {
    // kRequest: varint original-requester rank.  kToken: empty.
    const std::uint64_t requester = rng_.next_below(256);
    expect_equal([&](auto& w) { w.varint(requester); });
    // kRegenQuery: varint round.  kRegenReply: round, flags, next+1|0.
    const std::uint64_t round = rng_.next_below(1000);
    const std::uint64_t flags = rng_.next_below(4);
    const std::uint64_t next = rng_.next_below(257);
    expect_equal([&](auto& w) { w.varint(round); });
    expect_equal([&](auto& w) {
      w.varint(round);
      w.varint(flags);
      w.varint(next);
    });
  }
}

TEST_F(CodecEquivalenceSchemas, Bertier) {
  for (int i = 0; i < 200; ++i) {
    // kRequest: varint requester rank.
    const std::uint64_t requester = rng_.next_below(256);
    expect_equal([&](auto& w) { w.varint(requester); });
    // kToken: varint streak, varint_array queue.
    std::vector<std::uint32_t> queue(rng_.next_below(33));
    for (auto& v : queue) v = std::uint32_t(rng_.next_below(256));
    const std::uint64_t streak = rng_.next_below(64);
    expect_equal([&](auto& w) {
      w.varint(streak);
      w.varint_array(queue);
    });
  }
}

TEST_F(CodecEquivalenceSchemas, Mueller) {
  for (int i = 0; i < 200; ++i) {
    // kRequest: varint requester, varint base priority.
    const std::uint64_t requester = rng_.next_below(256);
    const std::uint64_t base = random_varint_value(rng_);
    expect_equal([&](auto& w) {
      w.varint(requester);
      w.varint(base);
    });
    // kToken: varint count, then (rank, base, age) per entry.
    const std::size_t n = rng_.next_below(17);
    std::vector<std::uint64_t> fields(n * 3);
    for (auto& v : fields) v = random_varint_value(rng_);
    expect_equal([&](auto& w) {
      w.varint(n);
      for (std::size_t k = 0; k < n; ++k) {
        w.varint(fields[3 * k]);
        w.varint(fields[3 * k + 1]);
        w.varint(fields[3 * k + 2]);
      }
    });
  }
}

TEST_F(CodecEquivalenceSchemas, LamportAndRicartAgrawala) {
  for (int i = 0; i < 200; ++i) {
    // Lamport kRequest / kReply and Ricart-Agrawala kRequest all carry a
    // single varint Lamport timestamp; the remaining types are empty.
    const std::uint64_t ts = random_varint_value(rng_);
    expect_equal([&](auto& w) { w.varint(ts); });
  }
}

TEST_F(CodecEquivalenceSchemas, Maekawa) {
  for (int i = 0; i < 200; ++i) {
    // kRequest: varint timestamp. kLocked/kInquire/kRelinquish/kRelease/
    // kDemand are empty payloads — nothing to encode.
    const std::uint64_t ts = random_varint_value(rng_);
    expect_equal([&](auto& w) { w.varint(ts); });
  }
}

TEST_F(CodecEquivalenceSchemas, ServiceLeaseMessages) {
  // The ISSUE 7 service messages (LEASE_RENEW / REVOKE / CANCEL / SHED):
  // all-varint schemas owned by LeaseManager. Their encode() goes through
  // the pooled Writer in production; here it must match the reference
  // codec byte-for-byte, and decode() must round-trip the struct.
  for (int i = 0; i < 200; ++i) {
    const LeaseManager::Renew renew{random_varint_value(rng_),
                                    rng_.next_below(256),
                                    random_varint_value(rng_)};
    expect_equal([&](auto& w) {
      w.varint(renew.lock);
      w.varint(renew.node);
      w.varint(renew.fence);
    });
    const LeaseManager::Revoke revoke{random_varint_value(rng_),
                                      random_varint_value(rng_)};
    expect_equal([&](auto& w) {
      w.varint(revoke.lock);
      w.varint(revoke.fence);
    });
    const LeaseManager::LoadReport report{random_varint_value(rng_),
                                          rng_.next_below(256),
                                          random_varint_value(rng_)};
    expect_equal([&](auto& w) {
      w.varint(report.lock);
      w.varint(report.node);
      w.varint(report.count);
    });

    // Struct-level round trips through the production encode()/decode().
    Writer wr(pool_, 16);
    renew.encode(wr);
    const Payload pr = wr.take_payload();
    Reader rr(pr.span());
    EXPECT_EQ(LeaseManager::Renew::decode(rr), renew);
    rr.expect_end();

    Writer wv(pool_, 16);
    revoke.encode(wv);
    const Payload pv = wv.take_payload();
    Reader rv(pv.span());
    EXPECT_EQ(LeaseManager::Revoke::decode(rv), revoke);
    rv.expect_end();

    Writer wl(pool_, 16);
    report.encode(wl);
    const Payload pl = wl.take_payload();
    Reader rl(pl.span());
    EXPECT_EQ(LeaseManager::LoadReport::decode(rl), report);
    rl.expect_end();
  }
}

TEST_F(CodecEquivalenceSchemas, HeaderOnlyAlgorithms) {
  // Martin, Raymond and the central server exchange empty payloads only:
  // the fast path must hand the Network an empty handle, never a
  // zero-length block.
  Writer w(pool_);
  const Payload p = w.take_payload();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p, std::vector<std::uint8_t>{});
}

// ---------------------------------------------------------------------------
// BATCH frames: splice-in equals re-encode, slice-out equals original.
// ---------------------------------------------------------------------------

Message random_sub(Rng& rng) {
  Message m;
  m.protocol = ProtocolId(1 + rng.next_below(40));
  m.type = std::uint16_t(rng.next_below(Message::kAckType));  // never an ACK
  m.payload = random_bytes(rng, 48);
  return m;
}

/// The flush() splice path, replicated exactly: varint count, then per sub
/// (varint protocol, u16 type, length-prefixed payload bytes), built into a
/// pooled block sized by the same reserve heuristic.
Payload splice_frame(BufferPool& pool, std::span<const Message> subs) {
  std::size_t reserve = 2;
  for (const Message& s : subs) reserve += 8 + s.payload.size();
  Writer w(pool, reserve);
  w.varint(subs.size());
  for (const Message& s : subs) {
    w.varint(s.protocol);
    w.u16(s.type);
    w.bytes(s.payload);
  }
  return w.take_payload();
}

TEST(CodecEquivalenceBatch, SplicedFrameMatchesReferenceEncode) {
  BufferPool pool;
  Rng rng(0xBA7C5);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Message> subs(2 + rng.next_below(7));
    for (auto& m : subs) m = random_sub(rng);
    const Payload frame = splice_frame(pool, subs);
    // BatchMux::encode is the reference frame codec (plain Writer::take).
    EXPECT_EQ(frame, BatchMux::encode(subs));
  }
}

TEST(CodecEquivalenceBatch, SliceOutRecoversOriginalSubPayloads) {
  // The delivery path slices sub-payload views straight out of the frame
  // block. Walk a spliced frame the way on_frame() does and check each
  // slice against the original sub-message bytes.
  BufferPool pool;
  Rng rng(0x511CE);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Message> subs(2 + rng.next_below(7));
    for (auto& m : subs) m = random_sub(rng);
    const Payload frame = splice_frame(pool, subs);

    const std::span<const std::uint8_t> bytes = frame.span();
    Reader r(bytes);
    ASSERT_EQ(r.varint(), subs.size());
    for (const Message& expect : subs) {
      EXPECT_EQ(r.varint(), expect.protocol);
      EXPECT_EQ(r.u16(), expect.type);
      const std::span<const std::uint8_t> body = r.bytes_view();
      const Payload slice = frame.slice(
          std::size_t(body.data() - bytes.data()), body.size());
      EXPECT_EQ(slice, expect.payload);
      if (!slice.empty()) {
        EXPECT_TRUE(slice.shared());  // no copy was made
      }
    }
    r.expect_end();
  }
}

TEST(CodecEquivalenceBatch, DecodeOfSplicedFrameRoundTrips) {
  BufferPool pool;
  Rng rng(0xF4A3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Message> subs(2 + rng.next_below(7));
    for (auto& m : subs) m = random_sub(rng);
    const Payload frame = splice_frame(pool, subs);
    const std::vector<Message> out = BatchMux::decode(3, 7, frame.span());
    ASSERT_EQ(out.size(), subs.size());
    for (std::size_t i = 0; i < subs.size(); ++i) {
      EXPECT_EQ(out[i].protocol, subs[i].protocol);
      EXPECT_EQ(out[i].type, subs[i].type);
      EXPECT_EQ(out[i].payload, subs[i].payload);
    }
  }
}

// ---------------------------------------------------------------------------
// Aliasing: encode-once fan-out hands the same block to N receivers; no
// receiver may be able to mutate the bytes the others see.
// ---------------------------------------------------------------------------

TEST(CodecEquivalenceAliasing, SharedFanOutPayloadIsCopyOnWrite) {
  BufferPool pool;
  Writer w(pool, 8);
  w.varint(0x1234);
  const Payload broadcast = w.take_payload();
  const std::vector<std::uint8_t> golden(broadcast.begin(), broadcast.end());

  // Fan out: every "receiver" holds a handle onto the same block.
  Payload a = broadcast;
  Payload b = broadcast;
  EXPECT_TRUE(broadcast.shared());
  EXPECT_TRUE(a.shared());
  EXPECT_EQ(a.data(), broadcast.data());  // genuinely the same bytes

  // Receiver A "mutates" its payload: assign must detach, so B and the
  // original still read the golden bytes.
  a.assign(4, 0xEE);
  EXPECT_EQ(broadcast, golden);
  EXPECT_EQ(b, golden);
  EXPECT_NE(a, broadcast);
  EXPECT_NE(a.data(), broadcast.data());

  // Receiver B clears: only its handle goes empty.
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(broadcast, golden);

  // Vector assignment detaches too (the test/tool compatibility path).
  Payload c = broadcast;
  c = std::vector<std::uint8_t>{1, 2, 3};
  EXPECT_EQ(broadcast, golden);
  EXPECT_FALSE(broadcast.shared());  // a, b, c all detached or died
}

TEST(CodecEquivalenceAliasing, SliceMutationCannotTouchSiblings) {
  BufferPool pool;
  Writer w(pool, 32);
  w.bytes(std::vector<std::uint8_t>{10, 11, 12});
  w.bytes(std::vector<std::uint8_t>{20, 21, 22});
  Payload frame = w.take_payload();

  // Slice both bodies out the way BatchMux delivery does.
  Reader r(frame.span());
  const auto body1 = r.bytes_view();
  const auto body2 = r.bytes_view();
  Payload s1 = frame.slice(std::size_t(body1.data() - frame.data()), 3);
  const Payload s2 = frame.slice(std::size_t(body2.data() - frame.data()), 3);
  EXPECT_EQ(s1, (std::vector<std::uint8_t>{10, 11, 12}));
  EXPECT_EQ(s2, (std::vector<std::uint8_t>{20, 21, 22}));

  // Mutating one delivered slice detaches it; its sibling and the frame
  // are untouched.
  s1.assign(3, 0xFF);
  EXPECT_EQ(s2, (std::vector<std::uint8_t>{20, 21, 22}));
  Reader check(frame.span());
  EXPECT_EQ(check.bytes(), (std::vector<std::uint8_t>{10, 11, 12}));

  // Slices keep the block alive after the frame handle dies.
  frame.clear();
  EXPECT_EQ(s2, (std::vector<std::uint8_t>{20, 21, 22}));
}

TEST(CodecEquivalenceAliasing, PooledBlockNotRecycledWhileHandlesLive) {
  BufferPool pool;
  Payload survivor;
  {
    Writer w(pool, 8);
    w.u32(0xDEADBEEF);
    const Payload p = w.take_payload();
    survivor = p;  // second handle outlives the first
  }
  EXPECT_EQ(pool.pooled(), 0u);  // block still owned by `survivor`
  Reader r(survivor.span());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  survivor.clear();
  EXPECT_EQ(pool.pooled(), 1u);  // last handle returned it
}

}  // namespace
}  // namespace gmx::wire
