// Fuzz harness for the wire decode surface: wire::Reader primitive walks,
// BatchMux frame decoding, and the zero-copy Payload slice-out path.
//
// Contract under test (complements the PR 5 splice/decode equivalence
// suite): malformed input must surface as wire::WireError — never an
// out-of-bounds read, never an assert, never a crash. GMX_ASSERT stays
// active in every build type, so an internal invariant breach aborts the
// process and the fuzzer reports it.
//
// The first input byte selects a mode; the rest is the payload:
//   mode 0 — Reader op-walk: a xorshift stream (seeded from the input, no
//            global RNG engines — rng-discipline applies to tests too)
//            picks decode primitives until the payload is exhausted or a
//            WireError fires.
//   mode 1 — BatchMux::decode() on the raw bytes; on success the decoded
//            sub-messages are re-encoded and re-decoded, and the
//            round-trip must be identical (differential oracle).
//   mode 2 — the on_frame() slice-out shape: the same validating pre-pass
//            over a refcounted Payload block, then Payload::slice() of
//            every recorded body, each slice byte-compared against the
//            bytes_view() span it mirrors.
//   mode 3 — the ISSUE 7 service lease schemas (LEASE_RENEW / REVOKE /
//            CANCEL / SHED): a sub-selector byte picks the schema, the
//            struct decode must either throw WireError or round-trip
//            decode -> encode -> decode to the identical struct
//            (differential oracle at the value level — a non-canonical
//            varint input re-encodes canonically but must keep the value).
//   mode 4 — the transport datagram envelope (transport/frame.hpp): the
//            bytes go through decode_datagram() — the exact path hostile
//            UDP datagrams take in lockd — and on success every decoded
//            Message is re-encoded with begin_datagram()/append_frame()
//            and re-decoded; the round-trip must reproduce each frame's
//            header fields and payload bytes (differential oracle).
//
// Build modes (tests/fuzz/CMakeLists.txt): with -DGRIDMUTEX_FUZZER=ON
// under Clang this links against libFuzzer; otherwise a standalone driver
// replays the committed seed corpus so the harness itself is exercised by
// ctest in every configuration.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "gridmutex/net/buffer_pool.hpp"
#include "gridmutex/net/wire.hpp"
#include "gridmutex/service/batch.hpp"
#include "gridmutex/service/lease.hpp"
#include "gridmutex/transport/frame.hpp"

namespace {

// Tiny deterministic stream for op selection; deliberately not a <random>
// engine (see tools/lint: rng-discipline).
struct OpStream {
  std::uint64_t s;
  explicit OpStream(std::uint64_t seed) : s(seed | 1) {}
  std::uint32_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return std::uint32_t(s);
  }
};

void reader_walk(std::span<const std::uint8_t> payload) {
  std::uint64_t seed = payload.size();
  for (std::size_t i = 0; i < payload.size() && i < 8; ++i)
    seed = seed * 257 + payload[i];
  OpStream ops(seed);
  gmx::wire::Reader r(payload);
  // Sink the decoded values so the reads cannot be optimized away.
  volatile std::uint64_t sink = 0;
  for (int step = 0; step < 4096 && !r.at_end(); ++step) {
    switch (ops.next() % 10) {
      case 0: sink += r.u8(); break;
      case 1: sink += r.u16(); break;
      case 2: sink += r.u32(); break;
      case 3: sink += r.varint(); break;
      case 4: sink += r.bytes().size(); break;
      case 5: sink += r.bytes_view().size(); break;
      case 6: sink += r.str().size(); break;
      case 7: sink += r.varint_array_u64().size(); break;
      case 8: sink += r.varint_array_u32().size(); break;
      case 9: sink += r.remaining(); break;
    }
  }
  r.expect_end();  // throws unless fully consumed; both outcomes are fine
}

void batch_decode_roundtrip(std::span<const std::uint8_t> payload) {
  const std::vector<gmx::Message> subs = gmx::BatchMux::decode(1, 2, payload);
  // Differential oracle: decode -> encode -> decode must be a fixpoint.
  const std::vector<std::uint8_t> re = gmx::BatchMux::encode(subs);
  const std::vector<gmx::Message> again = gmx::BatchMux::decode(1, 2, re);
  GMX_ASSERT_MSG(again.size() == subs.size(),
                 "fuzz: batch round-trip changed sub-message count");
  for (std::size_t i = 0; i < subs.size(); ++i) {
    GMX_ASSERT_MSG(again[i].protocol == subs[i].protocol &&
                       again[i].type == subs[i].type &&
                       again[i].payload == subs[i].payload,
                   "fuzz: batch round-trip changed a sub-message");
  }
}

void slice_out(std::span<const std::uint8_t> payload) {
  // Mirror BatchMux::on_frame()'s validating pre-pass + zero-copy slice,
  // over a real refcounted block so slice refcounting is in the loop.
  gmx::Payload frame;
  frame.assign(payload);
  const std::span<const std::uint8_t> bytes = frame.span();
  gmx::wire::Reader r(bytes);
  const std::uint64_t count = r.varint();
  if (count == 0 || count > r.remaining())
    throw gmx::wire::WireError("fuzz: implausible sub-message count");
  std::vector<gmx::Payload> slices;
  for (std::uint64_t i = 0; i < count; ++i) {
    (void)r.varint();  // protocol
    (void)r.u16();     // type
    const std::span<const std::uint8_t> body = r.bytes_view();
    gmx::Payload s = frame.slice(std::size_t(body.data() - bytes.data()),
                                 body.size());
    GMX_ASSERT_MSG(s.span().size() == body.size() &&
                       std::equal(body.begin(), body.end(), s.span().begin()),
                   "fuzz: slice diverged from the view it mirrors");
    slices.push_back(std::move(s));
  }
  r.expect_end();
}

/// Struct-level fixpoint for one lease schema: decode the raw bytes (must
/// consume them exactly), re-encode canonically, decode again, compare.
template <typename M>
void lease_roundtrip(std::span<const std::uint8_t> bytes) {
  gmx::wire::Reader r(bytes);
  const M m = M::decode(r);
  r.expect_end();
  gmx::wire::Writer w;
  m.encode(w);
  const std::vector<std::uint8_t> re = w.take();
  gmx::wire::Reader r2(re);
  const M m2 = M::decode(r2);
  r2.expect_end();
  GMX_ASSERT_MSG(m2 == m, "fuzz: lease schema round-trip changed the value");
}

void lease_schemas(std::span<const std::uint8_t> payload) {
  if (payload.empty()) return;
  const std::span<const std::uint8_t> body = payload.subspan(1);
  switch (payload[0] % 3) {
    case 0: lease_roundtrip<gmx::LeaseManager::Renew>(body); break;
    case 1: lease_roundtrip<gmx::LeaseManager::Revoke>(body); break;
    case 2: lease_roundtrip<gmx::LeaseManager::LoadReport>(body); break;
  }
}

void transport_datagram_roundtrip(std::span<const std::uint8_t> payload) {
  gmx::Payload dgram;
  dgram.assign(payload);
  const std::vector<gmx::Message> msgs = gmx::transport::decode_datagram(dgram);
  GMX_ASSERT_MSG(!msgs.empty(),
                 "fuzz: decode_datagram accepted a frameless datagram");
  // Differential oracle: re-encode through the framing writer and decode
  // again; the envelope grammar is canonical, so the frames must agree
  // field for field and byte for byte.
  gmx::wire::Writer w;
  gmx::transport::begin_datagram(w);
  for (const gmx::Message& m : msgs) gmx::transport::append_frame(w, m);
  gmx::Payload re;
  re = w.take();
  const std::vector<gmx::Message> again = gmx::transport::decode_datagram(re);
  GMX_ASSERT_MSG(again.size() == msgs.size(),
                 "fuzz: datagram round-trip changed the frame count");
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    const std::span<const std::uint8_t> a = msgs[i].payload;
    const std::span<const std::uint8_t> b = again[i].payload;
    GMX_ASSERT_MSG(again[i].src == msgs[i].src &&
                       again[i].dst == msgs[i].dst &&
                       again[i].protocol == msgs[i].protocol &&
                       again[i].type == msgs[i].type &&
                       again[i].seq == msgs[i].seq && a.size() == b.size() &&
                       std::equal(a.begin(), a.end(), b.begin()),
                   "fuzz: datagram round-trip changed a frame");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::span<const std::uint8_t> payload(data + 1, size - 1);
  try {
    switch (data[0] % 5) {
      case 0: reader_walk(payload); break;
      case 1: batch_decode_roundtrip(payload); break;
      case 2: slice_out(payload); break;
      case 3: lease_schemas(payload); break;
      case 4: transport_datagram_roundtrip(payload); break;
    }
  } catch (const gmx::wire::WireError&) {
    // The expected failure mode for malformed input. Anything else —
    // other exceptions, GMX_ASSERT aborts, sanitizer reports — is a bug.
  }
  return 0;
}

#ifdef GRIDMUTEX_FUZZ_STANDALONE
// Corpus-replay driver for toolchains without libFuzzer: every argument is
// a seed file or a directory of seed files; each is run through the
// harness once. Keeps the harness compiled and the corpus green under
// plain ctest in every build configuration.
#include <cstdio>
#include <filesystem>
#include <fstream>

namespace {

int run_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz replay: cannot open %s\n", p.c_str());
    return 1;
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <seed-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (!entry.is_regular_file()) continue;
        if (run_file(entry.path()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (run_file(p) != 0) return 1;
      ++replayed;
    }
  }
  std::printf("fuzz replay: %d input(s), no crashes\n", replayed);
  return 0;
}
#endif  // GRIDMUTEX_FUZZ_STANDALONE
