#!/usr/bin/env python3
"""Regenerates the committed seed corpus for fuzz_wire_reader.

Each seed is `mode byte + payload` (see fuzz_wire_reader.cpp). The set
covers, per mode, at least one well-formed input and the interesting
malformed shapes: truncation mid-primitive, over-long varints, implausible
counts, lengths pointing past the end, and trailing garbage.

Deterministic by construction — re-running must reproduce the committed
files byte-for-byte (check with git diff).
"""

import os
import sys


def varint(v: int) -> bytes:
    out = bytearray()
    while True:
        b = v & 0x7F
        v >>= 7
        if v:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def u16(v: int) -> bytes:
    return bytes((v & 0xFF, (v >> 8) & 0xFF))


def u32(v: int) -> bytes:
    return bytes((v & 0xFF, (v >> 8) & 0xFF, (v >> 16) & 0xFF,
                  (v >> 24) & 0xFF))


def sub(proto: int, type_: int, body: bytes) -> bytes:
    return varint(proto) + u16(type_) + varint(len(body)) + body


def frame(*subs: bytes) -> bytes:
    return varint(len(subs)) + b"".join(subs)


def tframe(src: int, dst: int, proto: int, type_: int, seq: int,
           body: bytes) -> bytes:
    """One transport frame (transport/frame.hpp grammar)."""
    return (u32(src) + u32(dst) + varint(proto) + u16(type_) + varint(seq)
            + varint(len(body)) + body)


def dgram(*frames: bytes) -> bytes:
    """A version-1 transport datagram envelope."""
    return bytes([1]) + b"".join(frames)


SEEDS = {
    # mode 0: Reader op-walk
    "reader_empty": bytes([0]),
    "reader_varints": bytes([0]) + b"".join(varint(v) for v in
                                            (0, 1, 127, 128, 2**32, 2**63)),
    "reader_overlong_varint": bytes([0]) + bytes([0x80] * 12),
    "reader_len_past_end": bytes([0]) + varint(200) + b"short",
    "reader_mixed": bytes([0]) + bytes(range(1, 64)),
    # mode 1: BatchMux::decode round-trip
    "batch_two_subs": bytes([1]) + frame(sub(3, 7, b"abc"),
                                         sub(9, 2, bytes(range(32)))),
    "batch_empty_bodies": bytes([1]) + frame(sub(1, 1, b""), sub(2, 1, b"")),
    "batch_zero_count": bytes([1]) + varint(0),
    "batch_huge_count": bytes([1]) + varint(1 << 40) + b"xx",
    "batch_proto_zero": bytes([1]) + frame(sub(0, 1, b"z")),
    "batch_ack_type": bytes([1]) + frame(sub(5, 0xFFFF, b"z")),
    "batch_trailing_garbage": bytes([1]) + frame(sub(4, 4, b"ok")) + b"!!",
    "batch_truncated_body": bytes([1]) + varint(1) + varint(6) + u16(2)
                            + varint(50) + b"only-a-few",
    # mode 2: Payload slice-out
    "slice_three_subs": bytes([2]) + frame(sub(2, 1, b"first"),
                                           sub(2, 2, b""),
                                           sub(7, 3, bytes(64))),
    "slice_truncated": bytes([2]) + varint(2) + varint(3) + u16(1)
                       + varint(4) + b"ab",
    "slice_count_lies": bytes([2]) + varint(9) + sub(1, 1, b"x"),
    # mode 3: service lease schemas (sub-selector: 0=RENEW 1=REVOKE 2=LOAD)
    "lease_renew_ok": bytes([3, 0]) + varint(5) + varint(12) + varint(2**40),
    "lease_renew_truncated": bytes([3, 0]) + varint(5) + varint(12),
    "lease_renew_noncanonical": bytes([3, 0]) + bytes([0x85, 0x00])
                                + varint(1) + varint(1),
    "lease_revoke_ok": bytes([3, 1]) + varint(0) + varint(7),
    "lease_revoke_trailing": bytes([3, 1]) + varint(0) + varint(7) + b"!",
    "lease_load_ok": bytes([3, 2]) + varint(9) + varint(3) + varint(1),
    "lease_load_overlong": bytes([3, 2]) + bytes([0x80] * 12),
    # mode 4: transport datagram envelope round-trip
    "dgram_single": bytes([4]) + dgram(tframe(1, 2, 3, 4, 5, b"hello")),
    "dgram_multi": bytes([4]) + dgram(tframe(0, 1, 2, 7, 1, b""),
                                      tframe(3, 0, 9, 0xFFFF, 12, b""),
                                      tframe(2, 1, 8, 3, 2**40, bytes(48))),
    "dgram_version_only": bytes([4, 1]),
    "dgram_bad_version": bytes([4, 2]) + tframe(1, 2, 3, 4, 5, b"x"),
    "dgram_proto_zero": bytes([4]) + dgram(tframe(1, 2, 0, 4, 5, b"x")),
    "dgram_proto_too_wide": bytes([4]) + dgram(tframe(1, 2, 2**40, 4, 5,
                                                      b"x")),
    "dgram_truncated_payload": bytes([4, 1]) + u32(1) + u32(2) + varint(3)
                               + u16(4) + varint(5) + varint(50) + b"short",
    "dgram_overlong_seq": bytes([4, 1]) + u32(1) + u32(2) + varint(3)
                          + u16(4) + bytes([0x80] * 12),
    "dgram_trailing_garbage": bytes([4]) + dgram(tframe(1, 2, 3, 4, 5,
                                                        b"ok")) + b"!",
    "dgram_big_fields": bytes([4]) + dgram(tframe(2**32 - 2, 0, 2**31 - 1,
                                                  0xFFFE, 2**63, b"\x00")),
}


def main() -> int:
    out_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "corpus")
    os.makedirs(out_dir, exist_ok=True)
    for name, data in SEEDS.items():
        with open(os.path.join(out_dir, name + ".bin"), "wb") as f:
            f.write(data)
    print(f"wrote {len(SEEDS)} seeds to {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
