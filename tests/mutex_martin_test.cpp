// White-box tests of Martin's ring algorithm: hop counts (2(x+1) messages
// per CS, §2.1), request absorption, and token routing direction.
#include "gridmutex/mutex/martin.hpp"

#include <gtest/gtest.h>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

MartinMutex& algo(MutexHarness& h, int rank) {
  return dynamic_cast<MartinMutex&>(h.ep(rank).algorithm());
}

TEST(Martin, RingNeighboursWrapAround) {
  MutexHarness h({.participants = 5, .algorithm = "martin"});
  EXPECT_EQ(algo(h, 0).successor(), 1);
  EXPECT_EQ(algo(h, 0).predecessor(), 4);
  EXPECT_EQ(algo(h, 4).successor(), 0);
  EXPECT_EQ(algo(h, 4).predecessor(), 3);
}

TEST(Martin, HolderEntersWithoutMessages) {
  MutexHarness h({.participants = 5, .algorithm = "martin", .holder_rank = 2});
  h.request(2);
  h.run();
  EXPECT_EQ(h.grants().size(), 1u);
  EXPECT_EQ(h.net().counters().sent, 0u);
}

TEST(Martin, MessageCostIsTwiceTheRingDistance) {
  // Paper §2.1: x nodes between requester and holder → 2(x+1) messages.
  // Requests travel clockwise (successor direction): requester i reaches
  // holder k in (k-i) mod N hops.
  for (int requester : {1, 3, 7}) {
    MutexHarness h(
        {.participants = 8, .algorithm = "martin", .holder_rank = 0});
    h.request(requester);
    h.run();
    ASSERT_EQ(h.grants().size(), 1u) << requester;
    const auto hops = std::uint64_t((0 - requester + 8) % 8);
    EXPECT_EQ(h.net().counters().sent, 2 * hops) << requester;
  }
}

TEST(Martin, TokenTravelsCounterClockwise) {
  MutexHarness h({.participants = 4, .algorithm = "martin", .holder_rank = 0});
  std::vector<std::pair<NodeId, NodeId>> token_moves;
  h.net().set_tracer([&](const Message& m, SimTime, SimTime) {
    if (m.type == MartinMutex::kToken)
      token_moves.emplace_back(m.src, m.dst);
  });
  h.request(2);  // request path 2→3→0; token path 0→3→2
  h.run();
  ASSERT_EQ(token_moves.size(), 2u);
  EXPECT_EQ(token_moves[0], (std::pair<NodeId, NodeId>{0, 3}));
  EXPECT_EQ(token_moves[1], (std::pair<NodeId, NodeId>{3, 2}));
}

TEST(Martin, RelayNodesKeepPassDutyNotTheToken) {
  MutexHarness h({.participants = 4, .algorithm = "martin", .holder_rank = 0});
  h.request(2);
  h.run();
  // After the transfer, relays must hold neither token nor duty.
  EXPECT_FALSE(h.ep(3).holds_token());
  EXPECT_FALSE(h.ep(3).has_pending_requests());
  EXPECT_TRUE(h.ep(2).holds_token());
}

TEST(Martin, RequestAbsorptionAtARequestingNode) {
  // 0 holds and is in CS. 2 requests (2→3→0: flag at 3). Then 1 requests:
  // its request stops at 2 (which is requesting) — no extra hops.
  MutexHarness h({.participants = 4, .algorithm = "martin", .holder_rank = 0});
  h.request(0);
  h.run();
  h.request(2);
  h.run();
  const auto before = h.net().counters().sent;
  h.request(1);
  h.run();
  EXPECT_EQ(h.net().counters().sent - before, 1u);  // just 1→2
  // One token release now serves 2 then 1 with one hop each.
  h.release(0);
  h.run();
  h.release(2);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 2, 1}));
}

TEST(Martin, SaturatedRingCostsTwoMessagesPerCs) {
  // The paper's low-parallelism sweet spot: when everyone requests, each
  // request is absorbed by the clockwise neighbour (1 message) and each
  // token grant is a single counter-clockwise hop (1 message).
  const int n = 6;
  MutexHarness h({.participants = n, .algorithm = "martin", .holder_rank = 0});
  h.set_auto_release(SimDuration::ms(1));
  for (int r = 0; r < n; ++r) h.request(r);
  h.run();
  ASSERT_EQ(h.grants().size(), std::size_t(n));
  // n-1 request messages (holder's own request is free) + n-1 token hops
  // for the others + final parking: token ends at the last server.
  EXPECT_LE(h.net().counters().sent, std::uint64_t(2 * n));
  EXPECT_FALSE(h.safety_violated());
}

TEST(Martin, PendingObserverFiresWhenHolderInCsSeesRequest) {
  MutexHarness h({.participants = 3, .algorithm = "martin", .holder_rank = 0});
  h.request(0);
  h.run();
  h.request(2);  // travels 2→0
  h.run();
  ASSERT_GE(h.pending_events().size(), 1u);
  EXPECT_EQ(h.pending_events()[0], 0);
  EXPECT_TRUE(h.ep(0).has_pending_requests());
  h.release(0);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 2}));
}

TEST(Martin, IdleHolderLaunchesTokenImmediately) {
  MutexHarness h({.participants = 3, .algorithm = "martin", .holder_rank = 0});
  h.request(1);  // 1→2→0, token 0→2→1
  h.run();
  EXPECT_TRUE(h.pending_events().empty());
  EXPECT_TRUE(h.ep(1).holds_token());
  EXPECT_EQ(h.net().counters().sent, 4u);
}

TEST(Martin, TwoParticipantRing) {
  MutexHarness h({.participants = 2, .algorithm = "martin", .holder_rank = 0});
  h.set_auto_release(SimDuration::ms(1));
  h.drive(0, 5, SimDuration::ms(1));
  h.drive(1, 5, SimDuration::ms(1));
  h.run();
  EXPECT_EQ(h.grant_count(0), 5);
  EXPECT_EQ(h.grant_count(1), 5);
  EXPECT_FALSE(h.safety_violated());
}

TEST(MartinDeathTest, DuplicateTokenAborts) {
  MutexHarness h({.participants = 3, .algorithm = "martin", .holder_rank = 0});
  Message m;
  m.src = 1;  // 0's successor
  m.dst = 0;
  m.protocol = 1;
  m.type = MartinMutex::kToken;
  h.net().send(std::move(m));
  EXPECT_DEATH(h.run(), "duplicate token");
}

TEST(MartinDeathTest, UnsolicitedTokenAborts) {
  MutexHarness h({.participants = 3, .algorithm = "martin", .holder_rank = 0});
  Message m;
  m.src = 2;  // 1's successor
  m.dst = 1;
  m.protocol = 1;
  m.type = MartinMutex::kToken;
  h.net().send(std::move(m));
  EXPECT_DEATH(h.run(), "nothing owed");
}

}  // namespace
}  // namespace gmx::testing
