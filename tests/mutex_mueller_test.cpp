// White-box tests of the Mueller-style prioritized token mutex: priority
// ordering at the holder, FIFO among equals, and starvation freedom via
// aging.
#include "gridmutex/mutex/mueller.hpp"

#include <gtest/gtest.h>

#include "mutex_harness.hpp"

namespace gmx::testing {
namespace {

MuellerMutex& algo(MutexHarness& h, int rank) {
  return dynamic_cast<MuellerMutex&>(h.ep(rank).algorithm());
}

TEST(Mueller, DefaultPrioritiesBehaveFifo) {
  MutexHarness h({.participants = 4, .algorithm = "mueller"});
  h.request(0);
  h.run();
  h.request(2);
  h.run();
  h.request(1);
  h.run();
  h.request(3);
  h.run();
  h.release(0);
  h.run();
  h.release(2);
  h.run();
  h.release(1);
  h.run();
  EXPECT_EQ(h.grants(), (std::vector<int>{0, 2, 1, 3}));
}

TEST(Mueller, HigherPriorityJumpsTheQueue) {
  MutexHarness h({.participants = 4, .algorithm = "mueller"});
  h.request(0);
  h.run();
  algo(h, 1).set_priority(0);
  algo(h, 2).set_priority(10);
  h.request(1);
  h.run();
  h.request(2);  // arrives later but outranks 1
  h.run();
  h.release(0);
  h.run();
  EXPECT_EQ(h.grants()[1], 2);
  h.release(2);
  h.run();
  EXPECT_EQ(h.grants()[2], 1);
}

TEST(Mueller, PriorityTravelsInRequestMessage) {
  MutexHarness h({.participants = 3, .algorithm = "mueller"});
  algo(h, 2).set_priority(7);
  h.request(0);
  h.run();
  h.request(2);
  h.run();
  ASSERT_EQ(algo(h, 0).queue().size(), 1u);
  EXPECT_EQ(algo(h, 0).queue()[0].rank, 2u);
  EXPECT_EQ(algo(h, 0).queue()[0].base, 7u);
}

TEST(Mueller, AgingLiftsBypassedRequests) {
  // Rank 1 asks once with priority 0 while ranks 2 and 3 hammer the CS
  // with priority 3. Aging (+1 per bypass) lifts rank 1 to effective
  // priority 3 after three bypasses; FIFO-among-equals (it is oldest)
  // then grants it — bounded bypass, no starvation.
  MutexHarness h({.participants = 5, .algorithm = "mueller"});
  h.set_auto_release(SimDuration::ms(1));
  algo(h, 2).set_priority(3);
  algo(h, 3).set_priority(3);
  h.drive(2, 12, SimDuration::us(100));
  h.drive(3, 12, SimDuration::us(100));
  h.request_at(SimDuration::ms(3), 1);  // low priority, joins mid-burst
  h.run();
  EXPECT_FALSE(h.safety_violated());
  const auto& g = h.grants();
  const auto pos1 =
      std::size_t(std::find(g.begin(), g.end(), 1) - g.begin());
  ASSERT_LT(pos1, g.size()) << "low-priority request starved";
  // At most ~5 high-priority grants may precede it once queued (gap 3 +
  // scheduling slack); far earlier than the 24 high-priority CS in total.
  EXPECT_LE(pos1, 9u);
}

TEST(Mueller, QueueAgesTravelWithToken) {
  MutexHarness h({.participants = 4, .algorithm = "mueller"});
  algo(h, 2).set_priority(5);
  algo(h, 3).set_priority(5);
  h.request(0);
  h.run();
  h.request(1);  // priority 0
  h.request(2);
  h.request(3);
  h.run();
  h.release(0);
  h.run();
  // 2 granted (first of the fives); the token's queue now shows 1 aged.
  ASSERT_EQ(h.grants()[1], 2);
  const auto& q = algo(h, 2).queue();
  ASSERT_EQ(q.size(), 2u);
  const auto& entry1 = q[0].rank == 1 ? q[0] : q[1];
  EXPECT_EQ(entry1.age, 1u);
}

TEST(Mueller, ChaseRoutingFindsMovedToken) {
  MutexHarness h({.participants = 4, .algorithm = "mueller"});
  h.request(3);
  h.run();
  h.release(3);
  h.run();
  // 1 still points at 0; request must chase 1→0→3.
  h.request(1);
  h.run();
  EXPECT_EQ(h.grants().back(), 1);
  EXPECT_TRUE(h.ep(1).holds_token());
}

TEST(MuellerDeathTest, NegativePriorityAborts) {
  MutexHarness h({.participants = 2, .algorithm = "mueller"});
  algo(h, 1).set_priority(-1);
  EXPECT_DEATH(h.request(1), "non-negative");
}

}  // namespace
}  // namespace gmx::testing
