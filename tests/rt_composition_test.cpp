// Composition under real threads: the paper's two-level architecture with
// OS-thread nodes and wall-clock latencies. Safety is checked with atomics
// at every grant; liveness by quiescence with full grant counts.
#include "gridmutex/rt/composition.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace gmx::rt {
namespace {

using namespace std::chrono_literals;

struct RtCompParam {
  std::string intra;
  std::string inter;
};

class RtComp : public ::testing::TestWithParam<RtCompParam> {};

std::string rtcomp_name(const ::testing::TestParamInfo<RtCompParam>& info) {
  return info.param.intra + "_" + info.param.inter;
}

TEST_P(RtComp, SafeAndLiveUnderRealThreads) {
  const auto& p = GetParam();
  constexpr int kCycles = 5;
  // 3 clusters x (1 coordinator + 2 apps) = 9 threads.
  RtRuntime rt(Topology::uniform(3, 3),
               std::make_shared<MatrixLatencyModel>(
                   MatrixLatencyModel::two_level(3, SimDuration::ms(2),
                                                 SimDuration::ms(10), 0.1)),
               99, /*time_scale=*/0.02);
  RtComposition comp(rt, {.intra_algorithm = p.intra,
                          .inter_algorithm = p.inter,
                          .seed = 99});
  ASSERT_TRUE(comp.start(5000ms));

  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  std::atomic<int> total_grants{0};
  const auto apps = comp.app_nodes();
  std::vector<std::atomic<int>> grants(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    RtMutexEndpoint* ep = &comp.app_mutex(apps[i]);
    ep->set_callbacks(MutexCallbacks{
        [&, ep, i] {
          if (in_cs.fetch_add(1) != 0) violations.fetch_add(1);
          total_grants.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(300));
          in_cs.fetch_sub(1);
          ep->release_cs();
          if (grants[i].fetch_add(1) + 1 < kCycles) ep->request_cs();
        },
        {},
    });
  }
  for (NodeId v : apps) comp.app_mutex(v).request_cs();

  ASSERT_TRUE(rt.wait_quiescent(60000ms))
      << "composition did not quiesce under real threads";
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(total_grants.load(), int(apps.size()) * kCycles);
  for (std::size_t i = 0; i < apps.size(); ++i)
    EXPECT_EQ(grants[i].load(), kCycles) << "app " << i;
  // Quiescent invariant: at most one privileged coordinator, nobody in CS.
  EXPECT_LE(comp.privileged_coordinators(), 1);
  EXPECT_EQ(in_cs.load(), 0);
  rt.shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, RtComp,
    ::testing::Values(RtCompParam{"naimi", "naimi"},
                      RtCompParam{"naimi", "martin"},
                      RtCompParam{"naimi", "suzuki"},
                      RtCompParam{"suzuki", "naimi"},
                      RtCompParam{"martin", "central"},
                      RtCompParam{"ricart", "naimi"},
                      RtCompParam{"naimi", "maekawa"}),
    rtcomp_name);

TEST(RtCompositionShape, AppNodesExcludeCoordinators) {
  RtRuntime rt(Topology::uniform(2, 3),
               std::make_shared<MatrixLatencyModel>(
                   MatrixLatencyModel::two_level(2, SimDuration::ms(1),
                                                 SimDuration::ms(5), 0.0)),
               1, 0.05);
  RtComposition comp(rt, {});
  EXPECT_EQ(comp.app_nodes().size(), 4u);
  EXPECT_EQ(comp.cluster_count(), 2u);
  ASSERT_TRUE(comp.start(std::chrono::milliseconds(3000)));
  for (ClusterId c = 0; c < 2; ++c)
    EXPECT_EQ(comp.coordinator(c).state(), Coordinator::State::kOut);
  rt.shutdown();
}

}  // namespace
}  // namespace gmx::rt
