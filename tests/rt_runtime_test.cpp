// Real-time runtime tests: latency emulation, per-pair FIFO, serial node
// queues, quiescence detection — and the headline property: every mutex
// algorithm stays safe and live under *real* thread concurrency.
#include "gridmutex/rt/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>

#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/rt/endpoint.hpp"

namespace gmx::rt {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const LatencyModel> fast_latency() {
  // 200 µs "LAN" / 1 ms "WAN" in wall-clock terms after 1e-1 scaling of
  // a 2/10 ms model.
  return std::make_shared<MatrixLatencyModel>(
      MatrixLatencyModel::two_level(2, SimDuration::ms(2),
                                    SimDuration::ms(10), 0.10));
}

TEST(RtRuntime, DeliversWithEmulatedDelay) {
  RtRuntime rt(Topology::uniform(2, 1), fast_latency(), 1, 0.1);
  std::atomic<bool> got{false};
  std::atomic<std::int64_t> elapsed_us{0};
  const auto t0 = std::chrono::steady_clock::now();
  rt.attach(1, 7, [&](const Message&) {
    elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    got = true;
  });
  Message m;
  m.src = 0;
  m.dst = 1;
  m.protocol = 7;
  rt.send(std::move(m));
  ASSERT_TRUE(rt.wait_quiescent(2000ms));
  EXPECT_TRUE(got.load());
  // 10 ms WAN scaled by 0.1 → ~1 ms ± jitter & scheduling slack.
  EXPECT_GE(elapsed_us.load(), 800);
  EXPECT_EQ(rt.messages_sent(), 1u);
  EXPECT_EQ(rt.messages_delivered(), 1u);
}

TEST(RtRuntime, PerPairFifoHolds) {
  RtRuntime rt(Topology::uniform(2, 1), fast_latency(), 3, 0.05);
  std::mutex mu;
  std::vector<std::uint16_t> order;
  rt.attach(1, 7, [&](const Message& m) {
    const std::lock_guard lock(mu);
    order.push_back(m.type);
  });
  for (std::uint16_t i = 0; i < 64; ++i) {
    Message m;
    m.src = 0;
    m.dst = 1;
    m.protocol = 7;
    m.type = i;
    rt.send(std::move(m));
  }
  ASSERT_TRUE(rt.wait_quiescent(3000ms));
  ASSERT_EQ(order.size(), 64u);
  for (std::uint16_t i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(RtRuntime, NodeQueueIsSerial) {
  // Tasks posted to one node never overlap, even under contention from
  // many producer threads.
  RtRuntime rt(Topology::uniform(1, 2), fast_latency(), 5, 0.05);
  std::atomic<int> inside{0};
  std::atomic<int> overlaps{0};
  std::atomic<int> done{0};
  constexpr int kTasks = 300;
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTasks / 3; ++i) {
        rt.post(0, [&] {
          if (inside.fetch_add(1) != 0) overlaps.fetch_add(1);
          inside.fetch_sub(1);
          done.fetch_add(1);
        });
      }
    });
  }
  for (auto& p : producers) p.join();
  ASSERT_TRUE(rt.wait_quiescent(3000ms));
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_EQ(overlaps.load(), 0);
}

TEST(RtRuntime, QuiescenceTimesOutWhileBusy) {
  RtRuntime rt(Topology::uniform(1, 1), fast_latency(), 7, 1.0);
  std::atomic<bool> release{false};
  rt.post(0, [&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  EXPECT_FALSE(rt.wait_quiescent(50ms));
  release = true;
  EXPECT_TRUE(rt.wait_quiescent(2000ms));
}

// --- the headline: real-concurrency mutex conformance -----------------------

struct RtMutexParam {
  std::string algorithm;
  std::uint64_t seed;
};

class RtMutex : public ::testing::TestWithParam<RtMutexParam> {};

std::string rt_name(const ::testing::TestParamInfo<RtMutexParam>& info) {
  return info.param.algorithm + "_s" + std::to_string(info.param.seed);
}

TEST_P(RtMutex, SafeAndLiveUnderRealThreads) {
  const auto& p = GetParam();
  constexpr int kNodes = 6;
  constexpr int kCycles = 8;
  RtRuntime rt(Topology::uniform(2, 3), fast_latency(), p.seed, 0.02);

  std::vector<NodeId> members(kNodes);
  for (int i = 0; i < kNodes; ++i) members[std::size_t(i)] = NodeId(i);
  std::vector<std::unique_ptr<RtMutexEndpoint>> eps;
  for (int r = 0; r < kNodes; ++r) {
    eps.push_back(std::make_unique<RtMutexEndpoint>(
        rt, 1, members, r, make_algorithm(p.algorithm),
        Rng(p.seed).fork(std::uint64_t(r))));
  }

  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  std::vector<std::atomic<int>> grants(kNodes);
  for (int r = 0; r < kNodes; ++r) {
    RtMutexEndpoint* ep = eps[std::size_t(r)].get();
    ep->set_callbacks(MutexCallbacks{
        [&, ep, r] {
          if (in_cs.fetch_add(1) != 0) violations.fetch_add(1);
          grants[std::size_t(r)].fetch_add(1);
          // Hold the CS briefly on the node thread, then leave.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          in_cs.fetch_sub(1);
          ep->release_cs();
          if (grants[std::size_t(r)].load() < kCycles) ep->request_cs();
        },
        {},
    });
  }

  const bool token = is_token_based(p.algorithm);
  for (auto& ep : eps)
    ep->init(token ? 0 : MutexAlgorithm::kNoHolder);
  ASSERT_TRUE(rt.wait_quiescent(std::chrono::milliseconds(2000)));
  for (auto& ep : eps) ep->request_cs();

  // Liveness with a generous wall-clock budget.
  ASSERT_TRUE(rt.wait_quiescent(std::chrono::milliseconds(30000)))
      << "runtime did not quiesce — probable lost grant";
  EXPECT_EQ(violations.load(), 0) << "mutual exclusion violated";
  for (int r = 0; r < kNodes; ++r)
    EXPECT_EQ(grants[std::size_t(r)].load(), kCycles) << "rank " << r;
  rt.shutdown();
}

std::vector<RtMutexParam> rt_space() {
  std::vector<RtMutexParam> out;
  for (const auto& a : algorithm_names()) out.push_back({a, 42});
  out.push_back({"naimi", 7});
  out.push_back({"suzuki", 7});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RtMutex,
                         ::testing::ValuesIn(rt_space()), rt_name);

}  // namespace
}  // namespace gmx::rt
