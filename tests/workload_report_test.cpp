// Table and CSV reporting tests.
#include "gridmutex/workload/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gmx::testing {
namespace {

SeriesPoint point(const std::string& series, double rho, double obtaining_ms,
                  std::uint64_t inter_msgs) {
  SeriesPoint p;
  p.series = series;
  p.rho = rho;
  p.result.label = series;
  p.result.rho = rho;
  p.result.total_cs = 100;
  for (int i = 0; i < 100; ++i)
    p.result.obtaining.add(SimDuration::ms_f(obtaining_ms));
  p.result.messages.inter_cluster = inter_msgs;
  p.result.messages.sent = inter_msgs * 2;
  return p;
}

TEST(TableTest, AlignsColumns) {
  Table t({"rho", "Naimi-Naimi", "Naimi-Martin"});
  t.add_row({"90", "915.31", "913.40"});
  t.add_row({"1080", "9.1", "12.2"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("rho"), std::string::npos);
  EXPECT_NE(s.find("Naimi-Martin"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // All lines equal length (alignment).
  std::istringstream lines(s);
  std::string line;
  std::size_t len = 0;
  while (std::getline(lines, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
}

TEST(TableTest, NumFormatsDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(1080, 0), "1080");
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(MetricTable, RowsAreRhosColumnsAreSeries) {
  std::vector<SeriesPoint> pts = {
      point("A", 90, 10.0, 100),
      point("B", 90, 20.0, 200),
      point("A", 540, 1.0, 300),
      point("B", 540, 2.0, 400),
  };
  std::ostringstream out;
  print_metric_table(out, "Obtaining time (ms)", pts,
                     [](const ExperimentResult& r) { return r.obtaining_ms(); });
  const std::string s = out.str();
  EXPECT_NE(s.find("== Obtaining time (ms) =="), std::string::npos);
  EXPECT_NE(s.find("A"), std::string::npos);
  EXPECT_NE(s.find("B"), std::string::npos);
  EXPECT_NE(s.find("90"), std::string::npos);
  EXPECT_NE(s.find("540"), std::string::npos);
  EXPECT_NE(s.find("10.00"), std::string::npos);
  EXPECT_NE(s.find("2.00"), std::string::npos);
}

TEST(MetricTable, MissingCellsRenderDash) {
  std::vector<SeriesPoint> pts = {
      point("A", 90, 10.0, 100),
      point("B", 540, 2.0, 400),  // no B at 90, no A at 540
  };
  std::ostringstream out;
  print_metric_table(out, "t", pts,
                     [](const ExperimentResult& r) { return r.obtaining_ms(); });
  EXPECT_NE(out.str().find('-'), std::string::npos);
}

TEST(Csv, HeaderAndRows) {
  std::vector<SeriesPoint> pts = {point("Naimi-Naimi", 90, 915.3, 4800)};
  std::ostringstream out;
  write_csv(out, pts);
  const std::string s = out.str();
  EXPECT_EQ(s.find("series,rho,total_cs,obtaining_ms"), 0u);
  EXPECT_NE(s.find("Naimi-Naimi,90,100,915.3"), std::string::npos);
  // exactly 2 lines
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

TEST(Csv, FaultAndRecoveryColumnsAppend) {
  SeriesPoint p = point("Suzuki (flat)", 180, 12.0, 10);
  p.result.messages.dropped = 7;
  p.result.messages.duplicated = 2;
  p.result.messages.retransmitted = 5;
  p.result.faults_injected = 3;
  p.result.cs_under_faults = 40;
  p.result.token_losses = 1;
  p.result.token_regenerations = 1;
  p.result.coordinator_failovers = 2;
  p.result.recovery_latency.add(SimDuration::ms(800));
  p.result.stalled = true;
  std::vector<SeriesPoint> pts = {p};
  std::ostringstream out;
  write_csv(out, pts);
  const std::string s = out.str();
  EXPECT_NE(s.find("retransmitted"), std::string::npos);
  EXPECT_NE(s.find("token_regenerations"), std::string::npos);
  EXPECT_NE(s.find("recovery_ms,stalled"), std::string::npos);
  // dropped,duplicated,retransmitted,faults_injected,cs_under_faults,
  // token_losses,token_regenerations,stranded_repairs,false_alarms,
  // coordinator_failovers,recovery_ms,stalled
  EXPECT_NE(s.find(",7,2,5,3,40,1,1,0,0,2,800,1\n"), std::string::npos);
}

}  // namespace
}  // namespace gmx::testing
