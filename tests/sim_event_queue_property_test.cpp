// Randomized property test of the EventQueue against a reference model.
//
// The model is a std::multimap<(time, seq), id> — the specification of the
// queue's strict (time, scheduling-order) total order — plus a live-id set.
// A long random mix of push/pop/cancel operations must agree with the model
// exactly:
//   - pop order matches the model (same-time events fire in push order);
//   - cancel succeeds iff the model holds the id live, and a cancelled or
//     fired id never cancels again (false on reuse attempts);
//   - ids never collide across the run, even as the slab recycles slots;
//   - the slab footprint stays bounded by the concurrency high-water mark —
//     the historic tombstone-set leak (cancel entries surviving out-of-order
//     pops forever) would show up here as unbounded growth.
#include "gridmutex/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>
#include <vector>

#include "gridmutex/sim/random.hpp"

namespace gmx {
namespace {

struct Model {
  // (time ns, push sequence) -> EventId, mirroring the queue's total order.
  std::multimap<std::pair<std::int64_t, std::uint64_t>, EventId> order;
  std::unordered_set<EventId> live;

  void push(std::int64_t t, std::uint64_t seq, EventId id) {
    order.emplace(std::make_pair(t, seq), id);
    live.insert(id);
  }
  bool cancel(EventId id) {
    if (live.erase(id) == 0) return false;
    for (auto it = order.begin(); it != order.end(); ++it) {
      if (it->second == id) {
        order.erase(it);
        return true;
      }
    }
    ADD_FAILURE() << "model corruption: live id missing from order";
    return false;
  }
  EventId pop() {
    EXPECT_FALSE(order.empty());
    const auto it = order.begin();
    const EventId id = it->second;
    order.erase(it);
    live.erase(id);
    return id;
  }
};

TEST(EventQueueProperty, AgreesWithReferenceModel) {
  EventQueue q;
  Model model;
  Rng rng(0xC0FFEE);

  std::vector<EventId> issued;        // every id ever returned by push()
  std::unordered_set<EventId> seen;   // id-uniqueness over the whole run
  std::vector<EventId> cancellable;   // ids we may try to cancel (any state)
  std::uint64_t seq = 0;
  std::size_t max_live = 0;
  int fired = 0;

  const int kOps = 20'000;
  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t dice = rng.next_below(10);
    if (dice < 5 || q.empty()) {
      // Push. Times collide deliberately (range 0..63) so same-time FIFO
      // ordering is exercised constantly.
      const auto t = std::int64_t(rng.next_below(64));
      const EventId id = q.push(SimTime::from_ns(t), [&fired] { ++fired; });
      ASSERT_NE(id, kInvalidEventId);
      ASSERT_TRUE(seen.insert(id).second)
          << "id reuse collision after " << op << " ops";
      model.push(t, seq++, id);
      issued.push_back(id);
      cancellable.push_back(id);
    } else if (dice < 8) {
      // Pop and compare against the model's expected id.
      const EventId expect = model.pop();
      EventQueue::Entry e = q.pop();
      ASSERT_EQ(e.id, expect) << "pop order diverged after " << op << " ops";
      e.fn();
    } else {
      // Cancel a random id — possibly live, possibly fired or already
      // cancelled (the model knows which).
      const EventId victim =
          cancellable[rng.next_below(cancellable.size())];
      const bool expect = model.cancel(victim);
      EXPECT_EQ(q.cancel(victim), expect)
          << "cancel disposition diverged after " << op << " ops";
    }
    ASSERT_EQ(q.size(), model.order.size());
    ASSERT_EQ(q.empty(), model.order.empty());
    max_live = std::max(max_live, q.size());
  }

  // Drain fully; order must match to the end.
  while (!model.order.empty()) {
    const EventId expect = model.pop();
    ASSERT_EQ(q.pop().id, expect);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_GT(fired, 0);

  // Slab boundedness: slots track peak concurrency, not operation count.
  // (The pre-rewrite tombstone set could retain an entry per cancelled
  // event forever when pops surfaced out of order.)
  EXPECT_LE(q.slab_slots(), max_live);
  EXPECT_EQ(q.total_pushed(), issued.size());
}

TEST(EventQueueProperty, CancelAfterFireIsFalseForever) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(q.push(SimTime::from_ns(i), [] {}));
  // Fire everything, then cancel each id repeatedly: always false, and the
  // slots recycled underneath must not be disturbed by the stale ids.
  while (!q.empty()) q.pop();
  std::vector<EventId> fresh;
  for (int i = 0; i < 100; ++i)
    fresh.push_back(q.push(SimTime::from_ns(i), [] {}));
  for (const EventId id : ids) {
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
  }
  EXPECT_EQ(q.size(), 100u);  // stale cancels touched nothing
  for (const EventId id : fresh) EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueProperty, SlabStaysBoundedUnderOutOfOrderCancelPop) {
  // The regression shape of the historic leak: schedule a far-future event,
  // cancel it, then pop an earlier one — repeated forever. The tombstone-set
  // implementation accumulated one entry per cycle; the slab must stay at
  // the cycle's tiny working set.
  EventQueue q;
  for (int cycle = 0; cycle < 10'000; ++cycle) {
    const EventId late =
        q.push(SimTime::from_ns(1'000'000'000 + cycle), [] {});
    q.push(SimTime::from_ns(cycle), [] {});
    ASSERT_TRUE(q.cancel(late));
    q.pop();
    ASSERT_TRUE(q.empty());
  }
  EXPECT_LE(q.slab_slots(), 4u);
}

TEST(EventQueueProperty, SameTimeFifoAcrossSlotReuse) {
  // Slot recycling must never perturb same-time ordering: seq, not slot or
  // id, is the tie-break.
  EventQueue q;
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<EventId> batch;
    for (int i = 0; i < 20; ++i)
      batch.push_back(q.push(SimTime::from_ns(42), [] {}));
    for (std::size_t i = 0; i < batch.size(); ++i) {
      SCOPED_TRACE(i);
      ASSERT_EQ(q.pop().id, batch[i]);
    }
  }
}

}  // namespace
}  // namespace gmx
