// Service-level resilience (ISSUE 7): deadline-based acquire and its edge
// cases, cancellation (including the granted race and the holder refusal),
// admission control with both shed policies, backoff retry, client churn,
// lock leases with fencing epochs, revocation of unresponsive holders, and
// the ProtocolChecker's fencing-monotonicity / revocation-epoch rules.
#include "gridmutex/service/lock_service.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gridmutex/analysis/protocol_checker.hpp"
#include "gridmutex/fault/injector.hpp"
#include "gridmutex/net/latency.hpp"
#include "gridmutex/service/experiment.hpp"

namespace gmx::testing {
namespace {

std::shared_ptr<const LatencyModel> small_latency(std::uint32_t clusters) {
  return std::make_shared<MatrixLatencyModel>(MatrixLatencyModel::two_level(
      clusters, SimDuration::ms_f(0.5), SimDuration::ms(5), 0.0));
}

struct ServiceHarness {
  explicit ServiceHarness(LockServiceConfig cfg, std::uint32_t clusters = 2,
                          std::uint32_t apps = 2)
      : topo(Composition::make_topology(clusters, apps)),
        net(sim, topo, small_latency(clusters), Rng(7)),
        svc(net, std::move(cfg)) {
    svc.start();
  }

  Simulator sim;
  Topology topo;
  Network net;
  LockService svc;
};

LockServiceConfig plain_cfg(std::uint32_t locks = 1) {
  LockServiceConfig cfg;
  cfg.locks = locks;
  cfg.batching = false;
  return cfg;
}

// Collects ticket outcomes so tests can assert terminal resolutions.
struct Outcomes {
  std::vector<AcquireOutcome> seen;
  std::vector<std::uint64_t> fences;
  ClientSession::ResultCallback cb() {
    return [this](const AcquireResult& r) {
      seen.push_back(r.outcome);
      fences.push_back(r.fence);
    };
  }
  /// Records, and on a grant releases shortly after (keeps queues moving).
  ClientSession::ResultCallback releasing_cb(Simulator& sim, ClientSession& s,
                                             LockId lock) {
    return [this, &sim, &s, lock](const AcquireResult& r) {
      seen.push_back(r.outcome);
      fences.push_back(r.fence);
      if (r.outcome == AcquireOutcome::kGranted)
        sim.schedule_after(SimDuration::ms(1), [&s, lock] { s.release(lock); });
    };
  }
};

TEST(Resilience, OutcomeAndPolicyStrings) {
  EXPECT_EQ(to_string(AcquireOutcome::kGranted), "granted");
  EXPECT_EQ(to_string(AcquireOutcome::kDeadlineExpired), "deadline-expired");
  EXPECT_EQ(to_string(AcquireOutcome::kCancelled), "cancelled");
  EXPECT_EQ(to_string(AcquireOutcome::kShed), "shed");
  EXPECT_EQ(to_string(AcquireOutcome::kSessionDown), "session-down");
  EXPECT_EQ(to_string(ShedPolicy::kRejectNewest), "reject-newest");
  EXPECT_EQ(to_string(ShedPolicy::kRejectByDeadline), "reject-by-deadline");
  EXPECT_FALSE(ResilienceConfig{}.any()) << "default config must be inert";
}

TEST(AcquireDeadline, ZeroAndNegativeDeadlinesExpireWithoutRequesting) {
  ServiceHarness h(plain_cfg());
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  s.acquire(0, AcquireOptions{.deadline = SimDuration::ns(0)}, out.cb());
  s.acquire(0, AcquireOptions{.deadline = SimDuration::ms(-3)}, out.cb());
  h.sim.run();

  ASSERT_EQ(out.seen.size(), 2u);
  EXPECT_EQ(out.seen[0], AcquireOutcome::kDeadlineExpired);
  EXPECT_EQ(out.seen[1], AcquireOutcome::kDeadlineExpired);
  EXPECT_EQ(s.deadline_misses(), 2u);
  EXPECT_EQ(s.acquisitions(0), 0u) << "never reached the algorithm";
  EXPECT_TRUE(s.idle());
}

TEST(AcquireDeadline, ExpiresWhileQueuedBehindLongHolder) {
  ServiceHarness h(plain_cfg());
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    h.sim.schedule_after(SimDuration::ms(50), [&] { s.release(0); });
  });
  // Queued behind a 50 ms hold with a 10 ms deadline: must expire.
  s.acquire(0, AcquireOptions{.deadline = SimDuration::ms(10)}, out.cb());
  h.sim.run();

  ASSERT_EQ(out.seen.size(), 1u);
  EXPECT_EQ(out.seen[0], AcquireOutcome::kDeadlineExpired);
  EXPECT_EQ(s.deadline_misses(), 1u);
  EXPECT_EQ(s.acquisitions(0), 1u) << "expired ticket never got the lock";
  EXPECT_TRUE(s.idle());
}

TEST(AcquireDeadline, ShorterThanOneRttAbandonsAndAutoReleasesTheGrant) {
  // Lock 1 is homed on cluster 1; a cluster-0 session needs an inter-cluster
  // round trip (>= 10 ms here) to win it. A 1 ms deadline expires while the
  // request is on the wire — the granted race, resolved by auto-release.
  ServiceHarness h(plain_cfg(2));
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  s.acquire(1, AcquireOptions{.deadline = SimDuration::ms(1)}, out.cb());
  h.sim.run();

  ASSERT_EQ(out.seen.size(), 1u);
  EXPECT_EQ(out.seen[0], AcquireOutcome::kDeadlineExpired);
  EXPECT_EQ(s.abandoned_grants(), 1u)
      << "the grant arrived after expiry and was auto-released";
  EXPECT_FALSE(s.holding(1));
  EXPECT_TRUE(s.idle());

  // The auto-release left the lock serviceable.
  Outcomes again;
  s.acquire(1, AcquireOptions{}, again.cb());
  h.sim.run();
  ASSERT_EQ(again.seen.size(), 1u);
  EXPECT_EQ(again.seen[0], AcquireOutcome::kGranted);
  s.release(1);
  h.sim.run();
}

TEST(Cancel, QueuedTicketResolvesCancelled) {
  ServiceHarness h(plain_cfg());
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    h.sim.schedule_after(SimDuration::ms(5), [&] { s.release(0); });
  });
  const TicketId queued = s.acquire(0, AcquireOptions{}, out.cb());
  h.sim.schedule_after(SimDuration::ms(1),
                       [&] { EXPECT_TRUE(s.cancel(0, queued)); });
  h.sim.run();

  ASSERT_EQ(out.seen.size(), 1u);
  EXPECT_EQ(out.seen[0], AcquireOutcome::kCancelled);
  EXPECT_EQ(s.cancels(), 1u);
  EXPECT_EQ(s.acquisitions(0), 1u);
  EXPECT_TRUE(s.idle());
}

TEST(Cancel, RacingTheGrantAutoReleases) {
  ServiceHarness h(plain_cfg(2));
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  // Remote lock: the request is on the wire for >= 10 ms. Cancel at 1 ms —
  // the algorithm request cannot be recalled, so the eventual grant is
  // auto-released without ever reaching a client.
  const TicketId t = s.acquire(1, AcquireOptions{}, out.cb());
  h.sim.schedule_after(SimDuration::ms(1),
                       [&] { EXPECT_TRUE(s.cancel(1, t)); });
  h.sim.run();

  ASSERT_EQ(out.seen.size(), 1u);
  EXPECT_EQ(out.seen[0], AcquireOutcome::kCancelled);
  EXPECT_EQ(s.abandoned_grants(), 1u);
  EXPECT_FALSE(s.holding(1));
  EXPECT_TRUE(s.idle());
}

TEST(Cancel, OfTheCurrentHolderIsRefusedNeverASilentRelease) {
  ServiceHarness h(plain_cfg());
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  TicketId t = kInvalidTicket;
  bool granted = false;
  t = s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    granted = true;
  });
  h.sim.run();
  ASSERT_TRUE(granted);
  ASSERT_TRUE(s.holding(0));

  EXPECT_FALSE(s.cancel(0, t)) << "cancelling a granted ticket is refused";
  EXPECT_TRUE(s.holding(0)) << "and must not silently release";
  EXPECT_EQ(s.cancels(), 0u);
  s.release(0);
  h.sim.run();
  EXPECT_TRUE(s.idle());
}

TEST(Admission, RejectNewestShedsWhenPendingQueueIsFull) {
  LockServiceConfig cfg = plain_cfg();
  // max_pending counts the requesting head: head + one queued ticket.
  cfg.resilience.admission = {.max_pending = 2,
                              .policy = ShedPolicy::kRejectNewest};
  ServiceHarness h(cfg);
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    h.sim.schedule_after(SimDuration::ms(5), [&] { s.release(0); });
  });
  s.acquire(0, AcquireOptions{}, out.releasing_cb(h.sim, s, 0));  // queued
  s.acquire(0, AcquireOptions{}, out.cb());  // newest: shed
  h.sim.run();

  // Outcomes arrive in delivery order: the shed resolves immediately, the
  // queued ticket only once the holder releases.
  ASSERT_EQ(out.seen.size(), 2u);
  EXPECT_EQ(out.seen[0], AcquireOutcome::kShed) << "newest rejected";
  EXPECT_EQ(out.seen[1], AcquireOutcome::kGranted) << "queued one served";
  EXPECT_EQ(s.sheds(), 1u);
  EXPECT_TRUE(s.idle());
}

TEST(Admission, RejectByDeadlineEvictsTheLatestDeadline) {
  LockServiceConfig cfg = plain_cfg();
  // Head + two queued tickets fit; the fourth arrival must shed someone.
  cfg.resilience.admission = {.max_pending = 3,
                              .policy = ShedPolicy::kRejectByDeadline};
  ServiceHarness h(cfg);
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes lax, tight, urgent;
  s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    h.sim.schedule_after(SimDuration::ms(5), [&] { s.release(0); });
  });
  s.acquire(0, AcquireOptions{.deadline = SimDuration::ms(500)},
            lax.releasing_cb(h.sim, s, 0));
  s.acquire(0, AcquireOptions{.deadline = SimDuration::ms(400)},
            tight.releasing_cb(h.sim, s, 0));
  // Queue full. An urgent newcomer evicts the laxest queued ticket...
  s.acquire(0, AcquireOptions{.deadline = SimDuration::ms(100)},
            urgent.releasing_cb(h.sim, s, 0));
  h.sim.run();

  ASSERT_EQ(lax.seen.size(), 1u);
  EXPECT_EQ(lax.seen[0], AcquireOutcome::kShed) << "laxest deadline evicted";
  ASSERT_EQ(tight.seen.size(), 1u);
  EXPECT_EQ(tight.seen[0], AcquireOutcome::kGranted);
  ASSERT_EQ(urgent.seen.size(), 1u);
  EXPECT_EQ(urgent.seen[0], AcquireOutcome::kGranted);
  EXPECT_EQ(s.sheds(), 1u);
  EXPECT_TRUE(s.idle());
}

TEST(Admission, RejectByDeadlineShedsALaxNewcomerInstead) {
  LockServiceConfig cfg = plain_cfg();
  cfg.resilience.admission = {.max_pending = 2,
                              .policy = ShedPolicy::kRejectByDeadline};
  ServiceHarness h(cfg);
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes queued, newcomer;
  s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    h.sim.schedule_after(SimDuration::ms(5), [&] { s.release(0); });
  });
  s.acquire(0, AcquireOptions{.deadline = SimDuration::ms(100)},
            queued.releasing_cb(h.sim, s, 0));
  s.acquire(0, AcquireOptions{.deadline = SimDuration::ms(900)},
            newcomer.cb());
  h.sim.run();

  ASSERT_EQ(newcomer.seen.size(), 1u);
  EXPECT_EQ(newcomer.seen[0], AcquireOutcome::kShed)
      << "a newcomer with the laxer deadline is the one shed";
  ASSERT_EQ(queued.seen.size(), 1u);
  EXPECT_EQ(queued.seen[0], AcquireOutcome::kGranted);
  EXPECT_TRUE(s.idle());
}

TEST(Retry, ShedTicketBacksOffAndEventuallyLands) {
  LockServiceConfig cfg = plain_cfg();
  cfg.resilience.admission = {.max_pending = 1,
                              .policy = ShedPolicy::kRejectNewest};
  cfg.resilience.retry = {.attempts = 5,
                          .base = SimDuration::ms(20),
                          .multiplier = 2.0,
                          .cap = SimDuration::ms(200),
                          .jitter = 0.5};
  ServiceHarness h(cfg);
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    h.sim.schedule_after(SimDuration::ms(5), [&] { s.release(0); });
  });
  s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    h.sim.schedule_after(SimDuration::ms(5), [&] { s.release(0); });
  });
  // Shed on first admission, retried with backoff once the queue drains.
  s.acquire(0, AcquireOptions{}, out.releasing_cb(h.sim, s, 0));
  h.sim.run();

  ASSERT_EQ(out.seen.size(), 1u);
  EXPECT_EQ(out.seen[0], AcquireOutcome::kGranted);
  EXPECT_GE(s.retries(), 1u);
  EXPECT_GE(s.sheds(), 1u) << "the shed that triggered the retry";
  EXPECT_TRUE(s.idle());
}

TEST(Churn, CrashFailsQueuedTicketsAndRestartRecovers) {
  // A process-level crash: the network stays up (taking the node down too
  // would lose the in-flight token, which is the recovery layer's job —
  // covered by the chaos campaigns). The session fails its queue, abandons
  // the in-flight request, and serves again after restart().
  ServiceHarness h(plain_cfg(2));
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  s.acquire(1, AcquireOptions{}, out.cb());  // remote: in flight a while
  h.sim.schedule_after(SimDuration::ms(1), [&] { s.crash(); });
  h.sim.schedule_after(SimDuration::ms(40), [&] { s.restart(); });
  h.sim.run();

  ASSERT_EQ(out.seen.size(), 1u);
  EXPECT_EQ(out.seen[0], AcquireOutcome::kSessionDown);
  EXPECT_FALSE(s.down());
  EXPECT_TRUE(s.idle()) << "the abandoned in-flight grant was auto-released";
  EXPECT_EQ(s.abandoned_grants(), 1u);

  Outcomes again;
  s.acquire(1, AcquireOptions{}, again.cb());
  h.sim.run();
  ASSERT_EQ(again.seen.size(), 1u);
  EXPECT_EQ(again.seen[0], AcquireOutcome::kGranted);
  s.release(1);
  h.sim.run();
}

// ---- leases & fencing ----

LockServiceConfig leased_cfg() {
  LockServiceConfig cfg = plain_cfg();
  cfg.resilience.leases = true;
  cfg.resilience.lease = {.renew_interval = SimDuration::ms(20),
                          .ttl = SimDuration::ms(100),
                          .drain = SimDuration::ms(200)};
  return cfg;
}

TEST(Lease, ProtocolReservedAfterEveryLockBlockOnlyWhenEnabled) {
  LockServiceConfig cfg = leased_cfg();
  cfg.locks = 3;
  ServiceHarness on(cfg, /*clusters=*/2);
  EXPECT_EQ(on.svc.lease_protocol(), ServiceConfig::lease_protocol(3, 2));
  ASSERT_NE(on.svc.leases(), nullptr);
  EXPECT_EQ(on.svc.leases()->protocol(), on.svc.lease_protocol());

  ServiceHarness off(plain_cfg(3), /*clusters=*/2);
  EXPECT_EQ(off.svc.lease_protocol(), 0u);
  EXPECT_EQ(off.svc.leases(), nullptr);
}

TEST(Lease, FencingTokensAreStrictlyMonotoneAcrossHolders) {
  ServiceHarness h(leased_cfg());
  const std::vector<NodeId>& apps = h.svc.app_nodes();
  ClientSession& s1 = h.svc.session(apps[0]);
  ClientSession& s2 = h.svc.session(apps[1]);
  Outcomes out;
  for (int round = 0; round < 2; ++round) {
    for (ClientSession* s : {&s1, &s2}) {
      h.sim.schedule_after(SimDuration::ms(1), [&, s] {
        s->acquire(0, AcquireOptions{}, [&, s](const AcquireResult& r) {
          ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
          out.fences.push_back(r.fence);
          EXPECT_EQ(s->current_fence(0), r.fence);
          h.sim.schedule_after(SimDuration::ms(3), [&, s] { s->release(0); });
        });
      });
    }
  }
  h.sim.run();

  ASSERT_EQ(out.fences.size(), 4u);
  for (std::size_t i = 0; i < out.fences.size(); ++i)
    EXPECT_EQ(out.fences[i], i + 1) << "fences count up from 1, no gaps";
  EXPECT_EQ(h.svc.leases()->fence_of(0), 4u);
  EXPECT_EQ(h.svc.leases()->stats().revocations, 0u)
      << "healthy holders are never revoked";
  EXPECT_GT(h.svc.leases()->stats().renews_received, 0u);
}

TEST(Lease, StaleFenceReleaseIsRefusedAndCounted) {
  ServiceHarness h(leased_cfg());
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  std::uint64_t fence = 0;
  s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    fence = r.fence;
  });
  h.sim.run_until(SimTime::zero() + SimDuration::ms(10));
  ASSERT_TRUE(s.holding(0));

  EXPECT_FALSE(s.release_if_current(0, fence + 1)) << "wrong fence refused";
  EXPECT_TRUE(s.holding(0));
  EXPECT_EQ(s.stale_releases(), 1u);
  EXPECT_TRUE(s.release_if_current(0, fence));
  h.sim.run();
  EXPECT_TRUE(s.idle());
}

TEST(Lease, RenewalLossRevokesALiveHolderWhoDrainsGracefully) {
  // Drop every renewal after the first: the authority's TTL expires, it
  // opens a revocation epoch and sends REVOKE; the live holder releases
  // inside the drain window; the next grant carries a larger fence.
  ServiceHarness h(leased_cfg());
  const ProtocolId lease_p = h.svc.lease_protocol();
  FaultPlan plan;
  // Bounded window: the replacement holder's renewals (from ~103 ms) must
  // resume before ITS ttl expires, or a second revocation fires.
  plan.drop_messages(lease_p, LeaseManager::kRenewType, 1000,
                     SimTime::zero() + SimDuration::ms(5),
                     SimTime::zero() + SimDuration::ms(120));
  FaultInjector injector(h.net, plan);
  injector.arm();

  const std::vector<NodeId>& apps = h.svc.app_nodes();
  ClientSession& s1 = h.svc.session(apps[0]);
  ClientSession& s2 = h.svc.session(apps[1]);
  Outcomes first, second;
  s1.acquire(0, AcquireOptions{}, first.cb());  // holds "forever"
  h.sim.schedule_after(SimDuration::ms(50),
                       [&] { s2.acquire(0, AcquireOptions{}, second.cb()); });
  h.sim.run_until(SimTime::zero() + SimDuration::sec(2));

  const LeaseManager::Stats& ls = h.svc.leases()->stats();
  EXPECT_EQ(ls.revocations, 1u);
  EXPECT_EQ(ls.drain_releases, 1u) << "live holder honored the REVOKE";
  EXPECT_EQ(ls.forced_releases, 0u);
  EXPECT_EQ(s1.forced_releases(), 1u);
  EXPECT_FALSE(s1.holding(0));
  ASSERT_EQ(second.seen.size(), 1u);
  EXPECT_EQ(second.seen[0], AcquireOutcome::kGranted);
  ASSERT_EQ(first.fences.size(), 1u);
  EXPECT_GT(second.fences[0], first.fences[0])
      << "the replacement grant fences out the revoked holder";
  EXPECT_FALSE(h.svc.leases()->revoking(0)) << "epoch closed";
  s2.release(0);
  h.sim.run_until(SimTime::zero() + SimDuration::sec(3));
}

TEST(Lease, RenewalDuringDrainRescindsTheRevocation) {
  // Renewals are lost for a bounded window, long enough to expire the TTL
  // but short enough that a renewal lands inside the drain window. The
  // REVOKE must be lost too (a live holder that receives it drains
  // gracefully on the spot) — this is the healed-partition shape: both
  // directions dark, then traffic resumes and the authority rescinds.
  ServiceHarness h(leased_cfg());
  FaultPlan plan;
  plan.drop_messages(h.svc.lease_protocol(), LeaseManager::kRenewType, 1000,
                     SimTime::zero() + SimDuration::ms(5),
                     SimTime::zero() + SimDuration::ms(170));
  plan.drop_messages(h.svc.lease_protocol(), LeaseManager::kRevokeType, 1000,
                     SimTime::zero(), SimTime::zero() + SimDuration::ms(250));
  FaultInjector injector(h.net, plan);
  injector.arm();

  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  s.acquire(0, AcquireOptions{}, out.cb());
  h.sim.schedule_after(SimDuration::ms(400), [&] { s.release(0); });
  h.sim.run();

  const LeaseManager::Stats& ls = h.svc.leases()->stats();
  EXPECT_EQ(ls.revocations, 1u) << "TTL did expire";
  EXPECT_EQ(ls.drain_releases, 0u);
  EXPECT_EQ(ls.forced_releases, 0u);
  EXPECT_EQ(s.forced_releases(), 0u) << "holder never disturbed";
  EXPECT_EQ(h.svc.leases()->fence_of(0), 1u) << "no replacement grant";
  EXPECT_TRUE(s.idle());
}

TEST(Lease, RejectTelemetryReachesTheAuthority) {
  LockServiceConfig cfg = leased_cfg();
  cfg.resilience.admission = {.max_pending = 2,
                              .policy = ShedPolicy::kRejectNewest};
  ServiceHarness h(cfg);
  ClientSession& s = h.svc.session(h.svc.app_nodes()[0]);
  Outcomes out;
  TicketId cancel_me = kInvalidTicket;
  s.acquire(0, AcquireOptions{}, [&](const AcquireResult& r) {
    ASSERT_EQ(r.outcome, AcquireOutcome::kGranted);
    h.sim.schedule_after(SimDuration::ms(5), [&] { s.release(0); });
  });
  cancel_me = s.acquire(0, AcquireOptions{}, out.cb());
  s.acquire(0, AcquireOptions{}, out.cb());  // shed (queue full)
  h.sim.schedule_after(SimDuration::ms(1),
                       [&] { EXPECT_TRUE(s.cancel(0, cancel_me)); });
  h.sim.run();

  const LeaseManager::Stats& ls = h.svc.leases()->stats();
  EXPECT_EQ(ls.shed_reports, 1u);
  EXPECT_EQ(ls.cancel_reports, 1u);
  EXPECT_EQ(h.svc.leases()->shed_reports_for(0), 1u);
  EXPECT_EQ(h.svc.leases()->cancel_reports_for(0), 1u);
}

// ---- ProtocolChecker: fencing monotonicity + revocation epochs ----

struct CheckerFixture {
  Simulator sim;
  ProtocolChecker checker{sim, CheckerOptions{.abort_on_violation = false}};
  CheckerFixture() { checker.attach_lease_domain("lock[0]"); }
  [[nodiscard]] std::size_t violations() const {
    return checker.violations().size();
  }
};

TEST(CheckerLease, LegalRevocationSequencePassesClean) {
  CheckerFixture f;
  f.checker.report_lease_grant("lock[0]", 1);
  f.checker.report_lease_release("lock[0]", 1, /*voluntary=*/true);
  f.checker.report_lease_grant("lock[0]", 2);
  f.checker.note_revocation("lock[0]", true);
  f.checker.report_lease_release("lock[0]", 2, /*voluntary=*/false);
  f.checker.note_revocation("lock[0]", false);
  f.checker.report_lease_grant("lock[0]", 3);
  EXPECT_TRUE(f.checker.ok()) << f.checker.summary();
}

TEST(CheckerLease, FenceRegressionIsFlagged) {
  CheckerFixture f;
  f.checker.report_lease_grant("lock[0]", 5);
  f.checker.report_lease_release("lock[0]", 5, true);
  f.checker.report_lease_grant("lock[0]", 4);  // regression
  ASSERT_EQ(f.violations(), 1u);
  EXPECT_EQ(f.checker.violations()[0].kind,
            ProtocolChecker::Violation::Kind::kFencingRegression);
}

TEST(CheckerLease, EqualFenceIsARegressionToo) {
  CheckerFixture f;
  f.checker.report_lease_grant("lock[0]", 7);
  f.checker.report_lease_release("lock[0]", 7, true);
  f.checker.report_lease_grant("lock[0]", 7);  // strictly monotone required
  ASSERT_EQ(f.violations(), 1u);
  EXPECT_EQ(f.checker.violations()[0].kind,
            ProtocolChecker::Violation::Kind::kFencingRegression);
}

TEST(CheckerLease, StaleFencedReleaseIsFlagged) {
  CheckerFixture f;
  f.checker.report_lease_grant("lock[0]", 3);
  f.checker.report_lease_release("lock[0]", 2, true);  // wrong fence executed
  ASSERT_GE(f.violations(), 1u);
  EXPECT_EQ(f.checker.violations()[0].kind,
            ProtocolChecker::Violation::Kind::kFencingRegression);
}

TEST(CheckerLease, InvoluntaryReleaseOutsideAnEpochIsFlagged) {
  CheckerFixture f;
  f.checker.report_lease_grant("lock[0]", 1);
  f.checker.report_lease_release("lock[0]", 1, /*voluntary=*/false);
  ASSERT_EQ(f.violations(), 1u);
  EXPECT_EQ(f.checker.violations()[0].kind,
            ProtocolChecker::Violation::Kind::kRevocationOverlap);
}

TEST(CheckerLease, GrantOverAnActiveHoldIsFlagged) {
  CheckerFixture f;
  f.checker.report_lease_grant("lock[0]", 1);
  f.checker.report_lease_grant("lock[0]", 2);  // no release in between
  ASSERT_EQ(f.violations(), 1u);
  EXPECT_EQ(f.checker.violations()[0].kind,
            ProtocolChecker::Violation::Kind::kRevocationOverlap);
}

TEST(CheckerLease, OpeningAnEpochTwiceIsFlagged) {
  CheckerFixture f;
  f.checker.note_revocation("lock[0]", true);
  f.checker.note_revocation("lock[0]", true);
  ASSERT_EQ(f.violations(), 1u);
  EXPECT_EQ(f.checker.violations()[0].kind,
            ProtocolChecker::Violation::Kind::kRevocationOverlap);
}

TEST(CheckerLease, DomainsAreIndependent) {
  CheckerFixture f;
  f.checker.attach_lease_domain("lock[1]");
  f.checker.report_lease_grant("lock[0]", 9);
  // A lower fence on another domain is fine — monotonicity is per domain.
  f.checker.report_lease_grant("lock[1]", 1);
  EXPECT_TRUE(f.checker.ok()) << f.checker.summary();
}

}  // namespace
}  // namespace gmx::testing
