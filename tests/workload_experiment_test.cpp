// Experiment execution tests: all three modes, determinism, replication
// merging, and the derived paper metrics.
#include "gridmutex/workload/experiment.hpp"

#include <gtest/gtest.h>

namespace gmx::testing {
namespace {

ExperimentConfig small_composition() {
  ExperimentConfig cfg;
  cfg.clusters = 3;
  cfg.apps_per_cluster = 3;
  cfg.latency = LatencySpec::two_level(SimDuration::ms_f(0.5),
                                       SimDuration::ms(10));
  cfg.workload.cs_count = 5;
  cfg.workload.rho = 20;
  return cfg;
}

TEST(Experiment, CompositionRunCompletesAllCs) {
  const auto r = run_experiment(small_composition());
  EXPECT_EQ(r.total_cs, 9u * 5u);
  EXPECT_EQ(r.obtaining.count(), 45u);
  EXPECT_EQ(r.safety_entries, 45u);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.makespan, SimDuration::ms(1));
  EXPECT_EQ(r.label, "Naimi-Naimi");
  EXPECT_GT(r.inter_acquisitions, 0u);
}

TEST(Experiment, FlatRunCompletesAllCs) {
  ExperimentConfig cfg = small_composition();
  cfg.mode = ExperimentConfig::Mode::kFlat;
  cfg.flat_algorithm = "suzuki";
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.total_cs, 45u);
  EXPECT_EQ(r.label, "Suzuki (flat)");
  EXPECT_EQ(r.inter_acquisitions, 0u);
}

TEST(Experiment, MultiLevelRunCompletesAllCs) {
  ExperimentConfig cfg;
  cfg.mode = ExperimentConfig::Mode::kMultiLevel;
  cfg.hierarchy = HierarchySpec{.arity = {2, 2, 2},
                                .algorithms = {"naimi", "naimi", "martin"}};
  cfg.level_delays = {SimDuration::ms_f(0.5), SimDuration::ms(5),
                      SimDuration::ms(40)};
  cfg.workload.cs_count = 3;
  cfg.workload.rho = 30;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.total_cs, 8u * 3u);
  EXPECT_EQ(r.label, "ML[Naimi-Naimi-Martin]");
}

TEST(Experiment, SameSeedIsBitIdentical) {
  const auto a = run_experiment(small_composition());
  const auto b = run_experiment(small_composition());
  EXPECT_EQ(a.total_cs, b.total_cs);
  EXPECT_DOUBLE_EQ(a.obtaining_ms(), b.obtaining_ms());
  EXPECT_DOUBLE_EQ(a.stddev_ms(), b.stddev_ms());
  EXPECT_EQ(a.messages.sent, b.messages.sent);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Experiment, DifferentSeedsDiffer) {
  ExperimentConfig cfg = small_composition();
  const auto a = run_experiment(cfg);
  cfg.seed = 999;
  const auto b = run_experiment(cfg);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(Experiment, ReplicationMergesSamples) {
  const auto one = run_experiment(small_composition());
  const auto three = run_replicated(small_composition(), 3);
  EXPECT_EQ(three.total_cs, one.total_cs * 3);
  EXPECT_EQ(three.obtaining.count(), one.obtaining.count() * 3);
  EXPECT_EQ(three.repetitions, 3);
}

TEST(Experiment, HigherRhoLowersObtainingTime) {
  // The paper's headline monotonicity: less concurrency → shorter waits.
  ExperimentConfig cfg = small_composition();
  cfg.workload.cs_count = 20;
  cfg.workload.rho = 2;
  const auto contended = run_experiment(cfg);
  cfg.workload.rho = 200;
  const auto sparse = run_experiment(cfg);
  EXPECT_GT(contended.obtaining_ms(), sparse.obtaining_ms());
}

TEST(Experiment, CompositionSendsFewerInterClusterMessagesThanFlat) {
  // Paper §4.2/Fig. 4(b) under saturation.
  ExperimentConfig cfg = small_composition();
  cfg.workload.rho = 3;
  cfg.workload.cs_count = 20;
  const auto composed = run_experiment(cfg);
  cfg.mode = ExperimentConfig::Mode::kFlat;
  const auto flat = run_experiment(cfg);
  EXPECT_LT(composed.inter_msgs_per_cs(), flat.inter_msgs_per_cs());
}

TEST(Experiment, Grid5000DefaultShape) {
  ExperimentConfig cfg;  // default: 9 clusters × 20 apps, grid5000 matrix
  cfg.workload.cs_count = 1;
  cfg.workload.rho = 1000;
  const auto r = run_experiment(cfg);
  EXPECT_EQ(cfg.application_count(), 180u);
  EXPECT_EQ(r.total_cs, 180u);
}

TEST(Experiment, MetricAccessors) {
  ExperimentResult r;
  r.label = "x";
  EXPECT_DOUBLE_EQ(r.inter_msgs_per_cs(), 0.0);  // no division by zero
  r.total_cs = 10;
  r.messages.inter_cluster = 25;
  r.messages.sent = 100;
  r.messages.bytes_inter = 500;
  EXPECT_DOUBLE_EQ(r.inter_msgs_per_cs(), 2.5);
  EXPECT_DOUBLE_EQ(r.total_msgs_per_cs(), 10.0);
  EXPECT_DOUBLE_EQ(r.inter_bytes_per_cs(), 50.0);
}

TEST(Experiment, LabelFormats) {
  ExperimentConfig cfg;
  cfg.intra = "suzuki";
  cfg.inter = "martin";
  EXPECT_EQ(cfg.label(), "Suzuki-Martin");
  cfg.mode = ExperimentConfig::Mode::kFlat;
  cfg.flat_algorithm = "martin";
  EXPECT_EQ(cfg.label(), "Martin (flat)");
}

TEST(LatencySpecTest, TwoLevelBuild) {
  const auto spec = LatencySpec::two_level(SimDuration::ms(1),
                                           SimDuration::ms(20));
  const auto model = spec.build(4);
  ASSERT_NE(model, nullptr);
  const Topology topo = Topology::uniform(4, 2);
  EXPECT_EQ(model->mean(topo, 0, 1), SimDuration::ms(1));
  EXPECT_EQ(model->mean(topo, 0, 7), SimDuration::ms(20));
}

TEST(LatencySpecDeathTest, Grid5000RequiresNineClusters) {
  const auto spec = LatencySpec::grid5000();
  EXPECT_DEATH(spec.build(5), "9 clusters");
}

}  // namespace
}  // namespace gmx::testing
