#include "gridmutex/mutex/lamport.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void LamportMutex::init(int holder_rank) {
  GMX_ASSERT(holder_rank == kNoHolder || holder_rank < ctx().size());
  clock_ = 0;
  request_ts_ = 0;
  queue_.clear();
  acked_.assign(std::size_t(ctx().size()), 0);
}

void LamportMutex::insert(Entry e) {
  const auto it = std::lower_bound(queue_.begin(), queue_.end(), e);
  queue_.insert(it, e);
}

void LamportMutex::erase(int rank) {
  const auto it =
      std::find_if(queue_.begin(), queue_.end(),
                   [rank](const Entry& e) { return e.rank == rank; });
  GMX_ASSERT_MSG(it != queue_.end(), "lamport: release without request");
  queue_.erase(it);
}

void LamportMutex::request_cs() {
  begin_request();
  request_ts_ = ++clock_;
  insert(Entry{request_ts_, ctx().self()});
  wire::Writer w = ctx().writer(4);
  w.varint(request_ts_);
  const Payload req = w.take_payload();  // encode-once broadcast
  for (int r = 0; r < ctx().size(); ++r)
    if (r != ctx().self()) ctx().send_shared(r, kRequest, req);
  maybe_enter();  // singleton instance enters immediately
}

void LamportMutex::release_cs() {
  begin_release();
  erase(ctx().self());
  for (int r = 0; r < ctx().size(); ++r)
    if (r != ctx().self()) ctx().send(r, kRelease, {});
}

void LamportMutex::on_message(int from_rank, std::uint16_t type,
                              wire::Reader payload) {
  switch (type) {
    case kRequest: {
      const std::uint64_t ts = payload.varint();
      payload.expect_end();
      clock_ = std::max(clock_, ts) + 1;
      insert(Entry{ts, from_rank});
      if (in_cs()) observer().on_pending_request();
      wire::Writer w = ctx().writer(4);
      w.varint(++clock_);
      ctx().send_writer(from_rank, kReply, std::move(w));
      break;
    }
    case kReply: {
      const std::uint64_t ts = payload.varint();
      payload.expect_end();
      clock_ = std::max(clock_, ts) + 1;
      acked_[std::size_t(from_rank)] =
          std::max(acked_[std::size_t(from_rank)], ts);
      maybe_enter();
      break;
    }
    case kRelease:
      payload.expect_end();
      ++clock_;
      erase(from_rank);
      maybe_enter();
      break;
    default:
      throw_unknown_message(type);
  }
}

void LamportMutex::maybe_enter() {
  if (state() != CsState::kRequesting) return;
  // Head-of-queue test.
  if (queue_.empty() || queue_.front().rank != ctx().self() ||
      queue_.front().ts != request_ts_) {
    return;
  }
  // Everyone has answered past our timestamp.
  for (int r = 0; r < ctx().size(); ++r) {
    if (r == ctx().self()) continue;
    if (acked_[std::size_t(r)] <= request_ts_) return;
  }
  enter_cs_and_notify();
}

bool LamportMutex::has_pending_requests() const {
  return std::any_of(queue_.begin(), queue_.end(),
                     [self = ctx().self()](const Entry& e) {
                       return e.rank != self;
                     });
}

}  // namespace gmx
