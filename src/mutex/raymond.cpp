#include "gridmutex/mutex/raymond.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

namespace {
// Virtual heap index of `rank` in a tree rooted at `root`.
int virtual_index(int rank, int root, int n) { return (rank - root + n) % n; }
int real_rank(int vindex, int root, int n) { return (vindex + root) % n; }
}  // namespace

int RaymondMutex::tree_parent() const {
  const int n = ctx().size();
  const int v = virtual_index(ctx().self(), root_, n);
  if (v == 0) return kNoHolder;
  return real_rank((v - 1) / 2, root_, n);
}

void RaymondMutex::init(int holder_rank) {
  GMX_ASSERT_MSG(holder_rank >= 0 && holder_rank < ctx().size(),
                 "Raymond requires an initial token holder");
  root_ = holder_rank;
  // Initially every edge points toward the root, i.e. holder == parent
  // (or self at the root).
  holder_ = (ctx().self() == holder_rank) ? ctx().self() : tree_parent();
  asked_ = false;
  q_.clear();
}

void RaymondMutex::request_cs() {
  begin_request();
  q_.push_back(ctx().self());
  assign_privilege();
  make_request();
}

void RaymondMutex::release_cs() {
  begin_release();
  assign_privilege();
  make_request();
}

void RaymondMutex::on_message(int from_rank, std::uint16_t type,
                              wire::Reader payload) {
  payload.expect_end();
  switch (type) {
    case kRequest:
      q_.push_back(from_rank);
      if (holds_token() && from_rank != ctx().self())
        observer().on_pending_request();
      assign_privilege();
      make_request();
      break;
    case kToken:
      GMX_ASSERT_MSG(from_rank == holder_,
                     "token must arrive along the holder edge");
      holder_ = ctx().self();
      asked_ = false;
      assign_privilege();
      make_request();
      break;
    default:
      throw_unknown_message(type);
  }
}

void RaymondMutex::assign_privilege() {
  if (holder_ != ctx().self()) return;    // token elsewhere
  if (state() == CsState::kInCs) return;  // we are using it
  if (q_.empty()) return;                 // nobody wants it
  const int head = q_.front();
  q_.pop_front();
  if (head == ctx().self()) {
    GMX_ASSERT(state() == CsState::kRequesting);
    enter_cs_and_notify();
    return;
  }
  holder_ = head;
  asked_ = false;
  ctx().send(head, kToken, {});
}

void RaymondMutex::make_request() {
  if (holder_ == ctx().self()) return;
  if (q_.empty() || asked_) return;
  asked_ = true;
  ctx().send(holder_, kRequest, {});
}

bool RaymondMutex::has_pending_requests() const {
  return std::any_of(q_.begin(), q_.end(),
                     [self = ctx().self()](int r) { return r != self; });
}

}  // namespace gmx
