#include "gridmutex/mutex/endpoint.hpp"

#include <algorithm>
#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

MutexEndpoint::MutexEndpoint(Network& net, ProtocolId protocol,
                             std::vector<NodeId> members, int self_rank,
                             std::unique_ptr<MutexAlgorithm> algorithm,
                             Rng rng)
    : net_(net),
      protocol_(protocol),
      members_(std::move(members)),
      rank_(self_rank),
      algo_(std::move(algorithm)),
      rng_(rng) {
  GMX_ASSERT_MSG(!members_.empty(), "instance needs at least one member");
  GMX_ASSERT(self_rank >= 0 && std::size_t(self_rank) < members_.size());
  GMX_ASSERT(algo_ != nullptr);
  rank_of_.reserve(members_.size());
  for (std::size_t r = 0; r < members_.size(); ++r)
    rank_of_.emplace_back(members_[r], int(r));
  std::sort(rank_of_.begin(), rank_of_.end());
  for (std::size_t i = 1; i < rank_of_.size(); ++i)
    GMX_ASSERT_MSG(rank_of_[i].first != rank_of_[i - 1].first,
                   "duplicate node in member list");
  algo_->attach(*this, *this);
  net_.attach(node(), protocol_,
              [this](const Message& m) { handle_message(m); });
}

MutexEndpoint::~MutexEndpoint() { net_.detach(node(), protocol_); }

void MutexEndpoint::send(int to_rank, std::uint16_t type,
                         std::span<const std::uint8_t> payload) {
  GMX_ASSERT(to_rank >= 0 && std::size_t(to_rank) < members_.size());
  GMX_ASSERT_MSG(to_rank != rank_, "algorithm attempted a self-send");
  Message m;
  m.src = node();
  m.dst = members_[std::size_t(to_rank)];
  m.protocol = protocol_;
  m.type = type;
  // Pooled block: the last Payload handle recycles it after delivery, so
  // the steady-state send→deliver cycle allocates nothing.
  if (!payload.empty()) m.payload = net_.payload_pool().acquire(payload);
  net_.send(std::move(m));
}

wire::Writer MutexEndpoint::writer(std::size_t reserve) {
  return wire::Writer(net_.payload_pool(), reserve);
}

void MutexEndpoint::send_writer(int to_rank, std::uint16_t type,
                                wire::Writer&& w) {
  GMX_ASSERT(to_rank >= 0 && std::size_t(to_rank) < members_.size());
  GMX_ASSERT_MSG(to_rank != rank_, "algorithm attempted a self-send");
  Message m;
  m.src = node();
  m.dst = members_[std::size_t(to_rank)];
  m.protocol = protocol_;
  m.type = type;
  // Zero-copy: the Writer encoded straight into the pooled block that now
  // rides the datagram.
  m.payload = w.take_payload();
  net_.send(std::move(m));
}

void MutexEndpoint::send_shared(int to_rank, std::uint16_t type,
                                const Payload& payload) {
  GMX_ASSERT(to_rank >= 0 && std::size_t(to_rank) < members_.size());
  GMX_ASSERT_MSG(to_rank != rank_, "algorithm attempted a self-send");
  Message m;
  m.src = node();
  m.dst = members_[std::size_t(to_rank)];
  m.protocol = protocol_;
  m.type = type;
  m.payload = payload;  // refcount bump — encode-once fan-out
  net_.send(std::move(m));
}

SimTime MutexEndpoint::now() const { return net_.simulator().now(); }

int MutexEndpoint::cluster_of_rank(int rank) const {
  GMX_ASSERT(rank >= 0 && std::size_t(rank) < members_.size());
  return int(net_.topology().cluster_of(members_[std::size_t(rank)]));
}

void MutexEndpoint::on_cs_granted() {
  if (!callbacks_.on_granted) return;
  net_.simulator().schedule_after(SimDuration::ns(0),
                                  [cb = callbacks_.on_granted] { cb(); });
}

void MutexEndpoint::on_pending_request() {
  if (!callbacks_.on_pending) return;
  net_.simulator().schedule_after(SimDuration::ns(0),
                                  [cb = callbacks_.on_pending] { cb(); });
}

void MutexEndpoint::handle_message(const Message& msg) {
  const auto it = std::lower_bound(
      rank_of_.begin(), rank_of_.end(), msg.src,
      [](const std::pair<NodeId, int>& e, NodeId v) { return e.first < v; });
  GMX_ASSERT_MSG(it != rank_of_.end() && it->first == msg.src,
                 "message from a node outside this instance");
  algo_->on_message(it->second, msg.type, wire::Reader(msg.payload));
}

}  // namespace gmx
