#include "gridmutex/mutex/endpoint.hpp"

#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

MutexEndpoint::MutexEndpoint(Network& net, ProtocolId protocol,
                             std::vector<NodeId> members, int self_rank,
                             std::unique_ptr<MutexAlgorithm> algorithm,
                             Rng rng)
    : net_(net),
      protocol_(protocol),
      members_(std::move(members)),
      rank_(self_rank),
      algo_(std::move(algorithm)),
      rng_(rng) {
  GMX_ASSERT_MSG(!members_.empty(), "instance needs at least one member");
  GMX_ASSERT(self_rank >= 0 && std::size_t(self_rank) < members_.size());
  GMX_ASSERT(algo_ != nullptr);
  for (std::size_t r = 0; r < members_.size(); ++r) {
    const auto [it, inserted] = rank_of_.emplace(members_[r], int(r));
    (void)it;
    GMX_ASSERT_MSG(inserted, "duplicate node in member list");
  }
  algo_->attach(*this, *this);
  net_.attach(node(), protocol_,
              [this](const Message& m) { handle_message(m); });
}

MutexEndpoint::~MutexEndpoint() { net_.detach(node(), protocol_); }

void MutexEndpoint::send(int to_rank, std::uint16_t type,
                         std::span<const std::uint8_t> payload) {
  GMX_ASSERT(to_rank >= 0 && std::size_t(to_rank) < members_.size());
  GMX_ASSERT_MSG(to_rank != rank_, "algorithm attempted a self-send");
  Message m;
  m.src = node();
  m.dst = members_[std::size_t(to_rank)];
  m.protocol = protocol_;
  m.type = type;
  // Pooled buffer: the delivery path recycles it, so the steady-state
  // send→deliver cycle allocates nothing.
  m.payload = net_.acquire_payload();
  m.payload.assign(payload.begin(), payload.end());
  net_.send(std::move(m));
}

SimTime MutexEndpoint::now() const { return net_.simulator().now(); }

int MutexEndpoint::cluster_of_rank(int rank) const {
  GMX_ASSERT(rank >= 0 && std::size_t(rank) < members_.size());
  return int(net_.topology().cluster_of(members_[std::size_t(rank)]));
}

void MutexEndpoint::on_cs_granted() {
  if (!callbacks_.on_granted) return;
  net_.simulator().schedule_after(SimDuration::ns(0),
                                  [cb = callbacks_.on_granted] { cb(); });
}

void MutexEndpoint::on_pending_request() {
  if (!callbacks_.on_pending) return;
  net_.simulator().schedule_after(SimDuration::ns(0),
                                  [cb = callbacks_.on_pending] { cb(); });
}

void MutexEndpoint::handle_message(const Message& msg) {
  const auto it = rank_of_.find(msg.src);
  GMX_ASSERT_MSG(it != rank_of_.end(),
                 "message from a node outside this instance");
  algo_->on_message(it->second, msg.type, wire::Reader(msg.payload));
}

}  // namespace gmx
