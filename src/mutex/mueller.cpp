#include "gridmutex/mutex/mueller.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void MuellerMutex::init(int holder_rank) {
  GMX_ASSERT_MSG(holder_rank >= 0 && holder_rank < ctx().size(),
                 "Mueller requires an initial token holder");
  last_ = holder_rank;
  has_token_ = (ctx().self() == holder_rank);
  q_.clear();
}

void MuellerMutex::request_cs() {
  begin_request();
  GMX_ASSERT_MSG(my_priority_ >= 0, "priorities are non-negative");
  if (has_token_) {
    GMX_ASSERT(q_.empty());
    enter_cs_and_notify();
    return;
  }
  wire::Writer w = ctx().writer(8);
  w.varint(std::uint64_t(ctx().self()));
  w.varint(std::uint64_t(my_priority_));
  ctx().send_writer(last_, kRequest, std::move(w));
}

void MuellerMutex::release_cs() {
  begin_release();
  GMX_ASSERT(has_token_);
  if (!q_.empty()) grant_from_queue();
}

void MuellerMutex::on_message(int from_rank, std::uint16_t type,
                              wire::Reader payload) {
  switch (type) {
    case kRequest: {
      const auto requester = std::uint32_t(payload.varint());
      const auto base = std::uint32_t(payload.varint());
      payload.expect_end();
      GMX_ASSERT(int(requester) < ctx().size());
      (void)from_rank;
      handle_request(requester, base);
      break;
    }
    case kToken: {
      const auto count = payload.varint();
      std::vector<Pending> q;
      q.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        Pending p;
        p.rank = std::uint32_t(payload.varint());
        p.base = std::uint32_t(payload.varint());
        p.age = std::uint32_t(payload.varint());
        q.push_back(p);
      }
      payload.expect_end();
      GMX_ASSERT_MSG(!has_token_, "duplicate token");
      GMX_ASSERT_MSG(state() == CsState::kRequesting,
                     "token arrived at a non-requesting participant");
      has_token_ = true;
      q_ = std::move(q);
      enter_cs_and_notify();
      break;
    }
    default:
      throw_unknown_message(type);
  }
}

void MuellerMutex::handle_request(std::uint32_t requester,
                                  std::uint32_t base) {
  if (!has_token_) {
    wire::Writer w = ctx().writer(8);
    w.varint(requester);
    w.varint(base);
    ctx().send_writer(last_, kRequest, std::move(w));
    return;
  }
  q_.push_back(Pending{requester, base, 0});
  if (state() == CsState::kIdle && q_.size() == 1) {
    grant_from_queue();
    return;
  }
  observer().on_pending_request();
}

void MuellerMutex::grant_from_queue() {
  GMX_ASSERT(has_token_ && !q_.empty());
  // Highest effective priority; FIFO among equals (stable: first max).
  auto best = q_.begin();
  for (auto it = q_.begin() + 1; it != q_.end(); ++it) {
    if (it->effective() > best->effective()) best = it;
  }
  const Pending grantee = *best;
  q_.erase(best);
  // Aging: every bypassed request gains a point.
  for (Pending& p : q_) ++p.age;

  wire::Writer w = ctx().writer(2 + 6 * q_.size());
  w.varint(q_.size());
  for (const Pending& p : q_) {
    w.varint(p.rank);
    w.varint(p.base);
    w.varint(p.age);
  }
  has_token_ = false;
  q_.clear();
  last_ = int(grantee.rank);
  ctx().send_writer(int(grantee.rank), kToken, std::move(w));
}

}  // namespace gmx
