#include "gridmutex/mutex/algorithm.hpp"

#include <cstdio>
#include <string>
#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

wire::Writer MutexContext::writer(std::size_t reserve) {
  return wire::Writer(reserve);
}

void MutexContext::send_writer(int to_rank, std::uint16_t type,
                               wire::Writer&& w) {
  send(to_rank, type, w.view());
}

void MutexContext::send_shared(int to_rank, std::uint16_t type,
                               const Payload& payload) {
  send(to_rank, type, payload.span());
}

std::string_view to_string(CsState s) {
  switch (s) {
    case CsState::kIdle:
      return "NO_REQ";
    case CsState::kRequesting:
      return "REQ";
    case CsState::kInCs:
      return "CS";
  }
  return "?";
}

void MutexAlgorithm::attach(MutexContext& ctx, MutexObserver& obs) {
  GMX_ASSERT_MSG(ctx_ == nullptr, "attach() called twice");
  ctx_ = &ctx;
  obs_ = &obs;
}

MutexContext& MutexAlgorithm::ctx() const {
  GMX_ASSERT_MSG(ctx_ != nullptr, "algorithm used before attach()");
  return *ctx_;
}

MutexObserver& MutexAlgorithm::observer() const {
  GMX_ASSERT_MSG(obs_ != nullptr, "algorithm used before attach()");
  return *obs_;
}

void MutexAlgorithm::begin_request() {
  GMX_ASSERT_MSG(state() == CsState::kIdle,
                 "request_cs() while already requesting or in CS");
  set_state(CsState::kRequesting);
}

void MutexAlgorithm::enter_cs_and_notify() {
  GMX_ASSERT_MSG(state() == CsState::kRequesting,
                 "CS granted to a participant that was not requesting");
  set_state(CsState::kInCs);
  observer().on_cs_granted();
}

void MutexAlgorithm::begin_release() {
  GMX_ASSERT_MSG(state() == CsState::kInCs, "release_cs() outside CS");
  set_state(CsState::kIdle);
}

void MutexAlgorithm::surrender_token_to(int) {
  GMX_ASSERT_MSG(false, "surrender_token_to() not supported by this algorithm");
}

void MutexAlgorithm::throw_unknown_message(std::uint16_t type) const {
  char hex[8];
  std::snprintf(hex, sizeof hex, "0x%02x", unsigned(type));
  throw wire::WireError(std::string(name()) + ": unknown message type " +
                        hex);
}

}  // namespace gmx
