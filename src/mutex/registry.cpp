#include "gridmutex/mutex/registry.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>
#include <cctype>
#include <stdexcept>

#include "gridmutex/mutex/bertier.hpp"
#include "gridmutex/mutex/central_server.hpp"
#include "gridmutex/mutex/lamport.hpp"
#include "gridmutex/mutex/maekawa.hpp"
#include "gridmutex/mutex/martin.hpp"
#include "gridmutex/mutex/mueller.hpp"
#include "gridmutex/mutex/naimi_trehel.hpp"
#include "gridmutex/mutex/raymond.hpp"
#include "gridmutex/mutex/ricart_agrawala.hpp"
#include "gridmutex/mutex/suzuki_kasami.hpp"

namespace gmx {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return char(std::tolower(c)); });
  return out;
}

struct Entry {
  const char* name;
  bool token_based;
  const char* description;  // one line, shown by `gridmutex_cli --list-algorithms`
  std::unique_ptr<MutexAlgorithm> (*make)();
};

constexpr Entry kEntries[] = {
    {"naimi", true,
     "Naimi-Trehel token: path-reversal last/next trees, O(log N) msgs/CS",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<NaimiTrehelMutex>()); }},
    {"martin", true,
     "Martin ring token: requests clockwise, token counter-clockwise",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<MartinMutex>()); }},
    {"suzuki", true,
     "Suzuki-Kasami broadcast token: N-1 REQUESTs, array-stamped token",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<SuzukiKasamiMutex>()); }},
    {"raymond", true,
     "Raymond tree token: requests climb a static spanning tree",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<RaymondMutex>()); }},
    {"central", true,
     "central server: one coordinator queues requests and grants the token",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<CentralServerMutex>()); }},
    {"ricart", false,
     "Ricart-Agrawala permissions: 2(N-1) timestamped msgs/CS",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<RicartAgrawalaMutex>()); }},
    {"bertier", true,
     "Bertier et al. hierarchical Naimi-Trehel: cluster-aware single instance",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<BertierMutex>()); }},
    {"mueller", true,
     "Mueller prioritized token: Naimi-Trehel with request priorities",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<MuellerMutex>()); }},
    {"lamport", false,
     "Lamport logical-clock queue: REQUEST/REPLY/RELEASE, 3(N-1) msgs/CS",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<LamportMutex>()); }},
    {"maekawa", false,
     "Maekawa quorums: ~2*sqrt(N) arbiters vote; any two quorums intersect",
     [] { return std::unique_ptr<MutexAlgorithm>(
              std::make_unique<MaekawaMutex>()); }},
};

const Entry& find_entry(std::string_view name) {
  const std::string key = lower(name);
  for (const Entry& e : kEntries) {
    if (key == e.name) return e;
  }
  throw std::invalid_argument("unknown mutex algorithm: \"" +
                              std::string(name) + "\"");
}

}  // namespace

std::unique_ptr<MutexAlgorithm> make_algorithm(std::string_view name) {
  return find_entry(name).make();
}

AlgorithmFactory algorithm_factory(std::string_view name) {
  const Entry& e = find_entry(name);
  return [make = e.make] { return make(); };
}

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Entry& e : kEntries) out.emplace_back(e.name);
    return out;
  }();
  return names;
}

bool is_token_based(std::string_view name) {
  return find_entry(name).token_based;
}

std::string_view algorithm_description(std::string_view name) {
  return find_entry(name).description;
}

std::string message_type_name(std::string_view algorithm,
                              std::uint16_t type) {
  const std::string key = lower(algorithm);
  // Message codes per algorithm; see each header's MsgType enum.
  struct TypeName {
    std::uint16_t code;
    const char* label;
  };
  static const std::unordered_map<std::string, std::vector<TypeName>> kNames =
      {
          {"naimi",
           {{1, "REQUEST"},
            {2, "TOKEN"},
            {3, "REGEN_QUERY"},
            {4, "REGEN_REPLY"}}},
          {"martin", {{1, "REQUEST"}, {2, "TOKEN"}}},
          {"suzuki",
           {{1, "REQUEST"},
            {2, "TOKEN"},
            {3, "REGEN_QUERY"},
            {4, "REGEN_REPLY"}}},
          {"raymond", {{1, "REQUEST"}, {2, "TOKEN"}}},
          {"bertier", {{1, "REQUEST"}, {2, "TOKEN"}}},
          {"mueller", {{1, "REQUEST"}, {2, "TOKEN"}}},
          {"central",
           {{1, "REQUEST"}, {2, "GRANT"}, {3, "RELEASE"}, {4, "REVOKE"}}},
          {"ricart", {{1, "REQUEST"}, {2, "REPLY"}}},
          {"lamport",
           {{1, "REQUEST"}, {2, "REPLY"}, {3, "RELEASE"}}},
          {"maekawa",
           {{1, "REQUEST"},
            {2, "LOCKED"},
            {3, "INQUIRE"},
            {4, "RELINQUISH"},
            {5, "RELEASE"},
            {6, "DEMAND"}}},
      };
  const auto it = kNames.find(key);
  if (it != kNames.end()) {
    for (const TypeName& t : it->second)
      if (t.code == type) return t.label;
  }
  return "type" + std::to_string(type);
}

CompositionSpec parse_composition(std::string_view spec) {
  const auto dash = spec.find('-');
  if (dash == std::string_view::npos || dash == 0 ||
      dash + 1 == spec.size()) {
    throw std::invalid_argument(
        "composition spec must be \"intra-inter\", got \"" +
        std::string(spec) + "\"");
  }
  CompositionSpec out{lower(spec.substr(0, dash)),
                      lower(spec.substr(dash + 1))};
  find_entry(out.intra);  // validate
  find_entry(out.inter);
  return out;
}

}  // namespace gmx
