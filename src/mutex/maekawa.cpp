#include "gridmutex/mutex/maekawa.hpp"

#include <algorithm>
#include <cmath>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

std::vector<int> MaekawaMutex::grid_quorum(int rank, int n) {
  GMX_ASSERT(rank >= 0 && rank < n);
  const int k = int(std::ceil(std::sqrt(double(n))));
  const int row = rank / k;
  const int col = rank % k;
  std::set<int> q;
  for (int c = 0; c < k; ++c) {
    const int v = row * k + c;
    if (v < n) q.insert(v);
  }
  for (int r = 0; (r * k + col) < n; ++r) q.insert(r * k + col);
  return {q.begin(), q.end()};
}

void MaekawaMutex::init(int holder_rank) {
  GMX_ASSERT(holder_rank == kNoHolder || holder_rank < ctx().size());
  quorum_ = grid_quorum(ctx().self(), ctx().size());
  clock_ = 0;
  request_ts_ = 0;
  locked_from_.clear();
  demanded_ = false;
  arb_current_.reset();
  arb_queue_.clear();
  arb_inquired_ = false;
  arb_demanded_ = false;
}

void MaekawaMutex::send_or_local(int to, std::uint16_t type) {
  if (to != ctx().self()) {
    ctx().send(to, type, {});
    return;
  }
  // Local shim: dispatch to the self handler without a network hop.
  switch (type) {
    case kLocked:
      on_locked(ctx().self());
      break;
    case kInquire:
      on_inquire(ctx().self());
      break;
    case kRelinquish:
      arb_relinquish(ctx().self());
      break;
    case kRelease:
      arb_release(ctx().self());
      break;
    case kDemand:
      on_demand();
      break;
    default:
      GMX_ASSERT_MSG(false, "bad local maekawa dispatch");
  }
}

// --- requester ------------------------------------------------------------

void MaekawaMutex::request_cs() {
  begin_request();
  request_ts_ = ++clock_;
  GMX_ASSERT(locked_from_.empty());
  for (int arbiter : quorum_) ask(arbiter);
}

void MaekawaMutex::ask(int arbiter) {
  if (arbiter == ctx().self()) {
    arb_request(Entry{request_ts_, ctx().self()});
    return;
  }
  wire::Writer w = ctx().writer(4);
  w.varint(request_ts_);
  ctx().send_writer(arbiter, kRequest, std::move(w));
}

void MaekawaMutex::on_locked(int arbiter) {
  GMX_ASSERT_MSG(state() == CsState::kRequesting,
                 "vote outside a request");
  GMX_ASSERT(std::find(quorum_.begin(), quorum_.end(), arbiter) !=
             quorum_.end());
  const bool inserted = locked_from_.insert(arbiter).second;
  GMX_ASSERT_MSG(inserted, "duplicate vote from one arbiter");
  if (state() == CsState::kRequesting &&
      locked_from_.size() == quorum_.size()) {
    enter_cs_and_notify();
  }
}

void MaekawaMutex::on_inquire(int arbiter) {
  // Step back only while still collecting votes; once in the CS the arbiter
  // is answered by our RELEASE. A stale inquire (vote already returned, or
  // we already released) is ignored.
  if (state() == CsState::kRequesting &&
      locked_from_.erase(arbiter) == 1) {
    send_or_local(arbiter, kRelinquish);
  }
}

void MaekawaMutex::on_demand() {
  if (!demanded_) {
    demanded_ = true;
    observer().on_pending_request();
  }
}

void MaekawaMutex::release_cs() {
  begin_release();
  GMX_ASSERT(locked_from_.size() == quorum_.size());
  locked_from_.clear();
  demanded_ = false;
  for (int arbiter : quorum_) send_or_local(arbiter, kRelease);
}

// --- arbiter ----------------------------------------------------------------

void MaekawaMutex::arb_grant(Entry e) {
  arb_current_ = e;
  arb_inquired_ = false;
  arb_demanded_ = false;
  send_or_local(e.rank, kLocked);
}

void MaekawaMutex::arb_request(Entry e) {
  if (!arb_current_) {
    GMX_ASSERT(arb_queue_.empty());
    arb_grant(e);
    return;
  }
  arb_queue_.insert(
      std::lower_bound(arb_queue_.begin(), arb_queue_.end(), e), e);
  // Revocation attempt: only for a strictly older request than the current
  // lock (classic rule; keeps the oldest request moving).
  if (!arb_inquired_ && arb_queue_.front() < *arb_current_) {
    arb_inquired_ = true;
    send_or_local(arb_current_->rank, kInquire);
  }
  arb_signal_demand();
}

void MaekawaMutex::arb_signal_demand() {
  if (!arb_demanded_ && arb_current_ && !arb_queue_.empty()) {
    arb_demanded_ = true;
    send_or_local(arb_current_->rank, kDemand);
  }
}

void MaekawaMutex::arb_relinquish(int from) {
  GMX_ASSERT_MSG(arb_current_ && arb_current_->rank == from,
                 "relinquish from a non-candidate");
  // The candidate keeps waiting: back into the queue, oldest first wins.
  Entry back = *arb_current_;
  arb_queue_.insert(
      std::lower_bound(arb_queue_.begin(), arb_queue_.end(), back), back);
  const Entry next = arb_queue_.front();
  arb_queue_.erase(arb_queue_.begin());
  arb_grant(next);
  arb_signal_demand();
}

void MaekawaMutex::arb_release(int from) {
  GMX_ASSERT_MSG(arb_current_ && arb_current_->rank == from,
                 "release from a non-candidate");
  arb_current_.reset();
  arb_inquired_ = false;
  arb_demanded_ = false;
  if (!arb_queue_.empty()) {
    const Entry next = arb_queue_.front();
    arb_queue_.erase(arb_queue_.begin());
    arb_grant(next);
    arb_signal_demand();
  }
}

// --- dispatch ---------------------------------------------------------------

void MaekawaMutex::on_message(int from_rank, std::uint16_t type,
                              wire::Reader payload) {
  switch (type) {
    case kRequest: {
      const std::uint64_t ts = payload.varint();
      payload.expect_end();
      clock_ = std::max(clock_, ts) + 1;
      arb_request(Entry{ts, from_rank});
      break;
    }
    case kLocked:
      payload.expect_end();
      on_locked(from_rank);
      break;
    case kInquire:
      payload.expect_end();
      on_inquire(from_rank);
      break;
    case kRelinquish:
      payload.expect_end();
      arb_relinquish(from_rank);
      break;
    case kRelease:
      payload.expect_end();
      arb_release(from_rank);
      break;
    case kDemand:
      payload.expect_end();
      on_demand();
      break;
    default:
      throw_unknown_message(type);
  }
}

bool MaekawaMutex::has_pending_requests() const {
  if (demanded_) return true;
  // Self-arbitration: we hold our own vote in the CS while others queue.
  return in_cs() && !arb_queue_.empty();
}

}  // namespace gmx
