#include "gridmutex/mutex/naimi_trehel.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void NaimiTrehelMutex::init(int holder_rank) {
  GMX_ASSERT_MSG(holder_rank >= 0 && holder_rank < ctx().size(),
                 "Naimi-Trehel requires an initial token holder");
  last_ = holder_rank;
  has_token_ = (ctx().self() == holder_rank);
  next_.reset();
}

void NaimiTrehelMutex::request_cs() {
  begin_request();
  if (has_token_) {
    // We are the idle root; enter directly, no message (paper §2.2 case 2).
    GMX_ASSERT(last_ == ctx().self());
    enter_cs_and_notify();
    return;
  }
  // Climb the tree: ask our probable owner, then become the root.
  GMX_ASSERT_MSG(last_ != ctx().self(),
                 "root without token cannot be in Idle state");
  wire::Writer w = ctx().writer(4);
  w.varint(std::uint64_t(ctx().self()));
  ctx().send_writer(last_, kRequest, std::move(w));
  last_ = ctx().self();
}

void NaimiTrehelMutex::release_cs() {
  begin_release();
  if (next_) {
    GMX_ASSERT(has_token_);
    has_token_ = false;
    const int to = *next_;
    next_.reset();
    ctx().send(to, kToken, {});
  }
  // Without a next, the token stays here idle.
}

void NaimiTrehelMutex::on_message(int from_rank, std::uint16_t type,
                                  wire::Reader payload) {
  switch (type) {
    case kRequest: {
      const auto requester = int(payload.varint());
      payload.expect_end();
      GMX_ASSERT(requester >= 0 && requester < ctx().size());
      GMX_ASSERT(requester != ctx().self());
      handle_request(requester);
      break;
    }
    case kToken:
      payload.expect_end();
      (void)from_rank;
      handle_token();
      break;
    case kRegenQuery: {
      const std::uint64_t round = payload.varint();
      payload.expect_end();
      handle_regen_query(from_rank, round);
      break;
    }
    case kRegenReply: {
      const std::uint64_t round = payload.varint();
      const std::uint64_t flags = payload.varint();
      const std::uint64_t next_plus_one = payload.varint();
      payload.expect_end();
      if (next_plus_one > std::uint64_t(ctx().size()))
        throw wire::WireError("naimi: regen reply next out of range");
      handle_regen_reply(from_rank, round, flags, next_plus_one);
      break;
    }
    default:
      throw_unknown_message(type);
  }
}

void NaimiTrehelMutex::handle_request(int requester) {
  if (last_ == ctx().self()) {
    // We are the root: the requester queues behind us.
    if (has_token_ && state() == CsState::kIdle) {
      // Idle holder: hand the token over directly.
      has_token_ = false;
      ctx().send(requester, kToken, {});
    } else {
      // Either in CS holding the token, or ourselves waiting for it.
      GMX_ASSERT_MSG(!next_.has_value(),
                     "root already has a next; tree routing broke");
      next_ = requester;
      observer().on_pending_request();
    }
  } else {
    // Not the root: forward one hop up the tree.
    wire::Writer w = ctx().writer(4);
    w.varint(std::uint64_t(requester));
    ctx().send_writer(last_, kRequest, std::move(w));
  }
  // Path reversal: the requester is the new probable owner.
  last_ = requester;
}

void NaimiTrehelMutex::handle_token() {
  GMX_ASSERT_MSG(!has_token_, "duplicate token");
  GMX_ASSERT_MSG(state() == CsState::kRequesting,
                 "token arrived at a participant that is not requesting");
  has_token_ = true;
  enter_cs_and_notify();
}

void NaimiTrehelMutex::begin_token_regeneration() {
  if (regen_active_) return;
  if (has_token_) {  // false alarm: nothing to rebuild
    notify_token_regenerated();
    return;
  }
  GMX_ASSERT_MSG(state() != CsState::kInCs, "in CS without the token");
  regen_active_ = true;
  ++regen_round_;
  const int n = ctx().size();
  regen_seen_.assign(std::size_t(n), 0);
  regen_requesting_.assign(std::size_t(n), 0);
  regen_next_.assign(std::size_t(n), -1);
  const auto self = std::size_t(ctx().self());
  regen_seen_[self] = 1;
  regen_requesting_[self] = state() == CsState::kRequesting ? 1 : 0;
  regen_next_[self] = next_ ? *next_ : -1;
  regen_outstanding_ = n - 1;
  if (regen_outstanding_ == 0) {
    finish_regeneration();
    return;
  }
  wire::Writer w = ctx().writer(4);
  w.varint(regen_round_);
  const Payload query = w.take_payload();
  for (int r = 0; r < n; ++r) {
    if (r != ctx().self()) ctx().send_shared(r, kRegenQuery, query);
  }
}

void NaimiTrehelMutex::cancel_token_regeneration() {
  regen_active_ = false;
  ++regen_round_;  // replies to the abandoned round become stale
}

void NaimiTrehelMutex::handle_regen_query(int from_rank,
                                          std::uint64_t round) {
  std::uint64_t flags = 0;
  if (state() == CsState::kRequesting) flags |= kFlagRequesting;
  if (has_token_) flags |= kFlagHasToken;
  wire::Writer w = ctx().writer(8);
  w.varint(round);
  w.varint(flags);
  w.varint(next_ ? std::uint64_t(*next_) + 1 : 0);
  ctx().send_writer(from_rank, kRegenReply, std::move(w));
}

void NaimiTrehelMutex::handle_regen_reply(int from_rank, std::uint64_t round,
                                          std::uint64_t flags,
                                          std::uint64_t next_plus_one) {
  if (!regen_active_ || round != regen_round_) return;  // stale round
  if (regen_seen_[std::size_t(from_rank)]) return;      // duplicate reply
  if ((flags & kFlagHasToken) != 0) {
    // The token is alive after all; minting another would break uniqueness.
    cancel_token_regeneration();
    return;
  }
  regen_seen_[std::size_t(from_rank)] = 1;
  regen_requesting_[std::size_t(from_rank)] =
      (flags & kFlagRequesting) != 0 ? 1 : 0;
  regen_next_[std::size_t(from_rank)] = int(next_plus_one) - 1;
  if (--regen_outstanding_ == 0) finish_regeneration();
}

void NaimiTrehelMutex::finish_regeneration() {
  regen_active_ = false;
  const int n = ctx().size();
  // The queue head: a requester no participant names as `next`. Ties (a
  // request racing the consultation) break to the lowest rank; the other
  // headless requester is later restored by the stranded-token repair.
  std::vector<std::uint8_t> pointed_to(std::size_t(n), 0);
  for (int r = 0; r < n; ++r) {
    const int nx = regen_next_[std::size_t(r)];
    if (nx >= 0) pointed_to[std::size_t(nx)] = 1;
  }
  int head = -1;
  for (int r = 0; r < n && head < 0; ++r) {
    if (regen_requesting_[std::size_t(r)] && !pointed_to[std::size_t(r)])
      head = r;
  }
  if (head < 0) {  // every requester is mid-chain (or none): fall back
    for (int r = 0; r < n && head < 0; ++r) {
      if (regen_requesting_[std::size_t(r)]) head = r;
    }
  }
  if (head < 0 || head == ctx().self()) {
    // Mint locally: either we are the head, or nobody requests at all (a
    // defensive fallback — an in-transit token always has a requesting
    // recipient) and the initiator adopts the token as idle root.
    has_token_ = true;
    if (state() == CsState::kIdle) last_ = ctx().self();
    notify_token_regenerated();
    if (state() == CsState::kRequesting) enter_cs_and_notify();
    return;
  }
  // Mint in flight: close the epoch at creation, then ship to the head.
  notify_token_regenerated();
  ctx().send(head, kToken, {});
}

void NaimiTrehelMutex::surrender_token_to(int to_rank) {
  GMX_ASSERT_MSG(has_token_ && state() == CsState::kIdle,
                 "surrender requires an idle token holder");
  GMX_ASSERT(to_rank != ctx().self());
  GMX_ASSERT_MSG(!next_.has_value(), "idle holder cannot have a next");
  has_token_ = false;
  ctx().send(to_rank, kToken, {});
}

}  // namespace gmx
