#include "gridmutex/mutex/naimi_trehel.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void NaimiTrehelMutex::init(int holder_rank) {
  GMX_ASSERT_MSG(holder_rank >= 0 && holder_rank < ctx().size(),
                 "Naimi-Trehel requires an initial token holder");
  last_ = holder_rank;
  has_token_ = (ctx().self() == holder_rank);
  next_.reset();
}

void NaimiTrehelMutex::request_cs() {
  begin_request();
  if (has_token_) {
    // We are the idle root; enter directly, no message (paper §2.2 case 2).
    GMX_ASSERT(last_ == ctx().self());
    enter_cs_and_notify();
    return;
  }
  // Climb the tree: ask our probable owner, then become the root.
  GMX_ASSERT_MSG(last_ != ctx().self(),
                 "root without token cannot be in Idle state");
  wire::Writer w;
  w.varint(std::uint64_t(ctx().self()));
  ctx().send(last_, kRequest, w.view());
  last_ = ctx().self();
}

void NaimiTrehelMutex::release_cs() {
  begin_release();
  if (next_) {
    GMX_ASSERT(has_token_);
    has_token_ = false;
    const int to = *next_;
    next_.reset();
    ctx().send(to, kToken, {});
  }
  // Without a next, the token stays here idle.
}

void NaimiTrehelMutex::on_message(int from_rank, std::uint16_t type,
                                  wire::Reader payload) {
  switch (type) {
    case kRequest: {
      const auto requester = int(payload.varint());
      payload.expect_end();
      GMX_ASSERT(requester >= 0 && requester < ctx().size());
      GMX_ASSERT(requester != ctx().self());
      handle_request(requester);
      break;
    }
    case kToken:
      payload.expect_end();
      (void)from_rank;
      handle_token();
      break;
    default:
      throw wire::WireError("naimi: unknown message type");
  }
}

void NaimiTrehelMutex::handle_request(int requester) {
  if (last_ == ctx().self()) {
    // We are the root: the requester queues behind us.
    if (has_token_ && state() == CsState::kIdle) {
      // Idle holder: hand the token over directly.
      has_token_ = false;
      ctx().send(requester, kToken, {});
    } else {
      // Either in CS holding the token, or ourselves waiting for it.
      GMX_ASSERT_MSG(!next_.has_value(),
                     "root already has a next; tree routing broke");
      next_ = requester;
      observer().on_pending_request();
    }
  } else {
    // Not the root: forward one hop up the tree.
    wire::Writer w;
    w.varint(std::uint64_t(requester));
    ctx().send(last_, kRequest, w.view());
  }
  // Path reversal: the requester is the new probable owner.
  last_ = requester;
}

void NaimiTrehelMutex::handle_token() {
  GMX_ASSERT_MSG(!has_token_, "duplicate token");
  GMX_ASSERT_MSG(state() == CsState::kRequesting,
                 "token arrived at a participant that is not requesting");
  has_token_ = true;
  enter_cs_and_notify();
}

}  // namespace gmx
