#include "gridmutex/mutex/martin.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx {

int MartinMutex::successor() const {
  return (ctx().self() + 1) % ctx().size();
}

int MartinMutex::predecessor() const {
  return (ctx().self() + ctx().size() - 1) % ctx().size();
}

void MartinMutex::init(int holder_rank) {
  GMX_ASSERT_MSG(holder_rank >= 0 && holder_rank < ctx().size(),
                 "Martin requires an initial token holder");
  GMX_ASSERT_MSG(ctx().size() >= 2, "a ring needs at least two participants");
  has_token_ = (ctx().self() == holder_rank);
  pass_to_pred_ = false;
}

void MartinMutex::request_cs() {
  begin_request();
  if (has_token_) {
    enter_cs_and_notify();
    return;
  }
  // If a request already passed through us, the token is bound to cross us;
  // we will consume it then. Otherwise launch our own request clockwise.
  if (!pass_to_pred_) ctx().send(successor(), kRequest, {});
}

void MartinMutex::release_cs() {
  begin_release();
  if (pass_to_pred_) forward_token_to_predecessor();
  // Otherwise the token parks here.
}

void MartinMutex::on_message(int from_rank, std::uint16_t type,
                             wire::Reader payload) {
  payload.expect_end();  // both Martin messages are header-only
  switch (type) {
    case kRequest:
      GMX_ASSERT_MSG(from_rank == predecessor(),
                     "requests must arrive from the ring predecessor");
      handle_request();
      break;
    case kToken:
      GMX_ASSERT_MSG(from_rank == successor(),
                     "the token must arrive from the ring successor");
      handle_token();
      break;
    default:
      throw_unknown_message(type);
  }
}

void MartinMutex::handle_request() {
  if (has_token_) {
    if (state() == CsState::kIdle && !pass_to_pred_) {
      // Idle holder: launch the token backwards immediately.
      has_token_ = false;
      ctx().send(predecessor(), kToken, {});
    } else {
      // In CS (or a send is already owed): remember to pass it on.
      if (!pass_to_pred_) {
        pass_to_pred_ = true;
        observer().on_pending_request();
      }
    }
    return;
  }
  if (state() == CsState::kRequesting || pass_to_pred_) {
    // Absorb: our own pending request (or an already-forwarded one) will
    // bring the token through here; no need to forward (§2.1 optimization).
    pass_to_pred_ = true;
    return;
  }
  // Pure relay: forward the request clockwise and remember the duty to
  // relay the token when it comes back.
  pass_to_pred_ = true;
  ctx().send(successor(), kRequest, {});
}

void MartinMutex::handle_token() {
  GMX_ASSERT_MSG(!has_token_, "duplicate token");
  has_token_ = true;
  if (state() == CsState::kRequesting) {
    // Consume. pass_to_pred_, if set, is honoured at release.
    enter_cs_and_notify();
    return;
  }
  GMX_ASSERT_MSG(pass_to_pred_, "token arrived with nothing owed");
  forward_token_to_predecessor();
}

void MartinMutex::forward_token_to_predecessor() {
  GMX_ASSERT(has_token_ && pass_to_pred_);
  has_token_ = false;
  pass_to_pred_ = false;
  ctx().send(predecessor(), kToken, {});
}

}  // namespace gmx
