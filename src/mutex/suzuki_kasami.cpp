#include "gridmutex/mutex/suzuki_kasami.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void SuzukiKasamiMutex::init(int holder_rank) {
  GMX_ASSERT_MSG(holder_rank >= 0 && holder_rank < ctx().size(),
                 "Suzuki-Kasami requires an initial token holder");
  rn_.assign(std::size_t(ctx().size()), 0);
  has_token_ = (ctx().self() == holder_rank);
  if (has_token_) {
    ln_.assign(std::size_t(ctx().size()), 0);
    q_.clear();
  }
}

void SuzukiKasamiMutex::request_cs() {
  begin_request();
  const auto self = std::size_t(ctx().self());
  ++rn_[self];
  if (has_token_) {
    enter_cs_and_notify();
    return;
  }
  wire::Writer w;
  w.varint(rn_[self]);
  for (int r = 0; r < ctx().size(); ++r) {
    if (r != ctx().self()) ctx().send(r, kRequest, w.view());
  }
}

void SuzukiKasamiMutex::release_cs() {
  begin_release();
  GMX_ASSERT(has_token_);
  const auto self = std::size_t(ctx().self());
  ln_[self] = rn_[self];
  // Enqueue every participant with an unsatisfied request, scanning from
  // self+1 so the rank order rotates (canonical formulation). Note what is
  // deliberately *absent*: arrival-time ordering. §4.6 of the paper traces
  // Suzuki's weaker fairness to exactly this.
  const int n = ctx().size();
  for (int off = 1; off < n; ++off) {
    const int j = (ctx().self() + off) % n;
    if (rn_[std::size_t(j)] > ln_[std::size_t(j)] &&
        std::find(q_.begin(), q_.end(), std::uint32_t(j)) == q_.end()) {
      q_.push_back(std::uint32_t(j));
    }
  }
  if (!q_.empty()) {
    const int head = int(q_.front());
    q_.pop_front();
    send_token_to(head);
  }
}

void SuzukiKasamiMutex::on_message(int from_rank, std::uint16_t type,
                                   wire::Reader payload) {
  switch (type) {
    case kRequest: {
      const std::uint64_t seq = payload.varint();
      payload.expect_end();
      handle_request(from_rank, seq);
      break;
    }
    case kToken:
      handle_token(payload);
      break;
    default:
      throw wire::WireError("suzuki: unknown message type");
  }
}

void SuzukiKasamiMutex::handle_request(int from_rank, std::uint64_t seq) {
  auto& rn = rn_[std::size_t(from_rank)];
  rn = std::max(rn, seq);
  if (!has_token_) return;
  if (state() == CsState::kIdle) {
    // Idle holder: grant any not-yet-satisfied request immediately. The
    // classical test is rn == ln+1; comparing with > additionally tolerates
    // reordered duplicates of the (single) outstanding request per node.
    if (rn > ln_[std::size_t(from_rank)]) send_token_to(from_rank);
  } else {
    // Holding the token inside the CS: the request will be served at
    // release; surface it (composition hook).
    if (rn > ln_[std::size_t(from_rank)]) observer().on_pending_request();
  }
}

void SuzukiKasamiMutex::handle_token(wire::Reader& payload) {
  GMX_ASSERT_MSG(!has_token_, "duplicate token");
  GMX_ASSERT_MSG(state() == CsState::kRequesting,
                 "token arrived at a non-requesting participant");
  const auto ln = payload.varint_array_u64();
  const auto q = payload.varint_array_u32();
  payload.expect_end();
  if (int(ln.size()) != ctx().size())
    throw wire::WireError("suzuki: token LN size mismatch");
  ln_ = ln;
  q_.assign(q.begin(), q.end());
  has_token_ = true;
  enter_cs_and_notify();
}

void SuzukiKasamiMutex::send_token_to(int rank) {
  GMX_ASSERT(has_token_);
  has_token_ = false;
  wire::Writer w;
  w.varint_array(std::span<const std::uint64_t>(ln_));
  std::vector<std::uint32_t> q(q_.begin(), q_.end());
  w.varint_array(std::span<const std::uint32_t>(q));
  ctx().send(rank, kToken, w.view());
  q_.clear();
}

bool SuzukiKasamiMutex::has_pending_requests() const {
  if (!has_token_) return false;
  for (int j = 0; j < int(rn_.size()); ++j) {
    if (j == ctx().self()) continue;
    if (rn_[std::size_t(j)] > ln_[std::size_t(j)]) return true;
  }
  return false;
}

}  // namespace gmx
