#include "gridmutex/mutex/suzuki_kasami.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void SuzukiKasamiMutex::init(int holder_rank) {
  GMX_ASSERT_MSG(holder_rank >= 0 && holder_rank < ctx().size(),
                 "Suzuki-Kasami requires an initial token holder");
  rn_.assign(std::size_t(ctx().size()), 0);
  has_token_ = (ctx().self() == holder_rank);
  if (has_token_) {
    ln_.assign(std::size_t(ctx().size()), 0);
    q_.clear();
  }
}

void SuzukiKasamiMutex::request_cs() {
  begin_request();
  const auto self = std::size_t(ctx().self());
  ++rn_[self];
  if (has_token_) {
    enter_cs_and_notify();
    return;
  }
  // Encode once, share across the broadcast: every REQUEST datagram rides
  // the same refcounted payload block.
  wire::Writer w = ctx().writer(4);
  w.varint(rn_[self]);
  const Payload req = w.take_payload();
  for (int r = 0; r < ctx().size(); ++r) {
    if (r != ctx().self()) ctx().send_shared(r, kRequest, req);
  }
}

void SuzukiKasamiMutex::release_cs() {
  begin_release();
  GMX_ASSERT(has_token_);
  const auto self = std::size_t(ctx().self());
  ln_[self] = rn_[self];
  // Enqueue every participant with an unsatisfied request, scanning from
  // self+1 so the rank order rotates (canonical formulation). Note what is
  // deliberately *absent*: arrival-time ordering. §4.6 of the paper traces
  // Suzuki's weaker fairness to exactly this.
  const int n = ctx().size();
  for (int off = 1; off < n; ++off) {
    const int j = (ctx().self() + off) % n;
    if (rn_[std::size_t(j)] > ln_[std::size_t(j)] &&
        std::find(q_.begin(), q_.end(), std::uint32_t(j)) == q_.end()) {
      q_.push_back(std::uint32_t(j));
    }
  }
  if (!q_.empty()) {
    const int head = int(q_.front());
    q_.pop_front();
    send_token_to(head);
  }
}

void SuzukiKasamiMutex::on_message(int from_rank, std::uint16_t type,
                                   wire::Reader payload) {
  switch (type) {
    case kRequest: {
      const std::uint64_t seq = payload.varint();
      payload.expect_end();
      handle_request(from_rank, seq);
      break;
    }
    case kToken:
      handle_token(payload);
      break;
    case kRegenQuery: {
      const std::uint64_t round = payload.varint();
      payload.expect_end();
      handle_regen_query(from_rank, round);
      break;
    }
    case kRegenReply: {
      const std::uint64_t round = payload.varint();
      const std::uint64_t flags = payload.varint();
      const std::uint64_t own_seq = payload.varint();
      payload.expect_end();
      handle_regen_reply(from_rank, round, flags, own_seq);
      break;
    }
    default:
      throw_unknown_message(type);
  }
}

void SuzukiKasamiMutex::handle_request(int from_rank, std::uint64_t seq) {
  auto& rn = rn_[std::size_t(from_rank)];
  rn = std::max(rn, seq);
  if (!has_token_) return;
  if (state() == CsState::kIdle) {
    // Idle holder: grant any not-yet-satisfied request immediately. The
    // classical test is rn == ln+1; comparing with > additionally tolerates
    // reordered duplicates of the (single) outstanding request per node.
    if (rn > ln_[std::size_t(from_rank)]) send_token_to(from_rank);
  } else {
    // Holding the token inside the CS: the request will be served at
    // release; surface it (composition hook).
    if (rn > ln_[std::size_t(from_rank)]) observer().on_pending_request();
  }
}

void SuzukiKasamiMutex::handle_token(wire::Reader& payload) {
  GMX_ASSERT_MSG(!has_token_, "duplicate token");
  GMX_ASSERT_MSG(state() == CsState::kRequesting,
                 "token arrived at a non-requesting participant");
  const auto ln = payload.varint_array_u64();
  const auto q = payload.varint_array_u32();
  payload.expect_end();
  if (int(ln.size()) != ctx().size())
    throw wire::WireError("suzuki: token LN size mismatch");
  ln_ = ln;
  q_.assign(q.begin(), q.end());
  has_token_ = true;
  enter_cs_and_notify();
}

void SuzukiKasamiMutex::send_token_to(int rank) {
  GMX_ASSERT(has_token_);
  has_token_ = false;
  // The O(N) token payload (§4.7) encodes straight into the pooled block
  // the datagram carries — no intermediate copy.
  wire::Writer w = ctx().writer(2 + 2 * ln_.size() + q_.size());
  w.varint_array(std::span<const std::uint64_t>(ln_));
  std::vector<std::uint32_t> q(q_.begin(), q_.end());
  w.varint_array(std::span<const std::uint32_t>(q));
  ctx().send_writer(rank, kToken, std::move(w));
  q_.clear();
}

void SuzukiKasamiMutex::begin_token_regeneration() {
  if (regen_active_) return;
  if (has_token_) {  // false alarm: nothing to rebuild
    notify_token_regenerated();
    return;
  }
  GMX_ASSERT_MSG(state() != CsState::kInCs, "in CS without the token");
  regen_active_ = true;
  ++regen_round_;
  const int n = ctx().size();
  const auto self = std::size_t(ctx().self());
  regen_seen_.assign(std::size_t(n), 0);
  regen_last_.assign(std::size_t(n), 0);
  regen_seen_[self] = 1;
  regen_last_[self] =
      rn_[self] - (state() == CsState::kRequesting ? 1 : 0);
  regen_outstanding_ = n - 1;
  if (regen_outstanding_ == 0) {
    finish_regeneration();
    return;
  }
  wire::Writer w = ctx().writer(4);
  w.varint(regen_round_);
  const Payload query = w.take_payload();
  for (int r = 0; r < n; ++r) {
    if (r != ctx().self()) ctx().send_shared(r, kRegenQuery, query);
  }
}

void SuzukiKasamiMutex::cancel_token_regeneration() {
  regen_active_ = false;
  ++regen_round_;  // replies to the abandoned round become stale
}

void SuzukiKasamiMutex::handle_regen_query(int from_rank,
                                           std::uint64_t round) {
  std::uint64_t flags = 0;
  if (state() == CsState::kRequesting) flags |= kFlagRequesting;
  if (has_token_) flags |= kFlagHasToken;
  wire::Writer w = ctx().writer(8);
  w.varint(round);
  w.varint(flags);
  w.varint(rn_[std::size_t(ctx().self())]);
  ctx().send_writer(from_rank, kRegenReply, std::move(w));
}

void SuzukiKasamiMutex::handle_regen_reply(int from_rank, std::uint64_t round,
                                           std::uint64_t flags,
                                           std::uint64_t own_seq) {
  if (!regen_active_ || round != regen_round_) return;  // stale round
  if (regen_seen_[std::size_t(from_rank)]) return;      // duplicate reply
  if ((flags & kFlagHasToken) != 0) {
    // The token is alive after all; minting another would break uniqueness.
    // Abort; the recovery manager's probe will observe the live holder.
    cancel_token_regeneration();
    return;
  }
  regen_seen_[std::size_t(from_rank)] = 1;
  auto& rn = rn_[std::size_t(from_rank)];
  rn = std::max(rn, own_seq);
  regen_last_[std::size_t(from_rank)] =
      own_seq - ((flags & kFlagRequesting) != 0 ? 1 : 0);
  if (--regen_outstanding_ == 0) finish_regeneration();
}

void SuzukiKasamiMutex::finish_regeneration() {
  regen_active_ = false;
  ln_ = regen_last_;
  q_.clear();
  has_token_ = true;
  // Close the regeneration epoch at mint time, before any grant: from here
  // on the checker holds the instance to normal single-token invariants.
  notify_token_regenerated();
  if (state() == CsState::kRequesting) {
    enter_cs_and_notify();
    return;
  }
  // Idle holder: serve outstanding requesters exactly as release would.
  const int n = ctx().size();
  for (int off = 1; off < n; ++off) {
    const int j = (ctx().self() + off) % n;
    if (rn_[std::size_t(j)] > ln_[std::size_t(j)] &&
        std::find(q_.begin(), q_.end(), std::uint32_t(j)) == q_.end()) {
      q_.push_back(std::uint32_t(j));
    }
  }
  if (!q_.empty()) {
    const int head = int(q_.front());
    q_.pop_front();
    send_token_to(head);
  }
}

void SuzukiKasamiMutex::surrender_token_to(int to_rank) {
  GMX_ASSERT_MSG(has_token_ && state() == CsState::kIdle,
                 "surrender requires an idle token holder");
  GMX_ASSERT(to_rank != ctx().self());
  send_token_to(to_rank);
}

bool SuzukiKasamiMutex::has_pending_requests() const {
  if (!has_token_) return false;
  for (int j = 0; j < int(rn_.size()); ++j) {
    if (j == ctx().self()) continue;
    if (rn_[std::size_t(j)] > ln_[std::size_t(j)]) return true;
  }
  return false;
}

}  // namespace gmx
