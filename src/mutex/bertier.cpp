#include "gridmutex/mutex/bertier.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void BertierMutex::init(int holder_rank) {
  GMX_ASSERT_MSG(holder_rank >= 0 && holder_rank < ctx().size(),
                 "Bertier requires an initial token holder");
  GMX_ASSERT(max_local_streak_ >= 1);
  last_ = holder_rank;
  has_token_ = (ctx().self() == holder_rank);
  q_.clear();
  streak_ = 0;
}

void BertierMutex::request_cs() {
  begin_request();
  if (has_token_) {
    GMX_ASSERT_MSG(q_.empty(), "idle holder must have drained its queue");
    enter_cs_and_notify();
    return;
  }
  wire::Writer w = ctx().writer(4);
  w.varint(std::uint64_t(ctx().self()));
  ctx().send_writer(last_, kRequest, std::move(w));
  // No path reversal: the queue at the holder, not the request path,
  // decides the grant order. last_ keeps chasing the token.
}

void BertierMutex::release_cs() {
  begin_release();
  GMX_ASSERT(has_token_);
  if (!q_.empty()) grant_from_queue();
  // Empty queue: park the token here.
}

void BertierMutex::on_message(int from_rank, std::uint16_t type,
                              wire::Reader payload) {
  switch (type) {
    case kRequest: {
      const auto requester = int(payload.varint());
      payload.expect_end();
      GMX_ASSERT(requester >= 0 && requester < ctx().size());
      (void)from_rank;
      handle_request(requester);
      break;
    }
    case kToken: {
      const auto streak = int(payload.varint());
      const auto q = payload.varint_array_u32();
      payload.expect_end();
      GMX_ASSERT_MSG(!has_token_, "duplicate token");
      GMX_ASSERT_MSG(state() == CsState::kRequesting,
                     "token arrived at a non-requesting participant");
      has_token_ = true;
      streak_ = streak;
      q_.assign(q.begin(), q.end());
      enter_cs_and_notify();
      break;
    }
    default:
      throw_unknown_message(type);
  }
}

void BertierMutex::handle_request(int requester) {
  if (!has_token_) {
    // Chase the token: forward one hop toward the probable holder.
    GMX_ASSERT_MSG(last_ != ctx().self(),
                   "non-holder cannot be its own probable holder");
    wire::Writer w = ctx().writer(4);
    w.varint(std::uint64_t(requester));
    ctx().send_writer(last_, kRequest, std::move(w));
    return;
  }
  if (state() == CsState::kIdle && q_.empty()) {
    // Idle holder: grant directly (a local/remote distinction is moot with
    // an empty queue; streak bookkeeping happens in the send).
    q_.push_back(std::uint32_t(requester));
    grant_from_queue();
    return;
  }
  q_.push_back(std::uint32_t(requester));
  observer().on_pending_request();
}

void BertierMutex::grant_from_queue() {
  GMX_ASSERT(has_token_ && !q_.empty());
  const int my_cluster = ctx().cluster_of_rank(ctx().self());

  auto cluster_of = [&](std::uint32_t r) {
    return ctx().cluster_of_rank(int(r));
  };
  // Locality policy with aging: take the oldest same-cluster request while
  // the streak allows; otherwise the oldest remote request (falling back to
  // local if no remote is queued, which does not extend the streak's
  // starvation window since no remote exists to starve).
  auto it = q_.end();
  if (streak_ < max_local_streak_) {
    it = std::find_if(q_.begin(), q_.end(), [&](std::uint32_t r) {
      return cluster_of(r) == my_cluster;
    });
  }
  if (it == q_.end()) {
    it = std::find_if(q_.begin(), q_.end(), [&](std::uint32_t r) {
      return cluster_of(r) != my_cluster;
    });
  }
  if (it == q_.end()) it = q_.begin();  // only local ones, streak exhausted

  const auto grantee = *it;
  q_.erase(it);
  const bool stays_local = cluster_of(grantee) == my_cluster;
  const int new_streak = stays_local ? streak_ + 1 : 0;

  wire::Writer w = ctx().writer(4 + q_.size());
  w.varint(std::uint64_t(new_streak));
  std::vector<std::uint32_t> q(q_.begin(), q_.end());
  w.varint_array(std::span<const std::uint32_t>(q));

  has_token_ = false;
  q_.clear();
  streak_ = 0;
  last_ = int(grantee);
  ctx().send_writer(int(grantee), kToken, std::move(w));
}

}  // namespace gmx
