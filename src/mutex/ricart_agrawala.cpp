#include "gridmutex/mutex/ricart_agrawala.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void RicartAgrawalaMutex::init(int holder_rank) {
  // Permission-based: no token exists. A designated holder is meaningless;
  // accept kNoHolder or any valid rank (ignored) so the registry can treat
  // all algorithms uniformly.
  GMX_ASSERT(holder_rank == kNoHolder || holder_rank < ctx().size());
  clock_ = 0;
  request_ts_ = 0;
  replies_missing_ = 0;
  deferred_.clear();
}

void RicartAgrawalaMutex::request_cs() {
  begin_request();
  request_ts_ = ++clock_;
  replies_missing_ = ctx().size() - 1;
  if (replies_missing_ == 0) {  // singleton instance
    enter_cs_and_notify();
    return;
  }
  wire::Writer w = ctx().writer(4);
  w.varint(request_ts_);
  const Payload req = w.take_payload();  // encode-once broadcast
  for (int r = 0; r < ctx().size(); ++r) {
    if (r != ctx().self()) ctx().send_shared(r, kRequest, req);
  }
}

void RicartAgrawalaMutex::release_cs() {
  begin_release();
  for (int peer : deferred_) ctx().send(peer, kReply, {});
  deferred_.clear();
}

void RicartAgrawalaMutex::on_message(int from_rank, std::uint16_t type,
                                     wire::Reader payload) {
  switch (type) {
    case kRequest: {
      const std::uint64_t ts = payload.varint();
      payload.expect_end();
      clock_ = std::max(clock_, ts) + 1;
      const bool defer =
          state() == CsState::kInCs ||
          (state() == CsState::kRequesting &&
           !their_request_wins(ts, from_rank));
      if (defer) {
        GMX_ASSERT(std::find(deferred_.begin(), deferred_.end(), from_rank) ==
                   deferred_.end());
        deferred_.push_back(from_rank);
        observer().on_pending_request();
      } else {
        ctx().send(from_rank, kReply, {});
      }
      break;
    }
    case kReply:
      payload.expect_end();
      GMX_ASSERT_MSG(state() == CsState::kRequesting && replies_missing_ > 0,
                     "unexpected reply");
      if (--replies_missing_ == 0) enter_cs_and_notify();
      break;
    default:
      throw_unknown_message(type);
  }
}

bool RicartAgrawalaMutex::their_request_wins(std::uint64_t ts,
                                             int rank) const {
  if (ts != request_ts_) return ts < request_ts_;
  return rank < ctx().self();
}

}  // namespace gmx
