#include "gridmutex/mutex/central_server.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

void CentralServerMutex::init(int holder_rank) {
  GMX_ASSERT_MSG(holder_rank >= 0 && holder_rank < ctx().size(),
                 "central server: the initial holder is the server");
  server_ = holder_rank;
  q_.clear();
  busy_ = false;
  current_ = kNoHolder;
  revoke_sent_ = false;
  revoked_ = false;
}

void CentralServerMutex::request_cs() {
  begin_request();
  if (is_server()) {
    server_enqueue(ctx().self());
  } else {
    ctx().send(server_, kRequest, {});
  }
}

void CentralServerMutex::release_cs() {
  begin_release();
  revoked_ = false;
  if (is_server()) {
    server_on_release();
  } else {
    ctx().send(server_, kRelease, {});
  }
}

void CentralServerMutex::on_message(int from_rank, std::uint16_t type,
                                    wire::Reader payload) {
  payload.expect_end();
  switch (type) {
    case kRequest:
      GMX_ASSERT_MSG(is_server(), "kRequest routed to a non-server");
      server_enqueue(from_rank);
      break;
    case kRelease:
      GMX_ASSERT_MSG(is_server(), "kRelease routed to a non-server");
      GMX_ASSERT(current_ == from_rank);
      server_on_release();
      break;
    case kGrant:
      GMX_ASSERT_MSG(!is_server(), "kGrant routed to the server");
      GMX_ASSERT(from_rank == server_);
      enter_cs_and_notify();
      break;
    case kRevoke:
      GMX_ASSERT_MSG(!is_server(), "kRevoke routed to the server");
      GMX_ASSERT(from_rank == server_);
      if (!revoked_) {
        revoked_ = true;
        observer().on_pending_request();
      }
      break;
    default:
      throw_unknown_message(type);
  }
}

void CentralServerMutex::server_enqueue(int client) {
  q_.push_back(client);
  if (busy_) {
    if (current_ == ctx().self()) {
      // The server participant itself sits in the CS (composition hook).
      if (client != ctx().self()) observer().on_pending_request();
    } else {
      maybe_revoke();
    }
    return;
  }
  server_grant_next();
}

void CentralServerMutex::maybe_revoke() {
  GMX_ASSERT(busy_ && current_ != ctx().self());
  if (revoke_sent_ || q_.empty()) return;
  revoke_sent_ = true;
  ctx().send(current_, kRevoke, {});
}

void CentralServerMutex::server_grant_next() {
  GMX_ASSERT(!busy_);
  if (q_.empty()) return;
  const int head = q_.front();
  q_.pop_front();
  busy_ = true;
  current_ = head;
  revoke_sent_ = false;
  if (head == ctx().self()) {
    enter_cs_and_notify();
    if (has_pending_requests()) observer().on_pending_request();
  } else {
    ctx().send(head, kGrant, {});
    maybe_revoke();  // queue may already be non-empty behind this grant
  }
}

void CentralServerMutex::server_on_release() {
  GMX_ASSERT(busy_);
  busy_ = false;
  current_ = kNoHolder;
  revoke_sent_ = false;
  server_grant_next();
}

bool CentralServerMutex::has_pending_requests() const {
  if (!is_server()) return revoked_;
  return std::any_of(q_.begin(), q_.end(),
                     [self = ctx().self()](int r) { return r != self; });
}

bool CentralServerMutex::holds_token() const {
  // The "token" abstraction maps to: the server's grant is currently with
  // us (clients), or the server is free / serving itself (server).
  if (is_server()) return !busy_ || current_ == ctx().self();
  return in_cs();
}

}  // namespace gmx
