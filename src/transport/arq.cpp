#include "gridmutex/transport/arq.hpp"

#include <algorithm>

#include "gridmutex/sim/assert.hpp"

namespace gmx::transport {

ArqSender::ArqSender(ArqConfig cfg, Hooks hooks)
    : cfg_(cfg), hooks_(std::move(hooks)) {
  GMX_ASSERT(hooks_.transmit && hooks_.arm && hooks_.cancel);
  GMX_ASSERT(cfg_.rto_ms > 0 && cfg_.backoff >= 1.0);
  GMX_ASSERT(cfg_.max_attempts >= 1);
}

void ArqSender::send(Message msg) {
  GMX_ASSERT_MSG(msg.protocol != 0, "arq: protocol 0 is unsequenced");
  Channel& ch = channels_[{msg.dst, msg.protocol}];
  msg.seq = ++ch.next_seq;
  ++unacked_;
  if (ch.head_busy) {
    ch.queue.push_back(std::move(msg));
    return;
  }
  launch(ch, std::move(msg));
}

void ArqSender::launch(Channel& ch, Message msg) {
  ch.head_busy = true;
  ch.head.msg = std::move(msg);
  ch.head.attempts = 1;
  ch.head.rto_ms = cfg_.rto_ms;
  const Key key{ch.head.msg.dst, ch.head.msg.protocol};
  const std::uint64_t seq = ch.head.msg.seq;
  ++counters_.sent;
  hooks_.transmit(ch.head.msg);
  ch.head.timer =
      hooks_.arm(ch.head.rto_ms, [this, key, seq] { on_timeout(key, seq); });
}

void ArqSender::on_ack(NodeId peer, ProtocolId protocol, std::uint64_t seq) {
  const auto it = channels_.find({peer, protocol});
  if (it == channels_.end() || !it->second.head_busy ||
      it->second.head.msg.seq != seq) {
    ++counters_.stale_acks;  // late ack of a retransmitted/given-up frame
    return;
  }
  Channel& ch = it->second;
  hooks_.cancel(ch.head.timer);
  ch.head_busy = false;
  ch.head.msg.payload.clear();
  GMX_ASSERT(unacked_ > 0);
  --unacked_;
  ++counters_.acked;
  launch_next(ch);
}

void ArqSender::on_timeout(Key key, std::uint64_t seq) {
  const auto it = channels_.find(key);
  if (it == channels_.end() || !it->second.head_busy ||
      it->second.head.msg.seq != seq) {
    return;  // ack won the race with the timer callback
  }
  Channel& ch = it->second;
  if (ch.head.attempts >= cfg_.max_attempts) {
    // Retry horizon exhausted: the frame becomes a pure omission and the
    // channel moves on, exactly as the simulator's ARQ does.
    ++counters_.gave_up;
    GMX_ASSERT(unacked_ > 0);
    --unacked_;
    Message dead = std::move(ch.head.msg);
    ch.head_busy = false;
    if (hooks_.on_give_up) hooks_.on_give_up(dead);
    launch_next(ch);
    return;
  }
  ++ch.head.attempts;
  ch.head.rto_ms = std::min<std::uint32_t>(
      std::uint32_t(double(ch.head.rto_ms) * cfg_.backoff), cfg_.rto_max_ms);
  ++counters_.retransmitted;
  hooks_.transmit(ch.head.msg);
  ch.head.timer =
      hooks_.arm(ch.head.rto_ms, [this, key, seq] { on_timeout(key, seq); });
}

void ArqSender::launch_next(Channel& ch) {
  if (ch.queue.empty()) return;
  Message next = std::move(ch.queue.front());
  ch.queue.pop_front();
  launch(ch, std::move(next));
}

ArqReceiver::Verdict ArqReceiver::on_frame(const Message& msg) {
  GMX_ASSERT_MSG(msg.seq > 0, "arq: unsequenced frame on receive path");
  std::uint64_t& last = last_delivered_[{msg.src, msg.protocol}];
  if (msg.seq > last) {
    last = msg.seq;
    ++counters_.delivered;
    return Verdict::kDeliver;
  }
  ++counters_.duplicates;
  return Verdict::kDuplicate;
}

}  // namespace gmx::transport
