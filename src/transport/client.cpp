#include "gridmutex/transport/client.hpp"

#include <unistd.h>

#include <chrono>
#include <future>
#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx::transport {

NodeStats& NodeStats::operator+=(const NodeStats& o) {
  arrivals += o.arrivals;
  grants += o.grants;
  sheds += o.sheds;
  deadline_misses += o.deadline_misses;
  releases += o.releases;
  fences_issued += o.fences_issued;
  return *this;
}

void encode_stats(wire::Writer& w, const NodeStats& s) {
  w.u64(s.arrivals);
  w.u64(s.grants);
  w.u64(s.sheds);
  w.u64(s.deadline_misses);
  w.u64(s.releases);
  w.u64(s.fences_issued);
}

NodeStats decode_stats(wire::Reader& r) {
  NodeStats s;
  s.arrivals = r.u64();
  s.grants = r.u64();
  s.sheds = r.u64();
  s.deadline_misses = r.u64();
  s.releases = r.u64();
  s.fences_issued = r.u64();
  return s;
}

namespace {

[[nodiscard]] std::uint64_t derive_client_id() {
  const auto ticks = std::chrono::steady_clock::now().time_since_epoch();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(ticks).count();
  return (std::uint64_t(getpid()) << 40) ^ std::uint64_t(ns);
}

/// A client-originated frame: src stays kInvalidNode (clients are not grid
/// nodes; the daemon replies to the datagram's source address), dst names
/// the target node so its routing check accepts the frame.
[[nodiscard]] Message client_frame(NodeId dst, ProtocolId protocol,
                                   ClientMsg type,
                                   std::vector<std::uint8_t> payload = {}) {
  Message m;
  m.dst = dst;
  m.protocol = protocol;
  m.type = std::uint16_t(type);
  m.payload = std::move(payload);
  return m;
}

}  // namespace

LockClient::LockClient(std::vector<PeerAddr> nodes,
                       ProtocolId client_protocol,
                       const std::string& bind_ip)
    : nodes_(std::move(nodes)),
      protocol_(client_protocol),
      client_id_(derive_client_id()),
      tp_(kInvalidNode, bind_ip, 0) {
  tp_.attach_raw(protocol_, [this](const Message& m, const PeerAddr&) {
    if (expecter_ && expecter_->match(m)) {
      Expecter e = std::move(*expecter_);
      expecter_.reset();
      tp_.cancel(e.retry_timer);
      tp_.cancel(e.deadline_timer);
      RpcReply reply;
      reply.type = m.type;
      reply.payload.assign(m.payload.begin(), m.payload.end());
      e.fulfill(std::move(reply));
    }
  });
  tp_.start();
}

LockClient::~LockClient() { tp_.stop(); }

std::optional<LockClient::RpcReply> LockClient::rpc(
    NodeId node, std::function<Message()> make,
    std::function<bool(const Message&)> match, std::uint32_t timeout_ms,
    std::uint32_t retry_ms) {
  GMX_ASSERT(node < nodes_.size());
  auto promise = std::make_shared<std::promise<std::optional<RpcReply>>>();
  auto future = promise->get_future();
  const PeerAddr to = nodes_[node];
  tp_.post([this, to, make = std::move(make), match = std::move(match),
            promise, timeout_ms, retry_ms] {
    GMX_ASSERT_MSG(!expecter_, "LockClient: overlapping rpc");
    // The retransmit loop re-arms itself until the expecter resolves.
    auto resend = std::make_shared<std::function<void()>>();
    *resend = [this, to, make, resend, retry_ms] {
      if (!expecter_) return;
      tp_.send_raw(to, make());
      expecter_->retry_timer = tp_.schedule_ms(retry_ms, *resend);
    };
    Expecter e;
    e.match = match;
    e.fulfill = [promise](RpcReply r) { promise->set_value(std::move(r)); };
    e.deadline_timer = tp_.schedule_ms(timeout_ms, [this, promise] {
      if (!expecter_) return;
      tp_.cancel(expecter_->retry_timer);
      expecter_.reset();
      promise->set_value(std::nullopt);
    });
    expecter_ = std::move(e);
    tp_.send_raw(to, make());
    expecter_->retry_timer = tp_.schedule_ms(retry_ms, *resend);
  });
  return future.get();
}

std::optional<LockClient::PingReply> LockClient::ping(
    NodeId node, std::uint32_t timeout_ms) {
  const std::uint64_t token = client_id_ ^ (0x9E3779B97F4A7C15ull *
                                            next_req_id_++);
  const auto reply = rpc(
      node,
      [this, node, token] {
        wire::Writer w;
        w.u64(token);
        return client_frame(node, protocol_, ClientMsg::kPing, w.take());
      },
      [token](const Message& m) {
        if (m.type != std::uint16_t(ClientMsg::kPong)) return false;
        try {
          wire::Reader r(m.payload);
          return r.u64() == token;
        } catch (const wire::WireError&) {
          return false;
        }
      },
      timeout_ms);
  if (!reply) return std::nullopt;
  wire::Reader r(std::span<const std::uint8_t>(reply->payload));
  (void)r.u64();  // token, already matched
  PingReply out;
  out.node = r.u32();
  out.started = r.u8() != 0;
  return out;
}

bool LockClient::send_peers(NodeId node, std::uint32_t timeout_ms) {
  return rpc(
             node,
             [this, node] {
               wire::Writer w;
               w.varint(nodes_.size());
               for (const PeerAddr& a : nodes_) {
                 w.u32(a.ip);
                 w.u16(a.port);
               }
               return client_frame(node, protocol_, ClientMsg::kPeers,
                                   w.take());
             },
             [](const Message& m) {
               return m.type == std::uint16_t(ClientMsg::kPeersOk);
             },
             timeout_ms)
      .has_value();
}

bool LockClient::start(NodeId node, std::uint32_t timeout_ms) {
  return rpc(
             node,
             [this, node] {
               return client_frame(node, protocol_, ClientMsg::kStart);
             },
             [](const Message& m) {
               return m.type == std::uint16_t(ClientMsg::kStarted);
             },
             timeout_ms)
      .has_value();
}

LockClient::Acquire LockClient::acquire(NodeId node, LockId lock,
                                        std::uint32_t deadline_ms,
                                        std::uint32_t timeout_ms) {
  const std::uint64_t req_id = next_req_id_++;
  const auto sent_at = std::chrono::steady_clock::now();
  Acquire out;
  out.req_id = req_id;
  const auto reply = rpc(
      node,
      [this, node, lock, req_id, deadline_ms] {
        wire::Writer w;
        w.u64(client_id_);
        w.u64(req_id);
        w.varint(lock);
        w.varint(deadline_ms);
        return client_frame(node, protocol_, ClientMsg::kAcquire, w.take());
      },
      [req_id](const Message& m) {
        if (m.type != std::uint16_t(ClientMsg::kGranted) &&
            m.type != std::uint16_t(ClientMsg::kShed) &&
            m.type != std::uint16_t(ClientMsg::kExpired)) {
          return false;
        }
        try {
          wire::Reader r(m.payload);
          return r.u64() == req_id;
        } catch (const wire::WireError&) {
          return false;
        }
      },
      timeout_ms);
  if (!reply) return out;  // kTimeout
  out.obtain_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - sent_at)
                      .count();
  if (reply->type == std::uint16_t(ClientMsg::kGranted)) {
    wire::Reader r(std::span<const std::uint8_t>(reply->payload));
    (void)r.u64();    // req_id
    (void)r.varint();  // lock
    out.fence = r.u64();
    out.status = Acquire::Status::kGranted;
  } else if (reply->type == std::uint16_t(ClientMsg::kShed)) {
    out.status = Acquire::Status::kShed;
  } else {
    out.status = Acquire::Status::kExpired;
  }
  return out;
}

bool LockClient::release(NodeId node, LockId lock, std::uint64_t req_id,
                         std::uint32_t timeout_ms) {
  return rpc(
             node,
             [this, node, lock, req_id] {
               wire::Writer w;
               w.u64(client_id_);
               w.u64(req_id);
               w.varint(lock);
               return client_frame(node, protocol_, ClientMsg::kRelease,
                                   w.take());
             },
             [req_id](const Message& m) {
               if (m.type != std::uint16_t(ClientMsg::kReleased))
                 return false;
               try {
                 wire::Reader r(m.payload);
                 return r.u64() == req_id;
               } catch (const wire::WireError&) {
                 return false;
               }
             },
             timeout_ms)
      .has_value();
}

std::optional<NodeStats> LockClient::stats(NodeId node,
                                           std::uint32_t timeout_ms) {
  const auto reply = rpc(
      node,
      [this, node] {
        return client_frame(node, protocol_, ClientMsg::kStats);
      },
      [](const Message& m) {
        return m.type == std::uint16_t(ClientMsg::kStatsReply);
      },
      timeout_ms);
  if (!reply) return std::nullopt;
  wire::Reader r(std::span<const std::uint8_t>(reply->payload));
  return decode_stats(r);
}

bool LockClient::shutdown(NodeId node, std::uint32_t timeout_ms) {
  return rpc(
             node,
             [this, node] {
               return client_frame(node, protocol_, ClientMsg::kShutdown);
             },
             [](const Message& m) {
               return m.type == std::uint16_t(ClientMsg::kBye);
             },
             timeout_ms)
      .has_value();
}

}  // namespace gmx::transport
