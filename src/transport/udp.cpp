#include "gridmutex/transport/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>

#include "gridmutex/sim/assert.hpp"
#include "gridmutex/transport/frame.hpp"

namespace gmx::transport {

namespace {

[[nodiscard]] std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] sockaddr_in to_sockaddr(const PeerAddr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(a.ip);
  sa.sin_port = htons(a.port);
  return sa;
}

[[nodiscard]] PeerAddr from_sockaddr(const sockaddr_in& sa) {
  return PeerAddr{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw std::runtime_error("transport: fcntl(O_NONBLOCK) failed");
}

}  // namespace

std::string PeerAddr::to_string() const {
  in_addr a{};
  a.s_addr = htonl(ip);
  char buf[INET_ADDRSTRLEN] = {};
  inet_ntop(AF_INET, &a, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(port);
}

std::optional<PeerAddr> PeerAddr::parse(std::string_view s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= s.size()) {
    return std::nullopt;
  }
  const std::string host(s.substr(0, colon));
  in_addr a{};
  if (inet_pton(AF_INET, host.c_str(), &a) != 1) return std::nullopt;
  std::uint32_t port = 0;
  const std::string_view p = s.substr(colon + 1);
  const auto [ptr, ec] = std::from_chars(p.data(), p.data() + p.size(), port);
  if (ec != std::errc{} || ptr != p.data() + p.size() || port > 65535)
    return std::nullopt;
  return PeerAddr{ntohl(a.s_addr), std::uint16_t(port)};
}

PeerAddr PeerAddr::loopback(std::uint16_t port) {
  return PeerAddr{0x7F000001u, port};
}

UdpTransport::UdpTransport(NodeId self, const std::string& bind_ip,
                           std::uint16_t port, ArqConfig arq)
    : self_(self) {
  sock_ = socket(AF_INET, SOCK_DGRAM, 0);
  if (sock_ < 0) throw std::runtime_error("transport: socket() failed");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_ip.c_str(), &sa.sin_addr) != 1) {
    close(sock_);
    throw std::runtime_error("transport: bad bind address " + bind_ip);
  }
  if (bind(sock_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    close(sock_);
    throw std::runtime_error("transport: bind to " + bind_ip + ":" +
                             std::to_string(port) + " failed: " +
                             std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(sock_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    close(sock_);
    throw std::runtime_error("transport: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  set_nonblocking(sock_);

  int pipefd[2];
  if (pipe(pipefd) < 0) {
    close(sock_);
    throw std::runtime_error("transport: pipe() failed");
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);

  arq_send_ = std::make_unique<ArqSender>(
      arq,
      ArqSender::Hooks{
          .transmit =
              [this](const Message& m) { transmit_frame(m, addr_of(m.dst)); },
          .arm =
              [this](std::uint32_t delay_ms, std::function<void()> fire) {
                return schedule_ms(delay_ms, std::move(fire));
              },
          .cancel = [this](TimerToken t) { cancel(t); },
          .on_give_up = nullptr,
      });
}

UdpTransport::~UdpTransport() {
  if (loop_.joinable()) stop();
  if (sock_ >= 0) close(sock_);
  if (wake_r_ >= 0) close(wake_r_);
  if (wake_w_ >= 0) close(wake_w_);
}

void UdpTransport::add_peer(NodeId node, PeerAddr addr) {
  peers_[node] = addr;
}

std::optional<PeerAddr> UdpTransport::peer(NodeId node) const {
  const auto it = peers_.find(node);
  if (it == peers_.end()) return std::nullopt;
  return it->second;
}

void UdpTransport::attach(ProtocolId protocol, Handler handler) {
  GMX_ASSERT(protocol != 0);
  handlers_[protocol] = std::move(handler);
}

void UdpTransport::attach_raw(ProtocolId protocol, RawHandler handler) {
  GMX_ASSERT(protocol != 0);
  raw_handlers_[protocol] = std::move(handler);
}

void UdpTransport::set_reliable(ProtocolId protocol) {
  reliable_[protocol] = true;
}

bool UdpTransport::reliable(ProtocolId protocol) const {
  const auto it = reliable_.find(protocol);
  return it != reliable_.end() && it->second;
}

void UdpTransport::start() {
  GMX_ASSERT_MSG(!started_.load(), "transport: start() called twice");
  started_.store(true);
  loop_ = std::thread([this] { run(); });
}

void UdpTransport::request_stop() {
  stop_requested_.store(true, std::memory_order_relaxed);
  wake();
}

void UdpTransport::stop() {
  GMX_ASSERT_MSG(loop_.get_id() != std::this_thread::get_id(),
                 "transport: stop() (join) from the loop thread; use "
                 "request_stop()");
  request_stop();
  if (loop_.joinable()) loop_.join();
}

void UdpTransport::post(std::function<void()> fn) {
  {
    MutexLock lock(tasks_mu_);
    tasks_.push_back(std::move(fn));
  }
  wake();
}

void UdpTransport::wake() {
  if (wake_w_ < 0) return;
  const char byte = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = write(wake_w_, &byte, 1);
}

wire::Writer UdpTransport::writer(std::size_t reserve) {
  return wire::Writer(pool_, reserve);
}

UdpTransport::TimerToken UdpTransport::schedule_ms(std::uint32_t delay_ms,
                                                   std::function<void()> fn) {
  const TimerToken token = next_timer_token_++;
  timers_.push_back(Timer{
      steady_now_ns() + std::int64_t(delay_ms) * 1'000'000, token,
      std::move(fn)});
  std::push_heap(timers_.begin(), timers_.end(),
                 [](const Timer& a, const Timer& b) {
                   return a.deadline_ns > b.deadline_ns;
                 });
  return token;
}

void UdpTransport::cancel(TimerToken token) {
  // Lazy cancellation: null the callback; the heap entry expires silently.
  for (Timer& t : timers_) {
    if (t.token == token) {
      t.fn = nullptr;
      return;
    }
  }
}

int UdpTransport::poll_timeout_ms() const {
  if (timers_.empty()) return 100;
  const std::int64_t next = timers_.front().deadline_ns;
  const std::int64_t now = steady_now_ns();
  if (next <= now) return 0;
  const std::int64_t ms = (next - now + 999'999) / 1'000'000;
  return int(std::min<std::int64_t>(ms, 100));
}

void UdpTransport::run() {
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {
        {.fd = sock_, .events = POLLIN, .revents = 0},
        {.fd = wake_r_, .events = POLLIN, .revents = 0},
    };
    const int rc = poll(fds, 2, poll_timeout_ms());
    if (rc < 0 && errno != EINTR) break;
    if (fds[1].revents & POLLIN) {
      char buf[256];
      while (read(wake_r_, buf, sizeof(buf)) > 0) {
      }
    }
    drain_tasks();
    if (fds[0].revents & POLLIN) drain_socket();
    fire_due_timers();
  }
  // Final drain so posted shutdown work (e.g. farewell replies) runs.
  drain_tasks();
}

void UdpTransport::drain_tasks() {
  for (;;) {
    std::function<void()> fn;
    {
      MutexLock lock(tasks_mu_);
      if (tasks_.empty()) return;
      fn = std::move(tasks_.front());
      tasks_.pop_front();
    }
    fn();
  }
}

void UdpTransport::fire_due_timers() {
  const std::int64_t now = steady_now_ns();
  const auto later = [](const Timer& a, const Timer& b) {
    return a.deadline_ns > b.deadline_ns;
  };
  while (!timers_.empty() && timers_.front().deadline_ns <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), later);
    Timer t = std::move(timers_.back());
    timers_.pop_back();
    if (t.fn) t.fn();
  }
}

void UdpTransport::drain_socket() {
  std::uint8_t buf[65536];
  for (;;) {
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    const ssize_t n = recvfrom(sock_, buf, sizeof(buf), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;
    }
    if (n == 0) continue;
    ++counters_.datagrams_received;
    // One pooled copy kernel→block; every frame payload then slices it.
    const Payload dgram =
        pool_.acquire({buf, std::size_t(n)});
    const PeerAddr from = from_sockaddr(sa);
    try {
      handle_datagram(dgram, from);
    } catch (const wire::WireError&) {
      ++counters_.decode_errors;
    }
  }
}

void UdpTransport::handle_datagram(const Payload& dgram,
                                   const PeerAddr& from) {
  for (const Message& msg : decode_datagram(dgram)) {
    if (msg.type == Message::kAckType) {
      arq_send_->on_ack(msg.src, msg.protocol, msg.seq);
      continue;
    }
    if (msg.dst != self_) {
      ++counters_.misrouted;
      continue;
    }
    if (reliable(msg.protocol)) {
      if (msg.seq == 0) {
        ++counters_.decode_errors;  // sequenced protocol, unsequenced frame
        continue;
      }
      // Always ack — a duplicate means our previous ack was lost.
      send_ack(msg, from);
      if (arq_recv_.on_frame(msg) == ArqReceiver::Verdict::kDuplicate)
        continue;
    }
    try {
      dispatch(msg, from);
    } catch (const wire::WireError&) {
      ++counters_.handler_errors;
    }
  }
}

void UdpTransport::dispatch(const Message& msg, const PeerAddr& from) {
  if (const auto it = handlers_.find(msg.protocol); it != handlers_.end()) {
    ++counters_.frames_delivered;
    it->second(msg);
    return;
  }
  if (const auto it = raw_handlers_.find(msg.protocol);
      it != raw_handlers_.end()) {
    ++counters_.frames_delivered;
    it->second(msg, from);
    return;
  }
  ++counters_.unroutable;
}

void UdpTransport::send_ack(const Message& msg, const PeerAddr& to) {
  Message ack;
  ack.src = self_;
  ack.dst = msg.src;
  ack.protocol = msg.protocol;
  ack.type = Message::kAckType;
  ack.seq = msg.seq;
  ++counters_.acks_sent;
  write_datagram(ack, to);
}

PeerAddr UdpTransport::addr_of(NodeId node) const {
  const auto it = peers_.find(node);
  GMX_ASSERT_MSG(it != peers_.end(), "transport: send to unknown peer node");
  return it->second;
}

void UdpTransport::send(Message msg) {
  GMX_ASSERT_MSG(msg.src == self_ || msg.src == kInvalidNode,
                 "transport: forged source node");
  msg.src = self_;
  if (reliable(msg.protocol)) {
    arq_send_->send(std::move(msg));  // transmits via transmit_frame hook
    return;
  }
  msg.seq = 0;
  transmit_frame(msg, addr_of(msg.dst));
}

void UdpTransport::send_raw(const PeerAddr& to, Message msg) {
  msg.seq = 0;
  transmit_frame(msg, to);
}

void UdpTransport::transmit_frame(const Message& msg, const PeerAddr& to) {
  if (send_fault_) {
    const int action = send_fault_(msg);
    if (action & kDrop) {
      ++counters_.fault_dropped;
      return;
    }
    if (action & kHold) {
      ++counters_.fault_held;
      held_.emplace_back(msg, to);
      return;
    }
    if (action & kDuplicate) {
      ++counters_.fault_duplicated;
      ++counters_.frames_sent;
      write_datagram(msg, to);
    }
  }
  ++counters_.frames_sent;
  write_datagram(msg, to);
  // Flush frames a kHold verdict parked: they depart *after* the frame
  // that triggered this call, which reorders them on the real wire.
  if (!held_.empty() && !flushing_held_) {
    flushing_held_ = true;
    std::vector<std::pair<Message, PeerAddr>> held;
    held.swap(held_);
    for (auto& [m, addr] : held) {
      ++counters_.frames_sent;
      write_datagram(m, addr);
    }
    flushing_held_ = false;
  }
}

void UdpTransport::write_datagram(const Message& msg, const PeerAddr& to) {
  GMX_ASSERT(msg.payload.size() + 64 < kMaxDatagramBytes);
  // Envelope + header into a small pooled block; payload spliced as the
  // second iovec — the pool-backed encode is never copied.
  wire::Writer hdr(pool_, 32);
  begin_datagram(hdr);
  append_frame_header(hdr, msg);
  const std::span<const std::uint8_t> head = hdr.view();
  iovec iov[2] = {
      {.iov_base = const_cast<std::uint8_t*>(head.data()),
       .iov_len = head.size()},
      {.iov_base = const_cast<std::uint8_t*>(msg.payload.data()),
       .iov_len = msg.payload.size()},
  };
  sockaddr_in sa = to_sockaddr(to);
  msghdr mh{};
  mh.msg_name = &sa;
  mh.msg_namelen = sizeof(sa);
  mh.msg_iov = iov;
  mh.msg_iovlen = msg.payload.empty() ? 1 : 2;
  const ssize_t n = sendmsg(sock_, &mh, 0);
  if (n < 0) {
    // UDP may drop under pressure; ARQ recovers reliable traffic.
    ++counters_.send_errors;
    return;
  }
  ++counters_.datagrams_sent;
}

const ArqCounters& UdpTransport::arq_send_counters() const {
  return arq_send_->counters();
}

const ArqCounters& UdpTransport::arq_recv_counters() const {
  return arq_recv_.counters();
}

}  // namespace gmx::transport
