#include "gridmutex/transport/endpoint.hpp"

#include "gridmutex/sim/assert.hpp"

namespace gmx::transport {

TransportMutexEndpoint::TransportMutexEndpoint(
    UdpTransport& tp, ProtocolId protocol, std::vector<NodeId> members,
    int self_rank, const Topology& topo,
    std::unique_ptr<MutexAlgorithm> algorithm, Rng rng)
    : tp_(tp),
      protocol_(protocol),
      members_(std::move(members)),
      rank_(self_rank),
      topo_(topo),
      algo_(std::move(algorithm)),
      rng_(rng),
      epoch_(std::chrono::steady_clock::now()) {
  GMX_ASSERT(!members_.empty());
  GMX_ASSERT(self_rank >= 0 && std::size_t(self_rank) < members_.size());
  GMX_ASSERT_MSG(members_[std::size_t(self_rank)] == tp_.self(),
                 "endpoint rank does not map to this transport's node");
  for (std::size_t r = 0; r < members_.size(); ++r) {
    const auto [it, inserted] = rank_of_.emplace(members_[r], int(r));
    (void)it;
    GMX_ASSERT_MSG(inserted, "duplicate node in member list");
  }
  algo_->attach(*this, *this);
  tp_.set_reliable(protocol_);
  tp_.attach(protocol_, [this](const Message& m) { handle_message(m); });
}

void TransportMutexEndpoint::init(int holder_rank) {
  tp_.post([this, holder_rank] {
    algo_affinity_.check(
        "transport: algorithm state touched off the loop thread");
    algo_->init(holder_rank);
  });
}

void TransportMutexEndpoint::request_cs() {
  tp_.post([this] {
    algo_affinity_.check(
        "transport: algorithm state touched off the loop thread");
    algo_->request_cs();
  });
}

void TransportMutexEndpoint::release_cs() {
  tp_.post([this] {
    algo_affinity_.check(
        "transport: algorithm state touched off the loop thread");
    algo_->release_cs();
  });
}

int TransportMutexEndpoint::cluster_of_rank(int rank) const {
  GMX_ASSERT(rank >= 0 && std::size_t(rank) < members_.size());
  return int(topo_.cluster_of(members_[std::size_t(rank)]));
}

Message TransportMutexEndpoint::frame_to(int to_rank,
                                         std::uint16_t type) const {
  GMX_ASSERT(to_rank >= 0 && std::size_t(to_rank) < members_.size());
  GMX_ASSERT_MSG(to_rank != rank_, "algorithm attempted a self-send");
  Message m;
  m.src = node();
  m.dst = members_[std::size_t(to_rank)];
  m.protocol = protocol_;
  m.type = type;
  return m;
}

void TransportMutexEndpoint::send(int to_rank, std::uint16_t type,
                                  std::span<const std::uint8_t> payload) {
  Message m = frame_to(to_rank, type);
  // Pool-backed copy: the span-send path still avoids a heap allocation
  // (all algorithm sends happen on the loop thread that owns the pool).
  m.payload = tp_.pool().acquire(payload);
  tp_.send(std::move(m));
}

wire::Writer TransportMutexEndpoint::writer(std::size_t reserve) {
  return tp_.writer(reserve);
}

void TransportMutexEndpoint::send_writer(int to_rank, std::uint16_t type,
                                         wire::Writer&& w) {
  Message m = frame_to(to_rank, type);
  m.payload = w.take_payload();
  tp_.send(std::move(m));
}

void TransportMutexEndpoint::send_shared(int to_rank, std::uint16_t type,
                                         const Payload& payload) {
  Message m = frame_to(to_rank, type);
  m.payload = payload;  // refcount bump, encode-once fan-out
  tp_.send(std::move(m));
}

SimTime TransportMutexEndpoint::now() const {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count();
  return SimTime::from_ns(ns);
}

void TransportMutexEndpoint::on_cs_granted() {
  if (!callbacks_.on_granted) return;
  tp_.post([cb = callbacks_.on_granted] { cb(); });
}

void TransportMutexEndpoint::on_pending_request() {
  if (!callbacks_.on_pending) return;
  tp_.post([cb = callbacks_.on_pending] { cb(); });
}

void TransportMutexEndpoint::handle_message(const Message& msg) {
  algo_affinity_.check(
      "transport: algorithm state touched off the loop thread");
  const auto it = rank_of_.find(msg.src);
  if (it == rank_of_.end())
    throw wire::WireError("transport: frame from a node outside the "
                          "mutex instance");
  algo_->on_message(it->second, msg.type, wire::Reader(msg.payload));
}

}  // namespace gmx::transport
