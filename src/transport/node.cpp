#include "gridmutex/transport/node.hpp"

#include <utility>

#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/sim/assert.hpp"

namespace gmx::transport {

std::vector<std::string> GridConfig::lock_names() const {
  std::vector<std::string> names;
  names.reserve(locks);
  for (std::uint32_t l = 0; l < locks; ++l)
    names.push_back("lock" + std::to_string(l));
  return names;
}

std::vector<NodeId> GridConfig::app_nodes() const {
  const Topology topo = topology();
  std::vector<NodeId> apps;
  apps.reserve(std::size_t(clusters) * apps_per_cluster);
  for (ClusterId c = 0; c < clusters; ++c) {
    const std::vector<NodeId> members = topo.nodes_of(c);
    for (std::size_t r = 1; r < members.size(); ++r)
      apps.push_back(members[r]);
  }
  return apps;
}

LockdNode::LockdNode(UdpTransport& tp, GridConfig cfg, Options opts)
    : tp_(tp),
      cfg_(std::move(cfg)),
      opts_(opts),
      topo_(cfg_.topology()),
      table_(cfg_.clusters, cfg_.placement, cfg_.lock_names()),
      epoch_(std::chrono::steady_clock::now()) {
  GMX_ASSERT_MSG(tp_.self() < topo_.node_count(),
                 "transport node id outside the grid");
  my_cluster_ = topo_.cluster_of(tp_.self());
  is_coordinator_node_ = tp_.self() == topo_.first_node_of(my_cluster_);

  std::vector<NodeId> coordinator_nodes;
  coordinator_nodes.reserve(cfg_.clusters);
  for (ClusterId c = 0; c < cfg_.clusters; ++c)
    coordinator_nodes.push_back(topo_.first_node_of(c));
  const std::vector<NodeId> members = topo_.nodes_of(my_cluster_);
  int my_rank = -1;
  for (std::size_t r = 0; r < members.size(); ++r)
    if (members[r] == tp_.self()) my_rank = int(r);
  GMX_ASSERT(my_rank >= 0);

  const bool inter_token = is_token_based(cfg_.inter_algorithm);
  const bool intra_token = is_token_based(cfg_.intra_algorithm);

  // Same derivation chain as run_service_experiment -> LockService:
  // lock l's composition draws from fork(100 + l) of the service stream.
  const Rng service_root(cfg_.service_seed());
  locks_.resize(cfg_.locks);
  for (LockId l = 0; l < cfg_.locks; ++l) {
    const Rng root(service_root.fork(100 + l).next_u64());
    PerLock& pl = locks_[l];
    const ClusterId home = table_.home_cluster(l);
    if (is_coordinator_node_) {
      pl.inter = std::make_unique<TransportMutexEndpoint>(
          tp_, cfg_.inter_protocol(l), coordinator_nodes, int(my_cluster_),
          topo_, make_algorithm(cfg_.inter_algorithm),
          root.fork(1000 + my_cluster_));
      pl.intra = std::make_unique<TransportMutexEndpoint>(
          tp_, cfg_.intra_protocol(l, my_cluster_), members, 0, topo_,
          make_algorithm(cfg_.intra_algorithm),
          root.fork(2000 + std::uint64_t(my_cluster_) * 64));
      pl.coordinator = std::make_unique<Coordinator>(*pl.intra, *pl.inter);
      pl.inter->init(inter_token ? int(home) : MutexAlgorithm::kNoHolder);
    } else {
      pl.intra = std::make_unique<TransportMutexEndpoint>(
          tp_, cfg_.intra_protocol(l, my_cluster_), members, my_rank, topo_,
          make_algorithm(cfg_.intra_algorithm),
          root.fork(2000 + std::uint64_t(my_cluster_) * 64 +
                    std::uint64_t(my_rank)));
      pl.intra->set_callbacks(
          MutexCallbacks{.on_granted = [this, l] { on_granted(l); }});
    }
    pl.intra->init(intra_token ? 0 : MutexAlgorithm::kNoHolder);
  }

  if (!is_coordinator_node_) srv_.resize(cfg_.locks);
  fence_counter_.assign(cfg_.locks, 0);

  tp_.set_reliable(cfg_.fence_protocol());
  tp_.attach(cfg_.fence_protocol(),
             [this](const Message& m) { handle_fence(m); });
  tp_.attach_raw(cfg_.client_protocol(),
                 [this](const Message& m, const PeerAddr& from) {
                   handle_client(m, from);
                 });
}

LockdNode::~LockdNode() = default;

void LockdNode::wait_shutdown() {
  std::unique_lock<std::mutex> lk(shutdown_mu_);
  shutdown_cv_.wait(lk, [this] { return shutdown_; });
}

std::uint64_t LockdNode::steady_ms() const {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - epoch_)
                           .count());
}

void LockdNode::reply(const PeerAddr& to, ClientMsg type,
                      std::vector<std::uint8_t> payload) {
  Message m;
  m.src = tp_.self();
  m.dst = kInvalidNode;  // the client transport's self
  m.protocol = cfg_.client_protocol();
  m.type = std::uint16_t(type);
  m.payload = std::move(payload);
  tp_.send_raw(to, std::move(m));
}

void LockdNode::remember(const ReqKey& key, ClientMsg type, LockId lock,
                         std::uint64_t fence) {
  reply_cache_[key] = CachedReply{type, lock, fence};
  reply_fifo_.push_back(key);
  while (reply_fifo_.size() > opts_.reply_cache) {
    reply_cache_.erase(reply_fifo_.front());
    reply_fifo_.pop_front();
  }
  inflight_.erase(key);
}

void LockdNode::handle_client(const Message& m, const PeerAddr& from) {
  switch (ClientMsg(m.type)) {
    case ClientMsg::kPing: {
      wire::Reader r(m.payload);
      const std::uint64_t token = r.u64();
      wire::Writer w;
      w.u64(token);
      w.u32(tp_.self());
      w.u8(started_ ? 1 : 0);
      reply(from, ClientMsg::kPong, w.take());
      return;
    }
    case ClientMsg::kPeers: {
      wire::Reader r(m.payload);
      const std::uint64_t n = r.varint();
      if (n != topo_.node_count())
        throw wire::WireError("lockd: peer table size != grid size");
      for (NodeId i = 0; i < NodeId(n); ++i) {
        PeerAddr a;
        a.ip = r.u32();
        a.port = r.u16();
        if (i != tp_.self()) tp_.add_peer(i, a);
      }
      reply(from, ClientMsg::kPeersOk);
      return;
    }
    case ClientMsg::kStart: {
      if (!started_) {
        started_ = true;
        for (PerLock& pl : locks_)
          if (pl.coordinator) pl.coordinator->start();
      }
      reply(from, ClientMsg::kStarted);
      return;
    }
    case ClientMsg::kAcquire:
      on_acquire(m, from);
      return;
    case ClientMsg::kRelease:
      on_release(m, from);
      return;
    case ClientMsg::kStats: {
      wire::Writer w;
      encode_stats(w, stats_);
      reply(from, ClientMsg::kStatsReply, w.take());
      return;
    }
    case ClientMsg::kShutdown: {
      reply(from, ClientMsg::kBye);
      {
        std::lock_guard<std::mutex> lk(shutdown_mu_);
        shutdown_ = true;
      }
      shutdown_cv_.notify_all();
      return;
    }
    default:
      throw wire::WireError("lockd: unknown client message type");
  }
}

void LockdNode::on_acquire(const Message& m, const PeerAddr& from) {
  wire::Reader r(m.payload);
  const std::uint64_t client_id = r.u64();
  const std::uint64_t req_id = r.u64();
  const LockId lock = LockId(r.varint());
  const std::uint64_t deadline_ms = r.varint();
  const ReqKey key{client_id, req_id};

  // Retransmit of a finished request: re-send the cached terminal reply.
  if (const auto it = reply_cache_.find(key); it != reply_cache_.end()) {
    const CachedReply& c = it->second;
    wire::Writer w;
    w.u64(req_id);
    w.varint(c.lock);
    if (c.type == ClientMsg::kGranted) w.u64(c.fence);
    reply(from, c.type, w.take());
    return;
  }
  // Retransmit of an in-flight request: the terminal reply will come.
  if (inflight_.count(key) != 0) return;

  if (lock >= cfg_.locks)
    throw wire::WireError("lockd: acquire names an unknown lock");
  ++stats_.arrivals;

  // Coordinator nodes host no application session (the grid reserves
  // rank 0 for the bridge, as in the simulator); queue overflow sheds.
  if (is_coordinator_node_ || srv_[lock].queue.size() >= opts_.max_pending) {
    ++stats_.sheds;
    wire::Writer w;
    w.u64(req_id);
    w.varint(lock);
    reply(from, ClientMsg::kShed, w.take());
    remember(key, ClientMsg::kShed, lock, 0);
    return;
  }

  inflight_.insert(key);
  Pending p;
  p.client_id = client_id;
  p.req_id = req_id;
  p.deadline_at_ms = deadline_ms != 0 ? steady_ms() + deadline_ms : 0;
  p.client = from;
  srv_[lock].queue.push_back(p);
  pump(lock);
}

void LockdNode::pump(LockId lock) {
  LockSrv& s = srv_[lock];
  if (s.state != SrvState::kIdle || s.queue.empty()) return;
  s.current = s.queue.front();
  s.queue.pop_front();
  s.state = SrvState::kRequesting;
  locks_[lock].intra->request_cs();
}

void LockdNode::on_granted(LockId lock) {
  LockSrv& s = srv_[lock];
  GMX_ASSERT_MSG(s.state == SrvState::kRequesting,
                 "lockd: grant with no request in flight");
  if (s.current.deadline_at_ms != 0 &&
      steady_ms() > s.current.deadline_at_ms) {
    finish(lock, ClientMsg::kExpired, 0);
    return;
  }
  // Fence fetch while still inside the CS: successive grants of this lock
  // serialize their fetches, so observed fences strictly increase.
  s.state = SrvState::kAwaitFence;
  const std::uint64_t nonce = next_nonce_++;
  fence_waits_[nonce] = lock;
  Message m;
  m.dst = topo_.first_node_of(table_.home_cluster(lock));
  m.protocol = cfg_.fence_protocol();
  m.type = std::uint16_t(FenceMsg::kFenceReq);
  wire::Writer w(tp_.pool());
  w.varint(lock);
  w.u64(nonce);
  m.payload = w.take_payload();
  tp_.send(std::move(m));
}

void LockdNode::handle_fence(const Message& m) {
  wire::Reader r(m.payload);
  switch (FenceMsg(m.type)) {
    case FenceMsg::kFenceReq: {
      const LockId lock = LockId(r.varint());
      const std::uint64_t nonce = r.u64();
      if (lock >= cfg_.locks || !is_coordinator_node_ ||
          table_.home_cluster(lock) != my_cluster_)
        throw wire::WireError("lockd: fence request at a non-home node");
      const std::uint64_t fence = ++fence_counter_[lock];
      ++stats_.fences_issued;
      Message rep;
      rep.dst = m.src;
      rep.protocol = cfg_.fence_protocol();
      rep.type = std::uint16_t(FenceMsg::kFenceRep);
      wire::Writer w(tp_.pool());
      w.varint(lock);
      w.u64(nonce);
      w.u64(fence);
      rep.payload = w.take_payload();
      tp_.send(std::move(rep));
      return;
    }
    case FenceMsg::kFenceRep: {
      const LockId lock = LockId(r.varint());
      const std::uint64_t nonce = r.u64();
      const std::uint64_t fence = r.u64();
      const auto it = fence_waits_.find(nonce);
      if (it == fence_waits_.end() || it->second != lock)
        throw wire::WireError("lockd: fence reply for no outstanding fetch");
      fence_waits_.erase(it);
      GMX_ASSERT(lock < srv_.size() &&
                 srv_[lock].state == SrvState::kAwaitFence);
      finish(lock, ClientMsg::kGranted, fence);
      return;
    }
    default:
      throw wire::WireError("lockd: unknown fence message type");
  }
}

void LockdNode::finish(LockId lock, ClientMsg type, std::uint64_t fence) {
  LockSrv& s = srv_[lock];
  const ReqKey key{s.current.client_id, s.current.req_id};
  wire::Writer w;
  w.u64(s.current.req_id);
  w.varint(lock);
  if (type == ClientMsg::kGranted) w.u64(fence);
  reply(s.current.client, type, w.take());
  remember(key, type, lock, fence);
  if (type == ClientMsg::kGranted) {
    ++stats_.grants;
    s.state = SrvState::kHeld;  // CS held until the client releases
    return;
  }
  GMX_ASSERT(type == ClientMsg::kExpired);
  ++stats_.deadline_misses;
  s.state = SrvState::kIdle;
  locks_[lock].intra->release_cs();
  pump(lock);
}

void LockdNode::on_release(const Message& m, const PeerAddr& from) {
  wire::Reader r(m.payload);
  const std::uint64_t client_id = r.u64();
  const std::uint64_t req_id = r.u64();
  const LockId lock = LockId(r.varint());
  if (!is_coordinator_node_ && lock < cfg_.locks) {
    LockSrv& s = srv_[lock];
    if (s.state == SrvState::kHeld && s.current.client_id == client_id &&
        s.current.req_id == req_id) {
      ++stats_.releases;
      s.state = SrvState::kIdle;
      locks_[lock].intra->release_cs();
      pump(lock);
    }
  }
  // Idempotent: stale or duplicate releases still get their ack.
  wire::Writer w;
  w.u64(req_id);
  reply(from, ClientMsg::kReleased, w.take());
}

}  // namespace gmx::transport
