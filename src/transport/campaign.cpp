#include "gridmutex/transport/campaign.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx::transport {

double CampaignResult::obtain_mean_ms() const {
  if (obtain_ms.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : obtain_ms) sum += v;
  return sum / double(obtain_ms.size());
}

double CampaignResult::obtain_percentile_ms(double q) const {
  if (obtain_ms.empty()) return 0.0;
  std::vector<double> sorted = obtain_ms;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = std::size_t(
      std::ceil(q * double(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

namespace {

using Clock = std::chrono::steady_clock;

/// All state lives on the transport loop thread; run_campaign blocks on
/// the completion future from the calling thread.
class Driver {
 public:
  Driver(UdpTransport& tp, CampaignConfig cfg, std::vector<PeerAddr> nodes,
         std::vector<OpenLoopArrival> trace)
      : tp_(tp),
        cfg_(std::move(cfg)),
        nodes_(std::move(nodes)),
        trace_(std::move(trace)),
        protocol_(cfg_.grid.client_protocol()),
        last_fence_(cfg_.grid.locks, 0),
        holding_(cfg_.grid.locks, 0) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now().time_since_epoch())
                        .count();
    client_id_ = (std::uint64_t(getpid()) << 40) ^ std::uint64_t(ns);
    hold_ms_ = scaled_ms(cfg_.open_loop.hold.as_ms());
  }

  void begin() {
    start_ = Clock::now();
    res_.arrivals = trace_.size();
    if (trace_.empty()) {
      done_.set_value();
      return;
    }
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      tp_.schedule_ms(scaled_ms(trace_[i].at.as_ms()),
                      [this, i] { dispatch(i); });
    }
  }

  void on_reply(const Message& m) {
    wire::Reader r(m.payload);
    const std::uint64_t req_id = r.u64();
    const auto it = reqs_.find(req_id);
    if (it == reqs_.end()) return;
    Req& req = it->second;
    switch (ClientMsg(m.type)) {
      case ClientMsg::kGranted: {
        if (req.state != Req::S::kAwaitGrant) return;  // dup reply
        tp_.cancel(req.retry);
        ++res_.grants;
        res_.obtain_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      req.sent_at)
                .count());
        (void)r.varint();  // lock, known from the trace
        const std::uint64_t fence = r.u64();
        // Client-side safety: fences per lock strictly increase, and no
        // grant may arrive while another of our requests holds the lock.
        if (fence <= last_fence_[req.lock]) ++res_.fence_violations;
        last_fence_[req.lock] = std::max(last_fence_[req.lock], fence);
        if (holding_[req.lock] != 0) ++res_.exclusion_violations;
        ++holding_[req.lock];
        req.state = Req::S::kHolding;
        tp_.schedule_ms(hold_ms_, [this, req_id] { begin_release(req_id); });
        return;
      }
      case ClientMsg::kShed: {
        if (req.state != Req::S::kAwaitGrant) return;
        tp_.cancel(req.retry);
        ++res_.sheds;
        complete(req);
        return;
      }
      case ClientMsg::kExpired: {
        if (req.state != Req::S::kAwaitGrant) return;
        tp_.cancel(req.retry);
        ++res_.deadline_misses;
        complete(req);
        return;
      }
      case ClientMsg::kReleased: {
        if (req.state != Req::S::kReleasing) return;
        tp_.cancel(req.retry);
        complete(req);
        return;
      }
      default:
        return;  // not a campaign reply
    }
  }

  [[nodiscard]] std::future<void> done_future() {
    return done_.get_future();
  }
  [[nodiscard]] CampaignResult take_result() { return std::move(res_); }

 private:
  struct Req {
    enum class S : std::uint8_t {
      kAwaitGrant,
      kHolding,
      kReleasing,
      kDone
    };
    S state = S::kAwaitGrant;
    NodeId node = kInvalidNode;
    LockId lock = 0;
    Clock::time_point sent_at;
    UdpTransport::TimerToken retry = 0;
  };

  [[nodiscard]] std::uint32_t scaled_ms(double ms) const {
    GMX_ASSERT(cfg_.time_scale > 0.0);
    return std::uint32_t(
        std::max(0.0, std::llround(ms / cfg_.time_scale) * 1.0));
  }

  void dispatch(std::size_t i) {
    const OpenLoopArrival& a = trace_[i];
    const std::uint64_t req_id = std::uint64_t(i) + 1;
    Req req;
    req.node = a.node;
    req.lock = a.lock;
    req.sent_at = Clock::now();
    reqs_.emplace(req_id, req);
    send_acquire(req_id);
    arm_retry(req_id);
  }

  void send_acquire(std::uint64_t req_id) {
    const Req& req = reqs_.at(req_id);
    wire::Writer w;
    w.u64(client_id_);
    w.u64(req_id);
    w.varint(req.lock);
    w.varint(cfg_.deadline_ms);
    send(req.node, ClientMsg::kAcquire, w.take());
  }

  void send_release(std::uint64_t req_id) {
    const Req& req = reqs_.at(req_id);
    wire::Writer w;
    w.u64(client_id_);
    w.u64(req_id);
    w.varint(req.lock);
    send(req.node, ClientMsg::kRelease, w.take());
  }

  void send(NodeId node, ClientMsg type, std::vector<std::uint8_t> payload) {
    GMX_ASSERT(node < nodes_.size());
    Message m;
    m.dst = node;
    m.protocol = protocol_;
    m.type = std::uint16_t(type);
    m.payload = std::move(payload);
    tp_.send_raw(nodes_[node], std::move(m));
  }

  void arm_retry(std::uint64_t req_id) {
    reqs_.at(req_id).retry =
        tp_.schedule_ms(cfg_.retry_ms, [this, req_id] { on_retry(req_id); });
  }

  void on_retry(std::uint64_t req_id) {
    const auto it = reqs_.find(req_id);
    if (it == reqs_.end()) return;
    if (it->second.state == Req::S::kAwaitGrant) {
      send_acquire(req_id);
    } else if (it->second.state == Req::S::kReleasing) {
      send_release(req_id);
    } else {
      return;
    }
    arm_retry(req_id);
  }

  void begin_release(std::uint64_t req_id) {
    Req& req = reqs_.at(req_id);
    GMX_ASSERT(req.state == Req::S::kHolding);
    GMX_ASSERT(holding_[req.lock] > 0);
    --holding_[req.lock];
    req.state = Req::S::kReleasing;
    send_release(req_id);
    arm_retry(req_id);
  }

  void complete(Req& req) {
    req.state = Req::S::kDone;
    ++completed_;
    if (completed_ == trace_.size()) {
      res_.wall_sec =
          std::chrono::duration<double>(Clock::now() - start_).count();
      done_.set_value();
    }
  }

  UdpTransport& tp_;
  CampaignConfig cfg_;
  std::vector<PeerAddr> nodes_;
  std::vector<OpenLoopArrival> trace_;
  ProtocolId protocol_;
  std::uint64_t client_id_ = 0;
  std::uint32_t hold_ms_ = 0;

  std::map<std::uint64_t, Req> reqs_;
  std::vector<std::uint64_t> last_fence_;  // per lock
  std::vector<std::uint32_t> holding_;     // per lock, our live holds
  std::size_t completed_ = 0;
  Clock::time_point start_;
  CampaignResult res_;
  std::promise<void> done_;
};

}  // namespace

CampaignResult run_campaign(std::vector<PeerAddr> nodes,
                            const CampaignConfig& cfg) {
  // The trace is drawn exactly as run_service_experiment draws it: the
  // traffic stream is fork(3) of the seed root, and the draw order per
  // arrival is gap -> node -> lock. Same seed + shape => identical trace.
  Rng root(cfg.grid.seed);
  Rng traffic = root.fork(3);
  const std::vector<NodeId> apps = cfg.grid.app_nodes();
  const ZipfSampler zipf(cfg.grid.locks, cfg.open_loop.zipf_s);
  std::vector<OpenLoopArrival> trace = materialize_open_loop(
      cfg.open_loop, apps, zipf, traffic);

  UdpTransport tp(kInvalidNode, "127.0.0.1", 0);
  auto driver = std::make_shared<Driver>(tp, cfg, std::move(nodes),
                                         std::move(trace));
  tp.attach_raw(cfg.grid.client_protocol(),
                [driver](const Message& m, const PeerAddr&) {
                  driver->on_reply(m);
                });
  auto done = driver->done_future();
  tp.start();
  tp.post([driver] { driver->begin(); });
  done.wait();
  tp.stop();
  return driver->take_result();
}

}  // namespace gmx::transport
