#include "gridmutex/transport/frame.hpp"

#include <limits>

namespace gmx::transport {

void begin_datagram(wire::Writer& w) { w.u8(kWireVersion); }

void append_frame_header(wire::Writer& w, const Message& msg) {
  w.u32(msg.src);
  w.u32(msg.dst);
  w.varint(msg.protocol);
  w.u16(msg.type);
  w.varint(msg.seq);
  w.varint(msg.payload.size());
}

void append_frame(wire::Writer& w, const Message& msg) {
  append_frame_header(w, msg);
  // Raw append, not Writer::bytes(): the header already wrote the length
  // varint, so the payload follows bare.
  for (const std::uint8_t b : msg.payload) w.u8(b);
}

std::vector<Message> decode_datagram(const Payload& dgram) {
  wire::Reader envelope(dgram.span());
  const std::uint8_t version = envelope.u8();
  if (version != kWireVersion)
    throw wire::WireError("transport: unknown frame version " +
                          std::to_string(int(version)));
  if (envelope.at_end())
    throw wire::WireError("transport: datagram has no frames");

  std::vector<Message> out;
  std::size_t pos = 1;  // past the version byte
  while (pos < dgram.size()) {
    wire::Reader r(dgram.span().subspan(pos));
    Message m;
    m.src = r.u32();
    m.dst = r.u32();
    const std::uint64_t protocol = r.varint();
    if (protocol == 0)
      throw wire::WireError("transport: frame with protocol 0");
    if (protocol > std::numeric_limits<ProtocolId>::max())
      throw wire::WireError("transport: protocol id overflows 32 bits");
    m.protocol = ProtocolId(protocol);
    m.type = r.u16();
    m.seq = r.varint();
    const std::uint64_t len = r.varint();
    if (len > r.remaining())
      throw wire::WireError("transport: frame payload truncated");
    const std::size_t header = (dgram.size() - pos) - r.remaining();
    // Zero-copy: the payload is a slice of the datagram's block, exactly
    // like BatchMux unbatching (net/buffer_pool.hpp).
    m.payload = dgram.slice(pos + header, std::size_t(len));
    pos += header + std::size_t(len);
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace gmx::transport
