#include "gridmutex/analysis/model_check.hpp"

#include <memory>
#include <utility>

#include "gridmutex/analysis/protocol_checker.hpp"
#include "gridmutex/core/composition.hpp"
#include "gridmutex/mutex/endpoint.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/net/network.hpp"
#include "gridmutex/sim/assert.hpp"
#include "gridmutex/sim/simulator.hpp"

namespace gmx {

std::string ModelCheckResult::to_string() const {
  std::string out = std::to_string(schedules) + " schedules, " +
                    std::to_string(choice_points) + " choice points, " +
                    (exhausted ? "exhausted" : "capped");
  if (violation) {
    out += "\nviolating schedule:";
    for (std::size_t d : schedule) out += " " + std::to_string(d);
    out += "\n" + diagnostic;
  }
  return out;
}

ModelCheckResult model_check(const Scenario& scenario,
                             const ModelCheckOptions& opt) {
  ModelCheckResult res;
  std::vector<std::size_t> prefix;  // decisions forced on the next run
  bool depth_capped = false;

  while (res.schedules < opt.max_schedules) {
    // (chosen, options) per branch point of this run, in order.
    std::vector<std::pair<std::size_t, std::size_t>> path;
    Simulator sim;
    sim.set_tie_breaker([&](std::size_t n) -> std::size_t {
      if (path.size() >= opt.max_choice_depth) {
        depth_capped = true;
        return 0;  // follow the default order, do not branch
      }
      std::size_t pick = 0;
      if (path.size() < prefix.size()) {
        pick = prefix[path.size()];
        // The sim is deterministic: replaying a prefix must reproduce the
        // same tie-sets, so a recorded decision always stays in range.
        GMX_ASSERT_MSG(pick < n, "model check replay diverged");
      }
      path.emplace_back(pick, n);
      return pick;
    });

    std::string diag = scenario(sim);
    ++res.schedules;
    res.choice_points += path.size();

    if (!diag.empty()) {
      res.violation = true;
      res.diagnostic = std::move(diag);
      res.schedule.reserve(path.size());
      for (const auto& [chosen, options] : path) {
        (void)options;
        res.schedule.push_back(chosen);
      }
      return res;
    }

    // Backtrack: advance the rightmost decision that still has unexplored
    // siblings; drop everything after it.
    std::size_t j = path.size();
    bool found = false;
    while (j > 0) {
      --j;
      if (path[j].first + 1 < path[j].second) {
        found = true;
        break;
      }
    }
    if (!found) {
      res.exhausted = !depth_capped;
      return res;
    }
    prefix.clear();
    prefix.reserve(j + 1);
    for (std::size_t t = 0; t < j; ++t) prefix.push_back(path[t].first);
    prefix.push_back(path[j].first + 1);
  }
  return res;  // schedule cap hit; exhausted stays false
}

namespace {

/// Self-driving request/hold/release loop for one endpoint, used by both
/// canned scenarios. Holds for a fixed 1 ms, re-requests after 1 ms.
struct ScenarioDriver {
  Simulator* sim = nullptr;
  MutexEndpoint* ep = nullptr;
  int remaining = 0;
  int granted = 0;

  void arm() {
    ep->set_callbacks(MutexCallbacks{[this] { on_granted(); }, {}});
  }
  void kickoff() {
    sim->schedule_after(SimDuration::ns(0), [this] { ep->request_cs(); });
  }
  void on_granted() {
    ++granted;
    sim->schedule_after(SimDuration::ms(1), [this] {
      ep->release_cs();
      if (--remaining > 0) {
        sim->schedule_after(SimDuration::ms(1),
                            [this] { ep->request_cs(); });
      }
    });
  }
};

std::string check_drivers(const std::vector<ScenarioDriver>& drivers,
                          int expected_each, const Network& net,
                          const ProtocolChecker& checker) {
  std::string diag = checker.summary();
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    if (drivers[i].granted != expected_each) {
      if (!diag.empty()) diag += "\n";
      diag += "deadlock/starvation: driver " + std::to_string(i) +
              " completed " + std::to_string(drivers[i].granted) + "/" +
              std::to_string(expected_each) + " critical sections";
    }
    if (drivers[i].ep->state() != CsState::kIdle) {
      if (!diag.empty()) diag += "\n";
      diag += "driver " + std::to_string(i) +
              " did not end idle (state " +
              std::string(to_string(drivers[i].ep->state())) + ")";
    }
  }
  if (net.in_flight() != 0) {
    if (!diag.empty()) diag += "\n";
    diag += std::to_string(net.in_flight()) +
            " messages still in flight after drain";
  }
  return diag;
}

}  // namespace

Scenario flat_scenario(std::string algorithm, int n, int cs_per_rank) {
  GMX_ASSERT(n >= 2 && cs_per_rank >= 1);
  return [algorithm = std::move(algorithm), n,
          cs_per_rank](Simulator& sim) -> std::string {
    Topology topo = Topology::uniform(1, std::uint32_t(n));
    Network net(sim, topo,
                std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
                Rng(7));
    sim.set_event_limit(500'000);

    std::vector<NodeId> members(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) members[std::size_t(r)] = NodeId(r);
    std::vector<std::unique_ptr<MutexEndpoint>> eps;
    for (int r = 0; r < n; ++r) {
      eps.push_back(std::make_unique<MutexEndpoint>(
          net, /*protocol=*/1, members, r, make_algorithm(algorithm),
          Rng(7).fork(std::uint64_t(r))));
    }
    const bool token = is_token_based(algorithm);
    for (auto& ep : eps) ep->init(token ? 0 : MutexAlgorithm::kNoHolder);

    // Checker after the world: destroyed first, so hook removal is safe.
    ProtocolChecker checker(sim, CheckerOptions{
                                     .grant_bound = SimDuration::sec(3600),
                                     .abort_on_violation = false,
                                 });
    checker.attach_network(net);
    std::vector<MutexEndpoint*> raw;
    for (auto& ep : eps) raw.push_back(ep.get());
    checker.attach_instance(algorithm, raw, token);

    std::vector<ScenarioDriver> drivers(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      auto& d = drivers[std::size_t(r)];
      d.sim = &sim;
      d.ep = eps[std::size_t(r)].get();
      d.remaining = cs_per_rank;
      d.arm();
      d.kickoff();
    }
    sim.run();
    return check_drivers(drivers, cs_per_rank, net, checker);
  };
}

Scenario composition_scenario(std::string intra, std::string inter,
                              std::uint32_t clusters,
                              std::uint32_t apps_per_cluster,
                              int cs_per_app) {
  GMX_ASSERT(clusters >= 2 && apps_per_cluster >= 1 && cs_per_app >= 1);
  return [intra = std::move(intra), inter = std::move(inter), clusters,
          apps_per_cluster, cs_per_app](Simulator& sim) -> std::string {
    Topology topo = Composition::make_topology(clusters, apps_per_cluster);
    // Identical LAN and WAN delay: intra and inter messages land in shared
    // tie-sets, so the search also races the two layers against each other.
    Network net(sim, topo,
                std::make_shared<FixedLatencyModel>(SimDuration::ms(1)),
                Rng(7));
    sim.set_event_limit(500'000);

    Composition comp(net, CompositionConfig{.intra_algorithm = intra,
                                            .inter_algorithm = inter,
                                            .initial_cluster = 0,
                                            .protocol_base = 1,
                                            .seed = 7});

    ProtocolChecker checker(sim, CheckerOptions{
                                     .grant_bound = SimDuration::sec(3600),
                                     .abort_on_violation = false,
                                 });
    checker.attach_network(net);
    checker.attach_composition(comp);

    std::vector<ScenarioDriver> drivers(comp.app_nodes().size());
    for (std::size_t i = 0; i < comp.app_nodes().size(); ++i) {
      auto& d = drivers[i];
      d.sim = &sim;
      d.ep = &comp.app_mutex(comp.app_nodes()[i]);
      d.remaining = cs_per_app;
      d.arm();
      d.kickoff();
    }
    comp.start();
    sim.run();
    return check_drivers(drivers, cs_per_app, net, checker);
  };
}

}  // namespace gmx
