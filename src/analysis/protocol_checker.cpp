#include "gridmutex/analysis/protocol_checker.hpp"

#include <cstdio>
#include <utility>

#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/sim/assert.hpp"

namespace gmx {

std::string_view to_string(ProtocolChecker::Violation::Kind k) {
  using Kind = ProtocolChecker::Violation::Kind;
  switch (k) {
    case Kind::kTokenDuplicated:
      return "token duplicated";
    case Kind::kTokenLost:
      return "token lost";
    case Kind::kOverlappingCs:
      return "overlapping CS";
    case Kind::kIllegalCsTransition:
      return "illegal CS transition";
    case Kind::kIllegalCoordinatorTransition:
      return "illegal coordinator transition";
    case Kind::kPrivilegeOverlap:
      return "coordinator privilege overlap";
    case Kind::kStarvation:
      return "starvation";
    case Kind::kMessageNonConservation:
      return "message non-conservation";
    case Kind::kForeignDelivery:
      return "foreign delivery";
    case Kind::kRegenerationOverlap:
      return "overlapping regeneration";
    case Kind::kFencingRegression:
      return "fencing-token regression";
    case Kind::kRevocationOverlap:
      return "revocation protocol breach";
  }
  return "?";
}

std::string ProtocolChecker::Violation::to_string() const {
  std::string out = "[" + time.to_string() + "] " +
                    std::string(gmx::to_string(kind)) + " in " + instance;
  if (rank >= 0) out += " (rank " + std::to_string(rank) + ")";
  if (!detail.empty()) out += ": " + detail;
  return out;
}

ProtocolChecker::ProtocolChecker(Simulator& sim, CheckerOptions opt)
    : sim_(sim), opt_(opt) {
  sim_.set_post_event_hook([this] { after_event(); });
}

ProtocolChecker::~ProtocolChecker() {
  sim_.set_post_event_hook(nullptr);
  if (net_ != nullptr) net_->set_delivery_tap(nullptr);
  for (auto& inst : instances_) {
    for (MutexEndpoint* ep : inst->endpoints)
      ep->algorithm().set_state_hook(nullptr);
  }
  for (CoordinatorSlot& slot : coordinators_)
    slot.coordinator->set_checker_hook(nullptr);
}

void ProtocolChecker::attach_network(Network& net) {
  GMX_ASSERT_MSG(net_ == nullptr, "attach_network() called twice");
  net_ = &net;
  net_->set_delivery_tap(
      [this](const Message& m, SimTime, SimTime) { on_delivery(m); });
}

void ProtocolChecker::attach_instance(
    std::string name, std::span<MutexEndpoint* const> endpoints,
    bool token_based) {
  GMX_ASSERT_MSG(!endpoints.empty(), "instance needs at least one endpoint");
  auto inst = std::make_unique<Instance>();
  inst->name = std::move(name);
  inst->protocol = endpoints.front()->protocol();
  inst->token_based = token_based;
  for (MutexEndpoint* ep : endpoints) {
    GMX_ASSERT(ep != nullptr);
    GMX_ASSERT_MSG(ep->protocol() == inst->protocol,
                   "endpoints of one instance must share a protocol id");
    inst->endpoints.push_back(ep);
    inst->nodes.insert(ep->node());
  }
  Instance* raw = inst.get();
  for (MutexEndpoint* ep : inst->endpoints) {
    const int rank = ep->rank();
    ep->algorithm().set_state_hook([this, raw, rank](CsState f, CsState t) {
      on_cs_transition(*raw, rank, f, t);
    });
  }
  const auto [it, inserted] = by_protocol_.emplace(inst->protocol, raw);
  (void)it;
  GMX_ASSERT_MSG(inserted, "protocol id attached twice");
  instances_.push_back(std::move(inst));
}

void ProtocolChecker::attach_coordinator(std::string name,
                                         Coordinator& coordinator) {
  coordinators_.push_back(CoordinatorSlot{std::move(name), &coordinator});
  const std::string& key = coordinators_.back().name;
  coordinator.set_checker_hook(
      [this, key](const Coordinator&, Coordinator::State f,
                  Coordinator::State t) {
        report_coordinator_transition(key, f, t);
      });
}

void ProtocolChecker::attach_privilege_group(
    std::string name, std::vector<const Coordinator*> group) {
  privilege_groups_.push_back(PrivilegeGroup{std::move(name),
                                             std::move(group), false});
}

void ProtocolChecker::attach_composition(Composition& comp,
                                         const std::string& prefix) {
  const CompositionConfig& cfg = comp.config();
  {
    const auto inter = comp.inter_instance();
    attach_instance(prefix + "inter(" + cfg.inter_algorithm + ")", inter,
                    is_token_based(cfg.inter_algorithm));
  }
  std::vector<const Coordinator*> group;
  for (ClusterId c = 0; c < comp.cluster_count(); ++c) {
    const auto intra = comp.intra_instance(c);
    attach_instance(prefix + "intra[" + std::to_string(c) + "](" +
                        cfg.intra_algorithm + ")",
                    intra, is_token_based(cfg.intra_algorithm));
    attach_coordinator(prefix + "coord[" + std::to_string(c) + "]",
                       comp.coordinator(c));
    group.push_back(&comp.coordinator(c));
  }
  attach_privilege_group(prefix.empty() ? "composition"
                                        : prefix + "composition",
                         std::move(group));
}

void ProtocolChecker::report_cs_transition(const std::string& instance,
                                           int rank, CsState from,
                                           CsState to) {
  for (auto& inst : instances_) {
    if (inst->name == instance) {
      on_cs_transition(*inst, rank, from, to);
      return;
    }
  }
  // Unknown instance: still judge legality (mutation tests probe this).
  Instance probe;
  probe.name = instance;
  on_cs_transition(probe, rank, from, to);
}

void ProtocolChecker::on_cs_transition(Instance& inst, int rank, CsState from,
                                       CsState to) {
  const bool legal = (from == CsState::kIdle && to == CsState::kRequesting) ||
                     (from == CsState::kRequesting && to == CsState::kInCs) ||
                     (from == CsState::kInCs && to == CsState::kIdle);
  if (!legal) {
    add_violation(Violation{
        Violation::Kind::kIllegalCsTransition, sim_.now(), inst.name, rank,
        std::string(gmx::to_string(from)) + " -> " +
            std::string(gmx::to_string(to)) +
            " is not an edge of the Fig. 1(a) automaton"});
  }
  if (to == CsState::kRequesting) {
    inst.outstanding[rank] = sim_.now();
  } else if (from == CsState::kRequesting) {
    inst.outstanding.erase(rank);
  }
}

void ProtocolChecker::report_coordinator_transition(const std::string& name,
                                                    Coordinator::State from,
                                                    Coordinator::State to) {
  using S = Coordinator::State;
  const bool legal = (from == S::kOut && to == S::kWaitForIn) ||
                     (from == S::kWaitForIn && to == S::kIn) ||
                     (from == S::kIn && to == S::kWaitForOut) ||
                     (from == S::kWaitForOut && to == S::kOut);
  if (!legal) {
    add_violation(Violation{
        Violation::Kind::kIllegalCoordinatorTransition, sim_.now(), name, -1,
        std::string(gmx::to_string(from)) + " -> " +
            std::string(gmx::to_string(to)) +
            " is not an edge of the Fig. 1(b) automaton"});
  }
}

void ProtocolChecker::after_event() {
  ++checks_;
  for (auto& inst : instances_) sweep_instance(*inst);
  for (PrivilegeGroup& pg : privilege_groups_) {
    int privileged = 0;
    std::string who;
    for (const Coordinator* c : pg.group) {
      if (c->cluster_privileged()) {
        ++privileged;
        if (!who.empty()) who += ", ";
        who += gmx::to_string(c->state());
      }
    }
    if (privileged > 1 && !pg.flagged) {
      pg.flagged = true;
      add_violation(Violation{
          Violation::Kind::kPrivilegeOverlap, sim_.now(), pg.name, -1,
          std::to_string(privileged) +
              " coordinators privileged at once (states: " + who + ")"});
    } else if (privileged <= 1) {
      pg.flagged = false;
    }
  }
  if (net_ != nullptr) check_conservation();
}

void ProtocolChecker::sweep_instance(Instance& inst) {
  int holders = 0;
  int in_cs = 0;
  std::string holder_ranks;
  std::string cs_ranks;
  for (const MutexEndpoint* ep : inst.endpoints) {
    if (ep->holds_token()) {
      ++holders;
      if (!holder_ranks.empty()) holder_ranks += ", ";
      holder_ranks += std::to_string(ep->rank());
    }
    if (ep->in_cs()) {
      ++in_cs;
      if (!cs_ranks.empty()) cs_ranks += ", ";
      cs_ranks += std::to_string(ep->rank());
    }
  }
  if (in_cs > 1 && !inst.overlap_flagged) {
    inst.overlap_flagged = true;
    add_violation(Violation{Violation::Kind::kOverlappingCs, sim_.now(),
                            inst.name, -1,
                            std::to_string(in_cs) +
                                " participants in CS at once (ranks " +
                                cs_ranks + ")"});
  } else if (in_cs <= 1) {
    inst.overlap_flagged = false;
  }
  if (inst.token_based) {
    if (holders >= 1) inst.token_missing_since = SimTime::max();
    if (holders > 1 && !inst.in_regen_epoch && !inst.token_flagged) {
      // Inside a regeneration epoch a transient duplicate (late cancel of a
      // round racing the resurfacing token) is the relaxation the epoch
      // exists for; outside one it is always a protocol bug.
      inst.token_flagged = true;
      add_violation(Violation{Violation::Kind::kTokenDuplicated, sim_.now(),
                              inst.name, -1,
                              std::to_string(holders) +
                                  " token holders at once (ranks " +
                                  holder_ranks + ")"});
    } else if (holders == 0 && net_ != nullptr &&
               net_->in_flight_for(inst.protocol) == 0 &&
               net_->unacked_for(inst.protocol) == 0 &&
               !inst.in_regen_epoch && !inst.token_flagged) {
      // No holder, nothing of this instance on the wire, and no reliable
      // frame awaiting retransmission: nothing in the protocol can recreate
      // the token. With recovery enabled this is the *expected* state for
      // up to the detection grace — only a sustained absence is a loss.
      if (inst.recovery_grace.is_zero()) {
        inst.token_flagged = true;
        add_violation(Violation{Violation::Kind::kTokenLost, sim_.now(),
                                inst.name, -1,
                                "no holder and no message of this instance "
                                "in flight"});
      } else if (inst.token_missing_since == SimTime::max()) {
        inst.token_missing_since = sim_.now();
      } else if (sim_.now() - inst.token_missing_since >
                 inst.recovery_grace) {
        inst.token_flagged = true;
        add_violation(Violation{
            Violation::Kind::kTokenLost, sim_.now(), inst.name, -1,
            "token absent for " +
                (sim_.now() - inst.token_missing_since).to_string() +
                " with recovery enabled (grace " +
                inst.recovery_grace.to_string() +
                ") and no regeneration declared"});
      }
    } else if (holders == 1) {
      inst.token_flagged = false;
    }
  }
  if (!opt_.grant_bound.is_zero()) {
    for (auto it = inst.outstanding.begin(); it != inst.outstanding.end();) {
      const SimDuration waited = sim_.now() - it->second;
      if (waited > opt_.grant_bound) {
        add_violation(Violation{
            Violation::Kind::kStarvation, sim_.now(), inst.name, it->first,
            "request outstanding for " + waited.to_string() +
                " (bound " + opt_.grant_bound.to_string() + ")"});
        it = inst.outstanding.erase(it);  // report each starved rank once
      } else {
        ++it;
      }
    }
  }
}

void ProtocolChecker::enable_recovery(ProtocolId protocol,
                                      SimDuration grace) {
  GMX_ASSERT(grace > SimDuration::ns(0));
  const auto it = by_protocol_.find(protocol);
  GMX_ASSERT_MSG(it != by_protocol_.end(),
                 "enable_recovery on an unattached protocol");
  it->second->recovery_grace = grace;
}

void ProtocolChecker::note_regeneration(ProtocolId protocol, bool open) {
  const auto it = by_protocol_.find(protocol);
  GMX_ASSERT_MSG(it != by_protocol_.end(),
                 "note_regeneration on an unattached protocol");
  Instance& inst = *it->second;
  if (open && inst.in_regen_epoch) {
    add_violation(Violation{
        Violation::Kind::kRegenerationOverlap, sim_.now(), inst.name, -1,
        "regeneration epoch opened while one is already in flight (at most "
        "one regeneration per instance)"});
  }
  inst.in_regen_epoch = open;
  if (!open) {
    // Epoch closed at token re-mint; restart loss tracking from scratch.
    inst.token_missing_since = SimTime::max();
    inst.token_flagged = false;
  }
}

ProtocolChecker::LeaseDomain& ProtocolChecker::lease_domain(
    const std::string& name) {
  const auto it = lease_domains_.find(name);
  GMX_ASSERT_MSG(it != lease_domains_.end(),
                 "lease report on an unattached domain");
  return it->second;
}

void ProtocolChecker::attach_lease_domain(const std::string& name) {
  const auto [it, inserted] = lease_domains_.emplace(name, LeaseDomain{});
  (void)it;
  GMX_ASSERT_MSG(inserted, "lease domain attached twice");
}

void ProtocolChecker::report_lease_grant(const std::string& name,
                                         std::uint64_t fence) {
  LeaseDomain& d = lease_domain(name);
  if (fence <= d.last_fence) {
    add_violation(Violation{
        Violation::Kind::kFencingRegression, sim_.now(), name, -1,
        "grant fence " + std::to_string(fence) +
            " does not exceed the domain's high-water mark " +
            std::to_string(d.last_fence) +
            " (fencing tokens must be strictly monotone per lock)"});
  } else {
    d.last_fence = fence;
  }
  if (d.active_fence != 0) {
    add_violation(Violation{
        Violation::Kind::kRevocationOverlap, sim_.now(), name, -1,
        "grant (fence " + std::to_string(fence) +
            ") while the hold under fence " +
            std::to_string(d.active_fence) +
            " is still active — holder change without a release"});
  }
  d.active_fence = fence;
}

void ProtocolChecker::report_lease_release(const std::string& name,
                                           std::uint64_t fence,
                                           bool voluntary) {
  LeaseDomain& d = lease_domain(name);
  if (fence != d.active_fence) {
    add_violation(Violation{
        Violation::Kind::kFencingRegression, sim_.now(), name, -1,
        "release of fence " + std::to_string(fence) +
            " but the active hold is fence " +
            std::to_string(d.active_fence) +
            " (a stale-fenced release must be refused, not executed)"});
  }
  if (!voluntary && !d.in_revocation) {
    add_violation(Violation{
        Violation::Kind::kRevocationOverlap, sim_.now(), name, -1,
        "involuntary release (fence " + std::to_string(fence) +
            ") outside a declared revocation epoch"});
  }
  d.active_fence = 0;
}

void ProtocolChecker::note_revocation(const std::string& name, bool open) {
  LeaseDomain& d = lease_domain(name);
  if (open && d.in_revocation) {
    add_violation(Violation{
        Violation::Kind::kRevocationOverlap, sim_.now(), name, -1,
        "revocation epoch opened while one is already open (at most one "
        "revocation per lock)"});
  }
  d.in_revocation = open;
}

void ProtocolChecker::check_conservation() {
  const MessageCounters& c = net_->counters();
  const std::uint64_t created = c.sent + c.duplicated;
  const std::uint64_t accounted = c.delivered + c.dropped + net_->in_flight();
  if (created != accounted && !conservation_flagged_) {
    conservation_flagged_ = true;
    add_violation(Violation{
        Violation::Kind::kMessageNonConservation, sim_.now(), "network", -1,
        "sent+duplicated=" + std::to_string(created) +
            " but delivered+dropped+in_flight=" + std::to_string(accounted) +
            " (a message was delivered twice or vanished)"});
  }
}

void ProtocolChecker::on_delivery(const Message& msg) {
  const auto it = by_protocol_.find(msg.protocol);
  if (it == by_protocol_.end()) return;  // not an instance we watch
  const Instance& inst = *it->second;
  if (inst.nodes.find(msg.dst) == inst.nodes.end() ||
      inst.nodes.find(msg.src) == inst.nodes.end()) {
    add_violation(Violation{
        Violation::Kind::kForeignDelivery, sim_.now(), inst.name, -1,
        "message " + std::to_string(msg.src) + " -> " +
            std::to_string(msg.dst) + " (type " + std::to_string(msg.type) +
            ") crosses the instance's member set"});
  }
}

void ProtocolChecker::add_violation(Violation v) {
  ++violation_count_;
  if (violations_.size() < opt_.max_violations)
    violations_.push_back(v);
  if (opt_.abort_on_violation) {
    std::fprintf(stderr, "gridmutex protocol checker: %s\n",
                 v.to_string().c_str());
    GMX_ASSERT_MSG(false, "protocol invariant violated (diagnostic above)");
  }
}

std::string ProtocolChecker::summary() const {
  std::string out;
  for (const Violation& v : violations_) {
    if (!out.empty()) out += "\n";
    out += v.to_string();
  }
  if (violation_count_ > violations_.size()) {
    out += "\n(+" +
           std::to_string(violation_count_ - violations_.size()) +
           " further violations not stored)";
  }
  return out;
}

}  // namespace gmx
