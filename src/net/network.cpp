#include "gridmutex/net/network.hpp"

#include <algorithm>
#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

MessageCounters& MessageCounters::operator-=(const MessageCounters& o) {
  sent -= o.sent;
  delivered -= o.delivered;
  dropped -= o.dropped;
  duplicated -= o.duplicated;
  retransmitted -= o.retransmitted;
  intra_cluster -= o.intra_cluster;
  inter_cluster -= o.inter_cluster;
  bytes_total -= o.bytes_total;
  bytes_inter -= o.bytes_inter;
  return *this;
}

Network::Network(Simulator& sim, Topology topo,
                 std::shared_ptr<const LatencyModel> latency, Rng rng)
    : sim_(sim),
      topo_(std::move(topo)),
      latency_(std::move(latency)),
      rng_(rng),
      // fork() is const: deriving the fault stream leaves rng_'s latency
      // sequence exactly where a fault-free build would have it.
      fault_rng_(rng.fork(0xFA017)),
      handlers_(topo_.node_count()),
      node_up_(topo_.node_count(), 1) {
  GMX_ASSERT(latency_ != nullptr);
  if (topo_.node_count() <= kFlatFifoNodes) {
    fifo_flat_.assign(std::size_t(topo_.node_count()) * topo_.node_count(),
                      0);
  }
}

void Network::attach(NodeId node, ProtocolId protocol, Handler handler) {
  affinity_.check("net: Network touched from a second thread "
                  "(simulation-thread affinity; see network.hpp)");
  GMX_ASSERT(node < topo_.node_count());
  GMX_ASSERT(handler != nullptr);
  // Manually chosen ids move the reservation watermark so a later
  // reserve_protocols() can never hand out an id already in use.
  if (protocol >= next_protocol_) next_protocol_ = protocol + 1;
  auto& table = handlers_[node];
  // Grow geometrically: a K-lock service attaches protocols 1..P per node
  // in ascending order, and an exact resize per attach would shuffle the
  // table O(P^2) times per node (measured hot in LockService setup).
  if (table.size() <= protocol)
    table.resize(std::max<std::size_t>(protocol + 1, table.size() * 2));
  table[protocol] = std::move(handler);
}

ProtocolId Network::reserve_protocols(std::uint32_t count) {
  affinity_.check("net: Network touched from a second thread "
                  "(simulation-thread affinity; see network.hpp)");
  GMX_ASSERT(count > 0);
  const ProtocolId base = next_protocol_;
  next_protocol_ += count;
  return base;
}

void Network::detach(NodeId node, ProtocolId protocol) {
  GMX_ASSERT(node < topo_.node_count());
  auto& table = handlers_[node];
  if (protocol < table.size()) table[protocol] = nullptr;
}

void Network::set_drop_probability(double p) {
  GMX_ASSERT(p >= 0.0 && p < 1.0);
  drop_p_ = p;
}

void Network::set_duplicate_probability(double p) {
  GMX_ASSERT(p >= 0.0 && p <= 1.0);
  dup_p_ = p;
}

std::uint64_t Network::link_key(ClusterId a, ClusterId b) const {
  const auto lo = std::uint64_t(std::min(a, b));
  const auto hi = std::uint64_t(std::max(a, b));
  return (lo << 32) | hi;
}

void Network::set_link_drop_probability(ClusterId a, ClusterId b, double p) {
  GMX_ASSERT(a < topo_.cluster_count() && b < topo_.cluster_count());
  GMX_ASSERT_MSG(a != b, "link loss is between clusters; use "
                         "set_drop_probability for uniform loss");
  GMX_ASSERT(p >= 0.0 && p <= 1.0);
  if (p == 0.0) {
    link_drop_.erase(link_key(a, b));
  } else {
    link_drop_[link_key(a, b)] = p;
  }
}

void Network::partition(ClusterId a, ClusterId b) {
  set_link_drop_probability(a, b, 1.0);
}

void Network::heal(ClusterId a, ClusterId b) {
  set_link_drop_probability(a, b, 0.0);
}

void Network::set_node_up(NodeId node, bool up) {
  GMX_ASSERT(node < topo_.node_count());
  node_up_[node] = up ? 1 : 0;
}

void Network::set_reliable(ProtocolId protocol, RetransmitConfig cfg) {
  GMX_ASSERT(cfg.rto > SimDuration::ns(0));
  GMX_ASSERT(cfg.backoff >= 1.0);
  GMX_ASSERT(cfg.max_attempts >= 1);
  reliable_[protocol] = cfg;
}

std::uint64_t Network::unacked_for(ProtocolId p) const {
  const auto it = unacked_by_protocol_.find(p);
  return it == unacked_by_protocol_.end() ? 0 : it->second;
}

std::uint64_t Network::sent_by_protocol(ProtocolId p) const {
  const auto it = sent_by_protocol_.find(p);
  return it == sent_by_protocol_.end() ? 0 : it->second;
}

std::uint64_t Network::inter_sent_by_protocol(ProtocolId p) const {
  const auto it = inter_by_protocol_.find(p);
  return it == inter_by_protocol_.end() ? 0 : it->second;
}

std::uint64_t Network::in_flight_for(ProtocolId p) const {
  const auto it = in_flight_by_protocol_.find(p);
  const std::uint64_t wire =
      it == in_flight_by_protocol_.end() ? 0 : it->second;
  return wire + (in_flight_supplement_ ? in_flight_supplement_(p) : 0);
}

SimTime Network::departure_to_delivery(const Message& msg) {
  SimDuration delay = latency_->sample(topo_, msg.src, msg.dst, rng_);
  GMX_ASSERT(delay > SimDuration::ns(0));
  if (!reorder_spread_.is_zero())
    delay += SimDuration::ns(std::int64_t(
        rng_.next_below(std::uint64_t(reorder_spread_.count_ns()))));
  SimTime at = sim_.now() + delay;
  if (fifo_) {
    if (!fifo_flat_.empty()) {
      std::int64_t& prev =
          fifo_flat_[std::size_t(msg.src) * topo_.node_count() + msg.dst];
      if (at.count_ns() < prev)
        at = SimTime::from_ns(prev);  // clamp: no overtaking
      prev = at.count_ns();
    } else {
      const std::uint64_t key =
          (std::uint64_t(msg.src) << 32) | std::uint64_t(msg.dst);
      auto [it, inserted] = last_delivery_.try_emplace(key, at);
      if (!inserted) {
        if (at < it->second) at = it->second;
        it->second = at;
      }
    }
  }
  return at;
}

Network::Channel& Network::channel(NodeId src, NodeId dst,
                                   ProtocolId protocol) {
  return channels_[ChannelKey{src, dst, protocol}];
}

bool Network::register_reliable_send(Message& msg,
                                     const RetransmitConfig& cfg) {
  Channel& ch = channel(msg.src, msg.dst, msg.protocol);
  msg.seq = ++ch.next_seq;
  ++unacked_by_protocol_[msg.protocol];
  if (!ch.pending.empty()) {
    // Stop-and-wait: the channel head is still unacked; this frame waits
    // its turn so reliable delivery preserves per-pair FIFO order.
    ch.queue.push_back(msg);
    return false;
  }
  make_head(ch, msg, cfg);
  return true;
}

void Network::make_head(Channel& ch, Message msg, const RetransmitConfig& cfg) {
  PendingSend pending;
  pending.msg = msg;
  pending.rto = cfg.rto;
  pending.timer = sim_.schedule_after(
      cfg.rto, [this, src = msg.src, dst = msg.dst, proto = msg.protocol,
                seq = msg.seq] { retransmit(src, dst, proto, seq); });
  ch.pending.emplace(msg.seq, std::move(pending));
}

void Network::launch_next(NodeId src, NodeId dst, ProtocolId protocol) {
  Channel& ch = channel(src, dst, protocol);
  if (ch.queue.empty()) return;
  Message msg = std::move(ch.queue.front());
  ch.queue.pop_front();
  make_head(ch, msg, reliable_.at(protocol));
  transmit(std::move(msg));
}

void Network::retransmit(NodeId src, NodeId dst, ProtocolId protocol,
                         std::uint64_t seq) {
  const auto cit = channels_.find(ChannelKey{src, dst, protocol});
  if (cit == channels_.end()) return;
  const auto pit = cit->second.pending.find(seq);
  if (pit == cit->second.pending.end()) return;  // acked concurrently
  PendingSend& p = pit->second;
  const RetransmitConfig& cfg = reliable_.at(protocol);
  if (p.attempts >= cfg.max_attempts) {
    // Retry horizon exhausted: the frame is lost for good — a pure
    // omission, never a reorder. Token-loss detectors key off
    // unacked_for() dropping to zero here.
    cit->second.pending.erase(pit);
    --unacked_by_protocol_[protocol];
    launch_next(src, dst, protocol);
    return;
  }
  ++p.attempts;
  ++counters_.retransmitted;
  transmit(p.msg);
  p.rto = std::min(p.rto * cfg.backoff, cfg.rto_max);
  p.timer = sim_.schedule_after(
      p.rto, [this, src, dst, protocol, seq] {
        retransmit(src, dst, protocol, seq);
      });
}

void Network::resolve_ack(const Message& ack) {
  // The ack travels receiver → sender, so the original flow is
  // (ack.dst → ack.src).
  const auto cit =
      channels_.find(ChannelKey{ack.dst, ack.src, ack.protocol});
  if (cit == channels_.end()) return;
  const auto pit = cit->second.pending.find(ack.seq);
  if (pit == cit->second.pending.end()) return;  // duplicate ack
  sim_.cancel(pit->second.timer);
  cit->second.pending.erase(pit);
  --unacked_by_protocol_[ack.protocol];
  launch_next(ack.dst, ack.src, ack.protocol);
}

void Network::send(Message msg) {
  affinity_.check("net: Network touched from a second thread "
                  "(simulation-thread affinity; see network.hpp)");
  GMX_ASSERT(msg.src < topo_.node_count());
  GMX_ASSERT(msg.dst < topo_.node_count());
  GMX_ASSERT_MSG(msg.src != msg.dst,
                 "self-send: handle loopback in the protocol layer");
  if (send_router_ && send_router_(msg)) return;  // absorbed (batching)
  if (!reliable_.empty()) {
    const auto it = reliable_.find(msg.protocol);
    if (it != reliable_.end() && !register_reliable_send(msg, it->second))
      return;  // queued behind the channel head; launch_next transmits it
  }
  transmit(std::move(msg));
}

void Network::transmit(Message msg) {
  if (send_tap_) send_tap_(msg);
  ++counters_.sent;
  counters_.bytes_total += msg.wire_size();
  if (topo_.same_cluster(msg.src, msg.dst)) {
    ++counters_.intra_cluster;
  } else {
    ++counters_.inter_cluster;
    counters_.bytes_inter += msg.wire_size();
    ++inter_by_protocol_[msg.protocol];
  }
  ++sent_by_protocol_[msg.protocol];

  // Fault checks, cheapest first; every branch is a no-op (no rng draw, no
  // lookup) when the corresponding fault is unconfigured, preserving
  // bit-for-bit trajectories of fault-free runs. Dropped datagrams release
  // their payload handle on return; the last handle recycles the buffer.
  if (node_up_[msg.src] == 0) {  // sender offline: datagram never leaves
    ++counters_.dropped;
    return;
  }
  if (drop_filter_ && drop_filter_(msg)) {
    ++counters_.dropped;
    return;
  }
  if (!link_drop_.empty() && !topo_.same_cluster(msg.src, msg.dst)) {
    const auto it = link_drop_.find(
        link_key(topo_.cluster_of(msg.src), topo_.cluster_of(msg.dst)));
    if (it != link_drop_.end() &&
        (it->second >= 1.0 || fault_rng_.chance(it->second))) {
      ++counters_.dropped;
      return;
    }
  }
  if (drop_p_ > 0.0 && fault_rng_.chance(drop_p_)) {
    ++counters_.dropped;
    return;
  }

  const bool duplicate = dup_p_ > 0.0 && fault_rng_.chance(dup_p_);
  const SimTime sent_at = sim_.now();

  const SimTime at = departure_to_delivery(msg);
  ++in_flight_;
  ++in_flight_by_protocol_[msg.protocol];
  if (duplicate) {
    ++counters_.duplicated;
    Message copy = msg;
    const SimTime at2 = departure_to_delivery(copy);
    ++in_flight_;
    ++in_flight_by_protocol_[copy.protocol];
    sim_.schedule_at(at2, [this, m = std::move(copy), sent_at]() mutable {
      deliver(std::move(m), sent_at);
    });
  }
  sim_.schedule_at(at, [this, m = std::move(msg), sent_at]() mutable {
    deliver(std::move(m), sent_at);
  });
}

void Network::deliver(Message msg, SimTime sent_at) {
  --in_flight_;
  --in_flight_by_protocol_[msg.protocol];
  if (node_up_[msg.dst] == 0) {  // receiver offline: datagram lost on arrival
    ++counters_.dropped;
    return;
  }
  ++counters_.delivered;
  if (delivery_tap_) delivery_tap_(msg, sent_at, sim_.now());
  if (tracer_) tracer_(msg, sent_at, sim_.now());
  if (msg.seq != 0) {  // ARQ frame of a reliable protocol
    if (msg.type == Message::kAckType) {
      resolve_ack(msg);
      return;
    }
    // Acknowledge before deduplicating: a duplicate means our previous ack
    // was lost (or the sender timed out), so it must be acked again.
    Message ack;
    ack.src = msg.dst;
    ack.dst = msg.src;
    ack.protocol = msg.protocol;
    ack.type = Message::kAckType;
    ack.seq = msg.seq;
    transmit(std::move(ack));
    Channel& ch = channel(msg.src, msg.dst, msg.protocol);
    if (!ch.seen.insert(msg.seq).second) return;  // duplicate: suppress
  }
  auto& table = handlers_[msg.dst];
  GMX_ASSERT_MSG(msg.protocol < table.size() && table[msg.protocol],
                 "message delivered to node with no handler for its protocol");
  table[msg.protocol](msg);
  // The message (and its payload handle) dies with this delivery event;
  // if this was the last handle, the pooled buffer is recycled here.
}

void Network::dispatch_local(const Message& msg) {
  affinity_.check("net: Network touched from a second thread "
                  "(simulation-thread affinity; see network.hpp)");
  GMX_ASSERT(msg.dst < topo_.node_count());
  GMX_ASSERT_MSG(!reliable(msg.protocol),
                 "reliable protocols must not bypass ARQ via dispatch_local");
  const SimTime now = sim_.now();
  if (delivery_tap_) delivery_tap_(msg, now, now);
  if (tracer_) tracer_(msg, now, now);
  auto& table = handlers_[msg.dst];
  GMX_ASSERT_MSG(msg.protocol < table.size() && table[msg.protocol],
                 "batched message unpacked at node with no handler");
  table[msg.protocol](msg);
}

}  // namespace gmx
