#include "gridmutex/net/network.hpp"

#include <utility>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

MessageCounters& MessageCounters::operator-=(const MessageCounters& o) {
  sent -= o.sent;
  delivered -= o.delivered;
  dropped -= o.dropped;
  duplicated -= o.duplicated;
  intra_cluster -= o.intra_cluster;
  inter_cluster -= o.inter_cluster;
  bytes_total -= o.bytes_total;
  bytes_inter -= o.bytes_inter;
  return *this;
}

Network::Network(Simulator& sim, Topology topo,
                 std::shared_ptr<const LatencyModel> latency, Rng rng)
    : sim_(sim),
      topo_(std::move(topo)),
      latency_(std::move(latency)),
      rng_(rng),
      handlers_(topo_.node_count()) {
  GMX_ASSERT(latency_ != nullptr);
}

void Network::attach(NodeId node, ProtocolId protocol, Handler handler) {
  GMX_ASSERT(node < topo_.node_count());
  GMX_ASSERT(handler != nullptr);
  handlers_[node][protocol] = std::move(handler);
}

void Network::detach(NodeId node, ProtocolId protocol) {
  GMX_ASSERT(node < topo_.node_count());
  handlers_[node].erase(protocol);
}

void Network::set_drop_probability(double p) {
  GMX_ASSERT(p >= 0.0 && p < 1.0);
  drop_p_ = p;
}

void Network::set_duplicate_probability(double p) {
  GMX_ASSERT(p >= 0.0 && p <= 1.0);
  dup_p_ = p;
}

std::uint64_t Network::sent_by_protocol(ProtocolId p) const {
  const auto it = sent_by_protocol_.find(p);
  return it == sent_by_protocol_.end() ? 0 : it->second;
}

std::uint64_t Network::in_flight_for(ProtocolId p) const {
  const auto it = in_flight_by_protocol_.find(p);
  return it == in_flight_by_protocol_.end() ? 0 : it->second;
}

SimTime Network::departure_to_delivery(const Message& msg) {
  SimDuration delay = latency_->sample(topo_, msg.src, msg.dst, rng_);
  GMX_ASSERT(delay > SimDuration::ns(0));
  if (!reorder_spread_.is_zero())
    delay += SimDuration::ns(std::int64_t(
        rng_.next_below(std::uint64_t(reorder_spread_.count_ns()))));
  SimTime at = sim_.now() + delay;
  if (fifo_) {
    const std::uint64_t key =
        (std::uint64_t(msg.src) << 32) | std::uint64_t(msg.dst);
    auto [it, inserted] = last_delivery_.try_emplace(key, at);
    if (!inserted) {
      if (at < it->second) at = it->second;  // clamp: no overtaking
      it->second = at;
    }
  }
  return at;
}

void Network::send(Message msg) {
  GMX_ASSERT(msg.src < topo_.node_count());
  GMX_ASSERT(msg.dst < topo_.node_count());
  GMX_ASSERT_MSG(msg.src != msg.dst,
                 "self-send: handle loopback in the protocol layer");

  ++counters_.sent;
  counters_.bytes_total += msg.wire_size();
  if (topo_.same_cluster(msg.src, msg.dst)) {
    ++counters_.intra_cluster;
  } else {
    ++counters_.inter_cluster;
    counters_.bytes_inter += msg.wire_size();
  }
  ++sent_by_protocol_[msg.protocol];

  if (drop_p_ > 0.0 && rng_.chance(drop_p_)) {
    ++counters_.dropped;
    return;
  }

  const bool duplicate = dup_p_ > 0.0 && rng_.chance(dup_p_);
  const SimTime sent_at = sim_.now();

  const SimTime at = departure_to_delivery(msg);
  ++in_flight_;
  ++in_flight_by_protocol_[msg.protocol];
  if (duplicate) {
    ++counters_.duplicated;
    Message copy = msg;
    const SimTime at2 = departure_to_delivery(copy);
    ++in_flight_;
    ++in_flight_by_protocol_[copy.protocol];
    sim_.schedule_at(at2, [this, m = std::move(copy), sent_at]() mutable {
      deliver(std::move(m), sent_at);
    });
  }
  sim_.schedule_at(at, [this, m = std::move(msg), sent_at]() mutable {
    deliver(std::move(m), sent_at);
  });
}

void Network::deliver(Message msg, SimTime sent_at) {
  --in_flight_;
  --in_flight_by_protocol_[msg.protocol];
  ++counters_.delivered;
  if (delivery_tap_) delivery_tap_(msg, sent_at, sim_.now());
  if (tracer_) tracer_(msg, sent_at, sim_.now());
  auto& node_handlers = handlers_[msg.dst];
  const auto it = node_handlers.find(msg.protocol);
  GMX_ASSERT_MSG(it != node_handlers.end(),
                 "message delivered to node with no handler for its protocol");
  it->second(msg);
}

}  // namespace gmx
