#include "gridmutex/net/wire.hpp"

#include <algorithm>
#include <cstring>

namespace gmx::wire {

// --- Writer ----------------------------------------------------------------

void Writer::init_block(detail::PayloadBuf* buf, std::size_t reserve) {
  if (buf == nullptr) buf = new detail::PayloadBuf;
  buf_ = buf;
  std::vector<std::uint8_t>& bytes = buf_->bytes;
  // A pooled block arrives with whatever size it last grew to (recycling
  // never shrinks or clears it); only grow when the caller asks for more.
  if (bytes.size() < reserve) bytes.resize(reserve);
  data_ = bytes.data();
  cap_ = bytes.size();
  audit_arm();
}

void Writer::grow(std::size_t n) {
  if (buf_ == nullptr) {
    // Lazily-allocated default Writer: nothing has been written yet.
    init_block(nullptr, std::max<std::size_t>(n, 64));
    return;
  }
  std::vector<std::uint8_t>& bytes = buf_->bytes;
  const std::size_t newcap =
      std::max({cap_ * 2, len_ + n, std::size_t(64)});
  bytes.resize(newcap);
  data_ = bytes.data();
  cap_ = newcap;
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  // ensure() first: a lazily-allocated Writer arms its audit shadow inside
  // init_block(), so the shadow append must come after it.
  ensure(kMaxVarint + data.size());
  audit_bytes(data);
  std::uint8_t* p = raw_varint(data_ + len_, data.size());
  if (!data.empty()) {
    std::memcpy(p, data.data(), data.size());
    p += data.size();
  }
  len_ = std::size_t(p - data_);
}

void Writer::str(std::string_view s) {
  bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Writer::varint_array(std::span<const std::uint64_t> values) {
  ensure(kMaxVarint * (values.size() + 1));
#ifdef GRIDMUTEX_WIRE_AUDIT
  if (audit_) {
    audit_varint(values.size());
    for (std::uint64_t v : values) audit_varint(v);
  }
#endif
  std::uint8_t* p = raw_varint(data_ + len_, values.size());
  for (std::uint64_t v : values) p = raw_varint(p, v);
  len_ = std::size_t(p - data_);
}

void Writer::varint_array(std::span<const std::uint32_t> values) {
  // A u32 varint is at most 5 bytes; the count prefix still budgets 10.
  ensure(kMaxVarint + 5 * values.size());
#ifdef GRIDMUTEX_WIRE_AUDIT
  if (audit_) {
    audit_varint(values.size());
    for (std::uint32_t v : values) audit_varint(v);
  }
#endif
  std::uint8_t* p = raw_varint(data_ + len_, values.size());
  for (std::uint32_t v : values) p = raw_varint(p, v);
  len_ = std::size_t(p - data_);
}

Payload Writer::take_payload() {
  audit_verify();
  audit_disarm();
  if (buf_ == nullptr || len_ == 0) {
    detail::buf_release(buf_);
    buf_ = nullptr;
    data_ = nullptr;
    len_ = cap_ = 0;
    return {};
  }
  // Adopt: the Writer's sole reference becomes the Payload's. The block
  // keeps its full-size byte vector; the handle carries the live length.
  Payload p(buf_, 0, len_);
  buf_ = nullptr;
  data_ = nullptr;
  len_ = cap_ = 0;
  return p;
}

std::vector<std::uint8_t> Writer::take() {
  audit_verify();
  audit_disarm();
  std::vector<std::uint8_t> out;
  if (buf_ != nullptr) {
    buf_->bytes.resize(len_);
    out = std::move(buf_->bytes);
    detail::buf_release(buf_);
    buf_ = nullptr;
  }
  data_ = nullptr;
  len_ = cap_ = 0;
  return out;
}

#ifdef GRIDMUTEX_WIRE_AUDIT
void Writer::audit_arm() {
  // Sampled shadow encode: every 64th Writer per thread replays its
  // appends through the reference per-byte path and asserts equality.
  static thread_local std::uint32_t counter = 0;
  if ((++counter & 63U) == 0U)
    audit_ = std::make_unique<std::vector<std::uint8_t>>();
}
#endif

// --- Reader ----------------------------------------------------------------

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw WireError("wire: truncated message");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = std::uint16_t(data_[pos_]) |
                    std::uint16_t(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::uint64_t Reader::varint_slow() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0x7E) != 0)
      throw WireError("wire: varint overflows 64 bits");
    v |= std::uint64_t(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw WireError("wire: varint too long");
  }
}

std::vector<std::uint8_t> Reader::bytes() {
  const std::uint64_t n = varint();
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + std::ptrdiff_t(pos_),
                                data_.begin() + std::ptrdiff_t(pos_ + n));
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> Reader::bytes_view() {
  const std::uint64_t n = varint();
  need(n);
  const std::span<const std::uint8_t> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string Reader::str() {
  const std::uint64_t n = varint();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::vector<std::uint64_t> Reader::varint_array_u64() {
  const std::uint64_t n = varint();
  if (n > remaining())  // each element takes >= 1 byte
    throw WireError("wire: array length exceeds payload");
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(varint());
  return out;
}

std::vector<std::uint32_t> Reader::varint_array_u32() {
  const std::uint64_t n = varint();
  if (n > remaining())
    throw WireError("wire: array length exceeds payload");
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = varint();
    if (v > UINT32_MAX) throw WireError("wire: u32 array element overflow");
    out.push_back(std::uint32_t(v));
  }
  return out;
}

void Reader::expect_end() const {
  if (!at_end()) throw WireError("wire: trailing bytes after message");
}

}  // namespace gmx::wire
