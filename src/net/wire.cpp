#include "gridmutex/net/wire.hpp"

#include <cstring>

namespace gmx::wire {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(std::uint8_t(v));
  buf_.push_back(std::uint8_t(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(std::uint8_t(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(std::uint8_t(v >> (8 * i)));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(std::uint8_t(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(std::uint8_t(v));
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::varint_array(std::span<const std::uint64_t> values) {
  varint(values.size());
  for (auto v : values) varint(v);
}

void Writer::varint_array(std::span<const std::uint32_t> values) {
  varint(values.size());
  for (auto v : values) varint(v);
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw WireError("wire: truncated message");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = std::uint16_t(data_[pos_]) |
                    std::uint16_t(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0x7E) != 0)
      throw WireError("wire: varint overflows 64 bits");
    v |= std::uint64_t(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw WireError("wire: varint too long");
  }
}

std::vector<std::uint8_t> Reader::bytes() {
  const std::uint64_t n = varint();
  need(n);
  std::vector<std::uint8_t> out(data_.begin() + std::ptrdiff_t(pos_),
                                data_.begin() + std::ptrdiff_t(pos_ + n));
  pos_ += n;
  return out;
}

std::span<const std::uint8_t> Reader::bytes_view() {
  const std::uint64_t n = varint();
  need(n);
  const std::span<const std::uint8_t> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::string Reader::str() {
  const std::uint64_t n = varint();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::vector<std::uint64_t> Reader::varint_array_u64() {
  const std::uint64_t n = varint();
  if (n > remaining())  // each element takes >= 1 byte
    throw WireError("wire: array length exceeds payload");
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(varint());
  return out;
}

std::vector<std::uint32_t> Reader::varint_array_u32() {
  const std::uint64_t n = varint();
  if (n > remaining())
    throw WireError("wire: array length exceeds payload");
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = varint();
    if (v > UINT32_MAX) throw WireError("wire: u32 array element overflow");
    out.push_back(std::uint32_t(v));
  }
  return out;
}

void Reader::expect_end() const {
  if (!at_end()) throw WireError("wire: trailing bytes after message");
}

}  // namespace gmx::wire
