#include "gridmutex/net/topology.hpp"

#include <array>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

namespace {
constexpr std::array<std::string_view, 9> kGrid5000Sites = {
    "orsay", "grenoble", "lyon",     "rennes", "lille",
    "nancy", "toulouse", "sophia",   "bordeaux"};
}  // namespace

std::span<const std::string_view> grid5000_site_names() {
  return kGrid5000Sites;
}

Topology Topology::uniform(std::uint32_t cluster_count,
                           std::uint32_t nodes_per_cluster) {
  std::vector<std::uint32_t> sizes(cluster_count, nodes_per_cluster);
  return from_sizes(sizes);
}

Topology Topology::from_sizes(std::span<const std::uint32_t> sizes,
                              std::vector<std::string> names) {
  GMX_ASSERT_MSG(!sizes.empty(), "topology needs at least one cluster");
  GMX_ASSERT_MSG(names.empty() || names.size() == sizes.size(),
                 "one name per cluster, or none");
  Topology t;
  NodeId next = 0;
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    GMX_ASSERT_MSG(sizes[c] > 0, "empty cluster");
    t.first_node_.push_back(next);
    for (std::uint32_t i = 0; i < sizes[c]; ++i)
      t.cluster_of_.push_back(ClusterId(c));
    next += sizes[c];
    t.names_.push_back(names.empty() ? "c" + std::to_string(c)
                                     : std::move(names[c]));
  }
  t.node_count_ = next;
  return t;
}

Topology Topology::grid5000(std::uint32_t nodes_per_cluster) {
  std::vector<std::uint32_t> sizes(kGrid5000Sites.size(), nodes_per_cluster);
  std::vector<std::string> names;
  names.reserve(kGrid5000Sites.size());
  for (auto s : kGrid5000Sites) names.emplace_back(s);
  return from_sizes(sizes, std::move(names));
}

ClusterId Topology::cluster_of(NodeId node) const {
  GMX_ASSERT(node < node_count_);
  return cluster_of_[node];
}

std::uint32_t Topology::cluster_size(ClusterId c) const {
  GMX_ASSERT(c < cluster_count());
  const NodeId first = first_node_[c];
  const NodeId end =
      (c + 1 < cluster_count()) ? first_node_[c + 1] : node_count_;
  return end - first;
}

NodeId Topology::first_node_of(ClusterId c) const {
  GMX_ASSERT(c < cluster_count());
  return first_node_[c];
}

std::vector<NodeId> Topology::nodes_of(ClusterId c) const {
  const NodeId first = first_node_of(c);
  const std::uint32_t n = cluster_size(c);
  std::vector<NodeId> out(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = first + i;
  return out;
}

const std::string& Topology::cluster_name(ClusterId c) const {
  GMX_ASSERT(c < cluster_count());
  return names_[c];
}

}  // namespace gmx
