#include "gridmutex/net/trace.hpp"

#include <iomanip>

namespace gmx {

TraceSink::TraceSink(std::ostream& out, Labeler labeler) : out_(out) {
  if (labeler) labelers_.push_back(std::move(labeler));
}

void TraceSink::add_labeler(Labeler labeler) {
  if (!labeler) return;
  labelers_.push_back(std::move(labeler));
  // Cached fallback labels may now be resolvable by the new labeler.
  label_cache_.clear();
}

const std::string& TraceSink::label_for(ProtocolId protocol,
                                        std::uint16_t type) {
  const std::uint64_t key =
      (std::uint64_t(protocol) << 16) | std::uint64_t(type);
  const auto it = label_cache_.find(key);
  if (it != label_cache_.end()) return it->second;
  std::string label;
  for (const Labeler& l : labelers_) {
    label = l(protocol, type);
    if (!label.empty()) break;
  }
  if (label.empty())
    label = "p" + std::to_string(protocol) + "/t" + std::to_string(type);
  return label_cache_.emplace(key, std::move(label)).first->second;
}

void TraceSink::install(Network& net) {
  net.set_tracer([this, &net](const Message& m, SimTime sent, SimTime recv) {
    if (enabled_) write(net, m, sent, recv);
  });
}

void TraceSink::write(const Network& net, const Message& msg, SimTime sent,
                      SimTime recv) {
  const Topology& topo = net.topology();
  const std::string& label = label_for(msg.protocol, msg.type);
  out_ << std::fixed << std::setprecision(3) << recv.as_ms() << "ms  "
       << label << "  n" << msg.src << "("
       << topo.cluster_name(topo.cluster_of(msg.src)) << ") -> n" << msg.dst
       << "(" << topo.cluster_name(topo.cluster_of(msg.dst)) << ")  "
       << msg.wire_size() << "B  transit=" << (recv - sent).to_string()
       << "\n";
  ++lines_;
}

}  // namespace gmx
