#include "gridmutex/net/trace.hpp"

#include <iomanip>

namespace gmx {

TraceSink::TraceSink(std::ostream& out, Labeler labeler) : out_(out) {
  if (labeler) labelers_.push_back(std::move(labeler));
}

void TraceSink::add_labeler(Labeler labeler) {
  if (labeler) labelers_.push_back(std::move(labeler));
}

void TraceSink::install(Network& net) {
  net.set_tracer([this, &net](const Message& m, SimTime sent, SimTime recv) {
    if (enabled_) write(net, m, sent, recv);
  });
}

void TraceSink::write(const Network& net, const Message& msg, SimTime sent,
                      SimTime recv) {
  const Topology& topo = net.topology();
  std::string label;
  for (const Labeler& l : labelers_) {
    label = l(msg.protocol, msg.type);
    if (!label.empty()) break;
  }
  if (label.empty())
    label = "p" + std::to_string(msg.protocol) + "/t" +
            std::to_string(msg.type);
  out_ << std::fixed << std::setprecision(3) << recv.as_ms() << "ms  "
       << label << "  n" << msg.src << "("
       << topo.cluster_name(topo.cluster_of(msg.src)) << ") -> n" << msg.dst
       << "(" << topo.cluster_name(topo.cluster_of(msg.dst)) << ")  "
       << msg.wire_size() << "B  transit=" << (recv - sent).to_string()
       << "\n";
  ++lines_;
}

}  // namespace gmx
