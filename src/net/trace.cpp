#include "gridmutex/net/trace.hpp"

#include <iomanip>

namespace gmx {

TraceSink::TraceSink(std::ostream& out, Labeler labeler)
    : out_(out), labeler_(std::move(labeler)) {}

void TraceSink::install(Network& net) {
  net.set_tracer([this, &net](const Message& m, SimTime sent, SimTime recv) {
    if (enabled_) write(net, m, sent, recv);
  });
}

void TraceSink::write(const Network& net, const Message& msg, SimTime sent,
                      SimTime recv) {
  const Topology& topo = net.topology();
  const std::string label =
      labeler_ ? labeler_(msg.protocol, msg.type)
               : "p" + std::to_string(msg.protocol) + "/t" +
                     std::to_string(msg.type);
  out_ << std::fixed << std::setprecision(3) << recv.as_ms() << "ms  "
       << label << "  n" << msg.src << "("
       << topo.cluster_name(topo.cluster_of(msg.src)) << ") -> n" << msg.dst
       << "(" << topo.cluster_name(topo.cluster_of(msg.dst)) << ")  "
       << msg.wire_size() << "B  transit=" << (recv - sent).to_string()
       << "\n";
  ++lines_;
}

}  // namespace gmx
