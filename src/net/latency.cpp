#include "gridmutex/net/latency.hpp"

#include <array>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

namespace {

// Paper Fig. 3: "Grid5000 RTT Latencies (average ms)". Row = from, col = to,
// site order: orsay, grenoble, lyon, rennes, lille, nancy, toulouse, sophia,
// bordeaux. Values transcribed verbatim (the matrix is measurably
// asymmetric; we preserve that).
constexpr std::array<double, 81> kGrid5000Rtt = {
    // orsay
    0.034, 15.039, 9.128, 8.881, 4.489, 95.282, 15.556, 20.239, 7.900,
    // grenoble
    14.976, 0.066, 3.293, 15.269, 12.954, 13.246, 10.582, 9.904, 16.288,
    // lyon
    9.136, 3.309, 0.026, 12.672, 10.377, 10.634, 7.956, 7.289, 10.078,
    // rennes
    8.913, 15.258, 12.617, 0.059, 11.269, 11.654, 19.911, 19.224, 8.114,
    // lille
    10.000, 10.001, 10.001, 10.001, 0.001, 10.001, 20.000, 20.001, 10.001,
    // nancy
    5.657, 13.279, 10.623, 11.679, 9.228, 0.032, 98.398, 17.215, 12.827,
    // toulouse
    15.547, 10.586, 7.934, 19.888, 19.102, 17.886, 0.043, 14.540, 3.131,
    // sophia
    20.332, 9.889, 7.254, 19.215, 16.811, 17.238, 14.529, 0.051, 10.629,
    // bordeaux
    7.925, 16.338, 10.043, 8.129, 10.845, 12.795, 3.150, 10.640, 0.045,
};

}  // namespace

std::span<const double> grid5000_rtt_ms() { return kGrid5000Rtt; }

MatrixLatencyModel::MatrixLatencyModel(std::vector<double> one_way_ms,
                                       std::uint32_t cluster_count,
                                       double jitter_fraction)
    : ms_(std::move(one_way_ms)),
      clusters_(cluster_count),
      jitter_(jitter_fraction) {
  GMX_ASSERT(ms_.size() ==
             std::size_t(cluster_count) * std::size_t(cluster_count));
  GMX_ASSERT(jitter_ >= 0.0 && jitter_ < 1.0);
  for (double v : ms_) GMX_ASSERT_MSG(v > 0.0, "latency must be positive");
}

MatrixLatencyModel MatrixLatencyModel::grid5000(double jitter_fraction) {
  std::vector<double> one_way(kGrid5000Rtt.size());
  for (std::size_t i = 0; i < kGrid5000Rtt.size(); ++i)
    one_way[i] = kGrid5000Rtt[i] / 2.0;  // RTT → one-way
  return MatrixLatencyModel(std::move(one_way), 9, jitter_fraction);
}

MatrixLatencyModel MatrixLatencyModel::two_level(std::uint32_t cluster_count,
                                                 SimDuration intra,
                                                 SimDuration inter,
                                                 double jitter_fraction) {
  GMX_ASSERT(cluster_count > 0);
  std::vector<double> ms(std::size_t(cluster_count) * cluster_count,
                         inter.as_ms());
  for (std::uint32_t c = 0; c < cluster_count; ++c)
    ms[std::size_t(c) * cluster_count + c] = intra.as_ms();
  return MatrixLatencyModel(std::move(ms), cluster_count, jitter_fraction);
}

SimDuration MatrixLatencyModel::sample(const Topology& topo, NodeId src,
                                       NodeId dst, Rng& rng) const {
  const SimDuration m = mean(topo, src, dst);
  if (jitter_ == 0.0) return m;
  const double factor = rng.uniform(1.0 - jitter_, 1.0 + jitter_);
  SimDuration d = m * factor;
  // Jitter must never produce a non-positive delay.
  return d > SimDuration::ns(0) ? d : SimDuration::ns(1);
}

SimDuration MatrixLatencyModel::mean(const Topology& topo, NodeId src,
                                     NodeId dst) const {
  GMX_ASSERT_MSG(topo.cluster_count() == clusters_,
                 "latency matrix does not match topology");
  const ClusterId a = topo.cluster_of(src);
  const ClusterId b = topo.cluster_of(dst);
  return SimDuration::ms_f(ms_[std::size_t(a) * clusters_ + b]);
}

double MatrixLatencyModel::one_way_ms(ClusterId from, ClusterId to) const {
  GMX_ASSERT(from < clusters_ && to < clusters_);
  return ms_[std::size_t(from) * clusters_ + to];
}

}  // namespace gmx
