#include "gridmutex/workload/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "gridmutex/mutex/registry.hpp"

namespace gmx {

namespace {

std::optional<double> parse_double(std::string_view s) {
  // std::from_chars<double> is complete in libstdc++ 11+; keep strtod for
  // older toolchains, with full-consumption checking.
  const std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) return std::nullopt;
  return v;
}

std::optional<long long> parse_int(std::string_view s) {
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::vector<double>> parse_double_list(std::string_view s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string_view item =
        s.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                      : comma - pos);
    const auto v = parse_double(item);
    if (!v) return std::nullopt;
    out.push_back(*v);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return out.empty() ? std::nullopt : std::optional(out);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t hit = s.find(sep, pos);
    out.emplace_back(s.substr(
        pos, hit == std::string_view::npos ? std::string_view::npos
                                           : hit - pos));
    if (hit == std::string_view::npos) break;
    pos = hit + 1;
  }
  return out;
}

}  // namespace

std::string cli_usage() {
  return R"(gridmutex_cli — run gridmutex experiments from the command line

usage: gridmutex_cli [series...] [options]

series (repeatable; default: --composition naimi-naimi):
  --composition <intra>-<inter>  two-level composition, e.g. naimi-martin
  --flat <algorithm>             flat baseline over all nodes
  --multilevel <a0xa1x...>       hierarchy arity bottom-up, e.g. 4x3x3;
                                 needs --algorithms and --delays (per level)
  --algorithms <list>            e.g. naimi,naimi,martin
  --delays <ms list>             e.g. 0.5,5,40

options:
  --clusters <n>     clusters in the grid (default 9)
  --apps <n>         application nodes per cluster (default 20)
  --rho <list>       comma-separated rho values (default 45,90,180,540,1080)
  --cs <n>           critical sections per process (default 100)
  --alpha-ms <f>     CS duration in ms (default 10)
  --reps <n>         repetitions per point (default 5)
  --seed <n>         base RNG seed (default 1)
  --latency grid5000 | <lan_ms>:<wan_ms>   (default grid5000; grid5000
                     requires --clusters 9)
  --jitter <f>       multiplicative latency jitter fraction (default 0.05)
  --jobs <n>         sweep parallelism across (config, seed) replication
                     cells, 0 = hardware (default 0); --threads is an alias
  --csv <path>       also write all points as CSV

service mode (multi-lock, open-loop traffic):
  --locks <n>        host n locks in one LockService; every series must be
                     a --composition. rho values are ignored; one point per
                     series is run at the configured Zipf skew
  --zipf <s>         Zipf popularity exponent across locks (default 0.9)
  --placement roundrobin | hash    home-cluster sharding (default roundrobin)

  --list-algorithms  print the algorithm registry and exit
  --help             this text

known algorithms: naimi martin suzuki raymond central ricart bertier mueller
)";
}

std::variant<CliOptions, CliError> parse_cli(
    std::span<const std::string_view> args) {
  CliOptions opt;
  // Defaults applied to every series after parsing.
  std::uint32_t clusters = 9, apps = 20;
  double alpha_ms = 10.0, jitter = 0.05;
  int cs = 100;
  std::uint64_t seed = 1;
  double tl_lan_ms = 0.5, tl_wan_ms = 10.0;  // used when !grid5000
  bool grid5000 = true;
  std::optional<std::vector<std::uint32_t>> ml_arity;
  std::optional<std::vector<std::string>> ml_algorithms;
  std::optional<std::vector<double>> ml_delays;
  bool saw_zipf = false, saw_placement = false;

  auto err = [](std::string m) {
    return std::variant<CliOptions, CliError>(CliError{std::move(m)});
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view a = args[i];
    auto value = [&]() -> std::optional<std::string_view> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (a == "--help" || a == "-h") {
      opt.help = true;
      return opt;
    } else if (a == "--list-algorithms") {
      opt.list_algorithms = true;
      return opt;
    } else if (a == "--locks") {
      const auto v = value();
      const auto n = v ? parse_int(*v) : std::nullopt;
      if (!n || *n < 1) return err("--locks needs a positive integer");
      opt.locks = std::uint32_t(*n);
    } else if (a == "--zipf") {
      const auto v = value();
      const auto f = v ? parse_double(*v) : std::nullopt;
      if (!f || *f < 0) return err("--zipf needs a non-negative number");
      opt.zipf_s = *f;
      saw_zipf = true;
    } else if (a == "--placement") {
      const auto v = value();
      if (!v || (*v != "roundrobin" && *v != "rr" && *v != "hash"))
        return err("--placement expects roundrobin or hash");
      opt.placement = std::string(*v);
      saw_placement = true;
    } else if (a == "--composition") {
      const auto v = value();
      if (!v) return err("--composition needs a value");
      ExperimentConfig cfg;
      try {
        const CompositionSpec spec = parse_composition(*v);
        cfg.intra = spec.intra;
        cfg.inter = spec.inter;
      } catch (const std::invalid_argument& e) {
        return err(e.what());
      }
      opt.series.push_back(cfg);
    } else if (a == "--flat") {
      const auto v = value();
      if (!v) return err("--flat needs a value");
      try {
        (void)make_algorithm(*v);
      } catch (const std::invalid_argument& e) {
        return err(e.what());
      }
      ExperimentConfig cfg;
      cfg.mode = ExperimentConfig::Mode::kFlat;
      cfg.flat_algorithm = std::string(*v);
      opt.series.push_back(cfg);
    } else if (a == "--multilevel") {
      const auto v = value();
      if (!v) return err("--multilevel needs a value like 4x3x3");
      std::vector<std::uint32_t> arity;
      for (const std::string& part : split(*v, 'x')) {
        const auto n = parse_int(part);
        if (!n || *n < 1)
          return err("--multilevel expects positive arities like 4x3x3");
        arity.push_back(std::uint32_t(*n));
      }
      if (arity.size() < 2) return err("--multilevel needs >= 2 levels");
      ml_arity = arity;
    } else if (a == "--algorithms") {
      const auto v = value();
      if (!v) return err("--algorithms needs a comma-separated list");
      std::vector<std::string> algos = split(*v, ',');
      for (const std::string& name : algos) {
        try {
          (void)make_algorithm(name);
        } catch (const std::invalid_argument& e) {
          return err(e.what());
        }
      }
      ml_algorithms = std::move(algos);
    } else if (a == "--delays") {
      const auto v = value();
      const auto list = v ? parse_double_list(*v) : std::nullopt;
      if (!list) return err("--delays needs a comma-separated ms list");
      for (double d : *list)
        if (d <= 0) return err("--delays must be positive");
      ml_delays = *list;
    } else if (a == "--clusters") {
      const auto v = value();
      const auto n = v ? parse_int(*v) : std::nullopt;
      if (!n || *n < 1) return err("--clusters needs a positive integer");
      clusters = std::uint32_t(*n);
    } else if (a == "--apps") {
      const auto v = value();
      const auto n = v ? parse_int(*v) : std::nullopt;
      if (!n || *n < 1) return err("--apps needs a positive integer");
      apps = std::uint32_t(*n);
    } else if (a == "--rho") {
      const auto v = value();
      const auto list = v ? parse_double_list(*v) : std::nullopt;
      if (!list) return err("--rho needs a comma-separated number list");
      for (double r : *list)
        if (r <= 0) return err("rho values must be positive");
      opt.rhos = *list;
    } else if (a == "--cs") {
      const auto v = value();
      const auto n = v ? parse_int(*v) : std::nullopt;
      if (!n || *n < 1) return err("--cs needs a positive integer");
      cs = int(*n);
    } else if (a == "--alpha-ms") {
      const auto v = value();
      const auto f = v ? parse_double(*v) : std::nullopt;
      if (!f || *f <= 0) return err("--alpha-ms needs a positive number");
      alpha_ms = *f;
    } else if (a == "--reps") {
      const auto v = value();
      const auto n = v ? parse_int(*v) : std::nullopt;
      if (!n || *n < 1) return err("--reps needs a positive integer");
      opt.repetitions = int(*n);
    } else if (a == "--seed") {
      const auto v = value();
      const auto n = v ? parse_int(*v) : std::nullopt;
      if (!n || *n < 0) return err("--seed needs a non-negative integer");
      seed = std::uint64_t(*n);
    } else if (a == "--latency") {
      const auto v = value();
      if (!v) return err("--latency needs a value");
      if (*v == "grid5000") {
        grid5000 = true;
      } else {
        const auto colon = v->find(':');
        if (colon == std::string_view::npos)
          return err("--latency expects grid5000 or <lan_ms>:<wan_ms>");
        const auto lan = parse_double(v->substr(0, colon));
        const auto wan = parse_double(v->substr(colon + 1));
        if (!lan || !wan || *lan <= 0 || *wan <= 0)
          return err("--latency delays must be positive numbers");
        grid5000 = false;
        tl_lan_ms = *lan;
        tl_wan_ms = *wan;
      }
    } else if (a == "--jitter") {
      const auto v = value();
      const auto f = v ? parse_double(*v) : std::nullopt;
      if (!f || *f < 0 || *f >= 1)
        return err("--jitter needs a fraction in [0, 1)");
      jitter = *f;
    } else if (a == "--jobs" || a == "--threads") {
      const auto v = value();
      const auto n = v ? parse_int(*v) : std::nullopt;
      if (!n || *n < 0)
        return err(std::string(a) + " needs a non-negative integer");
      opt.threads = std::size_t(*n);
    } else if (a == "--csv") {
      const auto v = value();
      if (!v) return err("--csv needs a path");
      opt.csv_path = std::string(*v);
    } else {
      return err("unknown argument: " + std::string(a));
    }
  }

  if (ml_arity || ml_algorithms || ml_delays) {
    if (!ml_arity || !ml_algorithms || !ml_delays)
      return err("--multilevel requires --algorithms and --delays");
    if (ml_algorithms->size() != ml_arity->size())
      return err("--algorithms must list one algorithm per level");
    if (ml_delays->size() != ml_arity->size())
      return err("--delays must list one delay per level");
    ExperimentConfig cfg;
    cfg.mode = ExperimentConfig::Mode::kMultiLevel;
    cfg.hierarchy = HierarchySpec{*ml_arity, *ml_algorithms};
    for (double d : *ml_delays)
      cfg.level_delays.push_back(SimDuration::ms_f(d));
    opt.series.push_back(std::move(cfg));
  }
  if (opt.series.empty()) opt.series.emplace_back();  // naimi-naimi default
  if (opt.locks == 0 && (saw_zipf || saw_placement))
    return err("--zipf/--placement apply to service mode; add --locks <n>");
  if (opt.locks > 0) {
    const bool all_composition = std::all_of(
        opt.series.begin(), opt.series.end(), [](const ExperimentConfig& c) {
          return c.mode == ExperimentConfig::Mode::kComposition;
        });
    if (!all_composition)
      return err("--locks runs a LockService of two-level compositions; "
                 "--flat/--multilevel series cannot be multiplexed");
  }
  const bool needs_grid = std::any_of(
      opt.series.begin(), opt.series.end(), [](const ExperimentConfig& c) {
        return c.mode != ExperimentConfig::Mode::kMultiLevel;
      });
  if (needs_grid && grid5000 && clusters != 9)
    return err("--latency grid5000 requires --clusters 9 (paper Fig. 3)");

  for (ExperimentConfig& cfg : opt.series) {
    if (cfg.mode == ExperimentConfig::Mode::kMultiLevel) {
      cfg.workload.cs_count = cs;
      cfg.workload.alpha = SimDuration::ms_f(alpha_ms);
      cfg.seed = seed;
      cfg.latency.jitter = jitter;
      continue;
    }
    cfg.clusters = clusters;
    cfg.apps_per_cluster = apps;
    cfg.workload.cs_count = cs;
    cfg.workload.alpha = SimDuration::ms_f(alpha_ms);
    cfg.seed = seed;
    cfg.latency = grid5000
                      ? LatencySpec::grid5000(jitter)
                      : LatencySpec::two_level(SimDuration::ms_f(tl_lan_ms),
                                               SimDuration::ms_f(tl_wan_ms),
                                               jitter);
  }
  return opt;
}

}  // namespace gmx
