#include "gridmutex/workload/open_loop.hpp"

#include <algorithm>
#include <cmath>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

ZipfSampler::ZipfSampler(std::uint32_t n, double s) : s_(s) {
  GMX_ASSERT_MSG(n >= 1, "Zipf over an empty rank set");
  GMX_ASSERT_MSG(s >= 0.0, "Zipf exponent must be non-negative");
  cum_.reserve(n);
  double acc = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(double(i) + 1.0, s);
    cum_.push_back(acc);
  }
}

std::uint32_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double() * cum_.back();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  const std::size_t i = std::size_t(it - cum_.begin());
  return std::uint32_t(std::min(i, cum_.size() - 1));
}

double ZipfSampler::probability(std::uint32_t i) const {
  GMX_ASSERT(i < cum_.size());
  const double w = cum_[i] - (i == 0 ? 0.0 : cum_[i - 1]);
  return w / cum_.back();
}

std::vector<OpenLoopArrival> materialize_open_loop(
    const OpenLoopParams& params, std::span<const NodeId> apps,
    const ZipfSampler& zipf, Rng& traffic, const OpenLoopFlash& flash) {
  GMX_ASSERT(params.arrivals_per_sec > 0.0);
  GMX_ASSERT(!apps.empty());
  GMX_ASSERT(flash.factor > 0.0);
  const double mean_gap = 1.0 / params.arrivals_per_sec;
  const auto gap_at = [&](double t) {
    const bool in_flash = t >= flash.from_sec && t < flash.until_sec;
    return in_flash ? mean_gap / flash.factor : mean_gap;
  };
  std::vector<OpenLoopArrival> arrivals;
  double t = traffic.exponential(gap_at(0.0));
  while (t < params.window.as_sec()) {
    OpenLoopArrival a;
    a.at = SimTime::zero() + SimDuration::sec_f(t);
    a.node = apps[traffic.next_below(apps.size())];
    a.lock = zipf.sample(traffic);
    arrivals.push_back(a);
    t += traffic.exponential(gap_at(t));
  }
  return arrivals;
}

}  // namespace gmx
