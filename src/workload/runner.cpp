#include "gridmutex/workload/runner.hpp"

#include "gridmutex/workload/sweep.hpp"

namespace gmx {

std::vector<ExperimentResult> run_sweep(
    std::span<const ExperimentConfig> configs, const SweepOptions& opt) {
  const SweepRunner runner(opt.threads);
  // Cells are (config, repetition) pairs — finer than whole configs, so a
  // short config axis with many repetitions still fills every job slot.
  // Seeds follow the run_replicated convention (cfg.seed + repetition) and
  // rows merge in repetition order, so the output is bit-identical to the
  // serial run_replicated loop for every job count.
  return runner.run_merged(
      configs.size(), opt.repetitions,
      [&](std::size_t c, int r) {
        ExperimentConfig cfg = configs[c];
        cfg.seed += std::uint64_t(r);
        return run_experiment(cfg);
      },
      opt.progress);
}

std::vector<ExperimentResult> run_rho_sweep(ExperimentConfig base,
                                            std::span<const double> rhos,
                                            const SweepOptions& opt) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(rhos.size());
  for (double rho : rhos) {
    ExperimentConfig cfg = base;
    cfg.workload.rho = rho;
    configs.push_back(cfg);
  }
  return run_sweep(configs, opt);
}

}  // namespace gmx
