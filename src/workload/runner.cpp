#include "gridmutex/workload/runner.hpp"

#include <atomic>
#include <mutex>

#include "gridmutex/workload/thread_pool.hpp"

namespace gmx {

std::vector<ExperimentResult> run_sweep(
    std::span<const ExperimentConfig> configs, const SweepOptions& opt) {
  std::vector<ExperimentResult> results(configs.size());
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;

  auto run_one = [&](std::size_t i) {
    results[i] = run_replicated(configs[i], opt.repetitions);
    const std::size_t d = ++done;
    if (opt.progress) {
      const std::lock_guard lock(progress_mu);
      opt.progress(d, configs.size());
    }
  };

  if (opt.threads == 1 || configs.size() <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(opt.threads);
    pool.parallel_for(configs.size(), run_one);
  }
  return results;
}

std::vector<ExperimentResult> run_rho_sweep(ExperimentConfig base,
                                            std::span<const double> rhos,
                                            const SweepOptions& opt) {
  std::vector<ExperimentConfig> configs;
  configs.reserve(rhos.size());
  for (double rho : rhos) {
    ExperimentConfig cfg = base;
    cfg.workload.rho = rho;
    configs.push_back(cfg);
  }
  return run_sweep(configs, opt);
}

}  // namespace gmx
