#include "gridmutex/workload/experiment.hpp"

#include <cctype>
#include <memory>

#include "gridmutex/analysis/protocol_checker.hpp"
#include "gridmutex/core/composition.hpp"
#include "gridmutex/fault/failover.hpp"
#include "gridmutex/fault/injector.hpp"
#include "gridmutex/mutex/registry.hpp"
#include "gridmutex/sim/assert.hpp"
#include "gridmutex/workload/trace_hash.hpp"

namespace gmx {

std::shared_ptr<const LatencyModel> LatencySpec::build(
    std::uint32_t clusters) const {
  switch (kind) {
    case Kind::kGrid5000:
      GMX_ASSERT_MSG(clusters == 9,
                     "the Grid5000 matrix (paper Fig. 3) covers 9 clusters");
      return std::make_shared<MatrixLatencyModel>(
          MatrixLatencyModel::grid5000(jitter));
    case Kind::kTwoLevel:
      return std::make_shared<MatrixLatencyModel>(
          MatrixLatencyModel::two_level(clusters, lan, wan, jitter));
  }
  GMX_ASSERT_MSG(false, "unreachable");
  return nullptr;
}

std::uint32_t ExperimentConfig::application_count() const {
  if (mode == Mode::kMultiLevel) {
    GMX_ASSERT(hierarchy.has_value());
    return hierarchy->application_count();
  }
  return clusters * apps_per_cluster;
}

namespace {

std::string capitalize(std::string s) {
  if (!s.empty()) s[0] = char(std::toupper(static_cast<unsigned char>(s[0])));
  return s;
}

}  // namespace

std::string ExperimentConfig::label() const {
  switch (mode) {
    case Mode::kComposition:
      return capitalize(intra) + "-" + capitalize(inter);
    case Mode::kFlat:
      return capitalize(flat_algorithm) + " (flat)";
    case Mode::kMultiLevel: {
      GMX_ASSERT(hierarchy.has_value());
      std::string out = "ML[";
      for (std::size_t i = 0; i < hierarchy->algorithms.size(); ++i) {
        if (i > 0) out += "-";
        out += capitalize(hierarchy->algorithms[i]);
      }
      return out + "]";
    }
  }
  return "?";
}

void LockMetrics::merge(const LockMetrics& other) {
  GMX_ASSERT(name == other.name && home_cluster == other.home_cluster);
  arrivals += other.arrivals;
  completed_cs += other.completed_cs;
  obtaining.merge(other.obtaining);
  obtaining_hist.merge(other.obtaining_hist);
  protocol_msgs += other.protocol_msgs;
  inter_msgs += other.inter_msgs;
  sheds += other.sheds;
  revocations += other.revocations;
}

double ExperimentResult::jain_fairness() const {
  if (per_lock.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const LockMetrics& l : per_lock) {
    const double x = double(l.completed_cs);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return (sum * sum) / (double(per_lock.size()) * sum_sq);
}

void ExperimentResult::merge(const ExperimentResult& other) {
  GMX_ASSERT(label == other.label);
  total_cs += other.total_cs;
  safety_violations += other.safety_violations;
  if (first_violation.empty()) first_violation = other.first_violation;
  invariant_checks += other.invariant_checks;
  obtaining.merge(other.obtaining);
  obtaining_hist.merge(other.obtaining_hist);
  messages.sent += other.messages.sent;
  messages.delivered += other.messages.delivered;
  messages.dropped += other.messages.dropped;
  messages.duplicated += other.messages.duplicated;
  messages.retransmitted += other.messages.retransmitted;
  messages.intra_cluster += other.messages.intra_cluster;
  messages.inter_cluster += other.messages.inter_cluster;
  messages.bytes_total += other.messages.bytes_total;
  messages.bytes_inter += other.messages.bytes_inter;
  inter_acquisitions += other.inter_acquisitions;
  if (other.makespan > makespan) makespan = other.makespan;
  events += other.events;
  safety_entries += other.safety_entries;
  repetitions += other.repetitions;
  faults_injected += other.faults_injected;
  cs_under_faults += other.cs_under_faults;
  token_losses += other.token_losses;
  token_regenerations += other.token_regenerations;
  stranded_repairs += other.stranded_repairs;
  false_alarms += other.false_alarms;
  coordinator_failovers += other.coordinator_failovers;
  recovery_latency.merge(other.recovery_latency);
  stalled = stalled || other.stalled;
  lease_renewals += other.lease_renewals;
  lease_revocations += other.lease_revocations;
  forced_releases += other.forced_releases;
  sheds += other.sheds;
  cancels += other.cancels;
  deadline_misses += other.deadline_misses;
  acquire_retries += other.acquire_retries;
  client_crashes += other.client_crashes;
  cs_interrupted += other.cs_interrupted;
  stale_releases += other.stale_releases;
  GMX_ASSERT(per_lock.size() == other.per_lock.size());
  for (std::size_t l = 0; l < per_lock.size(); ++l)
    per_lock[l].merge(other.per_lock[l]);
  service_seconds += other.service_seconds;
  if (other.lock_count != 0) lock_count = other.lock_count;
  if (other.zipf_s != 0.0) zipf_s = other.zipf_s;
  batched_messages += other.batched_messages;
  batch_frames += other.batch_frames;
  batch_bytes_saved += other.batch_bytes_saved;
  trace_hash = TraceHasher::fold(trace_hash, other.trace_hash);
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  Simulator sim;
  // Generous livelock guard: the heaviest paper-scale run (flat Suzuki,
  // 18 000 CS × ~180 messages) stays well under this.
  sim.set_event_limit(600'000'000);

  const bool multilevel = cfg.mode == ExperimentConfig::Mode::kMultiLevel;
  const bool composition = cfg.mode == ExperimentConfig::Mode::kComposition;

  Topology topo = [&] {
    if (multilevel) return MultiLevelComposition::make_topology(*cfg.hierarchy);
    if (composition)
      return Composition::make_topology(cfg.clusters, cfg.apps_per_cluster);
    return Topology::uniform(cfg.clusters, cfg.apps_per_cluster);
  }();

  std::shared_ptr<const LatencyModel> latency =
      multilevel ? MultiLevelComposition::make_latency(
                       *cfg.hierarchy, cfg.level_delays, cfg.latency.jitter)
                 : cfg.latency.build(cfg.clusters);

  Rng root(cfg.seed);
  Network net(sim, topo, latency, root.fork(1));

  TraceHasher hasher;
  if (cfg.hash_trace) hasher.install(net);

  // Mutex endpoints per application node.
  std::unique_ptr<Composition> comp;
  std::unique_ptr<MultiLevelComposition> ml;
  std::vector<std::unique_ptr<MutexEndpoint>> flat;  // flat mode owns these
  std::vector<MutexEndpoint*> mutexes;
  std::vector<NodeId> app_nodes;

  if (composition) {
    comp = std::make_unique<Composition>(
        net, CompositionConfig{.intra_algorithm = cfg.intra,
                               .inter_algorithm = cfg.inter,
                               .initial_cluster = 0,
                               .protocol_base = 1,
                               .seed = root.fork(2).next_u64()});
    app_nodes = comp->app_nodes();
    for (NodeId v : app_nodes) mutexes.push_back(&comp->app_mutex(v));
    comp->start();
  } else if (multilevel) {
    ml = std::make_unique<MultiLevelComposition>(net, *cfg.hierarchy, 1,
                                                 root.fork(2).next_u64());
    app_nodes = ml->app_nodes();
    for (NodeId v : app_nodes) mutexes.push_back(&ml->app_mutex(v));
    ml->start();
  } else {
    const bool token = is_token_based(cfg.flat_algorithm);
    std::vector<NodeId> members(topo.node_count());
    for (NodeId v = 0; v < topo.node_count(); ++v) members[v] = v;
    for (NodeId v = 0; v < topo.node_count(); ++v) {
      flat.push_back(std::make_unique<MutexEndpoint>(
          net, 1, members, int(v), make_algorithm(cfg.flat_algorithm),
          root.fork(3'000'000 + v)));
    }
    for (auto& ep : flat)
      ep->init(token ? 0 : MutexAlgorithm::kNoHolder);
    app_nodes = members;
    for (auto& ep : flat) mutexes.push_back(ep.get());
  }

  // Fault campaign: injector → recovery manager → coordinator failover.
  // Declared before the checker so the checker still dies first; the
  // recovery manager installs hooks into the network and the endpoints, so
  // it must precede (outlive-wise, die after) nothing but the checker.
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<TokenRecoveryManager> recovery;
  std::unique_ptr<CoordinatorFailover> failover;
  if (cfg.faults.enabled) {
    GMX_ASSERT_MSG(!multilevel,
                   "fault campaigns support kFlat and kComposition only");
    injector = std::make_unique<FaultInjector>(net, cfg.faults.plan);
    if (cfg.faults.recovery) {
      const RecoveryConfig& rc = cfg.faults.recovery_cfg;
      recovery = std::make_unique<TokenRecoveryManager>(net, rc);
      if (comp) {
        // ARQ shields every instance (permission-based ones included);
        // token-loss watching applies only where a token can be lost.
        if (rc.enable_retransmit) {
          net.set_reliable(comp->inter_protocol(), rc.retransmit);
          for (ClusterId c = 0; c < comp->cluster_count(); ++c)
            net.set_reliable(comp->intra_protocol(c), rc.retransmit);
        }
        if (is_token_based(cfg.inter)) {
          recovery->watch_instance("inter", comp->inter_protocol(),
                                   comp->inter_instance());
        }
        if (is_token_based(cfg.intra)) {
          for (ClusterId c = 0; c < comp->cluster_count(); ++c) {
            recovery->watch_instance("intra[" + std::to_string(c) + "]",
                                     comp->intra_protocol(c),
                                     comp->intra_instance(c));
          }
        }
        failover = std::make_unique<CoordinatorFailover>(*comp, *injector);
      } else {
        if (rc.enable_retransmit) net.set_reliable(1, rc.retransmit);
        if (is_token_based(cfg.flat_algorithm))
          recovery->watch_instance(cfg.flat_algorithm, 1, mutexes);
      }
    }
    injector->arm();
  }

  // The checker is declared after the world it watches so its destructor
  // (which uninstalls the hooks) runs first.
  std::unique_ptr<ProtocolChecker> checker;
  if (cfg.check_protocol) {
    checker = std::make_unique<ProtocolChecker>(
        sim, CheckerOptions{.grant_bound = cfg.grant_bound,
                            .abort_on_violation = true});
    checker->attach_network(net);
    if (comp) {
      checker->attach_composition(*comp);
    } else if (ml) {
      // Multi-level internals stay private; cover the coordinator automata
      // and the privilege invariant per level.
      for (std::size_t level = 0; level + 1 < ml->levels(); ++level) {
        std::vector<const Coordinator*> group;
        for (std::uint32_t g = 0; g < ml->coordinator_count(level); ++g) {
          Coordinator& co = ml->coordinator(level, g);
          checker->attach_coordinator("coord[" + std::to_string(level) +
                                          "][" + std::to_string(g) + "]",
                                      co);
          group.push_back(&co);
        }
        if (level + 2 == ml->levels())
          checker->attach_privilege_group("root level", std::move(group));
      }
    } else {
      checker->attach_instance(cfg.flat_algorithm, mutexes,
                               is_token_based(cfg.flat_algorithm));
    }
    if (recovery) {
      // Grace covers the detector's horizon: the sustained-absence timeout
      // plus probe drift plus the election pause, with slack — a loss the
      // manager misses still surfaces, just later.
      const RecoveryConfig& rc = cfg.faults.recovery_cfg;
      const SimDuration grace =
          rc.detect_timeout + rc.probe_interval * 6 + rc.election_delay;
      if (comp) {
        if (is_token_based(cfg.inter))
          checker->enable_recovery(comp->inter_protocol(), grace);
        if (is_token_based(cfg.intra))
          for (ClusterId c = 0; c < comp->cluster_count(); ++c)
            checker->enable_recovery(comp->intra_protocol(c), grace);
      } else if (is_token_based(cfg.flat_algorithm)) {
        checker->enable_recovery(1, grace);
      }
      recovery->set_epoch_hook([ck = checker.get()](ProtocolId p, bool open) {
        ck->note_regeneration(p, open);
      });
    }
  }

  WorkloadMetrics metrics;
  SafetyMonitor safety;
  std::vector<std::unique_ptr<AppProcess>> processes;
  processes.reserve(mutexes.size());
  for (std::size_t i = 0; i < mutexes.size(); ++i) {
    processes.push_back(std::make_unique<AppProcess>(
        sim, *mutexes[i], cfg.workload, root.fork(10'000 + i), metrics,
        safety));
    if (injector) {
      processes.back()->under_fault = [inj = injector.get()] {
        return inj->active_faults() > 0;
      };
    }
  }
  for (auto& p : processes) p->start();

  const bool bounded =
      cfg.faults.enabled && cfg.faults.stall_horizon < SimTime::max();
  if (bounded) {
    sim.run_until(cfg.faults.stall_horizon);
  } else {
    sim.run();
  }

  // The run must drain completely: every process finished, no message in
  // flight, nobody left inside the CS. A bounded campaign (stall_horizon)
  // may legitimately stop short — the stall is reported, not asserted.
  bool stalled = false;
  for (auto& p : processes) stalled = stalled || !p->done();
  if (stalled) {
    GMX_ASSERT_MSG(bounded, "liveness failure: process did not finish");
  } else {
    GMX_ASSERT(net.in_flight() == 0);
    GMX_ASSERT(safety.in_cs() == 0);
  }
  GMX_ASSERT(safety.violations() == 0);

  ExperimentResult res;
  res.label = cfg.label();
  res.rho = cfg.workload.rho;
  res.total_cs = metrics.completed_cs;
  res.obtaining = metrics.obtaining;
  res.obtaining_hist = metrics.obtaining_hist;
  res.messages = net.counters();
  res.makespan = sim.now() - SimTime::zero();
  res.events = sim.events_processed();
  res.safety_entries = safety.entries();
  res.safety_violations = safety.violations();
  if (safety.first_violation())
    res.first_violation = safety.first_violation()->to_string();
  if (checker) res.invariant_checks = checker->checks_run();
  if (comp) res.inter_acquisitions = comp->total_inter_acquisitions();
  res.cs_under_faults = metrics.cs_under_faults;
  res.stalled = stalled;
  if (injector) {
    const FaultInjector::Stats& fs = injector->stats();
    res.faults_injected =
        fs.crashes + fs.partitions + fs.lossy_links + fs.targeted_drops;
  }
  if (recovery) {
    const TokenRecoveryManager::Stats& rs = recovery->stats();
    res.token_losses = rs.losses_detected;
    res.token_regenerations = rs.regenerations;
    res.stranded_repairs = rs.stranded_repairs;
    res.false_alarms = rs.false_alarms;
    res.recovery_latency = rs.recovery_latency;
  }
  if (failover) res.coordinator_failovers = failover->stats().failovers;
  if (cfg.hash_trace) res.trace_hash = hasher.value();
  return res;
}

ExperimentResult run_replicated(ExperimentConfig cfg, int repetitions) {
  GMX_ASSERT(repetitions >= 1);
  ExperimentResult merged = run_experiment(cfg);
  for (int r = 1; r < repetitions; ++r) {
    cfg.seed += 1;
    merged.merge(run_experiment(cfg));
  }
  return merged;
}

}  // namespace gmx
