#include "gridmutex/workload/report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "gridmutex/sim/assert.hpp"

namespace gmx {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GMX_ASSERT(!header_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  GMX_ASSERT_MSG(cells.size() == header_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      // Right-align all but the first column (labels left, numbers right).
      if (c == 0) {
        out << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        out << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << "\n";
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void print_metric_table(std::ostream& out, std::string_view title,
                        std::span<const SeriesPoint> points,
                        double (*metric)(const ExperimentResult&),
                        int digits) {
  // Collect axes preserving first-appearance order.
  std::vector<std::string> series;
  std::vector<double> rhos;
  for (const auto& p : points) {
    if (std::find(series.begin(), series.end(), p.series) == series.end())
      series.push_back(p.series);
    if (std::find(rhos.begin(), rhos.end(), p.rho) == rhos.end())
      rhos.push_back(p.rho);
  }
  std::map<std::pair<std::string, double>, double> cell;
  for (const auto& p : points)
    cell[{p.series, p.rho}] = metric(p.result);

  out << "\n== " << title << " ==\n";
  std::vector<std::string> header{"rho"};
  header.insert(header.end(), series.begin(), series.end());
  Table t(std::move(header));
  for (double rho : rhos) {
    std::vector<std::string> row{Table::num(rho, 0)};
    for (const auto& s : series) {
      const auto it = cell.find({s, rho});
      row.push_back(it == cell.end() ? "-" : Table::num(it->second, digits));
    }
    t.add_row(std::move(row));
  }
  t.print(out);
}

void write_csv(std::ostream& out, std::span<const SeriesPoint> points) {
  out << "series,rho,total_cs,obtaining_ms,stddev_ms,relative_stddev,"
         "obtaining_p50_ms,obtaining_p99_ms,"
         "inter_msgs_per_cs,total_msgs_per_cs,inter_bytes_per_cs,"
         "inter_acquisitions,makespan_ms,repetitions,"
         "safety_violations,first_violation,"
         "dropped,duplicated,retransmitted,faults_injected,cs_under_faults,"
         "token_losses,token_regenerations,stranded_repairs,false_alarms,"
         "coordinator_failovers,recovery_ms,stalled\n";
  for (const auto& p : points) {
    const ExperimentResult& r = p.result;
    const bool has_hist = r.obtaining_hist.count() > 0;
    // A comma inside the diagnostic would shear the CSV row.
    std::string violation = r.first_violation;
    std::replace(violation.begin(), violation.end(), ',', ';');
    out << p.series << ',' << p.rho << ',' << r.total_cs << ','
        << r.obtaining_ms() << ',' << r.stddev_ms() << ','
        << r.relative_stddev() << ','
        << (has_hist ? r.obtaining_hist.percentile(0.50) : 0.0) << ','
        << (has_hist ? r.obtaining_hist.percentile(0.99) : 0.0) << ','
        << r.inter_msgs_per_cs() << ','
        << r.total_msgs_per_cs() << ',' << r.inter_bytes_per_cs() << ','
        << r.inter_acquisitions << ',' << r.makespan.as_ms() << ','
        << r.repetitions << ',' << r.safety_violations << ','
        << violation << ','
        << r.messages.dropped << ',' << r.messages.duplicated << ','
        << r.messages.retransmitted << ',' << r.faults_injected << ','
        << r.cs_under_faults << ',' << r.token_losses << ','
        << r.token_regenerations << ',' << r.stranded_repairs << ','
        << r.false_alarms << ',' << r.coordinator_failovers << ','
        << r.recovery_latency.mean_ms() << ',' << (r.stalled ? 1 : 0)
        << "\n";
  }
}

void write_service_csv(std::ostream& out,
                       std::span<const SeriesPoint> points) {
  out << "series,locks,zipf_s,lock,home_cluster,arrivals,completed_cs,"
         "throughput_cs_per_s,obtaining_ms,obtaining_p99_ms,"
         "protocol_msgs,inter_msgs,inter_msgs_per_cs,fairness\n";
  for (const auto& p : points) {
    const ExperimentResult& r = p.result;
    for (const LockMetrics& l : r.per_lock) {
      const bool has_hist = l.obtaining_hist.count() > 0;
      out << p.series << ',' << r.lock_count << ',' << r.zipf_s << ','
          << l.name << ',' << l.home_cluster << ',' << l.arrivals << ','
          << l.completed_cs << ',' << l.throughput(r.service_seconds) << ','
          << l.obtaining.mean_ms() << ','
          << (has_hist ? l.obtaining_hist.percentile(0.99) : 0.0) << ','
          << l.protocol_msgs << ',' << l.inter_msgs << ','
          << l.inter_msgs_per_cs() << ",\n";
    }
    std::uint64_t total_arrivals = 0;
    for (const LockMetrics& l : r.per_lock) total_arrivals += l.arrivals;
    const bool has_hist = r.obtaining_hist.count() > 0;
    out << p.series << ',' << r.lock_count << ',' << r.zipf_s << ','
        << "ALL,," << total_arrivals << ',' << r.total_cs << ','
        << r.throughput_cs_per_s() << ',' << r.obtaining_ms() << ','
        << (has_hist ? r.obtaining_hist.percentile(0.99) : 0.0) << ','
        << r.messages.sent + r.batched_messages << ','
        << r.messages.inter_cluster << ',' << r.inter_msgs_per_cs() << ','
        << r.jain_fairness() << "\n";
  }
}

void print_service_table(std::ostream& out, const ExperimentResult& r) {
  out << "\n== " << r.label << "  (zipf s=" << r.zipf_s << ") ==\n";
  Table t({"lock", "home", "arrivals", "cs", "thr/s", "obt ms", "p99 ms",
           "msgs", "inter", "inter/cs"});
  for (const LockMetrics& l : r.per_lock) {
    const bool has_hist = l.obtaining_hist.count() > 0;
    t.add_row({l.name, std::to_string(l.home_cluster),
               std::to_string(l.arrivals), std::to_string(l.completed_cs),
               Table::num(l.throughput(r.service_seconds)),
               Table::num(l.obtaining.mean_ms()),
               Table::num(has_hist ? l.obtaining_hist.percentile(0.99) : 0.0),
               std::to_string(l.protocol_msgs), std::to_string(l.inter_msgs),
               Table::num(l.inter_msgs_per_cs())});
  }
  const bool has_hist = r.obtaining_hist.count() > 0;
  t.add_row({"ALL", "-", "-", std::to_string(r.total_cs),
             Table::num(r.throughput_cs_per_s()),
             Table::num(r.obtaining_ms()),
             Table::num(has_hist ? r.obtaining_hist.percentile(0.99) : 0.0),
             std::to_string(r.messages.sent + r.batched_messages),
             std::to_string(r.messages.inter_cluster),
             Table::num(r.inter_msgs_per_cs())});
  t.print(out);
  out << "fairness (Jain) = " << Table::num(r.jain_fairness(), 3)
      << "   batched = " << r.batched_messages << " subs in "
      << r.batch_frames << " frames (" << r.batch_bytes_saved
      << " bytes saved)\n";
}

}  // namespace gmx
