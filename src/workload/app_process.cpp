#include "gridmutex/workload/app_process.hpp"

namespace gmx {

AppProcess::AppProcess(Simulator& sim, MutexEndpoint& mutex,
                       WorkloadParams params, Rng rng,
                       WorkloadMetrics& metrics, SafetyMonitor& safety)
    : sim_(sim),
      mutex_(mutex),
      params_(params),
      rng_(rng),
      metrics_(metrics),
      safety_(safety),
      remaining_(params.cs_count) {
  GMX_ASSERT(params_.cs_count >= 0);
  GMX_ASSERT(params_.rho > 0.0);
  mutex_.set_callbacks(MutexCallbacks{[this] { on_granted(); }, {}});
}

void AppProcess::start() {
  if (remaining_ == 0) {
    if (on_done) on_done();
    return;
  }
  think_then_request();
}

SimDuration AppProcess::think_time() {
  if (!params_.exponential_think) return params_.beta();
  return rng_.exponential(params_.beta());
}

void AppProcess::think_then_request() {
  sim_.schedule_after(think_time(), [this] {
    active_ = true;
    --remaining_;
    requested_at_ = sim_.now();
    mutex_.request_cs();
  });
}

void AppProcess::on_granted() {
  metrics_.obtaining.add(sim_.now() - requested_at_);
  metrics_.obtaining_hist.add((sim_.now() - requested_at_).as_ms());
  safety_.enter(sim_.now(), int(mutex_.protocol()), mutex_.rank());
  sim_.schedule_after(params_.alpha, [this] { release_and_continue(); });
}

void AppProcess::release_and_continue() {
  safety_.exit(int(mutex_.protocol()), mutex_.rank());
  mutex_.release_cs();
  ++metrics_.completed_cs;
  if (under_fault && under_fault()) ++metrics_.cs_under_faults;
  active_ = false;
  if (remaining_ > 0) {
    think_then_request();
  } else if (on_done) {
    on_done();
  }
}

}  // namespace gmx
