#include "gridmutex/workload/thread_pool.hpp"

#include <algorithm>

namespace gmx {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (not the predicate-lambda overload): the
      // guarded reads stay in this scope, where the analysis can see the
      // lock — see thread_annotations.hpp.
      while (!stop_ && queue_.empty()) cv_.wait(lock.native());
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(submit([&fn, i] { fn(i); }));
  for (auto& f : futures) f.get();
}

}  // namespace gmx
