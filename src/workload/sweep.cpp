#include "gridmutex/workload/sweep.hpp"

#include <atomic>

#include "gridmutex/sim/assert.hpp"
#include "gridmutex/workload/thread_pool.hpp"

namespace gmx {

SweepRunner::SweepRunner(std::size_t jobs) : jobs_(jobs) {}

std::vector<std::vector<ExperimentResult>> SweepRunner::run_cells(
    std::size_t configs, int repetitions, const CellFn& cell,
    const Progress& progress) const {
  GMX_ASSERT(repetitions >= 1);
  std::vector<std::vector<ExperimentResult>> grid(configs);
  for (auto& row : grid) row.resize(std::size_t(repetitions));

  const std::size_t cells = configs * std::size_t(repetitions);
  std::atomic<std::size_t> done{0};
  detail::ProgressGate gate(progress);

  auto run_one = [&](std::size_t i) {
    const std::size_t c = i / std::size_t(repetitions);
    const int r = int(i % std::size_t(repetitions));
    grid[c][std::size_t(r)] = cell(c, r);
    const std::size_t d = ++done;
    gate.report(d, cells);
  };

  if (jobs_ == 1 || cells <= 1) {
    for (std::size_t i = 0; i < cells; ++i) run_one(i);
  } else {
    ThreadPool pool(jobs_);
    pool.parallel_for(cells, run_one);
  }
  return grid;
}

std::vector<ExperimentResult> SweepRunner::run_merged(
    std::size_t configs, int repetitions, const CellFn& cell,
    const Progress& progress) const {
  std::vector<std::vector<ExperimentResult>> grid =
      run_cells(configs, repetitions, cell, progress);
  std::vector<ExperimentResult> merged;
  merged.reserve(configs);
  for (auto& row : grid) {
    ExperimentResult acc = std::move(row.front());
    for (std::size_t r = 1; r < row.size(); ++r) acc.merge(row[r]);
    merged.push_back(std::move(acc));
  }
  return merged;
}

}  // namespace gmx
